package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/id"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/workload"
)

// ckptConfigs are the machine shapes the round-trip tests cross: the
// sequential kernel, the sharded kernel, and both crossed with the
// compiled plan.
func ckptConfigs() map[string]Config {
	return map[string]Config{
		"pe4":              {PEs: 4},
		"pe4-compiled":     {PEs: 4, Compiled: true},
		"pe4-sh2":          {PEs: 4, Shards: 2},
		"pe4-sh2-compiled": {PEs: 4, Shards: 2, Compiled: true},
	}
}

// runToEnd runs a fresh machine to completion and returns it with its
// results. The matmul workload exercises calls, I-structures, and loops,
// so every serialized subsystem is mid-flight at the pause points.
func runToEnd(t *testing.T, cfg Config, srcArgs []token.Value) (*Machine, []token.Value) {
	t.Helper()
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := NewMachine(cfg, prog)
	got, err := m.Run(5_000_000, srcArgs...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, got
}

// TestCheckpointResumeBitIdentical pauses a run at several mid-run cycles,
// serializes, restores into a fresh machine, finishes, and requires the
// split run to match the uninterrupted one exactly — results, cycle count,
// and the full end-of-run checkpoint byte stream.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	args, err := id.EntryArgs(prog, []token.Value{token.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range ckptConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			ref, wantRes := runToEnd(t, cfg, args)
			total := sim.Cycle(ref.Stats().Cycles)
			if total < 10 {
				t.Fatalf("run too short to split: %d cycles", total)
			}
			refBytes := sim.Checkpoint(ref)

			for _, frac := range []sim.Cycle{1, total / 3, total / 2, total - 1} {
				paused := NewMachine(cfg, prog)
				_, err := paused.Run(frac, args...)
				if err == nil {
					t.Fatalf("pause at %d: run finished early", frac)
				}
				if !strings.Contains(err.Error(), "did not finish") {
					t.Fatalf("pause at %d: %v", frac, err)
				}
				data := sim.Checkpoint(paused)

				// Canonical encoding: restore → re-save is byte-identical.
				again := NewMachine(cfg, prog)
				if err := sim.Restore(again, data); err != nil {
					t.Fatalf("restore at %d: %v", frac, err)
				}
				if re := sim.Checkpoint(again); !bytes.Equal(re, data) {
					t.Fatalf("pause at %d: restore→save changed the stream (%d vs %d bytes)", frac, len(re), len(data))
				}

				// The restored machine finishes identically.
				gotRes, err := again.Run(5_000_000)
				if err != nil {
					t.Fatalf("resume at %d: %v", frac, err)
				}
				if len(gotRes) != len(wantRes) {
					t.Fatalf("resume at %d: %d results, want %d", frac, len(gotRes), len(wantRes))
				}
				for i := range gotRes {
					if !gotRes[i].Equal(wantRes[i]) {
						t.Fatalf("resume at %d: result %d = %s, want %s", frac, i, gotRes[i], wantRes[i])
					}
				}
				if got := again.Stats().Cycles; got != ref.Stats().Cycles {
					t.Fatalf("resume at %d: %d cycles, want %d", frac, got, ref.Stats().Cycles)
				}
				if end := sim.Checkpoint(again); !bytes.Equal(end, refBytes) {
					t.Fatalf("resume at %d: end-of-run checkpoint differs from uninterrupted run", frac)
				}
			}
		})
	}
}

// TestCheckpointPauseResumeInPlace checks the no-serialize path: a machine
// paused by its cycle limit continues bit-identically when Run is called
// again on the same instance.
func TestCheckpointPauseResumeInPlace(t *testing.T) {
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	args, err := id.EntryArgs(prog, []token.Value{token.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range ckptConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			ref, wantRes := runToEnd(t, cfg, args)
			refBytes := sim.Checkpoint(ref)
			total := sim.Cycle(ref.Stats().Cycles)

			m := NewMachine(cfg, prog)
			if _, err := m.Run(total/2, args...); err == nil {
				t.Fatal("run finished before the split point")
			}
			gotRes, err := m.Run(5_000_000)
			if err != nil {
				t.Fatalf("continue: %v", err)
			}
			for i := range gotRes {
				if !gotRes[i].Equal(wantRes[i]) {
					t.Fatalf("result %d = %s, want %s", i, gotRes[i], wantRes[i])
				}
			}
			if got := m.Stats().Cycles; got != ref.Stats().Cycles {
				t.Fatalf("split run took %d cycles, want %d", got, ref.Stats().Cycles)
			}
			if end := sim.Checkpoint(m); !bytes.Equal(end, refBytes) {
				t.Fatal("split run end checkpoint differs from uninterrupted run")
			}
		})
	}
}

// TestCheckpointRejectsWrongShape ensures a checkpoint refuses to load
// into a machine of a different configuration instead of misdecoding.
func TestCheckpointRejectsWrongShape(t *testing.T) {
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	args, err := id.EntryArgs(prog, []token.Value{token.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(Config{PEs: 4}, prog)
	if _, err := m.Run(50, args...); err == nil {
		t.Fatal("run finished early")
	}
	data := sim.Checkpoint(m)

	for name, cfg := range map[string]Config{
		"more-pes": {PEs: 8},
		"compiled": {PEs: 4, Compiled: true},
		"sharded":  {PEs: 4, Shards: 2},
	} {
		if err := sim.Restore(NewMachine(cfg, prog), data); err == nil {
			t.Errorf("%s: restore accepted a mismatched checkpoint", name)
		}
	}
}
