package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/istructure"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/token"
)

// Machine is a complete tagged-token dataflow machine: PEs, network,
// I-structure modules, context manager, and structure allocator.
//
// The run loop is event-driven: components sit on active lists only while
// they hold work, quiescence detection is O(1), and simulated time jumps
// over stretches where every unit is merely waiting out a busy timer or a
// packet flight. Cycle counts and statistics are bit-identical to stepping
// every component on every cycle — the determinism contract the
// experiments (and the golden-stats test) depend on.
type Machine struct {
	cfg  Config
	prog *graph.Program
	pes  []*PE
	net  network.Network
	is   []*istructure.Module

	// Active lists: ids of components that currently hold queued work,
	// kept sorted ascending so sweeps visit components in the same fixed
	// order as stepping every component (part of the determinism
	// contract). The dirty flags defer sorting to the next sweep.
	peQueue  []int
	peActive []bool
	peDirty  bool
	isQueue  []int
	isActive []bool
	isDirty  bool

	// engine drives the run: the network, the I-structure sweep, and the
	// PE sweep are its three registered components, and its busy horizon
	// (the latest ALU/controller busy-until cycle ever scheduled) makes
	// quiescence a comparison instead of a machine-wide scan.
	engine *sim.Engine

	// context manager state (conceptually distributed; centralized here
	// with its cost charged through the PE controller's d=2 path)
	nextCtx  token.Context
	ctxs     map[token.Context]*ctxRecord
	ctxFree  []*ctxRecord // recycled invocation records
	ctxFreed uint64
	ctxPeak  int

	// I-structure allocator: bump pointer over the interleaved space
	nextAddr uint32
	isLimit  uint32

	results []token.Value
	runErr  error
	now     sim.Cycle
	stats   MachineStats
}

type ctxRecord struct {
	block       graph.BlockID
	parent      token.ActivityName
	parentBlock graph.BlockID
	returnDests []graph.Dest
	// reclamation state (see graph.Interp: non-strict calls may return
	// before all arguments arrive)
	argsSent int
	returned bool
}

// isRequest is the payload of a d=1 network packet.
type isRequest struct {
	op      istructure.Op
	addr    uint32
	value   token.Value
	replyTo replyTag
}

// replyTag addresses the consumer of a FETCH response.
type replyTag struct {
	activity token.ActivityName
	port     uint8
	nt       uint8
}

// NewMachine builds a machine for the given program.
func NewMachine(cfg Config, prog *graph.Program) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{
		cfg:      cfg,
		prog:     prog,
		nextCtx:  1,
		ctxs:     map[token.Context]*ctxRecord{},
		isLimit:  cfg.ISCellsPerPE * uint32(cfg.PEs),
		peActive: make([]bool, cfg.PEs),
		isActive: make([]bool, cfg.PEs),
	}
	m.net = cfg.Net
	if m.net == nil {
		m.net = network.NewIdeal(cfg.PEs, cfg.NetLatency)
	}
	if m.net.Ports() != cfg.PEs {
		panic(fmt.Sprintf("core: network has %d ports for %d PEs", m.net.Ports(), cfg.PEs))
	}
	m.net.SetDelivery(m.deliver)
	m.pes = make([]*PE, cfg.PEs)
	m.is = make([]*istructure.Module, cfg.PEs)
	for i := 0; i < cfg.PEs; i++ {
		m.pes[i] = newPE(m, i)
		i := i
		m.is[i] = istructure.New(istructure.Config{
			Base:      0,
			Size:      cfg.ISCellsPerPE,
			ReadTime:  cfg.ISReadTime,
			WriteTime: cfg.ISWriteTime,
			Respond:   func(r istructure.Response) { m.isRespond(i, r) },
		})
	}
	m.engine = sim.NewEngine()
	m.engine.Register(&machineDriver{m: m, isNext: sim.Never, peNext: sim.Never})
	return m
}

// machineDriver drives the whole machine as one engine component: the
// interconnect, the I-structure sweep, and the PE sweep, in the fixed
// order the previous three separate drivers had. It pins machine time to
// the engine clock at the top of every tick (PE statistics and traces
// sample m.now mid-step). Merging the drivers keeps every mid-tick wake
// (a PE waking a module after the module sweep ran) internal to one
// component, so the cached NextEvent answer is exactly the min the old
// per-driver poll computed. A cached sweep answer can be stale when a PE
// wakes a module later in the same tick (a local d=1 bypass fired after
// sweepIS ran); the engine still never jumps past the module's work,
// because the firing PE's own next-work answer pins the tick at least
// through the next cycle.
type machineDriver struct {
	m      *Machine
	isNext sim.Cycle
	peNext sim.Cycle
}

func (d *machineDriver) Step(now sim.Cycle) {
	d.m.now = now
	d.m.net.Step(now)
	d.isNext = d.m.sweepIS(now)
	d.peNext = d.m.sweepPEs(now)
}

func (d *machineDriver) NextEvent(now sim.Cycle) sim.Cycle {
	next := d.isNext
	if d.peNext < next {
		next = d.peNext
	}
	if !d.m.net.Idle() {
		if t := d.m.net.NextEvent(now); t < next {
			next = t
		}
	}
	return next
}

// Program returns the loaded program.
func (m *Machine) Program() *graph.Program { return m.prog }

// Now returns the current cycle.
func (m *Machine) Now() sim.Cycle { return m.now }

// wakePE puts a PE on the active list (no-op if already there).
func (m *Machine) wakePE(id int) {
	if m.peActive[id] {
		return
	}
	m.peActive[id] = true
	if n := len(m.peQueue); n > 0 && id < m.peQueue[n-1] {
		m.peDirty = true
	}
	m.peQueue = append(m.peQueue, id)
}

// wakeIS puts an I-structure module on the active list.
func (m *Machine) wakeIS(id int) {
	if m.isActive[id] {
		return
	}
	m.isActive[id] = true
	if n := len(m.isQueue); n > 0 && id < m.isQueue[n-1] {
		m.isDirty = true
	}
	m.isQueue = append(m.isQueue, id)
}

// noteBusy extends the machine-wide busy horizon. Busy-until values only
// grow per unit, so the engine's running maximum equals the max over the
// current values.
func (m *Machine) noteBusy(t sim.Cycle) { m.engine.NoteBusy(t) }

// deliver routes a network packet arriving at its destination PE.
func (m *Machine) deliver(p *network.Packet) {
	switch payload := p.Payload.(type) {
	case token.Token:
		m.pes[p.Dst].accept(payload)
	case isRequest:
		m.enqueueIS(p.Dst, payload)
	default:
		panic(fmt.Sprintf("core: unknown network payload %T", p.Payload))
	}
}

// homeModule maps a global I-structure address to its PE.
func (m *Machine) homeModule(addr uint32) int { return int(addr) % m.cfg.PEs }

// localAddr converts a global address to a module-local one.
func (m *Machine) localAddr(addr uint32) uint32 { return addr / uint32(m.cfg.PEs) }

// enqueueIS hands a d=1 request to the I-structure module at pe.
func (m *Machine) enqueueIS(pe int, r isRequest) {
	req := istructure.Request{
		Op:    r.op,
		Addr:  m.localAddr(r.addr),
		Value: r.value,
	}
	if r.op == istructure.OpRead {
		req.ReplyTo = r.replyTo
	}
	m.wakeIS(pe)
	if err := m.is[pe].Enqueue(req); err != nil {
		m.fail(fmt.Errorf("core: I-structure request failed: %v", err))
	}
}

// isRespond forwards a FETCH response as a d=0 token from the module's PE.
func (m *Machine) isRespond(pe int, r istructure.Response) {
	rt := r.ReplyTo.(replyTag)
	t := token.Token{
		Class: token.Normal,
		Tag:   token.Tag{Activity: rt.activity},
		NT:    rt.nt,
		Port:  rt.port,
		Value: r.Value.(token.Value),
	}
	t.PE = t.Tag.HomePE(m.cfg.PEs)
	m.pes[pe].emit(t)
	m.stats.ISResponses++
}

// allocate reserves n I-structure cells and returns the base address.
func (m *Machine) allocate(n uint32) (uint32, error) {
	if n > m.isLimit-m.nextAddr {
		return 0, fmt.Errorf("core: I-structure space exhausted (%d cells, limit %d)", n, m.isLimit)
	}
	base := m.nextAddr
	m.nextAddr += n
	return base, nil
}

// getContext allocates a fresh invocation context.
func (m *Machine) getContext(target graph.BlockID, parent token.ActivityName, parentBlock graph.BlockID, returnDests []graph.Dest) token.Context {
	u := m.nextCtx
	m.nextCtx++
	var rec *ctxRecord
	if n := len(m.ctxFree); n > 0 {
		rec = m.ctxFree[n-1]
		m.ctxFree = m.ctxFree[:n-1]
		*rec = ctxRecord{}
	} else {
		rec = &ctxRecord{}
	}
	rec.block, rec.parent, rec.parentBlock, rec.returnDests = target, parent, parentBlock, returnDests
	m.ctxs[u] = rec
	if live := len(m.ctxs); live > m.ctxPeak {
		m.ctxPeak = live
	}
	return u
}

// maybeFreeContext reclaims an invocation record once its return fired and
// every callee entry received its argument. The record goes on a free list
// for reuse; callers must not touch rec afterwards.
func (m *Machine) maybeFreeContext(u token.Context, rec *ctxRecord) {
	if rec.returned && rec.argsSent >= len(m.prog.Block(rec.block).Entries) {
		delete(m.ctxs, u)
		m.ctxFree = append(m.ctxFree, rec)
		m.ctxFreed++
	}
}

// fail records the first execution fault; the run loop stops on it.
func (m *Machine) fail(err error) {
	if m.runErr == nil {
		m.runErr = err
	}
}

// quiescent reports whether no work remains anywhere in the machine. With
// active lists and the busy horizon this is O(1) instead of a scan over
// every PE and module.
func (m *Machine) quiescent() bool {
	return len(m.peQueue) == 0 && len(m.isQueue) == 0 &&
		m.net.Pending() == 0 && m.now >= m.engine.BusyHorizon()
}

// sweepIS steps the active I-structure modules in ascending id order,
// returning the earliest future cycle any of them can act.
func (m *Machine) sweepIS(now sim.Cycle) sim.Cycle {
	if len(m.isQueue) == 0 {
		return sim.Never
	}
	if m.isDirty {
		sort.Ints(m.isQueue)
		m.isDirty = false
	}
	next := sim.Never
	keep := m.isQueue[:0]
	for _, id := range m.isQueue {
		mod := m.is[id]
		if t := mod.NextEvent(now); t > now {
			keep = append(keep, id)
			if t < next {
				next = t
			}
			continue
		}
		mod.Step(now)
		if mod.Idle() {
			m.isActive[id] = false
			continue
		}
		keep = append(keep, id)
		if t := mod.NextEvent(now + 1); t < next {
			next = t
		}
	}
	m.isQueue = keep
	return next
}

// sweepPEs steps the active PEs in ascending id order, returning the
// earliest future cycle any of them can act.
func (m *Machine) sweepPEs(now sim.Cycle) sim.Cycle {
	if len(m.peQueue) == 0 {
		return sim.Never
	}
	if m.peDirty {
		sort.Ints(m.peQueue)
		m.peDirty = false
	}
	next := sim.Never
	keep := m.peQueue[:0]
	for _, id := range m.peQueue {
		pe := m.pes[id]
		if t := pe.nextWork(now); t > now {
			keep = append(keep, id)
			if t < next {
				next = t
			}
			continue
		}
		pe.step(now)
		if !pe.hasQueuedWork() {
			m.peActive[id] = false
			continue
		}
		keep = append(keep, id)
		if t := pe.nextWork(now + 1); t < next {
			next = t
		}
	}
	m.peQueue = keep
	return next
}

// Run injects the entry arguments and executes to quiescence on the shared
// event-driven engine — network, I-structure modules, then PEs, in fixed
// registration order for determinism, with simulated time jumping over any
// run of cycles in which every component would provably no-op. It returns
// the program results (values returned in context 0).
func (m *Machine) Run(limit sim.Cycle, args ...token.Value) ([]token.Value, error) {
	entry := m.prog.Entry()
	if len(args) != len(entry.Entries) {
		return nil, fmt.Errorf("core: program %q wants %d arguments, got %d", m.prog.Name, len(entry.Entries), len(args))
	}
	if err := m.prog.Validate(); err != nil {
		return nil, err
	}
	for j, v := range args {
		act := token.ActivityName{Context: 0, CodeBlock: uint16(entry.ID), Statement: entry.Entries[j], Initiation: 1}
		t := token.Token{
			Class: token.Normal,
			Tag:   token.Tag{Activity: act},
			NT:    entry.Instr(entry.Entries[j]).NT,
			Port:  0,
			Value: v,
		}
		t.PE = t.Tag.HomePE(m.cfg.PEs)
		m.pes[t.PE].accept(t)
	}
	start := m.now
	_, ok := m.engine.Run(func() bool {
		m.now = m.engine.Now()
		return m.runErr != nil || m.quiescent()
	}, limit)
	m.now = m.engine.Now()
	if m.runErr != nil {
		return nil, m.runErr
	}
	if !ok {
		return nil, fmt.Errorf("core: program %q did not finish within %d cycles", m.prog.Name, limit)
	}
	m.finishStats()
	if err := m.checkClean(); err != nil {
		return nil, err
	}
	m.stats.Cycles = uint64(m.now - start)
	return m.results, nil
}

// finishStats settles every lazily-accounted statistic through the final
// cycle, so per-PE and per-module numbers match per-cycle stepping.
func (m *Machine) finishStats() {
	for _, pe := range m.pes {
		pe.finishStats(m.now)
	}
	for _, mod := range m.is {
		mod.FinishStats(m.now)
	}
}

// checkClean verifies quiescence is completion, not deadlock: no tokens
// stranded in waiting-matching stores and no unsatisfied deferred reads.
func (m *Machine) checkClean() error {
	stranded := 0
	for _, pe := range m.pes {
		stranded += len(pe.waiting)
	}
	if stranded != 0 {
		return fmt.Errorf("core: program %q halted with %d unmatched tokens in waiting-matching stores", m.prog.Name, stranded)
	}
	deferred := 0
	for _, mod := range m.is {
		deferred += mod.OutstandingDeferred()
	}
	if deferred != 0 {
		return fmt.Errorf("core: program %q deadlocked: %d deferred reads never satisfied", m.prog.Name, deferred)
	}
	return nil
}

// Network returns the machine's interconnect (for statistics).
func (m *Machine) Network() network.Network { return m.net }

// Engine exposes the simulation engine (scheduling counters).
func (m *Machine) Engine() *sim.Engine { return m.engine }

// ISModules returns the per-PE I-structure modules.
func (m *Machine) ISModules() []*istructure.Module { return m.is }

// PEStats returns per-PE statistics.
func (m *Machine) PEStats() []*PEStats {
	out := make([]*PEStats, len(m.pes))
	for i, pe := range m.pes {
		out[i] = &pe.stats
	}
	return out
}

// Stats returns machine-level statistics.
func (m *Machine) Stats() *MachineStats { return &m.stats }
