package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/istructure"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/token"
)

// Machine is a complete tagged-token dataflow machine: PEs, network,
// I-structure modules, context manager, and structure allocator.
//
// The run loop is event-driven: components sit on active lists only while
// they hold work, quiescence detection is O(1), and simulated time jumps
// over stretches where every unit is merely waiting out a busy timer or a
// packet flight. Cycle counts and statistics are bit-identical to stepping
// every component on every cycle — the determinism contract the
// experiments (and the golden-stats test) depend on.
type Machine struct {
	cfg  Config
	prog *graph.Program
	// plan is the ahead-of-time compiled execution plan (Config.Compiled
	// or NewMachineWithPlan); nil selects the IR-walking paths. Both paths
	// simulate bit-identically — the plan only removes host-side work.
	plan *graph.CompiledGraph
	// opTimes is Config.OpTime sampled per opcode at construction, so the
	// ALU issue path indexes a dense table instead of calling a closure.
	opTimes [graph.NumOpcodes]sim.Cycle
	pes     []*PE
	net     network.Network
	is      []*istructure.Module

	// Active lists: ids of components that currently hold queued work,
	// kept sorted ascending so sweeps visit components in the same fixed
	// order as stepping every component (part of the determinism
	// contract). Sequential runs use these machine-wide lists; sharded
	// runs give each shard its own pair over its contiguous id range.
	peQ      idQueue
	peActive []bool
	isQ      idQueue
	isActive []bool

	// engine drives the run; its busy horizon (the latest ALU/controller
	// busy-until cycle ever scheduled) makes quiescence a comparison
	// instead of a machine-wide scan. Sequential machines register one
	// driver with sim.Engine; sharded machines run on sim.ParallelEngine
	// (see parallel_core.go).
	engine sim.Driver
	seqDrv *machineDriver
	par    *sim.ParallelEngine
	netDrv *netDriver
	// shards is non-nil iff the machine runs the conservative-parallel
	// kernel; shardOf maps a PE/module id to its owning shard.
	shards  []*coreShard
	shardOf []int
	// winOn marks multi-tick epoch windows active (EpochWindow config on a
	// Windowable fabric): the net driver stops mirroring runner wakes —
	// the fabric schedules exact delivery times, so co-ticking it is
	// unnecessary and would close every window.
	winOn bool

	// context manager state (conceptually distributed; centralized here
	// with its cost charged through the PE controller's d=2 path)
	nextCtx token.Context
	// ctxs is indexed directly by context number (slot 0 is the top-level
	// pseudo-context and stays nil): context numbers are handed out
	// monotonically, so a dense slice replaces a map on the SEND-ARG/RETURN
	// path. A freed context leaves a nil slot; records are recycled via
	// ctxFree.
	ctxs     []*ctxRecord
	ctxLive  int
	ctxFree  []*ctxRecord // recycled invocation records
	ctxFreed uint64
	ctxPeak  int

	// I-structure allocator: bump pointer over the interleaved space
	nextAddr uint32
	isLimit  uint32

	results []token.Value
	runErr  error
	now     sim.Cycle
	stats   MachineStats

	// started marks a run in progress: entry arguments are injected only
	// on the first Run call, so a run paused at a cycle limit (or restored
	// from a checkpoint, which sets the flag) resumes instead of
	// restarting. runStart anchors the Cycles statistic across the split.
	started  bool
	runStart sim.Cycle
}

type ctxRecord struct {
	block       graph.BlockID
	parent      token.ActivityName
	parentBlock graph.BlockID
	// returnDests (interpreted mode) and returnDestsC (compiled mode) name
	// the caller-side receivers; exactly one is non-nil per machine mode.
	returnDests  []graph.Dest
	returnDestsC []graph.CDest
	// reclamation state (see graph.Interp: non-strict calls may return
	// before all arguments arrive)
	argsSent int
	returned bool
}

// isRequest is the payload of a d=1 network packet.
type isRequest struct {
	op      istructure.Op
	addr    uint32
	value   token.Value
	replyTo replyTag
}

// replyTag addresses the consumer of a FETCH response.
type replyTag struct {
	activity token.ActivityName
	port     uint8
	nt       uint8
}

// NewMachine builds a machine for the given program.
func NewMachine(cfg Config, prog *graph.Program) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{
		cfg:      cfg,
		prog:     prog,
		nextCtx:  1,
		ctxs:     make([]*ctxRecord, 1, 64),
		isLimit:  cfg.ISCellsPerPE * uint32(cfg.PEs),
		peActive: make([]bool, cfg.PEs),
		isActive: make([]bool, cfg.PEs),
	}
	for op := graph.Opcode(0); int(op) < graph.NumOpcodes; op++ {
		m.opTimes[op] = cfg.OpTime(op)
	}
	m.net = cfg.Net
	if m.net == nil {
		m.net = network.NewIdeal(cfg.PEs, cfg.NetLatency)
	}
	if m.net.Ports() != cfg.PEs {
		panic(fmt.Sprintf("core: network has %d ports for %d PEs", m.net.Ports(), cfg.PEs))
	}
	m.net.SetDelivery(m.deliver)
	m.pes = make([]*PE, cfg.PEs)
	m.is = make([]*istructure.Module, cfg.PEs)
	for i := 0; i < cfg.PEs; i++ {
		m.pes[i] = newPE(m, i)
		i := i
		m.is[i] = istructure.New(istructure.Config{
			Base:      0,
			Size:      cfg.ISCellsPerPE,
			ReadTime:  cfg.ISReadTime,
			WriteTime: cfg.ISWriteTime,
			Respond:   func(r istructure.Response) { m.isRespond(i, r) },
		})
	}
	shards := cfg.Shards
	if cfg.Trace != nil {
		// Tracing samples machine state mid-step; keep it on the
		// deterministic single-threaded path.
		shards = 1
	}
	if shards > 1 && cfg.PEs > 1 {
		m.setupShards(shards)
	} else {
		eng := sim.NewEngine()
		m.engine = eng
		m.seqDrv = &machineDriver{m: m, isNext: sim.Never, peNext: sim.Never}
		eng.Register(m.seqDrv)
	}
	return m
}

// NewMachineWithPlan builds a machine that executes a pre-compiled plan
// (graph.Compile), amortizing compilation across many runs of the same
// program. The machine simulates exactly what NewMachine with
// Config.Compiled does.
func NewMachineWithPlan(cfg Config, plan *graph.CompiledGraph) *Machine {
	cfg.Compiled = true
	m := NewMachine(cfg, plan.Prog)
	m.plan = plan
	return m
}

// idQueue is one active list: component ids holding work, sorted ascending
// at the next sweep (the dirty flag defers the sort).
type idQueue struct {
	ids   []int
	dirty bool
}

func (q *idQueue) push(id int) {
	if n := len(q.ids); n > 0 && id < q.ids[n-1] {
		q.dirty = true
	}
	q.ids = append(q.ids, id)
}

// machineDriver drives the whole machine as one engine component: the
// interconnect, the I-structure sweep, and the PE sweep, in the fixed
// order the previous three separate drivers had. It pins machine time to
// the engine clock at the top of every tick (PE statistics and traces
// sample m.now mid-step). Merging the drivers keeps every mid-tick wake
// (a PE waking a module after the module sweep ran) internal to one
// component, so the cached NextEvent answer is exactly the min the old
// per-driver poll computed. A cached sweep answer can be stale when a PE
// wakes a module later in the same tick (a local d=1 bypass fired after
// sweepIS ran); the engine still never jumps past the module's work,
// because the firing PE's own next-work answer pins the tick at least
// through the next cycle.
type machineDriver struct {
	m      *Machine
	isNext sim.Cycle
	peNext sim.Cycle
	// inStep marks the window in which a wake must fold into the cached
	// answers: a PE's local d=1 bypass wakes its module after the module
	// sweep already ran, and without the fold the module's next-cycle
	// work would be invisible to NextEvent.
	inStep bool
}

func (d *machineDriver) Step(now sim.Cycle) {
	d.inStep = true
	d.m.now = now
	d.m.net.Step(now)
	d.isNext = d.m.sweepISQ(now, &d.m.isQ)
	d.peNext = d.m.sweepPEsQ(now, &d.m.peQ)
	d.inStep = false
}

func (d *machineDriver) NextEvent(now sim.Cycle) sim.Cycle {
	next := d.isNext
	if d.peNext < next {
		next = d.peNext
	}
	if !d.m.net.Idle() {
		if t := d.m.net.NextEvent(now); t < next {
			next = t
		}
	}
	return next
}

// Program returns the loaded program.
func (m *Machine) Program() *graph.Program { return m.prog }

// Now returns the current cycle.
func (m *Machine) Now() sim.Cycle { return m.now }

// wakePE puts a PE on its active list. In sharded mode it also wakes the
// owning runner when called from a serial context (a network delivery or a
// commit-time push); wakes from the shard's own step need no engine call —
// the runner's post-commit NextEvent poll subsumes them.
func (m *Machine) wakePE(id int) {
	if m.shards != nil {
		sh := m.shards[m.shardOf[id]]
		if !m.peActive[id] {
			m.peActive[id] = true
			sh.peQ.push(id)
		}
		if !sh.inStep {
			m.par.Wake(sh, m.par.Now())
			if !m.winOn {
				m.par.Wake(m.netDrv, m.par.Now())
			}
		}
		return
	}
	if m.peActive[id] {
		return
	}
	m.peActive[id] = true
	m.peQ.push(id)
}

// wakeIS puts an I-structure module on its active list. A wake landing
// while the driving sweep is mid-step (a PE's local d=1 bypass, after the
// module sweep already ran this cycle) folds the module's next-cycle work
// into the cached next-event answer, keeping NextEvent honest in both the
// sequential and the sharded mode.
func (m *Machine) wakeIS(id int) {
	if m.shards != nil {
		sh := m.shards[m.shardOf[id]]
		if !m.isActive[id] {
			m.isActive[id] = true
			sh.isQ.push(id)
		}
		if sh.inStep {
			// sh.now, not m.now: inside an epoch window the shard's local
			// clock runs ahead of the machine clock.
			if t := sh.now + 1; t < sh.isNext {
				sh.isNext = t
			}
		} else {
			m.par.Wake(sh, m.par.Now())
			if !m.winOn {
				m.par.Wake(m.netDrv, m.par.Now())
			}
		}
		return
	}
	if !m.isActive[id] {
		m.isActive[id] = true
		m.isQ.push(id)
	}
	if d := m.seqDrv; d.inStep {
		if t := m.now + 1; t < d.isNext {
			d.isNext = t
		}
	}
}

// noteBusy extends the machine-wide busy horizon. Busy-until values only
// grow per unit, so the engine's running maximum equals the max over the
// current values.
func (m *Machine) noteBusy(t sim.Cycle) { m.engine.NoteBusy(t) }

// deliver routes a network packet arriving at its destination PE. It runs
// in a serial context in both modes (inside the machine driver's step, or
// the parallel kernel's serial phase).
func (m *Machine) deliver(p *network.Packet) {
	if p.HasTok {
		m.pes[p.Dst].accept(p.Tok)
		m.pes[p.Dst].putPkt(p)
		return
	}
	switch payload := p.Payload.(type) {
	case isRequest:
		if err := m.enqueueIS(p.Dst, payload); err != nil {
			m.fail(err)
		}
		m.pes[p.Dst].putPkt(p)
	default:
		panic(fmt.Sprintf("core: unknown network payload %T", p.Payload))
	}
}

// homeModule maps a global I-structure address to its PE.
func (m *Machine) homeModule(addr uint32) int { return int(addr) % m.cfg.PEs }

// localAddr converts a global address to a module-local one.
func (m *Machine) localAddr(addr uint32) uint32 { return addr / uint32(m.cfg.PEs) }

// enqueueIS hands a d=1 request to the I-structure module at pe. The error
// is returned (not recorded) so callers in a shard's parallel step can
// defer it.
func (m *Machine) enqueueIS(pe int, r isRequest) error {
	req := istructure.Request{
		Op:    r.op,
		Addr:  m.localAddr(r.addr),
		Value: r.value,
	}
	if r.op == istructure.OpRead {
		req.ReplyTo = r.replyTo
	}
	m.wakeIS(pe)
	if err := m.is[pe].Enqueue(req); err != nil {
		return fmt.Errorf("core: I-structure request failed: %v", err)
	}
	return nil
}

// isRespond forwards a FETCH response as a d=0 token from the module's PE.
// The response lands in the module's own PE's output queue, so in sharded
// mode it stays inside the owning shard; only the response counter is
// global, accumulated per shard and folded at commit.
func (m *Machine) isRespond(pe int, r istructure.Response) {
	rt := r.ReplyTo.(replyTag)
	t := token.Token{
		Class: token.Normal,
		Tag:   token.Tag{Activity: rt.activity},
		NT:    rt.nt,
		Port:  rt.port,
		Value: r.Value.(token.Value),
	}
	t.PE = t.Tag.HomePE(m.cfg.PEs)
	m.pes[pe].emit(t)
	if sh := m.pes[pe].sh; sh != nil {
		sh.isResponses++
	} else {
		m.stats.ISResponses++
	}
}

// allocate reserves n I-structure cells and returns the base address.
func (m *Machine) allocate(n uint32) (uint32, error) {
	if n > m.isLimit-m.nextAddr {
		return 0, fmt.Errorf("core: I-structure space exhausted (%d cells, limit %d)", n, m.isLimit)
	}
	base := m.nextAddr
	m.nextAddr += n
	return base, nil
}

// allocCtx reserves the next context number and a recycled record.
func (m *Machine) allocCtx() (token.Context, *ctxRecord) {
	u := m.nextCtx
	m.nextCtx++
	var rec *ctxRecord
	if n := len(m.ctxFree); n > 0 {
		rec = m.ctxFree[n-1]
		m.ctxFree = m.ctxFree[:n-1]
		*rec = ctxRecord{}
	} else {
		rec = &ctxRecord{}
	}
	m.ctxs = append(m.ctxs, rec) // index u == old len(m.ctxs)
	m.ctxLive++
	if m.ctxLive > m.ctxPeak {
		m.ctxPeak = m.ctxLive
	}
	return u, rec
}

// ctxLookup resolves a context number to its live invocation record, or nil
// when the number was never allocated or already reclaimed. Handles arrive
// in token values, so the bound check guards against corrupt programs.
func (m *Machine) ctxLookup(u token.Context) *ctxRecord {
	if uint64(u) >= uint64(len(m.ctxs)) {
		return nil
	}
	return m.ctxs[u]
}

// getContext allocates a fresh invocation context.
func (m *Machine) getContext(target graph.BlockID, parent token.ActivityName, parentBlock graph.BlockID, returnDests []graph.Dest) token.Context {
	u, rec := m.allocCtx()
	rec.block, rec.parent, rec.parentBlock, rec.returnDests = target, parent, parentBlock, returnDests
	return u
}

// getContextC is getContext for the compiled path: return destinations come
// from the plan's lowered CDest arrays.
func (m *Machine) getContextC(target graph.BlockID, parent token.ActivityName, parentBlock graph.BlockID, returnDests []graph.CDest) token.Context {
	u, rec := m.allocCtx()
	rec.block, rec.parent, rec.parentBlock, rec.returnDestsC = target, parent, parentBlock, returnDests
	return u
}

// maybeFreeContext reclaims an invocation record once its return fired and
// every callee entry received its argument. The record goes on a free list
// for reuse; callers must not touch rec afterwards.
func (m *Machine) maybeFreeContext(u token.Context, rec *ctxRecord) {
	if rec.returned && rec.argsSent >= len(m.prog.Block(rec.block).Entries) {
		m.ctxs[u] = nil
		m.ctxLive--
		m.ctxFree = append(m.ctxFree, rec)
		m.ctxFreed++
	}
}

// fail records the first execution fault; the run loop stops on it.
func (m *Machine) fail(err error) {
	if m.runErr == nil {
		m.runErr = err
	}
}

// quiescent reports whether no work remains anywhere in the machine. With
// active lists and the busy horizon this is O(1) instead of a scan over
// every PE and module (O(shards) in sharded mode).
func (m *Machine) quiescent() bool {
	if m.shards != nil {
		for _, sh := range m.shards {
			if len(sh.peQ.ids) > 0 || len(sh.isQ.ids) > 0 {
				return false
			}
		}
		return m.net.Pending() == 0 && m.now >= m.engine.BusyHorizon()
	}
	return len(m.peQ.ids) == 0 && len(m.isQ.ids) == 0 &&
		m.net.Pending() == 0 && m.now >= m.engine.BusyHorizon()
}

// sweepISQ steps the listed active I-structure modules in ascending id
// order, returning the earliest future cycle any of them can act.
func (m *Machine) sweepISQ(now sim.Cycle, q *idQueue) sim.Cycle {
	if len(q.ids) == 0 {
		return sim.Never
	}
	if q.dirty {
		sort.Ints(q.ids)
		q.dirty = false
	}
	next := sim.Never
	keep := q.ids[:0]
	for _, id := range q.ids {
		mod := m.is[id]
		if t := mod.NextEvent(now); t > now {
			keep = append(keep, id)
			if t < next {
				next = t
			}
			continue
		}
		mod.Step(now)
		if mod.Idle() {
			m.isActive[id] = false
			continue
		}
		keep = append(keep, id)
		if t := mod.NextEvent(now + 1); t < next {
			next = t
		}
	}
	q.ids = keep
	return next
}

// sweepPEsQ steps the listed active PEs in ascending id order, returning
// the earliest future cycle any of them can act.
func (m *Machine) sweepPEsQ(now sim.Cycle, q *idQueue) sim.Cycle {
	if len(q.ids) == 0 {
		return sim.Never
	}
	if q.dirty {
		sort.Ints(q.ids)
		q.dirty = false
	}
	next := sim.Never
	keep := q.ids[:0]
	for _, id := range q.ids {
		pe := m.pes[id]
		if !pe.hasQueuedWork() {
			// Possible only in sharded mode: a commit-phase retry drain
			// emptied the PE after its sweep kept it.
			m.peActive[id] = false
			continue
		}
		if t := pe.nextWork(now); t > now {
			keep = append(keep, id)
			if t < next {
				next = t
			}
			continue
		}
		pe.step(now)
		if !pe.hasQueuedWork() {
			m.peActive[id] = false
			continue
		}
		keep = append(keep, id)
		if t := pe.nextWork(now + 1); t < next {
			next = t
		}
	}
	q.ids = keep
	return next
}

// Run injects the entry arguments and executes to quiescence on the shared
// event-driven engine — network, I-structure modules, then PEs, in fixed
// registration order for determinism, with simulated time jumping over any
// run of cycles in which every component would provably no-op. It returns
// the program results (values returned in context 0).
//
// A run that hits the cycle limit returns an error but leaves the machine
// intact: calling Run again (or checkpointing with sim.Checkpoint and
// restoring into a fresh machine) continues from the pause cycle, and the
// completed split run is bit-identical to an uninterrupted one. Arguments
// are injected only on the first call of a run; a continuation ignores
// them.
func (m *Machine) Run(limit sim.Cycle, args ...token.Value) ([]token.Value, error) {
	if err := m.prog.Validate(); err != nil {
		return nil, err
	}
	if m.cfg.Compiled && m.plan == nil {
		cg, err := graph.Compile(m.prog)
		if err != nil {
			return nil, err
		}
		m.plan = cg
	}
	if !m.started {
		entry := m.prog.Entry()
		if len(args) != len(entry.Entries) {
			return nil, fmt.Errorf("core: program %q wants %d arguments, got %d", m.prog.Name, len(entry.Entries), len(args))
		}
		for j, v := range args {
			act := token.ActivityName{Context: 0, CodeBlock: uint16(entry.ID), Statement: entry.Entries[j], Initiation: 1}
			t := token.Token{
				Class: token.Normal,
				Tag:   token.Tag{Activity: act},
				NT:    entry.Instr(entry.Entries[j]).NT,
				Port:  0,
				Value: v,
			}
			t.PE = t.Tag.HomePE(m.cfg.PEs)
			m.pes[t.PE].accept(t)
		}
		m.started = true
		m.runStart = m.now
	}
	_, ok := m.engine.Run(func() bool {
		m.now = m.engine.Now()
		return m.runErr != nil || m.quiescent()
	}, limit)
	m.now = m.engine.Now()
	if m.runErr != nil {
		return nil, m.runErr
	}
	if !ok {
		return nil, fmt.Errorf("core: program %q did not finish within %d cycles", m.prog.Name, limit)
	}
	m.started = false
	m.finishStats()
	if err := m.checkClean(); err != nil {
		return nil, err
	}
	m.stats.Cycles = uint64(m.now - m.runStart)
	return m.results, nil
}

// finishStats settles every lazily-accounted statistic through the final
// cycle, so per-PE and per-module numbers match per-cycle stepping.
func (m *Machine) finishStats() {
	for _, pe := range m.pes {
		pe.finishStats(m.now)
	}
	for _, mod := range m.is {
		mod.FinishStats(m.now)
	}
}

// checkClean verifies quiescence is completion, not deadlock: no tokens
// stranded in waiting-matching stores and no unsatisfied deferred reads.
func (m *Machine) checkClean() error {
	stranded := 0
	for _, pe := range m.pes {
		stranded += pe.waiting.Len()
	}
	if stranded != 0 {
		return fmt.Errorf("core: program %q halted with %d unmatched tokens in waiting-matching stores", m.prog.Name, stranded)
	}
	deferred := 0
	for _, mod := range m.is {
		deferred += mod.OutstandingDeferred()
	}
	if deferred != 0 {
		return fmt.Errorf("core: program %q deadlocked: %d deferred reads never satisfied", m.prog.Name, deferred)
	}
	return nil
}

// Network returns the machine's interconnect (for statistics).
func (m *Machine) Network() network.Network { return m.net }

// Engine exposes the simulation engine (scheduling counters). Sequential
// machines return a *sim.Engine, sharded ones a *sim.ParallelEngine.
func (m *Machine) Engine() sim.Driver { return m.engine }

// WorkerSteps reports per-shard runner step counts, or nil for a
// sequential machine.
func (m *Machine) WorkerSteps() []uint64 {
	if m.par == nil {
		return nil
	}
	return m.par.WorkerSteps()
}

// WindowStats reports how many multi-tick epoch windows the parallel
// kernel ran and how many simulated cycles they covered; zero outside
// windowed parallel runs (see Config.EpochWindow).
func (m *Machine) WindowStats() (windows, cycles uint64) {
	if m.par == nil {
		return 0, 0
	}
	return m.par.WindowStats()
}

// ISModules returns the per-PE I-structure modules.
func (m *Machine) ISModules() []*istructure.Module { return m.is }

// PEStats returns per-PE statistics.
func (m *Machine) PEStats() []*PEStats {
	out := make([]*PEStats, len(m.pes))
	for i, pe := range m.pes {
		out[i] = &pe.stats
	}
	return out
}

// Stats returns machine-level statistics.
func (m *Machine) Stats() *MachineStats { return &m.stats }
