package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/istructure"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/token"
)

// Machine is a complete tagged-token dataflow machine: PEs, network,
// I-structure modules, context manager, and structure allocator.
type Machine struct {
	cfg  Config
	prog *graph.Program
	pes  []*PE
	net  network.Network
	is   []*istructure.Module

	// context manager state (conceptually distributed; centralized here
	// with its cost charged through the PE controller's d=2 path)
	nextCtx  token.Context
	ctxs     map[token.Context]*ctxRecord
	ctxFreed uint64
	ctxPeak  int

	// I-structure allocator: bump pointer over the interleaved space
	nextAddr uint32
	isLimit  uint32

	results []token.Value
	runErr  error
	now     sim.Cycle
	stats   MachineStats
}

type ctxRecord struct {
	block       graph.BlockID
	parent      token.ActivityName
	parentBlock graph.BlockID
	returnDests []graph.Dest
	// reclamation state (see graph.Interp: non-strict calls may return
	// before all arguments arrive)
	argsSent int
	returned bool
}

// isRequest is the payload of a d=1 network packet.
type isRequest struct {
	op      istructure.Op
	addr    uint32
	value   token.Value
	replyTo replyTag
}

// replyTag addresses the consumer of a FETCH response.
type replyTag struct {
	activity token.ActivityName
	port     uint8
	nt       uint8
}

// NewMachine builds a machine for the given program.
func NewMachine(cfg Config, prog *graph.Program) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{
		cfg:     cfg,
		prog:    prog,
		nextCtx: 1,
		ctxs:    map[token.Context]*ctxRecord{},
		isLimit: cfg.ISCellsPerPE * uint32(cfg.PEs),
	}
	m.net = cfg.Net
	if m.net == nil {
		m.net = network.NewIdeal(cfg.PEs, cfg.NetLatency)
	}
	if m.net.Ports() != cfg.PEs {
		panic(fmt.Sprintf("core: network has %d ports for %d PEs", m.net.Ports(), cfg.PEs))
	}
	m.net.SetDelivery(m.deliver)
	m.pes = make([]*PE, cfg.PEs)
	m.is = make([]*istructure.Module, cfg.PEs)
	for i := 0; i < cfg.PEs; i++ {
		m.pes[i] = newPE(m, i)
		i := i
		m.is[i] = istructure.New(istructure.Config{
			Base:      0,
			Size:      cfg.ISCellsPerPE,
			ReadTime:  cfg.ISReadTime,
			WriteTime: cfg.ISWriteTime,
			Respond:   func(r istructure.Response) { m.isRespond(i, r) },
		})
	}
	return m
}

// Program returns the loaded program.
func (m *Machine) Program() *graph.Program { return m.prog }

// Now returns the current cycle.
func (m *Machine) Now() sim.Cycle { return m.now }

// deliver routes a network packet arriving at its destination PE.
func (m *Machine) deliver(p *network.Packet) {
	switch payload := p.Payload.(type) {
	case token.Token:
		m.pes[p.Dst].accept(payload)
	case isRequest:
		m.enqueueIS(p.Dst, payload)
	default:
		panic(fmt.Sprintf("core: unknown network payload %T", p.Payload))
	}
}

// homeModule maps a global I-structure address to its PE.
func (m *Machine) homeModule(addr uint32) int { return int(addr) % m.cfg.PEs }

// localAddr converts a global address to a module-local one.
func (m *Machine) localAddr(addr uint32) uint32 { return addr / uint32(m.cfg.PEs) }

// enqueueIS hands a d=1 request to the I-structure module at pe.
func (m *Machine) enqueueIS(pe int, r isRequest) {
	req := istructure.Request{
		Op:    r.op,
		Addr:  m.localAddr(r.addr),
		Value: r.value,
	}
	if r.op == istructure.OpRead {
		req.ReplyTo = r.replyTo
	}
	if err := m.is[pe].Enqueue(req); err != nil {
		m.fail(fmt.Errorf("core: I-structure request failed: %v", err))
	}
}

// isRespond forwards a FETCH response as a d=0 token from the module's PE.
func (m *Machine) isRespond(pe int, r istructure.Response) {
	rt := r.ReplyTo.(replyTag)
	t := token.Token{
		Class: token.Normal,
		Tag:   token.Tag{Activity: rt.activity},
		NT:    rt.nt,
		Port:  rt.port,
		Value: r.Value.(token.Value),
	}
	t.PE = t.Tag.HomePE(m.cfg.PEs)
	m.pes[pe].emit(t)
	m.stats.ISResponses++
}

// allocate reserves n I-structure cells and returns the base address.
func (m *Machine) allocate(n uint32) (uint32, error) {
	if m.nextAddr+n > m.isLimit || m.nextAddr+n < m.nextAddr {
		return 0, fmt.Errorf("core: I-structure space exhausted (%d cells, limit %d)", n, m.isLimit)
	}
	base := m.nextAddr
	m.nextAddr += n
	return base, nil
}

// getContext allocates a fresh invocation context.
func (m *Machine) getContext(target graph.BlockID, parent token.ActivityName, parentBlock graph.BlockID, returnDests []graph.Dest) token.Context {
	u := m.nextCtx
	m.nextCtx++
	m.ctxs[u] = &ctxRecord{block: target, parent: parent, parentBlock: parentBlock, returnDests: returnDests}
	if live := len(m.ctxs); live > m.ctxPeak {
		m.ctxPeak = live
	}
	return u
}

// maybeFreeContext reclaims an invocation record once its return fired and
// every callee entry received its argument.
func (m *Machine) maybeFreeContext(u token.Context, rec *ctxRecord) {
	if rec.returned && rec.argsSent >= len(m.prog.Block(rec.block).Entries) {
		delete(m.ctxs, u)
		m.ctxFreed++
	}
}

// fail records the first execution fault; the run loop stops on it.
func (m *Machine) fail(err error) {
	if m.runErr == nil {
		m.runErr = err
	}
}

// quiescent reports whether no work remains anywhere in the machine.
func (m *Machine) quiescent() bool {
	if m.net.Pending() != 0 {
		return false
	}
	for _, pe := range m.pes {
		if !pe.idle() {
			return false
		}
	}
	for _, mod := range m.is {
		if !mod.Idle() {
			return false
		}
	}
	return true
}

// step advances the machine one cycle: network, I-structure modules, then
// PEs, in fixed order for determinism.
func (m *Machine) step() {
	m.net.Step(m.now)
	for _, mod := range m.is {
		mod.Step(m.now)
	}
	for _, pe := range m.pes {
		pe.step(m.now)
	}
	for _, pe := range m.pes {
		pe.sample()
	}
	m.now++
}

// Run injects the entry arguments and executes to quiescence. It returns
// the program results (values returned in context 0).
func (m *Machine) Run(limit sim.Cycle, args ...token.Value) ([]token.Value, error) {
	entry := m.prog.Entry()
	if len(args) != len(entry.Entries) {
		return nil, fmt.Errorf("core: program %q wants %d arguments, got %d", m.prog.Name, len(entry.Entries), len(args))
	}
	if err := m.prog.Validate(); err != nil {
		return nil, err
	}
	for j, v := range args {
		act := token.ActivityName{Context: 0, CodeBlock: uint16(entry.ID), Statement: entry.Entries[j], Initiation: 1}
		t := token.Token{
			Class: token.Normal,
			Tag:   token.Tag{Activity: act},
			NT:    entry.Instr(entry.Entries[j]).NT,
			Port:  0,
			Value: v,
		}
		t.PE = t.Tag.HomePE(m.cfg.PEs)
		m.pes[t.PE].accept(t)
	}
	start := m.now
	for m.now-start < limit {
		if m.runErr != nil {
			return nil, m.runErr
		}
		if m.quiescent() {
			if err := m.checkClean(); err != nil {
				return nil, err
			}
			m.stats.Cycles = uint64(m.now - start)
			return m.results, nil
		}
		m.step()
	}
	return nil, fmt.Errorf("core: program %q did not finish within %d cycles", m.prog.Name, limit)
}

// checkClean verifies quiescence is completion, not deadlock: no tokens
// stranded in waiting-matching stores and no unsatisfied deferred reads.
func (m *Machine) checkClean() error {
	stranded := 0
	for _, pe := range m.pes {
		stranded += len(pe.waiting)
	}
	if stranded != 0 {
		return fmt.Errorf("core: program %q halted with %d unmatched tokens in waiting-matching stores", m.prog.Name, stranded)
	}
	deferred := 0
	for _, mod := range m.is {
		deferred += mod.OutstandingDeferred()
	}
	if deferred != 0 {
		return fmt.Errorf("core: program %q deadlocked: %d deferred reads never satisfied", m.prog.Name, deferred)
	}
	return nil
}

// Network returns the machine's interconnect (for statistics).
func (m *Machine) Network() network.Network { return m.net }

// ISModules returns the per-PE I-structure modules.
func (m *Machine) ISModules() []*istructure.Module { return m.is }

// PEStats returns per-PE statistics.
func (m *Machine) PEStats() []*PEStats {
	out := make([]*PEStats, len(m.pes))
	for i, pe := range m.pes {
		out[i] = &pe.stats
	}
	return out
}

// Stats returns machine-level statistics.
func (m *Machine) Stats() *MachineStats { return &m.stats }
