package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/token"
)

// This file is the TTDA's conservative-parallel port: with Config.Shards >
// 1 the machine runs on sim.ParallelEngine, its PEs and their co-located
// I-structure modules partitioned into contiguous shards stepped by worker
// goroutines.
//
// Why the partition is (PE i, module i) pairs: every same-cycle effect in
// the sequential sweep is local to such a pair. A module's FETCH response
// goes into its own PE's output queue (isRespond), and a PE's local d=1
// bypass reaches only its own module (emitIS fires it only when homeModule
// == pe.id). Each shard runner therefore replays the sequential order —
// its modules first, then its PEs — and observes exactly the state the
// sequential sweep would have shown it.
//
// Everything that crosses shard (or machine-global) state is appended to
// the shard's deferred-op log instead of applied: network sends and
// retries, d=2 manager operations (context allocation reads and writes the
// shared context table and must preserve the exact nextCtx/ctxPeak
// sequence), SEND-ARG and RETURN (they mutate shared invocation records),
// program results, and execution faults. The commit phase drains the logs
// in ascending shard order; shards own ascending contiguous PE ranges, so
// the drain applies every global effect in exactly the order the
// sequential sweep produced it — the bit-identity argument. Deferring is
// sound because none of these effects can reach another shard within the
// same cycle: tokens and requests travel through the network (lookahead >=
// 1) or through queues their consumer polls no earlier than the next
// cycle.
type coreShard struct {
	m  *Machine
	id int

	peQ idQueue
	isQ idQueue

	// isNext/peNext cache the sweeps' next-event answers, exactly as the
	// sequential machineDriver does. wakeIS folds a mid-step module wake
	// (a PE's local d=1 bypass after the module sweep already ran) into
	// isNext so the runner's NextEvent stays honest.
	isNext sim.Cycle
	peNext sim.Cycle

	// inStep is true while this shard's worker is inside Step. It is
	// written only by the owning worker and read either by that worker
	// (member wakes during the step) or by the coordinator after the join
	// barrier, so it needs no atomics.
	inStep bool

	// now is the shard's local clock: the tick currently being stepped.
	// Inside a multi-tick epoch window it runs ahead of the machine's
	// global clock (which only the serial net driver advances), so every
	// in-step consumer of "the current cycle" — op tick stamps, the
	// wakeIS next-cycle fold — reads it instead of m.now. Same ownership
	// discipline as inStep.
	now sim.Cycle

	// Deferred cross-shard effects, drained at the epoch barrier.
	ops []shardOp
	// busyMax accumulates the shard's busy-horizon contributions; folded
	// into the engine at commit.
	busyMax sim.Cycle
	// isResponses counts FETCH responses this shard's modules issued;
	// folded into MachineStats at commit (the global order of a counter
	// increment is immaterial).
	isResponses uint64
}

type opKind uint8

const (
	// opNetRetry replays the PE's refused-send retry loop (in-order, stop
	// at first refusal) against the real network.
	opNetRetry opKind = iota
	// opNetSend injects one packet, routing a refusal to the PE's retry
	// queue.
	opNetSend
	// opCtrl executes a d=2 manager request (GET-CONTEXT, ALLOCATE).
	opCtrl
	// opExec executes a deferred ALU case that touches the shared context
	// table (SEND-ARG/L, RETURN/L⁻¹).
	opExec
	// opFail records an execution fault.
	opFail
)

// shardOp is one deferred global effect. One struct with a kind tag keeps
// the log a single flat slice (no per-op allocation); opCtrl reuses the
// in/act/vals fields for its ctrlRequest payload rather than embedding a
// second copy of them, keeping the struct (copied on every push) small.
type shardOp struct {
	kind opKind
	// tick is the local cycle the op was produced at. In per-tick epochs
	// every logged op carries the current tick; inside a window the stamp
	// selects which commit slot drains the op, keeping the global replay
	// in exact (tick, shard) order.
	tick sim.Cycle
	pe   *PE
	pkt  *network.Packet
	// in (interpreted mode) or cin (compiled mode) names the deferred
	// instruction for opCtrl/opExec; at most one is non-nil.
	in   *graph.Instruction
	cin  *graph.CInstr
	act  token.ActivityName
	vals [2]token.Value
	err  error
}

func (sh *coreShard) push(op shardOp) {
	op.tick = sh.now
	sh.ops = append(sh.ops, op)
}

// Step runs the shard's slice of the sequential sweep: modules in
// ascending id order, then PEs in ascending id order.
func (sh *coreShard) Step(now sim.Cycle) {
	sh.inStep = true
	sh.now = now
	sh.isNext = sh.m.sweepISQ(now, &sh.isQ)
	sh.peNext = sh.m.sweepPEsQ(now, &sh.peQ)
	sh.inStep = false
}

// StepWindow implements sim.WindowRunner: the shard advances its own
// timeline through the window, stepping exactly the ticks its next-event
// answer makes due (the same ticks the per-tick engine would have stepped
// it at) and halting immediately after any tick that deferred ops — its
// own state past that tick could depend on their commit (a manager reply
// token lands in a PE's input queue at commit, a refused send re-wakes the
// PE), so the engine replays the commit with the clock rewound and
// resumes the shard from its frontier.
func (sh *coreShard) StepWindow(from, until sim.Cycle, stepped []bool, base sim.Cycle) (last, next sim.Cycle, dirty bool, steps uint64) {
	t := from
	for {
		stepped[t-base] = true
		steps++
		last = t
		sh.Step(t)
		if len(sh.ops) > 0 {
			return last, sim.Never, true, steps
		}
		nx := sh.isNext
		if sh.peNext < nx {
			nx = sh.peNext
		}
		if nx >= until {
			return last, nx, false, steps
		}
		t = nx
	}
}

// NextEvent reports the earliest future cycle any shard member can act.
// Commit-time arrivals are covered separately: wakePE/wakeIS issue an
// explicit engine wake from serial contexts, and the engine keeps the
// earliest of the two arms.
func (sh *coreShard) NextEvent(now sim.Cycle) sim.Cycle {
	next := sh.isNext
	if sh.peNext < next {
		next = sh.peNext
	}
	return next
}

// netDriver is the parallel machine's single serial component: it pins
// machine time and steps the interconnect (delivery callbacks mutate PE
// and module queues directly, which is legal in the serial phase). The
// fabric itself is attached through a MemberWaker aimed at this driver, so
// commit-time injections re-arm it exactly as a registered fabric would.
//
// The sequential driver calls net.Step at every machine-active tick, even
// when the fabric is idle — and fabrics keep per-Step state (round-robin
// arbitration pointers) that must advance identically in both modes. The
// net driver therefore steps at every engine tick: NextEvent folds in the
// shard runners' cached next events (so it is due no later than any
// runner), and wakePE/wakeIS mirror every explicit runner wake to it.
type netDriver struct{ m *Machine }

func (d *netDriver) Step(now sim.Cycle) {
	d.m.now = now
	d.m.net.Step(now)
}

func (d *netDriver) NextEvent(now sim.Cycle) sim.Cycle {
	next := sim.Never
	if !d.m.net.Idle() {
		next = d.m.net.NextEvent(now)
	}
	if d.m.winOn {
		// Windowed mode runs on a fabric that schedules exact delivery
		// times and tolerates unstepped idle ticks (network.Windowable),
		// so the co-tick mirroring below would only pin the driver's wake
		// to the runners' — which would make every serial horizon equal
		// the runner horizon and no window could ever open.
		return next
	}
	for _, sh := range d.m.shards {
		if t := sh.NextEvent(now); t < next {
			next = t
		}
	}
	return next
}

// setupShards wires the parallel engine: the net driver as the serial
// prefix, one runner per contiguous (PE, module) span.
func (m *Machine) setupShards(shards int) {
	par := sim.NewParallelEngine()
	m.par = par
	m.engine = par
	drv := &netDriver{m: m}
	m.netDrv = drv
	par.Register(drv)
	if w, ok := m.net.(sim.Wakeable); ok {
		w.Attach(sim.MemberWaker{Eng: par, Runner: drv})
	}
	lookahead := sim.Cycle(1)
	if lh, ok := m.net.(network.Lookaheader); ok {
		lookahead = lh.Lookahead()
	}
	spans, err := sim.PlanShardsLookahead(m.cfg.PEs, shards, lookahead)
	if err != nil {
		panic(err)
	}
	m.shardOf = make([]int, m.cfg.PEs)
	for si, sp := range spans {
		sh := &coreShard{m: m, id: si, isNext: sim.Never, peNext: sim.Never}
		for id := sp.Lo; id < sp.Hi; id++ {
			m.shardOf[id] = si
			m.pes[id].sh = sh
		}
		m.shards = append(m.shards, sh)
		par.RegisterShard(sh)
	}
	par.OnCommit(m.commitOps)
	// Multi-tick epoch windows: only fabrics that schedule exact delivery
	// times can be left unstepped across a window, so the opt-in is gated
	// on the fabric declaring itself Windowable. Per-tick otherwise.
	if w, ok := m.net.(network.Windowable); ok && m.cfg.EpochWindow != 0 && m.cfg.EpochWindow != 1 {
		cap := sim.Cycle(m.cfg.EpochWindow)
		if m.cfg.EpochWindow < 0 {
			cap = 0 // adaptive: bounded only by the horizon rule
		}
		par.EnableWindows(w.WindowLookahead(), cap)
		m.winOn = true
	}
}

// commitOps drains every shard's deferred-op log in ascending shard order
// — the epoch barrier that makes the parallel run bit-identical to the
// sequential sweep. Only ops produced at or before now are drained: in
// per-tick epochs that is the whole log; inside a multi-tick window the
// engine replays one production tick per call (clock rewound to it), and
// the dirty-stop protocol guarantees a shard's log never mixes ticks.
func (m *Machine) commitOps(now sim.Cycle) {
	for _, sh := range m.shards {
		if sh.isResponses != 0 {
			m.stats.ISResponses += sh.isResponses
			sh.isResponses = 0
		}
		if sh.busyMax > 0 {
			m.engine.NoteBusy(sh.busyMax)
		}
		ops := sh.ops
		n := 0
		for n < len(ops) && ops[n].tick <= now {
			n++
		}
		if n == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			m.applyOp(&ops[i])
			ops[i] = shardOp{} // drop packet/error references
		}
		if n == len(ops) {
			sh.ops = ops[:0]
		} else {
			rem := copy(ops, ops[n:])
			for i := rem; i < len(ops); i++ {
				ops[i] = shardOp{}
			}
			sh.ops = ops[:rem]
		}
	}
}

func (m *Machine) applyOp(op *shardOp) {
	pe := op.pe
	switch op.kind {
	case opNetRetry:
		for pe.netRetry.Len() > 0 {
			if !m.net.Send(pe.netRetry.Peek()) {
				return
			}
			pe.netRetry.Pop()
			pe.stats.NetSends.Inc()
		}
	case opNetSend:
		if !m.net.Send(op.pkt) {
			pe.netRetry.Push(op.pkt)
			m.wakePE(pe.id)
			return
		}
		pe.stats.NetSends.Inc()
	case opCtrl:
		if op.cin != nil {
			pe.execCtrlC(ctrlRequest{act: op.act, cin: op.cin, value: op.vals[0]})
			return
		}
		pe.execCtrl(ctrlRequest{act: op.act, instr: op.in, value: op.vals[0]})
	case opExec:
		if op.cin != nil {
			if op.cin.Kind == graph.KindSendArg {
				pe.execSendArgC(op.cin, op.act, op.vals)
			} else {
				pe.execReturnC(op.cin, op.act, op.vals)
			}
			return
		}
		switch op.in.Op {
		case graph.OpSendArg, graph.OpL:
			pe.execSendArg(op.in, op.act, op.vals)
		default:
			pe.execReturn(op.in, op.act, op.vals)
		}
	case opFail:
		m.fail(op.err)
	default:
		panic(fmt.Sprintf("core: unknown shard op %d", op.kind))
	}
}
