package core

import (
	"math/rand"
	"testing"

	"repro/internal/token"
)

// randomActivity draws a key from a small space so collisions, reuse, and
// delete-reinsert cycles are frequent.
func randomActivity(rng *rand.Rand) token.ActivityName {
	return token.ActivityName{
		Context:    token.Context(rng.Intn(8)),
		CodeBlock:  uint16(rng.Intn(4)),
		Statement:  uint16(rng.Intn(16)),
		Initiation: uint32(rng.Intn(4)),
	}
}

// TestMatchTableAgainstMap drives the open-addressed table and a reference
// map through the same random insert/lookup/remove schedule.
func TestMatchTableAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tab matchTable
	ref := map[token.ActivityName][2]token.Value{}

	for op := 0; op < 200000; op++ {
		k := randomActivity(rng)
		switch {
		case rng.Intn(3) == 0: // remove (if present)
			if _, ok := ref[k]; ok {
				tab.remove(k)
				delete(ref, k)
			} else if tab.lookup(k) != nil {
				t.Fatalf("op %d: table has %v, reference does not", op, k)
			}
		default: // upsert with a recognizable value
			v := token.Int(int64(op))
			if p := tab.lookup(k); p != nil {
				p.vals[0] = v
				e := ref[k]
				e[0] = v
				ref[k] = e
			} else {
				p := tab.insert(k)
				p.vals[0] = v
				ref[k] = [2]token.Value{v, {}}
			}
		}
		if tab.Len() != len(ref) {
			t.Fatalf("op %d: Len=%d want %d", op, tab.Len(), len(ref))
		}
	}
	for k, want := range ref {
		p := tab.lookup(k)
		if p == nil {
			t.Fatalf("key %v missing after run", k)
		}
		if p.vals[0] != want[0] {
			t.Fatalf("key %v: value %v want %v", k, p.vals[0], want[0])
		}
	}
}

// TestMatchTableBackwardShift exercises deletion inside a probe cluster:
// keys engineered (via brute force) to share a bucket must all remain
// reachable after any one of them is removed.
func TestMatchTableBackwardShift(t *testing.T) {
	var tab matchTable
	tab.init(matchTableMinBuckets)
	target := uint32(3)
	var cluster []token.ActivityName
	for i := uint32(0); len(cluster) < 5 && i < 1<<20; i++ {
		k := token.ActivityName{Context: token.Context(i), Statement: 7}
		if uint32(hashActivity(k))&tab.mask == target {
			cluster = append(cluster, k)
		}
	}
	if len(cluster) < 5 {
		t.Fatal("could not build a collision cluster")
	}
	for victim := 0; victim < len(cluster); victim++ {
		var tab matchTable
		for i, k := range cluster {
			tab.insert(k).vals[0] = token.Int(int64(i))
		}
		tab.remove(cluster[victim])
		for i, k := range cluster {
			p := tab.lookup(k)
			if i == victim {
				if p != nil {
					t.Fatalf("victim %d still present", victim)
				}
				continue
			}
			if p == nil {
				t.Fatalf("removing %d lost key %d", victim, i)
			}
			if got, _ := p.vals[0].AsInt(); got != int64(i) {
				t.Fatalf("removing %d corrupted key %d: got %d", victim, i, got)
			}
		}
	}
}

// TestMatchTableSlabReuse checks that remove recycles slab records instead
// of growing the slab, and that growth keeps outstanding entries intact.
func TestMatchTableSlabReuse(t *testing.T) {
	var tab matchTable
	k := func(i int) token.ActivityName {
		return token.ActivityName{Context: token.Context(i), Initiation: 1}
	}
	for i := 0; i < 64; i++ {
		tab.insert(k(i))
		tab.remove(k(i))
	}
	if len(tab.slab) != 1 {
		t.Fatalf("slab grew to %d records for a live population of 1", len(tab.slab))
	}
	// Push through several growths and verify all bindings survive.
	for i := 0; i < 1000; i++ {
		tab.insert(k(i)).vals[1] = token.Int(int64(i))
	}
	for i := 0; i < 1000; i++ {
		p := tab.lookup(k(i))
		if p == nil {
			t.Fatalf("key %d lost across growth", i)
		}
		if got, _ := p.vals[1].AsInt(); got != int64(i) {
			t.Fatalf("key %d: got %d after growth", i, got)
		}
	}
}
