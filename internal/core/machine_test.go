package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/token"
)

// runBoth compiles src, runs it on the reference interpreter and on a
// machine with the given config, and requires identical single results.
func runBoth(t *testing.T, cfg Config, src string, args ...token.Value) token.Value {
	t.Helper()
	prog, err := id.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	runArgs, err := id.EntryArgs(prog, args)
	if err != nil {
		t.Fatal(err)
	}
	want, err := graph.NewInterp(prog).Run(runArgs...)
	if err != nil {
		t.Fatalf("interpreter: %v", err)
	}
	m := NewMachine(cfg, prog)
	got, err := m.Run(5_000_000, runArgs...)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("machine returned %d results, interpreter %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("result %d: machine %s, interpreter %s", i, got[i], want[i])
		}
	}
	if len(got) != 1 {
		t.Fatalf("expected single result, got %v", got)
	}
	return got[0]
}

func TestMachineArithmeticSinglePE(t *testing.T) {
	got := runBoth(t, Config{PEs: 1}, "def main(a, b) = (a + b) * (a - b);", token.Int(9), token.Int(4))
	if got.I != 65 {
		t.Fatalf("got %s", got)
	}
}

func TestMachineMatchesInterpreterAcrossPECounts(t *testing.T) {
	src := `
def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);
def main(n) = fib(n);
`
	for _, pes := range []int{1, 2, 4, 8} {
		got := runBoth(t, Config{PEs: pes}, src, token.Int(12))
		if got.I != 144 {
			t.Fatalf("PEs=%d: fib(12) = %s", pes, got)
		}
	}
}

func TestMachineLoop(t *testing.T) {
	src := `
def main(n) = (initial s <- 0 for i from 1 to n do new s <- s + i return s);
`
	for _, pes := range []int{1, 3, 8} {
		got := runBoth(t, Config{PEs: pes}, src, token.Int(100))
		if got.I != 5050 {
			t.Fatalf("PEs=%d: sum = %s", pes, got)
		}
	}
}

func TestMachineTrapezoid(t *testing.T) {
	src := `
def f(x) = x * x;
def main(a, b, n) =
  { h = (b - a) / n;
    (initial s <- (f(a) + f(b)) / 2; x <- a + h
     for i from 1 to n - 1 do
       new x <- x + h;
       new s <- s + f(x)
     return s) * h };
`
	got := runBoth(t, Config{PEs: 4}, src, token.Float(0), token.Float(1), token.Float(50))
	if math.Abs(got.F-1.0/3.0) > 1e-3 {
		t.Fatalf("trapezoid = %v", got.F)
	}
}

func TestMachineIStructures(t *testing.T) {
	src := `
def main(n) =
  { a = array(n);
    p = (initial z <- 0
         for i from 0 to n - 1 do
           a[i] <- i * 2;
           new z <- z
         return 0);
    (initial s <- p
     for i from 0 to n - 1 do
       new s <- s + a[i]
     return s) };
`
	for _, pes := range []int{1, 4} {
		got := runBoth(t, Config{PEs: pes}, src, token.Int(10))
		if got.I != 90 {
			t.Fatalf("PEs=%d: sum = %s", pes, got)
		}
	}
}

func TestMachineDeterministicAcrossLatencies(t *testing.T) {
	// Dataflow graphs are determinate: the answer must not depend on
	// communication timing.
	src := `
def f(x) = if x % 2 == 0 then x / 2 else 3 * x + 1;
def steps(n) =
  (initial x <- n; c <- 0
   for i from 1 to 1000 do
     new x <- if x == 1 then 1 else f(x);
     new c <- if x == 1 then c else c + 1
   return c);
def main(n) = steps(n);
`
	var first token.Value
	for i, lat := range []sim.Cycle{1, 5, 20} {
		got := runBoth(t, Config{PEs: 4, NetLatency: lat}, src, token.Int(27))
		if i == 0 {
			first = got
		} else if !got.Equal(first) {
			t.Fatalf("latency %d changed the answer: %s vs %s", lat, got, first)
		}
	}
	if first.I != 111 {
		t.Fatalf("collatz steps(27) = %s, want 111", first)
	}
}

func TestMachineOnMeshNetwork(t *testing.T) {
	mesh := network.NewMesh(2, 2, false, 16)
	src := `def main(n) = (initial s <- 0 for i from 1 to n do new s <- s + i return s);`
	got := runBoth(t, Config{PEs: 4, Net: mesh}, src, token.Int(30))
	if got.I != 465 {
		t.Fatalf("got %s", got)
	}
	if mesh.Stats().Delivered.Value() == 0 {
		t.Fatal("no traffic crossed the mesh")
	}
}

func TestMachineOnHypercubeNetwork(t *testing.T) {
	hc := network.NewHypercube(3, 16)
	src := `
def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);
def main(n) = fib(n);
`
	got := runBoth(t, Config{PEs: 8, Net: hc}, src, token.Int(10))
	if got.I != 55 {
		t.Fatalf("got %s", got)
	}
}

func TestMachineStatsPlausible(t *testing.T) {
	prog, err := id.Compile(`def main(n) = (initial s <- 0 for i from 1 to n do new s <- s + i return s);`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(Config{PEs: 4}, prog)
	if _, err := m.Run(1_000_000, token.Int(200)); err != nil {
		t.Fatal(err)
	}
	s := m.Summarize()
	if s.Fired == 0 || s.Cycles == 0 {
		t.Fatalf("empty stats: %+v", s)
	}
	if s.ALUUtilization <= 0 || s.ALUUtilization > 1 {
		t.Fatalf("ALU utilization %v out of range", s.ALUUtilization)
	}
	if s.Matches == 0 {
		t.Fatal("two-operand instructions must produce matches")
	}
	if s.TokensD2 == 0 {
		t.Fatal("loop entry must generate d=2 (manager) traffic")
	}
	if s.MatchStoreMax == 0 {
		t.Fatal("waiting-matching store never held a token?")
	}
	if !strings.Contains(s.String(), "ALU utilization") {
		t.Fatal("summary text missing fields")
	}
}

func TestMachineFiredMatchesInterpreter(t *testing.T) {
	src := `def main(n) = (initial s <- 0 for i from 1 to n do new s <- s + i return s);`
	prog, err := id.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	it := graph.NewInterp(prog)
	if _, err := it.Run(token.Int(50)); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(Config{PEs: 2}, prog)
	if _, err := m.Run(1_000_000, token.Int(50)); err != nil {
		t.Fatal(err)
	}
	if got, want := m.Summarize().Fired, it.Fired(); got != want {
		t.Fatalf("machine fired %d instructions, interpreter %d", got, want)
	}
}

func TestMachineDeadlockDetected(t *testing.T) {
	// A fetch with no write deadlocks; the machine must report it rather
	// than spin or succeed.
	b := graph.NewBuilder("dead")
	bb := b.NewBlock("main", 1)
	alloc := bb.Op(graph.OpAllocate, "")
	addr := bb.OpLit(graph.OpIAddr, token.Int(0), 1, "")
	fetch := bb.Op(graph.OpFetch, "")
	ret := bb.Op(graph.OpReturn, "")
	bb.Connect(bb.Entry(0), alloc, 0)
	bb.Connect(alloc, addr, 0)
	bb.Connect(addr, fetch, 0)
	bb.Connect(fetch, ret, 0)
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(Config{PEs: 2}, prog)
	_, err = m.Run(100_000, token.Int(4))
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestMachineStrandedTokensDetected(t *testing.T) {
	// An instruction that receives only one of its two operands strands a
	// token in the waiting-matching store.
	b := graph.NewBuilder("stranded")
	bb := b.NewBlock("main", 1)
	add := bb.Op(graph.OpAdd, "never fires")
	ret := bb.Op(graph.OpReturn, "")
	bb.Connect(bb.Entry(0), add, 0) // port 1 never arrives
	bb.Connect(add, ret, 0)
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(Config{PEs: 1}, prog)
	_, err = m.Run(10_000, token.Int(1))
	if err == nil || !strings.Contains(err.Error(), "unmatched") {
		t.Fatalf("want unmatched-token error, got %v", err)
	}
}

func TestMachineWrongArgCount(t *testing.T) {
	prog, err := id.Compile("def main(a, b) = a + b;")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(Config{PEs: 1}, prog)
	if _, err := m.Run(1000, token.Int(1)); err == nil {
		t.Fatal("wrong arity must error")
	}
}

func TestMachineCycleLimit(t *testing.T) {
	prog, err := id.Compile(`def main(n) = (initial s <- 0 for i from 1 to n do new s <- s + i return s);`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(Config{PEs: 1}, prog)
	if _, err := m.Run(5, token.Int(1000)); err == nil || !strings.Contains(err.Error(), "did not finish") {
		t.Fatalf("want cycle-limit error, got %v", err)
	}
}

func TestMatchCapacityStalls(t *testing.T) {
	src := `
def main(n) = (initial s <- 0 for i from 1 to n do new s <- s + i return s);
`
	prog, err := id.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(Config{PEs: 1, MatchCapacity: 1}, prog)
	if _, err := m.Run(2_000_000, token.Int(50)); err != nil {
		t.Fatal(err)
	}
	st := m.PEStats()[0]
	if st.Overflows.Value() == 0 || st.Stalls.Value() == 0 {
		t.Fatalf("a one-entry waiting-matching store must overflow under loop traffic (overflows=%d stalls=%d)",
			st.Overflows.Value(), st.Stalls.Value())
	}
	// The overflow penalty must cost cycles relative to an unbounded store.
	m2 := NewMachine(Config{PEs: 1}, prog)
	if _, err := m2.Run(2_000_000, token.Int(50)); err != nil {
		t.Fatal(err)
	}
	if m.Summarize().Cycles <= m2.Summarize().Cycles {
		t.Fatalf("overflow store should slow the machine: %d vs %d cycles",
			m.Summarize().Cycles, m2.Summarize().Cycles)
	}
}

func TestMoreDataflowParallelismWithMorePEs(t *testing.T) {
	// The independent-iteration fill loop must speed up with PEs: the
	// defining latency-hiding property of the architecture.
	src := `
def main(n) =
  { a = array(n);
    fill = (initial z <- 0
            for i from 0 to n - 1 do
              a[i] <- i * i + i;
              new z <- z
            return 0);
    (initial s <- fill
     for i from 0 to n - 1 do
       new s <- s + a[i]
     return s) };
`
	prog, err := id.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cycles := map[int]uint64{}
	for _, pes := range []int{1, 8} {
		m := NewMachine(Config{PEs: pes}, prog)
		res, err := m.Run(10_000_000, token.Int(64))
		if err != nil {
			t.Fatalf("PEs=%d: %v", pes, err)
		}
		if res[0].I != 64*63/2+ // sum i
			(63*64*127)/6 { // sum i^2
			t.Fatalf("PEs=%d: wrong sum %s", pes, res[0])
		}
		cycles[pes] = m.Summarize().Cycles
	}
	if cycles[8] >= cycles[1] {
		t.Fatalf("8 PEs (%d cycles) not faster than 1 PE (%d cycles)", cycles[8], cycles[1])
	}
}

func TestTracerRecordsMachineEvents(t *testing.T) {
	prog, err := id.Compile(`
def main(n) =
  { a = array(n);
    f = (initial z <- 0
         for i from 0 to n - 1 do
           a[i] <- i;
           new z <- z
         return 0);
    a[1] + f };
`)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(64)
	m := NewMachine(Config{PEs: 2, Trace: tr}, prog)
	if _, err := m.Run(1_000_000, token.Int(4)); err != nil {
		t.Fatal(err)
	}
	if tr.Total() == 0 {
		t.Fatal("tracer saw nothing")
	}
	kinds := map[TraceKind]int{}
	for _, e := range tr.Events() {
		kinds[e.Kind]++
	}
	text := tr.String()
	for _, k := range []TraceKind{TraceResult} {
		if kinds[k] == 0 {
			t.Fatalf("no %s events in trace:\n%s", k, text)
		}
	}
	if !strings.Contains(text, "result") {
		t.Fatalf("dump missing result event:\n%s", text)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.record(TraceEvent{Cycle: simCycleAt(i), Kind: TraceFire})
	}
	ev := tr.Events()
	if len(ev) != 4 || tr.Total() != 10 {
		t.Fatalf("retained %d of %d", len(ev), tr.Total())
	}
	for i, e := range ev {
		if e.Cycle != simCycleAt(6+i) {
			t.Fatalf("ring out of order: %v", ev)
		}
	}
}

func simCycleAt(i int) sim.Cycle { return sim.Cycle(i) }

func TestContextReclamation(t *testing.T) {
	// Every invocation record must be reclaimed by the end of a clean run,
	// and the peak live count must be far below the total allocated —
	// otherwise the "unbounded namespace, finite machine" mapping leaks.
	src := `
def main(n) =
  (initial total <- 0
   for i from 1 to n do
     new total <- total + (initial s <- 0
                           for j from 1 to 8 do
                             new s <- s + j
                           return s)
   return total);
`
	prog, err := id.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(Config{PEs: 4}, prog)
	if _, err := m.Run(10_000_000, token.Int(50)); err != nil {
		t.Fatal(err)
	}
	s := m.Summarize()
	if s.CtxAllocated < 50 {
		t.Fatalf("expected >= 50 inner-loop contexts, got %d", s.CtxAllocated)
	}
	if s.CtxFreed != s.CtxAllocated {
		t.Fatalf("leaked contexts: allocated %d, freed %d", s.CtxAllocated, s.CtxFreed)
	}
	if uint64(s.CtxPeak) >= s.CtxAllocated/2 {
		t.Fatalf("peak live contexts %d too close to total %d — reclamation not helping", s.CtxPeak, s.CtxAllocated)
	}
}

func TestContextReclamationNonStrict(t *testing.T) {
	// append returns before its copy loop finishes (non-strict): records
	// must still be reclaimed exactly once, with no premature frees.
	src := `
def main(n) =
  { a = array(n);
    f = (initial z <- 0
         for i from 0 to n - 1 do
           a[i] <- i;
           new z <- z
         return 0);
    b = append(a, 1, 99);
    (initial s <- f
     for i from 0 to n - 1 do
       new s <- s + b[i]
     return s) };
`
	prog, err := id.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(Config{PEs: 4}, prog)
	res, err := m.Run(10_000_000, token.Int(8))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].I != 0+99+2+3+4+5+6+7 {
		t.Fatalf("got %s", res[0])
	}
	s := m.Summarize()
	if s.CtxFreed != s.CtxAllocated {
		t.Fatalf("allocated %d, freed %d", s.CtxAllocated, s.CtxFreed)
	}
}
