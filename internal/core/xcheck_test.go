package core

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/workload"
)

func slowFetchOpTime(op graph.Opcode) sim.Cycle {
	switch op {
	case graph.OpFetch:
		return 5
	case graph.OpMul:
		return 3
	case graph.OpDiv, graph.OpMod:
		return 6
	default:
		return 1
	}
}

func TestCrossCheckPrint(t *testing.T) {
	scs := []goldenScenario{
		{"matmul3-pe1", workload.MatMulID, []token.Value{token.Int(3)}, func() Config { return Config{PEs: 1} }},
		{"matmul3-pe1-weighted", workload.MatMulID, []token.Value{token.Int(3)}, func() Config { return Config{PEs: 1, OpTime: weightedOpTime} }},
		{"matmul3-pe1-slowfetch", workload.MatMulID, []token.Value{token.Int(3)}, func() Config { return Config{PEs: 1, OpTime: slowFetchOpTime} }},
		{"matmul4-pe2-slowfetch", workload.MatMulID, []token.Value{token.Int(4)}, func() Config { return Config{PEs: 2, OpTime: slowFetchOpTime} }},
		{"prodcons16-pe1", workload.ProducerConsumerID, []token.Value{token.Int(16)}, func() Config { return Config{PEs: 1} }},
		{"prodcons16-pe1-slowfetch", workload.ProducerConsumerID, []token.Value{token.Int(16)}, func() Config { return Config{PEs: 1, OpTime: slowFetchOpTime} }},
		{"wavefront5-pe1-weighted", workload.WavefrontID, []token.Value{token.Int(5)}, func() Config { return Config{PEs: 1, OpTime: weightedOpTime} }},
	}
	for _, sc := range scs {
		snap := snapshotRun(t, sc)
		fmt.Printf("XCHECK %s %s\n", sc.name, mustJSON(snap))
	}
}
