package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/token"
)

// Build a 4-PE tagged-token machine and run a compiled program on it.
func ExampleNewMachine() {
	prog, err := id.Compile(`
def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);
def main(n) = fib(n);
`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m := core.NewMachine(core.Config{PEs: 4, NetLatency: 2}, prog)
	res, err := m.Run(1_000_000, token.Int(10))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	s := m.Summarize()
	fmt.Printf("fib(10) = %s\n", res[0])
	fmt.Printf("every context reclaimed: %t\n", s.CtxAllocated == s.CtxFreed)
	// Output:
	// fib(10) = 55
	// every context reclaimed: true
}
