package core

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/id"
	"repro/internal/token"
	"repro/internal/workload"
)

// TestWindowedBitIdentical crosses multi-tick epoch windows into the
// core-level parallel oracle: every golden scenario must produce exactly
// the same full snapshot — results, cycle count, machine statistics,
// per-PE statistics — at every (shards, window) point as it does
// sequentially. Window 1 is the per-tick baseline TestShardedBitIdentical
// covers; 4 exercises capped windows and -1 fully adaptive ones.
func TestWindowedBitIdentical(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			seq := snapshotRun(t, sc)
			for _, shards := range []int{2, 4} {
				for _, window := range []int{4, -1} {
					par := sc
					par.cfg = func() Config {
						c := sc.cfg()
						c.Shards = shards
						c.EpochWindow = window
						return c
					}
					got := snapshotRun(t, par)
					if !reflect.DeepEqual(seq, got) {
						t.Errorf("shards=%d window=%d diverged from sequential:\n  seq: %s\n  par: %s",
							shards, window, mustJSON(seq), mustJSON(got))
					}
				}
			}
		})
	}
}

// TestWindowedIndependentOfGOMAXPROCS pins that the worker count the
// runtime grants does not leak into a windowed run — in particular that
// the pooled window passes (GOMAXPROCS >= 2) and the inline degenerate
// path (GOMAXPROCS = 1) agree bit-for-bit.
func TestWindowedIndependentOfGOMAXPROCS(t *testing.T) {
	sc := goldenScenario{
		name: "gomaxprocs-window-matmul4-pe8",
		src:  workload.MatMulID,
		args: []token.Value{token.Int(4)},
		cfg:  func() Config { return Config{PEs: 8, Shards: 4, EpochWindow: -1} },
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var first runSnapshot
	for i, procs := range []int{1, 2, 4, prev} {
		runtime.GOMAXPROCS(procs)
		got := snapshotRun(t, sc)
		if i == 0 {
			first = got
		} else if !reflect.DeepEqual(first, got) {
			t.Fatalf("GOMAXPROCS=%d changed the windowed run:\n  first: %s\n  got:   %s",
				procs, mustJSON(first), mustJSON(got))
		}
	}
}

// TestWindowsActuallyEngage guards against the whole mechanism silently
// regressing to per-tick epochs: on a windowable fabric with sparse
// cross-shard traffic, an adaptive run must report a nonzero window count
// covering more cycles than windows (i.e. some window was wider than one
// tick).
func TestWindowsActuallyEngage(t *testing.T) {
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(Config{PEs: 8, Shards: 2, NetLatency: 8, EpochWindow: -1}, prog)
	if _, err := m.Run(500_000_000, token.Int(4)); err != nil {
		t.Fatal(err)
	}
	windows, cycles := m.WindowStats()
	if windows == 0 {
		t.Fatal("adaptive run executed zero multi-tick windows")
	}
	if cycles <= windows {
		t.Fatalf("windows never widened: %d windows covered %d cycles", windows, cycles)
	}
	// A per-tick config must report none.
	seq := NewMachine(Config{PEs: 8, Shards: 2, NetLatency: 8}, prog)
	if _, err := seq.Run(500_000_000, token.Int(4)); err != nil {
		t.Fatal(err)
	}
	if w, c := seq.WindowStats(); w != 0 || c != 0 {
		t.Fatalf("per-tick run reported window stats %d/%d", w, c)
	}
}
