package core

import "repro/internal/token"

// matchTable is the waiting-matching store: an open-addressed hash table
// mapping activity names to half-matched operand records. It replaces the
// earlier map[token.ActivityName]*partial with two dense structures — a
// linear-probed bucket array (key + slab index) and a slab of partial
// records recycled through a free list — so the matching section's hot
// path (lookup, insert, remove on every d=0 token) touches contiguous
// memory and allocates only when the live population grows past any
// previous peak.
//
// Deletion uses backward-shift compaction instead of tombstones: probe
// chains stay minimal no matter how many insert/remove cycles a run
// performs, so the table's behaviour is a pure function of its contents.
// The hash is a fixed (seedless) mix, which keeps runs reproducible; no
// caller ever iterates the table, so layout never leaks into simulation
// order.
type matchTable struct {
	keys []token.ActivityName
	// idx[b] is the slab index of the entry in bucket b, or matchEmpty.
	idx  []int32
	mask uint32
	n    int

	slab []partial
	free []int32
}

const matchEmpty = int32(-1)

// matchTableMinBuckets is the initial bucket count (power of two).
const matchTableMinBuckets = 16

func (t *matchTable) init(buckets int) {
	t.keys = make([]token.ActivityName, buckets)
	t.idx = make([]int32, buckets)
	for i := range t.idx {
		t.idx[i] = matchEmpty
	}
	t.mask = uint32(buckets - 1)
	t.n = 0
}

// hashActivity mixes the (u, c, s, i) four-tuple into a bucket hash with a
// splitmix64-style finalizer. Fixed constants, no per-run seed: two runs
// of the same program produce identical tables.
func hashActivity(k token.ActivityName) uint64 {
	h := uint64(k.Context)<<32 | uint64(k.CodeBlock)<<16 | uint64(k.Statement)
	h ^= uint64(k.Initiation) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Len reports the number of half-matched activities resident in the store.
func (t *matchTable) Len() int { return t.n }

// lookup returns the partial record for k, or nil when absent. The pointer
// stays valid until the next insert (which may grow the slab).
func (t *matchTable) lookup(k token.ActivityName) *partial {
	if t.n == 0 {
		return nil
	}
	b := uint32(hashActivity(k)) & t.mask
	for {
		s := t.idx[b]
		if s == matchEmpty {
			return nil
		}
		if t.keys[b] == k {
			return &t.slab[s]
		}
		b = (b + 1) & t.mask
	}
}

// lookupOrInsert returns the partial record for k, inserting a zeroed one
// when absent (inserted reports which). It fuses the lookup-then-insert
// pair the matching section performs on every first-operand arrival into
// one probe sequence: the failed lookup already found the insertion
// bucket, so insert-after-miss need not rehash and re-probe.
func (t *matchTable) lookupOrInsert(k token.ActivityName) (p *partial, inserted bool) {
	if t.idx == nil {
		t.init(matchTableMinBuckets)
	}
	b := uint32(hashActivity(k)) & t.mask
	for {
		s := t.idx[b]
		if s == matchEmpty {
			break
		}
		if t.keys[b] == k {
			return &t.slab[s], false
		}
		b = (b + 1) & t.mask
	}
	if uint32(t.n) >= (t.mask+1)/4*3 {
		t.grow()
		// Growth rehashed every binding; the probe position is stale.
		b = uint32(hashActivity(k)) & t.mask
		for t.idx[b] != matchEmpty {
			b = (b + 1) & t.mask
		}
	}
	var s int32
	if n := len(t.free); n > 0 {
		s = t.free[n-1]
		t.free = t.free[:n-1]
		t.slab[s] = partial{}
	} else {
		s = int32(len(t.slab))
		t.slab = append(t.slab, partial{})
	}
	t.keys[b] = k
	t.idx[b] = s
	t.n++
	return &t.slab[s], true
}

// insert adds a zeroed partial record for k, which must be absent, and
// returns it.
func (t *matchTable) insert(k token.ActivityName) *partial {
	if t.idx == nil {
		t.init(matchTableMinBuckets)
	} else if uint32(t.n) >= (t.mask+1)/4*3 {
		t.grow()
	}
	var s int32
	if n := len(t.free); n > 0 {
		s = t.free[n-1]
		t.free = t.free[:n-1]
		t.slab[s] = partial{}
	} else {
		s = int32(len(t.slab))
		t.slab = append(t.slab, partial{})
	}
	t.place(k, s)
	t.n++
	return &t.slab[s]
}

// place finds k's probe slot and stores the binding (no growth, no count).
func (t *matchTable) place(k token.ActivityName, s int32) {
	b := uint32(hashActivity(k)) & t.mask
	for t.idx[b] != matchEmpty {
		b = (b + 1) & t.mask
	}
	t.keys[b] = k
	t.idx[b] = s
}

// remove deletes k's entry, recycling its slab record. The key must be
// present. Backward-shift compaction: entries displaced past the freed
// bucket by linear probing move back so every remaining entry stays
// reachable from its home bucket without tombstones.
func (t *matchTable) remove(k token.ActivityName) {
	b := uint32(hashActivity(k)) & t.mask
	for t.keys[b] != k || t.idx[b] == matchEmpty {
		b = (b + 1) & t.mask
	}
	t.free = append(t.free, t.idx[b])
	t.n--
	// Shift the tail of the probe cluster back over the hole.
	hole := b
	for {
		b = (b + 1) & t.mask
		s := t.idx[b]
		if s == matchEmpty {
			break
		}
		home := uint32(hashActivity(t.keys[b])) & t.mask
		// The entry may move back iff the hole lies cyclically within
		// [home, b); otherwise it is already at or before its home.
		if (b-home)&t.mask >= (b-hole)&t.mask {
			t.keys[hole] = t.keys[b]
			t.idx[hole] = s
			hole = b
		}
	}
	t.idx[hole] = matchEmpty
}

// grow doubles the bucket array and rehashes every binding. Slab indices —
// and therefore outstanding *partial pointers — are unaffected.
func (t *matchTable) grow() {
	oldKeys, oldIdx := t.keys, t.idx
	t.init(int(2 * (t.mask + 1)))
	n := 0
	for b, s := range oldIdx {
		if s != matchEmpty {
			t.place(oldKeys[b], s)
			n++
		}
	}
	t.n = n
}
