package core

import (
	"fmt"
	"strings"
)

// MachineStats aggregates machine-level measurements of one run.
type MachineStats struct {
	// Cycles is the run length at quiescence.
	Cycles uint64
	// ISResponses counts FETCH responses produced by I-structure modules.
	ISResponses uint64
}

// Summary condenses a finished run into the figures the experiments plot.
type Summary struct {
	Cycles         uint64
	Fired          uint64  // instruction executions across all PEs
	ALUUtilization float64 // mean across PEs
	Matches        uint64
	MatchStoreMax  int64 // peak associative-store entries on any PE
	MatchStoreMean float64
	NetSends       uint64
	LocalBypass    uint64
	TokensD0       uint64
	TokensD1       uint64
	TokensD2       uint64
	DeferredReads  uint64 // reads that arrived before their write
	ISReads        uint64
	ISWrites       uint64
	// Context-manager accounting: records allocated, reclaimed, and the
	// peak simultaneously live — the finite resource a manager provides.
	CtxAllocated uint64
	CtxFreed     uint64
	CtxPeak      int
}

// Summarize collects the per-PE and I-structure statistics of a finished
// run.
func (m *Machine) Summarize() Summary {
	var s Summary
	s.Cycles = m.stats.Cycles
	util := 0.0
	for _, pe := range m.pes {
		s.Fired += pe.stats.Fired.Value()
		util += pe.stats.ALU.Fraction()
		s.Matches += pe.stats.Matches.Value()
		if v := pe.stats.MatchStoreOccupancy.Max(); v > s.MatchStoreMax {
			s.MatchStoreMax = v
		}
		s.MatchStoreMean += pe.stats.MatchStoreOccupancy.Mean()
		s.NetSends += pe.stats.NetSends.Value()
		s.LocalBypass += pe.stats.LocalBypass.Value()
		s.TokensD0 += pe.stats.TokensD0.Value()
		s.TokensD1 += pe.stats.TokensD1.Value()
		s.TokensD2 += pe.stats.TokensD2.Value()
	}
	n := float64(len(m.pes))
	s.ALUUtilization = util / n
	s.MatchStoreMean /= n
	for _, mod := range m.is {
		st := mod.Stats()
		s.DeferredReads += st.DeferredReads.Value()
		s.ISReads += st.Reads.Value()
		s.ISWrites += st.Writes.Value()
	}
	s.CtxAllocated = uint64(m.nextCtx - 1)
	s.CtxFreed = m.ctxFreed
	s.CtxPeak = m.ctxPeak
	return s
}

// String renders the summary as a readable block.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles            %d\n", s.Cycles)
	fmt.Fprintf(&b, "instructions      %d\n", s.Fired)
	fmt.Fprintf(&b, "ALU utilization   %.3f\n", s.ALUUtilization)
	fmt.Fprintf(&b, "matches           %d\n", s.Matches)
	fmt.Fprintf(&b, "match store peak  %d (mean %.1f)\n", s.MatchStoreMax, s.MatchStoreMean)
	fmt.Fprintf(&b, "tokens d=0/1/2    %d/%d/%d\n", s.TokensD0, s.TokensD1, s.TokensD2)
	fmt.Fprintf(&b, "net sends         %d (local bypass %d)\n", s.NetSends, s.LocalBypass)
	fmt.Fprintf(&b, "I-structure r/w   %d/%d (deferred %d)\n", s.ISReads, s.ISWrites, s.DeferredReads)
	fmt.Fprintf(&b, "contexts          %d allocated, %d freed, peak %d live\n", s.CtxAllocated, s.CtxFreed, s.CtxPeak)
	return b.String()
}
