package core

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/id"
	"repro/internal/token"
	"repro/internal/workload"
)

// TestShardedBitIdentical is the core-level conformance oracle for the
// conservative parallel kernel: every golden scenario must produce exactly
// the same results, cycle count, machine statistics, and per-PE statistics
// at every shard count as it does sequentially. Not "statistically
// equivalent" — bit-identical, via reflect.DeepEqual over the full golden
// snapshot.
func TestShardedBitIdentical(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			seq := snapshotRun(t, sc)
			for _, shards := range []int{2, 3, 4, 8} {
				par := sc
				par.cfg = func() Config {
					c := sc.cfg()
					c.Shards = shards
					return c
				}
				got := snapshotRun(t, par)
				if !reflect.DeepEqual(seq, got) {
					t.Errorf("shards=%d diverged from sequential:\n  seq: %s\n  par: %s",
						shards, mustJSON(seq), mustJSON(got))
				}
			}
		})
	}
}

// TestShardedIndependentOfGOMAXPROCS pins the other determinism axis: the
// worker count the runtime grants must not leak into simulated state.
func TestShardedIndependentOfGOMAXPROCS(t *testing.T) {
	sc := goldenScenario{
		name: "gomaxprocs-matmul4-pe8",
		src:  workload.MatMulID,
		args: []token.Value{token.Int(4)},
		cfg:  func() Config { return Config{PEs: 8, Shards: 4} },
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var first runSnapshot
	for i, procs := range []int{1, 2, prev} {
		runtime.GOMAXPROCS(procs)
		got := snapshotRun(t, sc)
		if i == 0 {
			first = got
		} else if !reflect.DeepEqual(first, got) {
			t.Fatalf("GOMAXPROCS=%d changed the run:\n  first: %s\n  got:   %s",
				procs, mustJSON(first), mustJSON(got))
		}
	}
}

// TestShardedWorkerSteps checks the per-worker accounting surface: a
// sharded run reports one counter per worker and the workers collectively
// did something; a sequential machine reports none.
func TestShardedWorkerSteps(t *testing.T) {
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(Config{PEs: 8, Shards: 4}, prog)
	if _, err := m.Run(500_000_000, token.Int(4)); err != nil {
		t.Fatal(err)
	}
	steps := m.WorkerSteps()
	if len(steps) == 0 {
		t.Fatal("sharded machine reported no worker counters")
	}
	var total uint64
	for _, s := range steps {
		total += s
	}
	if total == 0 {
		t.Fatal("workers never stepped a shard")
	}
	seq := NewMachine(Config{PEs: 8}, prog)
	if _, err := seq.Run(500_000_000, token.Int(4)); err != nil {
		t.Fatal(err)
	}
	if seq.WorkerSteps() != nil {
		t.Fatal("sequential machine should report no worker counters")
	}
}

// TestShardedErrorsMatchSequential runs the failure paths (deadlock,
// stranded token) sharded: faults are deferred ops, so the parallel
// machine must report the same class of error the sequential one does.
func TestShardedErrorsMatchSequential(t *testing.T) {
	prog, err := id.Compile(`def main(n) = (initial s <- 0 for i from 1 to n do new s <- s + i return s);`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(Config{PEs: 4, Shards: 2}, prog)
	if _, err := m.Run(5, token.Int(1000)); err == nil {
		t.Fatal("sharded run must still hit the cycle limit")
	}
}

// TestTraceForcesSequential documents the Shards/Trace interaction: tracing
// samples mid-step state, so a traced machine must stay on the sequential
// path even when shards are requested.
func TestTraceForcesSequential(t *testing.T) {
	prog, err := id.Compile(workload.SumLoopID)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(64)
	m := NewMachine(Config{PEs: 4, Shards: 4, Trace: tr}, prog)
	if _, err := m.Run(1_000_000, token.Int(10)); err != nil {
		t.Fatal(err)
	}
	if m.WorkerSteps() != nil {
		t.Fatal("traced machine must run sequentially")
	}
	if tr.Total() == 0 {
		t.Fatal("tracer saw nothing")
	}
}
