package core

import (
	"bytes"
	"testing"

	"repro/internal/id"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/workload"
)

// FuzzCheckpointDecode throws arbitrary bytes at the whole-machine restore
// path. The invariants: decoding NEVER panics, and any stream Restore
// accepts is canonical — re-saving the restored machine reproduces the
// input byte-for-byte, so corruption is either rejected with an error or
// provably absorbed into a self-consistent state, never silently
// misdecoded. The in-code seeds below cover the canonical corruption
// classes (truncation, flipped byte, bumped format version, empty input);
// the committed corpus under testdata/fuzz mirrors them — regenerate it
// with `go run gen_corpus.go` in this directory.
func FuzzCheckpointDecode(f *testing.F) {
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		f.Fatalf("compile: %v", err)
	}
	args, err := id.EntryArgs(prog, []token.Value{token.Int(3)})
	if err != nil {
		f.Fatal(err)
	}
	build := func() *Machine { return NewMachine(Config{PEs: 4}, prog) }

	m := build()
	if _, err := m.Run(200, args...); err == nil {
		f.Fatal("seed run finished before the pause point")
	}
	valid := sim.Checkpoint(m)

	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	bumped := append([]byte(nil), valid...)
	bumped[11] ^= 0xFF // the U32 format version right after the magic string
	f.Add(bumped)

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh := build()
		if err := sim.Restore(fresh, data); err != nil {
			return // rejected cleanly; panics are the fuzzer's failure mode
		}
		if re := sim.Checkpoint(fresh); !bytes.Equal(re, data) {
			t.Fatalf("accepted a non-canonical stream: re-save differs (%d vs %d bytes)", len(re), len(data))
		}
		// Drive the restored machine a little; a hung resume is legal for a
		// mutated-but-consistent state, but it must not panic.
		_, _ = fresh.Run(10_000)
	})
}
