// Package core implements the paper's primary contribution: a
// cycle-accurate simulator of the Tagged-Token Dataflow Architecture of
// Figures 2-3 and 2-4. A machine is a set of processing elements joined by
// a packet network; each PE is the pipeline
//
//	input → waiting-matching → instruction fetch → ALU → output section
//
// with a co-located I-structure storage controller (d=1 tokens) and a PE
// controller for manager operations (d=2 tokens: context allocation and
// I-structure allocation). Tokens carry <d, PE, (u,c,s,i), nt, port, data>
// exactly as Section 2.2.2 describes; the unbounded activity-name space is
// mapped onto the machine by hashing tags to PEs.
//
// The machine executes the same compiled graphs as the reference
// interpreter (internal/graph) and the emulator (internal/emulator), and
// must agree with them on every answer.
package core

import (
	"repro/internal/graph"
	"repro/internal/network"
	"repro/internal/sim"
)

// Config parameterizes a Machine.
type Config struct {
	// PEs is the number of processing elements (minimum 1).
	PEs int

	// Net carries inter-PE traffic. Nil selects an ideal network with
	// NetLatency cycles of transit; experiments substitute real topologies.
	Net network.Network
	// NetLatency configures the default ideal network (minimum 1).
	NetLatency sim.Cycle

	// OpTime gives per-opcode ALU service times; nil means one cycle for
	// every operation. The function must be pure: it is sampled once per
	// opcode at machine construction into a dense table.
	OpTime func(graph.Opcode) sim.Cycle

	// Compiled executes the ahead-of-time compiled plan (graph.Compile)
	// instead of walking the IR per token. The plan is a pure host-side
	// acceleration: simulated behaviour — results, cycle counts, every
	// statistic, even the engine's scheduling counters — is bit-identical
	// to the interpreted path, which the conformance suite's
	// compiled-equivalence oracle and the -compiled golden runs enforce.
	Compiled bool

	// Shards > 1 runs the machine on the conservative parallel simulation
	// kernel: PEs and their co-located I-structure modules are split into
	// that many contiguous shards, each stepped by a pinned worker
	// goroutine, with cross-shard effects deferred to a per-cycle commit
	// barrier. Results, cycle counts, and statistics are bit-identical to
	// the sequential run (Shards <= 1). Ignored when Trace is set —
	// tracing samples machine state mid-step and stays single-threaded.
	Shards int

	// EpochWindow controls multi-tick epoch windows on the parallel
	// kernel (Shards > 1): 0 or 1 runs the classic one-tick epochs, a
	// value >= 2 caps each window at that many cycles, and a negative
	// value runs fully adaptive windows bounded only by the fabric's
	// cross-shard horizon. Windows require a fabric that declares a
	// windowing lookahead (network.Windowable — the ideal network does;
	// stepped fabrics with per-cycle arbitration do not): with any other
	// fabric the setting is silently ignored and epochs stay per-tick.
	// Results, cycle counts, and statistics are bit-identical across all
	// settings.
	EpochWindow int

	// MatchBandwidth is how many tokens the waiting-matching section
	// accepts per cycle. The default 2 models a dual-ported associative
	// store so one two-operand instruction can be enabled per cycle.
	MatchBandwidth int
	// OutputBandwidth is how many result tokens the output section emits
	// per cycle (default 2: one per operand consumer on average).
	OutputBandwidth int
	// MatchCapacity bounds the waiting-matching store entries (0 =
	// unbounded). When full, the input stage stalls — the associative
	// memory pressure the paper worries about.
	MatchCapacity int

	// ControllerTime is the PE-controller service time for d=2 requests
	// (context and structure allocation); default 2 cycles.
	ControllerTime sim.Cycle

	// ISCellsPerPE sizes each PE's I-structure module (default 1<<16).
	// Global addresses interleave across PEs: address a lives on module
	// a mod PEs.
	ISCellsPerPE uint32
	// ISReadTime and ISWriteTime are controller occupancies; defaults 1
	// and 2 (the paper's ratio).
	ISReadTime, ISWriteTime sim.Cycle

	// Trace, when non-nil, records machine events (instruction firings,
	// I-structure traffic, manager operations) into a bounded ring.
	Trace *Tracer
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.PEs < 1 {
		c.PEs = 1
	}
	if c.NetLatency < 1 {
		c.NetLatency = 2
	}
	if c.MatchBandwidth < 1 {
		c.MatchBandwidth = 2
	}
	if c.OutputBandwidth < 1 {
		c.OutputBandwidth = 2
	}
	if c.ControllerTime < 1 {
		c.ControllerTime = 2
	}
	if c.ISCellsPerPE == 0 {
		c.ISCellsPerPE = 1 << 16
	}
	if c.ISReadTime == 0 {
		c.ISReadTime = 1
	}
	if c.ISWriteTime == 0 {
		c.ISWriteTime = 2
	}
	if c.OpTime == nil {
		c.OpTime = func(graph.Opcode) sim.Cycle { return 1 }
	}
	return c
}
