package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
	"repro/internal/token"
)

// TraceEvent is one recorded machine event.
type TraceEvent struct {
	Cycle  sim.Cycle
	PE     int
	Kind   TraceKind
	Detail string
}

// TraceKind classifies trace events.
type TraceKind uint8

// Trace event kinds.
const (
	TraceFire   TraceKind = iota // ALU executed an instruction
	TraceISRead                  // d=1 read request issued
	TraceISWrite
	TraceGetCtx // d=2 context allocation served
	TraceAlloc  // d=2 structure allocation served
	TraceResult // a value returned in context 0
)

var traceKindNames = [...]string{
	TraceFire: "fire", TraceISRead: "is-read", TraceISWrite: "is-write",
	TraceGetCtx: "getc", TraceAlloc: "alloc", TraceResult: "result",
}

func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Tracer records machine events into a bounded ring buffer. Attach one via
// Config.Trace; a nil tracer costs nothing on the hot path.
type Tracer struct {
	ring  []TraceEvent
	next  int
	total uint64
}

// NewTracer returns a tracer keeping the last capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]TraceEvent, 0, capacity)}
}

// record appends an event, evicting the oldest past capacity.
func (t *Tracer) record(e TraceEvent) {
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		return
	}
	t.ring[t.next] = e
	t.next = (t.next + 1) % cap(t.ring)
}

// Total reports how many events were observed (including evicted ones).
func (t *Tracer) Total() uint64 { return t.total }

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []TraceEvent {
	if len(t.ring) < cap(t.ring) {
		return append([]TraceEvent(nil), t.ring...)
	}
	out := make([]TraceEvent, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dump writes the retained events as aligned text.
func (t *Tracer) Dump(w io.Writer) {
	events := t.Events()
	fmt.Fprintf(w, "trace: %d events observed, last %d retained\n", t.total, len(events))
	for _, e := range events {
		fmt.Fprintf(w, "  [%8d] PE%-3d %-8s %s\n", e.Cycle, e.PE, e.Kind, e.Detail)
	}
}

// String renders the dump.
func (t *Tracer) String() string {
	var b strings.Builder
	t.Dump(&b)
	return b.String()
}

// trace records an event if tracing is enabled.
func (pe *PE) trace(kind TraceKind, format string, args ...interface{}) {
	tr := pe.m.cfg.Trace
	if tr == nil {
		return
	}
	tr.record(TraceEvent{
		Cycle:  pe.m.now,
		PE:     pe.id,
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

// traceActivity passes an activity through for trace details unformatted:
// trace arguments are evaluated even when tracing is off, so returning the
// value (whose String method fmt invokes lazily inside record) keeps the
// Sprintf off the firing hot path.
func traceActivity(act token.ActivityName) token.ActivityName { return act }
