package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/istructure"
	"repro/internal/token"
)

// This file is the compiled-mode ALU stage: the machine executes a
// graph.CompiledGraph plan instead of walking the IR per token. Each
// function here mirrors an interpreted counterpart in pe.go — same case
// order, same error strings, same statistics — and must stay observably
// identical to it; the conformance suite's compiled-equivalence oracle and
// the -compiled golden runs check that bit for bit. What changes is only
// host-side work: dispatch switches on the precomputed ExecKind, literals
// and destination nt fields come from the plan (no instruction fetches
// when building result tokens), and trace formatting is skipped when
// tracing is off.

// executeC is the compiled counterpart of execute.
func (pe *PE) executeC(in *graph.CInstr, e enabledInstr) {
	act := e.act
	vals := e.vals
	if in.HasLit {
		vals[in.LitPort] = in.Lit
	}
	switch in.Kind {
	case graph.KindPure:
		v, err := graph.Eval(in.Op, vals[0], vals[1])
		if err != nil {
			pe.fail(fmt.Errorf("core: %v at %s %s", err, act, in.Op))
			return
		}
		pe.sendToDestsC(act, in.Dests, v)
	case graph.KindSwitch:
		c, err := vals[1].AsBool()
		if err != nil {
			pe.fail(fmt.Errorf("core: switch control at %s: %v", act, err))
			return
		}
		if c {
			pe.sendToDestsC(act, in.Dests, vals[0])
		} else {
			pe.sendToDestsC(act, in.DestsFalse, vals[0])
		}
	case graph.KindGetContext, graph.KindAllocate:
		// d=2: manager request to the PE controller
		pe.stats.TokensD2.Inc()
		pe.ctrlQ.Push(ctrlRequest{act: act, cin: in, value: vals[0]})
	case graph.KindSendArg:
		if pe.sh != nil {
			pe.sh.push(shardOp{kind: opExec, pe: pe, cin: in, act: act, vals: vals})
			return
		}
		pe.execSendArgC(in, act, vals)
	case graph.KindD:
		pe.sendToDestsInitC(act, in.Dests, vals[0], act.Initiation+1)
	case graph.KindDInv:
		pe.sendToDestsInitC(act, in.Dests, vals[0], 1)
	case graph.KindReturn:
		if pe.sh != nil {
			pe.sh.push(shardOp{kind: opExec, pe: pe, cin: in, act: act, vals: vals})
			return
		}
		pe.execReturnC(in, act, vals)
	case graph.KindFetch:
		// See execute's OpFetch case for why reading nextAddr here is safe
		// in a shard's parallel step.
		addr, err := vals[0].AsInt()
		if err != nil || addr < 0 || uint32(addr) >= pe.m.nextAddr {
			pe.fail(fmt.Errorf("core: fetch at %s: bad address %s", act, vals[0]))
			return
		}
		d := in.Dests[0]
		rt := replyTag{
			activity: token.ActivityName{
				Context:    act.Context,
				CodeBlock:  act.CodeBlock,
				Statement:  d.Stmt,
				Initiation: act.Initiation,
			},
			port: d.Port,
			nt:   d.NT,
		}
		if pe.m.cfg.Trace != nil {
			pe.trace(TraceISRead, "addr=%d for %s", addr, traceActivity(rt.activity))
		}
		pe.emitIS(isRequest{op: istructure.OpRead, addr: uint32(addr), replyTo: rt})
	case graph.KindStore:
		addr, err := vals[0].AsInt()
		if err != nil || addr < 0 || uint32(addr) >= pe.m.nextAddr {
			pe.fail(fmt.Errorf("core: store at %s: bad address %s", act, vals[0]))
			return
		}
		if pe.m.cfg.Trace != nil {
			pe.trace(TraceISWrite, "addr=%d value=%s", addr, vals[1])
		}
		pe.emitIS(isRequest{op: istructure.OpWrite, addr: uint32(addr), value: vals[1]})
	case graph.KindSink, graph.KindNop:
		// absorbed
	default:
		pe.fail(fmt.Errorf("core: cannot execute %s", in.Op))
	}
}

// execCtrlC is the compiled counterpart of execCtrl. Serial contexts only.
func (pe *PE) execCtrlC(r ctrlRequest) {
	in := r.cin
	switch in.Kind {
	case graph.KindGetContext:
		u := pe.m.getContextC(in.Target, r.act, graph.BlockID(r.act.CodeBlock), in.RetDests)
		pe.trace(TraceGetCtx, "u=%d for block %d", u, in.Target)
		pe.sendToDestsC(r.act, in.Dests, token.Int(int64(u)))
	case graph.KindAllocate:
		n, err := r.value.AsInt()
		if err != nil || n < 0 {
			pe.m.fail(fmt.Errorf("core: allocate at %s: bad size %s", r.act, r.value))
			return
		}
		base, err := pe.m.allocate(uint32(n))
		if err != nil {
			pe.m.fail(err)
			return
		}
		pe.trace(TraceAlloc, "base=%d len=%d", base, n)
		pe.sendToDestsC(r.act, in.Dests, token.NewRef(token.Ref{Base: base, Len: uint32(n)}))
	default:
		pe.m.fail(fmt.Errorf("core: controller cannot service %s", in.Op))
	}
}

// execSendArgC is the compiled counterpart of execSendArg: the callee's
// entry statement and its nt come from the plan's CBlock. Serial contexts
// only.
func (pe *PE) execSendArgC(in *graph.CInstr, act token.ActivityName, vals [2]token.Value) {
	h, err := vals[0].AsInt()
	if err != nil {
		pe.m.fail(fmt.Errorf("core: %s handle at %s: %v", in.Op, act, err))
		return
	}
	rec := pe.m.ctxLookup(token.Context(h))
	if rec == nil {
		pe.m.fail(fmt.Errorf("core: %s at %s: unknown context %d", in.Op, act, h))
		return
	}
	callee := pe.m.plan.Block(rec.block)
	if int(in.ArgIndex) >= len(callee.Entries) {
		pe.m.fail(fmt.Errorf("core: %s at %s: arg %d out of range", in.Op, act, in.ArgIndex))
		return
	}
	rec.argsSent++
	newAct := token.ActivityName{
		Context:    token.Context(h),
		CodeBlock:  uint16(rec.block),
		Statement:  callee.Entries[in.ArgIndex],
		Initiation: 1,
	}
	nt := callee.EntryNT[in.ArgIndex]
	pe.m.maybeFreeContext(token.Context(h), rec)
	pe.sendTokenC(newAct, nt, 0, vals[1])
}

// execReturnC is the compiled counterpart of execReturn: return
// destinations are the plan's CDest records, which carry the receiver's
// nt. Serial contexts only.
func (pe *PE) execReturnC(in *graph.CInstr, act token.ActivityName, vals [2]token.Value) {
	if act.Context == 0 {
		pe.trace(TraceResult, "%s", vals[0])
		pe.m.results = append(pe.m.results, vals[0])
		return
	}
	rec := pe.m.ctxLookup(act.Context)
	if rec == nil {
		pe.m.fail(fmt.Errorf("core: %s at %s: unknown context", in.Op, act))
		return
	}
	rec.returned = true
	for _, d := range rec.returnDestsC {
		newAct := token.ActivityName{
			Context:    rec.parent.Context,
			CodeBlock:  uint16(rec.parentBlock),
			Statement:  d.Stmt,
			Initiation: rec.parent.Initiation,
		}
		pe.sendTokenC(newAct, d.NT, d.Port, vals[0])
	}
	pe.m.maybeFreeContext(act.Context, rec)
}

// sendToDestsC builds result tokens from flattened plan destinations: the
// nt field rides in the CDest, so no instruction is fetched per token.
func (pe *PE) sendToDestsC(act token.ActivityName, dests []graph.CDest, v token.Value) {
	pe.sendToDestsInitC(act, dests, v, act.Initiation)
}

// sendToDestsInitC is sendToDestsC with an explicit initiation number (for
// D and D⁻¹).
func (pe *PE) sendToDestsInitC(act token.ActivityName, dests []graph.CDest, v token.Value, initiation uint32) {
	for _, d := range dests {
		newAct := token.ActivityName{
			Context:    act.Context,
			CodeBlock:  act.CodeBlock,
			Statement:  d.Stmt,
			Initiation: initiation,
		}
		t := token.Token{
			Class: token.Normal,
			Tag:   token.Tag{Activity: newAct},
			NT:    d.NT,
			Port:  d.Port,
			Value: v,
		}
		t.PE = t.Tag.HomePE(pe.m.cfg.PEs)
		pe.emit(t)
	}
}

// sendTokenC emits a fully-formed token whose receiver nt is already known
// from the plan (cross-block sends).
func (pe *PE) sendTokenC(act token.ActivityName, nt, port uint8, v token.Value) {
	t := token.Token{
		Class: token.Normal,
		Tag:   token.Tag{Activity: act},
		NT:    nt,
		Port:  port,
		Value: v,
	}
	t.PE = t.Tag.HomePE(pe.m.cfg.PEs)
	pe.emit(t)
}
