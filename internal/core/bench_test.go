package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/workload"
)

// benchRun drives one full matmul(4) run on 8 PEs — the kernel point the
// bench harness (cmd/critique-bench) reports mcycles_per_sec for.
func benchRun(b *testing.B, compiled bool) {
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		b.Fatal(err)
	}
	var plan *graph.CompiledGraph
	if compiled {
		if plan, err = graph.Compile(prog); err != nil {
			b.Fatal(err)
		}
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m *Machine
		if compiled {
			m = NewMachineWithPlan(Config{PEs: 8}, plan)
		} else {
			m = NewMachine(Config{PEs: 8}, prog)
		}
		if _, err := m.Run(500_000_000, token.Int(4)); err != nil {
			b.Fatal(err)
		}
		cycles += uint64(m.Now())
	}
	b.StopTimer()
	if b.N > 0 {
		perRun := float64(cycles) / float64(b.N)
		secs := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(perRun/secs/1e6, "mcycles/s")
	}
	_ = sim.Cycle(0)
}

func BenchmarkMatMul4Interpreted(b *testing.B) { benchRun(b, false) }
func BenchmarkMatMul4Compiled(b *testing.B)    { benchRun(b, true) }
