package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/istructure"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/token"
)

// Checkpoint serialization for the whole TTDA machine (sim.Stateful). The
// stream covers the engine, the context manager, the allocator, every PE's
// stage queues and waiting-matching store, the interconnect, and every
// I-structure module — everything needed to resume bit-identically.
//
// What is rebuilt rather than serialized: the program and compiled plan
// (static; the compiled-mode flag is validated and the plan recompiled on
// load if needed), packet and context-record free lists (host-side pools),
// and instruction pointers inside queued requests (re-derived from the
// activity name, so the stream holds no host addresses). Hash tables — the
// waiting-matching store and the I-structure cell tables — are written in
// sorted key order and rebuilt by insertion: the rebuilt layout may differ
// internally, which is fine because no caller ever iterates them. The
// shard deferred-op logs are provably empty between ticks (commit drains
// them every tick), so a non-empty log at save is a bug, not state.

// isCodec serializes the machine's opaque payloads: the isRequest packets
// crossing the network (network.PayloadCodec) and the token values and
// replyTag continuations held by I-structure modules (istructure.Codec).
type isCodec struct{ m *Machine }

func saveReplyTag(e *sim.Enc, rt replyTag) {
	token.SaveActivity(e, rt.activity)
	e.U8(rt.port)
	e.U8(rt.nt)
}

func loadReplyTag(d *sim.Dec) replyTag {
	return replyTag{activity: token.LoadActivity(d), port: d.U8(), nt: d.U8()}
}

// Save implements network.PayloadCodec for isRequest payloads.
func (c isCodec) Save(e *sim.Enc, v interface{}) {
	r := v.(isRequest)
	e.U8(uint8(r.op))
	e.U32(r.addr)
	if r.op == istructure.OpRead {
		saveReplyTag(e, r.replyTo)
	} else {
		token.SaveValue(e, r.value)
	}
}

// Load implements network.PayloadCodec.
func (c isCodec) Load(d *sim.Dec) interface{} {
	r := isRequest{op: istructure.Op(d.U8()), addr: d.U32()}
	if d.Err() != nil {
		return r
	}
	switch r.op {
	case istructure.OpRead:
		r.replyTo = loadReplyTag(d)
	case istructure.OpWrite:
		r.value = token.LoadValue(d)
	default:
		d.Failf("invalid I-structure packet op %d", r.op)
	}
	return r
}

// SaveValue implements istructure.Codec: cell and request values are
// always token.Values in this machine.
func (c isCodec) SaveValue(e *sim.Enc, v interface{}) { token.SaveValue(e, v.(token.Value)) }

// LoadValue implements istructure.Codec.
func (c isCodec) LoadValue(d *sim.Dec) interface{} { return token.LoadValue(d) }

// SaveReply implements istructure.Codec: deferred-read continuations are
// always replyTags.
func (c isCodec) SaveReply(e *sim.Enc, r interface{}) { saveReplyTag(e, r.(replyTag)) }

// LoadReply implements istructure.Codec.
func (c isCodec) LoadReply(d *sim.Dec) interface{} { return loadReplyTag(d) }

// activityLess orders activity names for canonical hash-table dumps.
func activityLess(a, b token.ActivityName) bool {
	if a.Context != b.Context {
		return a.Context < b.Context
	}
	if a.CodeBlock != b.CodeBlock {
		return a.CodeBlock < b.CodeBlock
	}
	if a.Statement != b.Statement {
		return a.Statement < b.Statement
	}
	return a.Initiation < b.Initiation
}

// checkActivity validates an activity's code coordinates against the
// loaded program (context numbers are validated by the context table).
func (m *Machine) checkActivity(d *sim.Dec, a token.ActivityName) bool {
	if int(a.CodeBlock) >= len(m.prog.Blocks) {
		d.Failf("activity names block %d of %d", a.CodeBlock, len(m.prog.Blocks))
		return false
	}
	if int(a.Statement) >= len(m.prog.Blocks[a.CodeBlock].Instrs) {
		d.Failf("activity names statement %d of %d in block %d",
			a.Statement, len(m.prog.Blocks[a.CodeBlock].Instrs), a.CodeBlock)
		return false
	}
	return true
}

// saveIDQueue writes one active list verbatim: stale entries (a PE kept by
// its sweep, then drained by a commit-phase retry) are state — rebuilding
// the list from queue occupancy would change quiescence timing.
func saveIDQueue(e *sim.Enc, q *idQueue) {
	e.Len(len(q.ids))
	for _, id := range q.ids {
		e.Int(id)
	}
	e.Bool(q.dirty)
}

// loadIDQueue restores one active list, marking each member in active
// (which doubles as the duplicate check) and validating shard ownership.
func (m *Machine) loadIDQueue(d *sim.Dec, q *idQueue, active []bool, shard int) error {
	q.ids = q.ids[:0]
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	for i := 0; i < n; i++ {
		id := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if id < 0 || id >= m.cfg.PEs {
			d.Failf("active list names component %d of %d", id, m.cfg.PEs)
			return d.Err()
		}
		if shard >= 0 && m.shardOf[id] != shard {
			d.Failf("component %d listed on shard %d, owned by %d", id, shard, m.shardOf[id])
			return d.Err()
		}
		if active[id] {
			d.Failf("component %d listed twice", id)
			return d.Err()
		}
		active[id] = true
		q.ids = append(q.ids, id)
	}
	q.dirty = d.Bool()
	return d.Err()
}

// ctrlInstr re-derives a queued manager request's instruction pointer from
// its activity name, validating that it names a d=2 manager operation.
func (m *Machine) ctrlInstr(d *sim.Dec, act token.ActivityName) (in *graph.Instruction, cin *graph.CInstr) {
	if !m.checkActivity(d, act) {
		return nil, nil
	}
	if m.plan != nil {
		cin = &m.plan.Blocks[act.CodeBlock].Instrs[act.Statement]
		if cin.Kind != graph.KindGetContext && cin.Kind != graph.KindAllocate {
			d.Failf("queued manager request names %s at %s", cin.Op, act)
			return nil, nil
		}
		return nil, cin
	}
	in = m.prog.Blocks[act.CodeBlock].Instr(act.Statement)
	if in.Op != graph.OpGetContext && in.Op != graph.OpAllocate {
		d.Failf("queued manager request names %s at %s", in.Op, act)
		return nil, nil
	}
	return in, nil
}

// savePE appends one PE's dynamic state.
func (pe *PE) savePE(e *sim.Enc, pc isCodec) {
	sim.SaveFIFO(e, &pe.input, token.SaveToken)

	// Waiting-matching store in activity-name order. Exactly one operand
	// is present per resident record (zero → never inserted, two →
	// removed on match), so only that value is written.
	type waitEnt struct {
		k token.ActivityName
		p *partial
	}
	ents := make([]waitEnt, 0, pe.waiting.n)
	for b, s := range pe.waiting.idx {
		if s != matchEmpty {
			ents = append(ents, waitEnt{pe.waiting.keys[b], &pe.waiting.slab[s]})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return activityLess(ents[i].k, ents[j].k) })
	e.Len(len(ents))
	for _, en := range ents {
		token.SaveActivity(e, en.k)
		e.Bool(en.p.have[0])
		if en.p.have[0] {
			token.SaveValue(e, en.p.vals[0])
		} else {
			token.SaveValue(e, en.p.vals[1])
		}
	}

	sim.SaveFIFO(e, &pe.ready, func(e *sim.Enc, en enabledInstr) {
		token.SaveActivity(e, en.act)
		token.SaveValue(e, en.vals[0])
		token.SaveValue(e, en.vals[1])
	})
	e.Int(pe.aluN)
	e.Cycle(pe.aluBusyUntil)
	e.Cycle(pe.ctrlBusyUntil)
	e.Cycle(pe.matchBusyUntil)
	e.Cycle(pe.lastStep)
	sim.SaveFIFO(e, &pe.outQ, token.SaveToken)
	sim.SaveFIFO(e, &pe.netRetry, func(e *sim.Enc, p *network.Packet) {
		network.SavePacket(e, p, pc)
	})
	sim.SaveFIFO(e, &pe.ctrlQ, func(e *sim.Enc, r ctrlRequest) {
		token.SaveActivity(e, r.act)
		token.SaveValue(e, r.value)
	})

	pe.stats.ALU.Save(e)
	pe.stats.Fired.Save(e)
	pe.stats.TokensD0.Save(e)
	pe.stats.TokensD1.Save(e)
	pe.stats.TokensD2.Save(e)
	pe.stats.Matches.Save(e)
	pe.stats.MatchStoreOccupancy.Save(e)
	pe.stats.NetSends.Save(e)
	pe.stats.LocalBypass.Save(e)
	pe.stats.Overflows.Save(e)
	pe.stats.Stalls.Save(e)
}

// loadPE restores one PE.
func (pe *PE) loadPE(d *sim.Dec, pc isCodec) error {
	m := pe.m
	if err := sim.LoadFIFO(d, &pe.input, d.Remaining(), token.LoadToken); err != nil {
		return err
	}

	pe.waiting = matchTable{}
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	var prev token.ActivityName
	for i := 0; i < n; i++ {
		k := token.LoadActivity(d)
		port0 := d.Bool()
		v := token.LoadValue(d)
		if d.Err() != nil {
			return d.Err()
		}
		if i > 0 && !activityLess(prev, k) {
			d.Failf("waiting store entry %s out of order", k)
			return d.Err()
		}
		prev = k
		if !m.checkActivity(d, k) {
			return d.Err()
		}
		p := pe.waiting.insert(k)
		if port0 {
			p.vals[0], p.have[0] = v, true
		} else {
			p.vals[1], p.have[1] = v, true
		}
	}

	if err := sim.LoadFIFO(d, &pe.ready, d.Remaining(), func(d *sim.Dec) enabledInstr {
		var en enabledInstr
		en.act = token.LoadActivity(d)
		en.vals[0] = token.LoadValue(d)
		en.vals[1] = token.LoadValue(d)
		m.checkActivity(d, en.act)
		return en
	}); err != nil {
		return err
	}
	pe.aluN = d.Int()
	if d.Err() == nil && (pe.aluN < 0 || pe.aluN > pe.ready.Len() || pe.aluN > aluQueueDepth) {
		d.Failf("ALU operand count %d with %d enabled instructions", pe.aluN, pe.ready.Len())
		return d.Err()
	}
	pe.aluBusyUntil = d.Cycle()
	pe.ctrlBusyUntil = d.Cycle()
	pe.matchBusyUntil = d.Cycle()
	pe.lastStep = d.Cycle()
	if err := sim.LoadFIFO(d, &pe.outQ, d.Remaining(), token.LoadToken); err != nil {
		return err
	}
	if err := sim.LoadFIFO(d, &pe.netRetry, d.Remaining(), func(d *sim.Dec) *network.Packet {
		return network.LoadPacket(d, pc)
	}); err != nil {
		return err
	}
	if err := sim.LoadFIFO(d, &pe.ctrlQ, d.Remaining(), func(d *sim.Dec) ctrlRequest {
		r := ctrlRequest{act: token.LoadActivity(d), value: token.LoadValue(d)}
		if d.Err() == nil {
			r.instr, r.cin = m.ctrlInstr(d, r.act)
		}
		return r
	}); err != nil {
		return err
	}

	pe.stats.ALU.Load(d)
	pe.stats.Fired.Load(d)
	pe.stats.TokensD0.Load(d)
	pe.stats.TokensD1.Load(d)
	pe.stats.TokensD2.Load(d)
	pe.stats.Matches.Load(d)
	pe.stats.MatchStoreOccupancy.Load(d)
	pe.stats.NetSends.Load(d)
	pe.stats.LocalBypass.Load(d)
	pe.stats.Overflows.Load(d)
	pe.stats.Stalls.Load(d)
	return d.Err()
}

// SaveState appends the whole machine's dynamic state (sim.Stateful).
func (m *Machine) SaveState(e *sim.Enc) {
	if m.runErr != nil {
		panic(fmt.Sprintf("core: checkpoint of a faulted machine: %v", m.runErr))
	}
	for _, sh := range m.shards {
		if len(sh.ops) != 0 {
			panic("core: checkpoint with undrained shard ops")
		}
	}
	e.Tag("ttda", 1)
	e.Bool(m.cfg.Compiled)
	m.engine.(sim.Stateful).SaveState(e)
	e.Bool(m.started)
	e.Cycle(m.runStart)
	e.U64(m.stats.Cycles)
	e.U64(m.stats.ISResponses)

	// Context manager. nextCtx == len(ctxs) always (allocCtx appends), so
	// one count covers both; a record's return destinations are re-derived
	// from the GET-CONTEXT instruction its parent activity names.
	e.U32(uint32(m.nextCtx))
	for _, rec := range m.ctxs[1:] {
		e.Bool(rec != nil)
		if rec == nil {
			continue
		}
		e.U16(uint16(rec.block))
		token.SaveActivity(e, rec.parent)
		e.Int(rec.argsSent)
		e.Bool(rec.returned)
	}
	e.U64(m.ctxFreed)
	e.Int(m.ctxPeak)
	e.U32(m.nextAddr)
	e.Len(len(m.results))
	for _, v := range m.results {
		token.SaveValue(e, v)
	}

	// Scheduler state: the cached sweep answers are consulted by NextEvent
	// for shards that did not step in a tick, so they are state, not cache.
	if m.shards == nil {
		e.Cycle(m.seqDrv.isNext)
		e.Cycle(m.seqDrv.peNext)
		saveIDQueue(e, &m.isQ)
		saveIDQueue(e, &m.peQ)
	} else {
		e.Len(len(m.shards))
		for _, sh := range m.shards {
			e.Cycle(sh.isNext)
			e.Cycle(sh.peNext)
			saveIDQueue(e, &sh.isQ)
			saveIDQueue(e, &sh.peQ)
		}
	}

	pc := isCodec{m: m}
	m.net.(network.Checkpointable).SaveTo(e, pc)
	e.Len(len(m.pes))
	for _, pe := range m.pes {
		pe.savePE(e, pc)
	}
	e.Len(len(m.is))
	for _, mod := range m.is {
		mod.SaveTo(e, pc)
	}
}

// LoadState restores the machine (sim.Stateful). On error the machine must
// be discarded.
func (m *Machine) LoadState(d *sim.Dec) error {
	if err := d.Tag("ttda", 1); err != nil {
		return err
	}
	compiled := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if compiled != m.cfg.Compiled {
		d.Failf("checkpoint compiled=%v, machine compiled=%v", compiled, m.cfg.Compiled)
		return d.Err()
	}
	if m.cfg.Compiled && m.plan == nil {
		// Queued requests hold plan-instruction pointers; compile before
		// decoding them (Run would have compiled lazily at this point).
		cg, err := graph.Compile(m.prog)
		if err != nil {
			return err
		}
		m.plan = cg
	}
	if err := m.engine.(sim.Stateful).LoadState(d); err != nil {
		return err
	}
	m.now = m.engine.Now()
	m.started = d.Bool()
	m.runStart = d.Cycle()
	m.stats.Cycles = d.U64()
	m.stats.ISResponses = d.U64()

	nextCtx := d.U32()
	if d.Err() != nil {
		return d.Err()
	}
	if int(nextCtx) < 1 || d.Remaining() < int(nextCtx-1) {
		d.Failf("context count %d exceeds input", nextCtx)
		return d.Err()
	}
	m.nextCtx = token.Context(nextCtx)
	m.ctxs = m.ctxs[:1]
	m.ctxFree = nil
	m.ctxLive = 0
	for u := uint32(1); u < nextCtx; u++ {
		if !d.Bool() {
			m.ctxs = append(m.ctxs, nil)
			continue
		}
		rec := &ctxRecord{
			block:  graph.BlockID(d.U16()),
			parent: token.LoadActivity(d),
		}
		rec.argsSent = d.Int()
		rec.returned = d.Bool()
		if d.Err() != nil {
			return d.Err()
		}
		if int(rec.block) >= len(m.prog.Blocks) {
			d.Failf("context %d targets block %d of %d", u, rec.block, len(m.prog.Blocks))
			return d.Err()
		}
		if !m.checkActivity(d, rec.parent) {
			return d.Err()
		}
		rec.parentBlock = graph.BlockID(rec.parent.CodeBlock)
		if m.plan != nil {
			cin := &m.plan.Blocks[rec.parent.CodeBlock].Instrs[rec.parent.Statement]
			if cin.Kind != graph.KindGetContext {
				d.Failf("context %d parent %s is %s, not GET-CONTEXT", u, rec.parent, cin.Op)
				return d.Err()
			}
			rec.returnDestsC = cin.RetDests
		} else {
			in := m.prog.Blocks[rec.parent.CodeBlock].Instr(rec.parent.Statement)
			if in.Op != graph.OpGetContext {
				d.Failf("context %d parent %s is %s, not GET-CONTEXT", u, rec.parent, in.Op)
				return d.Err()
			}
			rec.returnDests = in.ReturnDests
		}
		m.ctxs = append(m.ctxs, rec)
		m.ctxLive++
	}
	m.ctxFreed = d.U64()
	m.ctxPeak = d.Int()
	if d.Err() == nil && m.ctxPeak < m.ctxLive {
		d.Failf("context peak %d below live count %d", m.ctxPeak, m.ctxLive)
		return d.Err()
	}
	m.nextAddr = d.U32()
	if d.Err() == nil && m.nextAddr > m.isLimit {
		d.Failf("allocator at %d past limit %d", m.nextAddr, m.isLimit)
		return d.Err()
	}
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	m.results = m.results[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		m.results = append(m.results, token.LoadValue(d))
	}
	if d.Err() != nil {
		return d.Err()
	}

	for i := range m.peActive {
		m.peActive[i] = false
		m.isActive[i] = false
	}
	if m.shards == nil {
		m.seqDrv.isNext = d.Cycle()
		m.seqDrv.peNext = d.Cycle()
		if err := m.loadIDQueue(d, &m.isQ, m.isActive, -1); err != nil {
			return err
		}
		if err := m.loadIDQueue(d, &m.peQ, m.peActive, -1); err != nil {
			return err
		}
	} else {
		ns := d.Len(d.Remaining())
		if d.Err() != nil {
			return d.Err()
		}
		if ns != len(m.shards) {
			d.Failf("checkpoint has %d shards, machine has %d", ns, len(m.shards))
			return d.Err()
		}
		for _, sh := range m.shards {
			sh.isNext = d.Cycle()
			sh.peNext = d.Cycle()
			if err := m.loadIDQueue(d, &sh.isQ, m.isActive, sh.id); err != nil {
				return err
			}
			if err := m.loadIDQueue(d, &sh.peQ, m.peActive, sh.id); err != nil {
				return err
			}
		}
	}

	pc := isCodec{m: m}
	if err := m.net.(network.Checkpointable).LoadFrom(d, pc); err != nil {
		return err
	}
	n = d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(m.pes) {
		d.Failf("checkpoint has %d PEs, machine has %d", n, len(m.pes))
		return d.Err()
	}
	for _, pe := range m.pes {
		if err := pe.loadPE(d, pc); err != nil {
			return err
		}
	}
	n = d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(m.is) {
		d.Failf("checkpoint has %d I-structure modules, machine has %d", n, len(m.is))
		return d.Err()
	}
	for _, mod := range m.is {
		if err := mod.LoadFrom(d, pc); err != nil {
			return err
		}
	}
	return d.Err()
}

var _ sim.Stateful = (*Machine)(nil)
