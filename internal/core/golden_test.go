package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current simulator")

// -compiled runs every golden scenario through the ahead-of-time compiled
// plan instead of the IR interpreter. The committed golden numbers must
// not move: the plan is a pure host-side acceleration.
var compiledGolden = flag.Bool("compiled", false, "execute golden scenarios in compiled (plan) mode")

// -shards runs every golden scenario on the conservative parallel kernel
// with that many shards; -window additionally sets Config.EpochWindow
// (0/1 per-tick, >=2 capped multi-tick epochs, negative adaptive). The
// committed golden numbers must not move under any combination — that is
// the parallel kernel's bit-identity contract, enforced in CI with -race.
var shardsGolden = flag.Int("shards", 0, "run golden scenarios with this many shards on the parallel kernel")
var windowGolden = flag.Int("window", 0, "epoch window width for -shards runs (0/1 per-tick, >=2 capped, <0 adaptive)")

// peSnapshot is the deterministic per-PE statistics contract: every field
// must be bit-identical run-to-run and across kernel optimizations.
type peSnapshot struct {
	Fired       uint64  `json:"fired"`
	Matches     uint64  `json:"matches"`
	TokensD0    uint64  `json:"d0"`
	TokensD1    uint64  `json:"d1"`
	TokensD2    uint64  `json:"d2"`
	NetSends    uint64  `json:"netSends"`
	LocalBypass uint64  `json:"localBypass"`
	Overflows   uint64  `json:"overflows"`
	Stalls      uint64  `json:"stalls"`
	ALUBusy     uint64  `json:"aluBusy"`
	OccMax      int64   `json:"occMax"`
	OccMean     float64 `json:"occMean"`
}

// runSnapshot is one golden scenario's full observable outcome.
type runSnapshot struct {
	Results        []string     `json:"results"`
	Cycles         uint64       `json:"cycles"`
	ISResponses    uint64       `json:"isResponses"`
	Fired          uint64       `json:"fired"`
	ALUUtilization float64      `json:"aluUtilization"`
	Matches        uint64       `json:"matches"`
	MatchStoreMax  int64        `json:"matchStoreMax"`
	MatchStoreMean float64      `json:"matchStoreMean"`
	NetSends       uint64       `json:"netSends"`
	LocalBypass    uint64       `json:"localBypass"`
	TokensD0       uint64       `json:"d0"`
	TokensD1       uint64       `json:"d1"`
	TokensD2       uint64       `json:"d2"`
	DeferredReads  uint64       `json:"deferredReads"`
	ISReads        uint64       `json:"isReads"`
	ISWrites       uint64       `json:"isWrites"`
	CtxAllocated   uint64       `json:"ctxAllocated"`
	CtxFreed       uint64       `json:"ctxFreed"`
	CtxPeak        int          `json:"ctxPeak"`
	NetInjected    uint64       `json:"netInjected"`
	NetDelivered   uint64       `json:"netDelivered"`
	NetRefused     uint64       `json:"netRefused"`
	PEs            []peSnapshot `json:"pes"`
}

// goldenScenario is one (program, config) point. Configs cover the kernel
// paths the optimizations touch: multiple PE counts, real network
// topologies with backpressure, match-capacity overflow stalls, long
// latencies, I-structure traffic, and weighted ALU timings.
type goldenScenario struct {
	name string
	src  string
	args []token.Value
	cfg  func() Config
}

func weightedOpTime(op graph.Opcode) sim.Cycle {
	switch op {
	case graph.OpMul:
		return 3
	case graph.OpDiv, graph.OpMod:
		return 6
	default:
		return 1
	}
}

func goldenScenarios() []goldenScenario {
	return []goldenScenario{
		{"fib12-pe1", workload.FibID, []token.Value{token.Int(12)}, func() Config { return Config{PEs: 1} }},
		{"fib12-pe4", workload.FibID, []token.Value{token.Int(12)}, func() Config { return Config{PEs: 4} }},
		{"fib12-pe8", workload.FibID, []token.Value{token.Int(12)}, func() Config { return Config{PEs: 8} }},
		{"sum100-pe3", workload.SumLoopID, []token.Value{token.Int(100)}, func() Config { return Config{PEs: 3} }},
		{"sum50-pe1-cap1", workload.SumLoopID, []token.Value{token.Int(50)}, func() Config { return Config{PEs: 1, MatchCapacity: 1} }},
		{"prodcons24-pe4", workload.ProducerConsumerID, []token.Value{token.Int(24)}, func() Config { return Config{PEs: 4} }},
		{"matmul4-pe8", workload.MatMulID, []token.Value{token.Int(4)}, func() Config { return Config{PEs: 8} }},
		{"matmul4-pe8-weighted", workload.MatMulID, []token.Value{token.Int(4)}, func() Config { return Config{PEs: 8, OpTime: weightedOpTime} }},
		{"collatz27-pe4-lat20", workload.CollatzID, []token.Value{token.Int(27)}, func() Config { return Config{PEs: 4, NetLatency: 20} }},
		{"collatz27-pe4-lat100", workload.CollatzID, []token.Value{token.Int(27)}, func() Config { return Config{PEs: 4, NetLatency: 100} }},
		{"wavefront6-pe4", workload.WavefrontID, []token.Value{token.Int(6)}, func() Config { return Config{PEs: 4} }},
		{"sum40-pe4-mesh", workload.SumLoopID, []token.Value{token.Int(40)}, func() Config {
			return Config{PEs: 4, Net: network.NewMesh(2, 2, false, 16)}
		}},
		{"fib11-pe8-hypercube", workload.FibID, []token.Value{token.Int(11)}, func() Config {
			return Config{PEs: 8, Net: network.NewHypercube(3, 16)}
		}},
		{"fib10-pe4-torus", workload.FibID, []token.Value{token.Int(10)}, func() Config {
			return Config{PEs: 4, Net: network.NewMesh(2, 2, true, 8)}
		}},
	}
}

// snapshotRun executes one scenario and captures every deterministic
// statistic the simulator reports.
func snapshotRun(t *testing.T, sc goldenScenario) runSnapshot {
	t.Helper()
	prog, err := id.Compile(sc.src)
	if err != nil {
		t.Fatalf("%s: compile: %v", sc.name, err)
	}
	cfg := sc.cfg()
	if *compiledGolden {
		cfg.Compiled = true
	}
	if *shardsGolden > 0 && cfg.Shards == 0 {
		cfg.Shards = *shardsGolden
		cfg.EpochWindow = *windowGolden
	}
	m := NewMachine(cfg, prog)
	res, err := m.Run(500_000_000, sc.args...)
	if err != nil {
		t.Fatalf("%s: run: %v", sc.name, err)
	}
	var snap runSnapshot
	for _, v := range res {
		snap.Results = append(snap.Results, v.String())
	}
	s := m.Summarize()
	snap.Cycles = s.Cycles
	snap.ISResponses = m.Stats().ISResponses
	snap.Fired = s.Fired
	snap.ALUUtilization = s.ALUUtilization
	snap.Matches = s.Matches
	snap.MatchStoreMax = s.MatchStoreMax
	snap.MatchStoreMean = s.MatchStoreMean
	snap.NetSends = s.NetSends
	snap.LocalBypass = s.LocalBypass
	snap.TokensD0 = s.TokensD0
	snap.TokensD1 = s.TokensD1
	snap.TokensD2 = s.TokensD2
	snap.DeferredReads = s.DeferredReads
	snap.ISReads = s.ISReads
	snap.ISWrites = s.ISWrites
	snap.CtxAllocated = s.CtxAllocated
	snap.CtxFreed = s.CtxFreed
	snap.CtxPeak = s.CtxPeak
	ns := m.Network().Stats()
	snap.NetInjected = ns.Injected.Value()
	snap.NetDelivered = ns.Delivered.Value()
	snap.NetRefused = ns.Refused.Value()
	for _, ps := range m.PEStats() {
		snap.PEs = append(snap.PEs, peSnapshot{
			Fired:       ps.Fired.Value(),
			Matches:     ps.Matches.Value(),
			TokensD0:    ps.TokensD0.Value(),
			TokensD1:    ps.TokensD1.Value(),
			TokensD2:    ps.TokensD2.Value(),
			NetSends:    ps.NetSends.Value(),
			LocalBypass: ps.LocalBypass.Value(),
			Overflows:   ps.Overflows.Value(),
			Stalls:      ps.Stalls.Value(),
			ALUBusy:     ps.ALU.Busy(),
			OccMax:      ps.MatchStoreOccupancy.Max(),
			OccMean:     ps.MatchStoreOccupancy.Mean(),
		})
	}
	return snap
}

const goldenPath = "testdata/golden.json"

// TestGoldenStats locks the simulator to its recorded behaviour: simulated
// cycle counts, result tokens, and every deterministic statistic must be
// bit-identical to the committed golden file. Kernel optimizations
// (active-lists, cycle skipping, event-driven statistics) must not move a
// single number here. Regenerate deliberately with:
//
//	go test ./internal/core -run TestGoldenStats -update
func TestGoldenStats(t *testing.T) {
	got := map[string]runSnapshot{}
	for _, sc := range goldenScenarios() {
		got[sc.name] = snapshotRun(t, sc)
	}
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d scenarios)", goldenPath, len(got))
		return
	}
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	want := map[string]runSnapshot{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d scenarios, current suite has %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("scenario %s missing from current suite", name)
			continue
		}
		if !reflect.DeepEqual(w, g) {
			t.Errorf("scenario %s diverged from golden:\n  golden:  %s\n  current: %s", name, mustJSON(w), mustJSON(g))
		}
	}
}

func mustJSON(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("marshal error: %v", err)
	}
	return string(b)
}

// TestCompiledGoldenStats re-runs every golden scenario with
// Config.Compiled set and requires the full snapshot — results, cycles,
// every machine and per-PE statistic — to be bit-identical to the
// interpreted run. This is the core's half of the compiled-equivalence
// contract (the conformance suite checks it again across seeds and shard
// counts, including engine scheduling counters).
func TestCompiledGoldenStats(t *testing.T) {
	if *compiledGolden {
		t.Skip("-compiled already routes TestGoldenStats through the plan")
	}
	for _, sc := range goldenScenarios() {
		base := snapshotRun(t, sc)
		csc := sc
		inner := sc.cfg
		csc.cfg = func() Config { c := inner(); c.Compiled = true; return c }
		comp := snapshotRun(t, csc)
		if !reflect.DeepEqual(base, comp) {
			t.Errorf("scenario %s: compiled mode diverged from interpreted:\n  interpreted: %s\n  compiled:    %s",
				sc.name, mustJSON(base), mustJSON(comp))
		}
	}
}

// TestMachineDeterminism runs the same program twice on 8 PEs and requires
// identical result tokens, MachineStats, and per-PE statistics — the
// repo's determinism contract, which the event-aware kernel must preserve.
func TestMachineDeterminism(t *testing.T) {
	sc := goldenScenario{
		name: "determinism-fib14-pe8",
		src:  workload.FibID,
		args: []token.Value{token.Int(14)},
		cfg:  func() Config { return Config{PEs: 8} },
	}
	first := snapshotRun(t, sc)
	second := snapshotRun(t, sc)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("two identical runs diverged:\n  first:  %s\n  second: %s", mustJSON(first), mustJSON(second))
	}
	if first.Cycles == 0 || first.Fired == 0 {
		t.Fatalf("suspiciously empty run: %s", mustJSON(first))
	}
}
