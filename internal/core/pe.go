package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/istructure"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/token"
)

// PE is one processing element of Figure 2-4: the input section, the
// waiting-matching section (an associative store keyed by activity name),
// the instruction-fetch unit, the ALU, the output section (tag computation
// and routing), and the PE controller for d=2 manager requests.
//
// All stage queues are ring buffers (O(1) pop, buffer reused across the
// run) and the PE participates in the machine's active-list scheduling: it
// is stepped only on cycles where nextWork says a stage can progress, with
// per-cycle statistics (stall counts, ALU occupancy, store occupancy)
// settled lazily so they stay bit-identical to per-cycle stepping.
type PE struct {
	m  *Machine
	id int
	// sh is the owning shard when the machine runs the conservative
	// parallel kernel (nil on the sequential path). While set, every
	// effect that escapes the shard — network sends, manager operations,
	// context-table mutations, faults — is appended to sh's deferred-op
	// log instead of applied (see parallel_core.go).
	sh *coreShard

	// input queue: tokens from the network and the local bypass path
	input sim.FIFO[token.Token]

	// waiting-matching section: an open-addressed table over a slab of
	// partial-match records (see matchtable.go).
	waiting matchTable

	// ready holds enabled instructions in pipeline order: the first aluN
	// entries have passed instruction fetch (the ALU operand queue), the
	// rest await fetch. Fetch moves a token across the boundary by
	// incrementing aluN — the transfer preserves FIFO order, so one ring
	// with a boundary count replaces two rings and the per-fetch copy of a
	// record between them.
	ready sim.FIFO[enabledInstr]
	aluN  int

	// ALU occupancy
	aluBusyUntil sim.Cycle

	// output section: result tokens awaiting tag computation/routing
	outQ sim.FIFO[token.Token]

	// outgoing network packets refused by backpressure, retried in order
	netRetry sim.FIFO[*network.Packet]

	// pktFree recycles this PE's delivered packets. Gets happen on the
	// PE's own send path (its shard's parallel phase, or the sequential
	// sweep); puts happen at delivery, which is always a serial context —
	// the two never overlap, so the list needs no lock even in sharded
	// runs.
	pktFree []*network.Packet

	// PE controller queue (d=2 requests)
	ctrlQ         sim.FIFO[ctrlRequest]
	ctrlBusyUntil sim.Cycle

	// matching-section freeze after an overflow-store access
	matchBusyUntil sim.Cycle

	// lastStep is the last cycle this PE was stepped, for settling the
	// per-cycle stall count over skipped cycles.
	lastStep sim.Cycle

	stats PEStats
}

// partial is a half-matched activity in the waiting-matching store.
type partial struct {
	vals [2]token.Value
	have [2]bool
}

// enabledInstr is a fully-operand-ed instruction instance.
type enabledInstr struct {
	act  token.ActivityName
	vals [2]token.Value
}

// ctrlRequest is a d=2 manager operation. Exactly one of instr
// (interpreted mode) and cin (compiled mode) is non-nil.
type ctrlRequest struct {
	act   token.ActivityName // the requesting instruction instance
	instr *graph.Instruction
	cin   *graph.CInstr
	value token.Value // operand (allocation size, or trigger)
}

// PEStats aggregates one PE's measurements.
type PEStats struct {
	ALU metrics.Utilization
	// Fired counts instruction executions.
	Fired metrics.Counter
	// TokensIn counts tokens accepted by the input section, by class.
	TokensD0, TokensD1, TokensD2 metrics.Counter
	// Matches counts pair completions; MatchStoreOccupancy tracks the
	// associative store's load (mean/max, updated on every insert/remove).
	Matches             metrics.Counter
	MatchStoreOccupancy metrics.TimedGauge
	// NetSends counts packets this PE injected into the network.
	NetSends metrics.Counter
	// LocalBypass counts tokens that stayed on-PE.
	LocalBypass metrics.Counter
	// Overflows counts matching-store accesses that spilled past
	// MatchCapacity into the slow overflow store; Stalls counts the
	// resulting frozen cycles.
	Overflows metrics.Counter
	Stalls    metrics.Counter
}

func newPE(m *Machine, id int) *PE {
	return &PE{m: m, id: id}
}

// accept receives a token at the input section.
func (pe *PE) accept(t token.Token) {
	pe.input.Push(t)
	pe.m.wakePE(pe.id)
}

// emit hands a freshly built token to the output path of this PE: local
// destinations bypass the network, remote ones are sent (with retry).
func (pe *PE) emit(t token.Token) {
	pe.outQ.Push(t)
	pe.m.wakePE(pe.id)
}

// hasQueuedWork reports whether any stage queue holds an item. A PE with
// no queued work needs no stepping regardless of its busy timers (the
// waiting store may hold half-matched tokens; those are checked separately
// at termination).
func (pe *PE) hasQueuedWork() bool {
	return pe.input.Len() > 0 || pe.ready.Len() > 0 ||
		pe.outQ.Len() > 0 || pe.netRetry.Len() > 0 || pe.ctrlQ.Len() > 0
}

// nextWork reports the earliest cycle at or after now at which stepping
// this PE can change machine state: now when any stage can progress, a
// future busy-until cycle when every queue is gated behind an occupied
// unit, or sim.Never with no queued work. Cycles before the answer are
// provably no-ops (modulo per-cycle statistics, which settleStalls and the
// ALU/occupancy accounting reconstruct exactly).
func (pe *PE) nextWork(now sim.Cycle) sim.Cycle {
	if pe.netRetry.Len() > 0 || pe.outQ.Len() > 0 {
		return now
	}
	next := sim.Never
	if pe.aluN > 0 {
		if pe.aluBusyUntil <= now {
			return now
		}
		next = pe.aluBusyUntil
	}
	if pe.ready.Len() > pe.aluN {
		// Fetch progresses as soon as the operand queue has room; a full
		// queue drains when the ALU next retires an instruction.
		if pe.aluN < aluQueueDepth {
			return now
		}
		if pe.aluBusyUntil < next {
			next = pe.aluBusyUntil
		}
	}
	if pe.ctrlQ.Len() > 0 {
		if pe.ctrlBusyUntil <= now {
			return now
		}
		if pe.ctrlBusyUntil < next {
			next = pe.ctrlBusyUntil
		}
	}
	if pe.input.Len() > 0 {
		if pe.matchBusyUntil <= now {
			return now
		}
		if pe.matchBusyUntil < next {
			next = pe.matchBusyUntil
		}
	}
	return next
}

// settleStalls credits the frozen-matching-section cycles a per-cycle
// stepper would have counted in (pe.lastStep, now).
func (pe *PE) settleStalls(now sim.Cycle) {
	if end := min(now, pe.matchBusyUntil); end > pe.lastStep+1 {
		pe.stats.Stalls.Add(uint64(end - pe.lastStep - 1))
	}
	pe.lastStep = now
}

// finishStats settles lazily-accounted statistics through end-of-run cycle
// now (exclusive). Idempotent for a constant now.
func (pe *PE) finishStats(now sim.Cycle) {
	pe.settleStalls(now)
	pe.stats.ALU.SetTotal(uint64(now))
	pe.stats.MatchStoreOccupancy.Finish(uint64(now))
}

// step advances the PE one cycle. Stages run in reverse pipeline order so
// work moves at most one stage per cycle.
func (pe *PE) step(now sim.Cycle) {
	pe.settleStalls(now)
	pe.stepNetRetry()
	pe.stepOutput(now)
	pe.stepALU(now)
	pe.stepFetch()
	pe.stepController(now)
	pe.stepInput(now)
}

// fail records an execution fault, deferring it in sharded mode so the
// first fault in sequential evaluation order wins in both modes.
func (pe *PE) fail(err error) {
	if pe.sh != nil {
		pe.sh.push(shardOp{kind: opFail, pe: pe, err: err})
		return
	}
	pe.m.fail(err)
}

// noteBusy extends the busy horizon: directly in sequential mode, through
// the shard's accumulator (folded at commit) in sharded mode.
func (pe *PE) noteBusy(t sim.Cycle) {
	if sh := pe.sh; sh != nil {
		if t > sh.busyMax {
			sh.busyMax = t
		}
		return
	}
	pe.m.noteBusy(t)
}

// getPkt takes a packet from the PE's free list (or allocates one).
func (pe *PE) getPkt() *network.Packet {
	if n := len(pe.pktFree); n > 0 {
		p := pe.pktFree[n-1]
		pe.pktFree = pe.pktFree[:n-1]
		return p
	}
	return &network.Packet{}
}

// putPkt recycles a delivered packet. Serial contexts only.
func (pe *PE) putPkt(p *network.Packet) {
	p.Reset()
	pe.pktFree = append(pe.pktFree, p)
}

// sendPkt injects a packet, queueing it for in-order retry on refusal. In
// sharded mode the send is deferred to the commit phase; the log replays
// sends in exactly the sequential order, so refusals match too.
func (pe *PE) sendPkt(pkt *network.Packet) {
	if pe.sh != nil {
		pe.sh.push(shardOp{kind: opNetSend, pe: pe, pkt: pkt})
		return
	}
	if !pe.m.net.Send(pkt) {
		pe.netRetry.Push(pkt)
		return
	}
	pe.stats.NetSends.Inc()
}

// stepNetRetry re-attempts refused network sends in order.
func (pe *PE) stepNetRetry() {
	if pe.netRetry.Len() == 0 {
		return
	}
	if pe.sh != nil {
		pe.sh.push(shardOp{kind: opNetRetry, pe: pe})
		return
	}
	for pe.netRetry.Len() > 0 {
		if !pe.m.net.Send(pe.netRetry.Peek()) {
			return
		}
		pe.netRetry.Pop()
		pe.stats.NetSends.Inc()
	}
}

// stepOutput performs tag-to-route translation for up to OutputBandwidth
// tokens: local tokens loop back to the input section, remote tokens
// become network packets.
func (pe *PE) stepOutput(now sim.Cycle) {
	bw := pe.m.cfg.OutputBandwidth
	for i := 0; i < bw && pe.outQ.Len() > 0; i++ {
		t := pe.outQ.PopNoClear() // token.Token is pointer-free
		if t.PE == pe.id {
			pe.stats.LocalBypass.Inc()
			pe.input.Push(t)
			continue
		}
		pkt := pe.getPkt()
		pkt.Src, pkt.Dst, pkt.Tok, pkt.HasTok = pe.id, t.PE, t, true
		pe.sendPkt(pkt)
	}
}

// aluQueueDepth is the operand-queue capacity between fetch and the ALU.
const aluQueueDepth = 4

// stepALU executes one enabled instruction when the ALU is free. Busy time
// is accounted at issue (the op's full service time at once) rather than
// per cycle; paired with SetTotal at end of run this reproduces exactly
// the utilization a per-cycle busy tick would record.
func (pe *PE) stepALU(now sim.Cycle) {
	if now < pe.aluBusyUntil || pe.aluN == 0 {
		return
	}
	e := pe.ready.PopNoClear() // enabledInstr is pointer-free
	pe.aluN--
	if plan := pe.m.plan; plan != nil {
		cin := &plan.Blocks[e.act.CodeBlock].Instrs[e.act.Statement]
		d := pe.m.opTimes[cin.Op]
		pe.aluBusyUntil = now + d
		pe.noteBusy(pe.aluBusyUntil)
		if d == 0 {
			d = 1 // the firing cycle itself counts busy even for free ops
		}
		pe.stats.ALU.AddBusy(uint64(d))
		if pe.m.cfg.Trace != nil {
			pe.trace(TraceFire, "%s %s", cin.Op, traceActivity(e.act))
		}
		pe.executeC(cin, e)
		pe.stats.Fired.Inc()
		return
	}
	blk := pe.m.prog.Block(graph.BlockID(e.act.CodeBlock))
	in := blk.Instr(e.act.Statement)
	d := pe.m.opTimes[in.Op]
	pe.aluBusyUntil = now + d
	pe.noteBusy(pe.aluBusyUntil)
	if d == 0 {
		d = 1 // the firing cycle itself counts busy even for free ops
	}
	pe.stats.ALU.AddBusy(uint64(d))
	pe.trace(TraceFire, "%s %s", in.Op, traceActivity(e.act))
	pe.execute(blk, in, e)
	pe.stats.Fired.Inc()
}

// stepFetch moves one enabled instruction into the ALU operand queue (a
// boundary shift in the shared ready ring).
func (pe *PE) stepFetch() {
	if pe.ready.Len() <= pe.aluN || pe.aluN >= aluQueueDepth {
		return
	}
	pe.aluN++
}

// stepController services one d=2 manager request. The occupancy is local;
// the request body touches the shared context manager and allocator, so in
// sharded mode it executes at the commit barrier.
func (pe *PE) stepController(now sim.Cycle) {
	if now < pe.ctrlBusyUntil || pe.ctrlQ.Len() == 0 {
		return
	}
	r := pe.ctrlQ.Pop()
	pe.ctrlBusyUntil = now + pe.m.cfg.ControllerTime
	pe.noteBusy(pe.ctrlBusyUntil)
	if pe.sh != nil {
		pe.sh.push(shardOp{kind: opCtrl, pe: pe, in: r.instr, cin: r.cin, act: r.act, vals: [2]token.Value{r.value}})
		return
	}
	if r.cin != nil {
		pe.execCtrlC(r)
		return
	}
	pe.execCtrl(r)
}

// execCtrl performs a d=2 manager operation. Serial contexts only: the
// sequential controller step, or the parallel kernel's commit phase.
func (pe *PE) execCtrl(r ctrlRequest) {
	switch r.instr.Op {
	case graph.OpGetContext:
		u := pe.m.getContext(r.instr.Target, r.act, graph.BlockID(r.act.CodeBlock), r.instr.ReturnDests)
		pe.trace(TraceGetCtx, "u=%d for block %d", u, r.instr.Target)
		pe.sendToDests(r.act, r.instr.Dests, token.Int(int64(u)))
	case graph.OpAllocate:
		n, err := r.value.AsInt()
		if err != nil || n < 0 {
			pe.m.fail(fmt.Errorf("core: allocate at %s: bad size %s", r.act, r.value))
			return
		}
		base, err := pe.m.allocate(uint32(n))
		if err != nil {
			pe.m.fail(err)
			return
		}
		pe.trace(TraceAlloc, "base=%d len=%d", base, n)
		pe.sendToDests(r.act, r.instr.Dests, token.NewRef(token.Ref{Base: base, Len: uint32(n)}))
	default:
		pe.m.fail(fmt.Errorf("core: controller cannot service %s", r.instr.Op))
	}
}

// stepInput moves up to MatchBandwidth tokens from the input queue through
// classification and the waiting-matching section. Entries beyond
// MatchCapacity spill to the (slower) overflow store: each access that
// touches overflow freezes the matching section for OverflowPenalty cycles,
// the TTDA's overflow-memory behaviour.
func (pe *PE) stepInput(now sim.Cycle) {
	if now < pe.matchBusyUntil {
		pe.stats.Stalls.Inc()
		return
	}
	bw := pe.m.cfg.MatchBandwidth
	capLimit := pe.m.cfg.MatchCapacity
	for i := 0; i < bw && pe.input.Len() > 0; i++ {
		t := pe.input.PopNoClear() // token.Token is pointer-free
		overflowing := capLimit > 0 && pe.waiting.Len() >= capLimit && t.NT >= 2
		pe.classify(t, now)
		if overflowing {
			pe.stats.Overflows.Inc()
			pe.matchBusyUntil = now + overflowPenalty
			return
		}
	}
}

// overflowPenalty is the matching-section freeze when an access touches the
// overflow store instead of the associative memory.
const overflowPenalty = 4

// classify implements Figure 2-3's input-type dispatch. now is the PE's
// local cycle — under multi-tick epoch windows the machine clock lags the
// shard's local timeline, so the stepping clock is threaded through.
func (pe *PE) classify(t token.Token, now sim.Cycle) {
	switch t.Class {
	case token.Normal:
		pe.stats.TokensD0.Inc()
		pe.match(t, now)
	default:
		// d=1 and d=2 tokens are generated internally and routed directly
		// at the output section; arriving here is a machine bug.
		pe.fail(fmt.Errorf("core: unexpected %s token at input section", t.Class))
	}
}

// match pairs tokens by activity name (associative lookup).
func (pe *PE) match(t token.Token, now sim.Cycle) {
	if t.NT <= 1 {
		var vals [2]token.Value
		vals[t.Port] = t.Value
		pe.ready.Push(enabledInstr{act: t.Tag.Activity, vals: vals})
		return
	}
	key := t.Tag.Activity
	p, inserted := pe.waiting.lookupOrInsert(key)
	if inserted {
		pe.stats.MatchStoreOccupancy.Update(uint64(now), int64(pe.waiting.Len()))
	}
	if p.have[t.Port] {
		pe.fail(fmt.Errorf("core: duplicate token at %s port %d", key, t.Port))
		return
	}
	p.vals[t.Port] = t.Value
	p.have[t.Port] = true
	if p.have[0] && p.have[1] {
		vals := p.vals
		pe.waiting.remove(key)
		pe.stats.MatchStoreOccupancy.Update(uint64(now), int64(pe.waiting.Len()))
		pe.stats.Matches.Inc()
		pe.ready.Push(enabledInstr{act: key, vals: vals})
	}
}

// sendToDests builds result tokens with the standard tag transformation
// (same context, same initiation, destination statement) and queues them at
// the output section.
func (pe *PE) sendToDests(act token.ActivityName, dests []graph.Dest, v token.Value) {
	pe.sendToDestsInit(act, dests, v, act.Initiation)
}

// sendToDestsInit is sendToDests with an explicit initiation number (for D
// and D⁻¹).
func (pe *PE) sendToDestsInit(act token.ActivityName, dests []graph.Dest, v token.Value, initiation uint32) {
	blk := pe.m.prog.Block(graph.BlockID(act.CodeBlock))
	for _, d := range dests {
		newAct := token.ActivityName{
			Context:    act.Context,
			CodeBlock:  act.CodeBlock,
			Statement:  d.Stmt,
			Initiation: initiation,
		}
		t := token.Token{
			Class: token.Normal,
			Tag:   token.Tag{Activity: newAct},
			NT:    blk.Instr(d.Stmt).NT,
			Port:  d.Port,
			Value: v,
		}
		t.PE = t.Tag.HomePE(pe.m.cfg.PEs)
		pe.emit(t)
	}
}

// sendToken emits a fully-formed token (cross-block sends).
func (pe *PE) sendToken(act token.ActivityName, blkID graph.BlockID, stmt uint16, port uint8, v token.Value) {
	blk := pe.m.prog.Block(blkID)
	t := token.Token{
		Class: token.Normal,
		Tag:   token.Tag{Activity: act},
		NT:    blk.Instr(stmt).NT,
		Port:  port,
		Value: v,
	}
	t.PE = t.Tag.HomePE(pe.m.cfg.PEs)
	pe.emit(t)
}

// execute performs one instruction, the heart of the ALU stage. Its case
// analysis must agree exactly with the reference interpreter. Cases that
// touch the shared context table (SEND-ARG/L, RETURN/L⁻¹) run at the
// commit barrier in sharded mode; everything else touches only this PE,
// its co-located I-structure module, or the deferred-op log.
func (pe *PE) execute(blk *graph.CodeBlock, in *graph.Instruction, e enabledInstr) {
	act := e.act
	vals := e.vals
	if in.HasLiteral {
		vals[in.LiteralPort] = in.Literal
	}
	switch {
	case in.Op.IsPure():
		v, err := graph.Eval(in.Op, vals[0], vals[1])
		if err != nil {
			pe.fail(fmt.Errorf("core: %v at %s %s", err, act, in.Op))
			return
		}
		pe.sendToDests(act, in.Dests, v)
		return
	}
	switch in.Op {
	case graph.OpSwitch:
		c, err := vals[1].AsBool()
		if err != nil {
			pe.fail(fmt.Errorf("core: switch control at %s: %v", act, err))
			return
		}
		if c {
			pe.sendToDests(act, in.Dests, vals[0])
		} else {
			pe.sendToDests(act, in.DestsFalse, vals[0])
		}
	case graph.OpGetContext, graph.OpAllocate:
		// d=2: manager request to the PE controller
		pe.stats.TokensD2.Inc()
		pe.ctrlQ.Push(ctrlRequest{act: act, instr: in, value: vals[0]})
	case graph.OpSendArg, graph.OpL:
		if pe.sh != nil {
			pe.sh.push(shardOp{kind: opExec, pe: pe, in: in, act: act, vals: vals})
			return
		}
		pe.execSendArg(in, act, vals)
	case graph.OpD:
		pe.sendToDestsInit(act, in.Dests, vals[0], act.Initiation+1)
	case graph.OpDInv:
		pe.sendToDestsInit(act, in.Dests, vals[0], 1)
	case graph.OpReturn, graph.OpLInv:
		if pe.sh != nil {
			pe.sh.push(shardOp{kind: opExec, pe: pe, in: in, act: act, vals: vals})
			return
		}
		pe.execReturn(in, act, vals)
	case graph.OpFetch:
		// Reading nextAddr from a shard's parallel step is benign: it is
		// written only at the commit barrier, and an address allocated in
		// cycle t cannot reach a consumer before t+2 (the base travels
		// through at least the output and input sections), so the bound
		// checked here always predates this cycle.
		addr, err := vals[0].AsInt()
		if err != nil || addr < 0 || uint32(addr) >= pe.m.nextAddr {
			pe.fail(fmt.Errorf("core: fetch at %s: bad address %s", act, vals[0]))
			return
		}
		d := in.Dests[0]
		rt := replyTag{
			activity: token.ActivityName{
				Context:    act.Context,
				CodeBlock:  act.CodeBlock,
				Statement:  d.Stmt,
				Initiation: act.Initiation,
			},
			port: d.Port,
			nt:   blk.Instr(d.Stmt).NT,
		}
		pe.trace(TraceISRead, "addr=%d for %s", addr, traceActivity(rt.activity))
		pe.emitIS(isRequest{op: istructure.OpRead, addr: uint32(addr), replyTo: rt})
	case graph.OpStore:
		addr, err := vals[0].AsInt()
		if err != nil || addr < 0 || uint32(addr) >= pe.m.nextAddr {
			pe.fail(fmt.Errorf("core: store at %s: bad address %s", act, vals[0]))
			return
		}
		pe.trace(TraceISWrite, "addr=%d value=%s", addr, vals[1])
		pe.emitIS(isRequest{op: istructure.OpWrite, addr: uint32(addr), value: vals[1]})
	case graph.OpSink, graph.OpNop:
		// absorbed
	default:
		pe.fail(fmt.Errorf("core: cannot execute %s", in.Op))
	}
}

// execSendArg performs SEND-ARG/L: look up the callee's invocation record,
// count the argument, and ship it to the callee's entry. Serial contexts
// only (it reads and mutates the shared context table).
func (pe *PE) execSendArg(in *graph.Instruction, act token.ActivityName, vals [2]token.Value) {
	h, err := vals[0].AsInt()
	if err != nil {
		pe.m.fail(fmt.Errorf("core: %s handle at %s: %v", in.Op, act, err))
		return
	}
	rec := pe.m.ctxLookup(token.Context(h))
	if rec == nil {
		pe.m.fail(fmt.Errorf("core: %s at %s: unknown context %d", in.Op, act, h))
		return
	}
	callee := pe.m.prog.Block(rec.block)
	if int(in.ArgIndex) >= len(callee.Entries) {
		pe.m.fail(fmt.Errorf("core: %s at %s: arg %d out of range", in.Op, act, in.ArgIndex))
		return
	}
	rec.argsSent++
	newAct := token.ActivityName{
		Context:    token.Context(h),
		CodeBlock:  uint16(rec.block),
		Statement:  callee.Entries[in.ArgIndex],
		Initiation: 1,
	}
	block := rec.block
	pe.m.maybeFreeContext(token.Context(h), rec)
	pe.sendToken(newAct, block, newAct.Statement, 0, vals[1])
}

// execReturn performs RETURN/L⁻¹: deliver the value to the parent's return
// destinations (or the program results in context 0) and retire the
// invocation record. Serial contexts only.
func (pe *PE) execReturn(in *graph.Instruction, act token.ActivityName, vals [2]token.Value) {
	if act.Context == 0 {
		pe.trace(TraceResult, "%s", vals[0])
		pe.m.results = append(pe.m.results, vals[0])
		return
	}
	rec := pe.m.ctxLookup(act.Context)
	if rec == nil {
		pe.m.fail(fmt.Errorf("core: %s at %s: unknown context", in.Op, act))
		return
	}
	rec.returned = true
	for _, d := range rec.returnDests {
		newAct := token.ActivityName{
			Context:    rec.parent.Context,
			CodeBlock:  uint16(rec.parentBlock),
			Statement:  d.Stmt,
			Initiation: rec.parent.Initiation,
		}
		pe.sendToken(newAct, rec.parentBlock, d.Stmt, d.Port, vals[0])
	}
	pe.m.maybeFreeContext(act.Context, rec)
}

// emitIS routes a d=1 request toward the owning I-structure module. The
// local bypass reaches only this PE's own module, so in sharded mode it
// stays inside the shard; remote requests go through the (deferred) send
// path.
func (pe *PE) emitIS(r isRequest) {
	pe.stats.TokensD1.Inc()
	home := pe.m.homeModule(r.addr)
	if home == pe.id {
		pe.stats.LocalBypass.Inc()
		if err := pe.m.enqueueIS(home, r); err != nil {
			pe.fail(err)
		}
		return
	}
	pkt := pe.getPkt()
	pkt.Src, pkt.Dst, pkt.Payload = pe.id, home, r
	pe.sendPkt(pkt)
}
