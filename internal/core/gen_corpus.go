//go:build ignore

// gen_corpus regenerates the committed fuzz corpus for
// FuzzCheckpointDecode: a valid mid-run TTDA checkpoint plus one file per
// corruption class. Run from this directory:
//
//	go run gen_corpus.go
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/workload"
)

func main() {
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	args, err := id.EntryArgs(prog, []token.Value{token.Int(3)})
	if err != nil {
		log.Fatal(err)
	}
	m := core.NewMachine(core.Config{PEs: 4}, prog)
	if _, err := m.Run(200, args...); err == nil {
		log.Fatal("seed run finished before the pause point")
	}
	valid := sim.Checkpoint(m)

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	bumped := append([]byte(nil), valid...)
	bumped[11] ^= 0xFF

	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"seed-valid":     valid,
		"seed-empty":     {},
		"seed-truncated": valid[:len(valid)/2],
		"seed-flipped":   flipped,
		"seed-version":   bumped,
	} {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes of input)\n", filepath.Join(dir, name), len(data))
	}
}
