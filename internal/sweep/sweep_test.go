package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestRunDeterministicAcrossWorkerCounts is the runner's core contract:
// the same points produce bit-identical results (including each point's
// RNG draws) at any worker count.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	points := make([]int, 37)
	for i := range points {
		points[i] = i * 3
	}
	eval := func(env Env, p int) (uint64, error) {
		return uint64(p)*1e9 + env.RNG.Uint64()%1e9 + uint64(env.Index), nil
	}
	ref, err := Run(points, eval, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 16, 100} {
		got, err := Run(points, eval, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d point %d: %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestRunLowestIndexErrorWins pins the schedule-independent error rule.
func TestRunLowestIndexErrorWins(t *testing.T) {
	points := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 4} {
		_, err := Run(points, func(_ Env, p int) (int, error) {
			if p >= 3 {
				return 0, fmt.Errorf("point %d failed", p)
			}
			return p, nil
		}, Options{Workers: workers})
		if err == nil || !strings.Contains(err.Error(), "point 3") {
			t.Fatalf("workers=%d: err %v, want the lowest-indexed failure (point 3)", workers, err)
		}
	}
}

func TestRunSeedsMatchSeed(t *testing.T) {
	got, err := Run([]int{0, 1, 2}, func(env Env, _ int) (uint64, error) {
		return env.RNG.Uint64(), nil
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		want := Run1RNG(i)
		if g != want {
			t.Fatalf("point %d drew %d, want %d (Seed-derived)", i, g, want)
		}
	}
}

// Run1RNG reproduces the first draw a point's Env RNG yields.
func Run1RNG(i int) uint64 {
	return sim.NewRNG(Seed(i)).Uint64()
}

// TestRunProgressNDJSON checks every record parses, the done counter is
// monotonic, and every index is reported exactly once.
func TestRunProgressNDJSON(t *testing.T) {
	var buf bytes.Buffer
	points := make([]int, 11)
	_, err := Run(points, func(env Env, _ int) (int, error) {
		return env.Index, nil
	}, Options{Workers: 3, Progress: &buf})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(points) {
		t.Fatalf("%d progress records for %d points", len(lines), len(points))
	}
	seen := make([]bool, len(points))
	prevDone := 0
	for _, line := range lines {
		var rec struct {
			Done, Total, Index int
			OK                 bool
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON record %q: %v", line, err)
		}
		if rec.Total != len(points) || !rec.OK {
			t.Fatalf("record %q: want total=%d ok=true", line, len(points))
		}
		if rec.Done != prevDone+1 {
			t.Fatalf("done counter not monotonic: %q after done=%d", line, prevDone)
		}
		prevDone = rec.Done
		if seen[rec.Index] {
			t.Fatalf("index %d reported twice", rec.Index)
		}
		seen[rec.Index] = true
	}
}

// TestRunCancellation: a canceled context skips unstarted points and
// surfaces the context error.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	points := make([]int, 1000)
	_, err := Run(points, func(env Env, _ int) (int, error) {
		if ran.Add(1) == 3 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return 0, nil
	}, Options{Workers: 2, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= int64(len(points)) {
		t.Fatalf("cancellation did not stop the sweep (%d points ran)", n)
	}
}

func TestSeedMixes(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 10_000; i++ {
		s := Seed(i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	// Adjacent indices must not produce near-identical seeds.
	if Seed(0)^Seed(1) == 1 {
		t.Fatal("adjacent seeds differ only in the low bit — not mixed")
	}
}
