package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestProgressSharedWriterConcurrentRuns is the regression test for the
// NDJSON progress writer race: two sweeps sharing one writer — here a
// deliberately unsynchronized bytes.Buffer — must emit whole,
// well-formed lines with exact per-run accounting. Before the fix each
// Run serialized only against itself (a per-Run mutex), so concurrent
// runs raced on the writer and tore lines; under -race this test fails
// outright on the old code.
func TestProgressSharedWriterConcurrentRuns(t *testing.T) {
	const runs, points = 2, 150
	var shared bytes.Buffer
	var wg sync.WaitGroup
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := Run(make([]int, points), func(Env, int) (int, error) { return 0, nil },
				Options{Workers: 4, Progress: &shared})
			if err != nil {
				t.Errorf("Run: %v", err)
			}
		}()
	}
	wg.Wait()

	type rec struct {
		Done  int  `json:"done"`
		Total int  `json:"total"`
		Index int  `json:"index"`
		OK    bool `json:"ok"`
	}
	lines := 0
	doneSeen := make(map[int]int)
	sc := bufio.NewScanner(bytes.NewReader(shared.Bytes()))
	for sc.Scan() {
		lines++
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d is not valid NDJSON (torn write?): %q: %v", lines, sc.Text(), err)
		}
		if r.Total != points || !r.OK || r.Index < 0 || r.Index >= points {
			t.Fatalf("line %d has impossible fields: %+v", lines, r)
		}
		doneSeen[r.Done]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != runs*points {
		t.Fatalf("got %d progress lines, want %d", lines, runs*points)
	}
	// Each run's done counter is monotonic 1..points, so across the two
	// interleaved runs every value must appear exactly twice.
	for d := 1; d <= points; d++ {
		if doneSeen[d] != runs {
			t.Errorf("done=%d appeared %d times, want %d", d, doneSeen[d], runs)
		}
	}
}
