package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func poolWaitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolRunsEveryJob(t *testing.T) {
	p := NewPool(2, 8)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), func() { ran.Add(1) }); err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if ran.Load() != 10 {
		t.Errorf("ran %d jobs, want 10", ran.Load())
	}
	if p.Running() != 0 || p.Waiting() != 0 {
		t.Errorf("pool not quiescent: running %d waiting %d", p.Running(), p.Waiting())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(2, 8)
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func() {
				entered <- struct{}{}
				<-gate
			})
		}()
	}
	<-entered
	<-entered
	// Both slots are held; no third job may enter.
	select {
	case <-entered:
		t.Fatal("a third job entered a 2-worker pool")
	case <-time.After(50 * time.Millisecond):
	}
	if p.Running() != 2 {
		t.Errorf("running = %d, want 2", p.Running())
	}
	close(gate)
	wg.Wait()
}

func TestPoolSaturation(t *testing.T) {
	p := NewPool(1, 1)
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	var wg sync.WaitGroup
	// One running plus the permitted waiters (slot handoff + backlog).
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), func() {
				entered <- struct{}{}
				<-gate
			}); err != nil {
				t.Errorf("admitted Do failed: %v", err)
			}
		}()
	}
	<-entered
	poolWaitFor(t, "two submitters queued", func() bool { return p.Waiting() == 2 })

	if err := p.Do(context.Background(), func() {}); !errors.Is(err, ErrSaturated) {
		t.Errorf("over-capacity Do = %v, want ErrSaturated", err)
	}
	close(gate)
	wg.Wait()
}

func TestPoolCancelWhileWaiting(t *testing.T) {
	p := NewPool(1, 4)
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(context.Background(), func() {
			entered <- struct{}{}
			<-gate
		})
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- p.Do(ctx, func() { t.Error("canceled submitter's fn ran") })
	}()
	poolWaitFor(t, "submitter queued", func() bool { return p.Waiting() == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Do = %v, want context.Canceled", err)
	}
	if p.Waiting() != 0 {
		t.Errorf("waiting = %d after cancellation, want 0", p.Waiting())
	}
	close(gate)
	wg.Wait()

	// The abandoned wait must not have leaked a slot.
	if err := p.Do(context.Background(), func() {}); err != nil {
		t.Errorf("post-cancellation Do = %v, want nil", err)
	}
}

func TestPoolCloseAndDrain(t *testing.T) {
	p := NewPool(2, 4)
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := p.Do(context.Background(), func() {
			entered <- struct{}{}
			<-gate
		}); err != nil {
			t.Errorf("pre-close Do: %v", err)
		}
	}()
	<-entered

	p.Close()
	if err := p.Do(context.Background(), func() { t.Error("fn ran after Close") }); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close Do = %v, want ErrClosed", err)
	}

	drained := make(chan struct{})
	go func() {
		p.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("Drain returned while a job was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	wg.Wait()
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned after the running job finished")
	}
}
