// Package sweep is the repository's parallel sweep runner: it evaluates a
// slice of independent simulation points across a bounded worker pool with
// per-point deterministic seeding, optional cancellation, and optional
// NDJSON progress reporting.
//
// Sweep points in this repository are independent whole-machine simulations
// (each builds its own machine from its own compiled program), which makes
// them embarrassingly parallel. Determinism is preserved by construction:
// results land in a slice indexed by point, every point draws randomness
// from an RNG seeded by its index alone (not by worker or schedule), and on
// failure the error from the lowest-indexed failing point wins — so a sweep
// is bit-identical at any worker count, including 1.
package sweep

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// progressMu serializes NDJSON progress records across every Run (and
// Pool) in the process, so sweeps sharing one writer never tear lines.
// Contention is negligible: one short Write per completed point.
var progressMu sync.Mutex

// Env is the per-point context a worker hands to the point function.
type Env struct {
	// Index is the point's position in the input slice.
	Index int
	// RNG is seeded from Index alone (see Seed); stochastic points stay
	// reproducible under any worker schedule.
	RNG *sim.RNG
}

// Options tunes a sweep run.
type Options struct {
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS. The pool
	// never exceeds the number of points.
	Workers int
	// Progress, when non-nil, receives one NDJSON record per completed
	// point: {"done":d,"total":n,"index":i,"ok":b}. Records are written
	// in completion order (schedule-dependent); the "done" counter is
	// monotonic per Run. Every record is emitted as a single Write under
	// a package-wide lock, so concurrent sweeps may share one writer —
	// even an unsynchronized one like bytes.Buffer — without torn or
	// interleaved lines (their records simply intermix whole-line-wise;
	// tag the writer or the record consumer if runs must be told apart).
	Progress io.Writer
	// Context, when non-nil, cancels the sweep: points not yet started
	// when it is done are skipped, and Run reports the context's error
	// unless a lower-indexed point already failed on its own.
	Context context.Context
}

// Seed derives a well-mixed RNG seed from a sweep-point index (splitmix64
// finalizer). Exported so sweeps that construct machines outside Run — the
// conformance fleet, the benchmark harness — can reproduce the exact seeds
// a Run-driven sweep would use.
func Seed(i int) uint64 {
	z := uint64(i) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Run evaluates fn over every point, fanning points across the worker
// pool. Results are returned in input order. The first error in input
// order (not completion order) is returned; a canceled context surfaces as
// its error after lower-indexed genuine failures.
func Run[P, R any](points []P, fn func(env Env, p P) (R, error), opt Options) ([]R, error) {
	n := len(points)
	results := make([]R, n)
	errs := make([]error, n)
	started := make([]bool, n)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	ctx := opt.Context
	var done atomic.Int64
	report := func(i int, ok bool) {
		if opt.Progress == nil {
			return
		}
		d := done.Add(1)
		// Render outside the lock, write the whole line inside it. The
		// lock is package-wide (not per-Run) so two sweeps sharing one
		// writer serialize against each other, not just against
		// themselves — a per-Run mutex raced on the shared writer.
		line := fmt.Appendf(nil, "{\"done\":%d,\"total\":%d,\"index\":%d,\"ok\":%t}\n", d, n, i, ok)
		progressMu.Lock()
		opt.Progress.Write(line)
		progressMu.Unlock()
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx != nil && ctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				started[i] = true
				env := Env{Index: i, RNG: sim.NewRNG(Seed(i))}
				results[i], errs[i] = fn(env, points[i])
				report(i, errs[i] == nil)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		if !started[i] {
			// Only cancellation leaves a gap in the cursor's coverage.
			return nil, ctx.Err()
		}
	}
	return results, nil
}
