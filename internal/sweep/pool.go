package sweep

import (
	"context"
	"errors"
	"sync/atomic"
)

// Pool errors.
var (
	// ErrSaturated reports a Do that found the backlog full; callers
	// (the serve job queue) surface it as back-pressure, e.g. HTTP 503.
	ErrSaturated = errors.New("sweep: pool saturated")
	// ErrClosed reports a Do after Close.
	ErrClosed = errors.New("sweep: pool closed")
)

// Pool is the dynamic sibling of Run: a long-lived bounded worker pool
// for job streams whose points arrive over time (a server's request
// traffic) instead of as a slice known up front. It deliberately shares
// Run's discipline — bounded concurrency, context cancellation honored
// while queued, explicit back-pressure instead of unbounded buffering —
// but runs each job on its submitter's goroutine once a worker slot
// frees, so results and errors flow back without any channel plumbing.
//
// Concurrency is bounded by the slot count; the number of submitters
// allowed to wait for a slot is bounded by the backlog. A submission
// beyond both bounds fails fast with ErrSaturated rather than queueing
// without limit — under overload the caller must shed, not buffer.
type Pool struct {
	slots   chan struct{}
	backlog int64
	waiting atomic.Int64
	running atomic.Int64
	closed  atomic.Bool
}

// NewPool sizes a pool: workers concurrent jobs (minimum 1), backlog
// additional submitters allowed to wait for a slot (minimum 0).
func NewPool(workers, backlog int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if backlog < 0 {
		backlog = 0
	}
	return &Pool{slots: make(chan struct{}, workers), backlog: int64(backlog)}
}

// Do runs fn on the calling goroutine once a worker slot is free. It
// returns ErrSaturated immediately when the backlog is full, ErrClosed
// after Close, and ctx.Err() if the context ends while still waiting for
// a slot — a submitter that gives up while queued never occupies a slot.
// Cancellation after fn starts is fn's own responsibility (the serve
// runners poll their context between engine slices).
func (p *Pool) Do(ctx context.Context, fn func()) error {
	if p.closed.Load() {
		return ErrClosed
	}
	if w := p.waiting.Add(1); w > int64(cap(p.slots))+p.backlog {
		p.waiting.Add(-1)
		return ErrSaturated
	}
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		p.waiting.Add(-1)
		return ctx.Err()
	}
	p.waiting.Add(-1)
	p.running.Add(1)
	defer func() {
		p.running.Add(-1)
		<-p.slots
	}()
	fn()
	return nil
}

// Running reports jobs currently holding a worker slot.
func (p *Pool) Running() int { return int(p.running.Load()) }

// Waiting reports submitters queued for a slot plus those mid-handoff.
func (p *Pool) Waiting() int {
	if w := p.waiting.Load(); w > 0 {
		return int(w)
	}
	return 0
}

// Workers reports the slot count.
func (p *Pool) Workers() int { return cap(p.slots) }

// Close rejects subsequent Do calls. Jobs already running (or already
// past the closed check) finish normally; use Drain to wait for them.
func (p *Pool) Close() { p.closed.Store(true) }

// Drain blocks until every worker slot is simultaneously free — i.e.
// all running jobs have finished. Call it after Close (and after the
// submitting side has stopped, e.g. http.Server.Shutdown returned);
// draining a pool still being submitted to only races with the queue.
func (p *Pool) Drain() {
	for i := 0; i < cap(p.slots); i++ {
		p.slots <- struct{}{}
	}
	for i := 0; i < cap(p.slots); i++ {
		<-p.slots
	}
}
