package network

import (
	"fmt"

	"repro/internal/sim"
)

// Mesh is a 2-D mesh with XY (dimension-order) routing, the Illiac IV /
// Connection Machine grid. Each node has an injection queue and one input
// buffer per incoming link; each link moves one packet per cycle. Optional
// wraparound turns it into a torus (Illiac IV was an 8×8 end-around grid).
type Mesh struct {
	clocked
	w, h    int
	torus   bool
	deliver Delivery

	// in[node][port]: port 0 = injection, 1..4 = -x,+x,-y,+y inputs
	in      [][]*queue
	rr      []int
	pending int
	now     sim.Cycle
	stats   *Stats
}

const (
	meshInject = 0
	meshWest   = 1 // arrived travelling +x (came from west)
	meshEast   = 2
	meshSouth  = 3
	meshNorth  = 4
	meshPorts  = 5
)

// NewMesh returns a w×h mesh (torus when wrap is true) with the given
// per-buffer capacity.
func NewMesh(w, h int, wrap bool, queueCap int) *Mesh {
	m := &Mesh{w: w, h: h, torus: wrap, stats: NewStats()}
	n := w * h
	m.in = make([][]*queue, n)
	m.rr = make([]int, n)
	for i := range m.in {
		qs := make([]*queue, meshPorts)
		for j := range qs {
			qs[j] = newQueue(queueCap)
		}
		m.in[i] = qs
	}
	return m
}

// Ports returns w*h.
func (m *Mesh) Ports() int { return m.w * m.h }

// SetDelivery registers the destination callback.
func (m *Mesh) SetDelivery(d Delivery) { m.deliver = d }

// Coord converts a node index to (x, y).
func (m *Mesh) Coord(node int) (x, y int) { return node % m.w, node / m.w }

// Node converts (x, y) to a node index.
func (m *Mesh) Node(x, y int) int { return y*m.w + x }

// Send enqueues at the source's injection buffer.
func (m *Mesh) Send(p *Packet) bool {
	if p.Src < 0 || p.Src >= m.Ports() || p.Dst < 0 || p.Dst >= m.Ports() {
		panic(fmt.Sprintf("network: mesh packet with bad endpoints %s", p))
	}
	m.now = m.clock(m, m.now)
	if !m.in[p.Src][meshInject].push(p) {
		m.stats.Refused.Inc()
		return false
	}
	p.InjectedAt = m.now
	p.moved = ^sim.Cycle(0) // sentinel: not yet hopped
	m.pending++
	m.stats.Injected.Inc()
	m.rearm(m)
	return true
}

// step direction deltas; returns (next node, arrival port) for one hop of
// XY routing from cur toward dst.
func (m *Mesh) nextHop(cur, dst int) (next int, arrivalPort int) {
	cx, cy := m.Coord(cur)
	dx, dy := m.Coord(dst)
	switch {
	case cx != dx:
		step := 1
		if dx < cx {
			step = -1
		}
		if m.torus {
			// choose the shorter wrap direction
			fwd := (dx - cx + m.w) % m.w
			if fwd <= m.w-fwd {
				step = 1
			} else {
				step = -1
			}
		}
		nx := (cx + step + m.w) % m.w
		if !m.torus && (cx+step < 0 || cx+step >= m.w) {
			nx = cx // cannot happen with XY routing on a mesh
		}
		if step == 1 {
			return m.Node(nx, cy), meshWest
		}
		return m.Node(nx, cy), meshEast
	case cy != dy:
		step := 1
		if dy < cy {
			step = -1
		}
		if m.torus {
			fwd := (dy - cy + m.h) % m.h
			if fwd <= m.h-fwd {
				step = 1
			} else {
				step = -1
			}
		}
		ny := (cy + step + m.h) % m.h
		if step == 1 {
			return m.Node(cx, ny), meshSouth
		}
		return m.Node(cx, ny), meshNorth
	default:
		return cur, -1
	}
}

// Step advances one cycle: every node ejects local packets and forwards at
// most one packet per outgoing link.
func (m *Mesh) Step(now sim.Cycle) {
	m.now = now
	n := m.Ports()
	for node := 0; node < n; node++ {
		usedLink := map[int]bool{} // arrival port at neighbor, keyed by next*8+port
		inputs := m.in[node]
		start := m.rr[node]
		for k := 0; k < meshPorts; k++ {
			port := (start + k) % meshPorts
			q := inputs[port]
			h := q.head()
			if h == nil || h.moved == now {
				continue
			}
			if h.Dst == node {
				q.pop()
				m.pending--
				m.stats.delivered(h, now)
				m.deliver(h)
				continue
			}
			next, arrival := m.nextHop(node, h.Dst)
			key := next*8 + arrival
			if usedLink[key] {
				continue // link already carried a packet this cycle
			}
			target := m.in[next][arrival]
			if target.full() {
				continue // backpressure
			}
			// Bubble flow control: a packet entering a ring (injection or
			// a dimension turn) must leave a free slot behind, so a
			// wrap-around ring can never fill completely and deadlock.
			// Packets continuing along the same ring (same arrival
			// direction) need only one slot.
			if m.torus && port != arrival && target.len() >= target.cap-1 {
				continue
			}
			q.pop()
			h.Hops++
			h.moved = now
			m.in[next][arrival].push(h)
			usedLink[key] = true
		}
		m.rr[node] = (start + 1) % meshPorts
	}
}

// Pending reports packets queued or in transit.
func (m *Mesh) Pending() int { return m.pending }

// Idle reports whether no packets are queued or in flight.
func (m *Mesh) Idle() bool { return m.pending == 0 }

// NextEvent: a mesh with traffic must route every cycle.
func (m *Mesh) NextEvent(now sim.Cycle) sim.Cycle { return steppedNextEvent(m.pending, now) }

// Stats returns traffic counters.
func (m *Mesh) Stats() *Stats { return m.stats }

// DistanceXY returns the hop distance between two nodes under the current
// topology (mesh or torus).
func (m *Mesh) DistanceXY(a, b int) int {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	dx := abs(ax - bx)
	dy := abs(ay - by)
	if m.torus {
		if w := m.w - dx; w < dx {
			dx = w
		}
		if h := m.h - dy; h < dy {
			dy = h
		}
	}
	return dx + dy
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Lookahead: a mesh packet spends at least one cycle in its injection
// queue before the earliest possible ejection at its destination.
func (m *Mesh) Lookahead() sim.Cycle { return 1 }

var (
	_ Network     = (*Mesh)(nil)
	_ Lookaheader = (*Mesh)(nil)
)
