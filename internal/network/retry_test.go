package network

import (
	"testing"
)

// refusingFabric accepts packets only when open[src] has room, recording
// the exact acceptance sequence.
type refusingFabric struct {
	room     map[int]int
	accepted []*Packet
	attempts int
}

func (f *refusingFabric) send(p *Packet) bool {
	f.attempts++
	if f.room[p.Src] <= 0 {
		return false
	}
	f.room[p.Src]--
	f.accepted = append(f.accepted, p)
	return true
}

func pkt(src, seq int) *Packet { return &Packet{Src: src, Dst: 0, Payload: seq} }

// TestFIFOPerSourceUnderSustainedBackpressure is the satellite's explicit
// ordering guarantee: a source whose packets are refused for many cycles
// must still deliver them in offer order once the fabric opens, regardless
// of how other sources' traffic interleaves.
func TestFIFOPerSourceUnderSustainedBackpressure(t *testing.T) {
	f := &refusingFabric{room: map[int]int{}}
	q := NewRetryQueue(f.send)

	// Two sources, everything refused at first.
	for seq := 0; seq < 5; seq++ {
		q.Send(pkt(1, seq))
		q.Send(pkt(2, seq))
	}
	if q.Len() != 10 {
		t.Fatalf("queued %d, want 10", q.Len())
	}
	// Sustained backpressure: many drains against a closed fabric.
	for cycle := 0; cycle < 50; cycle++ {
		q.Drain()
	}
	if len(f.accepted) != 0 || q.Len() != 10 {
		t.Fatalf("closed fabric accepted %d packets", len(f.accepted))
	}
	// Open source 2 a trickle at a time; source 1 stays blocked.
	for cycle := 0; cycle < 5; cycle++ {
		f.room[2] = 1
		q.Drain()
	}
	// Then open source 1 fully.
	f.room[1] = 5
	q.Drain()
	if q.Len() != 0 {
		t.Fatalf("%d packets still queued", q.Len())
	}
	seqs := map[int][]int{}
	for _, p := range f.accepted {
		seqs[p.Src] = append(seqs[p.Src], p.Payload.(int))
	}
	for src, got := range seqs {
		for i, s := range got {
			if s != i {
				t.Fatalf("source %d delivered out of order: %v", src, got)
			}
		}
	}
}

// TestSendQueuesBehindPredecessors pins the no-overtake rule: a fresh
// packet from a source with queued predecessors must not enter the fabric
// first, even when the fabric would accept it.
func TestSendQueuesBehindPredecessors(t *testing.T) {
	f := &refusingFabric{room: map[int]int{}}
	q := NewRetryQueue(f.send)
	if q.Send(pkt(7, 0)) {
		t.Fatal("closed fabric must refuse")
	}
	f.room[7] = 2
	if q.Send(pkt(7, 1)) {
		t.Fatal("packet must queue behind its refused predecessor")
	}
	q.Drain()
	if len(f.accepted) != 2 {
		t.Fatalf("accepted %d, want 2", len(f.accepted))
	}
	if f.accepted[0].Payload.(int) != 0 || f.accepted[1].Payload.(int) != 1 {
		t.Fatalf("out of order: %v then %v", f.accepted[0].Payload, f.accepted[1].Payload)
	}
}

// TestHeadOfLineBlocksOnlyOwnSource verifies a refused head does not stop
// other sources, and that retry attempts preserve arrival order.
func TestHeadOfLineBlocksOnlyOwnSource(t *testing.T) {
	f := &refusingFabric{room: map[int]int{}}
	q := NewRetryQueue(f.send)
	q.Send(pkt(1, 0))
	q.Send(pkt(2, 0))
	q.Send(pkt(1, 1))
	f.room[2] = 1
	q.Drain()
	if len(f.accepted) != 1 || f.accepted[0].Src != 2 {
		t.Fatalf("source 2 should pass a blocked source 1: %v", f.accepted)
	}
	// Source 1's two packets must still drain in order, with one refusal
	// per drain (head-of-line blocking, not per-packet hammering).
	f.attempts = 0
	q.Drain()
	if f.attempts != 1 {
		t.Fatalf("blocked source should attempt only its head: %d attempts", f.attempts)
	}
	f.room[1] = 2
	q.Drain()
	if q.Len() != 0 || f.accepted[1].Payload.(int) != 0 || f.accepted[2].Payload.(int) != 1 {
		t.Fatalf("source 1 drained out of order: %v", f.accepted)
	}
}
