package network

import "repro/internal/sim"

// Ideal is a contention-free fabric: every packet arrives exactly Latency
// cycles after injection, regardless of load. It is the control case for
// experiments (infinite bandwidth, fixed latency) and the memory-latency
// knob for E1: raising Latency models a deeper machine.
type Ideal struct {
	ports    int
	latency  sim.Cycle
	deliver  Delivery
	inflight map[sim.Cycle][]*Packet
	pending  int
	now      sim.Cycle
	stats    *Stats
}

// NewIdeal returns an ideal network with the given port count and fixed
// latency in cycles (minimum 1).
func NewIdeal(ports int, latency sim.Cycle) *Ideal {
	if latency < 1 {
		latency = 1
	}
	return &Ideal{
		ports:    ports,
		latency:  latency,
		inflight: map[sim.Cycle][]*Packet{},
		stats:    NewStats(),
	}
}

// Ports returns the endpoint count.
func (n *Ideal) Ports() int { return n.ports }

// SetDelivery registers the destination callback.
func (n *Ideal) SetDelivery(d Delivery) { n.deliver = d }

// Latency returns the configured delivery latency.
func (n *Ideal) Latency() sim.Cycle { return n.latency }

// Send schedules delivery Latency cycles after the current cycle. The
// ideal network never refuses a packet.
func (n *Ideal) Send(p *Packet) bool {
	p.InjectedAt = n.now
	p.Hops = 1
	due := n.now + n.latency
	n.inflight[due] = append(n.inflight[due], p)
	n.pending++
	n.stats.Injected.Inc()
	return true
}

// Step delivers every packet due this cycle.
func (n *Ideal) Step(now sim.Cycle) {
	n.now = now
	due := n.inflight[now]
	if len(due) == 0 {
		return
	}
	delete(n.inflight, now)
	for _, p := range due {
		n.pending--
		n.stats.delivered(p, now)
		n.deliver(p)
	}
}

// Pending reports packets in flight.
func (n *Ideal) Pending() int { return n.pending }

// Stats returns traffic counters.
func (n *Ideal) Stats() *Stats { return n.stats }

var _ Network = (*Ideal)(nil)
