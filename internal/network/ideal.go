package network

import "repro/internal/sim"

// Ideal is a contention-free fabric: every packet arrives exactly Latency
// cycles after injection, regardless of load. It is the control case for
// experiments (infinite bandwidth, fixed latency) and the memory-latency
// knob for E1: raising Latency models a deeper machine.
//
// Because the latency is fixed, due times are nondecreasing in injection
// order, so in-flight packets live in one ring-buffer FIFO: Step pops the
// head while it is due, and the head's due time is the fabric's next
// event. This keeps the idle path O(1) with zero per-cycle allocation and
// preserves the seed's delivery order (injection order within a cycle).
type Ideal struct {
	clocked
	ports    int
	latency  sim.Cycle
	deliver  Delivery
	inflight sim.FIFO[timedPacket]
	now      sim.Cycle
	stats    *Stats
}

// timedPacket is a packet with its scheduled delivery cycle.
type timedPacket struct {
	due sim.Cycle
	p   *Packet
}

// NewIdeal returns an ideal network with the given port count and fixed
// latency in cycles (minimum 1).
func NewIdeal(ports int, latency sim.Cycle) *Ideal {
	if latency < 1 {
		latency = 1
	}
	return &Ideal{
		ports:   ports,
		latency: latency,
		stats:   NewStats(),
	}
}

// Ports returns the endpoint count.
func (n *Ideal) Ports() int { return n.ports }

// SetDelivery registers the destination callback.
func (n *Ideal) SetDelivery(d Delivery) { n.deliver = d }

// Latency returns the configured delivery latency.
func (n *Ideal) Latency() sim.Cycle { return n.latency }

// Send schedules delivery Latency cycles after the current cycle. The
// ideal network never refuses a packet.
func (n *Ideal) Send(p *Packet) bool {
	n.now = n.clock(n, n.now)
	p.InjectedAt = n.now
	p.Hops = 1
	n.inflight.Push(timedPacket{due: n.now + n.latency, p: p})
	n.stats.Injected.Inc()
	n.rearm(n)
	return true
}

// Step delivers every packet due at or before now.
func (n *Ideal) Step(now sim.Cycle) {
	n.now = now
	for n.inflight.Len() > 0 && n.inflight.Peek().due <= now {
		tp := n.inflight.Pop()
		n.stats.delivered(tp.p, now)
		n.deliver(tp.p)
	}
}

// Pending reports packets in flight.
func (n *Ideal) Pending() int { return n.inflight.Len() }

// Idle reports whether nothing is in flight.
func (n *Ideal) Idle() bool { return n.inflight.Len() == 0 }

// NextEvent reports the head packet's delivery cycle, or sim.Never when
// idle. A due time in the past (possible only through misuse) clamps to
// now.
func (n *Ideal) NextEvent(now sim.Cycle) sim.Cycle {
	if n.inflight.Len() == 0 {
		return sim.Never
	}
	if due := n.inflight.Peek().due; due > now {
		return due
	}
	return now
}

// Stats returns traffic counters.
func (n *Ideal) Stats() *Stats { return n.stats }

// Lookahead: every delivery happens exactly Latency cycles after Send.
func (n *Ideal) Lookahead() sim.Cycle { return n.latency }

// WindowLookahead implements Windowable: Send schedules the exact
// delivery cycle from the injection clock, and Step on a delivery-free
// tick is a no-op, so the ideal fabric is safe to leave unstepped for up
// to Latency cycles past the earliest injection.
func (n *Ideal) WindowLookahead() sim.Cycle { return n.latency }

var (
	_ Network     = (*Ideal)(nil)
	_ Lookaheader = (*Ideal)(nil)
	_ Windowable  = (*Ideal)(nil)
)
