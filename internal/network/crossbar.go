package network

import "repro/internal/sim"

// Crossbar models the C.mmp-style n×n crossbar switch: every input has an
// injection queue, every output accepts one packet per cycle, and transit
// takes SwitchDelay cycles once an input wins arbitration. Contention
// appears only when two inputs address the same output in the same cycle.
//
// The paper's point about C.mmp is economic rather than architectural: a
// crossbar's cost grows at least quadratically. Cost reports the standard
// crosspoint count so experiments can plot it.
type Crossbar struct {
	ports       int
	switchDelay sim.Cycle
	deliver     Delivery

	in       []*queue
	rr       []int // per-output round-robin arbitration pointer
	inflight map[sim.Cycle][]*Packet
	pending  int
	now      sim.Cycle
	stats    *Stats
}

// NewCrossbar returns an n-port crossbar. switchDelay is the input-to-
// output transit time in cycles (minimum 1); queueCap bounds each input's
// injection queue.
func NewCrossbar(ports int, switchDelay sim.Cycle, queueCap int) *Crossbar {
	if switchDelay < 1 {
		switchDelay = 1
	}
	c := &Crossbar{
		ports:       ports,
		switchDelay: switchDelay,
		in:          make([]*queue, ports),
		rr:          make([]int, ports),
		inflight:    map[sim.Cycle][]*Packet{},
		stats:       NewStats(),
	}
	for i := range c.in {
		c.in[i] = newQueue(queueCap)
	}
	return c
}

// Cost returns the crosspoint count of an n-port crossbar, the quadratic
// cost growth the paper calls out for C.mmp.
func CrossbarCost(ports int) int { return ports * ports }

// Ports returns the endpoint count.
func (c *Crossbar) Ports() int { return c.ports }

// SetDelivery registers the destination callback.
func (c *Crossbar) SetDelivery(d Delivery) { c.deliver = d }

// Send enqueues at the source's input queue.
func (c *Crossbar) Send(p *Packet) bool {
	if !c.in[p.Src].push(p) {
		c.stats.Refused.Inc()
		return false
	}
	p.InjectedAt = c.now
	c.pending++
	c.stats.Injected.Inc()
	return true
}

// Step arbitrates each output among requesting inputs (round-robin) and
// delivers packets whose transit completes this cycle.
func (c *Crossbar) Step(now sim.Cycle) {
	c.now = now
	for _, p := range c.inflight[now] {
		c.pending--
		c.stats.delivered(p, now)
		c.deliver(p)
	}
	delete(c.inflight, now)

	// For each output, scan inputs starting at the round-robin pointer and
	// grant the first whose head-of-line packet wants this output.
	for out := 0; out < c.ports; out++ {
		granted := -1
		for k := 0; k < c.ports; k++ {
			i := (c.rr[out] + k) % c.ports
			if h := c.in[i].head(); h != nil && h.Dst == out {
				granted = i
				break
			}
		}
		if granted < 0 {
			continue
		}
		p := c.in[granted].pop()
		p.Hops = 1
		due := now + c.switchDelay
		c.inflight[due] = append(c.inflight[due], p)
		c.rr[out] = (granted + 1) % c.ports
	}
}

// Pending reports packets queued or in transit.
func (c *Crossbar) Pending() int { return c.pending }

// Idle reports whether no packets are queued or in flight.
func (c *Crossbar) Idle() bool { return c.pending == 0 }

// NextEvent: a crossbar with traffic must arbitrate every cycle.
func (c *Crossbar) NextEvent(now sim.Cycle) sim.Cycle { return steppedNextEvent(c.pending, now) }

// Stats returns traffic counters.
func (c *Crossbar) Stats() *Stats { return c.stats }

var _ Network = (*Crossbar)(nil)
