package network

import (
	"math/bits"

	"repro/internal/sim"
)

// Crossbar models the C.mmp-style n×n crossbar switch: every input has an
// injection queue, every output accepts one packet per cycle, and transit
// takes SwitchDelay cycles once an input wins arbitration. Contention
// appears only when two inputs address the same output in the same cycle.
//
// The paper's point about C.mmp is economic rather than architectural: a
// crossbar's cost grows at least quadratically. Cost reports the standard
// crosspoint count so experiments can plot it.
//
// Arbitration is cached rather than rescanned: reqs[out] is a bitmask over
// inputs whose head-of-line packet addresses out, maintained on every
// queue push/pop, so each output's round-robin grant is a find-first-set
// over a couple of words instead of an O(ports) walk of every input queue
// — the same grants, in the same order, at O(ports·words) per cycle
// instead of O(ports²).
type Crossbar struct {
	clocked
	ports       int
	switchDelay sim.Cycle
	deliver     Delivery

	in      []*queue
	rr      []int      // per-output round-robin arbitration pointer
	reqs    [][]uint64 // reqs[out]: bitmask of inputs whose head wants out
	headDst []int      // cached head-of-line destination per input, -1 if empty

	// inflight holds granted packets until transit completes. switchDelay
	// is constant, so due cycles are nondecreasing and a FIFO keeps them
	// sorted for free.
	inflight sim.FIFO[flight]
	pending  int
	now      sim.Cycle
	stats    *Stats
}

type flight struct {
	at sim.Cycle
	p  *Packet
}

// NewCrossbar returns an n-port crossbar. switchDelay is the input-to-
// output transit time in cycles (minimum 1); queueCap bounds each input's
// injection queue.
func NewCrossbar(ports int, switchDelay sim.Cycle, queueCap int) *Crossbar {
	if switchDelay < 1 {
		switchDelay = 1
	}
	c := &Crossbar{
		ports:       ports,
		switchDelay: switchDelay,
		in:          make([]*queue, ports),
		rr:          make([]int, ports),
		reqs:        make([][]uint64, ports),
		headDst:     make([]int, ports),
		stats:       NewStats(),
	}
	words := (ports + 63) / 64
	for i := range c.in {
		c.in[i] = newQueue(queueCap)
		c.reqs[i] = make([]uint64, words)
		c.headDst[i] = -1
	}
	return c
}

// Cost returns the crosspoint count of an n-port crossbar, the quadratic
// cost growth the paper calls out for C.mmp.
func CrossbarCost(ports int) int { return ports * ports }

// Ports returns the endpoint count.
func (c *Crossbar) Ports() int { return c.ports }

// SetDelivery registers the destination callback.
func (c *Crossbar) SetDelivery(d Delivery) { c.deliver = d }

// syncHead refreshes input i's cached head destination and the per-output
// requester bitmasks after a push or pop changed the head of its queue.
func (c *Crossbar) syncHead(i int) {
	d := -1
	if h := c.in[i].head(); h != nil {
		d = h.Dst
	}
	if d == c.headDst[i] {
		return
	}
	if o := c.headDst[i]; o >= 0 {
		c.reqs[o][i>>6] &^= 1 << (uint(i) & 63)
	}
	if d >= 0 {
		c.reqs[d][i>>6] |= 1 << (uint(i) & 63)
	}
	c.headDst[i] = d
}

// firstSetFrom returns the lowest set bit at or cyclically after start, or
// -1 when the mask is empty. Bits at or above ports are never set.
func firstSetFrom(mask []uint64, start int) int {
	w := start >> 6
	m := ^uint64(0) << (uint(start) & 63)
	for i := w; i < len(mask); i++ {
		if v := mask[i] & m; v != 0 {
			return i<<6 + bits.TrailingZeros64(v)
		}
		m = ^uint64(0)
	}
	for i := 0; i <= w && i < len(mask); i++ {
		v := mask[i]
		if i == w {
			v &^= ^uint64(0) << (uint(start) & 63)
		}
		if v != 0 {
			return i<<6 + bits.TrailingZeros64(v)
		}
	}
	return -1
}

// Send enqueues at the source's input queue.
func (c *Crossbar) Send(p *Packet) bool {
	c.now = c.clock(c, c.now)
	if !c.in[p.Src].push(p) {
		c.stats.Refused.Inc()
		return false
	}
	c.syncHead(p.Src)
	p.InjectedAt = c.now
	c.pending++
	c.stats.Injected.Inc()
	c.rearm(c)
	return true
}

// Step arbitrates each output among requesting inputs (round-robin) and
// delivers packets whose transit completes this cycle.
func (c *Crossbar) Step(now sim.Cycle) {
	c.now = now
	for c.inflight.Len() > 0 && c.inflight.Peek().at <= now {
		p := c.inflight.Pop().p
		c.pending--
		c.stats.delivered(p, now)
		c.deliver(p)
	}

	// For each output, grant the first requesting input at or cyclically
	// after the round-robin pointer.
	for out := 0; out < c.ports; out++ {
		granted := firstSetFrom(c.reqs[out], c.rr[out])
		if granted < 0 {
			continue
		}
		p := c.in[granted].pop()
		c.syncHead(granted)
		p.Hops = 1
		c.inflight.Push(flight{at: now + c.switchDelay, p: p})
		c.rr[out] = (granted + 1) % c.ports
	}
}

// Pending reports packets queued or in transit.
func (c *Crossbar) Pending() int { return c.pending }

// Idle reports whether no packets are queued or in flight.
func (c *Crossbar) Idle() bool { return c.pending == 0 }

// NextEvent: a crossbar with traffic must arbitrate every cycle.
func (c *Crossbar) NextEvent(now sim.Cycle) sim.Cycle { return steppedNextEvent(c.pending, now) }

// Stats returns traffic counters.
func (c *Crossbar) Stats() *Stats { return c.stats }

// Lookahead: a packet cannot be delivered before it wins arbitration and
// crosses the switch, which takes at least SwitchDelay cycles.
func (c *Crossbar) Lookahead() sim.Cycle { return c.switchDelay }

var (
	_ Network     = (*Crossbar)(nil)
	_ Lookaheader = (*Crossbar)(nil)
)
