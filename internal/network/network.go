// Package network provides cycle-stepped packet-switched interconnection
// models: an ideal fixed-latency fabric, a crossbar (C.mmp), a 2-D mesh
// (Illiac IV / Connection Machine grid), a hypercube with table-based
// routing, link faults, and partitioning (the Section 3 emulation
// facility), and an omega network with request combining (NYU
// Ultracomputer).
//
// All models share the same contract: Send enqueues a packet at its source
// port (refusing when the injection queue is full — backpressure), Step
// advances one cycle, and delivery happens through a callback. Packets are
// one network word; a link moves one packet per cycle.
package network

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/token"
)

// Packet is one message in flight.
type Packet struct {
	Src, Dst int
	Payload  interface{}

	// Tok is the inline fast path for token payloads (valid when HasTok is
	// set). Tokens are by far the most common message; carrying them as a
	// struct field instead of boxing them into Payload keeps the send path
	// allocation-free when packets are recycled.
	Tok    token.Token
	HasTok bool

	// InjectedAt is stamped by Send for latency accounting.
	InjectedAt sim.Cycle
	// Hops counts link traversals.
	Hops int

	id    uint64
	path  []pathStep // reverse-path bookkeeping for the omega network
	moved sim.Cycle  // last cycle this packet hopped (prevents double hops)
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt(%d->%d, hops=%d)", p.Src, p.Dst, p.Hops)
}

// Reset clears a packet for reuse from a free list, keeping the allocated
// reverse-path capacity.
func (p *Packet) Reset() {
	*p = Packet{path: p.path[:0]}
}

type pathStep struct {
	stage, sw int
	inPort    int
}

// Delivery receives packets that reached their destination port.
type Delivery func(*Packet)

// Network is the common interface over all interconnect models.
type Network interface {
	// Ports returns the number of endpoints.
	Ports() int
	// Send enqueues the packet at port p.Src. It reports false when the
	// injection queue is full; the caller must retry later.
	Send(p *Packet) bool
	// SetDelivery registers the destination callback. It must be set
	// before the first Send.
	SetDelivery(d Delivery)
	// Step advances the network one cycle.
	Step(now sim.Cycle)
	// Pending reports how many packets are in flight (for termination
	// detection).
	Pending() int
	// Idle reports whether the fabric holds no packets at all: stepping an
	// idle network is a no-op.
	Idle() bool
	// NextEvent reports the earliest cycle at or after now at which the
	// network can deliver or move a packet: now when it must be stepped
	// every cycle (switched fabrics with traffic in flight), a future
	// cycle for fabrics that know their next delivery time, or sim.Never
	// when idle. The simulation kernel uses it to skip dead cycles.
	NextEvent(now sim.Cycle) sim.Cycle
	// Stats exposes traffic counters.
	Stats() *Stats
}

// Lookaheader is implemented by fabrics that can promise a minimum
// injection-to-delivery latency: a packet handed to Send at cycle t
// reaches no delivery callback before cycle t+Lookahead(). The
// conservative parallel simulation kernel (sim.ParallelEngine) uses this
// bound to justify its epoch protocol — cross-shard effects deferred to
// an epoch barrier at cycle t become visible at t+1, which is sound for
// any declared lookahead >= 1. The bound must be conservative (a lower
// bound), never optimistic.
type Lookaheader interface {
	Lookahead() sim.Cycle
}

// Windowable is implemented by fabrics that can additionally support
// multi-tick epoch windows (sim.ParallelEngine.EnableWindows): beyond the
// Lookaheader promise, the fabric must schedule each packet's exact
// delivery time at Send — stamping timestamps from the clock it was
// handed, not from how often it is stepped — and tolerate not being
// stepped at all on delivery-free ticks. Stepped fabrics with per-cycle
// arbitration (crossbars, meshes, omega networks) cannot promise this:
// their state advances only when stepped, so skipping their ticks would
// change arbitration outcomes. WindowLookahead is the window horizon: an
// effect deferred by a shard at tick t cannot require the fabric (or any
// other serial component) to act before t+WindowLookahead().
type Windowable interface {
	Lookaheader
	WindowLookahead() sim.Cycle
}

// clocked is the engine attachment embedded by every fabric: the Waker
// captured at registration plus the slot-accurate clock and re-arm rules.
// Unattached fabrics (driven by a hand-rolled loop or an exhaustive
// scheduler) behave exactly as before: clock falls back to the fabric's
// internally-stepped now and rearm is a no-op.
type clocked struct {
	waker sim.Waker
}

// Attach implements sim.Wakeable; the engine calls it at registration.
func (k *clocked) Attach(w sim.Waker) { k.waker = w }

// clock returns the cycle an exhaustive per-cycle engine would show on
// self's own clock at this instant. Fabrics stamp packet times (InjectedAt,
// moved) from Send/Reply — which run inside the *caller's* step — so the
// fabric's own clock may lag the engine's by one tick; SlotNow reproduces
// that lag exactly.
func (k *clocked) clock(self sim.Component, fallback sim.Cycle) sim.Cycle {
	if k.waker == nil {
		return fallback
	}
	return k.waker.SlotNow(self)
}

// rearm tells an attached engine when self next needs a step; fabrics call
// it after any mutation arriving from outside their own Step.
func (k *clocked) rearm(self interface {
	sim.Component
	NextEvent(sim.Cycle) sim.Cycle
}) {
	if k.waker == nil {
		return
	}
	if t := self.NextEvent(k.waker.Now()); t != sim.Never {
		k.waker.Wake(self, t)
	}
}

// steppedNextEvent is the NextEvent answer for switched fabrics that move
// packets one link per cycle: with traffic in flight they must be stepped
// every cycle, otherwise never.
func steppedNextEvent(pending int, now sim.Cycle) sim.Cycle {
	if pending > 0 {
		return now
	}
	return sim.Never
}

// Stats aggregates traffic measurements for a network.
type Stats struct {
	Injected  metrics.Counter
	Delivered metrics.Counter
	// Latency is the injection-to-delivery cycle count distribution.
	Latency *metrics.Histogram
	// Hops is the link-traversal distribution.
	Hops *metrics.Histogram
	// Refused counts Send calls rejected by backpressure.
	Refused metrics.Counter
}

// NewStats returns zeroed statistics with standard latency buckets.
func NewStats() *Stats {
	return &Stats{
		Latency: metrics.NewHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
		Hops:    metrics.NewHistogram(1, 2, 3, 4, 6, 8, 12, 16, 24, 32),
	}
}

func (s *Stats) delivered(p *Packet, now sim.Cycle) {
	s.Delivered.Inc()
	s.Latency.Observe(uint64(now - p.InjectedAt))
	s.Hops.Observe(uint64(p.Hops))
}

// MeanLatency returns the average delivery latency in cycles.
func (s *Stats) MeanLatency() float64 { return s.Latency.Mean() }

// queue is a bounded FIFO of packets.
type queue struct {
	buf []*Packet
	cap int
}

func newQueue(capacity int) *queue { return &queue{cap: capacity} }

func (q *queue) full() bool  { return len(q.buf) >= q.cap }
func (q *queue) empty() bool { return len(q.buf) == 0 }
func (q *queue) len() int    { return len(q.buf) }

func (q *queue) push(p *Packet) bool {
	if q.full() {
		return false
	}
	q.buf = append(q.buf, p)
	return true
}

func (q *queue) head() *Packet {
	if len(q.buf) == 0 {
		return nil
	}
	return q.buf[0]
}

func (q *queue) pop() *Packet {
	if len(q.buf) == 0 {
		return nil
	}
	p := q.buf[0]
	copy(q.buf, q.buf[1:])
	q.buf[len(q.buf)-1] = nil
	q.buf = q.buf[:len(q.buf)-1]
	return p
}
