package network

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Combinable is implemented by request payloads that an omega switch may
// merge when two of them meet in a switch queue, the NYU Ultracomputer's
// FETCH-AND-ADD combining (Section 1.2.3).
//
// Combine merges the receiver (the packet already queued) with other (the
// arriving packet) and returns the merged forward payload plus a splitter.
// When the merged request's reply comes back through the switch, the
// splitter is applied to the reply payload to produce the two original
// requesters' replies: first for the queued packet, second for the arrival.
type Combinable interface {
	// CombineKey returns the key (e.g. the memory address) two payloads
	// must share to combine; ok=false opts out entirely.
	CombineKey() (key uint64, ok bool)
	// Combine merges with other.
	Combine(other Combinable) (merged Combinable, split Splitter)
}

// Splitter decombines a reply payload into the two original replies. It is
// an interface over a plain data value — not a closure — so pending
// decombine records can be serialized into checkpoints; implementations
// must round-trip through their machine's PayloadCodec.
type Splitter interface {
	Split(reply interface{}) (first, second interface{})
}

// Omega is a log2(n)-stage omega network of 2×2 switches connecting n
// processor ports to n memory ports, with optional request combining.
// Requests flow forward (processor to memory); replies retrace the
// request's path backward, decombining where requests were merged. Every
// link (forward and reverse) carries one packet per cycle.
type Omega struct {
	clocked
	k, n      int
	combining bool

	deliverFwd Delivery // at the memory side
	deliverRpl Delivery // back at the processor side

	// free recycles packets whose network life has ended: retired request
	// packets (consumed by Reply or a decombine) and released replies.
	// Reply packets are always built from it, so steady-state traffic
	// allocates nothing once the pool is primed.
	free []*Packet

	// fwd[s][sw][port] and rev[s][sw][port] are switch output queues.
	fwd, rev  [][][2]*queue
	decombine []map[uint64]*splitRecord // per stage: pending decombines
	deferred  []*Packet                 // decombined replies awaiting queue space
	nextID    uint64
	pending   int
	now       sim.Cycle
	stats     *Stats

	// CombineOps counts additions performed inside switches, the hardware
	// cost the paper flags ("as many as log2 n additions" per reference).
	CombineOps metrics.Counter
	// DecombineTable tracks the per-network count of waiting decombine
	// entries (switch state the hardware must hold).
	DecombineTable metrics.Gauge
}

type splitRecord struct {
	split   Splitter
	partner *Packet
}

// NewOmega returns an omega network with 2^k ports per side. queueCap
// bounds each switch output queue; combining enables switch-level request
// merging.
func NewOmega(k int, queueCap int, combining bool) *Omega {
	n := 1 << k
	o := &Omega{k: k, n: n, combining: combining, stats: NewStats()}
	o.fwd = make([][][2]*queue, k)
	o.rev = make([][][2]*queue, k)
	o.decombine = make([]map[uint64]*splitRecord, k)
	for s := 0; s < k; s++ {
		o.fwd[s] = make([][2]*queue, n/2)
		o.rev[s] = make([][2]*queue, n/2)
		o.decombine[s] = map[uint64]*splitRecord{}
		for sw := 0; sw < n/2; sw++ {
			o.fwd[s][sw] = [2]*queue{newQueue(queueCap), newQueue(queueCap)}
			o.rev[s][sw] = [2]*queue{newQueue(queueCap), newQueue(queueCap)}
		}
	}
	return o
}

// Ports returns the per-side port count.
func (o *Omega) Ports() int { return o.n }

// Stages returns log2(n).
func (o *Omega) Stages() int { return o.k }

// SetDelivery registers the memory-side (forward) callback; for the
// generic Network interface this is where requests arrive.
func (o *Omega) SetDelivery(d Delivery) { o.deliverFwd = d }

// SetReplyDelivery registers the processor-side callback for replies.
func (o *Omega) SetReplyDelivery(d Delivery) { o.deliverRpl = d }

// acquire returns a zeroed packet, recycled when possible.
func (o *Omega) acquire() *Packet {
	if n := len(o.free); n > 0 {
		p := o.free[n-1]
		o.free = o.free[:n-1]
		p.Reset()
		return p
	}
	return &Packet{}
}

// AcquirePacket returns a recycled packet for injection via Send. Using it
// is optional; Send accepts any packet.
func (o *Omega) AcquirePacket() *Packet { return o.acquire() }

// ReleasePacket returns a delivered packet to the free list. Ownership
// rules: Send transfers the request packet to the network; the forward
// delivery callback owns it until it passes it back to Reply, which
// retires it into the pool on success. The reply delivery callback owns
// the reply packet it receives and should release it here once consumed.
// After releasing, the caller must drop every reference.
func (o *Omega) ReleasePacket(p *Packet) { o.free = append(o.free, p) }

// shuffle applies the perfect shuffle to a wire index.
func (o *Omega) shuffle(w int) int {
	return ((w << 1) | (w >> (o.k - 1))) & (o.n - 1)
}

// Send injects a request at processor port p.Src toward memory port p.Dst.
func (o *Omega) Send(p *Packet) bool {
	if p.Src < 0 || p.Src >= o.n || p.Dst < 0 || p.Dst >= o.n {
		panic(fmt.Sprintf("network: omega packet with bad endpoints %s", p))
	}
	o.now = o.clock(o, o.now)
	o.nextID++
	p.id = o.nextID
	p.path = p.path[:0]
	wire := o.shuffle(p.Src)
	sw, in := wire/2, wire&1
	if !o.routeInto(0, sw, in, p) {
		o.stats.Refused.Inc()
		return false
	}
	p.InjectedAt = o.now
	o.stats.Injected.Inc()
	o.rearm(o)
	return true
}

// routeInto places p at the input of switch (stage, sw), choosing the
// output by the destination bit, attempting combining, and respecting
// queue capacity.
func (o *Omega) routeInto(stage, sw, inPort int, p *Packet) bool {
	out := (p.Dst >> (o.k - 1 - stage)) & 1
	q := o.fwd[stage][sw][out]
	if o.combining {
		if c, ok := p.Payload.(Combinable); ok {
			if key, keyOK := c.CombineKey(); keyOK {
				for _, queued := range q.buf {
					qc, isC := queued.Payload.(Combinable)
					if !isC {
						continue
					}
					qkey, qok := qc.CombineKey()
					if !qok || qkey != key {
						continue
					}
					if _, busy := o.decombine[stage][queued.id]; busy {
						continue // one decombine record per request per switch
					}
					merged, split := qc.Combine(c)
					queued.Payload = merged
					p.path = append(p.path, pathStep{stage: stage, sw: sw, inPort: inPort})
					o.decombine[stage][queued.id] = &splitRecord{split: split, partner: p}
					o.CombineOps.Inc()
					o.DecombineTable.Add(1)
					return true
				}
			}
		}
	}
	if q.full() {
		return false
	}
	p.path = append(p.path, pathStep{stage: stage, sw: sw, inPort: inPort})
	p.moved = o.now
	q.push(p)
	o.pending++
	return true
}

// Reply sends the response for a delivered request backward along its
// recorded path. The caller passes the original request packet (as handed
// to the forward delivery callback) and the reply payload. On success the
// request packet is consumed: its recorded path moves to the reply and the
// packet itself returns to the free list, so the caller must drop its
// reference. On refusal (reverse queue full) the request is untouched and
// the caller retries later.
func (o *Omega) Reply(request *Packet, payload interface{}) bool {
	o.now = o.clock(o, o.now)
	r := o.acquire()
	r.Src, r.Dst, r.Payload = request.Dst, request.Src, payload
	r.id, r.path = request.id, request.path
	r.InjectedAt = o.now
	if !o.reverseInto(r) {
		r.path = nil // still owned by the request
		o.ReleasePacket(r)
		o.rearm(o)
		return false
	}
	request.path = nil // now owned by the reply
	o.ReleasePacket(request)
	o.rearm(o)
	return true
}

// reverseInto places a reply at the switch named by its path tail.
func (o *Omega) reverseInto(r *Packet) bool {
	if len(r.path) == 0 {
		// fully retraced: out at the processor side
		o.stats.delivered(r, o.now)
		o.deliverRpl(r)
		return true
	}
	step := r.path[len(r.path)-1]
	q := o.rev[step.stage][step.sw][step.inPort]
	if q.full() {
		return false
	}
	r.path = r.path[:len(r.path)-1]
	r.moved = o.now
	q.push(r)
	o.pending++
	// Decombine: a second requester is waiting at this switch.
	if rec, ok := o.decombine[step.stage][r.id]; ok {
		delete(o.decombine[step.stage], r.id)
		o.DecombineTable.Add(-1)
		first, second := rec.split.Split(r.Payload)
		r.Payload = first
		partner := rec.partner
		reply := o.acquire()
		reply.Src, reply.Dst, reply.Payload = r.Src, partner.Src, second
		reply.id, reply.path = partner.id, partner.path[:len(partner.path)-1]
		reply.InjectedAt = o.now
		// The partner request is fully consumed: its path now belongs to
		// the decombined reply, and the packet returns to the pool.
		partner.path = nil
		o.ReleasePacket(partner)
		// The partner reply enters the same reverse flow; if its queue is
		// full it is retried next cycle via the deferred list.
		if !o.reverseInto(reply) {
			o.deferred = append(o.deferred, reply)
		}
	}
	return true
}

// Step advances one cycle.
func (o *Omega) Step(now sim.Cycle) {
	o.now = now
	// Retry deferred decombined replies first.
	if len(o.deferred) > 0 {
		rest := o.deferred[:0]
		for _, r := range o.deferred {
			if !o.reverseInto(r) {
				rest = append(rest, r)
			}
		}
		o.deferred = rest
	}
	// Forward: last stage exits to memory, earlier stages advance.
	for sw := 0; sw < o.n/2; sw++ {
		for out := 0; out < 2; out++ {
			q := o.fwd[o.k-1][sw][out]
			if h := q.head(); h != nil && h.moved != now {
				q.pop()
				o.pending--
				o.stats.delivered(h, now)
				o.deliverFwd(h)
			}
		}
	}
	for s := o.k - 2; s >= 0; s-- {
		for sw := 0; sw < o.n/2; sw++ {
			for out := 0; out < 2; out++ {
				q := o.fwd[s][sw][out]
				h := q.head()
				if h == nil || h.moved == now {
					continue
				}
				wire := o.shuffle(sw*2 + out)
				nsw, nin := wire/2, wire&1
				if o.routeInto(s+1, nsw, nin, h) {
					q.pop()
					o.pending--
					h.Hops++
				}
			}
		}
	}
	// Reverse: stage 0 exits to processors, later stages move backward.
	for sw := 0; sw < o.n/2; sw++ {
		for in := 0; in < 2; in++ {
			q := o.rev[0][sw][in]
			if h := q.head(); h != nil && h.moved != now {
				q.pop()
				o.pending--
				o.stats.delivered(h, now)
				o.deliverRpl(h)
			}
		}
	}
	for s := 1; s < o.k; s++ {
		for sw := 0; sw < o.n/2; sw++ {
			for in := 0; in < 2; in++ {
				q := o.rev[s][sw][in]
				h := q.head()
				if h == nil || h.moved == now {
					continue
				}
				if o.reverseIntoNext(h) {
					q.pop()
					o.pending--
					h.Hops++
				}
			}
		}
	}
}

// reverseIntoNext moves a reply one stage backward along its path.
func (o *Omega) reverseIntoNext(r *Packet) bool {
	return o.reverseInto(r)
}

// Pending reports packets in switch queues (both directions).
func (o *Omega) Pending() int { return o.pending + len(o.deferred) }

// Idle reports whether no packets are queued, in flight, or deferred.
func (o *Omega) Idle() bool { return o.Pending() == 0 }

// NextEvent: an omega network with traffic must route every cycle.
func (o *Omega) NextEvent(now sim.Cycle) sim.Cycle { return steppedNextEvent(o.Pending(), now) }

// Stats returns traffic counters. Forward deliveries and reply deliveries
// both count as Delivered.
func (o *Omega) Stats() *Stats { return o.stats }

// Lookahead: a forward packet crosses one switch stage per cycle, so no
// request injected at t can reach the memory side before t+Stages().
func (o *Omega) Lookahead() sim.Cycle {
	if o.k < 1 {
		return 1
	}
	return sim.Cycle(o.k)
}

var (
	_ Network     = (*Omega)(nil)
	_ Lookaheader = (*Omega)(nil)
)
