package network

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/token"
)

// Checkpoint serialization for the interconnect models. Topology, queue
// capacities, and routing configuration are construction-time parameters
// and are not serialized: state restores into a freshly built fabric of
// identical shape. Packet free lists are rebuilt empty, never restored.
//
// Packets may carry machine-specific payloads (and, in a combining omega
// network, machine-specific Splitter records); those serialize through a
// PayloadCodec the owning machine supplies at save/load time.

// PayloadCodec serializes the machine-specific values a fabric carries:
// packet payloads and omega Splitter records. Save must accept every
// payload and splitter type the machine injects; Load must reproduce the
// same concrete types (splitters must load as values implementing
// Splitter).
type PayloadCodec interface {
	Save(e *sim.Enc, v interface{})
	Load(d *sim.Dec) interface{}
}

// Checkpointable is the fabric-side checkpoint contract: every fabric in
// this package implements it. Machines that hold their interconnect behind
// the Network interface assert to this to save and restore it.
type Checkpointable interface {
	SaveTo(e *sim.Enc, pc PayloadCodec)
	LoadFrom(d *sim.Dec, pc PayloadCodec) error
}

var (
	_ Checkpointable = (*Ideal)(nil)
	_ Checkpointable = (*Crossbar)(nil)
	_ Checkpointable = (*Mesh)(nil)
	_ Checkpointable = (*Hypercube)(nil)
	_ Checkpointable = (*Omega)(nil)
)

// SavePacket appends one packet. pc may be nil only for fabrics whose
// packets never carry payloads (token-only traffic).
func SavePacket(e *sim.Enc, p *Packet, pc PayloadCodec) {
	e.Int(p.Src)
	e.Int(p.Dst)
	e.Bool(p.HasTok)
	if p.HasTok {
		token.SaveToken(e, p.Tok)
	}
	e.Bool(p.Payload != nil)
	if p.Payload != nil {
		if pc == nil {
			panic("network: packet carries a payload but the fabric was saved without a codec")
		}
		pc.Save(e, p.Payload)
	}
	e.Cycle(p.InjectedAt)
	e.Int(p.Hops)
	e.U64(p.id)
	e.Len(len(p.path))
	for _, st := range p.path {
		e.Int(st.stage)
		e.Int(st.sw)
		e.Int(st.inPort)
	}
	e.Cycle(p.moved)
}

// LoadPacket reads one freshly allocated packet.
func LoadPacket(d *sim.Dec, pc PayloadCodec) *Packet {
	p := &Packet{}
	p.Src = d.Int()
	p.Dst = d.Int()
	p.HasTok = d.Bool()
	if p.HasTok {
		p.Tok = token.LoadToken(d)
	}
	if d.Bool() {
		if pc == nil {
			d.Failf("packet carries a payload but the fabric loads without a codec")
			return p
		}
		p.Payload = pc.Load(d)
	}
	p.InjectedAt = d.Cycle()
	p.Hops = d.Int()
	p.id = d.U64()
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return p
	}
	p.path = make([]pathStep, n)
	for i := range p.path {
		p.path[i] = pathStep{stage: d.Int(), sw: d.Int(), inPort: d.Int()}
	}
	p.moved = d.Cycle()
	return p
}

// Save appends the traffic counters.
func (s *Stats) Save(e *sim.Enc) {
	s.Injected.Save(e)
	s.Delivered.Save(e)
	s.Latency.Save(e)
	s.Hops.Save(e)
	s.Refused.Save(e)
}

// Load restores the traffic counters.
func (s *Stats) Load(d *sim.Dec) {
	s.Injected.Load(d)
	s.Delivered.Load(d)
	s.Latency.Load(d)
	s.Hops.Load(d)
	s.Refused.Load(d)
}

// saveQueue appends a bounded packet queue's contents.
func saveQueue(e *sim.Enc, q *queue, pc PayloadCodec) {
	e.Len(len(q.buf))
	for _, p := range q.buf {
		SavePacket(e, p, pc)
	}
}

// loadQueue restores a bounded packet queue, enforcing its capacity, and
// returns the number of packets loaded.
func loadQueue(d *sim.Dec, q *queue, pc PayloadCodec) int {
	n := d.Len(q.cap)
	if d.Err() != nil {
		return 0
	}
	q.buf = q.buf[:0]
	for i := 0; i < n; i++ {
		q.buf = append(q.buf, LoadPacket(d, pc))
	}
	return n
}

// saveIntSlice appends a fixed-shape int slice (round-robin pointers,
// partition assignments) whose length is configuration.
func saveIntSlice(e *sim.Enc, v []int) {
	for _, x := range v {
		e.Int(x)
	}
}

func loadIntSlice(d *sim.Dec, v []int) {
	for i := range v {
		v[i] = d.Int()
	}
}

// SaveTo appends the ideal fabric's dynamic state.
func (n *Ideal) SaveTo(e *sim.Enc, pc PayloadCodec) {
	e.Tag("net.ideal", 1)
	e.Cycle(n.now)
	n.stats.Save(e)
	sim.SaveFIFO(e, &n.inflight, func(e *sim.Enc, tp timedPacket) {
		e.Cycle(tp.due)
		SavePacket(e, tp.p, pc)
	})
}

// LoadFrom restores the ideal fabric's dynamic state.
func (n *Ideal) LoadFrom(d *sim.Dec, pc PayloadCodec) error {
	if err := d.Tag("net.ideal", 1); err != nil {
		return err
	}
	n.now = d.Cycle()
	n.stats.Load(d)
	return sim.LoadFIFO(d, &n.inflight, d.Remaining(), func(d *sim.Dec) timedPacket {
		return timedPacket{due: d.Cycle(), p: LoadPacket(d, pc)}
	})
}

// SaveTo appends the crossbar's dynamic state.
func (c *Crossbar) SaveTo(e *sim.Enc, pc PayloadCodec) {
	e.Tag("net.xbar", 1)
	e.Cycle(c.now)
	e.Int(c.pending)
	saveIntSlice(e, c.rr)
	for _, q := range c.in {
		saveQueue(e, q, pc)
	}
	sim.SaveFIFO(e, &c.inflight, func(e *sim.Enc, f flight) {
		e.Cycle(f.at)
		SavePacket(e, f.p, pc)
	})
	c.stats.Save(e)
}

// LoadFrom restores the crossbar's dynamic state. The arbitration bitmasks
// and head-destination cache are derived, not decoded.
func (c *Crossbar) LoadFrom(d *sim.Dec, pc PayloadCodec) error {
	if err := d.Tag("net.xbar", 1); err != nil {
		return err
	}
	c.now = d.Cycle()
	c.pending = d.Int()
	loadIntSlice(d, c.rr)
	got := 0
	for i, q := range c.in {
		got += loadQueue(d, q, pc)
		for j := range c.reqs[i] {
			c.reqs[i][j] = 0
		}
		c.headDst[i] = -1
	}
	for i := range c.in {
		c.syncHead(i)
	}
	if err := sim.LoadFIFO(d, &c.inflight, d.Remaining(), func(d *sim.Dec) flight {
		return flight{at: d.Cycle(), p: LoadPacket(d, pc)}
	}); err != nil {
		return err
	}
	c.stats.Load(d)
	if d.Err() == nil && c.pending != got+c.inflight.Len() {
		d.Failf("crossbar pending %d != %d queued + %d in flight",
			c.pending, got, c.inflight.Len())
	}
	return d.Err()
}

// SaveTo appends the mesh's dynamic state.
func (m *Mesh) SaveTo(e *sim.Enc, pc PayloadCodec) {
	e.Tag("net.mesh", 1)
	e.Cycle(m.now)
	e.Int(m.pending)
	saveIntSlice(e, m.rr)
	for _, qs := range m.in {
		for _, q := range qs {
			saveQueue(e, q, pc)
		}
	}
	m.stats.Save(e)
}

// LoadFrom restores the mesh's dynamic state.
func (m *Mesh) LoadFrom(d *sim.Dec, pc PayloadCodec) error {
	if err := d.Tag("net.mesh", 1); err != nil {
		return err
	}
	m.now = d.Cycle()
	m.pending = d.Int()
	loadIntSlice(d, m.rr)
	got := 0
	for _, qs := range m.in {
		for _, q := range qs {
			got += loadQueue(d, q, pc)
		}
	}
	m.stats.Load(d)
	if d.Err() == nil && m.pending != got {
		d.Failf("mesh pending %d != %d queued", m.pending, got)
	}
	return d.Err()
}

// SaveTo appends the hypercube's dynamic state, including the runtime
// topology mutations (link faults, partitions, table routing): the
// emulation facility changes these between phases, so a checkpoint must
// carry them.
func (h *Hypercube) SaveTo(e *sim.Enc, pc PayloadCodec) {
	e.Tag("net.cube", 1)
	e.Cycle(h.now)
	e.Int(h.pending)
	saveIntSlice(e, h.rr)
	for _, row := range h.alive {
		for _, a := range row {
			e.Bool(a)
		}
	}
	saveIntSlice(e, h.partition)
	e.Bool(h.table != nil)
	for _, qs := range h.in {
		for _, q := range qs {
			saveQueue(e, q, pc)
		}
	}
	h.stats.Save(e)
}

// LoadFrom restores the hypercube's dynamic state. Routing tables are a
// deterministic function of the live links and partitions, so only their
// presence is encoded; they are recomputed on load.
func (h *Hypercube) LoadFrom(d *sim.Dec, pc PayloadCodec) error {
	if err := d.Tag("net.cube", 1); err != nil {
		return err
	}
	h.now = d.Cycle()
	h.pending = d.Int()
	loadIntSlice(d, h.rr)
	for _, row := range h.alive {
		for k := range row {
			row[k] = d.Bool()
		}
	}
	loadIntSlice(d, h.partition)
	if d.Bool() {
		h.RecomputeTables()
	} else {
		h.table = nil
	}
	got := 0
	for _, qs := range h.in {
		for _, q := range qs {
			got += loadQueue(d, q, pc)
		}
	}
	h.stats.Load(d)
	if d.Err() == nil && h.pending != got {
		d.Failf("hypercube pending %d != %d queued", h.pending, got)
	}
	return d.Err()
}

// SaveTo appends the omega network's dynamic state: switch queues in both
// directions, deferred decombined replies, and the pending decombine
// records (splitter plus parked partner packet, keyed by merged request
// id, in sorted id order for canonical bytes).
func (o *Omega) SaveTo(e *sim.Enc, pc PayloadCodec) {
	e.Tag("net.omega", 1)
	e.Cycle(o.now)
	e.U64(o.nextID)
	e.Int(o.pending)
	for s := 0; s < o.k; s++ {
		for sw := 0; sw < o.n/2; sw++ {
			for out := 0; out < 2; out++ {
				saveQueue(e, o.fwd[s][sw][out], pc)
			}
		}
	}
	for s := 0; s < o.k; s++ {
		for sw := 0; sw < o.n/2; sw++ {
			for in := 0; in < 2; in++ {
				saveQueue(e, o.rev[s][sw][in], pc)
			}
		}
	}
	e.Len(len(o.deferred))
	for _, p := range o.deferred {
		SavePacket(e, p, pc)
	}
	for s := 0; s < o.k; s++ {
		recs := o.decombine[s]
		ids := make([]uint64, 0, len(recs))
		for id := range recs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		e.Len(len(ids))
		for _, id := range ids {
			rec := recs[id]
			e.U64(id)
			if pc == nil {
				panic("network: omega has pending decombines but was saved without a codec")
			}
			pc.Save(e, rec.split)
			SavePacket(e, rec.partner, pc)
		}
	}
	o.stats.Save(e)
	o.CombineOps.Save(e)
	o.DecombineTable.Save(e)
}

// LoadFrom restores the omega network's dynamic state.
func (o *Omega) LoadFrom(d *sim.Dec, pc PayloadCodec) error {
	if err := d.Tag("net.omega", 1); err != nil {
		return err
	}
	o.now = d.Cycle()
	o.nextID = d.U64()
	o.pending = d.Int()
	o.free = o.free[:0]
	got := 0
	for s := 0; s < o.k; s++ {
		for sw := 0; sw < o.n/2; sw++ {
			for out := 0; out < 2; out++ {
				got += loadQueue(d, o.fwd[s][sw][out], pc)
			}
		}
	}
	for s := 0; s < o.k; s++ {
		for sw := 0; sw < o.n/2; sw++ {
			for in := 0; in < 2; in++ {
				got += loadQueue(d, o.rev[s][sw][in], pc)
			}
		}
	}
	nd := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	o.deferred = o.deferred[:0]
	for i := 0; i < nd; i++ {
		o.deferred = append(o.deferred, LoadPacket(d, pc))
	}
	for s := 0; s < o.k; s++ {
		recs := map[uint64]*splitRecord{}
		n := d.Len(d.Remaining())
		if d.Err() != nil {
			return d.Err()
		}
		for i := 0; i < n; i++ {
			id := d.U64()
			if pc == nil {
				d.Failf("omega decombine record with no codec")
				return d.Err()
			}
			v := pc.Load(d)
			sp, ok := v.(Splitter)
			if !ok && d.Err() == nil {
				d.Failf("decombine record %d decoded to %T, not a Splitter", id, v)
			}
			partner := LoadPacket(d, pc)
			if d.Err() != nil {
				return d.Err()
			}
			if _, dup := recs[id]; dup {
				d.Failf("duplicate decombine record for request id %d", id)
				return d.Err()
			}
			recs[id] = &splitRecord{split: sp, partner: partner}
		}
		o.decombine[s] = recs
	}
	o.stats.Load(d)
	o.CombineOps.Load(d)
	o.DecombineTable.Load(d)
	if d.Err() == nil && o.pending != got {
		d.Failf("omega pending %d != %d queued", o.pending, got)
	}
	return d.Err()
}

// SaveTo appends the retry queue's waiting packets.
func (q *RetryQueue) SaveTo(e *sim.Enc, pc PayloadCodec) {
	e.Tag("net.retry", 1)
	sim.SaveFIFO(e, &q.queue, func(e *sim.Enc, p *Packet) {
		SavePacket(e, p, pc)
	})
}

// LoadFrom restores the retry queue. The per-source occupancy counts are
// derived from the queue contents, not decoded.
func (q *RetryQueue) LoadFrom(d *sim.Dec, pc PayloadCodec) error {
	if err := d.Tag("net.retry", 1); err != nil {
		return err
	}
	if err := sim.LoadFIFO(d, &q.queue, d.Remaining(), func(d *sim.Dec) *Packet {
		return LoadPacket(d, pc)
	}); err != nil {
		return err
	}
	for k := range q.queuedBySrc {
		delete(q.queuedBySrc, k)
	}
	for i := 0; i < q.queue.Len(); i++ {
		q.queuedBySrc[q.queue.At(i).Src]++
	}
	return d.Err()
}
