package network

import "repro/internal/sim"

// RetryQueue is the one send-retry/backpressure discipline shared by every
// machine that injects packets into a refusing fabric. It replaces three
// divergent hand-rolled copies (C.mmp's per-source slices, the
// Ultracomputer's flat compaction loop, the Connection Machine's
// injection-retry slice) with a single guarantee:
//
//	Packets from the same source are delivered to the fabric in the order
//	they were offered (FIFO per source), under arbitrarily long
//	backpressure. A refused head blocks only its own source; other
//	sources' packets keep trying in arrival order.
//
// Arrival order across sources is preserved for the retry attempts
// themselves, which matters for fabrics whose refusal state couples nearby
// sources (omega-network switches shared by two processors): the retry
// sequence is exactly the order the packets were first refused in.
type RetryQueue struct {
	clocked
	send  func(*Packet) bool
	queue sim.FIFO[*Packet]
	// queuedBySrc guards FIFO-per-source ordering on Send: a new packet
	// from a source with queued predecessors must queue behind them even
	// if the fabric would accept it right now.
	queuedBySrc map[int]int
}

// NewRetryQueue returns a retry queue injecting through send.
func NewRetryQueue(send func(*Packet) bool) *RetryQueue {
	return &RetryQueue{send: send, queuedBySrc: map[int]int{}}
}

// Send attempts to inject pkt now, queueing it for retry when the fabric
// refuses or when earlier packets from the same source are still queued
// (so per-source order can never invert). It reports whether the packet
// entered the fabric immediately.
func (q *RetryQueue) Send(pkt *Packet) bool {
	if q.queuedBySrc[pkt.Src] > 0 || !q.send(pkt) {
		q.queue.Push(pkt)
		q.queuedBySrc[pkt.Src]++
		q.rearm(q)
		return false
	}
	return true
}

// Drain retries queued packets once, in arrival order, skipping the rest
// of any source whose head is refused again (head-of-line blocking). Call
// once per cycle before stepping the fabric.
func (q *RetryQueue) Drain() {
	n := q.queue.Len()
	if n == 0 {
		return
	}
	var blocked map[int]bool
	for i := 0; i < n; i++ {
		pkt := q.queue.Pop()
		if blocked[pkt.Src] {
			q.queue.Push(pkt)
			continue
		}
		if q.send(pkt) {
			q.queuedBySrc[pkt.Src]--
			if q.queuedBySrc[pkt.Src] == 0 {
				delete(q.queuedBySrc, pkt.Src)
			}
			continue
		}
		if blocked == nil {
			blocked = map[int]bool{}
		}
		blocked[pkt.Src] = true
		q.queue.Push(pkt)
	}
}

// Len reports how many packets await retry.
func (q *RetryQueue) Len() int { return q.queue.Len() }

// Step drains once per cycle, letting a RetryQueue register directly as an
// engine component ahead of its fabric.
func (q *RetryQueue) Step(now sim.Cycle) { q.Drain() }

// NextEvent pins the tick while packets wait (the fabric's state changes
// every cycle under backpressure) and reports Never when idle.
func (q *RetryQueue) NextEvent(now sim.Cycle) sim.Cycle {
	if q.queue.Len() > 0 {
		return now
	}
	return sim.Never
}
