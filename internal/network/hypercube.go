package network

import (
	"fmt"

	"repro/internal/sim"
)

// Hypercube is the Section 3 emulation-facility network: a d-dimensional
// binary cube of packet switches, one per processing element, with
//
//   - e-cube (dimension-order) routing by default,
//   - optional table-based routing ("allows the experimenter to specify
//     any emulated topology which can be mapped onto the hypercube"),
//   - link-fault injection with re-routing over the cube's redundancy, and
//   - static partitioning into independent sub-machines.
//
// Each link carries one packet per cycle in each direction; each node has
// an injection queue and one input buffer per dimension.
type Hypercube struct {
	clocked
	dim     int
	n       int
	deliver Delivery

	// in[node][port]: port 0 = injection, 1+k = input from dimension-k link
	in [][]*queue
	rr []int
	// alive[node][k]: the dimension-k link at node is usable. Faults are
	// symmetric: killing (a,k) also kills (a^<<k, k).
	alive [][]bool
	// table[node] = nil for e-cube, else table[node][dst] = dimension to
	// take next (-1 unreachable).
	table [][]int8
	// partition[node] = partition id; Send refuses cross-partition packets.
	partition []int

	pending int
	now     sim.Cycle
	stats   *Stats
}

// NewHypercube returns a 2^dim-node cube with per-buffer capacity queueCap.
func NewHypercube(dim int, queueCap int) *Hypercube {
	n := 1 << dim
	h := &Hypercube{dim: dim, n: n, stats: NewStats()}
	h.in = make([][]*queue, n)
	h.rr = make([]int, n)
	h.alive = make([][]bool, n)
	h.partition = make([]int, n)
	for i := 0; i < n; i++ {
		qs := make([]*queue, dim+1)
		for j := range qs {
			qs[j] = newQueue(queueCap)
		}
		h.in[i] = qs
		h.alive[i] = make([]bool, dim)
		for k := range h.alive[i] {
			h.alive[i][k] = true
		}
	}
	return h
}

// Ports returns 2^dim.
func (h *Hypercube) Ports() int { return h.n }

// Dim returns the cube dimension.
func (h *Hypercube) Dim() int { return h.dim }

// SetDelivery registers the destination callback.
func (h *Hypercube) SetDelivery(d Delivery) { h.deliver = d }

// KillLink disables the dimension-k link at node (both directions). Routing
// tables must be recomputed afterwards for traffic to avoid it.
func (h *Hypercube) KillLink(node, k int) {
	h.alive[node][k] = false
	h.alive[node^(1<<k)][k] = false
}

// LinkAlive reports whether node's dimension-k link is usable.
func (h *Hypercube) LinkAlive(node, k int) bool { return h.alive[node][k] }

// Partition assigns nodes to partitions; traffic cannot cross partitions,
// statically splitting the facility into independent machines. Passing nil
// restores the single-partition configuration.
func (h *Hypercube) Partition(assign []int) {
	if assign == nil {
		for i := range h.partition {
			h.partition[i] = 0
		}
		return
	}
	if len(assign) != h.n {
		panic(fmt.Sprintf("network: partition of %d nodes for %d-node cube", len(assign), h.n))
	}
	copy(h.partition, assign)
}

// RecomputeTables installs table-based routing: a breadth-first search per
// destination over live, same-partition links. Nodes with no live path to
// a destination route -1 (Send still accepts; the packet is dropped with a
// fault count if it strands — see Unroutable).
func (h *Hypercube) RecomputeTables() {
	h.table = make([][]int8, h.n)
	for node := 0; node < h.n; node++ {
		h.table[node] = make([]int8, h.n)
		for d := range h.table[node] {
			h.table[node][d] = -1
		}
	}
	// BFS from each destination backwards: dist[x] = hops from x to dst.
	dist := make([]int, h.n)
	bfsQ := make([]int, 0, h.n)
	for dst := 0; dst < h.n; dst++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		bfsQ = bfsQ[:0]
		bfsQ = append(bfsQ, dst)
		for len(bfsQ) > 0 {
			cur := bfsQ[0]
			bfsQ = bfsQ[1:]
			for k := 0; k < h.dim; k++ {
				if !h.alive[cur][k] {
					continue
				}
				nb := cur ^ (1 << k)
				if h.partition[nb] != h.partition[dst] {
					continue
				}
				if dist[nb] < 0 {
					dist[nb] = dist[cur] + 1
					// first (lowest-dimension) discovery wins: from nb,
					// dimension k leads one step closer to dst.
					h.table[nb][dst] = int8(k)
					bfsQ = append(bfsQ, nb)
				}
			}
		}
	}
}

// UseECube removes routing tables, restoring dimension-order routing.
func (h *Hypercube) UseECube() { h.table = nil }

// nextDim returns the outgoing dimension for a packet at cur headed to
// dst, or -1 when unroutable.
func (h *Hypercube) nextDim(cur, dst int) int {
	if h.table != nil {
		return int(h.table[cur][dst])
	}
	diff := cur ^ dst
	for k := 0; k < h.dim; k++ {
		if diff&(1<<k) != 0 {
			if !h.alive[cur][k] {
				continue // e-cube skips dead links by trying higher dims
			}
			return k
		}
	}
	return -1
}

// Send enqueues at the source's injection buffer. Cross-partition packets
// are refused outright.
func (h *Hypercube) Send(p *Packet) bool {
	if p.Src < 0 || p.Src >= h.n || p.Dst < 0 || p.Dst >= h.n {
		panic(fmt.Sprintf("network: hypercube packet with bad endpoints %s", p))
	}
	if h.partition[p.Src] != h.partition[p.Dst] {
		h.stats.Refused.Inc()
		return false
	}
	h.now = h.clock(h, h.now)
	if !h.in[p.Src][0].push(p) {
		h.stats.Refused.Inc()
		return false
	}
	p.InjectedAt = h.now
	p.moved = ^sim.Cycle(0)
	h.pending++
	h.stats.Injected.Inc()
	h.rearm(h)
	return true
}

// Step advances one cycle: each node ejects local packets and forwards at
// most one packet per live outgoing link.
func (h *Hypercube) Step(now sim.Cycle) {
	h.now = now
	for node := 0; node < h.n; node++ {
		var usedDim [32]bool
		inputs := h.in[node]
		start := h.rr[node]
		nports := h.dim + 1
		for k := 0; k < nports; k++ {
			port := (start + k) % nports
			q := inputs[port]
			pkt := q.head()
			if pkt == nil || pkt.moved == now {
				continue
			}
			if pkt.Dst == node {
				q.pop()
				h.pending--
				h.stats.delivered(pkt, now)
				h.deliver(pkt)
				continue
			}
			d := h.nextDim(node, pkt.Dst)
			if d < 0 || usedDim[d] || !h.alive[node][d] {
				continue
			}
			nb := node ^ (1 << d)
			if h.in[nb][1+d].full() {
				continue
			}
			q.pop()
			pkt.Hops++
			pkt.moved = now
			h.in[nb][1+d].push(pkt)
			usedDim[d] = true
		}
		h.rr[node] = (start + 1) % nports
	}
}

// Pending reports packets queued or in transit.
func (h *Hypercube) Pending() int { return h.pending }

// Idle reports whether no packets are queued or in flight.
func (h *Hypercube) Idle() bool { return h.pending == 0 }

// NextEvent: a switched cube with traffic must route every cycle.
func (h *Hypercube) NextEvent(now sim.Cycle) sim.Cycle { return steppedNextEvent(h.pending, now) }

// Stats returns traffic counters.
func (h *Hypercube) Stats() *Stats { return h.stats }

// HammingDistance returns the minimum hop count between two nodes on an
// intact cube.
func HammingDistance(a, b int) int {
	d := 0
	for x := a ^ b; x != 0; x &= x - 1 {
		d++
	}
	return d
}

// Lookahead: a hypercube packet spends at least one cycle in its
// injection queue before the earliest possible ejection.
func (h *Hypercube) Lookahead() sim.Cycle { return 1 }

var (
	_ Network     = (*Hypercube)(nil)
	_ Lookaheader = (*Hypercube)(nil)
)
