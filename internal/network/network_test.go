package network

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// drive steps the network until no packets are pending or maxCycles pass.
func drive(t *testing.T, n Network, maxCycles int) int {
	t.Helper()
	for c := 0; c < maxCycles; c++ {
		if n.Pending() == 0 {
			return c
		}
		n.Step(sim.Cycle(c))
	}
	if n.Pending() != 0 {
		t.Fatalf("network did not drain within %d cycles (%d pending)", maxCycles, n.Pending())
	}
	return maxCycles
}

func TestQueueFIFO(t *testing.T) {
	q := newQueue(3)
	a, b, c, d := &Packet{Src: 1}, &Packet{Src: 2}, &Packet{Src: 3}, &Packet{Src: 4}
	if !q.push(a) || !q.push(b) || !q.push(c) {
		t.Fatal("pushes within capacity must succeed")
	}
	if q.push(d) {
		t.Fatal("push beyond capacity must fail")
	}
	if q.pop() != a || q.pop() != b || q.pop() != c {
		t.Fatal("FIFO order broken")
	}
	if q.pop() != nil || q.head() != nil {
		t.Fatal("empty queue must return nil")
	}
}

func TestIdealFixedLatency(t *testing.T) {
	n := NewIdeal(4, 10)
	var got []*Packet
	var at []sim.Cycle
	now := sim.Cycle(0)
	n.SetDelivery(func(p *Packet) { got = append(got, p); at = append(at, now) })
	n.Step(0)
	n.Send(&Packet{Src: 0, Dst: 3})
	n.Send(&Packet{Src: 1, Dst: 2})
	for c := sim.Cycle(1); c <= 20; c++ {
		now = c
		n.Step(c)
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(got))
	}
	for _, d := range at {
		if d != 10 {
			t.Fatalf("delivered at cycle %d, want exactly 10", d)
		}
	}
	if n.Pending() != 0 {
		t.Fatal("pending after drain")
	}
}

func TestCrossbarContention(t *testing.T) {
	// Two inputs to the same output serialize: second arrives one cycle
	// after the first.
	x := NewCrossbar(4, 1, 8)
	var deliveredAt []sim.Cycle
	now := sim.Cycle(0)
	x.SetDelivery(func(p *Packet) { deliveredAt = append(deliveredAt, now) })
	x.Step(0)
	x.Send(&Packet{Src: 0, Dst: 2})
	x.Send(&Packet{Src: 1, Dst: 2})
	for c := sim.Cycle(1); c < 10 && x.Pending() > 0; c++ {
		now = c
		x.Step(c)
	}
	if len(deliveredAt) != 2 {
		t.Fatalf("delivered %d", len(deliveredAt))
	}
	if deliveredAt[1] != deliveredAt[0]+1 {
		t.Fatalf("contending packets at %v, want 1 cycle apart", deliveredAt)
	}
}

func TestCrossbarDistinctOutputsParallel(t *testing.T) {
	x := NewCrossbar(4, 1, 8)
	count := 0
	x.SetDelivery(func(p *Packet) { count++ })
	x.Step(0)
	x.Send(&Packet{Src: 0, Dst: 1})
	x.Send(&Packet{Src: 1, Dst: 2})
	x.Send(&Packet{Src: 2, Dst: 3})
	x.Step(1)
	x.Step(2)
	if count != 3 {
		t.Fatalf("distinct outputs must not contend: delivered %d of 3 after transit", count)
	}
}

func TestCrossbarFairness(t *testing.T) {
	// Round-robin arbitration must not starve an input.
	x := NewCrossbar(2, 1, 64)
	perSrc := map[int]int{}
	x.SetDelivery(func(p *Packet) { perSrc[p.Src]++ })
	for c := sim.Cycle(0); c < 200; c++ {
		x.Send(&Packet{Src: 0, Dst: 1})
		x.Send(&Packet{Src: 1, Dst: 1})
		x.Step(c)
	}
	if perSrc[0] == 0 || perSrc[1] == 0 {
		t.Fatalf("starvation: %v", perSrc)
	}
	diff := perSrc[0] - perSrc[1]
	if diff < -2 || diff > 2 {
		t.Fatalf("unfair arbitration: %v", perSrc)
	}
}

func TestCrossbarCostQuadratic(t *testing.T) {
	if CrossbarCost(16) != 256 || CrossbarCost(64) != 4096 {
		t.Fatal("crossbar crosspoint cost must be n^2")
	}
}

func TestMeshDeliversEverything(t *testing.T) {
	m := NewMesh(4, 4, false, 8)
	received := map[int]int{}
	m.SetDelivery(func(p *Packet) { received[p.Dst]++ })
	// all-to-one plus some scattered traffic
	sent := 0
	for src := 0; src < 16; src++ {
		if m.Send(&Packet{Src: src, Dst: 15}) {
			sent++
		}
		if m.Send(&Packet{Src: src, Dst: src ^ 1}) {
			sent++
		}
	}
	drive(t, m, 1000)
	total := 0
	for _, c := range received {
		total += c
	}
	if total != sent {
		t.Fatalf("delivered %d of %d", total, sent)
	}
}

func TestMeshHopsMatchManhattanDistance(t *testing.T) {
	m := NewMesh(5, 5, false, 8)
	var last *Packet
	m.SetDelivery(func(p *Packet) { last = p })
	p := &Packet{Src: m.Node(0, 0), Dst: m.Node(3, 4)}
	m.Send(p)
	drive(t, m, 100)
	if last == nil {
		t.Fatal("not delivered")
	}
	if last.Hops != 7 {
		t.Fatalf("hops = %d, want 7 (Manhattan distance)", last.Hops)
	}
}

func TestTorusWrapsAround(t *testing.T) {
	m := NewMesh(8, 1, true, 8)
	var last *Packet
	m.SetDelivery(func(p *Packet) { last = p })
	m.Send(&Packet{Src: 0, Dst: 7})
	drive(t, m, 100)
	if last.Hops != 1 {
		t.Fatalf("torus 0->7 took %d hops, want 1 (wraparound)", last.Hops)
	}
	if m.DistanceXY(0, 7) != 1 {
		t.Fatalf("DistanceXY(0,7) = %d on torus", m.DistanceXY(0, 7))
	}
}

func TestHypercubeECubeHops(t *testing.T) {
	h := NewHypercube(4, 8)
	var last *Packet
	h.SetDelivery(func(p *Packet) { last = p })
	h.Send(&Packet{Src: 0b0000, Dst: 0b1011})
	drive(t, h, 100)
	if last.Hops != 3 {
		t.Fatalf("hops = %d, want Hamming distance 3", last.Hops)
	}
}

func TestHypercubeAllToAll(t *testing.T) {
	h := NewHypercube(3, 16)
	count := 0
	h.SetDelivery(func(p *Packet) { count++ })
	sent := 0
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s != d && h.Send(&Packet{Src: s, Dst: d}) {
				sent++
			}
		}
	}
	drive(t, h, 1000)
	if count != sent {
		t.Fatalf("delivered %d of %d", count, sent)
	}
}

func TestHypercubeTableRoutingMatchesECube(t *testing.T) {
	h := NewHypercube(4, 8)
	h.RecomputeTables()
	var last *Packet
	h.SetDelivery(func(p *Packet) { last = p })
	h.Send(&Packet{Src: 5, Dst: 10})
	drive(t, h, 100)
	if last.Hops != HammingDistance(5, 10) {
		t.Fatalf("table routing took %d hops, want %d", last.Hops, HammingDistance(5, 10))
	}
}

func TestHypercubeFaultRerouting(t *testing.T) {
	// Kill a link on the only minimal path and verify the packet arrives
	// via the cube's redundancy with two extra hops.
	h := NewHypercube(3, 8)
	h.KillLink(0, 0) // 0 <-> 1 dead
	h.RecomputeTables()
	var last *Packet
	h.SetDelivery(func(p *Packet) { last = p })
	h.Send(&Packet{Src: 0, Dst: 1})
	drive(t, h, 100)
	if last == nil {
		t.Fatal("packet lost after fault")
	}
	if last.Hops != 3 {
		t.Fatalf("fault detour took %d hops, want 3", last.Hops)
	}
}

func TestHypercubeManyFaultsStillConnected(t *testing.T) {
	h := NewHypercube(4, 8)
	// Kill several links; the 4-cube has 32 links and stays connected.
	h.KillLink(0, 0)
	h.KillLink(3, 1)
	h.KillLink(7, 2)
	h.KillLink(12, 3)
	h.RecomputeTables()
	count := 0
	h.SetDelivery(func(p *Packet) { count++ })
	sent := 0
	for s := 0; s < 16; s++ {
		d := 15 - s
		if s != d && h.Send(&Packet{Src: s, Dst: d}) {
			sent++
		}
	}
	drive(t, h, 1000)
	if count != sent {
		t.Fatalf("delivered %d of %d after faults", count, sent)
	}
}

func TestHypercubePartitioning(t *testing.T) {
	h := NewHypercube(3, 8)
	// Split on the high bit: two independent 4-node machines.
	part := make([]int, 8)
	for i := range part {
		part[i] = i >> 2
	}
	h.Partition(part)
	h.RecomputeTables()
	if h.Send(&Packet{Src: 0, Dst: 5}) {
		t.Fatal("cross-partition send must be refused")
	}
	ok := 0
	h.SetDelivery(func(p *Packet) { ok++ })
	if !h.Send(&Packet{Src: 0, Dst: 3}) || !h.Send(&Packet{Src: 4, Dst: 7}) {
		t.Fatal("intra-partition sends must be accepted")
	}
	drive(t, h, 100)
	if ok != 2 {
		t.Fatalf("delivered %d of 2", ok)
	}
	if h.Stats().Refused.Value() != 1 {
		t.Fatalf("refused = %d, want 1", h.Stats().Refused.Value())
	}
}

func TestHammingDistanceProperty(t *testing.T) {
	if err := quick.Check(func(a, b uint8) bool {
		d := HammingDistance(int(a), int(b))
		if d != HammingDistance(int(b), int(a)) {
			return false
		}
		if a == b && d != 0 {
			return false
		}
		return d >= 0 && d <= 8
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// faaPayload is the FETCH-AND-ADD request used to exercise combining.
type faaPayload struct {
	addr  uint64
	delta int64
}

func (f faaPayload) CombineKey() (uint64, bool) { return f.addr, true }

func (f faaPayload) Combine(other Combinable) (Combinable, Splitter) {
	o := other.(faaPayload)
	return faaPayload{addr: f.addr, delta: f.delta + o.delta}, faaSplitter{held: f.delta}
}

// faaSplitter decombines a test FETCH-AND-ADD reply.
type faaSplitter struct {
	held int64
}

func (s faaSplitter) Split(reply interface{}) (interface{}, interface{}) {
	v := reply.(int64)
	return v, v + s.held
}

func TestOmegaRoutesToCorrectMemory(t *testing.T) {
	o := NewOmega(3, 8, false)
	arrived := map[int]int{}
	o.SetDelivery(func(p *Packet) { arrived[p.Dst]++ })
	o.SetReplyDelivery(func(p *Packet) {})
	for s := 0; s < 8; s++ {
		o.Send(&Packet{Src: s, Dst: (s + 3) % 8, Payload: nil})
	}
	for c := sim.Cycle(0); c < 50; c++ {
		o.Step(c)
	}
	if len(arrived) != 8 {
		t.Fatalf("arrived at %d distinct memories, want 8: %v", len(arrived), arrived)
	}
}

func TestOmegaRequestReplyRoundTrip(t *testing.T) {
	o := NewOmega(3, 8, false)
	var replies []*Packet
	o.SetDelivery(func(p *Packet) {
		// memory: respond immediately with the address payload echoed
		o.Reply(p, p.Payload)
	})
	o.SetReplyDelivery(func(p *Packet) { replies = append(replies, p) })
	for s := 0; s < 8; s++ {
		o.Send(&Packet{Src: s, Dst: 5, Payload: s * 100})
	}
	for c := sim.Cycle(0); c < 200 && len(replies) < 8; c++ {
		o.Step(c)
	}
	if len(replies) != 8 {
		t.Fatalf("got %d replies, want 8", len(replies))
	}
	for _, r := range replies {
		if r.Payload.(int) != r.Dst*100 {
			t.Fatalf("reply %v carries wrong payload %v", r.Dst, r.Payload)
		}
	}
}

// runFAA drives n simultaneous FETCH-AND-ADD(0, 1) requests at one memory
// cell through the omega network and returns the fetched values plus the
// final memory value.
func runFAA(t *testing.T, k int, combining bool) (fetched []int64, final int64, o *Omega) {
	t.Helper()
	n := 1 << k
	o = NewOmega(k, 8, combining)
	var mem int64
	o.SetDelivery(func(p *Packet) {
		req := p.Payload.(faaPayload)
		old := mem
		mem += req.delta
		if !o.Reply(p, old) {
			t.Fatal("reply refused")
		}
	})
	o.SetReplyDelivery(func(p *Packet) { fetched = append(fetched, p.Payload.(int64)) })
	for s := 0; s < n; s++ {
		if !o.Send(&Packet{Src: s, Dst: 0, Payload: faaPayload{addr: 0, delta: 1}}) {
			t.Fatalf("send %d refused", s)
		}
	}
	for c := sim.Cycle(0); c < 10000 && len(fetched) < n; c++ {
		o.Step(c)
	}
	if len(fetched) != n {
		t.Fatalf("got %d replies, want %d (combining=%t)", len(fetched), n, combining)
	}
	return fetched, mem, o
}

func TestOmegaFetchAndAddSerialSemantics(t *testing.T) {
	for _, combining := range []bool{false, true} {
		fetched, final, _ := runFAA(t, 4, combining)
		if final != 16 {
			t.Fatalf("combining=%t: final = %d, want 16", combining, final)
		}
		// The 16 fetched values must be a permutation of 0..15: the
		// serialization property of FETCH-AND-ADD.
		seen := map[int64]bool{}
		for _, v := range fetched {
			if v < 0 || v > 15 || seen[v] {
				t.Fatalf("combining=%t: fetched values not a permutation: %v", combining, fetched)
			}
			seen[v] = true
		}
	}
}

func TestOmegaCombiningReducesMemoryTraffic(t *testing.T) {
	_, _, plain := runFAA(t, 4, false)
	_, _, comb := runFAA(t, 4, true)
	if comb.CombineOps.Value() == 0 {
		t.Fatal("combining performed no switch additions on a hot spot")
	}
	// With combining, far fewer requests reach the memory module.
	plainMem := plain.Stats().Delivered.Value()
	combMem := comb.Stats().Delivered.Value()
	if combMem >= plainMem {
		t.Fatalf("combining did not reduce deliveries: %d vs %d", combMem, plainMem)
	}
}

func TestOmegaCombineOpsBounded(t *testing.T) {
	// n requests can combine at most n-1 times.
	_, _, comb := runFAA(t, 4, true)
	if ops := comb.CombineOps.Value(); ops > 15 {
		t.Fatalf("combine ops = %d, want <= 15", ops)
	}
}

func TestMeshSaturationNoLoss(t *testing.T) {
	// Saturating random traffic: every accepted packet must eventually be
	// delivered (no loss, no duplication) even under sustained overload.
	m := NewMesh(4, 4, true, 4)
	delivered := map[*Packet]int{}
	m.SetDelivery(func(p *Packet) { delivered[p]++ })
	rng := sim.NewRNG(3)
	accepted := 0
	for c := sim.Cycle(0); c < 3000; c++ {
		if c < 2000 {
			for s := 0; s < 16; s++ {
				p := &Packet{Src: s, Dst: rng.Intn(16)}
				if m.Send(p) {
					accepted++
				}
			}
		}
		m.Step(c)
	}
	for c := sim.Cycle(3000); m.Pending() > 0 && c < 20000; c++ {
		m.Step(c)
	}
	if m.Pending() != 0 {
		t.Fatalf("mesh wedged with %d packets", m.Pending())
	}
	if len(delivered) != accepted {
		t.Fatalf("delivered %d distinct packets of %d accepted", len(delivered), accepted)
	}
	for p, n := range delivered {
		if n != 1 {
			t.Fatalf("packet %v delivered %d times", p, n)
		}
	}
	if m.Stats().Refused.Value() == 0 {
		t.Fatal("saturation test never hit backpressure — not saturated")
	}
}

func TestHypercubeSaturationNoLoss(t *testing.T) {
	h := NewHypercube(4, 4)
	delivered := 0
	h.SetDelivery(func(p *Packet) { delivered++ })
	rng := sim.NewRNG(9)
	accepted := 0
	for c := sim.Cycle(0); c < 2000; c++ {
		if c < 1200 {
			for s := 0; s < 16; s++ {
				if h.Send(&Packet{Src: s, Dst: rng.Intn(16)}) {
					accepted++
				}
			}
		}
		h.Step(c)
	}
	for c := sim.Cycle(2000); h.Pending() > 0 && c < 20000; c++ {
		h.Step(c)
	}
	if h.Pending() != 0 {
		t.Fatalf("hypercube wedged with %d packets", h.Pending())
	}
	if delivered != accepted {
		t.Fatalf("delivered %d of %d accepted", delivered, accepted)
	}
}

func TestOmegaSaturationRoundTrips(t *testing.T) {
	// Sustained request/reply traffic through the omega network with
	// combining enabled: every request gets exactly one reply.
	o := NewOmega(4, 4, true)
	replies := 0
	o.SetDelivery(func(p *Packet) {
		// bounce immediately
		for !o.Reply(p, int64(1)) {
			// reply refused: the caller (us) must retry — spin via a queue
			// in real machines; here the reverse queue frees within steps,
			// so requeue through deferred handling by stepping once is not
			// available; simply retrying in a tight loop would livelock,
			// so stash it:
			pendingReplies = append(pendingReplies, p)
			return
		}
	})
	o.SetReplyDelivery(func(p *Packet) { replies++ })
	rng := sim.NewRNG(17)
	sent := 0
	for c := sim.Cycle(0); c < 4000; c++ {
		for _, p := range pendingReplies {
			if !o.Reply(p, int64(1)) {
				break
			}
			pendingReplies = pendingReplies[1:]
		}
		if c < 1500 {
			for s := 0; s < 16; s++ {
				pl := faaPayload{addr: uint64(rng.Intn(4)), delta: 1}
				if o.Send(&Packet{Src: s, Dst: int(pl.addr), Payload: pl}) {
					sent++
				}
			}
		}
		o.Step(c)
	}
	for c := sim.Cycle(4000); (o.Pending() > 0 || len(pendingReplies) > 0) && c < 50000; c++ {
		for len(pendingReplies) > 0 && o.Reply(pendingReplies[0], int64(1)) {
			pendingReplies = pendingReplies[1:]
		}
		o.Step(c)
	}
	if replies != sent {
		t.Fatalf("%d replies for %d requests", replies, sent)
	}
}

var pendingReplies []*Packet
