package conformance

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/machines/cmmp"
	"repro/internal/machines/cmstar"
	"repro/internal/machines/connection"
	"repro/internal/machines/hep"
	"repro/internal/machines/ultra"
	"repro/internal/machines/vliw"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/vn"
)

// --- oracle 7: checkpoint equivalence ---------------------------------
//
// For every machine in the fleet: run the generated program straight
// through, then run it again paused at a seed-derived mid-run cycle,
// serialize, restore into a freshly built machine, and resume. The split
// run must match the uninterrupted one on the FULL snapshot — results,
// cycles, machine statistics, and engine counters — and the checkpoint
// stream itself must be canonical (restore→save byte-identical) with the
// end-of-run states of both runs byte-equal.

// resumable is the machine surface the checkpoint oracle drives: run
// advances at most limit further cycles and reports completion; snapshot
// is valid once run reported done.
type resumable interface {
	sim.Stateful
	run(limit sim.Cycle) (done bool, err error)
	snapshot() (Snapshot, error)
}

// pausable is the shared Run shape of the Section-1.2 baselines.
type pausable interface {
	sim.Stateful
	Run(limit sim.Cycle) (sim.Cycle, error)
}

// baselineAdapter adapts a vn-family machine: a cycle-limit error from Run
// marks a resumable pause, anything else a real failure.
type baselineAdapter struct {
	m    pausable
	snap func() (Snapshot, error)
}

func (a *baselineAdapter) SaveState(e *sim.Enc)       { a.m.SaveState(e) }
func (a *baselineAdapter) LoadState(d *sim.Dec) error { return a.m.LoadState(d) }

func (a *baselineAdapter) run(limit sim.Cycle) (bool, error) {
	if _, err := a.m.Run(limit); err != nil {
		if strings.Contains(err.Error(), "did not halt") {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

func (a *baselineAdapter) snapshot() (Snapshot, error) { return a.snap() }

// vnMachine couples the single vn core, its latency memory, and the
// engine into one checkpointable unit — the composition runVN drives.
type vnMachine struct {
	eng *sim.Engine
	mem *vn.LatencyMemory
	cpu *vn.Core
}

func newVNMachine(c *compiled, contexts int, latency sim.Cycle) *vnMachine {
	mem := vn.NewLatencyMemory(latency)
	cpu := vn.NewCore(c.asm, mem, contexts)
	eng := sim.NewEngine()
	eng.Register(mem)
	eng.Register(cpu)
	return &vnMachine{eng: eng, mem: mem, cpu: cpu}
}

func (v *vnMachine) Run(limit sim.Cycle) (sim.Cycle, error) {
	elapsed, ok := v.eng.Run(func() bool { return v.cpu.Halted() && v.mem.Pending() == 0 }, limit)
	if !ok {
		return elapsed, fmt.Errorf("vn: did not halt within %d cycles", limit)
	}
	return elapsed, nil
}

func (v *vnMachine) SaveState(e *sim.Enc) {
	e.Tag("vnmach", 1)
	v.eng.SaveState(e)
	v.mem.SaveTo(e)
	v.cpu.SaveState(e)
}

func (v *vnMachine) LoadState(d *sim.Dec) error {
	if err := d.Tag("vnmach", 1); err != nil {
		return err
	}
	if err := v.eng.LoadState(d); err != nil {
		return err
	}
	if err := v.mem.LoadFrom(d, vn.Resolver([]*vn.Core{v.cpu})); err != nil {
		return err
	}
	return v.cpu.LoadState(d)
}

// ttdaAdapter drives the tagged-token machine. Entry arguments are passed
// on every Run call; the machine injects them only when starting fresh, so
// resumed and restored runs continue instead of restarting.
type ttdaAdapter struct {
	m    *core.Machine
	args []token.Value
	res  []token.Value
}

func newTTDAAdapter(c *compiled, pes, shards, window int, compiledPlan bool) *ttdaAdapter {
	m := core.NewMachine(core.Config{PEs: pes, NetLatency: 4, Shards: shards, EpochWindow: window, Compiled: compiledPlan}, c.prog)
	return &ttdaAdapter{m: m, args: c.args}
}

func (a *ttdaAdapter) SaveState(e *sim.Enc)       { a.m.SaveState(e) }
func (a *ttdaAdapter) LoadState(d *sim.Dec) error { return a.m.LoadState(d) }

func (a *ttdaAdapter) run(limit sim.Cycle) (bool, error) {
	res, err := a.m.Run(limit, a.args...)
	if err != nil {
		if strings.Contains(err.Error(), "did not finish") {
			return false, nil
		}
		return false, err
	}
	a.res = res
	return true, nil
}

func (a *ttdaAdapter) snapshot() (Snapshot, error) {
	if len(a.res) != 1 {
		return Snapshot{}, fmt.Errorf("ttda: %d results", len(a.res))
	}
	v, err := a.res[0].AsInt()
	if err != nil {
		return Snapshot{}, err
	}
	sum := a.m.Summarize()
	return Snapshot{
		Result: v,
		Cycles: sum.Cycles,
		Extra:  [4]uint64{sum.Fired, sum.Matches, sum.NetSends, sum.ISReads + sum.ISWrites},
		Engine: a.m.Engine().Counters(),
	}, nil
}

// vliwAdapter drives the resumable VLIW runner.
type vliwAdapter struct {
	m   *vliw.Machine
	res vliw.Result
}

func (a *vliwAdapter) SaveState(e *sim.Enc)       { a.m.SaveState(e) }
func (a *vliwAdapter) LoadState(d *sim.Dec) error { return a.m.LoadState(d) }

func (a *vliwAdapter) run(limit sim.Cycle) (bool, error) {
	res, done := a.m.Run(limit)
	a.res = res
	return done, nil
}

func (a *vliwAdapter) snapshot() (Snapshot, error) {
	return Snapshot{
		Cycles: uint64(a.res.Cycles),
		Extra:  [4]uint64{a.res.TotalOps, uint64(a.res.StallCycles), a.res.Misses, a.res.Loads},
		Engine: a.res.Engine,
	}, nil
}

// checkCheckpoint runs the split-run check across the fleet, crossing the
// TTDA with the conservative parallel kernel and the compiled plan, and
// the shardable baselines with the parallel kernel.
func checkCheckpoint(ct *counter, c *compiled) {
	rng := sim.NewRNG(c.w.Seed ^ 0x5EEDC4C7)

	vnSnap := func(eng func() sim.Driver, result func() int64, cpu func() *vn.Core, extra func() [4]uint64) func() (Snapshot, error) {
		return func() (Snapshot, error) {
			s := Snapshot{
				Result: result(),
				Cycles: uint64(eng().Now()),
				Engine: eng().Counters(),
			}
			if extra != nil {
				s.Extra = extra()
			}
			coreStats(&s, cpu())
			return s, nil
		}
	}

	entries := []struct {
		name  string
		build func() resumable
	}{
		{"ttda", func() resumable { return newTTDAAdapter(c, 2, 0, 0, false) }},
		{"ttda/shards=2", func() resumable { return newTTDAAdapter(c, 4, 2, 0, false) }},
		{"ttda/shards=4", func() resumable { return newTTDAAdapter(c, 4, 4, 0, false) }},
		// Windowed kernels checkpoint only at window boundaries: Run's pause
		// lands between windows, where the shards' clocks agree, so the split
		// run must still match the uninterrupted one bit-for-bit.
		{"ttda/shards=2/window=4", func() resumable { return newTTDAAdapter(c, 4, 2, 4, false) }},
		{"ttda/shards=2/window=adaptive", func() resumable { return newTTDAAdapter(c, 4, 2, -1, false) }},
		{"ttda/compiled", func() resumable { return newTTDAAdapter(c, 2, 0, 0, true) }},
		{"ttda/compiled/shards=2", func() resumable { return newTTDAAdapter(c, 4, 2, 0, true) }},
		{"vn", func() resumable {
			m := newVNMachine(c, 2, 4)
			return &baselineAdapter{m: m, snap: vnSnap(
				func() sim.Driver { return m.eng },
				func() int64 { return int64(m.mem.Peek(ResultAddr)) },
				func() *vn.Core { return m.cpu }, nil)}
		}},
		{"vliw", func() resumable {
			return &vliwAdapter{m: vliw.NewMachine(vliwSchedule(c.w), vliw.Config{
				HitLatency: 1, MissLatency: 8, MissRate: 0.3, Seed: c.w.Seed + 1,
			})}
		}},
	}

	shardedBaselines := func(shards int) []struct {
		name  string
		build func() resumable
	} {
		suffix := ""
		if shards > 0 {
			suffix = fmt.Sprintf("/shards=%d", shards)
		}
		return []struct {
			name  string
			build func() resumable
		}{
			{"cmmp" + suffix, func() resumable {
				m := cmmp.New(cmmp.Config{Processors: 2, Banks: 2, SwitchDelay: 2, Shards: shards}, c.asm, 1)
				park(2, 1, m.Core, c.asm)
				return &baselineAdapter{m: m, snap: vnSnap(
					m.Engine,
					func() int64 { return int64(m.Peek(ResultAddr)) },
					func() *vn.Core { return m.Core(0) },
					func() [4]uint64 { return [4]uint64{m.Crossbar().Stats().Delivered.Value()} })}
			}},
			{"cmstar" + suffix, func() resumable {
				cfg := cmstarConfig(8)
				cfg.Shards = shards
				m := cmstar.New(cfg, c.asm)
				park(m.NumCores(), 1, m.CoreAt, c.asm)
				return &baselineAdapter{m: m, snap: vnSnap(
					m.Engine,
					func() int64 { return int64(m.Peek(ResultAddr)) },
					func() *vn.Core { return m.CoreAt(0) },
					func() [4]uint64 {
						return [4]uint64{m.Stats().LocalRefs.Value(), m.Stats().RemoteRefs.Value()}
					})}
			}},
			{"ultra" + suffix, func() resumable {
				m := ultra.New(ultra.Config{LogProcessors: 2, Combining: true, Shards: shards}, c.asm)
				park(m.NumProcessors(), 1, m.Core, c.asm)
				return &baselineAdapter{m: m, snap: vnSnap(
					m.Engine,
					func() int64 { return int64(m.Peek(ResultAddr)) },
					func() *vn.Core { return m.Core(0) },
					func() [4]uint64 { return [4]uint64{m.BankServed(0), m.Network().CombineOps.Value()} })}
			}},
			{"hep" + suffix, func() resumable {
				m := hep.New(hep.Config{Processors: 2, ContextsPerCore: 1, MemLatency: 4, Shards: shards}, c.asm)
				park(2, 1, m.Core, c.asm)
				return &baselineAdapter{m: m, snap: vnSnap(
					m.Engine,
					func() int64 { return int64(m.Memory().Peek(ResultAddr)) },
					func() *vn.Core { return m.Core(0) }, nil)}
			}},
		}
	}
	entries = append(entries, shardedBaselines(0)...)
	entries = append(entries, shardedBaselines(2)...)

	for _, en := range entries {
		splitCheck(ct, rng, en.name, en.build)
	}
	checkConnectionCheckpoint(ct, c)
}

// splitCheck is one machine's pause/serialize/restore/resume equivalence
// check at a seed-derived random mid-run cycle.
func splitCheck(ct *counter, rng *sim.RNG, name string, build func() resumable) {
	ref := build()
	done, err := ref.run(runLimit)
	if err != nil || !done {
		ct.fail(OracleCheckpoint, name, fmt.Errorf("reference run: done=%v err=%v", done, err))
		return
	}
	want, err := ref.snapshot()
	if err != nil {
		ct.fail(OracleCheckpoint, name, err)
		return
	}
	refBytes := sim.Checkpoint(ref)
	total := want.Cycles
	if total < 2 {
		// Nothing mid-run to pause at; canonical-encoding still holds by
		// construction of the reference bytes.
		ct.check(OracleCheckpoint, name, true, func() string { return "" })
		return
	}
	pause := sim.Cycle(1 + rng.Intn(int(total-1)))

	m := build()
	done, err = m.run(pause)
	if err != nil {
		ct.fail(OracleCheckpoint, name, fmt.Errorf("pause at cycle %d: %v", pause, err))
		return
	}
	if done {
		ct.checkAt(OracleCheckpoint, name, total, false, func() string {
			return fmt.Sprintf("finished within %d cycles; the uninterrupted run took %d", pause, total)
		})
		return
	}
	data := sim.Checkpoint(m)

	fresh := build()
	if err := sim.Restore(fresh, data); err != nil {
		ct.fail(OracleCheckpoint, name, fmt.Errorf("restore at cycle %d: %v", pause, err))
		return
	}
	if re := sim.Checkpoint(fresh); !bytes.Equal(re, data) {
		ct.checkAt(OracleCheckpoint, name, total, false, func() string {
			return fmt.Sprintf("restore→save at cycle %d is not byte-identical (%d vs %d bytes)", pause, len(re), len(data))
		})
		return
	}
	done, err = fresh.run(runLimit)
	if err != nil || !done {
		ct.fail(OracleCheckpoint, name, fmt.Errorf("resume from cycle %d: done=%v err=%v", pause, done, err))
		return
	}
	got, err := fresh.snapshot()
	if err != nil {
		ct.fail(OracleCheckpoint, name, err)
		return
	}
	ct.checkAt(OracleCheckpoint, name, total, got == want, func() string {
		return fmt.Sprintf("run split at cycle %d diverged from the uninterrupted run:\n  straight %+v\n  split    %+v", pause, want, got)
	})
	ct.checkAt(OracleCheckpoint, name, total, bytes.Equal(sim.Checkpoint(fresh), refBytes), func() string {
		return fmt.Sprintf("end-of-run checkpoint differs after a split at cycle %d", pause)
	})
}

// checkConnectionCheckpoint exercises the SIMD array's instruction-boundary
// checkpoint: save after the compute broadcast, restore into a fresh
// array, and run the routing instruction there. The sequencer is host code,
// so mid-instruction pauses do not exist by construction.
func checkConnectionCheckpoint(ct *counter, c *compiled) {
	const name = "connection"
	wantV, wantSteps, err := runConnection(c)
	if err != nil {
		ct.fail(OracleCheckpoint, name, err)
		return
	}

	w := c.w
	m := connection.New(connection.Config{LogPEs: 4}, 1)
	m.Compute(func(pe int, mem []int64) {
		if pe >= 1 && pe <= int(w.N) {
			mem[0] = w.Body.eval(int64(pe))
		}
	})
	data := sim.Checkpoint(m)

	fresh := connection.New(connection.Config{LogPEs: 4}, 1)
	if err := sim.Restore(fresh, data); err != nil {
		ct.fail(OracleCheckpoint, name, fmt.Errorf("restore at instruction boundary: %v", err))
		return
	}
	if re := sim.Checkpoint(fresh); !bytes.Equal(re, data) {
		ct.check(OracleCheckpoint, name, false, func() string {
			return fmt.Sprintf("restore→save is not byte-identical (%d vs %d bytes)", len(re), len(data))
		})
		return
	}
	msgs := make([]connection.Message, 0, w.N)
	for pe := 1; pe <= int(w.N); pe++ {
		msgs = append(msgs, connection.Message{From: pe, To: 0, Value: fresh.Mem(pe)[0]})
	}
	acc := w.Init
	steps := fresh.Route(msgs, func(to int, v int64) { acc = w.fold(acc, v) })
	ct.checkAt(OracleCheckpoint, name, uint64(wantSteps), acc == wantV && steps == wantSteps, func() string {
		return fmt.Sprintf("restored array diverged: result %d/%d, route steps %d/%d", acc, wantV, steps, wantSteps)
	})
}

// MaterializeCheckpoint is the time-travel debugging entry point a
// Violation's repro line names: re-run seed's TTDA machine, pause it at
// cycle at, write the checkpoint to path, and verify the artifact resumes
// to completion. It returns a human summary of what was written.
func MaterializeCheckpoint(seed uint64, at sim.Cycle, path string) (string, error) {
	w := Generate(seed)
	c, err := compile(w)
	if err != nil {
		return "", err
	}
	a := newTTDAAdapter(c, 2, 0, 0, false)
	done, err := a.run(at)
	if err != nil {
		return "", err
	}
	if done {
		return "", fmt.Errorf("seed %d finishes before cycle %d; nothing to pause", seed, at)
	}
	data := sim.Checkpoint(a)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	fresh := newTTDAAdapter(c, 2, 0, 0, false)
	if err := sim.Restore(fresh, data); err != nil {
		return "", fmt.Errorf("written checkpoint does not restore: %v", err)
	}
	if done, err := fresh.run(runLimit); err != nil || !done {
		return "", fmt.Errorf("written checkpoint does not resume: done=%v err=%v", done, err)
	}
	snap, err := fresh.snapshot()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("checkpoint of seed %d at cycle %d written to %s (%d bytes); verified: resumes to result %d in %d cycles",
		seed, at, path, len(data), snap.Result, snap.Cycles), nil
}
