package conformance

import (
	"fmt"
	"strings"

	"repro/internal/direct"
	"repro/internal/machines/ultra"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/vn"
)

// Oracle names the eight check families.
type Oracle string

// Oracle families.
const (
	OracleResult      Oracle = "result-equivalence"
	OracleDeterminism Oracle = "determinism"
	OracleMetamorphic Oracle = "metamorphic"
	OracleHonesty     Oracle = "engine-honesty"
	OracleParallel    Oracle = "parallel-equivalence"
	OracleCompiled    Oracle = "compiled-equivalence"
	OracleCheckpoint  Oracle = "checkpoint-equivalence"
	OracleDirect      Oracle = "direct-equivalence"
)

// Violation is one failed check, carrying enough to reproduce it.
type Violation struct {
	Seed    uint64
	Oracle  Oracle
	Machine string
	Detail  string
	// Cycles is the uninterrupted run length of the machine involved, when
	// the check knows it — it seeds the time-travel repro below. Zero means
	// unknown.
	Cycles uint64
}

// Repro is the minimized reproduction command: it re-runs exactly the
// failing generator seed, verbosely, through all oracles.
func (v Violation) Repro() string {
	return fmt.Sprintf("go test ./internal/conformance -run TestConformanceSeeds -conformance.seed=%d -v", v.Seed)
}

// TimeTravel returns a command that materializes a TTDA checkpoint shortly
// before the divergence point for interactive debugging, or "" when the
// failing run's length is unknown.
func (v Violation) TimeTravel() string {
	if v.Cycles == 0 {
		return ""
	}
	const back = 64
	at := uint64(1)
	if v.Cycles > back {
		at = v.Cycles - back
	}
	return fmt.Sprintf("go test ./internal/conformance -run TestConformanceSeeds -conformance.seed=%d -conformance.ckpt-at=%d -conformance.ckpt-out=seed%d.ckpt",
		v.Seed, at, v.Seed)
}

func (v Violation) String() string {
	s := fmt.Sprintf("[%s] %s: %s\n  reproduce with: %s", v.Oracle, v.Machine, v.Detail, v.Repro())
	if tt := v.TimeTravel(); tt != "" {
		s += fmt.Sprintf("\n  checkpoint just before divergence: %s", tt)
	}
	return s
}

// Report aggregates a sweep.
type Report struct {
	Programs   int
	Checks     int
	PerOracle  map[Oracle]int // checks run per family
	Violations []Violation
}

// counter tallies checks as they run.
type counter struct {
	seed   uint64
	checks int
	per    map[Oracle]int
	vs     []Violation
}

func newCounter(seed uint64) *counter {
	return &counter{seed: seed, per: map[Oracle]int{}}
}

func (c *counter) check(o Oracle, machine string, ok bool, detail func() string) {
	c.checkAt(o, machine, 0, ok, detail)
}

// checkAt is check with the uninterrupted run length attached, so a
// violation can print a checkpoint-just-before-divergence repro.
func (c *counter) checkAt(o Oracle, machine string, cycles uint64, ok bool, detail func() string) {
	c.checks++
	c.per[o]++
	if !ok {
		c.vs = append(c.vs, Violation{Seed: c.seed, Oracle: o, Machine: machine, Detail: detail(), Cycles: cycles})
	}
}

func (c *counter) fail(o Oracle, machine string, err error) {
	c.check(o, machine, false, func() string { return err.Error() })
}

// CheckSeed generates workload seed and runs all eight oracle families
// over the machine fleet, returning every violation (empty means the
// fleet conforms on this program).
func CheckSeed(seed uint64) []Violation {
	_, vs := checkSeed(seed)
	return vs
}

// checkSeed additionally reports how many checks ran (for Sweep/E14).
func checkSeed(seed uint64) (*counter, []Violation) {
	ct := newCounter(seed)
	w := Generate(seed)
	c, err := compile(w)
	if err != nil {
		// A generator emission the toolchain rejects is itself a
		// conformance failure: both forms must always be executable.
		ct.fail(OracleResult, "compile", fmt.Errorf("%v (%s)", err, w))
		return ct, ct.vs
	}
	checkResults(ct, c)
	checkDeterminism(ct, c)
	checkMetamorphic(ct, c)
	checkHonesty(ct, c)
	checkParallel(ct, c)
	checkCompiled(ct, c)
	checkCheckpoint(ct, c)
	checkDirect(ct, c)
	return ct, ct.vs
}

// --- oracle 1: result equivalence -----------------------------------

func checkResults(ct *counter, c *compiled) {
	want := c.w.Expected()
	expect := func(machine string, got int64, err error) {
		if err != nil {
			ct.fail(OracleResult, machine, err)
			return
		}
		ct.check(OracleResult, machine, got == want, func() string {
			return fmt.Sprintf("got %d, want %d (%s)", got, want, c.w)
		})
	}

	iv, _, err := runInterp(c)
	expect("interp", iv, err)

	ts, err := runTTDA(c, 2, 4, false, 0, 0, false)
	expect("ttda", ts.Result, err)

	ev, err := runEmulator(c, 4)
	expect("emulator", ev, err)

	for _, k := range []int{1, 2} {
		s, err := runVN(c, k, 4, true)
		expect(fmt.Sprintf("vn/k=%d", k), s.Result, err)
	}

	cs, err := runCmmp(c, 2, false, 0)
	expect("cmmp", cs.Result, err)

	ms, err := runCmstar(c, 8, false, 0)
	expect("cmstar", ms.Result, err)

	us, err := runUltra(c, true, false, 0)
	expect("ultra", us.Result, err)

	hs, err := runHEP(c, false, 0)
	expect("hep", hs.Result, err)

	cv, _, err := runConnection(c)
	expect("connection", cv, err)
}

// --- oracle 2: determinism ------------------------------------------

func checkDeterminism(ct *counter, c *compiled) {
	twice := func(machine string, run func() (Snapshot, error)) {
		a, err1 := run()
		b, err2 := run()
		if err1 != nil || err2 != nil {
			ct.fail(OracleDeterminism, machine, fmt.Errorf("run errors: %v / %v", err1, err2))
			return
		}
		ct.checkAt(OracleDeterminism, machine, a.Cycles, a == b, func() string {
			return fmt.Sprintf("two identical runs diverged:\n  first  %+v\n  second %+v", a, b)
		})
	}

	twice("ttda", func() (Snapshot, error) { return runTTDA(c, 2, 4, false, 0, 0, false) })
	twice("vn", func() (Snapshot, error) { return runVN(c, 2, 4, true) })
	twice("cmmp", func() (Snapshot, error) { return runCmmp(c, 2, false, 0) })
	twice("cmstar", func() (Snapshot, error) { return runCmstar(c, 8, false, 0) })
	twice("ultra", func() (Snapshot, error) { return runUltra(c, true, false, 0) })
	twice("hep", func() (Snapshot, error) { return runHEP(c, false, 0) })
	twice("connection", func() (Snapshot, error) {
		v, steps, err := runConnection(c)
		return Snapshot{Result: v, Cycles: uint64(steps)}, err
	})
	twice("vliw", func() (Snapshot, error) {
		r := runVLIW(c.w, 8)
		return Snapshot{Cycles: uint64(r.Cycles), Extra: [4]uint64{r.TotalOps, uint64(r.StallCycles), r.Misses, r.Loads}}, nil
	})
	// The emulator is untimed and internally concurrent; only its answer
	// is deterministic, which the result oracle already pins.
}

// --- oracle 3: metamorphic invariants -------------------------------

// cyclesAtLatency maps one latency knob setting to a cycle count — the
// seam the harness tests feed doctored doubles through.
type cyclesAtLatency func(latency sim.Cycle) (uint64, error)

// checkLatencyMonotone asserts the paper's Issue-1 direction: raising
// memory latency never makes a von Neumann machine faster.
func checkLatencyMonotone(ct *counter, machine string, lats []sim.Cycle, run cyclesAtLatency) {
	prev := uint64(0)
	prevLat := sim.Cycle(0)
	for i, lat := range lats {
		cyc, err := run(lat)
		if err != nil {
			ct.fail(OracleMetamorphic, machine, err)
			return
		}
		if i > 0 {
			got, last, l0, l1 := cyc, prev, prevLat, lat
			ct.check(OracleMetamorphic, machine, got >= last, func() string {
				return fmt.Sprintf("raising memory latency %d→%d DECREASED cycles %d→%d", l0, l1, last, got)
			})
		}
		prev, prevLat = cyc, lat
	}
}

// checkCriticalPathBound asserts the dataflow lower bound: no PE count
// can push TTDA time below the graph's critical path S∞ (depth in
// instruction waves, each wave at least one cycle).
func checkCriticalPathBound(ct *counter, depth int, pes int, cycles uint64, err error) {
	if err != nil {
		ct.fail(OracleMetamorphic, "ttda", err)
		return
	}
	ct.check(OracleMetamorphic, fmt.Sprintf("ttda/pes=%d", pes), cycles >= uint64(depth), func() string {
		return fmt.Sprintf("%d PEs ran in %d cycles, below the graph's S∞=%d", pes, cycles, depth)
	})
}

func checkMetamorphic(ct *counter, c *compiled) {
	checkLatencyMonotone(ct, "vn", []sim.Cycle{2, 6, 18}, func(lat sim.Cycle) (uint64, error) {
		s, err := runVN(c, 1, lat, true)
		return s.Cycles, err
	})
	checkLatencyMonotone(ct, "cmmp", []sim.Cycle{1, 4, 12}, func(lat sim.Cycle) (uint64, error) {
		s, err := runCmmp(c, lat, false, 0)
		return s.Cycles, err
	})
	checkLatencyMonotone(ct, "cmstar", []sim.Cycle{2, 8, 24}, func(lat sim.Cycle) (uint64, error) {
		s, err := runCmstar(c, lat, false, 0)
		return s.Cycles, err
	})
	checkLatencyMonotone(ct, "vliw", []sim.Cycle{2, 8, 20}, func(lat sim.Cycle) (uint64, error) {
		return uint64(runVLIW(c.w, lat).Cycles), nil
	})

	_, it, err := runInterp(c)
	if err != nil {
		ct.fail(OracleMetamorphic, "interp", err)
		return
	}
	for _, pes := range []int{1, 2, 4} {
		s, err := runTTDA(c, pes, 4, false, 0, 0, false)
		checkCriticalPathBound(ct, it.Depth(), pes, s.Cycles, err)
	}

	checkCombining(ct, c.w)
}

// checkCombining asserts the Ultracomputer claim under randomized
// contention: on a FETCH-AND-ADD-heavy workload, enabling omega-switch
// combining never increases cycle count.
func checkCombining(ct *counter, w Workload) {
	iters := 1 + w.Seed%6
	prog, err := vn.Assemble(faaBurstASM(int64(iters)))
	if err != nil {
		ct.fail(OracleMetamorphic, "ultra", err)
		return
	}
	run := func(combining bool) (uint64, error) {
		m := ultra.New(ultra.Config{LogProcessors: 2, Combining: combining}, prog)
		for p := 0; p < m.NumProcessors(); p++ {
			m.Core(p).Context(0).SetReg(4, vn.Word(ResultAddr+1+p))
		}
		elapsed, err := m.Run(runLimit)
		return uint64(elapsed), err
	}
	plain, err1 := run(false)
	comb, err2 := run(true)
	if err1 != nil || err2 != nil {
		ct.fail(OracleMetamorphic, "ultra", fmt.Errorf("faa runs: %v / %v", err1, err2))
		return
	}
	ct.check(OracleMetamorphic, "ultra/combining", comb <= plain, func() string {
		return fmt.Sprintf("combining INCREASED cycles on a FAA-heavy workload: %d (on) > %d (off), iters=%d", comb, plain, iters)
	})
}

// faaBurstASM is the hotspot kernel: every processor FETCH-AND-ADDs the
// shared cell at address 0 iters times, recording tickets privately
// (per-core r4 is preset to a distinct address).
func faaBurstASM(iters int64) string {
	return fmt.Sprintf(`
        li   r1, 0
        li   r2, 1
        li   r6, %d
loop:   beq  r6, r0, done
        faa  r3, r1, r2
        st   r3, r4, 0
        addi r6, r6, -1
        j    loop
done:   halt
`, iters)
}

// --- oracle 4: engine honesty ---------------------------------------

// checkHonesty runs every engine-driven machine twice — once on the
// wake-queue scheduler, once with an inert legacy component registered so
// the engine falls back to exhaustive per-cycle stepping — and demands
// bit-identical simulated observables. This generalizes the per-package
// NextEvent-honesty property tests to whole machines on arbitrary
// programs.
func checkHonesty(ct *counter, c *compiled) {
	pair := func(machine string, run func(legacy bool) (Snapshot, error)) {
		evented, err1 := run(false)
		exhaustive, err2 := run(true)
		if err1 != nil || err2 != nil {
			ct.fail(OracleHonesty, machine, fmt.Errorf("run errors: %v / %v", err1, err2))
			return
		}
		a, b := evented.Observables(), exhaustive.Observables()
		ct.check(OracleHonesty, machine, a == b, func() string {
			return fmt.Sprintf("wake-queue and exhaustive runs diverged:\n  wake-queue %+v\n  exhaustive %+v", a, b)
		})
	}

	pair("ttda", func(l bool) (Snapshot, error) { return runTTDA(c, 2, 4, l, 0, 0, false) })
	pair("vn", func(l bool) (Snapshot, error) { return runVN(c, 2, 4, !l) })
	pair("cmmp", func(l bool) (Snapshot, error) { return runCmmp(c, 2, l, 0) })
	pair("cmstar", func(l bool) (Snapshot, error) { return runCmstar(c, 8, l, 0) })
	pair("ultra", func(l bool) (Snapshot, error) { return runUltra(c, true, l, 0) })
	pair("hep", func(l bool) (Snapshot, error) { return runHEP(c, l, 0) })
}

// --- oracle 5: parallel-vs-sequential equivalence ---------------------

// parallelShardCounts are the shard counts the parallel oracle exercises
// against the sequential reference on every machine and seed.
var parallelShardCounts = []int{2, 4, 8}

// checkParallel runs every shardable machine once on the sequential engine
// and once per shard count on the conservative parallel kernel, demanding
// bit-identical simulated observables. Engine counters are excluded: the
// two kernels schedule differently by construction (the parallel engine
// ticks its net driver every cycle), but everything the simulated machine
// itself produced — results, cycle counts, statistics — must match exactly.
func checkParallel(ct *counter, c *compiled) {
	fan := func(machine string, run func(shards int) (Snapshot, error)) {
		seq, err := run(0)
		if err != nil {
			ct.fail(OracleParallel, machine, err)
			return
		}
		want := seq.Observables()
		for _, n := range parallelShardCounts {
			par, err := run(n)
			if err != nil {
				ct.fail(OracleParallel, fmt.Sprintf("%s/shards=%d", machine, n), err)
				continue
			}
			got := par.Observables()
			ct.checkAt(OracleParallel, fmt.Sprintf("%s/shards=%d", machine, n), want.Cycles, got == want, func() string {
				return fmt.Sprintf("parallel run diverged from sequential:\n  sequential %+v\n  parallel   %+v", want, got)
			})
		}
	}

	fan("ttda", func(n int) (Snapshot, error) { return runTTDA(c, 4, 4, false, n, 0, false) })
	fan("cmmp", func(n int) (Snapshot, error) { return runCmmp(c, 2, false, n) })
	fan("cmstar", func(n int) (Snapshot, error) { return runCmstar(c, 8, false, n) })
	fan("ultra", func(n int) (Snapshot, error) { return runUltra(c, true, false, n) })
	fan("hep", func(n int) (Snapshot, error) { return runHEP(c, false, n) })

	// Epoch-window crossings: the TTDA's ideal fabric declares a lookahead,
	// so the parallel kernel may run multi-tick windows (capped and
	// adaptive). Every combination must still be bit-identical to the
	// sequential reference.
	seq, err := runTTDA(c, 4, 4, false, 0, 0, false)
	if err != nil {
		ct.fail(OracleParallel, "ttda/windows", err)
		return
	}
	want := seq.Observables()
	for _, n := range []int{2, 4} {
		for _, win := range []int{4, -1} {
			name := fmt.Sprintf("ttda/shards=%d/window=%d", n, win)
			par, err := runTTDA(c, 4, 4, false, n, win, false)
			if err != nil {
				ct.fail(OracleParallel, name, err)
				continue
			}
			got := par.Observables()
			ct.checkAt(OracleParallel, name, want.Cycles, got == want, func() string {
				return fmt.Sprintf("windowed parallel run diverged from sequential:\n  sequential %+v\n  parallel   %+v", want, got)
			})
		}
	}
}

// --- oracle 6: compiled-vs-interpreted equivalence --------------------

// checkCompiled runs the TTDA once through the interpreted dispatch core
// and once through the ahead-of-time compiled plan, demanding the FULL
// snapshot — results, cycles, machine statistics, and the engine's own
// counters — be bit-identical. Compilation is a pure host-side speedup: it
// may not perturb even the scheduler's wake pattern. A second check
// crosses the compiled plan with the conservative parallel kernel against
// the interpreted sequential reference.
func checkCompiled(ct *counter, c *compiled) {
	interp, err1 := runTTDA(c, 2, 4, false, 0, 0, false)
	plan, err2 := runTTDA(c, 2, 4, false, 0, 0, true)
	if err1 != nil || err2 != nil {
		ct.fail(OracleCompiled, "ttda", fmt.Errorf("run errors: %v / %v", err1, err2))
		return
	}
	ct.checkAt(OracleCompiled, "ttda", interp.Cycles, interp == plan, func() string {
		return fmt.Sprintf("compiled run diverged from interpreted (full snapshot):\n  interpreted %+v\n  compiled    %+v", interp, plan)
	})

	seq, err := runTTDA(c, 4, 4, false, 0, 0, false)
	if err != nil {
		ct.fail(OracleCompiled, "ttda/pes=4", err)
		return
	}
	want := seq.Observables()
	for _, n := range parallelShardCounts {
		par, err := runTTDA(c, 4, 4, false, n, 0, true)
		if err != nil {
			ct.fail(OracleCompiled, fmt.Sprintf("ttda/compiled/shards=%d", n), err)
			continue
		}
		got := par.Observables()
		ct.checkAt(OracleCompiled, fmt.Sprintf("ttda/compiled/shards=%d", n), want.Cycles, got == want, func() string {
			return fmt.Sprintf("compiled parallel run diverged from interpreted sequential:\n  sequential %+v\n  parallel   %+v", want, got)
		})
	}
}

// --- oracle 8: direct-execution equivalence ---------------------------

// directRun executes the program on the direct-execution oracle backend
// and returns its single integer result plus the firing count. It is a
// package variable so the harness-teeth test can doctor it; production
// code must never reassign it.
var directRun = func(c *compiled) (int64, uint64, error) {
	x := direct.New(c.prog)
	res, err := x.Run(c.args...)
	if err != nil {
		return 0, 0, err
	}
	if len(res) != 1 {
		return 0, 0, fmt.Errorf("direct: %d results", len(res))
	}
	v, err := res[0].AsInt()
	return v, x.Fired(), err
}

// checkDirect pins the direct-execution backend to the fleet: its answer
// must equal the workload's closed form (which the result oracle already
// ties to every machine, so agreement is transitive across the fleet) and
// its firing count must equal the reference interpreter's — the firing
// multiset of a dataflow graph is schedule-invariant, so the depth-first
// direct schedule and the breadth-first interpreter waves must fire
// exactly the same activity instances.
func checkDirect(ct *counter, c *compiled) {
	want := c.w.Expected()
	got, fired, err := directRun(c)
	if err != nil {
		ct.fail(OracleDirect, "direct", err)
		return
	}
	ct.check(OracleDirect, "direct", got == want, func() string {
		return fmt.Sprintf("direct backend got %d, want %d (%s)", got, want, c.w)
	})
	_, it, err := runInterp(c)
	if err != nil {
		ct.fail(OracleDirect, "direct/firings", err)
		return
	}
	ct.check(OracleDirect, "direct/firings", fired == it.Fired(), func() string {
		return fmt.Sprintf("direct backend fired %d activity instances, interpreter fired %d (%s)", fired, it.Fired(), c.w)
	})
}

// --- sweep -----------------------------------------------------------

// Sweep checks seeds [0, n) and aggregates.
func Sweep(n int) Report { return SweepOpts(n, 1) }

// SweepOpts is Sweep on the shared parallel sweep runner: seeds fan out
// across at most workers goroutines (<= 0 means GOMAXPROCS). Each seed's
// checks are fully independent — every machine is built fresh per run — and
// per-seed tallies are folded into the report in seed order after the
// barrier, so the report is identical at any worker count.
func SweepOpts(n, workers int) Report {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i)
	}
	per, _ := sweep.Run(seeds, func(_ sweep.Env, seed uint64) (*counter, error) {
		ct, _ := checkSeed(seed)
		return ct, nil
	}, sweep.Options{Workers: workers})
	r := Report{PerOracle: map[Oracle]int{}}
	for _, ct := range per {
		r.Programs++
		r.Checks += ct.checks
		for o, k := range ct.per {
			r.PerOracle[o] += k
		}
		r.Violations = append(r.Violations, ct.vs...)
	}
	return r
}

// Summary renders the report for humans.
func (r Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance: %d programs, %d checks", r.Programs, r.Checks)
	for _, o := range []Oracle{OracleResult, OracleDeterminism, OracleMetamorphic, OracleHonesty, OracleParallel, OracleCompiled, OracleCheckpoint, OracleDirect} {
		fmt.Fprintf(&b, ", %s=%d", o, r.PerOracle[o])
	}
	if len(r.Violations) == 0 {
		b.WriteString(" — all passed")
	} else {
		fmt.Fprintf(&b, " — %d VIOLATIONS:\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "%s\n", v)
		}
	}
	return b.String()
}
