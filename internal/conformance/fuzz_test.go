package conformance

import "testing"

// FuzzConformance drives the generator from arbitrary fuzzed seeds and
// runs the cheap core of the oracle set on each: both executable forms
// must compile, and the reference interpreter, the wake-queue vn core,
// the exhaustive vn core, and the pure-Go fold must all agree. Anything
// the fuzzer finds here reproduces with the seed alone.
func FuzzConformance(f *testing.F) {
	for seed := uint64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Add(uint64(1 << 40))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, seed uint64) {
		w := Generate(seed)
		c, err := compile(w)
		if err != nil {
			t.Fatalf("generated program does not compile: %v (%s)", err, w)
		}
		want := w.Expected()
		got, _, err := runInterp(c)
		if err != nil {
			t.Fatalf("interp: %v (%s)", err, w)
		}
		if got != want {
			t.Fatalf("interp %d, Go fold %d (%s)", got, want, w)
		}
		evented, err := runVN(c, 1, 3, true)
		if err != nil {
			t.Fatalf("vn evented: %v (%s)", err, w)
		}
		exhaustive, err := runVN(c, 1, 3, false)
		if err != nil {
			t.Fatalf("vn exhaustive: %v (%s)", err, w)
		}
		if evented.Result != want {
			t.Fatalf("vn %d, Go fold %d (%s)", evented.Result, want, w)
		}
		if evented.Observables() != exhaustive.Observables() {
			t.Fatalf("engine honesty: evented %+v != exhaustive %+v (%s)", evented, exhaustive, w)
		}
	})
}
