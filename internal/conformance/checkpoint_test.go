package conformance

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

// dishonestResumable diverges after a checkpoint round trip: the restored
// copy runs one cycle longer than the straight run — the exact class of
// bug the seventh oracle exists to catch.
type dishonestResumable struct {
	cycles   uint64
	restored bool
}

func (d *dishonestResumable) SaveState(e *sim.Enc) {
	e.Tag("dishonest", 1)
	e.U64(d.cycles)
}

func (d *dishonestResumable) LoadState(dec *sim.Dec) error {
	if err := dec.Tag("dishonest", 1); err != nil {
		return err
	}
	d.cycles = dec.U64()
	d.restored = true
	return nil
}

func (d *dishonestResumable) run(limit sim.Cycle) (bool, error) {
	target := uint64(100)
	if d.restored {
		target = 101 // resumed runs drift by one cycle
	}
	if d.cycles+uint64(limit) < target {
		d.cycles += uint64(limit)
		return false, nil
	}
	d.cycles = target
	return true, nil
}

func (d *dishonestResumable) snapshot() (Snapshot, error) {
	return Snapshot{Cycles: d.cycles}, nil
}

// TestHarnessDetectsCheckpointDivergence seeds the split-run check with a
// machine whose restored copy drifts, and demands a checkpoint-equivalence
// violation carrying the time-travel repro.
func TestHarnessDetectsCheckpointDivergence(t *testing.T) {
	ct := newCounter(99)
	splitCheck(ct, sim.NewRNG(1), "double", func() resumable { return &dishonestResumable{} })
	if len(ct.vs) == 0 {
		t.Fatal("harness accepted a machine that diverges after checkpoint/restore")
	}
	v := ct.vs[0]
	if v.Oracle != OracleCheckpoint {
		t.Fatalf("violation filed under %q, want %q", v.Oracle, OracleCheckpoint)
	}
	if v.Cycles == 0 {
		t.Fatal("violation lost the reference run length")
	}
	if !strings.Contains(v.String(), "-conformance.ckpt-at=") {
		t.Fatalf("violation text omits the time-travel command:\n%s", v)
	}

	// An honest machine must pass the same check.
	honest := newCounter(99)
	splitCheck(honest, sim.NewRNG(1), "honest", func() resumable {
		return &dishonestResumable{restored: true} // both runs take 101 cycles
	})
	if len(honest.vs) != 0 {
		t.Fatalf("split check rejected an honest machine: %v", honest.vs)
	}
}

// TestViolationTimeTravel pins the repro command shape and its absence
// when the run length is unknown.
func TestViolationTimeTravel(t *testing.T) {
	v := Violation{Seed: 7, Oracle: OracleCheckpoint, Machine: "ttda", Cycles: 1000}
	tt := v.TimeTravel()
	for _, want := range []string{"-conformance.seed=7", "-conformance.ckpt-at=936", "-conformance.ckpt-out="} {
		if !strings.Contains(tt, want) {
			t.Fatalf("time-travel command %q lacks %q", tt, want)
		}
	}
	if (Violation{Seed: 7, Cycles: 0}).TimeTravel() != "" {
		t.Fatal("time travel offered without a known run length")
	}
	short := Violation{Seed: 7, Cycles: 10}
	if !strings.Contains(short.TimeTravel(), "-conformance.ckpt-at=1") {
		t.Fatalf("short-run time travel should clamp to cycle 1: %q", short.TimeTravel())
	}
}

// TestMaterializeCheckpoint exercises the time-travel entry point end to
// end: the written artifact must restore into a fresh machine and resume
// to the workload's expected answer.
func TestMaterializeCheckpoint(t *testing.T) {
	const seed = 3
	path := filepath.Join(t.TempDir(), "seed3.ckpt")
	msg, err := MaterializeCheckpoint(seed, 5, path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "verified") {
		t.Fatalf("summary does not report verification: %q", msg)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compile(Generate(seed))
	if err != nil {
		t.Fatal(err)
	}
	a := newTTDAAdapter(c, 2, 0, 0, false)
	if err := sim.Restore(a, data); err != nil {
		t.Fatalf("artifact does not restore: %v", err)
	}
	done, err := a.run(runLimit)
	if err != nil || !done {
		t.Fatalf("artifact does not resume: done=%v err=%v", done, err)
	}
	snap, err := a.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if want := c.w.Expected(); snap.Result != want {
		t.Fatalf("resumed run computed %d, want %d", snap.Result, want)
	}

	// Asking for a pause beyond the run's end must error, not write junk.
	if _, err := MaterializeCheckpoint(seed, runLimit-1, filepath.Join(t.TempDir(), "x.ckpt")); err == nil {
		t.Fatal("materializing past the end of the run did not error")
	}
}

// TestCheckpointOracleSingleSeed runs the full seventh family on one seed
// as a fast standalone gate (the 64-seed sweep covers the rest).
func TestCheckpointOracleSingleSeed(t *testing.T) {
	c, err := compile(Generate(0))
	if err != nil {
		t.Fatal(err)
	}
	ct := newCounter(0)
	checkCheckpoint(ct, c)
	if ct.per[OracleCheckpoint] == 0 {
		t.Fatal("checkpoint oracle ran zero checks")
	}
	for _, v := range ct.vs {
		t.Errorf("%s", v)
	}
}
