package conformance

import (
	"flag"
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

// seedFlag re-runs a single generator seed verbosely — the minimized
// reproduction command every Violation prints.
var seedFlag = flag.Int64("conformance.seed", -1, "run only this conformance generator seed")

// ckptAtFlag and ckptOutFlag are the time-travel repro a Violation with a
// known run length prints: pause the seed's TTDA run at a cycle just
// before the divergence and write the checkpoint for offline inspection.
var (
	ckptAtFlag  = flag.Int64("conformance.ckpt-at", -1, "with -conformance.seed: pause the TTDA run at this cycle and write a checkpoint")
	ckptOutFlag = flag.String("conformance.ckpt-out", "", "path for the -conformance.ckpt-at checkpoint artifact")
)

// numSeeds is how many generated programs the full sweep pushes through
// the TTDA, the vn core, and all six Section-1.2 baselines.
const numSeeds = 64

func TestConformanceSeeds(t *testing.T) {
	if *seedFlag >= 0 {
		seed := uint64(*seedFlag)
		w := Generate(seed)
		t.Logf("workload: %s", w)
		t.Logf("MiniID form:\n%s", w.IDSource())
		t.Logf("vn form:\n%s", w.ASMSource())
		if *ckptAtFlag >= 0 {
			if *ckptOutFlag == "" {
				t.Fatal("-conformance.ckpt-at requires -conformance.ckpt-out")
			}
			msg, err := MaterializeCheckpoint(seed, sim.Cycle(*ckptAtFlag), *ckptOutFlag)
			if err != nil {
				t.Fatal(err)
			}
			t.Log(msg)
			return
		}
		for _, v := range CheckSeed(seed) {
			t.Errorf("%s", v)
		}
		return
	}
	for seed := uint64(0); seed < numSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			for _, v := range CheckSeed(seed) {
				t.Errorf("%s", v)
			}
		})
	}
}

// TestGeneratorDeterministic pins that a seed always yields the same
// program in both forms — the property every Repro() command relies on.
func TestGeneratorDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 32; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.IDSource() != b.IDSource() || a.ASMSource() != b.ASMSource() {
			t.Fatalf("seed %d generated two different programs", seed)
		}
	}
}

// TestGeneratorCoverage keeps the generator from silently collapsing to
// one corner of the program space.
func TestGeneratorCoverage(t *testing.T) {
	shapes := map[Shape]int{}
	ops := map[byte]int{}
	for seed := uint64(0); seed < 200; seed++ {
		w := Generate(seed)
		shapes[w.Shape]++
		ops[w.Op]++
	}
	if shapes[ShapeReduce] == 0 || shapes[ShapeFill] == 0 {
		t.Fatalf("generator lost a shape: %v", shapes)
	}
	if ops['+'] == 0 || ops['*'] == 0 {
		t.Fatalf("generator lost a fold operator: %v", ops)
	}
}

// TestHarnessDetectsFlippedLatencyComparison seeds a single metamorphic
// violation through a dishonest test double — a machine whose cycle
// count drops as latency rises, i.e. a hand-flipped comparison — and
// demands the harness fail with a minimized reproduction command.
func TestHarnessDetectsFlippedLatencyComparison(t *testing.T) {
	ct := newCounter(12345)
	checkLatencyMonotone(ct, "double", []sim.Cycle{2, 6, 18}, func(lat sim.Cycle) (uint64, error) {
		return uint64(1000 - lat), nil // faster with slower memory: impossible
	})
	if len(ct.vs) == 0 {
		t.Fatal("harness accepted a machine that speeds up when memory slows down")
	}
	v := ct.vs[0]
	if v.Oracle != OracleMetamorphic {
		t.Fatalf("violation filed under %q, want %q", v.Oracle, OracleMetamorphic)
	}
	if !strings.Contains(v.Repro(), "-conformance.seed=12345") {
		t.Fatalf("violation lacks a minimized repro command: %q", v.Repro())
	}
	if !strings.Contains(v.String(), "reproduce with:") {
		t.Fatalf("violation text does not surface the repro command:\n%s", v)
	}
}

// TestHarnessDetectsCriticalPathViolation feeds the S∞ lower-bound check
// a cycle count below the graph's critical path.
func TestHarnessDetectsCriticalPathViolation(t *testing.T) {
	ct := newCounter(7)
	checkCriticalPathBound(ct, 100, 4, 99, nil)
	if len(ct.vs) == 0 {
		t.Fatal("harness accepted a TTDA run faster than the graph's S∞")
	}
	if !strings.Contains(ct.vs[0].Detail, "S∞=100") {
		t.Fatalf("violation detail omits the bound: %q", ct.vs[0].Detail)
	}
	// The honest direction must still pass.
	ok := newCounter(7)
	checkCriticalPathBound(ok, 100, 4, 100, nil)
	checkCriticalPathBound(ok, 100, 4, 5000, nil)
	if len(ok.vs) != 0 {
		t.Fatalf("lower-bound check rejected honest cycle counts: %v", ok.vs)
	}
}

// TestHarnessDetectsCorruptedDirectResult doctors the direct-execution
// seam so the oracle backend reports an off-by-one answer, and demands the
// direct-equivalence oracle fail with the standard minimized repro
// command. This is the teeth test for the eighth family: a backend with no
// cycle model has exactly one observable, so the harness must die the
// moment that observable drifts.
func TestHarnessDetectsCorruptedDirectResult(t *testing.T) {
	honest := directRun
	defer func() { directRun = honest }()
	directRun = func(c *compiled) (int64, uint64, error) {
		v, fired, err := honest(c)
		return v + 1, fired, err // corrupt the answer, keep the firing count
	}

	ct := newCounter(12345)
	w := Generate(12345)
	c, err := compile(w)
	if err != nil {
		t.Fatal(err)
	}
	checkDirect(ct, c)
	if len(ct.vs) == 0 {
		t.Fatal("harness accepted a corrupted direct-backend result")
	}
	v := ct.vs[0]
	if v.Oracle != OracleDirect {
		t.Fatalf("violation filed under %q, want %q", v.Oracle, OracleDirect)
	}
	if !strings.Contains(v.Repro(), "-conformance.seed=12345") {
		t.Fatalf("violation lacks a minimized repro command: %q", v.Repro())
	}
	if !strings.Contains(v.String(), "reproduce with:") {
		t.Fatalf("violation text does not surface the repro command:\n%s", v)
	}

	// The honest backend must pass the same seed cleanly.
	directRun = honest
	ok := newCounter(12345)
	checkDirect(ok, c)
	if len(ok.vs) != 0 {
		t.Fatalf("direct oracle rejected the honest backend: %v", ok.vs)
	}
}

// TestSweepReport pins the aggregate report shape E14 and the
// critique-bench smoke flag consume.
func TestSweepReport(t *testing.T) {
	r := Sweep(4)
	if r.Programs != 4 {
		t.Fatalf("Programs = %d, want 4", r.Programs)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", r.Violations)
	}
	for _, o := range []Oracle{OracleResult, OracleDeterminism, OracleMetamorphic, OracleHonesty, OracleParallel, OracleCompiled, OracleCheckpoint, OracleDirect} {
		if r.PerOracle[o] == 0 {
			t.Fatalf("oracle family %q ran zero checks", o)
		}
	}
	if !strings.Contains(r.Summary(), "all passed") {
		t.Fatalf("summary: %q", r.Summary())
	}
}

// TestSweepOptsWorkerInvariant pins that the parallel sweep runner yields
// the identical aggregate report at any worker count — the property that
// lets CI and the bench harness fan the 64-seed suite across cores.
func TestSweepOptsWorkerInvariant(t *testing.T) {
	ref := Sweep(4)
	par := SweepOpts(4, 3)
	if par.Programs != ref.Programs || par.Checks != ref.Checks {
		t.Fatalf("parallel sweep tallies diverged: %d/%d programs, %d/%d checks",
			par.Programs, ref.Programs, par.Checks, ref.Checks)
	}
	for o, k := range ref.PerOracle {
		if par.PerOracle[o] != k {
			t.Fatalf("oracle %q: %d checks parallel, %d sequential", o, par.PerOracle[o], k)
		}
	}
	if len(par.Violations) != len(ref.Violations) {
		t.Fatalf("violation counts diverged: %d parallel, %d sequential", len(par.Violations), len(ref.Violations))
	}
}

// TestBothFormsAgreeWithGo is the tight inner loop of the result oracle,
// kept separate so a generator bug is caught even if machine plumbing
// breaks first: MiniID interpretation and the vn core must both match
// the pure-Go fold.
func TestBothFormsAgreeWithGo(t *testing.T) {
	for seed := uint64(0); seed < 150; seed++ {
		w := Generate(seed)
		c, err := compile(w)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := w.Expected()
		got, _, err := runInterp(c)
		if err != nil {
			t.Fatalf("seed %d interp: %v", seed, err)
		}
		if got != want {
			t.Errorf("seed %d: interp %d, Go %d (%s)", seed, got, want, w)
		}
		s, err := runVN(c, 1, 2, true)
		if err != nil {
			t.Fatalf("seed %d vn: %v", seed, err)
		}
		if s.Result != want {
			t.Errorf("seed %d: vn %d, Go %d (%s)", seed, s.Result, want, w)
		}
	}
}
