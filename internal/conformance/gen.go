// Package conformance is the cross-machine differential test harness: a
// seeded random workload generator that emits each program in two
// executable forms — a MiniID source compiled through internal/id and
// internal/graph for the dataflow machines, and a matching vn assembly
// program for the von Neumann baselines — plus four oracle families run
// over the whole machine fleet:
//
//	result equivalence — every machine produces the same numeric answer;
//	determinism        — two runs of one config are bit-identical in
//	                     cycles, statistics, and Engine.Counters();
//	metamorphic        — raising memory latency never decreases a von
//	                     Neumann machine's cycle count, TTDA time never
//	                     drops below the graph's critical path S∞, and
//	                     omega-network combining never slows the
//	                     Ultracomputer on a FETCH-AND-ADD-heavy workload;
//	engine honesty     — the wake-queue engine run matches the legacy
//	                     exhaustive-fallback run for every generated case.
//
// The methodology follows AriDeM's empirical validation (run identical
// workloads on the dataflow and the conventional machine, compare
// results) and the Ultracomputer retrospective's insistence that
// combining claims hold under randomized contention.
package conformance

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Memory layout shared by every generated vn program. Addresses are kept
// small enough to be valid on every baseline (Cm* is configured with the
// tightest space: Clusters×ClusterWords words).
const (
	// ResultAddr is where the vn form stores its final answer.
	ResultAddr = 64
	// ArrayBase is the first element of the fillsum shape's array.
	ArrayBase = 128
)

// Shape selects the program skeleton around the generated expression.
type Shape uint8

// Shapes.
const (
	// ShapeReduce folds s = s op f(i) for i in 1..n, with the running
	// value written through memory each iteration on the vn side.
	ShapeReduce Shape = iota
	// ShapeFill stores f(i) into a[i-1] for i in 1..n, then sums the
	// array — I-structure traffic on the dataflow side, two memory loops
	// on the von Neumann side.
	ShapeFill
)

func (s Shape) String() string {
	if s == ShapeFill {
		return "fill"
	}
	return "reduce"
}

// Workload is one generated program in both executable forms.
type Workload struct {
	Seed  uint64
	Shape Shape
	// N is the loop trip count; Init seeds the accumulator.
	N    int64
	Init int64
	// Op is the fold operator: '+' or '*' (both commutative and
	// associative mod 2^64, so SIMD tree reduction is also exact).
	Op byte
	// Body is f(i), the per-iteration expression.
	Body expr
}

// expr is a tiny integer expression tree over the loop variable i. Every
// renderer (MiniID, vn assembly, pure Go) evaluates it with int64
// wraparound semantics, so all machines agree bit-for-bit.
type expr interface {
	eval(i int64) int64
	id() string // MiniID rendering, fully parenthesized, variable "i"
}

type lit int64

func (l lit) eval(int64) int64 { return int64(l) }
func (l lit) id() string       { return fmt.Sprintf("%d", int64(l)) }

type loopVar struct{}

func (loopVar) eval(i int64) int64 { return i }
func (loopVar) id() string         { return "i" }

type bin struct {
	op   byte // '+', '-', '*'
	l, r expr
}

func (b bin) eval(i int64) int64 {
	x, y := b.l.eval(i), b.r.eval(i)
	switch b.op {
	case '+':
		return x + y
	case '-':
		return x - y
	default:
		return x * y
	}
}

func (b bin) id() string {
	return fmt.Sprintf("(%s %c %s)", b.l.id(), b.op, b.r.id())
}

// cond is "if i % mod == rem then thn else els". The guard only ever
// touches the (positive) loop variable, so MiniID %, Go %, and the vn
// div-based remainder sequence agree.
type cond struct {
	mod, rem int64
	thn, els expr
}

func (c cond) eval(i int64) int64 {
	if i%c.mod == c.rem {
		return c.thn.eval(i)
	}
	return c.els.eval(i)
}

func (c cond) id() string {
	return fmt.Sprintf("(if i %% %d == %d then %s else %s)", c.mod, c.rem, c.thn.id(), c.els.id())
}

// Generate derives a workload deterministically from seed.
func Generate(seed uint64) Workload {
	rng := sim.NewRNG(seed*2 + 1) // odd: never collides with the zero-seed remap
	w := Workload{
		Seed: seed,
		N:    int64(2 + rng.Intn(9)), // 2..10 iterations
		Init: int64(rng.Intn(10)),
		Op:   '+',
	}
	if rng.Bool(0.4) {
		w.Shape = ShapeFill
	}
	// Multiplicative folds only for the reduce shape (the fill shape's
	// consume loop is a sum); avoid Init==0 so they are not vacuous.
	if w.Shape == ShapeReduce && rng.Bool(0.3) {
		w.Op = '*'
		if w.Init == 0 {
			w.Init = 1
		}
	}
	w.Body = genExpr(rng, 0)
	return w
}

func genExpr(rng *sim.RNG, depth int) expr {
	if depth >= 3 || rng.Bool(0.35) {
		if rng.Bool(0.55) {
			return loopVar{}
		}
		return lit(rng.Intn(10))
	}
	if rng.Bool(0.25) {
		mod := int64(2 + rng.Intn(3)) // 2..4
		return cond{
			mod: mod,
			rem: int64(rng.Intn(int(mod))),
			thn: genExpr(rng, depth+1),
			els: genExpr(rng, depth+1),
		}
	}
	return bin{
		op: []byte{'+', '-', '*'}[rng.Intn(3)],
		l:  genExpr(rng, depth+1),
		r:  genExpr(rng, depth+1),
	}
}

// Expected folds the workload in pure Go — the reference answer every
// machine must reproduce.
func (w Workload) Expected() int64 {
	s := w.Init
	for i := int64(1); i <= w.N; i++ {
		s = w.fold(s, w.Body.eval(i))
	}
	return s
}

// Terms returns f(1..n), the per-element values a SIMD machine computes
// locally before the reduction.
func (w Workload) Terms() []int64 {
	ts := make([]int64, w.N)
	for i := int64(1); i <= w.N; i++ {
		ts[i-1] = w.Body.eval(i)
	}
	return ts
}

// fold applies the accumulation operator.
func (w Workload) fold(s, v int64) int64 {
	if w.Op == '*' {
		return s * v
	}
	return s + v
}

// IDSource renders the MiniID form. main(n) returns the fold.
func (w Workload) IDSource() string {
	var b strings.Builder
	fmt.Fprintf(&b, "def f(i) = %s;\n", w.Body.id())
	switch w.Shape {
	case ShapeFill:
		fmt.Fprintf(&b, `def main(n) =
  { a = array(n);
    p = (initial z <- 0
         for i from 1 to n do
           a[i - 1] <- f(i);
           new z <- z
         return 0);
    (initial s <- p + %d
     for i from 1 to n do
       new s <- s + a[i - 1]
     return s) };
`, w.Init)
	default:
		fmt.Fprintf(&b, `def main(n) =
  (initial s <- %d
   for i from 1 to n do
     new s <- s %c f(i)
   return s);
`, w.Init, w.Op)
	}
	return b.String()
}

// ASMSource renders the matching vn assembly form. The program is
// self-contained (n is an immediate), stores the answer at ResultAddr,
// and halts; idle cores of a multiprocessor run are parked on the final
// halt instruction.
func (w Workload) ASMSource() string {
	g := &asmGen{}
	switch w.Shape {
	case ShapeFill:
		g.emitFill(w)
	default:
		g.emitReduce(w)
	}
	return g.b.String()
}

// asmGen assembles the text form. Register conventions:
//
//	r1  array base (fill shape)     r5  result address
//	r2  accumulator s               r6  scratch address
//	r3  loop variable i             r7  scratch value
//	r4  n                           r8+ expression stack
type asmGen struct {
	b      strings.Builder
	labels int
	next   int // next free expression-stack register
}

const exprBase = 8

func (g *asmGen) ins(format string, args ...interface{}) {
	fmt.Fprintf(&g.b, "        "+format+"\n", args...)
}

func (g *asmGen) label(name string) { fmt.Fprintf(&g.b, "%s:\n", name) }

func (g *asmGen) fresh(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s%d", prefix, g.labels)
}

// alloc grabs the next expression-stack register.
func (g *asmGen) alloc() int {
	r := exprBase + g.next
	g.next++
	if r >= 32 {
		panic("conformance: expression too deep for the register file")
	}
	return r
}

func (g *asmGen) release() { g.next-- }

// emitExpr evaluates e (with the loop variable in r3) into a fresh
// register and returns its index. The caller releases it.
func (g *asmGen) emitExpr(e expr) int {
	switch e := e.(type) {
	case lit:
		r := g.alloc()
		g.ins("li   r%d, %d", r, int64(e))
		return r
	case loopVar:
		r := g.alloc()
		g.ins("add  r%d, r3, r0", r)
		return r
	case bin:
		rl := g.emitExpr(e.l)
		rr := g.emitExpr(e.r)
		op := map[byte]string{'+': "add", '-': "sub", '*': "mul"}[e.op]
		g.ins("%s  r%d, r%d, r%d", op, rl, rl, rr)
		g.release()
		return rl
	case cond:
		rd := g.alloc()
		rt := g.alloc()
		// rt = i % mod, computed as i - (i/mod)*mod (i ≥ 1, mod ≥ 2).
		g.ins("li   r%d, %d", rt, e.mod)
		g.ins("div  r%d, r3, r%d", rd, rt)
		g.ins("mul  r%d, r%d, r%d", rd, rd, rt)
		g.ins("sub  r%d, r3, r%d", rt, rd)
		g.ins("li   r%d, %d", rd, e.rem)
		els, done := g.fresh("else"), g.fresh("fi")
		g.ins("bne  r%d, r%d, %s", rt, rd, els)
		ra := g.emitExpr(e.thn)
		g.ins("add  r%d, r%d, r0", rd, ra)
		g.release()
		g.ins("j    %s", done)
		g.label(els)
		rb := g.emitExpr(e.els)
		g.ins("add  r%d, r%d, r0", rd, rb)
		g.release()
		g.label(done)
		g.release() // rt
		return rd
	default:
		panic("conformance: unknown expression node")
	}
}

// emitReduce renders the reduce shape: the accumulator round-trips
// through memory every iteration so the program exercises the machine's
// memory system, not just its ALU.
func (g *asmGen) emitReduce(w Workload) {
	op := "add"
	if w.Op == '*' {
		op = "mul"
	}
	g.ins("li   r5, %d", ResultAddr)
	g.ins("li   r4, %d", w.N)
	g.ins("li   r2, %d", w.Init)
	g.ins("st   r2, r5, 0")
	g.ins("li   r3, 1")
	g.label("loop")
	g.ins("blt  r4, r3, done")
	rx := g.emitExpr(w.Body)
	g.ins("ld   r2, r5, 0")
	g.ins("%s  r2, r2, r%d", op, rx)
	g.release()
	g.ins("st   r2, r5, 0")
	g.ins("addi r3, r3, 1")
	g.ins("j    loop")
	g.label("done")
	g.ins("halt")
}

// emitFill renders the fill shape: store f(i) at ArrayBase+i-1, then sum
// the array into ResultAddr.
func (g *asmGen) emitFill(w Workload) {
	g.ins("li   r1, %d", ArrayBase)
	g.ins("li   r5, %d", ResultAddr)
	g.ins("li   r4, %d", w.N)
	g.ins("li   r3, 1")
	g.label("fill")
	g.ins("blt  r4, r3, mid")
	rx := g.emitExpr(w.Body)
	g.ins("add  r6, r1, r3")
	g.ins("st   r%d, r6, -1", rx)
	g.release()
	g.ins("addi r3, r3, 1")
	g.ins("j    fill")
	g.label("mid")
	g.ins("li   r2, %d", w.Init)
	g.ins("li   r3, 1")
	g.label("sum")
	g.ins("blt  r4, r3, done")
	g.ins("add  r6, r1, r3")
	g.ins("ld   r7, r6, -1")
	g.ins("add  r2, r2, r7")
	g.ins("addi r3, r3, 1")
	g.ins("j    sum")
	g.label("done")
	g.ins("st   r2, r5, 0")
	g.ins("halt")
}

// String identifies the workload in failure reports.
func (w Workload) String() string {
	return fmt.Sprintf("seed=%d shape=%s n=%d init=%d op=%c f(i)=%s",
		w.Seed, w.Shape, w.N, w.Init, w.Op, w.Body.id())
}
