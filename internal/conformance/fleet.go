package conformance

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/emulator"
	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/machines/cmmp"
	"repro/internal/machines/cmstar"
	"repro/internal/machines/connection"
	"repro/internal/machines/hep"
	"repro/internal/machines/ultra"
	"repro/internal/machines/vliw"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/vn"
)

// runLimit bounds every simulated run; generated programs are tiny, so
// hitting it means a machine diverged.
const runLimit = 50_000_000

// Snapshot is the full observable state of one machine run, comparable
// with ==. The determinism oracle compares everything including the
// engine counters; the engine-honesty oracle compares only the simulated
// observables (Engine differs between wake-queue and exhaustive modes by
// construction).
type Snapshot struct {
	Result int64
	Cycles uint64
	// Core 0's statistics (the active core on parked-fleet baselines).
	Busy, Idle, MemOps, MemWait, Switches, Retired uint64
	// Extra holds machine-specific counters (bank served, remote refs,
	// combine ops, fired instructions, ...).
	Extra [4]uint64
	// Engine is the scheduler's own accounting.
	Engine sim.Counters
}

// Observables strips the engine counters, leaving only what the
// simulated machine itself produced.
func (s Snapshot) Observables() Snapshot {
	s.Engine = sim.Counters{}
	return s
}

// coreStats flattens a vn core's counters into the snapshot fields.
func coreStats(s *Snapshot, c *vn.Core) {
	st := c.Stats()
	s.Busy = st.Busy.Value()
	s.Idle = st.Idle.Value()
	s.MemOps = st.MemOps.Value()
	s.MemWait = st.MemWait.Value()
	s.Switches = st.Switches.Value()
	s.Retired = st.Retired.Value()
}

// compiled caches the two compiled forms of a workload so every runner
// shares identical inputs.
type compiled struct {
	w    Workload
	prog *graph.Program // dataflow graph (TTDA, emulator, interpreter)
	asm  *vn.Program    // vn machine code (all Section-1.2 baselines)
	args []token.Value  // entry tokens for the dataflow forms
}

func compile(w Workload) (*compiled, error) {
	prog, err := id.Compile(w.IDSource())
	if err != nil {
		return nil, fmt.Errorf("compile ID form: %v", err)
	}
	args, err := id.EntryArgs(prog, []token.Value{token.Int(w.N)})
	if err != nil {
		return nil, fmt.Errorf("entry args: %v", err)
	}
	asm, err := vn.Assemble(w.ASMSource())
	if err != nil {
		return nil, fmt.Errorf("assemble vn form: %v", err)
	}
	return &compiled{w: w, prog: prog, asm: asm, args: args}, nil
}

// runInterp executes the reference interpreter and returns the answer
// plus the interpreter (for Depth/S∞).
func runInterp(c *compiled) (int64, *graph.Interp, error) {
	it := graph.NewInterp(c.prog)
	res, err := it.Run(c.args...)
	if err != nil {
		return 0, nil, err
	}
	if len(res) != 1 {
		return 0, nil, fmt.Errorf("interp: %d results", len(res))
	}
	v, err := res[0].AsInt()
	return v, it, err
}

// forceLegacy registers an inert non-EventAware component, flipping the
// engine into its exhaustive per-cycle fallback — the engine-honesty
// oracle's second arm. It accepts any driver with Register so machines
// that expose sim.Driver work too; only sequential engines are ever
// forced (the parallel engine requires EventAware components).
func forceLegacy(e interface{ Register(sim.Component) }) {
	e.Register(sim.ComponentFunc(func(sim.Cycle) {}))
}

// runTTDA executes the dataflow graph on the cycle-accurate tagged-token
// machine. shards > 1 selects the conservative parallel kernel (never
// combined with legacy, which requires the sequential engine); window sets
// the parallel kernel's epoch window width (0/1 per-tick, >= 2 capped, < 0
// adaptive — meaningful only with shards > 1); compiledPlan selects the
// ahead-of-time compiled dispatch core, which the compiled-equivalence
// oracle pins against the interpreted core.
func runTTDA(c *compiled, pes int, netLatency sim.Cycle, legacy bool, shards, window int, compiledPlan bool) (Snapshot, error) {
	m := core.NewMachine(core.Config{PEs: pes, NetLatency: netLatency, Shards: shards, EpochWindow: window, Compiled: compiledPlan}, c.prog)
	if legacy {
		forceLegacy(m.Engine())
	}
	res, err := m.Run(runLimit, c.args...)
	if err != nil {
		return Snapshot{}, err
	}
	if len(res) != 1 {
		return Snapshot{}, fmt.Errorf("ttda: %d results", len(res))
	}
	v, err := res[0].AsInt()
	if err != nil {
		return Snapshot{}, err
	}
	sum := m.Summarize()
	return Snapshot{
		Result: v,
		Cycles: sum.Cycles,
		Extra:  [4]uint64{sum.Fired, sum.Matches, sum.NetSends, sum.ISReads + sum.ISWrites},
		Engine: m.Engine().Counters(),
	}, nil
}

// runEmulator executes the graph on the hypercube emulation facility.
// The facility is untimed and internally concurrent, so only its answer
// participates in the oracles.
func runEmulator(c *compiled, nodes int) (int64, error) {
	f, err := emulator.Build(emulator.Config{Nodes: nodes}, c.prog)
	if err != nil {
		return 0, err
	}
	res, err := f.Run(c.args...)
	if err != nil {
		return 0, err
	}
	if len(res) != 1 {
		return 0, fmt.Errorf("emulator: %d results", len(res))
	}
	return res[0].AsInt()
}

// runVN executes the asm form on a single vn core over LatencyMemory,
// either through the wake-queue engine or the plain exhaustive
// scheduler (evented=false) — the same pairing the per-package property
// tests use.
func runVN(c *compiled, contexts int, latency sim.Cycle, evented bool) (Snapshot, error) {
	mem := vn.NewLatencyMemory(latency)
	cpu := vn.NewCore(c.asm, mem, contexts)
	halted := func() bool { return cpu.Halted() && mem.Pending() == 0 }

	var s Snapshot
	if evented {
		eng := sim.NewEngine()
		eng.Register(mem)
		eng.Register(cpu)
		elapsed, ok := eng.Run(halted, runLimit)
		if !ok {
			return s, fmt.Errorf("vn: no halt in %d cycles", runLimit)
		}
		s.Cycles = uint64(elapsed)
		s.Engine = eng.Counters()
	} else {
		sch := sim.NewScheduler()
		sch.Register(mem)
		sch.Register(cpu)
		elapsed, ok := sch.Run(halted, runLimit)
		if !ok {
			return s, fmt.Errorf("vn: no halt in %d cycles", runLimit)
		}
		s.Cycles = uint64(elapsed)
	}
	s.Result = int64(mem.Peek(ResultAddr))
	coreStats(&s, cpu)
	return s, nil
}

// park points every context of cores [1, total) at the trailing halt
// instruction, leaving core 0 to run the program alone — the idiom the
// experiments use for single-stream runs on multiprocessor models.
func park(total, contexts int, coreAt func(int) *vn.Core, prog *vn.Program) {
	last := len(prog.Instrs) - 1
	for i := 1; i < total; i++ {
		for k := 0; k < contexts; k++ {
			coreAt(i).Context(k).SetPC(last)
		}
	}
}

// runCmmp executes the asm form on core 0 of a 2-processor C.mmp.
func runCmmp(c *compiled, switchDelay sim.Cycle, legacy bool, shards int) (Snapshot, error) {
	m := cmmp.New(cmmp.Config{Processors: 2, Banks: 2, SwitchDelay: switchDelay, Shards: shards}, c.asm, 1)
	park(2, 1, m.Core, c.asm)
	if legacy {
		forceLegacy(m.Engine())
	}
	elapsed, err := m.Run(runLimit)
	if err != nil {
		return Snapshot{}, err
	}
	s := Snapshot{
		Result: int64(m.Peek(ResultAddr)),
		Cycles: uint64(elapsed),
		Extra:  [4]uint64{m.Crossbar().Stats().Delivered.Value()},
		Engine: m.Engine().Counters(),
	}
	coreStats(&s, m.Core(0))
	return s, nil
}

// cmstarConfig keeps the cluster space tight so both ResultAddr and the
// fill array land in clusters remote from core 0 — remote references are
// what give HopLatency leverage.
func cmstarConfig(hopLatency sim.Cycle) cmstar.Config {
	return cmstar.Config{Clusters: 8, CoresPerCluster: 1, ClusterWords: 32, HopLatency: hopLatency}
}

// runCmstar executes the asm form on core 0 of cluster 0 of an 8-cluster
// Cm*; all data addresses are inter-cluster references.
func runCmstar(c *compiled, hopLatency sim.Cycle, legacy bool, shards int) (Snapshot, error) {
	cfg := cmstarConfig(hopLatency)
	cfg.Shards = shards
	m := cmstar.New(cfg, c.asm)
	park(m.NumCores(), 1, m.CoreAt, c.asm)
	if legacy {
		forceLegacy(m.Engine())
	}
	elapsed, err := m.Run(runLimit)
	if err != nil {
		return Snapshot{}, err
	}
	s := Snapshot{
		Result: int64(m.Peek(ResultAddr)),
		Cycles: uint64(elapsed),
		Extra:  [4]uint64{m.Stats().LocalRefs.Value(), m.Stats().RemoteRefs.Value()},
		Engine: m.Engine().Counters(),
	}
	coreStats(&s, m.CoreAt(0))
	return s, nil
}

// runUltra executes the asm form on core 0 of a 4-processor
// Ultracomputer.
func runUltra(c *compiled, combining, legacy bool, shards int) (Snapshot, error) {
	m := ultra.New(ultra.Config{LogProcessors: 2, Combining: combining, Shards: shards}, c.asm)
	park(m.NumProcessors(), 1, m.Core, c.asm)
	if legacy {
		forceLegacy(m.Engine())
	}
	elapsed, err := m.Run(runLimit)
	if err != nil {
		return Snapshot{}, err
	}
	s := Snapshot{
		Result: int64(m.Peek(ResultAddr)),
		Cycles: uint64(elapsed),
		Extra:  [4]uint64{m.BankServed(0), m.Network().CombineOps.Value()},
		Engine: m.Engine().Counters(),
	}
	coreStats(&s, m.Core(0))
	return s, nil
}

// runHEP executes the asm form on core 0 of a 2-processor HEP with two
// hardware contexts; both contexts of core 0 run the identical program
// (the fold is idempotent across streams), exercising the full/empty
// memory's retry path.
func runHEP(c *compiled, legacy bool, shards int) (Snapshot, error) {
	m := hep.New(hep.Config{Processors: 2, ContextsPerCore: 1, MemLatency: 4, Shards: shards}, c.asm)
	park(2, 1, m.Core, c.asm)
	if legacy {
		forceLegacy(m.Engine())
	}
	elapsed, err := m.Run(runLimit)
	if err != nil {
		return Snapshot{}, err
	}
	s := Snapshot{
		Result: int64(m.Memory().Peek(ResultAddr)),
		Cycles: uint64(elapsed),
		Engine: m.Engine().Counters(),
	}
	coreStats(&s, m.Core(0))
	return s, nil
}

// runConnection folds the workload on the Connection Machine model: each
// cell computes f(pe) locally (one broadcast compute instruction), then a
// routing instruction delivers every term to cell 0, which folds them as
// they arrive — exact because the fold operator is commutative and
// associative mod 2^64.
func runConnection(c *compiled) (int64, sim.Cycle, error) {
	m := connection.New(connection.Config{LogPEs: 4}, 1)
	w := c.w
	m.Compute(func(pe int, mem []int64) {
		if pe >= 1 && pe <= int(w.N) {
			mem[0] = w.Body.eval(int64(pe))
		}
	})
	msgs := make([]connection.Message, 0, w.N)
	for pe := 1; pe <= int(w.N); pe++ {
		msgs = append(msgs, connection.Message{From: pe, To: 0, Value: m.Mem(pe)[0]})
	}
	acc := w.Init
	steps := m.Route(msgs, func(to int, v int64) { acc = w.fold(acc, v) })
	return acc, steps, nil
}

// vliwSchedule derives a static schedule from the workload: one bundle
// chain per iteration, a memory reference where the asm form touches
// memory. The VLIW model computes no data values, so it participates
// only in the determinism and metamorphic oracles.
func vliwSchedule(w Workload) []vliw.Bundle {
	perIter := 3
	if w.Shape == ShapeFill {
		perIter = 5
	}
	sched := make([]vliw.Bundle, 0, int(w.N)*perIter)
	for i := int64(0); i < w.N; i++ {
		for b := 0; b < perIter; b++ {
			bu := vliw.Bundle{Ops: 2}
			if b == 0 {
				bu.Loads = []vliw.Load{{Slack: int(i % 3)}}
			}
			sched = append(sched, bu)
		}
	}
	return sched
}

// runVLIW plays the derived schedule against a stochastic memory.
func runVLIW(w Workload, missLatency sim.Cycle) vliw.Result {
	return vliw.Run(vliwSchedule(w), vliw.Config{
		HitLatency:  1,
		MissLatency: missLatency,
		MissRate:    0.3,
		Seed:        w.Seed + 1,
	})
}
