// Package vn is the von Neumann substrate the paper critiques: a small
// load/store ISA, a text assembler, and cycle-stepped processor cores in
// two flavors — the classic blocking core (one outstanding memory request,
// idles on latency) and a k-context multithreaded core that switches
// contexts on memory operations (the low-level context switching of
// Section 1.1, and the Denelcor HEP style). The baseline machines of
// Section 1.2 are assembled from these cores plus the internal/network
// fabrics.
package vn

import "fmt"

// Word is the machine word.
type Word = int64

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	NOP Op = iota
	HALT
	LI  // li rd, imm
	ADD // add rd, rs, rt
	SUB
	MUL
	DIV
	AND
	OR
	XOR
	SLT  // rd = rs < rt
	SLE  // rd = rs <= rt
	SEQ  // rd = rs == rt
	ADDI // addi rd, rs, imm
	LD   // ld rd, rs, offset     (rd = mem[rs+offset])
	ST   // st rs2, rs1, offset   (mem[rs1+offset] = rs2)
	BEQ  // beq rs, rt, label
	BNE
	BLT
	BGE
	J   // j label
	JAL // jal rd, label          (rd = return pc)
	JR  // jr rs
	FAA // faa rd, rs, rt         (rd = mem[rs]; mem[rs] += rt, atomically)
	TAS // tas rd, rs             (rd = mem[rs]; mem[rs] = 1, atomically)
	// HEP-style full/empty synchronization (Denelcor HEP; paper footnote
	// 2). Both retry in hardware until satisfiable — busy-waiting at the
	// memory, visible as wasted bank cycles.
	CNS // cns rd, rs             (wait until mem[rs] full; rd = mem[rs]; set empty)
	PRD // prd rt, rs             (wait until mem[rs] empty; mem[rs] = rt; set full)
	opCount
)

var opNames = [...]string{
	NOP: "nop", HALT: "halt", LI: "li", ADD: "add", SUB: "sub", MUL: "mul",
	DIV: "div", AND: "and", OR: "or", XOR: "xor", SLT: "slt", SLE: "sle",
	SEQ: "seq", ADDI: "addi", LD: "ld", ST: "st", BEQ: "beq", BNE: "bne",
	BLT: "blt", BGE: "bge", J: "j", JAL: "jal", JR: "jr", FAA: "faa", TAS: "tas",
	CNS: "cns", PRD: "prd",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMemOp reports whether the opcode touches data memory.
func (o Op) IsMemOp() bool {
	switch o {
	case LD, ST, FAA, TAS, CNS, PRD:
		return true
	}
	return false
}

// Instr is one decoded instruction.
type Instr struct {
	Op         Op
	Rd, Rs, Rt uint8
	Imm        Word // immediate, memory offset, or branch/jump target pc
}

func (i Instr) String() string {
	switch i.Op {
	case NOP, HALT:
		return i.Op.String()
	case LI:
		return fmt.Sprintf("li r%d, %d", i.Rd, i.Imm)
	case ADDI:
		return fmt.Sprintf("addi r%d, r%d, %d", i.Rd, i.Rs, i.Imm)
	case LD:
		return fmt.Sprintf("ld r%d, r%d, %d", i.Rd, i.Rs, i.Imm)
	case ST:
		return fmt.Sprintf("st r%d, r%d, %d", i.Rt, i.Rs, i.Imm)
	case BEQ, BNE, BLT, BGE:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rs, i.Rt, i.Imm)
	case J:
		return fmt.Sprintf("j %d", i.Imm)
	case JAL:
		return fmt.Sprintf("jal r%d, %d", i.Rd, i.Imm)
	case JR:
		return fmt.Sprintf("jr r%d", i.Rs)
	case FAA:
		return fmt.Sprintf("faa r%d, r%d, r%d", i.Rd, i.Rs, i.Rt)
	case TAS:
		return fmt.Sprintf("tas r%d, r%d", i.Rd, i.Rs)
	case CNS:
		return fmt.Sprintf("cns r%d, r%d", i.Rd, i.Rs)
	case PRD:
		return fmt.Sprintf("prd r%d, r%d", i.Rt, i.Rs)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs, i.Rt)
	}
}

// NumRegs is the architectural register count; r0 is hardwired to zero.
const NumRegs = 32

// Program is an assembled instruction sequence.
type Program struct {
	Instrs []Instr
	Labels map[string]int
}
