package vn

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/simtest"
)

// These property tests pin the contract that makes the event-driven
// sim.Engine trustworthy: for any program, running the very same core and
// memory under exhaustive per-cycle stepping (sim.Scheduler.Run) and under
// evented execution (sim.Engine.Run) must produce identical cycle counts
// and statistics. A component whose NextEvent lies — reporting a later
// cycle than the one where it would actually act, or failing to settle
// gauge samples across a jump — shows up here as a divergence.

// randomProgram emits a bounded loop whose body is a random mix of ALU and
// memory operations. r1 holds the (never-written) memory base, r4 the loop
// counter; the body writes only scratch registers r2/r3/r5/r6 so addresses
// stay non-negative and the loop always terminates.
func randomProgram(rng *sim.RNG) string {
	var b strings.Builder
	scratch := func() int { return []int{2, 3, 5, 6}[rng.Intn(4)] }
	src := func() int { return rng.Intn(7) } // r0..r6
	alu := []string{"add", "sub", "mul", "and", "or", "xor", "slt", "sle", "seq"}
	b.WriteString("loop:\n")
	body := 2 + rng.Intn(6)
	for i := 0; i < body; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2:
			fmt.Fprintf(&b, "  %s r%d, r%d, r%d\n", alu[rng.Intn(len(alu))], scratch(), src(), src())
		case 3:
			fmt.Fprintf(&b, "  addi r%d, r%d, %d\n", scratch(), src(), rng.Intn(32)-8)
		case 4, 5:
			fmt.Fprintf(&b, "  ld r%d, r1, %d\n", scratch(), rng.Intn(16))
		case 6, 7:
			fmt.Fprintf(&b, "  st r%d, r1, %d\n", src(), rng.Intn(16))
		case 8:
			fmt.Fprintf(&b, "  faa r%d, r1, r%d\n", scratch(), src())
		default:
			fmt.Fprintf(&b, "  tas r%d, r1\n", scratch())
		}
	}
	b.WriteString("  addi r4, r4, -1\n")
	b.WriteString("  bne r4, r0, loop\n")
	b.WriteString("  halt\n")
	return b.String()
}

// vnOutcome is everything observable about a run; it must be identical
// under exhaustive and evented execution.
type vnOutcome struct {
	elapsed  sim.Cycle
	ok       bool
	busy     uint64
	idle     uint64
	memOps   uint64
	memWait  uint64
	switches uint64
	retired  uint64
	served   uint64
	qMax     int64
	qMean    float64
	checksum Word
}

func runVNOnce(t *testing.T, src string, contexts, iters int, latency, service sim.Cycle, evented bool) vnOutcome {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v\nprogram:\n%s", err, src)
	}
	mem := NewBankedMemory(latency, service)
	c := NewCore(prog, mem, contexts)
	for i := 0; i < contexts; i++ {
		// Contexts share banks (and sometimes cells) to exercise queuing.
		c.Context(i).SetReg(1, Word(32*(i%3)))
		c.Context(i).SetReg(4, Word(iters))
	}
	done := func() bool { return c.Halted() && mem.Pending() == 0 }
	var elapsed sim.Cycle
	var ok bool
	const limit = 5_000_000
	if evented {
		eng := sim.NewEngine()
		eng.Register(mem)
		eng.Register(c)
		elapsed, ok = eng.Run(done, limit)
	} else {
		sch := sim.NewScheduler()
		sch.Register(mem)
		sch.Register(c)
		elapsed, ok = sch.Run(done, limit)
	}
	var sum Word
	for a := uint32(0); a < 128; a++ {
		sum = sum*31 + mem.Peek(a)
	}
	s := c.Stats()
	return vnOutcome{
		elapsed:  elapsed,
		ok:       ok,
		busy:     s.Busy.Value(),
		idle:     s.Idle.Value(),
		memOps:   s.MemOps.Value(),
		memWait:  s.MemWait.Value(),
		switches: s.Switches.Value(),
		retired:  s.Retired.Value(),
		served:   mem.Served.Value(),
		qMax:     mem.QueueLen.Max(),
		qMean:    mem.QueueLen.Mean(),
		checksum: sum,
	}
}

// runVNSkipping mirrors runVNOnce under exhaustive stepping, but wraps the
// memory and the core in simtest.IdleSkipper so any Step a component's own
// NextEvent declares idle is suppressed instead of executed. It returns
// the outcome plus the number of suppressed Steps.
func runVNSkipping(t *testing.T, src string, contexts, iters int, latency, service sim.Cycle) (vnOutcome, uint64) {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v\nprogram:\n%s", err, src)
	}
	mem := NewBankedMemory(latency, service)
	c := NewCore(prog, mem, contexts)
	for i := 0; i < contexts; i++ {
		c.Context(i).SetReg(1, Word(32*(i%3)))
		c.Context(i).SetReg(4, Word(iters))
	}
	skipMem := simtest.NewIdleSkipper(mem)
	skipCore := simtest.NewIdleSkipper(c)
	sch := sim.NewScheduler()
	sch.Register(skipMem)
	sch.Register(skipCore)
	elapsed, ok := sch.Run(func() bool { return c.Halted() && mem.Pending() == 0 }, 5_000_000)
	// The plain Scheduler never settles; account the trailing skipped
	// cycles the way sim.Engine.Run does on exit.
	skipMem.Settle(sch.Now())
	skipCore.Settle(sch.Now())
	var sum Word
	for a := uint32(0); a < 128; a++ {
		sum = sum*31 + mem.Peek(a)
	}
	s := c.Stats()
	return vnOutcome{
		elapsed:  elapsed,
		ok:       ok,
		busy:     s.Busy.Value(),
		idle:     s.Idle.Value(),
		memOps:   s.MemOps.Value(),
		memWait:  s.MemWait.Value(),
		switches: s.Switches.Value(),
		retired:  s.Retired.Value(),
		served:   mem.Served.Value(),
		qMax:     mem.QueueLen.Max(),
		qMean:    mem.QueueLen.Mean(),
		checksum: sum,
	}, skipMem.Skipped + skipCore.Skipped
}

// TestIdleStepIsANoOp pins the second half of the honesty contract on
// random vn programs: suppressing every Step a component's NextEvent
// declares idle must leave every observable bit-identical. This is the
// property the wake-queue engine leans on — components it never enqueues
// are components whose Step it may soundly never call.
func TestIdleStepIsANoOp(t *testing.T) {
	var totalSkipped uint64
	for seed := uint64(0); seed < 25; seed++ {
		rng := sim.NewRNG(0x51caffe + seed)
		src := randomProgram(rng)
		contexts := 1 + rng.Intn(6)
		iters := 3 + rng.Intn(30)
		latency := sim.Cycle(1 + rng.Intn(80))
		service := sim.Cycle(1 + rng.Intn(4))
		exhaustive := runVNOnce(t, src, contexts, iters, latency, service, false)
		skipping, skipped := runVNSkipping(t, src, contexts, iters, latency, service)
		if !exhaustive.ok {
			t.Fatalf("seed %d: exhaustive run hit the cycle limit\nprogram:\n%s", seed, src)
		}
		if exhaustive != skipping {
			t.Errorf("seed %d (contexts=%d iters=%d latency=%d service=%d): an idle Step was not a no-op\nexhaustive: %+v\nskipping:   %+v\nprogram:\n%s",
				seed, contexts, iters, latency, service, exhaustive, skipping, src)
		}
		totalSkipped += skipped
	}
	if totalSkipped == 0 {
		t.Fatal("no Step was ever suppressed: the property was tested vacuously")
	}
}

// TestEngineMatchesExhaustiveOnRandomPrograms is the NextEvent honesty
// check for the vn pipeline: random programs, context counts, and memory
// timings, each run twice. Any divergence means some NextEvent promised
// idleness the component didn't keep, or a Settle path mis-accounted a
// jumped-over gap.
func TestEngineMatchesExhaustiveOnRandomPrograms(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := sim.NewRNG(0x9e3779b9 + seed)
		src := randomProgram(rng)
		contexts := 1 + rng.Intn(6)
		iters := 3 + rng.Intn(40)
		latency := sim.Cycle(1 + rng.Intn(50))
		service := sim.Cycle(1 + rng.Intn(4)) // >1 exercises bank queuing
		exhaustive := runVNOnce(t, src, contexts, iters, latency, service, false)
		evented := runVNOnce(t, src, contexts, iters, latency, service, true)
		if !exhaustive.ok {
			t.Fatalf("seed %d: exhaustive run hit the cycle limit\nprogram:\n%s", seed, src)
		}
		if exhaustive != evented {
			t.Errorf("seed %d (contexts=%d iters=%d latency=%d service=%d): evented run diverged\nexhaustive: %+v\nevented:    %+v\nprogram:\n%s",
				seed, contexts, iters, latency, service, exhaustive, evented, src)
		}
	}
}

// TestEngineMatchesExhaustiveSingleContextBlocking pins the degenerate
// case the paper's Issue 1 leans on — a blocking single-context core where
// nearly every cycle is a memory-wait the engine should jump over.
func TestEngineMatchesExhaustiveSingleContextBlocking(t *testing.T) {
	src := `
loop:
  ld r2, r1, 0
  add r3, r3, r2
  st r3, r1, 1
  addi r4, r4, -1
  bne r4, r0, loop
  halt
`
	for _, latency := range []sim.Cycle{1, 7, 64, 300} {
		exhaustive := runVNOnce(t, src, 1, 25, latency, 2, false)
		evented := runVNOnce(t, src, 1, 25, latency, 2, true)
		if exhaustive != evented {
			t.Errorf("latency %d: evented run diverged\nexhaustive: %+v\nevented:    %+v",
				latency, exhaustive, evented)
		}
	}
}
