package vn

import "repro/internal/sim"

// Checkpoint serialization for the von Neumann substrate. Programs are
// static structure and never serialized: state restores into a freshly
// constructed core/memory built over the identical program and
// configuration. In-flight memory requests serialize their DoneRef; the
// restoring machine's DoneResolver rebinds them to live callbacks.

// SaveDoneRef appends a continuation name.
func SaveDoneRef(e *sim.Enc, ref DoneRef) {
	e.U32(ref.Kind)
	e.U32(ref.A)
	e.U64(ref.B)
}

// LoadDoneRef reads a continuation name.
func LoadDoneRef(d *sim.Dec) DoneRef {
	return DoneRef{Kind: d.U32(), A: d.U32(), B: d.U64()}
}

// MustResolve returns the live callback for ref, poisoning the decoder
// when a non-none ref cannot be resolved.
func MustResolve(d *sim.Dec, resolve DoneResolver, ref DoneRef) func(Word) {
	if ref.Kind == DoneRefNone {
		return nil
	}
	var f func(Word)
	if resolve != nil {
		f = resolve(ref)
	}
	if f == nil {
		d.Failf("unresolvable done ref kind=%d a=%d b=%d", ref.Kind, ref.A, ref.B)
	}
	return f
}

// SaveMemRequest appends r without its callback (Ref carries identity).
func SaveMemRequest(e *sim.Enc, r MemRequest) {
	e.U8(uint8(r.Op))
	e.U32(r.Addr)
	e.I64(r.Value)
	SaveDoneRef(e, r.Ref)
}

// LoadMemRequest reads a request and rebinds its callback through
// resolve; an unresolvable non-none ref poisons the decoder.
func LoadMemRequest(d *sim.Dec, resolve DoneResolver) MemRequest {
	var r MemRequest
	r.Op = MemOp(d.U8())
	r.Addr = d.U32()
	r.Value = d.I64()
	r.Ref = LoadDoneRef(d)
	if d.Err() != nil {
		return r
	}
	if r.Op > MemProduce {
		d.Failf("invalid memory op %d", r.Op)
		return r
	}
	r.Done = MustResolve(d, resolve, r.Ref)
	return r
}

// SaveState appends the core's dynamic state (registers, pcs, waiting
// bits, round-robin pointer, statistics, settlement markers).
func (c *Core) SaveState(e *sim.Enc) {
	e.Tag("vncore", 1)
	e.Int(c.next)
	e.Cycle(c.settled)
	e.U64(c.frozenWaiting)
	e.Bool(c.frozenIdle)
	c.stats.Busy.Save(e)
	c.stats.Idle.Save(e)
	c.stats.MemOps.Save(e)
	c.stats.MemWait.Save(e)
	c.stats.Switches.Save(e)
	c.stats.Retired.Save(e)
	e.Len(len(c.ctxs))
	for _, ctx := range c.ctxs {
		for _, r := range ctx.regs {
			e.I64(r)
		}
		e.Int(ctx.pc)
		e.Bool(ctx.waiting)
		e.Bool(ctx.halted)
		e.U8(ctx.pendingRd)
	}
}

// LoadState restores the core's dynamic state (sim.Stateful).
func (c *Core) LoadState(d *sim.Dec) error {
	if err := d.Tag("vncore", 1); err != nil {
		return err
	}
	c.next = d.Int()
	c.settled = d.Cycle()
	c.frozenWaiting = d.U64()
	c.frozenIdle = d.Bool()
	c.stats.Busy.Load(d)
	c.stats.Idle.Load(d)
	c.stats.MemOps.Load(d)
	c.stats.MemWait.Load(d)
	c.stats.Switches.Load(d)
	c.stats.Retired.Load(d)
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(c.ctxs) {
		d.Failf("core has %d contexts, machine has %d", n, len(c.ctxs))
		return d.Err()
	}
	for _, ctx := range c.ctxs {
		for i := range ctx.regs {
			ctx.regs[i] = d.I64()
		}
		ctx.pc = d.Int()
		ctx.waiting = d.Bool()
		ctx.halted = d.Bool()
		ctx.pendingRd = d.U8()
	}
	if d.Err() == nil {
		if k := c.next; k < 0 || k >= len(c.ctxs) {
			d.Failf("round-robin pointer %d out of range", k)
		}
	}
	return d.Err()
}

// saveBacking writes the word store in sorted address order.
func saveBacking(e *sim.Enc, b *backing) {
	sim.SaveU32Map(e, b.words, func(e *sim.Enc, w Word) { e.I64(w) })
}

func loadBacking(d *sim.Dec, b *backing) {
	sim.LoadU32Map(d, b.words, func(d *sim.Dec) Word { return d.I64() })
}

// SaveTo appends the memory's dynamic state: the word store and the
// in-flight request pipeline.
func (m *LatencyMemory) SaveTo(e *sim.Enc) {
	e.Tag("latmem", 1)
	saveBacking(e, m.store)
	e.Cycle(m.now)
	e.Int(m.pending)
	sim.SaveFIFO(e, &m.due, func(e *sim.Enc, dr dueReq) {
		e.Cycle(dr.at)
		SaveMemRequest(e, dr.r)
	})
}

// LoadFrom restores the memory, rebinding in-flight callbacks through
// resolve.
func (m *LatencyMemory) LoadFrom(d *sim.Dec, resolve DoneResolver) error {
	if err := d.Tag("latmem", 1); err != nil {
		return err
	}
	loadBacking(d, m.store)
	m.now = d.Cycle()
	m.pending = d.Int()
	return sim.LoadFIFO(d, &m.due, d.Remaining(), func(d *sim.Dec) dueReq {
		return dueReq{at: d.Cycle(), r: LoadMemRequest(d, resolve)}
	})
}

// SaveTo appends the bank's dynamic state.
func (m *BankedMemory) SaveTo(e *sim.Enc) {
	e.Tag("bankmem", 1)
	saveBacking(e, m.store)
	e.Cycle(m.busyUntil)
	e.Int(m.pending)
	e.Cycle(m.settled)
	m.QueueLen.Save(e)
	m.Served.Save(e)
	sim.SaveFIFO(e, &m.queue, SaveMemRequest)
	sim.SaveFIFO(e, &m.due, func(e *sim.Enc, dc dueCompleted) {
		e.Cycle(dc.at)
		SaveMemRequest(e, dc.c.r)
		e.I64(dc.c.v)
	})
}

// LoadFrom restores the bank, rebinding in-flight callbacks through
// resolve.
func (m *BankedMemory) LoadFrom(d *sim.Dec, resolve DoneResolver) error {
	if err := d.Tag("bankmem", 1); err != nil {
		return err
	}
	loadBacking(d, m.store)
	m.busyUntil = d.Cycle()
	m.pending = d.Int()
	m.settled = d.Cycle()
	m.QueueLen.Load(d)
	m.Served.Load(d)
	if err := sim.LoadFIFO(d, &m.queue, d.Remaining(), func(d *sim.Dec) MemRequest {
		return LoadMemRequest(d, resolve)
	}); err != nil {
		return err
	}
	return sim.LoadFIFO(d, &m.due, d.Remaining(), func(d *sim.Dec) dueCompleted {
		dc := dueCompleted{at: d.Cycle()}
		dc.c.r = LoadMemRequest(d, resolve)
		dc.c.v = d.I64()
		return dc
	})
}
