package vn

import (
	"repro/internal/network"
	"repro/internal/sim"
)

// This file adapts vn cores to the conservative parallel simulation
// kernel (sim.ParallelEngine). Every Section-1.2 multiprocessor model
// (C.mmp, Cm*, the Ultracomputer, HEP) has the same shape: a serial
// memory system — crossbar, omega network, buses, banks — plus an array
// of cores whose only cross-component effect is MemPort.Request. That
// makes the cores trivially shardable: a core's Step touches nothing but
// its own registers and statistics, so contiguous spans of cores can run
// concurrently as long as their memory requests are deferred to the
// commit barrier and replayed in ascending core order — exactly the order
// the sequential engine issues them, which keeps the run bit-identical.
//
// Memory completions (ctx.done) fire inside serial components' steps or
// the commit drain, both serial contexts; the MemberWaker attached to
// each core redirects the resulting wake to the owning shard runner.

// CoreShard runs a contiguous span of cores as one parallel-kernel shard
// runner. It steps every core in ascending order — stepping a parked core
// is statistically identical to settling it lazily (parked cycles are
// activity-free), so no per-core due bookkeeping is needed.
type CoreShard struct {
	cores []*Core
	ops   []deferredReq
}

type deferredReq struct {
	port MemPort
	req  MemRequest
}

// deferringPort interposes on a core's memory port: requests issued
// during the parallel phase append to the owning shard's log instead of
// touching the shared memory system.
type deferringPort struct {
	under MemPort
	sh    *CoreShard
}

func (p *deferringPort) Request(r MemRequest) {
	p.sh.ops = append(p.sh.ops, deferredReq{port: p.under, req: r})
}

// Step advances every core in the span one cycle, in ascending order.
func (sh *CoreShard) Step(now sim.Cycle) {
	for _, c := range sh.cores {
		c.Step(now)
	}
}

// NextEvent reports the earliest cycle any core in the span can act.
func (sh *CoreShard) NextEvent(now sim.Cycle) sim.Cycle {
	next := sim.Never
	for _, c := range sh.cores {
		if t := c.NextEvent(now); t < next {
			next = t
		}
	}
	return next
}

// Settle forwards engine settlement to every core in the span: a wake
// aimed at one member settles the whole shard, which is harmless — the
// other cores are between steps, so their frozen state is exactly what
// per-cycle stepping would observe.
func (sh *CoreShard) Settle(through sim.Cycle) {
	for _, c := range sh.cores {
		c.settleThrough(through)
	}
}

// ShardCores partitions cores into contiguous spans registered as shard
// runners on par, interposes the deferring memory port on every core, and
// installs the commit hook that replays deferred requests in ascending
// shard (= ascending core) order. Call it after every serial component is
// registered. lookahead is the memory system's declared cross-shard
// latency (network.Lookaheader; pass 1 for a fabric that declares none):
// the deferred-commit protocol is only sound when a request issued at
// cycle t cannot complete before t+1, so the plan rejects lookahead < 1.
// The machine's real memory ports must tolerate being called from the
// commit phase, which every sim-aware port does: Wake and SlotNow are
// legal there and carry the same slot semantics a mid-step sequential
// call sees.
func ShardCores(par *sim.ParallelEngine, cores []*Core, shards int, lookahead sim.Cycle) []*CoreShard {
	spans, err := sim.PlanShardsLookahead(len(cores), shards, lookahead)
	if err != nil {
		panic(err)
	}
	out := make([]*CoreShard, 0, len(spans))
	for _, sp := range spans {
		sh := &CoreShard{cores: cores[sp.Lo:sp.Hi]}
		for _, c := range sh.cores {
			c.mem = &deferringPort{under: c.mem, sh: sh}
			c.Attach(sim.MemberWaker{Eng: par, Runner: sh})
		}
		par.RegisterShard(sh)
		out = append(out, sh)
	}
	par.OnCommit(func(now sim.Cycle) {
		for _, sh := range out {
			ops := sh.ops
			sh.ops = ops[:0]
			for i := range ops {
				ops[i].port.Request(ops[i].req)
				ops[i] = deferredReq{}
			}
		}
	})
	return out
}

// FabricLookahead extracts a memory system's declared cross-shard latency
// for ShardCores: the fabric's Lookahead when it declares one, otherwise
// the 1-cycle floor every vn memory path honours (no request issued at
// cycle t completes before t+1 — completions fire from serial steps of
// later cycles or from the commit drain).
func FabricLookahead(fabric any) sim.Cycle {
	if lh, ok := fabric.(network.Lookaheader); ok {
		if la := lh.Lookahead(); la > 1 {
			return la
		}
	}
	return 1
}

var (
	_ sim.Component  = (*CoreShard)(nil)
	_ sim.EventAware = (*CoreShard)(nil)
	_ sim.Settler    = (*CoreShard)(nil)
)
