package vn

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates assembly text into a Program. Syntax, one statement
// per line:
//
//	# comment, or ; comment
//	label:
//	  li   rd, imm
//	  add  rd, rs, rt          (likewise sub mul div and or xor slt sle seq)
//	  addi rd, rs, imm
//	  ld   rd, rs, offset
//	  st   rs2, rs1, offset
//	  beq  rs, rt, label       (likewise bne blt bge)
//	  j    label
//	  jal  rd, label
//	  jr   rs
//	  faa  rd, rs, rt
//	  tas  rd, rs
//	  nop / halt
func Assemble(src string) (*Program, error) {
	type pending struct {
		instr int
		label string
		line  int
	}
	p := &Program{Labels: map[string]int{}}
	var fixups []pending

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for strings.Contains(line, ":") {
			i := strings.Index(line, ":")
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t,") {
				return nil, fmt.Errorf("vn: line %d: bad label %q", ln+1, label)
			}
			if _, dup := p.Labels[label]; dup {
				return nil, fmt.Errorf("vn: line %d: duplicate label %q", ln+1, label)
			}
			p.Labels[label] = len(p.Instrs)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		mnemonic := strings.ToLower(fields[0])
		args := fields[1:]
		instr, labelRef, err := parseInstr(mnemonic, args)
		if err != nil {
			return nil, fmt.Errorf("vn: line %d: %v", ln+1, err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{instr: len(p.Instrs), label: labelRef, line: ln + 1})
		}
		p.Instrs = append(p.Instrs, instr)
	}
	for _, f := range fixups {
		target, ok := p.Labels[f.label]
		if !ok {
			return nil, fmt.Errorf("vn: line %d: undefined label %q", f.line, f.label)
		}
		p.Instrs[f.instr].Imm = Word(target)
	}
	if len(p.Instrs) == 0 {
		return nil, fmt.Errorf("vn: empty program")
	}
	return p, nil
}

var threeReg = map[string]Op{
	"add": ADD, "sub": SUB, "mul": MUL, "div": DIV,
	"and": AND, "or": OR, "xor": XOR,
	"slt": SLT, "sle": SLE, "seq": SEQ, "faa": FAA,
}

var branches = map[string]Op{"beq": BEQ, "bne": BNE, "blt": BLT, "bge": BGE}

// parseInstr decodes one statement; labelRef is non-empty when Imm must be
// patched to a label's address.
func parseInstr(mnemonic string, args []string) (Instr, string, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}
	if op, ok := threeReg[mnemonic]; ok {
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		rd, err1 := reg(args[0])
		rs, err2 := reg(args[1])
		rt, err3 := reg(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: op, Rd: rd, Rs: rs, Rt: rt}, "", nil
	}
	if op, ok := branches[mnemonic]; ok {
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		rs, err1 := reg(args[0])
		rt, err2 := reg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: op, Rs: rs, Rt: rt}, args[2], nil
	}
	switch mnemonic {
	case "nop":
		return Instr{Op: NOP}, "", need(0)
	case "halt":
		return Instr{Op: HALT}, "", need(0)
	case "li":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		imm, err := immediate(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: LI, Rd: rd, Imm: imm}, "", nil
	case "addi":
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		rd, err1 := reg(args[0])
		rs, err2 := reg(args[1])
		imm, err3 := immediate(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: ADDI, Rd: rd, Rs: rs, Imm: imm}, "", nil
	case "ld":
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		rd, err1 := reg(args[0])
		rs, err2 := reg(args[1])
		off, err3 := immediate(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: LD, Rd: rd, Rs: rs, Imm: off}, "", nil
	case "st":
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		rt, err1 := reg(args[0]) // value
		rs, err2 := reg(args[1]) // base
		off, err3 := immediate(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: ST, Rt: rt, Rs: rs, Imm: off}, "", nil
	case "j":
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: J}, args[0], nil
	case "jal":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: JAL, Rd: rd}, args[1], nil
	case "jr":
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		rs, err := reg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: JR, Rs: rs}, "", nil
	case "tas":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err1 := reg(args[0])
		rs, err2 := reg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: TAS, Rd: rd, Rs: rs}, "", nil
	case "cns":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err1 := reg(args[0])
		rs, err2 := reg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: CNS, Rd: rd, Rs: rs}, "", nil
	case "prd":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rt, err1 := reg(args[0])
		rs, err2 := reg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: PRD, Rt: rt, Rs: rs}, "", nil
	}
	return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
}

func reg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func immediate(s string) (Word, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
