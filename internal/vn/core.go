package vn

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// MemOp is a data-memory operation kind.
type MemOp uint8

// Memory operation kinds.
const (
	MemRead MemOp = iota
	MemWrite
	MemFetchAdd
	MemTestSet
	// MemConsume and MemProduce are the HEP full/empty operations; only
	// memories with full/empty bits (machines/hep) accept them.
	MemConsume
	MemProduce
)

// MemRequest is one asynchronous memory operation. Done fires when the
// operation completes, carrying the loaded/old value (reads, FAA, TAS) or
// zero (writes). Ref is Done's serializable identity: closures cannot
// cross a checkpoint, so every in-flight request carries enough to rebuild
// its callback in a freshly restored machine.
type MemRequest struct {
	Op    MemOp
	Addr  uint32
	Value Word
	Done  func(Word)
	Ref   DoneRef
}

// DoneRef identifies a request's completion callback for checkpointing.
// Kind 0 means no callback; DoneRefCoreCtx is the core-issued callback
// (A = the core's save ID, B = the context index); kinds at or above
// DoneRefMachine are machine-defined wrappers (a reply path re-entering a
// network, a remote-reference return trip) that the owning machine's
// resolver reconstructs.
type DoneRef struct {
	Kind uint32
	A    uint32
	B    uint64
}

// DoneRef kinds.
const (
	DoneRefNone    uint32 = 0
	DoneRefCoreCtx uint32 = 1
	// DoneRefMachine is the first machine-defined wrapper kind.
	DoneRefMachine uint32 = 16
)

// DoneResolver maps a DoneRef back to a live callback in a freshly
// restored machine. Resolvers return nil only for DoneRefNone; an
// unrecognized ref is a corrupt checkpoint and must error via the Dec.
type DoneResolver func(ref DoneRef) func(Word)

// MemPort issues memory requests on behalf of a core. Implementations
// model latency, contention, caches, or network transport.
type MemPort interface {
	Request(r MemRequest)
}

// CoreStats measures one core's cycle budget.
type CoreStats struct {
	// Busy counts cycles an instruction issued; Idle counts cycles the
	// core had no runnable context (all waiting on memory); Done counts
	// cycles after every context halted.
	Busy, Idle metrics.Counter
	// MemOps counts issued memory operations; MemWait accumulates total
	// context-cycles spent waiting on memory.
	MemOps  metrics.Counter
	MemWait metrics.Counter
	// Switches counts hardware context switches taken.
	Switches metrics.Counter
	Retired  metrics.Counter
}

// Utilization is busy / (busy + idle): the fraction of cycles the
// processor did useful work before halting.
func (s *CoreStats) Utilization() float64 {
	total := s.Busy.Value() + s.Idle.Value()
	if total == 0 {
		return 0
	}
	return float64(s.Busy.Value()) / float64(total)
}

// context is one hardware register set (the duplicated processor state of
// Section 1.1's low-level context switching).
type context struct {
	regs    [NumRegs]Word
	pc      int
	waiting bool
	halted  bool

	// pendingRd is the destination register of the outstanding memory
	// operation; done is the context's persistent completion callback. A
	// context has at most one request in flight (waiting blocks issue), so
	// one closure per context replaces one allocation per memory operation.
	pendingRd uint8
	done      func(Word)

	// idx is the context's index within its core (for DoneRef identity).
	idx int
}

// SetSaveID assigns the core's checkpoint identity: the A field of every
// DoneRefCoreCtx ref this core issues. Machines with several cores assign
// each a distinct ID at construction; the default 0 suits single-core
// assemblies.
func (c *Core) SetSaveID(id int) { c.saveID = uint32(id) }

// DoneFor returns context i's persistent completion callback, creating it
// on first use — the hook restore paths use to rebind in-flight requests
// to a freshly constructed core.
func (c *Core) DoneFor(i int) func(Word) {
	ctx := c.ctxs[i]
	if ctx.done == nil {
		ctx.done = func(v Word) {
			if ctx.pendingRd != 0 {
				ctx.regs[ctx.pendingRd] = v
			}
			ctx.waiting = false
			if c.waker != nil {
				// The context just became runnable: the core's next event
				// moved to now.
				c.waker.Wake(c, c.waker.Now())
			}
		}
	}
	return ctx.done
}

// Resolver returns a DoneResolver covering the given cores, indexed by
// their save IDs (cores[i] must have save ID i). Machines without wrapper
// kinds use it directly; machines with wrappers delegate the core-context
// kind to it.
func Resolver(cores []*Core) DoneResolver {
	return func(ref DoneRef) func(Word) {
		if ref.Kind != DoneRefCoreCtx {
			return nil
		}
		i := int(ref.A)
		if i >= len(cores) {
			return nil
		}
		c := cores[i]
		if int(ref.B) >= len(c.ctxs) {
			return nil
		}
		return c.DoneFor(int(ref.B))
	}
}

// Core is a cycle-stepped processor with k hardware contexts. k=1 is the
// classic blocking von Neumann core: a load stalls the processor for the
// full memory round trip. k>1 switches to another runnable context on
// every memory issue (HEP style), hiding latency as long as some context
// is runnable — the paper's point is that k must grow with machine size.
type Core struct {
	prog  *Program
	mem   MemPort
	ctxs  []*context
	next  int // round-robin pointer
	stats CoreStats

	// saveID is the core's identity inside DoneRefCoreCtx refs (SetSaveID).
	saveID uint32

	// Settlement state for event-driven runs: cycles an engine jumps over
	// are accounted lazily, at the context state frozen when the core last
	// stepped (jumped-over cycles are activity-free, so the frozen state is
	// exactly what per-cycle stepping would have observed).
	settled       sim.Cycle
	frozenWaiting uint64
	frozenIdle    bool

	waker sim.Waker
}

// Attach receives the engine's waker (sim.Wakeable); memory completions
// use it to re-arm the core the moment a context becomes runnable.
func (c *Core) Attach(w sim.Waker) { c.waker = w }

// NewCore returns a core running prog with k hardware contexts, all
// started at pc 0 and runnable. Use Context to adjust initial state.
func NewCore(prog *Program, mem MemPort, k int) *Core {
	if k < 1 {
		k = 1
	}
	c := &Core{prog: prog, mem: mem}
	for i := 0; i < k; i++ {
		c.ctxs = append(c.ctxs, &context{idx: i})
	}
	return c
}

// Context exposes context i's register file and pc for initialization:
// SetReg/SetPC before the run, Reg after.
func (c *Core) Context(i int) *ContextHandle { return &ContextHandle{ctx: c.ctxs[i]} }

// NumContexts returns k.
func (c *Core) NumContexts() int { return len(c.ctxs) }

// ContextHandle provides controlled access to one hardware context.
type ContextHandle struct{ ctx *context }

// SetReg sets a register (r0 writes are ignored).
func (h *ContextHandle) SetReg(r uint8, v Word) {
	if r != 0 {
		h.ctx.regs[r] = v
	}
}

// Reg reads a register.
func (h *ContextHandle) Reg(r uint8) Word { return h.ctx.regs[r] }

// SetPC sets the program counter.
func (h *ContextHandle) SetPC(pc int) { h.ctx.pc = pc }

// Halted reports whether the context executed HALT.
func (h *ContextHandle) Halted() bool { return h.ctx.halted }

// Halted reports whether every context has halted.
func (c *Core) Halted() bool {
	for _, ctx := range c.ctxs {
		if !ctx.halted {
			return false
		}
	}
	return true
}

// Stats returns the core's measurements.
func (c *Core) Stats() *CoreStats { return &c.stats }

// Step advances the core one cycle: pick the next runnable context
// (round-robin), execute one instruction. Memory operations issue and mark
// the context waiting; with k=1 that stalls the whole core.
func (c *Core) Step(now sim.Cycle) {
	c.settleThrough(now)
	c.settled = now + 1
	defer c.freeze()
	if c.Halted() {
		return
	}
	// account waiting contexts
	for _, ctx := range c.ctxs {
		if ctx.waiting {
			c.stats.MemWait.Inc()
		}
	}
	k := len(c.ctxs)
	sel := -1
	for i := 0; i < k; i++ {
		idx := (c.next + i) % k
		ctx := c.ctxs[idx]
		if !ctx.waiting && !ctx.halted {
			sel = idx
			break
		}
	}
	if sel < 0 {
		c.stats.Idle.Inc()
		return
	}
	if sel != c.next {
		c.stats.Switches.Inc()
	}
	// switch-on-every-cycle round robin: advance past the selected context
	c.next = (sel + 1) % k
	c.stats.Busy.Inc()
	c.stats.Retired.Inc()
	c.execute(c.ctxs[sel])
}

// NextEvent reports now while any context is runnable, and Never when the
// core is halted or every live context is parked on memory — the memory
// port's own NextEvent pins the wakeup cycle.
func (c *Core) NextEvent(now sim.Cycle) sim.Cycle {
	for _, ctx := range c.ctxs {
		if !ctx.halted && !ctx.waiting {
			return now
		}
	}
	return sim.Never
}

// freeze captures the context state that per-cycle accounting depends on,
// for lazy settlement of jumped-over cycles.
func (c *Core) freeze() {
	c.frozenWaiting = 0
	runnable := false
	for _, ctx := range c.ctxs {
		if ctx.halted {
			continue
		}
		if ctx.waiting {
			c.frozenWaiting++
		} else {
			runnable = true
		}
	}
	c.frozenIdle = !runnable && c.frozenWaiting > 0
}

// settleThrough accounts MemWait and Idle for unaccounted cycles before t
// at the frozen state, matching per-cycle stepping bit for bit.
func (c *Core) settleThrough(t sim.Cycle) {
	if t <= c.settled {
		return
	}
	gap := uint64(t - c.settled)
	c.settled = t
	if c.frozenWaiting > 0 {
		c.stats.MemWait.Add(gap * c.frozenWaiting)
	}
	if c.frozenIdle {
		c.stats.Idle.Add(gap)
	}
}

// Settle accounts stall statistics for jumped-over cycles (sim.Settler).
func (c *Core) Settle(through sim.Cycle) { c.settleThrough(through) }

func (c *Core) execute(ctx *context) {
	if ctx.pc < 0 || ctx.pc >= len(c.prog.Instrs) {
		ctx.halted = true
		return
	}
	in := c.prog.Instrs[ctx.pc]
	ctx.pc++
	rd, rs, rt := in.Rd, in.Rs, in.Rt
	set := func(r uint8, v Word) {
		if r != 0 {
			ctx.regs[r] = v
		}
	}
	switch in.Op {
	case NOP:
	case HALT:
		ctx.halted = true
	case LI:
		set(rd, in.Imm)
	case ADDI:
		set(rd, ctx.regs[rs]+in.Imm)
	case ADD:
		set(rd, ctx.regs[rs]+ctx.regs[rt])
	case SUB:
		set(rd, ctx.regs[rs]-ctx.regs[rt])
	case MUL:
		set(rd, ctx.regs[rs]*ctx.regs[rt])
	case DIV:
		if ctx.regs[rt] == 0 {
			ctx.halted = true
			return
		}
		set(rd, ctx.regs[rs]/ctx.regs[rt])
	case AND:
		set(rd, ctx.regs[rs]&ctx.regs[rt])
	case OR:
		set(rd, ctx.regs[rs]|ctx.regs[rt])
	case XOR:
		set(rd, ctx.regs[rs]^ctx.regs[rt])
	case SLT:
		set(rd, b2w(ctx.regs[rs] < ctx.regs[rt]))
	case SLE:
		set(rd, b2w(ctx.regs[rs] <= ctx.regs[rt]))
	case SEQ:
		set(rd, b2w(ctx.regs[rs] == ctx.regs[rt]))
	case BEQ:
		if ctx.regs[rs] == ctx.regs[rt] {
			ctx.pc = int(in.Imm)
		}
	case BNE:
		if ctx.regs[rs] != ctx.regs[rt] {
			ctx.pc = int(in.Imm)
		}
	case BLT:
		if ctx.regs[rs] < ctx.regs[rt] {
			ctx.pc = int(in.Imm)
		}
	case BGE:
		if ctx.regs[rs] >= ctx.regs[rt] {
			ctx.pc = int(in.Imm)
		}
	case J:
		ctx.pc = int(in.Imm)
	case JAL:
		set(rd, Word(ctx.pc))
		ctx.pc = int(in.Imm)
	case JR:
		ctx.pc = int(ctx.regs[rs])
	case LD:
		c.issueMem(ctx, MemRequest{Op: MemRead, Addr: memAddr(ctx.regs[rs], in.Imm)}, rd)
	case ST:
		c.issueMem(ctx, MemRequest{Op: MemWrite, Addr: memAddr(ctx.regs[rs], in.Imm), Value: ctx.regs[rt]}, 0)
	case FAA:
		c.issueMem(ctx, MemRequest{Op: MemFetchAdd, Addr: memAddr(ctx.regs[rs], 0), Value: ctx.regs[rt]}, rd)
	case TAS:
		c.issueMem(ctx, MemRequest{Op: MemTestSet, Addr: memAddr(ctx.regs[rs], 0)}, rd)
	case CNS:
		c.issueMem(ctx, MemRequest{Op: MemConsume, Addr: memAddr(ctx.regs[rs], 0)}, rd)
	case PRD:
		c.issueMem(ctx, MemRequest{Op: MemProduce, Addr: memAddr(ctx.regs[rs], 0), Value: ctx.regs[rt]}, 0)
	default:
		panic(fmt.Sprintf("vn: cannot execute %s", in.Op))
	}
}

// issueMem sends a memory request and parks the context until completion.
func (c *Core) issueMem(ctx *context, req MemRequest, rd uint8) {
	c.stats.MemOps.Inc()
	ctx.waiting = true
	ctx.pendingRd = rd
	req.Done = c.DoneFor(ctx.idx)
	req.Ref = DoneRef{Kind: DoneRefCoreCtx, A: c.saveID, B: uint64(ctx.idx)}
	c.mem.Request(req)
}

func memAddr(base Word, off Word) uint32 {
	a := base + off
	if a < 0 {
		panic(fmt.Sprintf("vn: negative memory address %d", a))
	}
	return uint32(a)
}

func b2w(b bool) Word {
	if b {
		return 1
	}
	return 0
}
