package vn

import (
	"testing"

	"repro/internal/sim"
)

// runCore steps core and mem until the core halts, returning elapsed
// cycles.
func runCore(t *testing.T, core *Core, mem interface {
	Step(sim.Cycle)
}, limit int) int {
	t.Helper()
	for c := 0; c < limit; c++ {
		if core.Halted() {
			return c
		}
		mem.Step(sim.Cycle(c))
		core.Step(sim.Cycle(c))
	}
	t.Fatalf("core did not halt within %d cycles", limit)
	return limit
}

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(`
# sum the first n integers
        li   r1, 10        ; n
        li   r2, 0         ; s
loop:   beq  r1, r0, done
        add  r2, r2, r1
        addi r1, r1, -1
        j    loop
done:   halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 7 {
		t.Fatalf("got %d instructions", len(p.Instrs))
	}
	if p.Labels["loop"] != 2 || p.Labels["done"] != 6 {
		t.Fatalf("labels: %v", p.Labels)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"add r1, r2",
		"li r99, 5",
		"beq r1, r2, nowhere\nhalt",
		"dup: nop\ndup: nop",
		"",
		"ld r1, r2",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestInstrStrings(t *testing.T) {
	p, err := Assemble("start: li r1, 5\nld r2, r1, 3\nst r2, r1, 0\nfaa r3, r1, r2\nbeq r1, r2, start\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"li r1, 5", "ld r2, r1, 3", "st r2, r1, 0", "faa r3, r1, r2", "beq r1, r2, 0", "halt"}
	for i, w := range want {
		if got := p.Instrs[i].String(); got != w {
			t.Errorf("instr %d: %q, want %q", i, got, w)
		}
	}
}

func TestCoreArithmeticLoop(t *testing.T) {
	p, err := Assemble(`
        li   r1, 100
        li   r2, 0
loop:   beq  r1, r0, done
        add  r2, r2, r1
        addi r1, r1, -1
        j    loop
done:   halt
`)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewLatencyMemory(1)
	core := NewCore(p, mem, 1)
	runCore(t, core, mem, 10000)
	if got := core.Context(0).Reg(2); got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
}

func TestCoreLoadStore(t *testing.T) {
	p, err := Assemble(`
        li  r1, 100
        li  r2, 42
        st  r2, r1, 0
        ld  r3, r1, 0
        addi r3, r3, 1
        st  r3, r1, 1
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewLatencyMemory(5)
	core := NewCore(p, mem, 1)
	runCore(t, core, mem, 1000)
	if mem.Peek(100) != 42 || mem.Peek(101) != 43 {
		t.Fatalf("memory: %d, %d", mem.Peek(100), mem.Peek(101))
	}
}

func TestCoreJalJr(t *testing.T) {
	p, err := Assemble(`
        li   r1, 7
        jal  r31, double
        jal  r31, double
        halt
double: add r1, r1, r1
        jr  r31
`)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewLatencyMemory(1)
	core := NewCore(p, mem, 1)
	runCore(t, core, mem, 1000)
	if got := core.Context(0).Reg(1); got != 28 {
		t.Fatalf("r1 = %d, want 28", got)
	}
}

func TestR0Hardwired(t *testing.T) {
	p, err := Assemble(`
        li  r0, 99
        addi r1, r0, 5
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewLatencyMemory(1)
	core := NewCore(p, mem, 1)
	runCore(t, core, mem, 100)
	if got := core.Context(0).Reg(1); got != 5 {
		t.Fatalf("r0 must stay zero; r1 = %d", got)
	}
}

// memLoop is the E1 kernel: one load plus four register ops per iteration.
const memLoop = `
        ; r1 = base, r4 = iterations
loop:   ld   r2, r1, 0
        add  r3, r3, r2
        addi r1, r1, 1
        addi r4, r4, -1
        bne  r4, r0, loop
        halt
`

func TestBlockingCoreUtilizationFallsWithLatency(t *testing.T) {
	// Issue 1: a processor that cannot overlap memory requests idles more
	// as latency grows.
	utilAt := func(latency sim.Cycle) float64 {
		p, err := Assemble(memLoop)
		if err != nil {
			t.Fatal(err)
		}
		mem := NewLatencyMemory(latency)
		core := NewCore(p, mem, 1)
		core.Context(0).SetReg(1, 1000)
		core.Context(0).SetReg(4, 100)
		runCore(t, core, mem, 1_000_000)
		return core.Stats().Utilization()
	}
	u1, u20, u100 := utilAt(1), utilAt(20), utilAt(100)
	if !(u1 > u20 && u20 > u100) {
		t.Fatalf("utilization must fall with latency: %v %v %v", u1, u20, u100)
	}
	if u100 > 0.1 {
		t.Fatalf("at latency 100 a blocking core should be mostly idle, got %v", u100)
	}
}

func TestMultithreadedCoreHidesLatency(t *testing.T) {
	// With enough hardware contexts the same kernel keeps the ALU busy —
	// and the required context count grows with the latency (Issue 1's
	// unbounded-context argument).
	utilAt := func(latency sim.Cycle, k int) float64 {
		p, err := Assemble(memLoop)
		if err != nil {
			t.Fatal(err)
		}
		mem := NewLatencyMemory(latency)
		core := NewCore(p, mem, k)
		for i := 0; i < k; i++ {
			core.Context(i).SetReg(1, Word(1000+1000*i))
			core.Context(i).SetReg(4, 50)
		}
		runCore(t, core, mem, 1_000_000)
		return core.Stats().Utilization()
	}
	const latency = 50
	u1 := utilAt(latency, 1)
	u4 := utilAt(latency, 4)
	u16 := utilAt(latency, 16)
	if !(u16 > u4 && u4 > u1) {
		t.Fatalf("more contexts must hide more latency: %v %v %v", u1, u4, u16)
	}
	if u16 < 0.6 {
		t.Fatalf("16 contexts should mostly hide latency 50, got %v", u16)
	}
	// The k needed for high utilization scales with latency: k=4 is
	// enough at latency 5 but not at latency 200.
	if utilAt(5, 4) < 0.8 {
		t.Fatal("4 contexts should suffice at latency 5")
	}
	if utilAt(200, 4) > 0.6 {
		t.Fatal("4 contexts should NOT suffice at latency 200")
	}
}

func TestFetchAddAtomicUnderContention(t *testing.T) {
	// Many contexts FAA the same cell; the sum must be exact and every
	// fetched value distinct — the serialization property.
	p, err := Assemble(`
        li  r1, 500      ; shared cell
        li  r2, 1
        faa r3, r1, r2   ; r3 = old
        st  r3, r4, 0    ; record what we fetched
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewBankedMemory(2, 1)
	const k = 8
	core := NewCore(p, mem, k)
	for i := 0; i < k; i++ {
		core.Context(i).SetReg(4, Word(600+i))
	}
	for c := 0; c < 100000; c++ {
		if core.Halted() && mem.Pending() == 0 {
			break
		}
		mem.Step(sim.Cycle(c))
		core.Step(sim.Cycle(c))
	}
	if got := mem.Peek(500); got != k {
		t.Fatalf("cell = %d, want %d", got, k)
	}
	seen := map[Word]bool{}
	for i := 0; i < k; i++ {
		v := mem.Peek(uint32(600 + i))
		if v < 0 || v >= k || seen[v] {
			t.Fatalf("fetched values not a permutation: %v (dup %d)", seen, v)
		}
		seen[v] = true
	}
}

func TestTestAndSetSpinlock(t *testing.T) {
	// Two contexts increment a shared counter 100 times each under a TAS
	// spinlock; the result must be exactly 200.
	p, err := Assemble(`
        li   r1, 900      ; lock address
        li   r2, 901      ; counter address
        li   r5, 100      ; iterations
outer:  beq  r5, r0, done
spin:   tas  r3, r1
        bne  r3, r0, spin ; lock was held, retry
        ld   r4, r2, 0    ; critical section
        addi r4, r4, 1
        st   r4, r2, 0
        st   r0, r1, 0    ; release lock
        addi r5, r5, -1
        j    outer
done:   halt
`)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewBankedMemory(1, 1)
	core := NewCore(p, mem, 2)
	for c := 0; c < 1_000_000; c++ {
		if core.Halted() && mem.Pending() == 0 {
			break
		}
		mem.Step(sim.Cycle(c))
		core.Step(sim.Cycle(c))
	}
	if !core.Halted() {
		t.Fatal("cores did not halt")
	}
	if got := mem.Peek(901); got != 200 {
		t.Fatalf("counter = %d, want 200", got)
	}
}

func TestBankedMemorySerializes(t *testing.T) {
	// A bank serving one request per 4 cycles must take >= 4*n cycles for
	// n requests.
	mem := NewBankedMemory(1, 4)
	done := 0
	const n = 10
	for i := 0; i < n; i++ {
		mem.Request(MemRequest{Op: MemRead, Addr: uint32(i), Done: func(Word) { done++ }})
	}
	c := 0
	for ; mem.Pending() > 0 && c < 1000; c++ {
		mem.Step(sim.Cycle(c))
	}
	if done != n {
		t.Fatalf("completed %d of %d", done, n)
	}
	if c < 4*(n-1) {
		t.Fatalf("bank finished %d requests in %d cycles; service time not honored", n, c)
	}
	if mem.QueueLen.Max() < n/2 {
		t.Fatalf("queue high-water %d too small for burst of %d", mem.QueueLen.Max(), n)
	}
}

func TestCoreStatsConsistency(t *testing.T) {
	p, err := Assemble(memLoop)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewLatencyMemory(10)
	core := NewCore(p, mem, 1)
	core.Context(0).SetReg(1, 100)
	core.Context(0).SetReg(4, 20)
	elapsed := runCore(t, core, mem, 100000)
	s := core.Stats()
	if s.MemOps.Value() != 20 {
		t.Fatalf("mem ops = %d, want 20", s.MemOps.Value())
	}
	if got := s.Busy.Value() + s.Idle.Value(); got != uint64(elapsed) {
		t.Fatalf("busy+idle = %d, elapsed %d", got, elapsed)
	}
}

func TestAssemblerRoundTripProperty(t *testing.T) {
	// Every instruction's String() form must re-assemble to an identical
	// instruction (branch/jump targets print as absolute addresses, which
	// re-assemble only via labels, so those are skipped).
	rng := sim.NewRNG(123)
	mk := func() Instr {
		ops := []Op{NOP, HALT, LI, ADD, SUB, MUL, DIV, AND, OR, XOR, SLT,
			SLE, SEQ, ADDI, LD, ST, FAA, TAS, JR}
		in := Instr{Op: ops[rng.Intn(len(ops))]}
		in.Rd = uint8(rng.Intn(NumRegs))
		in.Rs = uint8(rng.Intn(NumRegs))
		in.Rt = uint8(rng.Intn(NumRegs))
		in.Imm = Word(rng.Intn(2001) - 1000)
		// normalize fields the textual form does not carry
		switch in.Op {
		case NOP, HALT:
			in.Rd, in.Rs, in.Rt, in.Imm = 0, 0, 0, 0
		case LI:
			in.Rs, in.Rt = 0, 0
		case ADDI, LD:
			in.Rt = 0
		case ST:
			in.Rd = 0
		case JR:
			in.Rd, in.Rt, in.Imm = 0, 0, 0
		case TAS:
			in.Rt, in.Imm = 0, 0
		default: // three-register ops
			in.Imm = 0
		}
		return in
	}
	for i := 0; i < 500; i++ {
		in := mk()
		p, err := Assemble(in.String())
		if err != nil {
			t.Fatalf("%q does not re-assemble: %v", in.String(), err)
		}
		if len(p.Instrs) != 1 || p.Instrs[0] != in {
			t.Fatalf("round trip changed %q -> %+v", in.String(), p.Instrs[0])
		}
	}
}
