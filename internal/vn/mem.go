package vn

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// backing is the shared word-array with atomic read-modify-write ops.
type backing struct {
	words map[uint32]Word
}

func newBacking() *backing { return &backing{words: map[uint32]Word{}} }

func (b *backing) apply(r MemRequest) Word {
	switch r.Op {
	case MemRead:
		return b.words[r.Addr]
	case MemWrite:
		b.words[r.Addr] = r.Value
		return 0
	case MemFetchAdd:
		old := b.words[r.Addr]
		b.words[r.Addr] = old + r.Value
		return old
	case MemTestSet:
		old := b.words[r.Addr]
		b.words[r.Addr] = 1
		return old
	default:
		return 0
	}
}

// LatencyMemory is an infinite-bandwidth memory with a fixed round-trip
// latency: the E1/E2 knob for "how far away is memory in a machine of this
// size". Step must be called once per cycle.
type LatencyMemory struct {
	store   *backing
	latency sim.Cycle
	now     sim.Cycle
	due     map[sim.Cycle][]MemRequest
	pending int
}

// NewLatencyMemory returns a fixed-latency memory (minimum 1 cycle).
func NewLatencyMemory(latency sim.Cycle) *LatencyMemory {
	if latency < 1 {
		latency = 1
	}
	return &LatencyMemory{store: newBacking(), latency: latency, due: map[sim.Cycle][]MemRequest{}}
}

// Request issues r; its Done callback fires after the fixed latency.
func (m *LatencyMemory) Request(r MemRequest) {
	m.due[m.now+m.latency] = append(m.due[m.now+m.latency], r)
	m.pending++
}

// Step completes requests due this cycle. Operations apply at completion
// time, in issue order, which serializes read-modify-writes.
func (m *LatencyMemory) Step(now sim.Cycle) {
	m.now = now
	reqs := m.due[now]
	if len(reqs) == 0 {
		return
	}
	delete(m.due, now)
	for _, r := range reqs {
		v := m.store.apply(r)
		m.pending -= 1
		if r.Done != nil {
			r.Done(v)
		}
	}
}

// Pending reports outstanding requests.
func (m *LatencyMemory) Pending() int { return m.pending }

// Poke writes a word directly (test setup).
func (m *LatencyMemory) Poke(addr uint32, v Word) { m.store.words[addr] = v }

// Peek reads a word directly (test inspection).
func (m *LatencyMemory) Peek(addr uint32) Word { return m.store.words[addr] }

// BankedMemory is a memory module with finite bandwidth: one request
// completes per ServiceTime cycles, plus a fixed access latency. It models
// a shared memory bank where contention queues requests — the serialization
// that makes hot spots expensive.
type BankedMemory struct {
	store       *backing
	latency     sim.Cycle
	serviceTime sim.Cycle
	queue       []MemRequest
	busyUntil   sim.Cycle
	due         map[sim.Cycle][]completed
	pending     int

	// QueueLen observes the waiting-queue length each cycle.
	QueueLen metrics.Gauge
	// Served counts completed requests.
	Served metrics.Counter
}

type completed struct {
	r MemRequest
	v Word
}

// NewBankedMemory returns a module that accepts one request per
// serviceTime cycles and responds latency cycles after service.
func NewBankedMemory(latency, serviceTime sim.Cycle) *BankedMemory {
	if latency < 1 {
		latency = 1
	}
	if serviceTime < 1 {
		serviceTime = 1
	}
	return &BankedMemory{
		store: newBacking(), latency: latency, serviceTime: serviceTime,
		due: map[sim.Cycle][]completed{},
	}
}

// Request queues r at the bank.
func (m *BankedMemory) Request(r MemRequest) {
	m.queue = append(m.queue, r)
	m.pending++
}

// Step services at most one queued request and delivers due responses.
func (m *BankedMemory) Step(now sim.Cycle) {
	for _, c := range m.due[now] {
		m.pending--
		m.Served.Inc()
		if c.r.Done != nil {
			c.r.Done(c.v)
		}
	}
	delete(m.due, now)
	m.QueueLen.Set(int64(len(m.queue)))
	m.QueueLen.Sample()
	if now < m.busyUntil || len(m.queue) == 0 {
		return
	}
	r := m.queue[0]
	copy(m.queue, m.queue[1:])
	m.queue = m.queue[:len(m.queue)-1]
	m.busyUntil = now + m.serviceTime
	v := m.store.apply(r) // applied at service time: atomic and serialized
	m.due[now+m.latency] = append(m.due[now+m.latency], completed{r: r, v: v})
}

// Pending reports queued plus in-flight requests.
func (m *BankedMemory) Pending() int { return m.pending }

// Poke writes a word directly (test setup).
func (m *BankedMemory) Poke(addr uint32, v Word) { m.store.words[addr] = v }

// Peek reads a word directly (test inspection).
func (m *BankedMemory) Peek(addr uint32) Word { return m.store.words[addr] }

var (
	_ MemPort = (*LatencyMemory)(nil)
	_ MemPort = (*BankedMemory)(nil)
)
