package vn

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// backing is the shared word-array with atomic read-modify-write ops.
type backing struct {
	words map[uint32]Word
}

func newBacking() *backing { return &backing{words: map[uint32]Word{}} }

func (b *backing) apply(r MemRequest) Word {
	switch r.Op {
	case MemRead:
		return b.words[r.Addr]
	case MemWrite:
		b.words[r.Addr] = r.Value
		return 0
	case MemFetchAdd:
		old := b.words[r.Addr]
		b.words[r.Addr] = old + r.Value
		return old
	case MemTestSet:
		old := b.words[r.Addr]
		b.words[r.Addr] = 1
		return old
	default:
		return 0
	}
}

// dueReq is a request with its completion cycle. Because the latency is
// fixed and issue times are nondecreasing, completion times are
// nondecreasing too, so a FIFO keeps them sorted for free.
type dueReq struct {
	at sim.Cycle
	r  MemRequest
}

// LatencyMemory is an infinite-bandwidth memory with a fixed round-trip
// latency: the E1/E2 knob for "how far away is memory in a machine of this
// size". Step must be called once per cycle.
type LatencyMemory struct {
	store   *backing
	latency sim.Cycle
	now     sim.Cycle
	due     sim.FIFO[dueReq]
	pending int
	waker   sim.Waker
}

// Attach receives the engine's waker (sim.Wakeable).
func (m *LatencyMemory) Attach(w sim.Waker) { m.waker = w }

// NewLatencyMemory returns a fixed-latency memory (minimum 1 cycle).
func NewLatencyMemory(latency sim.Cycle) *LatencyMemory {
	if latency < 1 {
		latency = 1
	}
	return &LatencyMemory{store: newBacking(), latency: latency}
}

// Request issues r; its Done callback fires after the fixed latency.
func (m *LatencyMemory) Request(r MemRequest) {
	if m.waker != nil {
		m.now = m.waker.SlotNow(m)
	}
	m.due.Push(dueReq{at: m.now + m.latency, r: r})
	m.pending++
	if m.waker != nil {
		m.waker.Wake(m, m.due.Peek().at)
	}
}

// Step completes requests due this cycle. Operations apply at completion
// time, in issue order, which serializes read-modify-writes.
func (m *LatencyMemory) Step(now sim.Cycle) {
	m.now = now
	for m.due.Len() > 0 && m.due.Peek().at <= now {
		d := m.due.Pop()
		v := m.store.apply(d.r)
		m.pending--
		if d.r.Done != nil {
			d.r.Done(v)
		}
	}
}

// NextEvent reports the earliest completion, or Never when idle.
func (m *LatencyMemory) NextEvent(now sim.Cycle) sim.Cycle {
	if m.due.Len() == 0 {
		return sim.Never
	}
	if t := m.due.Peek().at; t > now {
		return t
	}
	return now
}

// Pending reports outstanding requests.
func (m *LatencyMemory) Pending() int { return m.pending }

// Poke writes a word directly (test setup).
func (m *LatencyMemory) Poke(addr uint32, v Word) { m.store.words[addr] = v }

// Peek reads a word directly (test inspection).
func (m *LatencyMemory) Peek(addr uint32) Word { return m.store.words[addr] }

// BankedMemory is a memory module with finite bandwidth: one request
// completes per ServiceTime cycles, plus a fixed access latency. It models
// a shared memory bank where contention queues requests — the serialization
// that makes hot spots expensive.
type BankedMemory struct {
	store       *backing
	latency     sim.Cycle
	serviceTime sim.Cycle
	queue       sim.FIFO[MemRequest]
	busyUntil   sim.Cycle
	due         sim.FIFO[dueCompleted]
	pending     int
	settled     sim.Cycle // queue-length samples accounted through here
	waker       sim.Waker

	// QueueLen observes the waiting-queue length each cycle.
	QueueLen metrics.Gauge
	// Served counts completed requests.
	Served metrics.Counter
}

type completed struct {
	r MemRequest
	v Word
}

// dueCompleted is a serviced request awaiting response delivery. Service
// times are nondecreasing (one per Step), so a FIFO keeps completions
// sorted by due cycle.
type dueCompleted struct {
	at sim.Cycle
	c  completed
}

// NewBankedMemory returns a module that accepts one request per
// serviceTime cycles and responds latency cycles after service.
func NewBankedMemory(latency, serviceTime sim.Cycle) *BankedMemory {
	if latency < 1 {
		latency = 1
	}
	if serviceTime < 1 {
		serviceTime = 1
	}
	return &BankedMemory{store: newBacking(), latency: latency, serviceTime: serviceTime}
}

// Attach receives the engine's waker (sim.Wakeable).
func (m *BankedMemory) Attach(w sim.Waker) { m.waker = w }

// Request queues r at the bank. The gauge level is refreshed immediately so
// that cycles an event-driven engine jumps over settle at the post-arrival
// queue length, exactly as per-cycle sampling would have observed.
func (m *BankedMemory) Request(r MemRequest) {
	if m.waker != nil {
		// Wake before the push below: Engine.Wake settles jumped-over gauge
		// samples at the pre-arrival level. The wake cycle is the bank's
		// exact post-arrival next event — the earlier of the next response
		// delivery and the end of the current service (the queue is about
		// to be non-empty).
		next := m.busyUntil
		if m.due.Len() > 0 && m.due.Peek().at < next {
			next = m.due.Peek().at
		}
		m.waker.Wake(m, next)
	}
	m.queue.Push(r)
	m.pending++
	m.QueueLen.Set(int64(m.queue.Len()))
}

// Step services at most one queued request and delivers due responses.
func (m *BankedMemory) Step(now sim.Cycle) {
	m.settleThrough(now)
	for m.due.Len() > 0 && m.due.Peek().at <= now {
		d := m.due.Pop()
		m.pending--
		m.Served.Inc()
		if d.c.r.Done != nil {
			d.c.r.Done(d.c.v)
		}
	}
	m.QueueLen.Set(int64(m.queue.Len()))
	m.QueueLen.Sample()
	m.settled = now + 1
	if now < m.busyUntil || m.queue.Len() == 0 {
		return
	}
	r := m.queue.Pop()
	m.busyUntil = now + m.serviceTime
	v := m.store.apply(r) // applied at service time: atomic and serialized
	m.due.Push(dueCompleted{at: now + m.latency, c: completed{r: r, v: v}})
	// Refresh the gauge's frozen level: jumped-over cycles settle at the
	// post-pop queue length, exactly as per-cycle sampling would observe.
	m.QueueLen.Set(int64(m.queue.Len()))
}

// NextEvent reports the earliest cycle the bank can act: the next response
// delivery, or the end of the current service if work is queued.
func (m *BankedMemory) NextEvent(now sim.Cycle) sim.Cycle {
	next := sim.Never
	if m.due.Len() > 0 {
		next = m.due.Peek().at
	}
	if m.queue.Len() > 0 && m.busyUntil < next {
		next = m.busyUntil
	}
	if next < now {
		next = now
	}
	return next
}

// settleThrough samples the frozen queue length once per unaccounted cycle
// before t — exact for cycles an engine jumped over, because no request can
// arrive or complete while every component is idle.
func (m *BankedMemory) settleThrough(t sim.Cycle) {
	if t > m.settled {
		m.QueueLen.SampleN(uint64(t - m.settled))
		m.settled = t
	}
}

// Settle accounts queue-length samples for jumped-over cycles (sim.Settler).
func (m *BankedMemory) Settle(through sim.Cycle) { m.settleThrough(through) }

// Pending reports queued plus in-flight requests.
func (m *BankedMemory) Pending() int { return m.pending }

// Poke writes a word directly (test setup).
func (m *BankedMemory) Poke(addr uint32, v Word) { m.store.words[addr] = v }

// Peek reads a word directly (test inspection).
func (m *BankedMemory) Peek(addr uint32) Word { return m.store.words[addr] }

var (
	_ MemPort = (*LatencyMemory)(nil)
	_ MemPort = (*BankedMemory)(nil)
)
