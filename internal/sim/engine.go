package sim

// Engine is the shared event-driven simulation driver every machine model
// runs on. It keeps the deterministic contract the exhaustive Scheduler
// established — registration order is evaluation order, statistics are
// bit-identical to stepping every component every cycle — while paying
// O(active) per tick instead of O(registered): a wake-queue (indexed
// min-heap of per-component wake cycles) decides who steps, and nextEvent
// is a heap peek instead of an O(n) poll.
//
// The scheduling contract, in full:
//
//   - Registration order is evaluation order. Components due on the same
//     tick step in registration order, so within-cycle interactions (a
//     network delivering into a bank before the bank's step, a core issuing
//     after its memory stepped) behave exactly as under an exhaustive loop.
//   - Honesty: if NextEvent(now) > now then Step(now) is a no-op — it
//     changes no counters, gauges, or queues. This is what makes skipping a
//     component's slot sound: the slot would have observed and changed
//     nothing. The property tests in vn and cache enforce this directly.
//   - Staleness: a component's armed wake cycle is its NextEvent answer as
//     of its last step, min-merged with every Wake aimed at it since. Any
//     mutation that could advance a component's next event MUST be paired
//     with a Wake (components wake themselves from Request/Send/Done
//     entry points; glue code uses Engine.Wake directly). A missed wake
//     stalls the component; an early wake merely buys an extra no-op step.
//   - Settlement: components with per-cycle statistics implement Settler
//     and account jumped-over cycles lazily at the state frozen by their
//     last step. Engine.Wake settles the target before the caller's
//     mutation lands, so the frozen level never leaks past the instant it
//     stopped being true, and Run settles everyone on exit.
//
// Mutating a component between Runs (Poke, SetReg, pre-loading requests)
// needs no explicit wake: Run re-arms every component at entry.
//
// Components that do not implement EventAware (plain ComponentFuncs) make
// the schedule open-loop: the engine falls back to exhaustive per-cycle
// stepping of everything, exactly the pre-wake-queue behaviour.
type Engine struct {
	components []Component
	events     []EventAware      // events[i] non-nil iff components[i] is EventAware
	settlers   []Settler         // settlers[i] non-nil iff components[i] settles
	allSettle  []Settler         // compact list for settleAll
	index      map[Component]int // EventAware components only (funcs are unhashable)
	legacy     bool              // a non-EventAware component forces exhaustive stepping

	now         Cycle
	prevTick    Cycle // the executed tick before now: the slot clock for SlotNow
	stride      Cycle
	busyHorizon Cycle

	// Wake-queue state. fheap holds indices of armed components ordered by
	// (wake cycle, index); pos[i] is i's heap slot or -1. Each tick, due
	// entries move to the due heap (ordered by index alone) and step in
	// registration order. stepping is the index currently inside Step, -1
	// outside a tick — Wake and SlotNow use it to tell whether a target's
	// slot has already passed this cycle.
	wake     []Cycle
	fheap    []int
	pos      []int
	due      []int
	inDue    []bool
	stepping int

	stepsExecuted uint64
	cyclesSkipped uint64
	wakesEnqueued uint64

	// gridAnchor is the cycle the current run's stride grid is aligned to:
	// the entry cycle of the run, preserved across checkpoint/resume so a
	// resumed run lands on the same tick grid as the uninterrupted one.
	gridAnchor Cycle
	// resumePending is set by LoadState: the next Run must not re-arm every
	// component (the restored wake queue is already exact) and must execute
	// the idle-jump before its first tick, so a run resumed from a pause
	// mid-jump skips the same cycles the uninterrupted run skipped.
	resumePending bool
}

// Settler is implemented by components that keep per-cycle statistics and
// must account cycles the engine jumped over. Settle(through) settles
// statistics for all unaccounted cycles before `through`, using the state
// frozen at the component's last step — sound because jumped-over cycles
// are activity-free by construction.
type Settler interface {
	Settle(through Cycle)
}

// Waker is the scheduling interface an Engine hands to its components at
// registration. Components use it to arm their own next step from
// mutation entry points (Request, Send, Done) and to read the slot clock.
type Waker interface {
	// Now reports the engine's current cycle.
	Now() Cycle
	// SlotNow reports the cycle an exhaustive per-cycle engine would show
	// on c's own clock at this instant: the current cycle if c's step slot
	// has already been reached this tick, the previous executed tick if
	// not. Components stamping times outside their own Step (a network
	// recording InjectedAt inside Send) must use this, not Now, to stay
	// bit-identical with exhaustive stepping.
	SlotNow(c Component) Cycle
	// Wake schedules c to step at cycle at (min-merged with any wake
	// already armed). Call it whenever a mutation could advance c's next
	// event; waking early is safe, not waking is not.
	Wake(c Component, at Cycle)
}

// Wakeable is implemented by components that arm their own wakeups;
// Register hands them the engine's Waker.
type Wakeable interface {
	Attach(w Waker)
}

// NewEngine returns an empty engine at cycle 0 advancing 1 cycle per tick.
func NewEngine() *Engine {
	return &Engine{stride: 1, stepping: -1, index: map[Component]int{}}
}

// Register adds c to the step list. Registration order is evaluation
// order — part of the deterministic contract, exactly as with Scheduler.
// EventAware components are entered into the wake-queue; Wakeable ones
// receive the engine's Waker.
func (e *Engine) Register(c Component) {
	i := len(e.components)
	e.components = append(e.components, c)
	var s Settler
	if ss, ok := c.(Settler); ok {
		s = ss
		e.allSettle = append(e.allSettle, ss)
	}
	e.settlers = append(e.settlers, s)
	ea, ok := c.(EventAware)
	e.events = append(e.events, ea)
	if ok {
		e.index[c] = i
	} else {
		e.legacy = true
	}
	e.wake = append(e.wake, Never)
	e.pos = append(e.pos, -1)
	e.inDue = append(e.inDue, false)
	if w, ok := c.(Wakeable); ok {
		w.Attach(e)
	}
}

// Now reports the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// SlotNow implements Waker: the component's slot clock under exhaustive
// stepping. During a tick at cycle T, components at or before the stepping
// slot read T; components whose slot is still ahead read the previous
// executed tick (their last exhaustive step). Outside a tick everyone
// reads the current cycle.
func (e *Engine) SlotNow(c Component) Cycle {
	if e.stepping < 0 {
		return e.now
	}
	if i, ok := e.index[c]; ok && i > e.stepping {
		return e.prevTick
	}
	return e.now
}

// Wake implements Waker. The target is settled through the pre-mutation
// boundary first (cycles before this instant sample the old frozen state),
// then scheduled: a target whose slot is still ahead this tick joins the
// current tick; anything else arms in the future heap, clamped to now.
func (e *Engine) Wake(c Component, at Cycle) {
	e.wakesEnqueued++
	if e.legacy {
		return // exhaustive mode steps everyone every cycle anyway
	}
	i, ok := e.index[c]
	if !ok {
		panic("sim: Wake on a component not registered with this engine")
	}
	if s := e.settlers[i]; s != nil {
		// If the target's slot already passed this tick, cycle now itself
		// was observed at the pre-mutation state; otherwise its own Step
		// (or settleAll) will sample now at the post-mutation state.
		b := e.now
		if e.stepping >= 0 && i <= e.stepping {
			b = e.now + 1
		}
		s.Settle(b)
	}
	if i == e.stepping || e.inDue[i] {
		return // steps this tick after the mutation; its re-arm covers the rest
	}
	if at <= e.now && e.stepping >= 0 && i > e.stepping {
		// Due later this very tick: the slot has not run yet.
		if e.pos[i] >= 0 {
			e.heapRemove(i)
		}
		e.duePush(i)
		return
	}
	e.arm(i, at)
}

// SetStride sets the simulated-time cost of one tick. The Connection
// Machine's sequencer charges a full bit-serial word time per router step;
// everything else leaves the default of 1.
func (e *Engine) SetStride(d Cycle) {
	if d < 1 {
		d = 1
	}
	e.stride = d
}

// Advance moves simulated time forward by d cycles outside Run — the SIMD
// sequencer's compute instructions consume time without stepping any
// component.
func (e *Engine) Advance(d Cycle) { e.now += d }

// NoteBusy raises the busy horizon: a promise that some resource is
// occupied through cycle `until`. Machines whose completion predicate is
// "queues empty and past the horizon" (the TTDA) call this as they issue
// work; when no component is armed but the horizon is still ahead, the
// engine jumps to the horizon instead of the cycle limit.
func (e *Engine) NoteBusy(until Cycle) {
	if until > e.busyHorizon {
		e.busyHorizon = until
	}
}

// BusyHorizon reports the latest cycle any resource promised to be busy
// through.
func (e *Engine) BusyHorizon() Cycle { return e.busyHorizon }

// Counters is a snapshot of the engine's self-observability counters:
// scheduler efficiency, not simulated results.
type Counters struct {
	// StepsExecuted counts component Step calls.
	StepsExecuted uint64 `json:"steps_executed"`
	// CyclesSkipped counts simulated cycles the engine jumped over without
	// ticking.
	CyclesSkipped uint64 `json:"cycles_skipped"`
	// WakesEnqueued counts Wake calls (self-wakes and cross-component).
	WakesEnqueued uint64 `json:"wakes_enqueued"`
}

// Counters returns the engine's scheduling counters.
func (e *Engine) Counters() Counters {
	return Counters{
		StepsExecuted: e.stepsExecuted,
		CyclesSkipped: e.cyclesSkipped,
		WakesEnqueued: e.wakesEnqueued,
	}
}

// --- wake-queue plumbing ---

// heapLess orders the future heap by (wake cycle, registration index), so
// draining due entries preserves registration order deterministically.
func (e *Engine) heapLess(a, b int) bool {
	return e.wake[a] < e.wake[b] || (e.wake[a] == e.wake[b] && a < b)
}

func (e *Engine) heapUp(j int) {
	h := e.fheap
	for j > 0 {
		p := (j - 1) / 2
		if !e.heapLess(h[j], h[p]) {
			break
		}
		h[j], h[p] = h[p], h[j]
		e.pos[h[j]] = j
		e.pos[h[p]] = p
		j = p
	}
}

func (e *Engine) heapDown(j int) {
	h := e.fheap
	n := len(h)
	for {
		l := 2*j + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && e.heapLess(h[r], h[l]) {
			m = r
		}
		if !e.heapLess(h[m], h[j]) {
			return
		}
		h[j], h[m] = h[m], h[j]
		e.pos[h[j]] = j
		e.pos[h[m]] = m
		j = m
	}
}

func (e *Engine) heapPopMin() int {
	h := e.fheap
	i := h[0]
	last := len(h) - 1
	h[0] = h[last]
	e.pos[h[0]] = 0
	e.fheap = h[:last]
	if last > 0 {
		e.heapDown(0)
	}
	e.pos[i] = -1
	return i
}

func (e *Engine) heapRemove(i int) {
	j := e.pos[i]
	h := e.fheap
	last := len(h) - 1
	if j != last {
		h[j] = h[last]
		e.pos[h[j]] = j
	}
	e.fheap = h[:last]
	e.pos[i] = -1
	if j != last {
		e.heapDown(j)
		e.heapUp(j)
	}
}

// arm schedules component i at cycle at, min-merged with any armed wake
// and clamped to the present.
func (e *Engine) arm(i int, at Cycle) {
	if at < e.now {
		at = e.now
	}
	if p := e.pos[i]; p >= 0 {
		if at < e.wake[i] {
			e.wake[i] = at
			e.heapUp(p)
		}
		return
	}
	e.wake[i] = at
	e.pos[i] = len(e.fheap)
	e.fheap = append(e.fheap, i)
	e.heapUp(len(e.fheap) - 1)
}

// wakeAllAt arms every component at cycle at: the exhaustive tick,
// expressed in wake-queue form.
func (e *Engine) wakeAllAt(at Cycle) {
	for i := range e.components {
		e.arm(i, at)
	}
}

func (e *Engine) duePush(i int) {
	e.inDue[i] = true
	d := append(e.due, i)
	j := len(d) - 1
	for j > 0 {
		p := (j - 1) / 2
		if d[p] <= d[j] {
			break
		}
		d[j], d[p] = d[p], d[j]
		j = p
	}
	e.due = d
}

func (e *Engine) duePop() int {
	d := e.due
	i := d[0]
	last := len(d) - 1
	d[0] = d[last]
	e.due = d[:last]
	d = e.due
	j := 0
	for {
		l := 2*j + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && d[r] < d[l] {
			m = r
		}
		if d[j] <= d[m] {
			break
		}
		d[j], d[m] = d[m], d[j]
		j = m
	}
	return i
}

// tick steps every due component in registration order, re-arming each
// from its own NextEvent answer, then advances time by the stride.
func (e *Engine) tick() {
	for len(e.fheap) > 0 && e.wake[e.fheap[0]] <= e.now {
		e.duePush(e.heapPopMin())
	}
	for len(e.due) > 0 {
		i := e.duePop()
		e.inDue[i] = false
		e.stepping = i
		e.components[i].Step(e.now)
		e.stepsExecuted++
		if t := e.events[i].NextEvent(e.now); t != Never {
			e.arm(i, t)
		}
	}
	e.stepping = -1
	e.prevTick = e.now
	e.now += e.stride
}

// legacyTick steps every component, in registration order — the exhaustive
// fallback when a non-EventAware component is registered.
func (e *Engine) legacyTick() {
	for i, c := range e.components {
		e.stepping = i
		c.Step(e.now)
	}
	e.stepsExecuted += uint64(len(e.components))
	e.stepping = -1
	e.prevTick = e.now
	e.now += e.stride
}

// legacyNextEvent polls every component, exactly as Scheduler.NextEvent:
// non-EventAware components pin it to now.
func (e *Engine) legacyNextEvent() Cycle {
	next := Never
	for _, ea := range e.events {
		if ea == nil {
			return e.now
		}
		if t := ea.NextEvent(e.now); t < next {
			next = t
		}
		if next <= e.now {
			return e.now
		}
	}
	return next
}

// settleAll settles per-cycle statistics through the current cycle.
func (e *Engine) settleAll() {
	for _, s := range e.allSettle {
		s.Settle(e.now)
	}
}

// Run advances until done reports true or limit cycles have elapsed,
// returning the elapsed cycles and whether done was satisfied. done is
// evaluated before each tick — an already-finished machine costs zero
// cycles, and the elapsed count on success is the exact cycle the
// predicate first held. Every component is re-armed at entry, so state
// mutated between Runs needs no explicit Wake. On return (either way) all
// Settler components are settled through the final cycle, so statistics
// read afterwards are complete.
func (e *Engine) Run(done func() bool, limit Cycle) (elapsed Cycle, ok bool) {
	start := e.now
	defer e.settleAll()
	if e.resumePending {
		// Resuming from a checkpoint: the restored wake queue is already
		// exact, so no blanket re-arm — and the pause may have landed
		// mid-jump (the limit clamped an idle skip), so the jump completes
		// before the first tick, exactly as the uninterrupted run took it.
		e.resumePending = false
		if !done() {
			e.idleJump(start, limit)
		}
	} else {
		e.gridAnchor = e.now
		if !e.legacy {
			e.wakeAllAt(e.now)
		}
	}
	for e.now-start < limit {
		if done() {
			return e.now - start, true
		}
		if e.legacy {
			e.legacyTick()
		} else {
			e.tick()
		}
		if done() {
			continue // report the exact completion cycle, not a jump target
		}
		e.idleJump(start, limit)
	}
	if ok = done(); !ok {
		// Paused at the limit: the wake queue is exact, so the next Run
		// (on this engine, or on one restored from a checkpoint taken now)
		// must resume rather than blanket re-arm.
		e.resumePending = true
	}
	return e.now - start, ok
}

// idleJump advances simulated time to the next armed wake (or the busy
// horizon) when nothing is due now, clamped to the run's cycle limit and
// aligned to the stride grid. Shared by the post-tick path and the
// resume-from-checkpoint prologue.
func (e *Engine) idleJump(start, limit Cycle) {
	var t Cycle
	if e.legacy {
		t = e.legacyNextEvent()
	} else if len(e.fheap) > 0 {
		t = e.wake[e.fheap[0]]
	} else {
		t = Never
	}
	if t <= e.now {
		return
	}
	fromHorizon := false
	if t == Never {
		if e.busyHorizon <= e.now {
			// Nothing is armed and no resource is busy. A component
			// mutated without a wake (there are none, but the
			// contract degrades safely) or a genuinely-finished
			// machine whose done predicate lags: advance one
			// exhaustive tick rather than jumping.
			if !e.legacy {
				e.wakeAllAt(e.now)
			}
			return
		}
		// Nothing will fire an event, but a resource is still
		// occupied: the done predicate can first hold at the
		// horizon.
		t = e.busyHorizon
		fromHorizon = true
	}
	clamped := false
	if t-start > limit {
		t = start + limit
		clamped = true
	}
	if e.stride > 1 {
		// stay on the tick grid (anchored at the original run's entry
		// cycle, so resumed runs share the uninterrupted run's grid)
		if off := (t - e.gridAnchor) % e.stride; off != 0 {
			t += e.stride - off
			if t-start > limit {
				t = start + limit
				clamped = true
			}
		}
	}
	if t > e.now {
		e.cyclesSkipped += uint64(t - e.now)
	}
	e.now = t
	if fromHorizon && !clamped && !e.legacy {
		// The horizon tick is exhaustive, as it was under polling:
		// no component predicted it, so every slot must run. When the
		// clamp cut the jump short (the run is pausing at its limit),
		// the arm is skipped: the resumed run re-derives the same
		// horizon jump and arms at the true horizon, exactly as the
		// uninterrupted run did.
		e.wakeAllAt(e.now)
	}
}
