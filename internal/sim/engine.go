package sim

// Engine is the shared event-driven simulation driver every machine model
// runs on: registered components stepped in a fixed order each tick, with
// simulated time jumping over provably-dead gaps.
//
// The determinism contract is the same one the exhaustive Scheduler
// enforces, hoisted to machine scope:
//
//   - Registration order is evaluation order. Every component is stepped
//     every tick, so within-cycle interactions (a network delivering into a
//     bank before the bank's step, a core issuing after its memory stepped)
//     behave exactly as they did under a hand-rolled Step loop.
//   - After a tick, if every component reports a NextEvent strictly in the
//     future, time jumps to the earliest of them. Because nothing steps
//     during the jumped-over cycles, no Request/Send/Done activity can
//     occur in the gap: machine state is frozen, which is what makes the
//     jump sound and gap-settled statistics (Gauge.SampleN,
//     Utilization.AddTicks) exact rather than approximate.
//   - Components with per-cycle statistics implement Settler and account
//     the skipped cycles lazily: on their next Step they sample the frozen
//     level once per skipped cycle, and Run settles everyone on exit so a
//     finished run's statistics are bit-identical to exhaustive stepping.
//
// The Engine deliberately does not skip individual components within a
// tick: a component's per-cycle observations (queue length at its step
// slot) depend on which earlier components already ran this cycle, so
// slot-accurate statistics require the slot to execute. The win lives in
// the gaps between ticks — latency-dominated sweeps spend most of their
// simulated time with every component idle — and inside components that
// keep their own active lists (internal/core's PE sweeps).
type Engine struct {
	components  []Component
	settlers    []Settler
	now         Cycle
	stride      Cycle
	busyHorizon Cycle
}

// Settler is implemented by components that keep per-cycle statistics and
// must account cycles the engine jumped over. Settle(through) settles
// statistics for all unaccounted cycles before `through`, using the state
// frozen at the component's last step — sound because jumped-over cycles
// are activity-free by construction.
type Settler interface {
	Settle(through Cycle)
}

// NewEngine returns an empty engine at cycle 0 advancing 1 cycle per tick.
func NewEngine() *Engine { return &Engine{stride: 1} }

// Register adds c to the step list. Registration order is evaluation
// order — part of the deterministic contract, exactly as with Scheduler.
func (e *Engine) Register(c Component) {
	e.components = append(e.components, c)
	if s, ok := c.(Settler); ok {
		e.settlers = append(e.settlers, s)
	}
}

// Now reports the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// SetStride sets the simulated-time cost of one tick. The Connection
// Machine's sequencer charges a full bit-serial word time per router step;
// everything else leaves the default of 1.
func (e *Engine) SetStride(d Cycle) {
	if d < 1 {
		d = 1
	}
	e.stride = d
}

// Advance moves simulated time forward by d cycles outside Run — the SIMD
// sequencer's compute instructions consume time without stepping any
// component.
func (e *Engine) Advance(d Cycle) { e.now += d }

// NoteBusy raises the busy horizon: a promise that some resource is
// occupied through cycle `until`. Machines whose completion predicate is
// "queues empty and past the horizon" (the TTDA) call this as they issue
// work; when every component reports Never but the horizon is still ahead,
// the engine jumps to the horizon instead of the cycle limit.
func (e *Engine) NoteBusy(until Cycle) {
	if until > e.busyHorizon {
		e.busyHorizon = until
	}
}

// BusyHorizon reports the latest cycle any resource promised to be busy
// through.
func (e *Engine) BusyHorizon() Cycle { return e.busyHorizon }

// tick steps every component once, in registration order, then advances
// time by the stride.
func (e *Engine) tick() {
	for _, c := range e.components {
		c.Step(e.now)
	}
	e.now += e.stride
}

// nextEvent reports the earliest cycle any component can make progress,
// exactly as Scheduler.NextEvent: non-EventAware components pin it to now.
func (e *Engine) nextEvent() Cycle {
	next := Never
	for _, c := range e.components {
		ea, ok := c.(EventAware)
		if !ok {
			return e.now
		}
		if t := ea.NextEvent(e.now); t < next {
			next = t
		}
		if next <= e.now {
			return e.now
		}
	}
	return next
}

// settleAll settles per-cycle statistics through the current cycle.
func (e *Engine) settleAll() {
	for _, s := range e.settlers {
		s.Settle(e.now)
	}
}

// Run advances until done reports true or limit cycles have elapsed,
// returning the elapsed cycles and whether done was satisfied. done is
// evaluated before each tick — an already-finished machine costs zero
// cycles, and the elapsed count on success is the exact cycle the
// predicate first held, matching the hand-rolled
// `for { if done { return }; Step; now++ }` loops this replaces. On
// return (either way) all Settler components are settled through the
// final cycle, so statistics read afterwards are complete.
func (e *Engine) Run(done func() bool, limit Cycle) (elapsed Cycle, ok bool) {
	start := e.now
	defer e.settleAll()
	for e.now-start < limit {
		if done() {
			return e.now - start, true
		}
		e.tick()
		if done() {
			continue // report the exact completion cycle, not a jump target
		}
		if t := e.nextEvent(); t > e.now {
			if t == Never {
				if e.busyHorizon <= e.now {
					// Every component reports Never and no resource is
					// busy. A component woken later in the tick (after its
					// NextEvent was read) may have made that report stale,
					// so advance one plain tick rather than jumping.
					continue
				}
				// Nothing will fire an event, but a resource is still
				// occupied: the done predicate can first hold at the
				// horizon.
				t = e.busyHorizon
			}
			if t-start > limit {
				t = start + limit
			}
			if e.stride > 1 {
				// stay on the tick grid
				if off := (t - start) % e.stride; off != 0 {
					t += e.stride - off
					if t-start > limit {
						t = start + limit
					}
				}
			}
			e.now = t
		}
	}
	return e.now - start, done()
}
