package sim

import "testing"

func TestPlanShardsCoversExactlyOnce(t *testing.T) {
	for units := 1; units <= 40; units++ {
		for shards := 1; shards <= 12; shards++ {
			spans := PlanShards(units, shards)
			covered := make([]int, units)
			prevHi := 0
			for _, sp := range spans {
				if sp.Lo != prevHi {
					t.Fatalf("units=%d shards=%d: span %+v not contiguous with previous end %d", units, shards, sp, prevHi)
				}
				if sp.Len() < 1 {
					t.Fatalf("units=%d shards=%d: empty span %+v", units, shards, sp)
				}
				for u := sp.Lo; u < sp.Hi; u++ {
					covered[u]++
				}
				prevHi = sp.Hi
			}
			if prevHi != units {
				t.Fatalf("units=%d shards=%d: spans end at %d", units, shards, prevHi)
			}
			for u, c := range covered {
				if c != 1 {
					t.Fatalf("units=%d shards=%d: unit %d covered %d times", units, shards, u, c)
				}
			}
		}
	}
}

func TestPlanShardsBalance(t *testing.T) {
	spans := PlanShards(10, 4)
	if len(spans) != 4 {
		t.Fatalf("want 4 spans, got %d", len(spans))
	}
	min, max := spans[0].Len(), spans[0].Len()
	for _, sp := range spans {
		if sp.Len() < min {
			min = sp.Len()
		}
		if sp.Len() > max {
			max = sp.Len()
		}
	}
	if max-min > 1 {
		t.Fatalf("unbalanced spans: min %d max %d (%v)", min, max, spans)
	}
}

func TestPlanShardsDegenerate(t *testing.T) {
	if got := PlanShards(0, 4); got != nil {
		t.Fatalf("0 units: want nil, got %v", got)
	}
	if got := PlanShards(5, 1); len(got) != 1 || got[0] != (Span{0, 5}) {
		t.Fatalf("1 shard: want [{0 5}], got %v", got)
	}
	if got := PlanShards(5, 0); len(got) != 1 || got[0] != (Span{0, 5}) {
		t.Fatalf("0 shards treated as 1: got %v", got)
	}
	// More shards than units: one singleton span per unit.
	got := PlanShards(3, 8)
	if len(got) != 3 {
		t.Fatalf("3 units 8 shards: want 3 spans, got %v", got)
	}
	for i, sp := range got {
		if sp.Lo != i || sp.Hi != i+1 {
			t.Fatalf("3 units 8 shards: span %d = %+v, want {%d %d}", i, sp, i, i+1)
		}
	}
}
