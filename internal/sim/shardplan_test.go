package sim

import (
	"strings"
	"testing"
)

func TestPlanShardsCoversExactlyOnce(t *testing.T) {
	for units := 1; units <= 40; units++ {
		for shards := 1; shards <= 12; shards++ {
			spans := PlanShards(units, shards)
			covered := make([]int, units)
			prevHi := 0
			for _, sp := range spans {
				if sp.Lo != prevHi {
					t.Fatalf("units=%d shards=%d: span %+v not contiguous with previous end %d", units, shards, sp, prevHi)
				}
				if sp.Len() < 1 {
					t.Fatalf("units=%d shards=%d: empty span %+v", units, shards, sp)
				}
				for u := sp.Lo; u < sp.Hi; u++ {
					covered[u]++
				}
				prevHi = sp.Hi
			}
			if prevHi != units {
				t.Fatalf("units=%d shards=%d: spans end at %d", units, shards, prevHi)
			}
			for u, c := range covered {
				if c != 1 {
					t.Fatalf("units=%d shards=%d: unit %d covered %d times", units, shards, u, c)
				}
			}
		}
	}
}

func TestPlanShardsBalance(t *testing.T) {
	// Property over the whole grid: span sizes may differ by at most one,
	// so no worker ever carries more than one extra unit of load.
	for units := 1; units <= 40; units++ {
		for shards := 1; shards <= 12; shards++ {
			spans := PlanShards(units, shards)
			min, max := spans[0].Len(), spans[0].Len()
			for _, sp := range spans {
				if sp.Len() < min {
					min = sp.Len()
				}
				if sp.Len() > max {
					max = sp.Len()
				}
			}
			if max-min > 1 {
				t.Fatalf("units=%d shards=%d: unbalanced spans min %d max %d (%v)",
					units, shards, min, max, spans)
			}
		}
	}
}

func TestPlanShardsLookahead(t *testing.T) {
	spansZero, err := PlanShardsLookahead(8, 2, 0)
	if err == nil {
		t.Fatalf("lookahead 0: want error, got spans %v", spansZero)
	}
	if !strings.Contains(err.Error(), "lookahead") || !strings.Contains(err.Error(), "deferred-commit") {
		t.Fatalf("lookahead 0: error %q does not explain the protocol constraint", err)
	}
	spans, err := PlanShardsLookahead(10, 4, 1)
	if err != nil {
		t.Fatalf("lookahead 1 must be accepted: %v", err)
	}
	want := PlanShards(10, 4)
	if len(spans) != len(want) {
		t.Fatalf("plan mismatch: %v vs %v", spans, want)
	}
	for i := range spans {
		if spans[i] != want[i] {
			t.Fatalf("plan mismatch at %d: %v vs %v", i, spans, want)
		}
	}
}

func TestPlanShardsDegenerate(t *testing.T) {
	if got := PlanShards(0, 4); got != nil {
		t.Fatalf("0 units: want nil, got %v", got)
	}
	if got := PlanShards(5, 1); len(got) != 1 || got[0] != (Span{0, 5}) {
		t.Fatalf("1 shard: want [{0 5}], got %v", got)
	}
	if got := PlanShards(5, 0); len(got) != 1 || got[0] != (Span{0, 5}) {
		t.Fatalf("0 shards treated as 1: got %v", got)
	}
	// More shards than units: one singleton span per unit.
	got := PlanShards(3, 8)
	if len(got) != 3 {
		t.Fatalf("3 units 8 shards: want 3 spans, got %v", got)
	}
	for i, sp := range got {
		if sp.Lo != i || sp.Hi != i+1 {
			t.Fatalf("3 units 8 shards: span %d = %+v, want {%d %d}", i, sp, i, i+1)
		}
	}
}
