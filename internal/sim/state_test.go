package sim

import (
	"bytes"
	"testing"
)

// chainComp steps at each cycle of a fixed schedule, then goes idle — its
// wake entry must round-trip through the Never sentinel.
type chainComp struct {
	at   []Cycle
	next int
	hits uint64
}

func (c *chainComp) Step(now Cycle) {
	for c.next < len(c.at) && c.at[c.next] <= now {
		c.next++
		c.hits++
	}
}

func (c *chainComp) NextEvent(now Cycle) Cycle {
	if c.next >= len(c.at) {
		return Never
	}
	if c.at[c.next] < now {
		return now
	}
	return c.at[c.next]
}

func (c *chainComp) idle() bool  { return c.next >= len(c.at) }
func (c *chainComp) save(e *Enc) { e.Int(c.next); e.U64(c.hits) }
func (c *chainComp) load(d *Dec) { c.next = d.Int(); c.hits = d.U64() }

// greedyComp re-arms at the current cycle on every tick until exhausted —
// after its final tick it sits armed one cycle below the engine clock, the
// exact case LoadState must accept (bound prevTick) without clamping.
type greedyComp struct {
	left int
	hits uint64
}

func (g *greedyComp) Step(Cycle) {
	if g.left > 0 {
		g.left--
		g.hits++
	}
}

func (g *greedyComp) NextEvent(now Cycle) Cycle {
	if g.left == 0 {
		return Never
	}
	return now
}

func (g *greedyComp) idle() bool  { return g.left == 0 }
func (g *greedyComp) save(e *Enc) { e.Int(g.left); e.U64(g.hits) }
func (g *greedyComp) load(d *Dec) { g.left = d.Int(); g.hits = d.U64() }

// statefulComp is what the test rig serializes alongside the engine.
type statefulComp interface {
	Component
	idle() bool
	save(*Enc)
	load(*Dec)
}

// stateRig bundles an engine with its components as one Stateful machine.
type stateRig struct {
	eng interface {
		Stateful
		Run(done func() bool, limit Cycle) (Cycle, bool)
	}
	comps []statefulComp
}

func (r *stateRig) SaveState(e *Enc) {
	r.eng.SaveState(e)
	for _, c := range r.comps {
		c.save(e)
	}
}

func (r *stateRig) LoadState(d *Dec) error {
	if err := r.eng.LoadState(d); err != nil {
		return err
	}
	for _, c := range r.comps {
		c.load(d)
	}
	return d.Err()
}

func (r *stateRig) done() bool {
	for _, c := range r.comps {
		if !c.idle() {
			return false
		}
	}
	return true
}

func (r *stateRig) run(t *testing.T, limit Cycle) bool {
	t.Helper()
	_, ok := r.eng.Run(r.done, limit)
	return ok
}

// newChainRig builds the mixed rig every test uses: a short chain that
// goes idle early (Never sentinel), a long sparse chain (pending heap
// entries), and a greedy component (same-tick wakes).
func newChainRig(parallel bool) *stateRig {
	r := &stateRig{}
	r.comps = []statefulComp{
		&chainComp{at: []Cycle{2, 3}},
		&chainComp{at: []Cycle{1, 10, 20, 40}},
		&greedyComp{left: 12},
	}
	if parallel {
		eng := NewParallelEngine()
		eng.Register(r.comps[0])
		eng.RegisterShard(r.comps[1])
		eng.RegisterShard(r.comps[2])
		r.eng = eng
	} else {
		eng := NewEngine()
		for _, c := range r.comps {
			eng.Register(c)
		}
		r.eng = eng
	}
	return r
}

// armedSet reads the engine's wake queue as (armed, at) pairs in component
// index order — the canonical form saveWakeQueue writes.
func armedSet(r *stateRig) (armed []bool, at []Cycle) {
	var wake []Cycle
	var pos []int
	switch e := r.eng.(type) {
	case *Engine:
		wake, pos = e.wake, e.pos
	case *ParallelEngine:
		wake, pos = e.wake, e.pos
	}
	for i := range wake {
		armed = append(armed, pos[i] >= 0)
		if pos[i] >= 0 {
			at = append(at, wake[i])
		} else {
			at = append(at, Never)
		}
	}
	return armed, at
}

// minArmed is the engine's next wake — what NextEvent-driven idle jumps
// consult — derived from the canonical armed set.
func minArmed(r *stateRig) Cycle {
	_, at := armedSet(r)
	min := Never
	for _, a := range at {
		if a < min {
			min = a
		}
	}
	return min
}

// roundTrip pauses a fresh rig at pause cycles, checkpoints it, restores
// into another fresh rig, and demands: canonical re-encoding, identical
// armed set and next wake, and a resumed run whose end state is
// byte-identical to the uninterrupted run's.
func roundTrip(t *testing.T, parallel bool, pause Cycle) {
	t.Helper()
	const limit = 1000

	ref := newChainRig(parallel)
	if !ref.run(t, limit) {
		t.Fatal("reference run did not finish")
	}
	refBytes := Checkpoint(ref)

	m := newChainRig(parallel)
	if m.run(t, pause) {
		t.Fatalf("run finished within %d cycles", pause)
	}
	data := Checkpoint(m)

	fresh := newChainRig(parallel)
	if err := Restore(fresh, data); err != nil {
		t.Fatalf("restore at cycle %d: %v", pause, err)
	}
	if re := Checkpoint(fresh); !bytes.Equal(re, data) {
		t.Fatalf("restore→save at cycle %d is not byte-identical", pause)
	}

	wantArmed, wantAt := armedSet(m)
	gotArmed, gotAt := armedSet(fresh)
	for i := range wantArmed {
		if wantArmed[i] != gotArmed[i] || wantAt[i] != gotAt[i] {
			t.Fatalf("component %d wake state diverged: armed %v@%d, restored %v@%d",
				i, wantArmed[i], wantAt[i], gotArmed[i], gotAt[i])
		}
	}
	if a, b := minArmed(m), minArmed(fresh); a != b {
		t.Fatalf("next wake diverged: %d vs %d", a, b)
	}

	// Both the in-place continuation and the restored copy must land on
	// the uninterrupted run's exact end state.
	if !m.run(t, limit) || !fresh.run(t, limit) {
		t.Fatal("resumed runs did not finish")
	}
	if !bytes.Equal(Checkpoint(m), refBytes) {
		t.Fatalf("in-place continuation from cycle %d diverged from the straight run", pause)
	}
	if !bytes.Equal(Checkpoint(fresh), refBytes) {
		t.Fatalf("restored run from cycle %d diverged from the straight run", pause)
	}
}

// TestWakeQueueNeverSentinelRoundTrip pauses after the short chain went
// idle: its queue slot must survive Save→Load as unarmed.
func TestWakeQueueNeverSentinelRoundTrip(t *testing.T) {
	for _, pause := range []Cycle{5, 8} {
		roundTrip(t, false, pause)
	}
}

// TestWakeQueueSameTickArmRoundTrip pauses while the greedy component is
// still re-arming at the current cycle, so the checkpoint carries a wake
// one tick below the clock — LoadState must admit it unclamped.
func TestWakeQueueSameTickArmRoundTrip(t *testing.T) {
	for _, pause := range []Cycle{1, 3, 11} {
		roundTrip(t, false, pause)
	}
}

// TestWakeQueuePendingHeapRoundTrip pauses with multiple future wakes in
// the heap (the sparse chain's 20- and 40-cycle events still pending).
func TestWakeQueuePendingHeapRoundTrip(t *testing.T) {
	for _, pause := range []Cycle{13, 19, 25, 39} {
		roundTrip(t, false, pause)
	}
}

// TestWakeQueueParallelEngineRoundTrip repeats all three shapes on the
// conservative parallel kernel.
func TestWakeQueueParallelEngineRoundTrip(t *testing.T) {
	for _, pause := range []Cycle{3, 8, 11, 25, 39} {
		roundTrip(t, true, pause)
	}
}

// TestWakeQueueRejectsPreTickArm pins the LoadState bound: an arm before
// prevTick is corrupt, not clampable.
func TestWakeQueueRejectsPreTickArm(t *testing.T) {
	m := newChainRig(false)
	if m.run(t, 15) {
		t.Fatal("run finished unexpectedly")
	}
	data := Checkpoint(m)

	// The stream layout is magic, "engine" tag, legacy bool, core cycles
	// (now first, prevTick second), ... wake entries. Rather than patch
	// bytes at a fragile offset, rebuild a stream with an impossible arm by
	// saving a doctored rig.
	bad := newChainRig(false)
	if err := Restore(bad, data); err != nil {
		t.Fatal(err)
	}
	eng := bad.eng.(*Engine)
	for i := range eng.pos {
		if eng.pos[i] >= 0 {
			eng.wake[i] = 0 // before any executed tick
		}
	}
	corrupted := Checkpoint(bad)
	if err := Restore(newChainRig(false), corrupted); err == nil {
		t.Fatal("restore accepted a wake armed before the last executed tick")
	}
}
