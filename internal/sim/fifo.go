package sim

// FIFO is a growable ring-buffer queue. It replaces the copy-on-pop slice
// queues in the simulator hot paths: Push and Pop are O(1) amortized and
// the buffer is reused across a run, so a machine that floods a queue with
// thousands of tokens no longer pays a memmove per dequeue or an
// allocation per refill. Order is strictly first-in first-out — the
// deterministic-simulation contract depends on it. The zero FIFO is ready
// to use.
type FIFO[T any] struct {
	buf  []T
	head int
	n    int
}

// Len reports the number of queued elements.
func (q *FIFO[T]) Len() int { return q.n }

// Empty reports whether the queue holds nothing.
func (q *FIFO[T]) Empty() bool { return q.n == 0 }

// Push appends v at the tail.
func (q *FIFO[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

// Pop removes and returns the head element. It panics on an empty queue.
func (q *FIFO[T]) Pop() T {
	if q.n == 0 {
		panic("sim: Pop of empty FIFO")
	}
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero // release references for the garbage collector
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// PopNoClear is Pop without zeroing the vacated slot. Only for element
// types that contain no pointers: the stale copy left in the buffer is
// invisible to callers but would pin garbage if T referenced the heap.
// Skipping the clear removes a per-dequeue memclr from hot paths moving
// large value types (simulator tokens are ~72 bytes).
func (q *FIFO[T]) PopNoClear() T {
	if q.n == 0 {
		panic("sim: Pop of empty FIFO")
	}
	v := q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// Peek returns the head element without removing it. It panics on an
// empty queue.
func (q *FIFO[T]) Peek() T {
	if q.n == 0 {
		panic("sim: Peek of empty FIFO")
	}
	return q.buf[q.head]
}

// At returns the i-th element from the head (0 = next to pop).
func (q *FIFO[T]) At(i int) T {
	if i < 0 || i >= q.n {
		panic("sim: FIFO index out of range")
	}
	return q.buf[(q.head+i)&(len(q.buf)-1)]
}

// grow doubles the buffer (minimum 8), unwrapping the ring so head is 0.
func (q *FIFO[T]) grow() {
	nb := make([]T, max(8, 2*len(q.buf)))
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}
