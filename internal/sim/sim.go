// Package sim provides the deterministic simulation kernel shared by every
// machine model in this repository: a cycle-stepped scheduler for
// synchronous hardware models, an event heap for discrete-event models, and
// a seeded pseudo-random number generator so that all experiments are
// reproducible run-to-run.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Cycle is a point in simulated time, measured in machine cycles.
type Cycle uint64

// Never is the sentinel "no pending event" cycle: later than any real
// simulated time. Event-aware components return it from NextEvent when
// they hold no work at all.
const Never = Cycle(math.MaxUint64)

// Component is a piece of synchronous hardware. On every cycle the
// scheduler calls Step exactly once with the current time. Components must
// not assume any particular ordering relative to other components within a
// cycle; anything that needs strict phase ordering should be registered as
// separate components in the desired order.
type Component interface {
	Step(now Cycle)
}

// ComponentFunc adapts an ordinary function to the Component interface.
type ComponentFunc func(now Cycle)

// Step calls f(now).
func (f ComponentFunc) Step(now Cycle) { f(now) }

// EventAware is an optional Component extension for idle skipping. A
// component that knows when its next state change can possibly happen
// reports it from NextEvent: `now` means "step me this cycle", a future
// cycle means "stepping me before then is a no-op", and Never means "I
// hold no work". Components that cannot promise this simply don't
// implement the interface and are stepped every cycle.
type EventAware interface {
	Component
	NextEvent(now Cycle) Cycle
}

// Scheduler drives a set of Components in lockstep. Components are stepped
// in registration order, which is part of the simulation's deterministic
// contract: the same program on the same machine configuration always
// produces the same cycle counts.
type Scheduler struct {
	components []Component
	now        Cycle
}

// NewScheduler returns an empty scheduler at cycle 0.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Register adds c to the step list. Registration order is evaluation order.
func (s *Scheduler) Register(c Component) { s.components = append(s.components, c) }

// Now reports the current cycle.
func (s *Scheduler) Now() Cycle { return s.now }

// Tick advances simulated time by one cycle, stepping every component.
func (s *Scheduler) Tick() {
	for _, c := range s.components {
		c.Step(s.now)
	}
	s.now++
}

// Run advances until the predicate done reports true or limit cycles have
// elapsed, and returns the number of cycles executed along with whether the
// predicate was satisfied. done is evaluated before each cycle, so a
// simulation that is already finished costs zero cycles.
func (s *Scheduler) Run(done func() bool, limit Cycle) (elapsed Cycle, ok bool) {
	start := s.now
	for s.now-start < limit {
		if done() {
			return s.now - start, true
		}
		s.Tick()
	}
	return s.now - start, done()
}

// NextEvent reports the earliest cycle at which any registered component
// can make progress: the minimum of the components' NextEvent answers.
// Components that are not EventAware pin the answer to now (they must be
// stepped every cycle).
func (s *Scheduler) NextEvent() Cycle {
	next := Never
	for _, c := range s.components {
		ea, ok := c.(EventAware)
		if !ok {
			return s.now
		}
		if t := ea.NextEvent(s.now); t < next {
			next = t
		}
		if next <= s.now {
			return s.now
		}
	}
	return next
}

// RunEvented is Run with idle skipping: after each tick, if every
// component reports its next possible state change lies in the future,
// simulated time jumps straight there instead of burning empty cycles.
// Cycle counts are identical to Run's for any component set whose
// NextEvent contract is honest; a mix of event-aware and plain components
// degrades gracefully to per-cycle stepping.
func (s *Scheduler) RunEvented(done func() bool, limit Cycle) (elapsed Cycle, ok bool) {
	start := s.now
	for s.now-start < limit {
		if done() {
			return s.now - start, true
		}
		s.Tick()
		if done() {
			continue // report the exact completion cycle, not a jump target
		}
		if t := s.NextEvent(); t > s.now {
			if t == Never || t-start > limit {
				t = start + limit
			}
			s.now = t
		}
	}
	return s.now - start, done()
}

// ErrLimit is returned by MustRun when the cycle limit is exhausted before
// the completion predicate holds.
type ErrLimit struct {
	Limit Cycle
}

func (e ErrLimit) Error() string {
	return fmt.Sprintf("sim: cycle limit %d exhausted before completion", e.Limit)
}

// MustRun is Run, but converts a limit overrun into an error value, for
// callers that treat non-termination as failure.
func (s *Scheduler) MustRun(done func() bool, limit Cycle) (Cycle, error) {
	elapsed, ok := s.Run(done, limit)
	if !ok {
		return elapsed, ErrLimit{Limit: limit}
	}
	return elapsed, nil
}

// Event is a scheduled callback in a discrete-event simulation.
type Event struct {
	At  Cycle
	Seq uint64 // tie-break so same-cycle events fire in schedule order
	Fn  func()
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].Seq < h[j].Seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// EventQueue is a discrete-event kernel: callbacks scheduled at absolute
// cycles, dispatched in (time, schedule-order) order.
type EventQueue struct {
	h   eventHeap
	now Cycle
	seq uint64
}

// NewEventQueue returns an empty queue at cycle 0.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Now reports the time of the most recently dispatched event.
func (q *EventQueue) Now() Cycle { return q.now }

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return q.h.Len() }

// At schedules fn to run at absolute cycle t. Scheduling in the past
// (t < Now) is a programming error and panics.
func (q *EventQueue) At(t Cycle, fn func()) {
	if t < q.now {
		panic(fmt.Sprintf("sim: event scheduled at %d, now is %d", t, q.now))
	}
	q.seq++
	heap.Push(&q.h, &Event{At: t, Seq: q.seq, Fn: fn})
}

// After schedules fn to run d cycles from now.
func (q *EventQueue) After(d Cycle, fn func()) { q.At(q.now+d, fn) }

// Next reports the cycle of the earliest pending event, or Never when the
// queue is empty — the queue's NextEvent answer for event-driven owners.
func (q *EventQueue) Next() Cycle {
	if q.h.Len() == 0 {
		return Never
	}
	return q.h[0].At
}

// RunOne dispatches the next event, if any, and reports whether one ran.
func (q *EventQueue) RunOne() bool {
	if q.h.Len() == 0 {
		return false
	}
	e := heap.Pop(&q.h).(*Event)
	q.now = e.At
	e.Fn()
	return true
}

// RunUntil dispatches events until the queue is empty or simulated time
// would pass the deadline. It returns the number of events dispatched.
func (q *EventQueue) RunUntil(deadline Cycle) int {
	n := 0
	for q.h.Len() > 0 && q.h[0].At <= deadline {
		q.RunOne()
		n++
	}
	return n
}

// Drain dispatches every pending event and returns the count dispatched. A
// limit guards against runaway self-scheduling models; Drain panics if more
// than limit events fire.
func (q *EventQueue) Drain(limit int) int {
	n := 0
	for q.RunOne() {
		n++
		if n > limit {
			panic(fmt.Sprintf("sim: event queue did not drain within %d events", limit))
		}
	}
	return n
}
