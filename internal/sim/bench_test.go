package sim

import "testing"

// BenchmarkFIFOSteadyState pins the property the hot paths rely on: a FIFO
// whose occupancy oscillates within a previously-reached high-water mark
// performs zero allocations per operation. The network inflight queues and
// the memory due queues all reuse one FIFO across a whole run, so any
// regression here (a Push that reallocates, a Pop that copies) multiplies
// across every simulated packet.
func BenchmarkFIFOSteadyState(b *testing.B) {
	var q FIFO[int]
	// Reach the high-water mark once; steady state reuses this buffer.
	const depth = 64
	for i := 0; i < depth; i++ {
		q.Push(i)
	}
	for i := 0; i < depth; i++ {
		q.Pop()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < depth; j++ {
			q.Push(j)
		}
		for j := 0; j < depth; j++ {
			q.Pop()
		}
	}
}

// BenchmarkFIFOPointerSteadyState is the pointer-element variant (the
// shape the crossbar and retry queues use); Pop must zero the slot for the
// garbage collector without allocating.
func BenchmarkFIFOPointerSteadyState(b *testing.B) {
	type payload struct{ a, b uint64 }
	var q FIFO[*payload]
	items := make([]*payload, 64)
	for i := range items {
		items[i] = &payload{}
	}
	for _, p := range items {
		q.Push(p)
	}
	for range items {
		q.Pop()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range items {
			q.Push(p)
		}
		for range items {
			q.Pop()
		}
	}
}

// TestFIFOSteadyStateZeroAlloc enforces the benchmark's claim in the
// regular test suite: steady-state Push/Pop cycles allocate nothing.
func TestFIFOSteadyStateZeroAlloc(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 32; i++ {
		q.Push(i)
	}
	for i := 0; i < 32; i++ {
		q.Pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for j := 0; j < 32; j++ {
			q.Push(j)
		}
		for j := 0; j < 32; j++ {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state FIFO traffic allocated %.1f times per cycle; want 0", allocs)
	}
}
