package sim

import (
	"testing"
	"testing/quick"
)

func TestSchedulerTickOrder(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Register(ComponentFunc(func(now Cycle) { order = append(order, i) }))
	}
	s.Tick()
	for i, v := range order {
		if v != i {
			t.Fatalf("components stepped out of registration order: %v", order)
		}
	}
	if s.Now() != 1 {
		t.Fatalf("Now() = %d after one tick", s.Now())
	}
}

func TestSchedulerRunStopsOnPredicate(t *testing.T) {
	s := NewScheduler()
	count := 0
	s.Register(ComponentFunc(func(now Cycle) { count++ }))
	elapsed, ok := s.Run(func() bool { return count >= 10 }, 1000)
	if !ok || elapsed != 10 || count != 10 {
		t.Fatalf("elapsed=%d ok=%t count=%d, want 10/true/10", elapsed, ok, count)
	}
}

func TestSchedulerRunAlreadyDone(t *testing.T) {
	s := NewScheduler()
	elapsed, ok := s.Run(func() bool { return true }, 100)
	if !ok || elapsed != 0 {
		t.Fatalf("elapsed=%d ok=%t, want 0/true", elapsed, ok)
	}
}

func TestSchedulerRunHitsLimit(t *testing.T) {
	s := NewScheduler()
	elapsed, ok := s.Run(func() bool { return false }, 42)
	if ok || elapsed != 42 {
		t.Fatalf("elapsed=%d ok=%t, want 42/false", elapsed, ok)
	}
	if _, err := s.MustRun(func() bool { return false }, 5); err == nil {
		t.Fatal("MustRun should report limit exhaustion")
	}
}

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var got []int
	q.At(30, func() { got = append(got, 3) })
	q.At(10, func() { got = append(got, 1) })
	q.At(20, func() { got = append(got, 2) })
	q.At(10, func() { got = append(got, 11) }) // same time: schedule order
	q.Drain(100)
	want := []int{1, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
	if q.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", q.Now())
	}
}

func TestEventQueueSelfScheduling(t *testing.T) {
	q := NewEventQueue()
	n := 0
	var step func()
	step = func() {
		n++
		if n < 5 {
			q.After(7, step)
		}
	}
	q.At(0, step)
	q.Drain(100)
	if n != 5 {
		t.Fatalf("fired %d times, want 5", n)
	}
	if q.Now() != 28 {
		t.Fatalf("Now() = %d, want 28", q.Now())
	}
}

func TestEventQueueRunUntil(t *testing.T) {
	q := NewEventQueue()
	fired := 0
	for i := Cycle(0); i < 10; i++ {
		q.At(i*10, func() { fired++ })
	}
	if n := q.RunUntil(45); n != 5 || fired != 5 {
		t.Fatalf("RunUntil dispatched %d (fired %d), want 5", n, fired)
	}
	if q.Len() != 5 {
		t.Fatalf("pending %d, want 5", q.Len())
	}
}

func TestEventQueuePastSchedulingPanics(t *testing.T) {
	q := NewEventQueue()
	q.At(10, func() {})
	q.RunOne()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	q.At(5, func() {})
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(54321)
	same := 0
	a2 := NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d times in 1000", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must not produce the degenerate all-zero stream")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRNGFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
