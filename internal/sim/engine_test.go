package sim

import "testing"

// beacon fires work every `period` cycles for `count` pulses, tracking the
// cycles at which it was stepped with work available.
type beacon struct {
	period, count Cycle
	fired         []Cycle
	stepped       Cycle // total Step calls
}

func (p *beacon) Step(now Cycle) {
	p.stepped++
	if Cycle(len(p.fired)) < p.count && now%p.period == 0 {
		p.fired = append(p.fired, now)
	}
}

func (p *beacon) NextEvent(now Cycle) Cycle {
	if Cycle(len(p.fired)) >= p.count {
		return Never
	}
	if now%p.period == 0 {
		return now
	}
	return now + (p.period - now%p.period)
}

// TestEngineMatchesScheduler pins the core contract: an Engine run and an
// exhaustive Scheduler run produce identical elapsed cycles and identical
// event times, while the Engine steps far fewer times.
func TestEngineMatchesScheduler(t *testing.T) {
	mk := func() *beacon { return &beacon{period: 100, count: 5} }

	exh := mk()
	sched := NewScheduler()
	sched.Register(exh)
	exhElapsed, ok := sched.Run(func() bool { return Cycle(len(exh.fired)) >= exh.count }, 10_000)
	if !ok {
		t.Fatal("scheduler run did not finish")
	}

	ev := mk()
	eng := NewEngine()
	eng.Register(ev)
	evElapsed, ok := eng.Run(func() bool { return Cycle(len(ev.fired)) >= ev.count }, 10_000)
	if !ok {
		t.Fatal("engine run did not finish")
	}

	if exhElapsed != evElapsed {
		t.Fatalf("elapsed diverged: exhaustive %d, evented %d", exhElapsed, evElapsed)
	}
	if len(exh.fired) != len(ev.fired) {
		t.Fatalf("fire counts diverged: %v vs %v", exh.fired, ev.fired)
	}
	for i := range exh.fired {
		if exh.fired[i] != ev.fired[i] {
			t.Fatalf("fire %d diverged: %d vs %d", i, exh.fired[i], ev.fired[i])
		}
	}
	if ev.stepped >= exh.stepped/10 {
		t.Fatalf("engine should skip the dead cycles: %d steps vs exhaustive %d", ev.stepped, exh.stepped)
	}
}

// TestEngineLimit pins limit semantics: a machine that never finishes
// reports elapsed == limit and ok == false, even when every component
// reports Never (the jump clamps to the limit).
func TestEngineLimit(t *testing.T) {
	idle := &beacon{period: 1, count: 0} // immediately done firing: Never
	e := NewEngine()
	e.Register(idle)
	elapsed, ok := e.Run(func() bool { return false }, 500)
	if ok || elapsed != 500 {
		t.Fatalf("elapsed %d ok %v, want 500 false", elapsed, ok)
	}
}

// TestEngineBusyHorizon: with all components reporting Never but a busy
// horizon ahead, the jump lands on the horizon, where done can first hold.
func TestEngineBusyHorizon(t *testing.T) {
	idle := &beacon{period: 1, count: 0}
	e := NewEngine()
	e.Register(idle)
	e.NoteBusy(300)
	elapsed, ok := e.Run(func() bool { return e.Now() >= 300 }, 10_000)
	if !ok || elapsed != 300 {
		t.Fatalf("elapsed %d ok %v, want 300 true", elapsed, ok)
	}
}

// TestEngineStride pins the Connection Machine sequencer semantics: each
// tick costs a full word time.
func TestEngineStride(t *testing.T) {
	p := &beacon{period: 1, count: 3}
	e := NewEngine()
	e.SetStride(16)
	e.Register(p)
	elapsed, ok := e.Run(func() bool { return Cycle(len(p.fired)) >= 3 }, 1_000)
	if !ok || elapsed != 48 {
		t.Fatalf("elapsed %d ok %v, want 48 true", elapsed, ok)
	}
}

// TestEngineAdvance: out-of-run time warps (SIMD compute instructions)
// move Now without stepping components.
func TestEngineAdvance(t *testing.T) {
	p := &beacon{period: 1, count: 0}
	e := NewEngine()
	e.Register(p)
	e.Advance(64)
	if e.Now() != 64 {
		t.Fatalf("now %d, want 64", e.Now())
	}
	if p.stepped != 0 {
		t.Fatal("Advance must not step components")
	}
}

// settleProbe records Settle calls.
type settleProbe struct {
	beacon
	settledThrough Cycle
}

func (s *settleProbe) Settle(through Cycle) { s.settledThrough = through }

// TestEngineSettlesOnExit: Run must settle statistics through the final
// cycle on both the success and the limit path.
func TestEngineSettlesOnExit(t *testing.T) {
	s := &settleProbe{beacon: beacon{period: 50, count: 2}}
	e := NewEngine()
	e.Register(s)
	elapsed, ok := e.Run(func() bool { return len(s.fired) >= 2 }, 10_000)
	if !ok {
		t.Fatal("did not finish")
	}
	if s.settledThrough != elapsed {
		t.Fatalf("settled through %d, want %d", s.settledThrough, elapsed)
	}
}
