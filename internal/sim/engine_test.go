package sim

import "testing"

// beacon fires work every `period` cycles for `count` pulses, tracking the
// cycles at which it was stepped with work available.
type beacon struct {
	period, count Cycle
	fired         []Cycle
	stepped       Cycle // total Step calls
}

func (p *beacon) Step(now Cycle) {
	p.stepped++
	if Cycle(len(p.fired)) < p.count && now%p.period == 0 {
		p.fired = append(p.fired, now)
	}
}

func (p *beacon) NextEvent(now Cycle) Cycle {
	if Cycle(len(p.fired)) >= p.count {
		return Never
	}
	if now%p.period == 0 {
		return now
	}
	return now + (p.period - now%p.period)
}

// TestEngineMatchesScheduler pins the core contract: an Engine run and an
// exhaustive Scheduler run produce identical elapsed cycles and identical
// event times, while the Engine steps far fewer times.
func TestEngineMatchesScheduler(t *testing.T) {
	mk := func() *beacon { return &beacon{period: 100, count: 5} }

	exh := mk()
	sched := NewScheduler()
	sched.Register(exh)
	exhElapsed, ok := sched.Run(func() bool { return Cycle(len(exh.fired)) >= exh.count }, 10_000)
	if !ok {
		t.Fatal("scheduler run did not finish")
	}

	ev := mk()
	eng := NewEngine()
	eng.Register(ev)
	evElapsed, ok := eng.Run(func() bool { return Cycle(len(ev.fired)) >= ev.count }, 10_000)
	if !ok {
		t.Fatal("engine run did not finish")
	}

	if exhElapsed != evElapsed {
		t.Fatalf("elapsed diverged: exhaustive %d, evented %d", exhElapsed, evElapsed)
	}
	if len(exh.fired) != len(ev.fired) {
		t.Fatalf("fire counts diverged: %v vs %v", exh.fired, ev.fired)
	}
	for i := range exh.fired {
		if exh.fired[i] != ev.fired[i] {
			t.Fatalf("fire %d diverged: %d vs %d", i, exh.fired[i], ev.fired[i])
		}
	}
	if ev.stepped >= exh.stepped/10 {
		t.Fatalf("engine should skip the dead cycles: %d steps vs exhaustive %d", ev.stepped, exh.stepped)
	}
}

// TestEngineLimit pins limit semantics: a machine that never finishes
// reports elapsed == limit and ok == false, even when every component
// reports Never (the jump clamps to the limit).
func TestEngineLimit(t *testing.T) {
	idle := &beacon{period: 1, count: 0} // immediately done firing: Never
	e := NewEngine()
	e.Register(idle)
	elapsed, ok := e.Run(func() bool { return false }, 500)
	if ok || elapsed != 500 {
		t.Fatalf("elapsed %d ok %v, want 500 false", elapsed, ok)
	}
}

// TestEngineBusyHorizon: with all components reporting Never but a busy
// horizon ahead, the jump lands on the horizon, where done can first hold.
func TestEngineBusyHorizon(t *testing.T) {
	idle := &beacon{period: 1, count: 0}
	e := NewEngine()
	e.Register(idle)
	e.NoteBusy(300)
	elapsed, ok := e.Run(func() bool { return e.Now() >= 300 }, 10_000)
	if !ok || elapsed != 300 {
		t.Fatalf("elapsed %d ok %v, want 300 true", elapsed, ok)
	}
}

// TestEngineStride pins the Connection Machine sequencer semantics: each
// tick costs a full word time.
func TestEngineStride(t *testing.T) {
	p := &beacon{period: 1, count: 3}
	e := NewEngine()
	e.SetStride(16)
	e.Register(p)
	elapsed, ok := e.Run(func() bool { return Cycle(len(p.fired)) >= 3 }, 1_000)
	if !ok || elapsed != 48 {
		t.Fatalf("elapsed %d ok %v, want 48 true", elapsed, ok)
	}
}

// TestEngineAdvance: out-of-run time warps (SIMD compute instructions)
// move Now without stepping components.
func TestEngineAdvance(t *testing.T) {
	p := &beacon{period: 1, count: 0}
	e := NewEngine()
	e.Register(p)
	e.Advance(64)
	if e.Now() != 64 {
		t.Fatalf("now %d, want 64", e.Now())
	}
	if p.stepped != 0 {
		t.Fatal("Advance must not step components")
	}
}

// settleProbe records Settle calls.
type settleProbe struct {
	beacon
	settledThrough Cycle
}

func (s *settleProbe) Settle(through Cycle) { s.settledThrough = through }

// TestEngineSettlesOnExit: Run must settle statistics through the final
// cycle on both the success and the limit path.
func TestEngineSettlesOnExit(t *testing.T) {
	s := &settleProbe{beacon: beacon{period: 50, count: 2}}
	e := NewEngine()
	e.Register(s)
	elapsed, ok := e.Run(func() bool { return len(s.fired) >= 2 }, 10_000)
	if !ok {
		t.Fatal("did not finish")
	}
	if s.settledThrough != elapsed {
		t.Fatalf("settled through %d, want %d", s.settledThrough, elapsed)
	}
}

// sleeper parks itself until an external Wake delivers work: its NextEvent
// is Never while the inbox is empty, so only the wake-queue can revive it.
type sleeper struct {
	inbox   []Cycle // cycles work was handed over
	handled []Cycle // cycles work was processed
	stepped Cycle
	waker   Waker
}

func (s *sleeper) Attach(w Waker) { s.waker = w }

func (s *sleeper) Step(now Cycle) {
	s.stepped++
	if len(s.inbox) > 0 {
		s.handled = append(s.handled, now)
		s.inbox = s.inbox[1:]
	}
}

func (s *sleeper) NextEvent(now Cycle) Cycle {
	if len(s.inbox) == 0 {
		return Never
	}
	return now
}

// feeder hands the sleeper one item at fixed times, waking it through the
// engine exactly as a memory hands a core its completed load.
type feeder struct {
	times []Cycle
	dst   *sleeper
	waker Waker
}

func (f *feeder) Attach(w Waker) { f.waker = w }

func (f *feeder) Step(now Cycle) {
	for len(f.times) > 0 && f.times[0] <= now {
		f.times = f.times[:copy(f.times, f.times[1:])]
		f.dst.inbox = append(f.dst.inbox, now)
		f.waker.Wake(f.dst, now)
	}
}

func (f *feeder) NextEvent(now Cycle) Cycle {
	if len(f.times) == 0 {
		return Never
	}
	if t := f.times[0]; t > now {
		return t
	}
	return now
}

// TestEngineWakeRevivesParkedComponent pins the Wake API: a component
// whose NextEvent answered Never is revived by an external Wake, steps at
// exactly the wake cycle, and costs zero steps while parked.
func TestEngineWakeRevivesParkedComponent(t *testing.T) {
	dst := &sleeper{}
	src := &feeder{times: []Cycle{40, 41, 900}, dst: dst}
	e := NewEngine()
	e.Register(src)
	e.Register(dst)
	_, ok := e.Run(func() bool { return len(dst.handled) >= 3 }, 10_000)
	if !ok {
		t.Fatal("run did not finish")
	}
	want := []Cycle{40, 41, 900}
	for i, w := range want {
		if dst.handled[i] != w {
			t.Fatalf("handled[%d] = %d, want %d (all: %v)", i, dst.handled[i], w, dst.handled)
		}
	}
	if dst.stepped > 4 {
		t.Fatalf("parked component stepped %d times; wake-queue should bound it near 3", dst.stepped)
	}
	c := e.Counters()
	if c.WakesEnqueued == 0 {
		t.Fatal("no wakes were counted")
	}
	if c.CyclesSkipped == 0 {
		t.Fatal("no cycles were skipped despite an 859-cycle idle gap")
	}
	if c.StepsExecuted == 0 {
		t.Fatal("no steps were counted")
	}
}

// TestEngineWakeSameCycleLaterComponent: waking a later-registered
// component at the current cycle, from inside a tick, must step it in the
// same tick — the exhaustive engine's same-cycle visibility rule.
func TestEngineWakeSameCycleLaterComponent(t *testing.T) {
	dst := &sleeper{}
	src := &feeder{times: []Cycle{7}, dst: dst}
	e := NewEngine()
	e.Register(src)
	e.Register(dst)
	_, ok := e.Run(func() bool { return len(dst.handled) >= 1 }, 100)
	if !ok {
		t.Fatal("run did not finish")
	}
	if dst.handled[0] != 7 {
		t.Fatalf("handled at %d, want the same cycle the feeder fired (7)", dst.handled[0])
	}
}

// TestEngineWakeUnregisteredPanics: waking a component the engine does not
// own is a wiring bug and must fail loudly.
func TestEngineWakeUnregisteredPanics(t *testing.T) {
	e := NewEngine()
	e.Register(&sleeper{})
	defer func() {
		if recover() == nil {
			t.Fatal("Wake on an unregistered component did not panic")
		}
	}()
	e.Wake(&sleeper{}, 0)
}

// TestEngineLegacyFallback: registering a component without NextEvent
// (not EventAware) must degrade to exhaustive stepping with unchanged
// results — the ComponentFunc drivers in older experiments rely on it.
func TestEngineLegacyFallback(t *testing.T) {
	var plainSteps Cycle
	plain := ComponentFunc(func(now Cycle) { plainSteps++ })
	b := &beacon{period: 100, count: 3}
	e := NewEngine()
	e.Register(plain)
	e.Register(b)
	elapsed, ok := e.Run(func() bool { return Cycle(len(b.fired)) >= 3 }, 10_000)
	if !ok {
		t.Fatal("run did not finish")
	}
	if elapsed != 201 {
		t.Fatalf("elapsed %d, want 201 (fire at 0, 100, 200 then done)", elapsed)
	}
	if plainSteps != elapsed {
		t.Fatalf("plain component stepped %d times over %d cycles; legacy mode must step every cycle", plainSteps, elapsed)
	}
}
