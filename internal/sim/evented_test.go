package sim

import "testing"

// pulse is an EventAware component that does work only at fixed cycles.
type pulse struct {
	at    []Cycle // ascending
	fired int
	steps int
}

func (p *pulse) Step(now Cycle) {
	p.steps++
	if p.fired < len(p.at) && p.at[p.fired] == now {
		p.fired++
	}
}

func (p *pulse) NextEvent(now Cycle) Cycle {
	if p.fired >= len(p.at) {
		return Never
	}
	if t := p.at[p.fired]; t > now {
		return t
	}
	return now
}

func TestRunEventedMatchesRunCycleCounts(t *testing.T) {
	at := []Cycle{3, 10, 50}
	plain := NewScheduler()
	pp := &pulse{at: at}
	plain.Register(pp)
	wantElapsed, wantOK := plain.Run(func() bool { return pp.fired == len(at) }, 1000)

	ev := NewScheduler()
	ep := &pulse{at: at}
	ev.Register(ep)
	elapsed, ok := ev.RunEvented(func() bool { return ep.fired == len(at) }, 1000)

	if elapsed != wantElapsed || ok != wantOK {
		t.Fatalf("RunEvented = (%d, %t), Run = (%d, %t): idle skipping changed the cycle count",
			elapsed, ok, wantElapsed, wantOK)
	}
	if ep.steps >= pp.steps {
		t.Fatalf("RunEvented stepped %d times vs Run's %d: no cycles were skipped", ep.steps, pp.steps)
	}
	if ep.steps != len(at)+1 {
		// Cycle 0 is always executed, then one tick per pulse.
		t.Fatalf("RunEvented stepped %d times, want %d", ep.steps, len(at)+1)
	}
}

func TestRunEventedReportsExactCompletionCycle(t *testing.T) {
	// done becomes true at the tick executed right before a long idle
	// stretch; the elapsed count must be the completion cycle, not a jump
	// target.
	s := NewScheduler()
	p := &pulse{at: []Cycle{5, 500}}
	s.Register(p)
	elapsed, ok := s.RunEvented(func() bool { return p.fired >= 1 }, 1000)
	if !ok || elapsed != 6 {
		t.Fatalf("elapsed=%d ok=%t, want 6/true", elapsed, ok)
	}
}

func TestRunEventedMixedComponentsDegradesToPerCycle(t *testing.T) {
	s := NewScheduler()
	p := &pulse{at: []Cycle{40}}
	s.Register(p)
	ticks := 0
	s.Register(ComponentFunc(func(now Cycle) { ticks++ })) // not EventAware
	elapsed, ok := s.RunEvented(func() bool { return p.fired == 1 }, 1000)
	if !ok || elapsed != 41 {
		t.Fatalf("elapsed=%d ok=%t, want 41/true", elapsed, ok)
	}
	if ticks != 41 {
		t.Fatalf("plain component stepped %d times, want every cycle (41)", ticks)
	}
}

func TestRunEventedLimitWithIdleComponents(t *testing.T) {
	// All events exhausted, predicate never true: the jump must stop at
	// the limit and report failure exactly like Run.
	s := NewScheduler()
	p := &pulse{at: []Cycle{2}}
	s.Register(p)
	elapsed, ok := s.RunEvented(func() bool { return false }, 100)
	if ok || elapsed != 100 {
		t.Fatalf("elapsed=%d ok=%t, want 100/false", elapsed, ok)
	}
	if p.steps > 4 {
		t.Fatalf("stepped %d times; the post-event idle stretch should be one jump", p.steps)
	}
}

func TestSchedulerNextEventMinimum(t *testing.T) {
	s := NewScheduler()
	s.Register(&pulse{at: []Cycle{30}})
	s.Register(&pulse{at: []Cycle{12}})
	if got := s.NextEvent(); got != 12 {
		t.Fatalf("NextEvent = %d, want 12", got)
	}
	s.Register(ComponentFunc(func(now Cycle) {})) // pins to now
	if got := s.NextEvent(); got != s.Now() {
		t.Fatalf("NextEvent with a plain component = %d, want now (%d)", got, s.Now())
	}
}

func TestEventQueueRunUntilExactDeadline(t *testing.T) {
	q := NewEventQueue()
	fired := 0
	q.At(10, func() { fired++ })
	q.At(20, func() { fired++ })
	q.At(21, func() { fired++ })
	if n := q.RunUntil(20); n != 2 || fired != 2 {
		t.Fatalf("RunUntil(20) dispatched %d (fired %d), want events at <= deadline inclusive (2)", n, fired)
	}
	if q.Len() != 1 {
		t.Fatalf("pending %d, want 1", q.Len())
	}
}

func TestEventQueueDrainLimitPanics(t *testing.T) {
	q := NewEventQueue()
	var step func()
	step = func() { q.After(1, step) } // schedules forever
	q.At(0, step)
	defer func() {
		if recover() == nil {
			t.Fatal("Drain must panic when the limit is exceeded")
		}
	}()
	q.Drain(50)
}

func TestFIFOOrderAndWraparound(t *testing.T) {
	var q FIFO[int]
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("zero FIFO must be empty")
	}
	// Interleave pushes and pops so the ring wraps several times.
	next, expect := 0, 0
	for round := 0; round < 20; round++ {
		for i := 0; i < 7; i++ {
			q.Push(next)
			next++
		}
		if q.Peek() != expect {
			t.Fatalf("Peek = %d, want %d", q.Peek(), expect)
		}
		for i := 0; i < q.Len(); i++ {
			if got := q.At(i); got != expect+i {
				t.Fatalf("At(%d) = %d, want %d", i, got, expect+i)
			}
		}
		for i := 0; i < 5; i++ {
			if got := q.Pop(); got != expect {
				t.Fatalf("Pop = %d, want %d (FIFO order violated)", got, expect)
			}
			expect++
		}
	}
	for !q.Empty() {
		if got := q.Pop(); got != expect {
			t.Fatalf("drain Pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("popped %d items, pushed %d", expect, next)
	}
}

func TestFIFOPopEmptyPanics(t *testing.T) {
	var q FIFO[int]
	defer func() {
		if recover() == nil {
			t.Fatal("Pop of empty FIFO must panic")
		}
	}()
	q.Pop()
}

func TestFIFOPeekEmptyPanics(t *testing.T) {
	var q FIFO[int]
	defer func() {
		if recover() == nil {
			t.Fatal("Peek of empty FIFO must panic")
		}
	}()
	q.Peek()
}

func TestFIFOAtOutOfRangePanics(t *testing.T) {
	var q FIFO[int]
	q.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("At past the tail must panic")
		}
	}()
	q.At(1)
}
