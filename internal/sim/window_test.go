package sim

import (
	"runtime"
	"strings"
	"testing"
)

// newWindowRing is newRing plus EnableWindows: the ring's fabric schedules
// exact delivery times at injection (send/commit compute due cycles) and
// delivers only on due ticks, so it satisfies the windowing contract with
// the transit latency as lookahead.
func newWindowRing(n, shards int, latency Cycle, budget int, cap Cycle) *ringMachine {
	m := newRing(n, shards, latency, budget)
	m.peng.EnableWindows(latency, cap)
	return m
}

// chewRing seeds tokens and per-cell local work so shards run clean
// multi-tick stretches between cross-shard sends — the shape adaptive
// windows exist for.
func chewRing(m *ringMachine) {
	for _, c := range m.cells {
		c.chew = 1 + c.id%4
	}
	m.cells[0].tokens = 2
	m.cells[len(m.cells)/2+1].tokens = 1
}

// TestWindowedRingMatchesSequential crosses shard counts, window caps, and
// worker counts (the GOMAXPROCS=1 inline pass vs the pooled pass) against
// the sequential reference: every simulated observable must be identical.
func TestWindowedRingMatchesSequential(t *testing.T) {
	const n, latency, budget = 13, 6, 40
	ref := newRing(n, 0, latency, budget)
	chewRing(ref)
	wantElapsed, ok := ref.eng.Run(ref.quiet, 100_000)
	if !ok {
		t.Fatalf("sequential reference did not quiesce (elapsed %d)", wantElapsed)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, shards := range []int{2, 3, 4} {
			for _, cap := range []Cycle{0, 2, 3} {
				m := newWindowRing(n, shards, latency, budget, cap)
				chewRing(m)
				elapsed, ok := m.eng.Run(m.quiet, 100_000)
				if elapsed != wantElapsed || !ok {
					t.Errorf("procs=%d shards=%d cap=%d: elapsed %d ok %v, want %d true",
						procs, shards, cap, elapsed, ok, wantElapsed)
				}
				for i, c := range m.cells {
					if c.passed != ref.cells[i].passed || c.tokens+c.pending != ref.cells[i].tokens+ref.cells[i].pending {
						t.Errorf("procs=%d shards=%d cap=%d cell %d: passed/tokens %d/%d, want %d/%d",
							procs, shards, cap, i, c.passed, c.tokens+c.pending,
							ref.cells[i].passed, ref.cells[i].tokens+ref.cells[i].pending)
					}
				}
			}
		}
	}
}

// TestWindowedRingReportsStats pins that adaptive windows actually widen on
// this workload (winTicks > winEpochs would fail if the mechanism silently
// degenerated to per-tick epochs) and that a per-tick engine reports none.
func TestWindowedRingReportsStats(t *testing.T) {
	m := newWindowRing(8, 2, 6, 30, 0)
	chewRing(m)
	if _, ok := m.eng.Run(m.quiet, 100_000); !ok {
		t.Fatal("did not quiesce")
	}
	windows, cycles := m.peng.WindowStats()
	if windows == 0 {
		t.Fatal("adaptive run executed zero windows")
	}
	if cycles <= windows {
		t.Fatalf("windows never widened: %d windows covered %d cycles", windows, cycles)
	}
	perTick := newRing(8, 2, 6, 30)
	chewRing(perTick)
	if _, ok := perTick.eng.Run(perTick.quiet, 100_000); !ok {
		t.Fatal("per-tick run did not quiesce")
	}
	if w, c := perTick.peng.WindowStats(); w != 0 || c != 0 {
		t.Fatalf("per-tick engine reported window stats %d/%d", w, c)
	}
}

// TestWindowedRingSurvivesConcurrentDirtyTicks seeds several shards so
// their dirty stops land on different ticks within one window: the engine
// must still replay every deferred send in exact (tick, shard) order. The
// elapsed-cycle and passed-count comparison against sequential catches any
// reordering (a send committed early arrives early and shifts the ring's
// whole downstream timing).
func TestWindowedRingSurvivesConcurrentDirtyTicks(t *testing.T) {
	const n, latency, budget = 12, 5, 60
	seed := func(m *ringMachine) {
		for i, c := range m.cells {
			c.chew = i % 3
		}
		m.cells[1].tokens = 2
		m.cells[4].tokens = 1
		m.cells[9].tokens = 3
	}
	ref := newRing(n, 0, latency, budget)
	seed(ref)
	wantElapsed, ok := ref.eng.Run(ref.quiet, 100_000)
	if !ok {
		t.Fatal("sequential reference did not quiesce")
	}
	for _, shards := range []int{2, 4} {
		m := newWindowRing(n, shards, latency, budget, 0)
		seed(m)
		elapsed, ok := m.eng.Run(m.quiet, 100_000)
		if elapsed != wantElapsed || !ok {
			t.Errorf("shards=%d: elapsed %d ok %v, want %d true", shards, elapsed, ok, wantElapsed)
		}
		for i, c := range m.cells {
			if c.passed != ref.cells[i].passed {
				t.Errorf("shards=%d cell %d: passed %d, want %d", shards, i, c.passed, ref.cells[i].passed)
			}
		}
	}
}

func expectPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one mentioning %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic %v (%T); want a string mentioning %q", r, r, want)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q; want it to mention %q", msg, want)
		}
	}()
	f()
}

func TestEnableWindowsValidation(t *testing.T) {
	t.Run("before-shards", func(t *testing.T) {
		e := NewParallelEngine()
		expectPanic(t, "RegisterShard", func() { e.EnableWindows(4, 0) })
	})
	t.Run("zero-lookahead", func(t *testing.T) {
		m := newRing(4, 2, 1, 10)
		expectPanic(t, "at least 1", func() { m.peng.EnableWindows(0, 0) })
	})
	t.Run("non-window-runner", func(t *testing.T) {
		e := NewParallelEngine()
		e.RegisterShard(&inertAware{})
		expectPanic(t, "WindowRunner", func() { e.EnableWindows(4, 0) })
	})
	t.Run("cap-one-is-per-tick", func(t *testing.T) {
		m := newRing(4, 2, 2, 10)
		m.peng.EnableWindows(2, 1)
		m.cells[0].tokens = 1
		if _, ok := m.eng.Run(m.quiet, 100_000); !ok {
			t.Fatal("did not quiesce")
		}
		if w, c := m.peng.WindowStats(); w != 0 || c != 0 {
			t.Fatalf("cap=1 must stay per-tick, got window stats %d/%d", w, c)
		}
	})
}

// TestSaveStateRefusesMidWindow pins the checkpoint × windows contract:
// inside a window the shards' local clocks have diverged, so SaveState
// must refuse with a clear error rather than serialize a torn state.
func TestSaveStateRefusesMidWindow(t *testing.T) {
	m := newWindowRing(4, 2, 4, 10, 0)
	m.peng.inWindow = true
	var enc Enc
	expectPanic(t, "mid-window", func() { m.peng.SaveState(&enc) })
}
