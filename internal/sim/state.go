package sim

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file is the checkpoint layer of the simulation kernel: a small,
// versioned, deterministic binary codec (Enc/Dec), the Stateful contract
// every engine and machine implements, and the Checkpoint/Restore helpers
// that frame a whole-machine snapshot.
//
// Format rules (DESIGN.md §11):
//
//   - Everything is fixed-width little-endian; floats travel as their IEEE
//     bit patterns (math.Float64bits), never as text.
//   - Collections are length-prefixed; map contents are written in sorted
//     key order. Iteration order never reaches the wire.
//   - Encoding is canonical: encode → decode → encode is byte-identical.
//   - Decoding never panics. Dec carries a sticky error; every length is
//     validated against the remaining input before allocation.
//   - Static structure (programs, configurations, topology) is NOT
//     serialized: a checkpoint restores into a freshly constructed machine
//     of the identical configuration, and carries only a fingerprint to
//     detect mismatches. Host-side pools, free lists, and caches are
//     likewise rebuilt, not restored.

// Stateful is the checkpoint contract: SaveState appends the component's
// complete dynamic state to enc; LoadState restores it from dec into a
// freshly constructed component of the identical static configuration.
// After LoadState, the component's observable behaviour must be
// bit-identical to the original from the snapshot cycle onward.
type Stateful interface {
	SaveState(enc *Enc)
	LoadState(dec *Dec) error
}

// Enc is the append-only checkpoint encoder. The zero value is not ready;
// use NewEnc.
type Enc struct {
	buf []byte
}

// NewEnc returns an empty encoder.
func NewEnc() *Enc { return &Enc{buf: make([]byte, 0, 1024)} }

// Bytes returns the encoded stream.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a fixed-width little-endian uint16.
func (e *Enc) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a fixed-width little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a fixed-width little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a two's-complement int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// Bool appends a 0/1 byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends the IEEE-754 bit pattern of v.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Cycle appends a simulated-time point.
func (e *Enc) Cycle(c Cycle) { e.U64(uint64(c)) }

// Len appends a collection length prefix.
func (e *Enc) Len(n int) { e.U32(uint32(n)) }

// String appends a length-prefixed UTF-8 string.
func (e *Enc) String(s string) {
	e.Len(len(s))
	e.buf = append(e.buf, s...)
}

// Tag opens a named, versioned section. Dec.Tag verifies both, so a
// truncated or reordered stream fails with a precise location instead of
// misinterpreting bytes.
func (e *Enc) Tag(name string, version uint32) {
	e.String(name)
	e.U32(version)
}

// Dec is the checkpoint decoder. Errors are sticky: after the first
// failure every read returns a zero value and Err reports the failure.
// Dec never panics on malformed input.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over data.
func NewDec(data []byte) *Dec { return &Dec{buf: data} }

// Err reports the first decoding failure, if any.
func (d *Dec) Err() error { return d.err }

// Failf records a decoding failure (used by callers validating decoded
// values); the first failure wins.
func (d *Dec) Failf(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf("checkpoint: "+format+" (offset %d)", append(args, d.off)...)
	}
}

// Finish reports the sticky error, or an error if input remains.
func (d *Dec) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("checkpoint: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}

// Remaining reports the undecoded byte count.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf)-d.off < n {
		d.Failf("truncated: need %d bytes, have %d", n, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (d *Dec) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a two's-complement int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int64 into an int.
func (d *Dec) Int() int { return int(d.I64()) }

// Bool reads a 0/1 byte; any other value is an error.
func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.Failf("invalid bool byte")
		return false
	}
}

// F64 reads an IEEE-754 bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Cycle reads a simulated-time point.
func (d *Dec) Cycle() Cycle { return Cycle(d.U64()) }

// Len reads a collection length prefix and validates it against max and
// the remaining input (each element needs at least one byte), so corrupt
// lengths fail instead of triggering huge allocations.
func (d *Dec) Len(max int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n < 0 || n > max {
		d.Failf("length %d exceeds bound %d", n, max)
		return 0
	}
	if n > len(d.buf)-d.off {
		d.Failf("length %d exceeds remaining input %d", n, len(d.buf)-d.off)
		return 0
	}
	return n
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.Len(len(d.buf))
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Tag verifies a section header written by Enc.Tag.
func (d *Dec) Tag(name string, version uint32) error {
	got := d.String()
	v := d.U32()
	if d.err != nil {
		return d.err
	}
	if got != name {
		d.Failf("section %q, want %q", got, name)
		return d.err
	}
	if v != version {
		d.Failf("section %q version %d, want %d", name, v, version)
		return d.err
	}
	return nil
}

// --- whole-machine framing -------------------------------------------

// ckptMagic and ckptVersion frame every checkpoint produced by
// Checkpoint. Bump ckptVersion on any incompatible format change; old
// checkpoints then fail with a version error instead of misdecoding.
const (
	ckptMagic   = "SIMCKPT"
	ckptVersion = 1
)

// Checkpoint serializes a machine (including its engine, which the
// machine's SaveState must cover) into a framed, versioned byte stream.
func Checkpoint(m Stateful) []byte {
	e := NewEnc()
	e.String(ckptMagic)
	e.U32(ckptVersion)
	m.SaveState(e)
	return e.Bytes()
}

// Restore loads a Checkpoint stream into a freshly constructed machine of
// the identical configuration. On error the machine must be discarded:
// partially loaded state is not rolled back.
func Restore(m Stateful, data []byte) error {
	d := NewDec(data)
	if magic := d.String(); d.Err() == nil && magic != ckptMagic {
		return fmt.Errorf("checkpoint: bad magic %q", magic)
	}
	if v := d.U32(); d.Err() == nil && v != ckptVersion {
		return fmt.Errorf("checkpoint: format version %d, want %d", v, ckptVersion)
	}
	if d.Err() != nil {
		return d.Err()
	}
	if err := m.LoadState(d); err != nil {
		return err
	}
	return d.Finish()
}

// --- FIFO serialization ----------------------------------------------

// SaveFIFO writes q's elements in queue order using elem for each.
func SaveFIFO[T any](e *Enc, q *FIFO[T], elem func(*Enc, T)) {
	e.Len(q.Len())
	for i := 0; i < q.Len(); i++ {
		elem(e, q.At(i))
	}
}

// LoadFIFO replaces q's contents with elements decoded by elem; max
// bounds the element count against corrupt input.
func LoadFIFO[T any](d *Dec, q *FIFO[T], max int, elem func(*Dec) T) error {
	*q = FIFO[T]{}
	n := d.Len(max)
	for i := 0; i < n && d.Err() == nil; i++ {
		q.Push(elem(d))
	}
	return d.Err()
}

// SaveU32Map writes m in sorted key order — map iteration order must
// never reach the wire.
func SaveU32Map[V any](e *Enc, m map[uint32]V, val func(*Enc, V)) {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortU32(keys)
	e.Len(len(m))
	for _, k := range keys {
		e.U32(k)
		val(e, m[k])
	}
}

// LoadU32Map replaces m's contents from the stream.
func LoadU32Map[V any](d *Dec, m map[uint32]V, val func(*Dec) V) error {
	for k := range m {
		delete(m, k)
	}
	n := d.Len(d.Remaining())
	for i := 0; i < n && d.Err() == nil; i++ {
		k := d.U32()
		m[k] = val(d)
	}
	return d.Err()
}

// sortU32 sorts keys ascending (insertion-free pdq via simple quicksort
// would be overkill; collections here are small, so shell sort suffices
// and avoids importing sort for a hot-free path).
func sortU32(keys []uint32) {
	for gap := len(keys) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(keys); i++ {
			k := keys[i]
			j := i
			for ; j >= gap && keys[j-gap] > k; j -= gap {
				keys[j] = keys[j-gap]
			}
			keys[j] = k
		}
	}
}

// --- engine state -----------------------------------------------------

// engineCore is the serialized clock/counter/wake-queue state shared by
// Engine and ParallelEngine.
type engineCore struct {
	now, prevTick, stride, busyHorizon, gridAnchor Cycle
	stepsExecuted, cyclesSkipped, wakesEnqueued    uint64
}

func saveEngineCore(e *Enc, c engineCore) {
	e.Cycle(c.now)
	e.Cycle(c.prevTick)
	e.Cycle(c.stride)
	e.Cycle(c.busyHorizon)
	e.Cycle(c.gridAnchor)
	e.U64(c.stepsExecuted)
	e.U64(c.cyclesSkipped)
	e.U64(c.wakesEnqueued)
}

func loadEngineCore(d *Dec) engineCore {
	var c engineCore
	c.now = d.Cycle()
	c.prevTick = d.Cycle()
	c.stride = d.Cycle()
	c.busyHorizon = d.Cycle()
	c.gridAnchor = d.Cycle()
	c.stepsExecuted = d.U64()
	c.cyclesSkipped = d.U64()
	c.wakesEnqueued = d.U64()
	if c.stride < 1 {
		d.Failf("engine stride %d < 1", c.stride)
	}
	return c
}

// saveWakeQueue writes each component's armed state in index order —
// canonical regardless of the heap's internal array layout.
func saveWakeQueue(e *Enc, wake []Cycle, pos []int) {
	e.Len(len(wake))
	for i := range wake {
		armed := pos[i] >= 0
		e.Bool(armed)
		if armed {
			e.Cycle(wake[i])
		}
	}
}

// SaveState implements Stateful. The engine must be between ticks (it
// always is from Run's perspective: checkpoints are taken after Run
// returns at a pause cycle).
func (e *Engine) SaveState(enc *Enc) {
	if e.stepping >= 0 || len(e.due) > 0 {
		panic("sim: Engine.SaveState mid-tick")
	}
	enc.Tag("engine", 1)
	enc.Bool(e.legacy)
	saveEngineCore(enc, engineCore{
		now: e.now, prevTick: e.prevTick, stride: e.stride,
		busyHorizon: e.busyHorizon, gridAnchor: e.gridAnchor,
		stepsExecuted: e.stepsExecuted, cyclesSkipped: e.cyclesSkipped,
		wakesEnqueued: e.wakesEnqueued,
	})
	saveWakeQueue(enc, e.wake, e.pos)
}

// LoadState implements Stateful. The engine must carry the identical
// component registration as the one that saved; a mismatch is an error.
// After a successful load the next Run resumes exactly where the saved
// run paused (no blanket re-arm, idle-jump executed before the first
// tick), keeping every scheduling counter bit-identical to an
// uninterrupted run.
func (e *Engine) LoadState(d *Dec) error {
	if err := d.Tag("engine", 1); err != nil {
		return err
	}
	legacy := d.Bool()
	c := loadEngineCore(d)
	if d.Err() != nil {
		return d.Err()
	}
	if legacy != e.legacy {
		return fmt.Errorf("checkpoint: engine legacy mode %v, machine has %v", legacy, e.legacy)
	}
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(e.components) {
		return fmt.Errorf("checkpoint: %d components, machine has %d", n, len(e.components))
	}
	e.now, e.prevTick, e.stride = c.now, c.prevTick, c.stride
	e.busyHorizon, e.gridAnchor = c.busyHorizon, c.gridAnchor
	e.stepsExecuted, e.cyclesSkipped, e.wakesEnqueued = c.stepsExecuted, c.cyclesSkipped, c.wakesEnqueued
	e.fheap = e.fheap[:0]
	for i := range e.components {
		e.pos[i] = -1
		e.wake[i] = Never
		e.inDue[i] = false
	}
	e.due = e.due[:0]
	e.stepping = -1
	for i := 0; i < n; i++ {
		if d.Bool() {
			at := d.Cycle()
			if d.Err() != nil {
				return d.Err()
			}
			// A component re-armed during the final tick (NextEvent == the
			// tick cycle) legitimately sits one tick below now, so the
			// bound is prevTick, and insertion must bypass arm's clamp to
			// keep the restored heap byte-identical on re-save.
			if at < e.prevTick {
				return fmt.Errorf("checkpoint: component %d armed at %d before tick %d", i, at, e.prevTick)
			}
			e.wake[i] = at
			e.pos[i] = len(e.fheap)
			e.fheap = append(e.fheap, i)
			e.heapUp(len(e.fheap) - 1)
		}
	}
	if d.Err() != nil {
		return d.Err()
	}
	e.resumePending = true
	return nil
}

// SaveState implements Stateful for the parallel engine; the format
// mirrors Engine's plus the per-worker step counters.
func (e *ParallelEngine) SaveState(enc *Enc) {
	if e.stepping >= 0 || len(e.due) > 0 || e.inPhase || e.inCommit {
		panic("sim: ParallelEngine.SaveState mid-tick")
	}
	if e.inWindow {
		// Inside a multi-tick epoch window the shards' local clocks have
		// diverged and deferred ops may be pending commit; only window
		// boundaries are checkpointable states (Run clamps every window to
		// the pause limit, so pauses always land on one).
		panic("sim: ParallelEngine.SaveState mid-window — epoch windows only checkpoint at window boundaries")
	}
	enc.Tag("parengine", 1)
	saveEngineCore(enc, engineCore{
		now: e.now, prevTick: e.prevTick, stride: e.stride,
		busyHorizon: e.busyHorizon, gridAnchor: e.gridAnchor,
		stepsExecuted: e.stepsExecuted, cyclesSkipped: e.cyclesSkipped,
		wakesEnqueued: e.wakesEnqueued,
	})
	enc.Len(len(e.workerSteps))
	for _, w := range e.workerSteps {
		enc.U64(w)
	}
	saveWakeQueue(enc, e.wake, e.pos)
}

// LoadState implements Stateful for the parallel engine.
func (e *ParallelEngine) LoadState(d *Dec) error {
	if err := d.Tag("parengine", 1); err != nil {
		return err
	}
	c := loadEngineCore(d)
	if d.Err() != nil {
		return d.Err()
	}
	nw := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	if nw != len(e.workerSteps) {
		return fmt.Errorf("checkpoint: %d shard runners, machine has %d", nw, len(e.workerSteps))
	}
	ws := make([]uint64, nw)
	for i := range ws {
		ws[i] = d.U64()
	}
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(e.components) {
		return fmt.Errorf("checkpoint: %d components, machine has %d", n, len(e.components))
	}
	e.now, e.prevTick, e.stride = c.now, c.prevTick, c.stride
	e.busyHorizon, e.gridAnchor = c.busyHorizon, c.gridAnchor
	e.stepsExecuted, e.cyclesSkipped, e.wakesEnqueued = c.stepsExecuted, c.cyclesSkipped, c.wakesEnqueued
	copy(e.workerSteps, ws)
	e.fheap = e.fheap[:0]
	for i := range e.components {
		e.pos[i] = -1
		e.wake[i] = Never
		e.inDue[i] = false
	}
	e.due = e.due[:0]
	e.stepping = -1
	for i := 0; i < n; i++ {
		if d.Bool() {
			at := d.Cycle()
			if d.Err() != nil {
				return d.Err()
			}
			// Same prevTick bound and clamp-free insertion as Engine.
			if at < e.prevTick {
				return fmt.Errorf("checkpoint: component %d armed at %d before tick %d", i, at, e.prevTick)
			}
			e.wake[i] = at
			e.pos[i] = len(e.fheap)
			e.fheap = append(e.fheap, i)
			e.heapUp(len(e.fheap) - 1)
		}
	}
	if d.Err() != nil {
		return d.Err()
	}
	e.resumePending = true
	return nil
}

var (
	_ Stateful = (*Engine)(nil)
	_ Stateful = (*ParallelEngine)(nil)
)
