package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelEngine is the conservative parallel counterpart of Engine: the
// machine's components are split into a serial prefix (fabrics, pumps,
// shared managers — everything whose step may touch global state) and a
// block of shard runners, one per worker goroutine, each owning a disjoint
// slice of the machine (TTDA PEs plus their I-structure banks, cmmp/ultra
// processors, Cm* clusters).
//
// Every tick is a fork/join epoch:
//
//  1. serial phase — due serial components step in registration order,
//     exactly as under Engine (network delivery, memory service, event
//     pumps; anything here may freely mutate shard state and Wake).
//  2. parallel phase — due shard runners step concurrently, one per
//     pinned worker. A runner may touch only its shard's state; every
//     cross-shard effect (a packet injection, a manager request, a shared
//     counter) is appended to the shard's deferred-op log instead of
//     applied. Wake is forbidden here; the runner's post-commit NextEvent
//     answer re-arms it.
//  3. commit phase — the machine's commit hook drains every shard's log
//     in ascending shard order. Shards own contiguous ascending component
//     ranges, so the drain replays cross-shard effects in exactly the
//     order the sequential engine produced them; the tick's cycle number
//     is still current, so timestamps (InjectedAt, due cycles) match too.
//
// Deferring an effect from the parallel phase to the commit phase is
// conservative — and bit-identical to sequential execution — only when no
// deferred effect can influence another shard within the same tick. That
// is the fabric's lookahead: the minimum cross-shard latency it declares
// (network.Lookaheader). The shard planner refuses lookahead < 1.
//
// Machines whose fabric declares a windowing lookahead (EnableWindows) can
// widen an epoch to several ticks: see the "adaptive epoch windows"
// section below.
//
// Everything else — wake-queue arming, SlotNow's slot clock, the
// settle-before-mutation rule, busy-horizon quiescence, idle-cycle
// skipping — reproduces Engine behaviour exactly, so cycle counts and
// statistics stay bit-identical to the sequential engine. (The scheduler's
// own Counters necessarily differ: a machine that registers one driver
// with Engine but 1+N components here executes a different number of
// Steps. Simulated observables are what the conformance oracle compares.)
type ParallelEngine struct {
	components []Component
	events     []EventAware
	settlers   []Settler
	allSettle  []Settler
	index      map[Component]int
	// firstRunner is the index of the first shard runner; every component
	// at or past it is a runner. -1 while only serial components exist.
	firstRunner int

	now         Cycle
	prevTick    Cycle
	stride      Cycle
	busyHorizon Cycle

	wake     []Cycle
	fheap    []int
	pos      []int
	due      []int
	inDue    []bool
	stepping int

	commit func(now Cycle)

	// inPhase is true while the parallel phase runs; set and cleared by
	// the coordinating goroutine around the barrier, so reads from worker
	// threads are ordered by the barrier itself.
	inPhase  bool
	inCommit bool

	stepsExecuted uint64
	cyclesSkipped uint64
	wakesEnqueued uint64
	workerSteps   []uint64 // Step calls per shard runner

	// gridAnchor / resumePending: see Engine — the stride-grid anchor and
	// the LoadState flag that makes the next Run resume without re-arming.
	gridAnchor    Cycle
	resumePending bool

	pool *workerPool

	dueRunners []int

	// --- adaptive epoch windows (EnableWindows) ---

	// winOn enables multi-tick epochs; winLook is the fabric's declared
	// windowing lookahead and winCap an optional ceiling on window width
	// (0 = adaptive/unbounded).
	winOn   bool
	winLook Cycle
	winCap  Cycle
	// inWindow is true while a window executes; SaveState refuses then,
	// and arm clamps runner wakes to their frontier.
	inWindow bool
	// winRunners caches the WindowRunner view of each shard runner.
	winRunners []WindowRunner
	// frontier[k] is the lowest tick runner k may still step inside the
	// current window: one past the last tick it executed. Commit-time
	// wakes back-dated to an already-stepped tick clamp up to it.
	frontier []Cycle
	// pendTick[k] is the tick at which runner k dirty-stopped and whose
	// deferred ops await their commit slot; Never when none pending.
	pendTick []Cycle
	// winMark[k] records which region ticks runner k stepped (census for
	// exact cycles-skipped accounting); winRes holds per-pass results.
	winMark [][]bool
	winRes  []windowResult

	winEpochs uint64 // windows executed
	winTicks  uint64 // simulated cycles covered by those windows
}

// windowResult is one runner's answer from a window pass.
type windowResult struct {
	last  Cycle
	next  Cycle
	steps uint64
	dirty bool
	ran   bool
}

// WindowRunner is a shard runner that can execute several consecutive
// ticks of its local timeline between barriers. EnableWindows requires
// every registered shard runner to implement it.
type WindowRunner interface {
	Component
	// StepWindow advances the runner's local timeline from tick `from`
	// toward `until` (exclusive): the runner steps every tick its own
	// next-event answer makes due, in ascending order, marking each
	// stepped tick t in stepped[t-base] (the engine's executed-tick
	// census), and stops early — a dirty stop — immediately after any
	// tick on which it appended to its deferred-op log. It returns the
	// last tick it stepped, the earliest future tick it wants to run
	// (Never when parked; ignored after a dirty stop), whether it stopped
	// dirty, and how many Steps it executed.
	StepWindow(from, until Cycle, stepped []bool, base Cycle) (last, next Cycle, dirty bool, steps uint64)
}

// NewParallelEngine returns an empty parallel engine at cycle 0.
func NewParallelEngine() *ParallelEngine {
	return &ParallelEngine{stride: 1, stepping: -1, firstRunner: -1, index: map[Component]int{}}
}

// Register adds a serial component. Serial components step before every
// shard runner each tick, in registration order; they are the only
// components allowed to mutate state outside their own shard. All
// components must be EventAware (there is no exhaustive fallback), and
// serial registration must precede every RegisterShard.
func (e *ParallelEngine) Register(c Component) {
	if e.firstRunner >= 0 {
		panic("sim: ParallelEngine.Register after RegisterShard — serial components must precede shard runners")
	}
	e.register(c)
}

// RegisterShard adds a shard runner. Runners step concurrently during the
// parallel phase, pinned one-per-worker, and commit their deferred ops in
// registration (= shard) order. Register shards in ascending order of the
// sequential component range they own: the commit drain then reproduces
// sequential evaluation order exactly.
func (e *ParallelEngine) RegisterShard(c Component) {
	if e.firstRunner < 0 {
		e.firstRunner = len(e.components)
	}
	e.register(c)
	e.workerSteps = append(e.workerSteps, 0)
}

func (e *ParallelEngine) register(c Component) {
	i := len(e.components)
	ea, ok := c.(EventAware)
	if !ok {
		panic("sim: ParallelEngine requires EventAware components")
	}
	e.components = append(e.components, c)
	e.events = append(e.events, ea)
	var s Settler
	if ss, ok := c.(Settler); ok {
		s = ss
		e.allSettle = append(e.allSettle, ss)
	}
	e.settlers = append(e.settlers, s)
	e.index[c] = i
	e.wake = append(e.wake, Never)
	e.pos = append(e.pos, -1)
	e.inDue = append(e.inDue, false)
	if w, ok := c.(Wakeable); ok {
		w.Attach(e)
	}
}

// EnableWindows opts the engine into adaptive multi-tick epochs. lookahead
// is the fabric's declared windowing lookahead: an effect a runner defers
// at tick t cannot reach another shard before t+lookahead (the fabric must
// schedule exact delivery times at injection and tolerate not being
// stepped on delivery-free ticks — see network.Windowable). cap bounds the
// width of one window in cycles (<= 0 means adaptive: bounded only by the
// horizon rule). A cap of 1 degenerates to per-tick epochs.
//
// Window soundness is the machine's side of a contract: deferred ops may
// only (a) mutate state read exclusively inside commit hooks, (b) schedule
// serial-component work at or after t+lookahead, or (c) mutate the
// producing shard's own state — the dirty stop keeps that shard from
// running past its own uncommitted effects. Machines whose shard members
// are attached through MemberWaker must not enable windows: the member
// settle path uses the epoch clock, which lags the runner's local tick
// inside a window.
//
// Call after every RegisterShard; every runner must implement
// WindowRunner, and lookahead must be at least 1.
func (e *ParallelEngine) EnableWindows(lookahead, cap Cycle) {
	if e.firstRunner < 0 {
		panic("sim: EnableWindows before any RegisterShard")
	}
	if lookahead < 1 {
		panic(fmt.Sprintf("sim: EnableWindows lookahead %d — a window needs a cross-shard latency of at least 1 cycle", lookahead))
	}
	if cap == 1 {
		return // per-tick epochs requested explicitly
	}
	n := e.Shards()
	e.winRunners = make([]WindowRunner, n)
	for k := 0; k < n; k++ {
		r, ok := e.components[e.firstRunner+k].(WindowRunner)
		if !ok {
			panic("sim: EnableWindows requires every shard runner to implement WindowRunner")
		}
		e.winRunners[k] = r
	}
	e.frontier = make([]Cycle, n)
	e.pendTick = make([]Cycle, n)
	e.winRes = make([]windowResult, n)
	e.winMark = make([][]bool, n)
	for k := range e.winMark {
		e.winMark[k] = make([]bool, lookahead)
	}
	e.winLook, e.winCap = lookahead, cap
	if e.winCap < 0 {
		e.winCap = 0
	}
	e.winOn = true
}

// WindowStats reports how many multi-tick windows ran and how many
// simulated cycles they covered (0, 0 when windowing is off or never
// engaged). Diagnostics only; not part of the checkpoint state.
func (e *ParallelEngine) WindowStats() (windows, cycles uint64) {
	return e.winEpochs, e.winTicks
}

// OnCommit installs the machine's commit hook, called once per tick after
// the parallel phase joins (even when the deferred logs are empty). The
// hook must drain, from every shard's log in ascending shard order, the
// ops whose production tick is at or before now — in per-tick mode that is
// every logged op; inside a window later-tick ops stay queued for a later
// commit slot.
func (e *ParallelEngine) OnCommit(fn func(now Cycle)) { e.commit = fn }

// Shards reports the number of registered shard runners.
func (e *ParallelEngine) Shards() int {
	if e.firstRunner < 0 {
		return 0
	}
	return len(e.components) - e.firstRunner
}

// Now reports the current cycle.
func (e *ParallelEngine) Now() Cycle { return e.now }

// SlotNow implements Waker exactly as Engine does: components at or before
// the stepping slot read the current cycle, later ones the previous
// executed tick. During the commit phase every slot has passed, so
// everyone reads the current cycle.
func (e *ParallelEngine) SlotNow(c Component) Cycle {
	if e.stepping < 0 {
		return e.now
	}
	if i, ok := e.index[c]; ok && i > e.stepping {
		return e.prevTick
	}
	return e.now
}

// Wake implements Waker with Engine's settle-then-arm semantics. It must
// only be called from serial contexts — the serial phase, the commit
// phase, or between ticks. Shard code running in the parallel phase
// defers instead (see MemberWaker for self-wakes of shard members).
func (e *ParallelEngine) Wake(c Component, at Cycle) {
	if e.inPhase {
		panic("sim: ParallelEngine.Wake during the parallel phase — defer the effect to the commit log")
	}
	e.wakesEnqueued++
	i, ok := e.index[c]
	if !ok {
		panic("sim: Wake on a component not registered with this engine")
	}
	if s := e.settlers[i]; s != nil {
		b := e.now
		if e.inCommit || (e.stepping >= 0 && i <= e.stepping) {
			// The target's slot has passed this tick (always true during
			// commit): cycle now itself was observed at the pre-mutation
			// state.
			b = e.now + 1
		}
		s.Settle(b)
	}
	if i == e.stepping || e.inDue[i] {
		return
	}
	if at <= e.now && e.stepping >= 0 && i > e.stepping {
		if e.pos[i] >= 0 {
			e.heapRemove(i)
		}
		e.duePush(i)
		return
	}
	e.arm(i, at)
}

// SetStride sets the simulated-time cost of one tick.
func (e *ParallelEngine) SetStride(d Cycle) {
	if d < 1 {
		d = 1
	}
	e.stride = d
}

// NoteBusy raises the busy horizon (serial contexts only; shard code
// accumulates a per-shard horizon merged at commit).
func (e *ParallelEngine) NoteBusy(until Cycle) {
	if until > e.busyHorizon {
		e.busyHorizon = until
	}
}

// BusyHorizon reports the latest promised-busy cycle.
func (e *ParallelEngine) BusyHorizon() Cycle { return e.busyHorizon }

// Counters returns the engine's scheduling counters.
func (e *ParallelEngine) Counters() Counters {
	return Counters{
		StepsExecuted: e.stepsExecuted,
		CyclesSkipped: e.cyclesSkipped,
		WakesEnqueued: e.wakesEnqueued,
	}
}

// WorkerSteps reports per-shard runner Step counts, in shard order — the
// per-worker share of the parallel phase.
func (e *ParallelEngine) WorkerSteps() []uint64 {
	out := make([]uint64, len(e.workerSteps))
	copy(out, e.workerSteps)
	return out
}

// --- wake-queue plumbing (identical to Engine's) ---

func (e *ParallelEngine) heapLess(a, b int) bool {
	return e.wake[a] < e.wake[b] || (e.wake[a] == e.wake[b] && a < b)
}

func (e *ParallelEngine) heapUp(j int) {
	h := e.fheap
	for j > 0 {
		p := (j - 1) / 2
		if !e.heapLess(h[j], h[p]) {
			break
		}
		h[j], h[p] = h[p], h[j]
		e.pos[h[j]] = j
		e.pos[h[p]] = p
		j = p
	}
}

func (e *ParallelEngine) heapDown(j int) {
	h := e.fheap
	n := len(h)
	for {
		l := 2*j + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && e.heapLess(h[r], h[l]) {
			m = r
		}
		if !e.heapLess(h[m], h[j]) {
			return
		}
		h[j], h[m] = h[m], h[j]
		e.pos[h[j]] = j
		e.pos[h[m]] = m
		j = m
	}
}

func (e *ParallelEngine) heapPopMin() int {
	h := e.fheap
	i := h[0]
	last := len(h) - 1
	h[0] = h[last]
	e.pos[h[0]] = 0
	e.fheap = h[:last]
	if last > 0 {
		e.heapDown(0)
	}
	e.pos[i] = -1
	return i
}

func (e *ParallelEngine) heapRemove(i int) {
	j := e.pos[i]
	h := e.fheap
	last := len(h) - 1
	if j != last {
		h[j] = h[last]
		e.pos[h[j]] = j
	}
	e.fheap = h[:last]
	e.pos[i] = -1
	if j != last {
		e.heapDown(j)
		e.heapUp(j)
	}
}

func (e *ParallelEngine) arm(i int, at Cycle) {
	if at < e.now {
		at = e.now
	}
	if e.inWindow && i >= e.firstRunner {
		// A commit replayed at an already-executed tick may wake its
		// producing runner back-dated; the runner's local timeline has
		// passed that tick, so the wake lands at its frontier instead.
		if f := e.frontier[i-e.firstRunner]; at < f {
			at = f
		}
	}
	if p := e.pos[i]; p >= 0 {
		if at < e.wake[i] {
			e.wake[i] = at
			e.heapUp(p)
		}
		return
	}
	e.wake[i] = at
	e.pos[i] = len(e.fheap)
	e.fheap = append(e.fheap, i)
	e.heapUp(len(e.fheap) - 1)
}

func (e *ParallelEngine) wakeAllAt(at Cycle) {
	for i := range e.components {
		e.arm(i, at)
	}
}

func (e *ParallelEngine) duePush(i int) {
	e.inDue[i] = true
	d := append(e.due, i)
	j := len(d) - 1
	for j > 0 {
		p := (j - 1) / 2
		if d[p] <= d[j] {
			break
		}
		d[j], d[p] = d[p], d[j]
		j = p
	}
	e.due = d
}

func (e *ParallelEngine) duePop() int {
	d := e.due
	i := d[0]
	last := len(d) - 1
	d[0] = d[last]
	e.due = d[:last]
	d = e.due
	j := 0
	for {
		l := 2*j + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && d[r] < d[l] {
			m = r
		}
		if d[j] <= d[m] {
			break
		}
		d[j], d[m] = d[m], d[j]
		j = m
	}
	return i
}

// tick runs one fork/join epoch: serial phase, parallel phase, commit.
func (e *ParallelEngine) tick() {
	for len(e.fheap) > 0 && e.wake[e.fheap[0]] <= e.now {
		e.duePush(e.heapPopMin())
	}
	// Serial phase: the due heap is ordered by index and serial components
	// occupy the low indices, so draining while the head is serial steps
	// them in registration order. A serial step may duePush a later serial
	// component or a runner; both land behind the current head.
	for len(e.due) > 0 && (e.firstRunner < 0 || e.due[0] < e.firstRunner) {
		i := e.duePop()
		e.inDue[i] = false
		e.stepping = i
		e.components[i].Step(e.now)
		e.stepsExecuted++
		if t := e.events[i].NextEvent(e.now); t != Never {
			e.arm(i, t)
		}
	}
	// Parallel phase: remaining due entries are runners.
	e.dueRunners = e.dueRunners[:0]
	for len(e.due) > 0 {
		i := e.duePop()
		e.inDue[i] = false
		e.dueRunners = append(e.dueRunners, i)
	}
	e.stepping = -1
	if len(e.dueRunners) > 0 {
		e.runPhase()
		e.inCommit = true
		if e.commit != nil {
			e.commit(e.now)
		}
		e.inCommit = false
		// Re-arm after commit: committed effects (a token pushed into a
		// PE's output queue by a deferred manager op) are visible to the
		// runner's NextEvent answer, exactly as they were to the
		// sequential driver's in-step cache.
		for _, i := range e.dueRunners {
			if t := e.events[i].NextEvent(e.now); t != Never {
				e.arm(i, t)
			}
		}
	}
	e.prevTick = e.now
	e.now += e.stride
}

// --- adaptive epoch windows ---
//
// A window is a run of ticks [now, wEnd) that the engine can prove free of
// serial-component work and of cross-shard influence: wEnd never passes
// the earliest armed serial wake, and never passes runnerMin+lookahead,
// where runnerMin is the earliest armed runner wake — so an effect a
// runner defers at tick u >= runnerMin cannot reach another shard (or the
// fabric's delivery path) before u+lookahead >= wEnd. Inside the window
// each shard runs its local timeline independently between barriers; the
// only synchronization left is the dirty-stop protocol:
//
//   - a runner halts its timeline immediately after any tick u on which it
//     deferred ops (its own state may depend on their commit at u);
//   - the engine replays pending ops strictly in (tick, shard) order, with
//     the clock rewound to the production tick so commit-time timestamps
//     (InjectedAt, memory due cycles) match the per-tick engine exactly —
//     and only once no runner armed earlier could still produce
//     earlier-tick ops;
//   - the committed runner resumes from its frontier, never re-stepping a
//     tick it already executed.
//
// In the worst case (ops on every tick) this degenerates to per-tick
// epochs; when cross-shard traffic is sparse it collapses a barrier per
// tick into a barrier per lookahead-window, and fuses the idle jump in.

// tryWindow attempts a multi-tick epoch ending no later than maxEnd.
// It reports false — fall back to a normal tick — when the window would
// not beat per-tick stepping.
func (e *ParallelEngine) tryWindow(maxEnd Cycle) bool {
	if e.stride != 1 || len(e.due) > 0 || e.Shards() == 0 {
		return false
	}
	serialMin, runnerMin := Never, Never
	for _, i := range e.fheap {
		if i < e.firstRunner {
			if e.wake[i] < serialMin {
				serialMin = e.wake[i]
			}
		} else if e.wake[i] < runnerMin {
			runnerMin = e.wake[i]
		}
	}
	if runnerMin == Never || serialMin <= e.now {
		return false
	}
	base := runnerMin
	if base < e.now {
		base = e.now
	}
	wEnd := base + e.winLook
	if serialMin < wEnd {
		wEnd = serialMin
	}
	if e.winCap > 0 && e.now+e.winCap < wEnd {
		wEnd = e.now + e.winCap
	}
	if wEnd > maxEnd {
		wEnd = maxEnd
	}
	if wEnd <= e.now+1 || runnerMin >= wEnd {
		return false
	}
	e.runWindow(base, wEnd)
	return true
}

// runWindow executes the window [e.now, wEnd). base is the first tick any
// runner can step (max of the earliest armed runner wake and now); the
// stepped region [base, wEnd) is at most lookahead cycles wide.
func (e *ParallelEngine) runWindow(base, wEnd Cycle) {
	e.inWindow = true
	winStart := e.now
	width := int(wEnd - base)
	for k := range e.winMark {
		mark := e.winMark[k]
		if width > len(mark) {
			mark = make([]bool, width)
			e.winMark[k] = mark
		}
		for t := 0; t < width; t++ {
			mark[t] = false
		}
		e.frontier[k] = winStart
		e.pendTick[k] = Never
	}
	maxStepped := winStart - 1
	for {
		// Earliest armed runner wake and earliest pending commit tick.
		armedMin := Never
		for _, i := range e.fheap {
			if i >= e.firstRunner && e.wake[i] < armedMin {
				armedMin = e.wake[i]
			}
		}
		pendMin := Never
		for _, t := range e.pendTick {
			if t < pendMin {
				pendMin = t
			}
		}
		if pendMin != Never && pendMin < armedMin {
			// No runner is armed at or before pendMin, so no shard can still
			// produce ops at that tick: its ops are complete and next in the
			// global (tick, shard) order. A runner armed exactly at pendMin
			// must run first — it may defer ops at that very tick, and
			// committing before it does would replay the tick's ops across
			// two commit calls, out of shard order.
			e.commitWindowTick(pendMin)
			continue
		}
		if armedMin >= wEnd {
			break // window drained: every runner parked at or past the horizon
		}
		if last := e.runWindowPass(wEnd, base); last > maxStepped {
			maxStepped = last
		}
	}
	// Fold the shards' per-window accumulators (busy horizons, shard
	// counters) exactly as the per-tick mode folds them every tick. The
	// deferred logs are empty here — the loop above drained them.
	if e.commit != nil {
		saved := e.now
		e.now = maxStepped
		e.inCommit = true
		e.commit(maxStepped)
		e.inCommit = false
		e.now = saved
	}
	e.inWindow = false

	// Exact cycles-skipped accounting: the per-tick engine would have
	// executed exactly the distinct ticks some runner stepped, and idle-
	// jumped (counting) everything else in [winStart, endNow).
	executed := 0
	for t := 0; t < width; t++ {
		for k := range e.winMark {
			if e.winMark[k][t] {
				executed++
				break
			}
		}
	}
	endNow := wEnd
	if len(e.fheap) == 0 {
		// Everything parked: mirror the per-tick engine, which stops
		// ticking right after the last executed tick (the exact completion
		// cycle the done() contract reports).
		endNow = maxStepped + 1
	}
	e.cyclesSkipped += uint64(endNow-winStart) - uint64(executed)
	e.winEpochs++
	e.winTicks += uint64(endNow - winStart)
	e.prevTick = maxStepped
	e.now = endNow
}

// runWindowPass pops every runner armed before wEnd and runs each from its
// wake to the horizon (or its dirty stop) — concurrently when workers are
// available. It returns the highest tick stepped in the pass.
func (e *ParallelEngine) runWindowPass(wEnd, base Cycle) (maxLast Cycle) {
	e.dueRunners = e.dueRunners[:0]
	for len(e.fheap) > 0 && e.wake[e.fheap[0]] < wEnd {
		i := e.heapPopMin()
		if i < e.firstRunner {
			panic("sim: serial component armed inside an epoch window — the fabric's declared lookahead was violated")
		}
		e.dueRunners = append(e.dueRunners, i)
	}
	maxLast = base - 1
	if len(e.dueRunners) == 0 {
		return maxLast
	}
	for k := range e.winRes {
		e.winRes[k] = windowResult{}
	}
	n := e.Shards()
	if n <= 1 || len(e.dueRunners) == 1 || runtime.GOMAXPROCS(0) == 1 {
		// Degenerate pass: no concurrency, same phase discipline — see
		// runPhase for why GOMAXPROCS=1 steps inline.
		e.inPhase = true
		for _, i := range e.dueRunners {
			k := i - e.firstRunner
			last, next, dirty, steps := e.winRunners[k].StepWindow(e.windowFrom(i), wEnd, e.winMark[k], base)
			e.winRes[k] = windowResult{last: last, next: next, steps: steps, dirty: dirty, ran: true}
		}
		e.inPhase = false
	} else {
		p := e.ensurePool(n)
		for k := range p.winRunner {
			p.winRunner[k] = -1
		}
		p.winPass = true
		p.winUntil = wEnd
		p.winBase = base
		own := -1
		busy := false
		for _, i := range e.dueRunners {
			k := i - e.firstRunner
			if k == 0 {
				own = i
				continue
			}
			p.winRunner[k-1] = i
			p.winFrom[k-1] = e.windowFrom(i)
			busy = true
		}
		e.inPhase = true
		if busy {
			p.dispatch(e)
		}
		if own >= 0 {
			last, next, dirty, steps := e.winRunners[0].StepWindow(e.windowFrom(own), wEnd, e.winMark[0], base)
			e.winRes[0] = windowResult{last: last, next: next, steps: steps, dirty: dirty, ran: true}
		}
		if busy {
			p.join()
		}
		p.winPass = false
		e.inPhase = false
	}
	for k := range e.winRes {
		r := &e.winRes[k]
		if !r.ran {
			continue
		}
		i := e.firstRunner + k
		e.workerSteps[k] += r.steps
		e.stepsExecuted += r.steps
		e.frontier[k] = r.last + 1
		if r.last > maxLast {
			maxLast = r.last
		}
		if r.dirty {
			e.pendTick[k] = r.last
		} else if r.next != Never {
			e.arm(i, r.next)
		}
	}
	return maxLast
}

// windowFrom is the first tick runner i steps in this pass: its armed
// wake, clamped to the window start and to its own frontier.
func (e *ParallelEngine) windowFrom(i int) Cycle {
	from := e.wake[i]
	if from < e.now {
		from = e.now
	}
	if f := e.frontier[i-e.firstRunner]; from < f {
		from = f
	}
	return from
}

// commitWindowTick replays every pending deferred op produced at tick u,
// in ascending shard order, with the clock rewound to u — reproducing the
// per-tick engine's commit at the end of tick u exactly, timestamps
// included. Committed runners are re-armed from their post-commit
// NextEvent answer (frontier-clamped), mirroring the per-tick re-arm.
func (e *ParallelEngine) commitWindowTick(u Cycle) {
	saved := e.now
	e.now = u
	e.inCommit = true
	if e.commit != nil {
		e.commit(u)
	}
	e.inCommit = false
	for k, t := range e.pendTick {
		if t != u {
			continue
		}
		e.pendTick[k] = Never
		i := e.firstRunner + k
		if nx := e.events[i].NextEvent(u); nx != Never {
			e.arm(i, nx)
		}
	}
	e.now = saved
}

// runPhase steps every due runner, each on its pinned worker; the
// coordinating goroutine takes shard 0's work itself.
func (e *ParallelEngine) runPhase() {
	n := e.Shards()
	if n <= 1 || len(e.dueRunners) == 1 || runtime.GOMAXPROCS(0) == 1 {
		// Degenerate tick: no concurrency, but the same phase discipline
		// (member self-wakes settle in place at the now+1 boundary). The
		// GOMAXPROCS=1 case matters for correctness of *cost*: with a
		// single scheduler thread the barrier would just burn the quantum
		// handing the core back and forth, so the coordinator steps every
		// shard inline — bit-identity is unaffected (shard steps are
		// independent by construction; order is immaterial).
		e.inPhase = true
		for _, i := range e.dueRunners {
			k := i - e.firstRunner
			e.components[i].Step(e.now)
			e.stepsExecuted++
			e.workerSteps[k]++
		}
		e.inPhase = false
		return
	}
	p := e.ensurePool(n)
	for k := range p.work {
		p.work[k] = p.work[k][:0]
	}
	var own []int
	busy := false
	for _, i := range e.dueRunners {
		k := i - e.firstRunner
		if k == 0 {
			own = append(own, i)
			continue
		}
		p.work[k-1] = append(p.work[k-1], i)
		busy = true
	}
	e.inPhase = true
	if busy {
		p.dispatch(e)
	}
	for _, i := range own {
		e.components[i].Step(e.now)
		e.workerSteps[0]++
	}
	if busy {
		p.join()
	}
	e.inPhase = false
	e.stepsExecuted += uint64(len(e.dueRunners))
}

func (e *ParallelEngine) ensurePool(shards int) *workerPool {
	if e.pool == nil {
		e.pool = newWorkerPool(shards - 1)
	}
	return e.pool
}

// workerPool is a fork/join pool with one goroutine per non-coordinator
// shard, synchronized by a sense-reversing barrier: the atomic epoch
// counter is the generalized sense (a worker's private `seen` value vs the
// shared epoch), so no reset phase is needed between ticks. Waiters — the
// workers awaiting a dispatch and the coordinator awaiting the join — spin
// a bounded count hot (ticks are microseconds apart, so the fast path must
// not syscall), then yield the processor with runtime.Gosched for a while
// (an oversubscribed GOMAXPROCS must not livelock a quantum), and finally
// park on a buffered channel (a futex-style sleep under the Go scheduler),
// so idle shards stop burning cores entirely. Run shuts the pool down on
// exit so a finished machine holds no goroutines.
type workerPool struct {
	epoch atomic.Uint64
	done  atomic.Int64
	stop  atomic.Bool
	eng   *ParallelEngine
	// workers is the pool size, fixed at construction. Every worker counts
	// into every join — even one with no work this epoch — so a returned
	// join guarantees no worker still reads the epoch's assignment fields
	// when the coordinator starts writing the next epoch's. (A partial
	// join that skipped idle workers would race: an idle worker late out
	// of the barrier could read work/winRunner mid-rewrite.)
	workers int64
	work    [][]int // per-tick mode: work[k] = due runner indices for worker k+1

	// Window-pass assignment (winPass selects the mode for the epoch):
	// worker k runs engine component winRunner[k] (-1 = idle this pass)
	// from winFrom[k] toward winUntil.
	winPass   bool
	winUntil  Cycle
	winBase   Cycle
	winRunner []int
	winFrom   []Cycle

	parked      []atomic.Bool
	workerWake  []chan struct{}
	coordParked atomic.Bool
	coordWake   chan struct{}
	wg          sync.WaitGroup
}

// Barrier wait tuning: spin hot, then yield, then park.
const (
	barrierHotSpins   = 256
	barrierYieldSpins = 1024
	joinHotSpins      = 64
	joinYieldSpins    = 512
)

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{
		workers:    int64(workers),
		work:       make([][]int, workers),
		winRunner:  make([]int, workers),
		winFrom:    make([]Cycle, workers),
		parked:     make([]atomic.Bool, workers),
		workerWake: make([]chan struct{}, workers),
		coordWake:  make(chan struct{}, 1),
	}
	for k := 0; k < workers; k++ {
		p.workerWake[k] = make(chan struct{}, 1)
		p.wg.Add(1)
		go p.run(k)
	}
	return p
}

// dispatch publishes the tick to the workers. The atomic epoch store
// orders every serial-phase write (including the work assignments) before
// the workers' reads; parked workers are then poked awake.
func (p *workerPool) dispatch(e *ParallelEngine) {
	p.eng = e
	p.done.Store(0)
	p.epoch.Add(1)
	for k := range p.workerWake {
		if p.parked[k].Load() {
			select {
			case p.workerWake[k] <- struct{}{}:
			default:
			}
		}
	}
}

// join waits until every worker finished the epoch. The atomic done loads
// order the workers' shard writes before the commit phase's reads. Bounded
// spin, then yield, then park on coordWake — the last finishing worker
// sends the wake.
func (p *workerPool) join() {
	for spins := 0; p.done.Load() < p.workers; spins++ {
		switch {
		case spins < joinHotSpins:
		case spins < joinHotSpins+joinYieldSpins:
			runtime.Gosched()
		default:
			select {
			case <-p.coordWake: // drop a stale token before parking
			default:
			}
			p.coordParked.Store(true)
			if p.done.Load() >= p.workers {
				p.coordParked.Store(false)
				return
			}
			<-p.coordWake
			p.coordParked.Store(false)
		}
	}
}

// await blocks worker k until the epoch moves past seen (true) or the pool
// stops (false).
func (p *workerPool) await(k int, seen uint64) bool {
	for spins := 0; ; spins++ {
		if p.epoch.Load() != seen {
			return true
		}
		if p.stop.Load() {
			return false
		}
		switch {
		case spins < barrierHotSpins:
		case spins < barrierHotSpins+barrierYieldSpins:
			runtime.Gosched()
		default:
			ch := p.workerWake[k]
			select {
			case <-ch: // drop a stale token before parking
			default:
			}
			// Publish parked before the final re-check: dispatch stores
			// the epoch before reading parked, so either this worker sees
			// the new epoch here or dispatch sees parked and sends.
			p.parked[k].Store(true)
			if p.epoch.Load() != seen || p.stop.Load() {
				p.parked[k].Store(false)
				continue
			}
			<-ch
			p.parked[k].Store(false)
		}
	}
}

func (p *workerPool) run(k int) {
	defer p.wg.Done()
	seen := uint64(0)
	for {
		if !p.await(k, seen) {
			return
		}
		seen = p.epoch.Load()
		e := p.eng
		if p.winPass {
			if i := p.winRunner[k]; i >= 0 {
				sk := i - e.firstRunner
				last, next, dirty, steps := e.winRunners[sk].StepWindow(p.winFrom[k], p.winUntil, e.winMark[sk], p.winBase)
				e.winRes[sk] = windowResult{last: last, next: next, steps: steps, dirty: dirty, ran: true}
			}
		} else {
			for _, i := range p.work[k] {
				e.components[i].Step(e.now)
				e.workerSteps[k+1]++
			}
		}
		// Even an idle worker finishes: see the workers field contract.
		p.finish()
	}
}

// finish counts this worker into the join and wakes the coordinator if it
// parked waiting for the last one. The done.Add is this worker's last
// touch of any per-epoch shared state — everything after it reads only
// construction-time or atomic fields, so the coordinator is free to start
// the next serial phase the moment the count completes.
func (p *workerPool) finish() {
	if p.done.Add(1) >= p.workers && p.coordParked.Load() {
		select {
		case p.coordWake <- struct{}{}:
		default:
		}
	}
}

// shutdown stops and joins the workers, waking any that parked.
func (p *workerPool) shutdown() {
	p.stop.Store(true)
	for k := range p.workerWake {
		select {
		case p.workerWake[k] <- struct{}{}:
		default:
		}
	}
	p.wg.Wait()
}

// settleAll settles per-cycle statistics through the current cycle.
func (e *ParallelEngine) settleAll() {
	for _, s := range e.allSettle {
		s.Settle(e.now)
	}
}

// Run advances until done reports true or limit cycles elapse, with the
// same contract as Engine.Run: done is evaluated before each tick, every
// component is re-armed at entry, idle stretches are skipped against the
// armed-wake minimum and the busy horizon, and all Settlers are settled
// on return. Worker goroutines are torn down before returning, so an
// engine owned by a finished machine holds no resources.
func (e *ParallelEngine) Run(done func() bool, limit Cycle) (elapsed Cycle, ok bool) {
	start := e.now
	maxEnd := start + limit
	if maxEnd < start {
		maxEnd = Never // overflow: effectively unbounded
	}
	defer e.settleAll()
	defer func() {
		if e.pool != nil {
			e.pool.shutdown()
			e.pool = nil
		}
	}()
	if e.resumePending {
		// Resuming from a checkpoint: the restored wake queue is exact;
		// complete any idle jump the pause interrupted before ticking.
		e.resumePending = false
		if !done() {
			e.idleJump(start, limit)
		}
	} else {
		e.gridAnchor = e.now
		e.wakeAllAt(e.now)
	}
	for e.now-start < limit {
		if done() {
			return e.now - start, true
		}
		if !e.winOn || !e.tryWindow(maxEnd) {
			e.tick()
		}
		if done() {
			continue // report the exact completion cycle, not a jump target
		}
		e.idleJump(start, limit)
	}
	if ok = done(); !ok {
		// Paused at the limit: the wake queue is exact, so the next Run
		// (on this engine, or on one restored from a checkpoint taken now)
		// must resume rather than blanket re-arm.
		e.resumePending = true
	}
	return e.now - start, ok
}

// idleJump mirrors Engine.idleJump for the parallel kernel.
func (e *ParallelEngine) idleJump(start, limit Cycle) {
	var t Cycle
	if len(e.fheap) > 0 {
		t = e.wake[e.fheap[0]]
	} else {
		t = Never
	}
	if t <= e.now {
		return
	}
	fromHorizon := false
	if t == Never {
		if e.busyHorizon <= e.now {
			e.wakeAllAt(e.now)
			return
		}
		t = e.busyHorizon
		fromHorizon = true
	}
	clamped := false
	if t-start > limit {
		t = start + limit
		clamped = true
	}
	if e.stride > 1 {
		if off := (t - e.gridAnchor) % e.stride; off != 0 {
			t += e.stride - off
			if t-start > limit {
				t = start + limit
				clamped = true
			}
		}
	}
	if t > e.now {
		e.cyclesSkipped += uint64(t - e.now)
	}
	e.now = t
	if fromHorizon && !clamped {
		e.wakeAllAt(e.now)
	}
}

// MemberWaker adapts a shard member (a core, a bus) to the engine's
// Waker: wakes and settles aimed at the member are redirected to its
// owning runner. From serial contexts (delivery callbacks, the commit
// phase) it forwards to the engine; from the member's own parallel-phase
// step it settles the member in place — the slot has passed, so the
// boundary is now+1, exactly Engine's rule — and leaves arming to the
// runner's post-commit NextEvent poll, which subsumes the wake (the
// member's own NextEvent reflects the mutation that prompted it).
//
// The in-phase settle boundary uses the engine's epoch clock, which inside
// a multi-tick window lags the runner's local tick: machines that attach
// shard members through MemberWaker must not EnableWindows.
type MemberWaker struct {
	Eng    *ParallelEngine
	Runner Component
}

// Now reports the engine's current cycle.
func (w MemberWaker) Now() Cycle { return w.Eng.now }

// SlotNow reports the member's slot clock: the runner's slot, or the
// current cycle during the parallel phase (the member is inside its own
// slot at that instant).
func (w MemberWaker) SlotNow(c Component) Cycle {
	if w.Eng.inPhase {
		return w.Eng.now
	}
	return w.Eng.SlotNow(w.Runner)
}

// Wake redirects a member wake to the owning runner (serial contexts) or
// settles the member pre-mutation (parallel phase; must be the owning
// shard's worker).
func (w MemberWaker) Wake(c Component, at Cycle) {
	if w.Eng.inPhase {
		if s, ok := c.(Settler); ok {
			s.Settle(w.Eng.now + 1)
		}
		return
	}
	w.Eng.Wake(w.Runner, at)
}

var _ Waker = MemberWaker{}

// Driver is the engine surface machines program against: both Engine and
// ParallelEngine satisfy it, so a machine picks its engine at
// construction from a shard count and runs identically either way.
type Driver interface {
	Register(c Component)
	Run(done func() bool, limit Cycle) (elapsed Cycle, ok bool)
	Now() Cycle
	Wake(c Component, at Cycle)
	NoteBusy(until Cycle)
	BusyHorizon() Cycle
	Counters() Counters
}

var (
	_ Driver = (*Engine)(nil)
	_ Driver = (*ParallelEngine)(nil)
	_ Waker  = (*ParallelEngine)(nil)
)
