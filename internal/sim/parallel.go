package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelEngine is the conservative parallel counterpart of Engine: the
// machine's components are split into a serial prefix (fabrics, pumps,
// shared managers — everything whose step may touch global state) and a
// block of shard runners, one per worker goroutine, each owning a disjoint
// slice of the machine (TTDA PEs plus their I-structure banks, cmmp/ultra
// processors, Cm* clusters).
//
// Every tick is a fork/join epoch:
//
//  1. serial phase — due serial components step in registration order,
//     exactly as under Engine (network delivery, memory service, event
//     pumps; anything here may freely mutate shard state and Wake).
//  2. parallel phase — due shard runners step concurrently, one per
//     pinned worker. A runner may touch only its shard's state; every
//     cross-shard effect (a packet injection, a manager request, a shared
//     counter) is appended to the shard's deferred-op log instead of
//     applied. Wake is forbidden here; the runner's post-commit NextEvent
//     answer re-arms it.
//  3. commit phase — the machine's commit hook drains every shard's log
//     in ascending shard order. Shards own contiguous ascending component
//     ranges, so the drain replays cross-shard effects in exactly the
//     order the sequential engine produced them; the tick's cycle number
//     is still current, so timestamps (InjectedAt, due cycles) match too.
//
// Deferring an effect from the parallel phase to the commit phase is
// conservative — and bit-identical to sequential execution — only when no
// deferred effect can influence another shard within the same tick. That
// is the fabric's lookahead: the minimum cross-shard latency it declares
// (network.Lookaheader). The shard planner refuses lookahead < 1.
//
// Everything else — wake-queue arming, SlotNow's slot clock, the
// settle-before-mutation rule, busy-horizon quiescence, idle-cycle
// skipping — reproduces Engine behaviour exactly, so cycle counts and
// statistics stay bit-identical to the sequential engine. (The scheduler's
// own Counters necessarily differ: a machine that registers one driver
// with Engine but 1+N components here executes a different number of
// Steps. Simulated observables are what the conformance oracle compares.)
type ParallelEngine struct {
	components []Component
	events     []EventAware
	settlers   []Settler
	allSettle  []Settler
	index      map[Component]int
	// firstRunner is the index of the first shard runner; every component
	// at or past it is a runner. -1 while only serial components exist.
	firstRunner int

	now         Cycle
	prevTick    Cycle
	stride      Cycle
	busyHorizon Cycle

	wake     []Cycle
	fheap    []int
	pos      []int
	due      []int
	inDue    []bool
	stepping int

	commit func(now Cycle)

	// inPhase is true while the parallel phase runs; set and cleared by
	// the coordinating goroutine around the barrier, so reads from worker
	// threads are ordered by the barrier itself.
	inPhase  bool
	inCommit bool

	stepsExecuted uint64
	cyclesSkipped uint64
	wakesEnqueued uint64
	workerSteps   []uint64 // Step calls per shard runner

	// gridAnchor / resumePending: see Engine — the stride-grid anchor and
	// the LoadState flag that makes the next Run resume without re-arming.
	gridAnchor    Cycle
	resumePending bool

	pool *workerPool

	dueRunners []int
}

// NewParallelEngine returns an empty parallel engine at cycle 0.
func NewParallelEngine() *ParallelEngine {
	return &ParallelEngine{stride: 1, stepping: -1, firstRunner: -1, index: map[Component]int{}}
}

// Register adds a serial component. Serial components step before every
// shard runner each tick, in registration order; they are the only
// components allowed to mutate state outside their own shard. All
// components must be EventAware (there is no exhaustive fallback), and
// serial registration must precede every RegisterShard.
func (e *ParallelEngine) Register(c Component) {
	if e.firstRunner >= 0 {
		panic("sim: ParallelEngine.Register after RegisterShard — serial components must precede shard runners")
	}
	e.register(c)
}

// RegisterShard adds a shard runner. Runners step concurrently during the
// parallel phase, pinned one-per-worker, and commit their deferred ops in
// registration (= shard) order. Register shards in ascending order of the
// sequential component range they own: the commit drain then reproduces
// sequential evaluation order exactly.
func (e *ParallelEngine) RegisterShard(c Component) {
	if e.firstRunner < 0 {
		e.firstRunner = len(e.components)
	}
	e.register(c)
	e.workerSteps = append(e.workerSteps, 0)
}

func (e *ParallelEngine) register(c Component) {
	i := len(e.components)
	ea, ok := c.(EventAware)
	if !ok {
		panic("sim: ParallelEngine requires EventAware components")
	}
	e.components = append(e.components, c)
	e.events = append(e.events, ea)
	var s Settler
	if ss, ok := c.(Settler); ok {
		s = ss
		e.allSettle = append(e.allSettle, ss)
	}
	e.settlers = append(e.settlers, s)
	e.index[c] = i
	e.wake = append(e.wake, Never)
	e.pos = append(e.pos, -1)
	e.inDue = append(e.inDue, false)
	if w, ok := c.(Wakeable); ok {
		w.Attach(e)
	}
}

// OnCommit installs the machine's commit hook, called once per tick after
// the parallel phase joins (even when the deferred logs are empty). The
// hook drains every shard's log in ascending shard order.
func (e *ParallelEngine) OnCommit(fn func(now Cycle)) { e.commit = fn }

// Shards reports the number of registered shard runners.
func (e *ParallelEngine) Shards() int {
	if e.firstRunner < 0 {
		return 0
	}
	return len(e.components) - e.firstRunner
}

// Now reports the current cycle.
func (e *ParallelEngine) Now() Cycle { return e.now }

// SlotNow implements Waker exactly as Engine does: components at or before
// the stepping slot read the current cycle, later ones the previous
// executed tick. During the commit phase every slot has passed, so
// everyone reads the current cycle.
func (e *ParallelEngine) SlotNow(c Component) Cycle {
	if e.stepping < 0 {
		return e.now
	}
	if i, ok := e.index[c]; ok && i > e.stepping {
		return e.prevTick
	}
	return e.now
}

// Wake implements Waker with Engine's settle-then-arm semantics. It must
// only be called from serial contexts — the serial phase, the commit
// phase, or between ticks. Shard code running in the parallel phase
// defers instead (see MemberWaker for self-wakes of shard members).
func (e *ParallelEngine) Wake(c Component, at Cycle) {
	if e.inPhase {
		panic("sim: ParallelEngine.Wake during the parallel phase — defer the effect to the commit log")
	}
	e.wakesEnqueued++
	i, ok := e.index[c]
	if !ok {
		panic("sim: Wake on a component not registered with this engine")
	}
	if s := e.settlers[i]; s != nil {
		b := e.now
		if e.inCommit || (e.stepping >= 0 && i <= e.stepping) {
			// The target's slot has passed this tick (always true during
			// commit): cycle now itself was observed at the pre-mutation
			// state.
			b = e.now + 1
		}
		s.Settle(b)
	}
	if i == e.stepping || e.inDue[i] {
		return
	}
	if at <= e.now && e.stepping >= 0 && i > e.stepping {
		if e.pos[i] >= 0 {
			e.heapRemove(i)
		}
		e.duePush(i)
		return
	}
	e.arm(i, at)
}

// SetStride sets the simulated-time cost of one tick.
func (e *ParallelEngine) SetStride(d Cycle) {
	if d < 1 {
		d = 1
	}
	e.stride = d
}

// NoteBusy raises the busy horizon (serial contexts only; shard code
// accumulates a per-shard horizon merged at commit).
func (e *ParallelEngine) NoteBusy(until Cycle) {
	if until > e.busyHorizon {
		e.busyHorizon = until
	}
}

// BusyHorizon reports the latest promised-busy cycle.
func (e *ParallelEngine) BusyHorizon() Cycle { return e.busyHorizon }

// Counters returns the engine's scheduling counters.
func (e *ParallelEngine) Counters() Counters {
	return Counters{
		StepsExecuted: e.stepsExecuted,
		CyclesSkipped: e.cyclesSkipped,
		WakesEnqueued: e.wakesEnqueued,
	}
}

// WorkerSteps reports per-shard runner Step counts, in shard order — the
// per-worker share of the parallel phase.
func (e *ParallelEngine) WorkerSteps() []uint64 {
	out := make([]uint64, len(e.workerSteps))
	copy(out, e.workerSteps)
	return out
}

// --- wake-queue plumbing (identical to Engine's) ---

func (e *ParallelEngine) heapLess(a, b int) bool {
	return e.wake[a] < e.wake[b] || (e.wake[a] == e.wake[b] && a < b)
}

func (e *ParallelEngine) heapUp(j int) {
	h := e.fheap
	for j > 0 {
		p := (j - 1) / 2
		if !e.heapLess(h[j], h[p]) {
			break
		}
		h[j], h[p] = h[p], h[j]
		e.pos[h[j]] = j
		e.pos[h[p]] = p
		j = p
	}
}

func (e *ParallelEngine) heapDown(j int) {
	h := e.fheap
	n := len(h)
	for {
		l := 2*j + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && e.heapLess(h[r], h[l]) {
			m = r
		}
		if !e.heapLess(h[m], h[j]) {
			return
		}
		h[j], h[m] = h[m], h[j]
		e.pos[h[j]] = j
		e.pos[h[m]] = m
		j = m
	}
}

func (e *ParallelEngine) heapPopMin() int {
	h := e.fheap
	i := h[0]
	last := len(h) - 1
	h[0] = h[last]
	e.pos[h[0]] = 0
	e.fheap = h[:last]
	if last > 0 {
		e.heapDown(0)
	}
	e.pos[i] = -1
	return i
}

func (e *ParallelEngine) heapRemove(i int) {
	j := e.pos[i]
	h := e.fheap
	last := len(h) - 1
	if j != last {
		h[j] = h[last]
		e.pos[h[j]] = j
	}
	e.fheap = h[:last]
	e.pos[i] = -1
	if j != last {
		e.heapDown(j)
		e.heapUp(j)
	}
}

func (e *ParallelEngine) arm(i int, at Cycle) {
	if at < e.now {
		at = e.now
	}
	if p := e.pos[i]; p >= 0 {
		if at < e.wake[i] {
			e.wake[i] = at
			e.heapUp(p)
		}
		return
	}
	e.wake[i] = at
	e.pos[i] = len(e.fheap)
	e.fheap = append(e.fheap, i)
	e.heapUp(len(e.fheap) - 1)
}

func (e *ParallelEngine) wakeAllAt(at Cycle) {
	for i := range e.components {
		e.arm(i, at)
	}
}

func (e *ParallelEngine) duePush(i int) {
	e.inDue[i] = true
	d := append(e.due, i)
	j := len(d) - 1
	for j > 0 {
		p := (j - 1) / 2
		if d[p] <= d[j] {
			break
		}
		d[j], d[p] = d[p], d[j]
		j = p
	}
	e.due = d
}

func (e *ParallelEngine) duePop() int {
	d := e.due
	i := d[0]
	last := len(d) - 1
	d[0] = d[last]
	e.due = d[:last]
	d = e.due
	j := 0
	for {
		l := 2*j + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && d[r] < d[l] {
			m = r
		}
		if d[j] <= d[m] {
			break
		}
		d[j], d[m] = d[m], d[j]
		j = m
	}
	return i
}

// tick runs one fork/join epoch: serial phase, parallel phase, commit.
func (e *ParallelEngine) tick() {
	for len(e.fheap) > 0 && e.wake[e.fheap[0]] <= e.now {
		e.duePush(e.heapPopMin())
	}
	// Serial phase: the due heap is ordered by index and serial components
	// occupy the low indices, so draining while the head is serial steps
	// them in registration order. A serial step may duePush a later serial
	// component or a runner; both land behind the current head.
	for len(e.due) > 0 && (e.firstRunner < 0 || e.due[0] < e.firstRunner) {
		i := e.duePop()
		e.inDue[i] = false
		e.stepping = i
		e.components[i].Step(e.now)
		e.stepsExecuted++
		if t := e.events[i].NextEvent(e.now); t != Never {
			e.arm(i, t)
		}
	}
	// Parallel phase: remaining due entries are runners.
	e.dueRunners = e.dueRunners[:0]
	for len(e.due) > 0 {
		i := e.duePop()
		e.inDue[i] = false
		e.dueRunners = append(e.dueRunners, i)
	}
	e.stepping = -1
	if len(e.dueRunners) > 0 {
		e.runPhase()
		e.inCommit = true
		if e.commit != nil {
			e.commit(e.now)
		}
		e.inCommit = false
		// Re-arm after commit: committed effects (a token pushed into a
		// PE's output queue by a deferred manager op) are visible to the
		// runner's NextEvent answer, exactly as they were to the
		// sequential driver's in-step cache.
		for _, i := range e.dueRunners {
			if t := e.events[i].NextEvent(e.now); t != Never {
				e.arm(i, t)
			}
		}
	}
	e.prevTick = e.now
	e.now += e.stride
}

// runPhase steps every due runner, each on its pinned worker; the
// coordinating goroutine takes shard 0's work itself.
func (e *ParallelEngine) runPhase() {
	n := e.Shards()
	if n <= 1 || len(e.dueRunners) == 1 || runtime.GOMAXPROCS(0) == 1 {
		// Degenerate tick: no concurrency, but the same phase discipline
		// (member self-wakes settle in place at the now+1 boundary). The
		// GOMAXPROCS=1 case matters for correctness of *cost*: with a
		// single scheduler thread the spin barrier would just burn the
		// quantum handing the core back and forth, so the coordinator
		// steps every shard inline — bit-identity is unaffected (shard
		// steps are independent by construction; order is immaterial).
		e.inPhase = true
		for _, i := range e.dueRunners {
			k := i - e.firstRunner
			e.components[i].Step(e.now)
			e.stepsExecuted++
			e.workerSteps[k]++
		}
		e.inPhase = false
		return
	}
	if e.pool == nil {
		e.pool = newWorkerPool(n - 1)
	}
	p := e.pool
	for k := range p.work {
		p.work[k] = nil
	}
	var own []int
	for _, i := range e.dueRunners {
		k := i - e.firstRunner
		if k == 0 {
			own = append(own, i)
			continue
		}
		p.work[k-1] = append(p.work[k-1][:0], i)
	}
	e.inPhase = true
	p.dispatch(e)
	for _, i := range own {
		e.components[i].Step(e.now)
		e.workerSteps[0]++
	}
	p.join()
	e.inPhase = false
	e.stepsExecuted += uint64(len(e.dueRunners))
}

// workerPool is a spin-synchronized fork/join pool: one goroutine per
// non-coordinator shard, signalled by an atomic epoch counter. Ticks are
// microseconds apart, so spinning (with Gosched back-off for
// oversubscribed GOMAXPROCS) beats channel hand-offs by an order of
// magnitude; Run shuts the pool down on exit so idle machines never burn
// a core.
type workerPool struct {
	epoch atomic.Uint64
	done  atomic.Int64
	stop  atomic.Bool
	eng   *ParallelEngine
	work  [][]int // work[k] = due runner indices for worker k+1
	wg    sync.WaitGroup
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{work: make([][]int, workers)}
	for k := 0; k < workers; k++ {
		p.wg.Add(1)
		go p.run(k)
	}
	return p
}

// dispatch publishes the tick to the workers. The atomic epoch store
// orders every serial-phase write before the workers' reads.
func (p *workerPool) dispatch(e *ParallelEngine) {
	p.eng = e
	p.done.Store(0)
	p.epoch.Add(1)
}

// join spins until every worker finished its shard. The atomic loads
// order the workers' shard writes before the commit phase's reads.
func (p *workerPool) join() {
	n := int64(len(p.work))
	for spins := 0; p.done.Load() < n; spins++ {
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

func (p *workerPool) run(k int) {
	defer p.wg.Done()
	seen := uint64(0)
	for {
		for spins := 0; p.epoch.Load() == seen; spins++ {
			if p.stop.Load() {
				return
			}
			if spins > 256 {
				runtime.Gosched()
			}
		}
		seen++
		e := p.eng
		for _, i := range p.work[k] {
			e.components[i].Step(e.now)
			e.workerSteps[k+1]++
		}
		p.done.Add(1)
	}
}

// shutdown stops and joins the workers.
func (p *workerPool) shutdown() {
	p.stop.Store(true)
	p.wg.Wait()
}

// settleAll settles per-cycle statistics through the current cycle.
func (e *ParallelEngine) settleAll() {
	for _, s := range e.allSettle {
		s.Settle(e.now)
	}
}

// Run advances until done reports true or limit cycles elapse, with the
// same contract as Engine.Run: done is evaluated before each tick, every
// component is re-armed at entry, idle stretches are skipped against the
// armed-wake minimum and the busy horizon, and all Settlers are settled
// on return. Worker goroutines are torn down before returning, so an
// engine owned by a finished machine holds no resources.
func (e *ParallelEngine) Run(done func() bool, limit Cycle) (elapsed Cycle, ok bool) {
	start := e.now
	defer e.settleAll()
	defer func() {
		if e.pool != nil {
			e.pool.shutdown()
			e.pool = nil
		}
	}()
	if e.resumePending {
		// Resuming from a checkpoint: the restored wake queue is exact;
		// complete any idle jump the pause interrupted before ticking.
		e.resumePending = false
		if !done() {
			e.idleJump(start, limit)
		}
	} else {
		e.gridAnchor = e.now
		e.wakeAllAt(e.now)
	}
	for e.now-start < limit {
		if done() {
			return e.now - start, true
		}
		e.tick()
		if done() {
			continue // report the exact completion cycle, not a jump target
		}
		e.idleJump(start, limit)
	}
	if ok = done(); !ok {
		// Paused at the limit: the wake queue is exact, so the next Run
		// (on this engine, or on one restored from a checkpoint taken now)
		// must resume rather than blanket re-arm.
		e.resumePending = true
	}
	return e.now - start, ok
}

// idleJump mirrors Engine.idleJump for the parallel kernel.
func (e *ParallelEngine) idleJump(start, limit Cycle) {
	var t Cycle
	if len(e.fheap) > 0 {
		t = e.wake[e.fheap[0]]
	} else {
		t = Never
	}
	if t <= e.now {
		return
	}
	fromHorizon := false
	if t == Never {
		if e.busyHorizon <= e.now {
			e.wakeAllAt(e.now)
			return
		}
		t = e.busyHorizon
		fromHorizon = true
	}
	clamped := false
	if t-start > limit {
		t = start + limit
		clamped = true
	}
	if e.stride > 1 {
		if off := (t - e.gridAnchor) % e.stride; off != 0 {
			t += e.stride - off
			if t-start > limit {
				t = start + limit
				clamped = true
			}
		}
	}
	if t > e.now {
		e.cyclesSkipped += uint64(t - e.now)
	}
	e.now = t
	if fromHorizon && !clamped {
		e.wakeAllAt(e.now)
	}
}

// MemberWaker adapts a shard member (a core, a bus) to the engine's
// Waker: wakes and settles aimed at the member are redirected to its
// owning runner. From serial contexts (delivery callbacks, the commit
// phase) it forwards to the engine; from the member's own parallel-phase
// step it settles the member in place — the slot has passed, so the
// boundary is now+1, exactly Engine's rule — and leaves arming to the
// runner's post-commit NextEvent poll, which subsumes the wake (the
// member's own NextEvent reflects the mutation that prompted it).
type MemberWaker struct {
	Eng    *ParallelEngine
	Runner Component
}

// Now reports the engine's current cycle.
func (w MemberWaker) Now() Cycle { return w.Eng.now }

// SlotNow reports the member's slot clock: the runner's slot, or the
// current cycle during the parallel phase (the member is inside its own
// slot at that instant).
func (w MemberWaker) SlotNow(c Component) Cycle {
	if w.Eng.inPhase {
		return w.Eng.now
	}
	return w.Eng.SlotNow(w.Runner)
}

// Wake redirects a member wake to the owning runner (serial contexts) or
// settles the member pre-mutation (parallel phase; must be the owning
// shard's worker).
func (w MemberWaker) Wake(c Component, at Cycle) {
	if w.Eng.inPhase {
		if s, ok := c.(Settler); ok {
			s.Settle(w.Eng.now + 1)
		}
		return
	}
	w.Eng.Wake(w.Runner, at)
}

var _ Waker = MemberWaker{}

// Driver is the engine surface machines program against: both Engine and
// ParallelEngine satisfy it, so a machine picks its engine at
// construction from a shard count and runs identically either way.
type Driver interface {
	Register(c Component)
	Run(done func() bool, limit Cycle) (elapsed Cycle, ok bool)
	Now() Cycle
	Wake(c Component, at Cycle)
	NoteBusy(until Cycle)
	BusyHorizon() Cycle
	Counters() Counters
}

var (
	_ Driver = (*Engine)(nil)
	_ Driver = (*ParallelEngine)(nil)
	_ Waker  = (*ParallelEngine)(nil)
)
