package sim

// RNG is a small, fast, seedable pseudo-random generator (xorshift64*).
// Every stochastic choice in the simulators draws from an explicitly seeded
// RNG so that experiments are bit-for-bit reproducible. The zero RNG is not
// valid; construct with NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Save writes the generator state (a single xorshift word) for
// checkpointing.
func (r *RNG) Save(e *Enc) { e.U64(r.state) }

// Load restores the generator state. Xorshift never reaches zero from a
// non-zero seed, so a zero word marks a corrupt stream.
func (r *RNG) Load(d *Dec) {
	s := d.U64()
	if s == 0 {
		d.Failf("rng state is zero")
		return
	}
	r.state = s
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
