package sim

import (
	"testing"
)

// The toy machine: N cells pass tokens around a ring through a serial
// fabric with a fixed latency. It exercises exactly the structure real
// machines use on the ParallelEngine — a serial fabric stepped before the
// shard phase, cells that defer cross-shard sends to a per-shard log, a
// commit hook draining logs in shard order — so sequential-vs-parallel
// parity here checks the engine's epoch protocol end to end (including
// idle-cycle skipping across the fabric latency gaps).

type ringSend struct {
	due Cycle
	dst int
	val int
	// tick is the production tick of a deferred send (shard log entries
	// only); the commit hook drains entries up to the commit tick, the
	// same prefix discipline real machines use under epoch windows.
	tick Cycle
}

type ringFabric struct {
	m        *ringMachine
	inflight []ringSend // kept sorted by due (appends are nondecreasing)
}

func (f *ringFabric) Step(now Cycle) {
	i := 0
	for ; i < len(f.inflight) && f.inflight[i].due <= now; i++ {
		s := f.inflight[i]
		f.m.deliver(s.dst, s.val)
	}
	f.inflight = f.inflight[:copy(f.inflight, f.inflight[i:])]
}

func (f *ringFabric) NextEvent(now Cycle) Cycle {
	if len(f.inflight) == 0 {
		return Never
	}
	if t := f.inflight[0].due; t > now {
		return t
	}
	return now
}

// ringCell passes one held token per step to its ring successor while its
// personal budget lasts; out of budget, arriving tokens park. Cells touch
// only their own state plus machine.send, which defers on a sharded
// machine — the shard-safety discipline real PEs follow.
type ringCell struct {
	m       *ringMachine
	id      int
	pending int // delivered this tick by the fabric, consumed at the next step
	tokens  int
	budget  int
	// chew is the number of shard-local work ticks a cell spends on each
	// received token before forwarding it — the clean stretches that let
	// an epoch window widen past one tick.
	chew     int
	chewLeft int
	steps    uint64
	passed   uint64
}

func (c *ringCell) Step(now Cycle) {
	c.steps++
	if c.pending > 0 {
		c.tokens += c.pending
		c.pending = 0
		if c.chew > 0 && c.budget > 0 {
			c.chewLeft = c.chew
		}
	}
	if c.chewLeft > 0 {
		c.chewLeft--
		return
	}
	if c.tokens > 0 && c.budget > 0 {
		c.tokens--
		c.budget--
		c.passed++
		c.m.send(c, (c.id+1)%len(c.m.cells), 1, now)
	}
}

func (c *ringCell) NextEvent(now Cycle) Cycle {
	if c.pending > 0 || c.chewLeft > 0 || (c.tokens > 0 && c.budget > 0) {
		return now
	}
	return Never
}

type ringShard struct {
	m     *ringMachine
	span  Span
	sends []ringSend // deferred cross-effects, drained at commit
}

func (s *ringShard) Step(now Cycle) {
	for i := s.span.Lo; i < s.span.Hi; i++ {
		c := s.m.cells[i]
		if c.NextEvent(now) <= now {
			c.Step(now)
		}
	}
}

// StepWindow implements WindowRunner: advance the shard's local timeline
// tick by tick, halting after any tick that deferred sends (see
// coreShard.StepWindow for the dirty-stop rationale).
func (s *ringShard) StepWindow(from, until Cycle, stepped []bool, base Cycle) (last, next Cycle, dirty bool, steps uint64) {
	t := from
	for {
		stepped[t-base] = true
		steps++
		last = t
		s.Step(t)
		if len(s.sends) > 0 {
			return last, Never, true, steps
		}
		nx := s.NextEvent(t + 1)
		if nx >= until {
			return last, nx, false, steps
		}
		t = nx
	}
}

func (s *ringShard) NextEvent(now Cycle) Cycle {
	next := Never
	for i := s.span.Lo; i < s.span.Hi; i++ {
		if t := s.m.cells[i].NextEvent(now); t < next {
			next = t
		}
	}
	return next
}

type ringMachine struct {
	cells   []*ringCell
	fabric  *ringFabric
	shards  []*ringShard
	shardOf []*ringShard
	eng     Driver
	peng    *ParallelEngine
	latency Cycle
}

func (m *ringMachine) send(c *ringCell, dst, val int, now Cycle) {
	if sh := m.shardOf[c.id]; sh != nil {
		sh.sends = append(sh.sends, ringSend{dst: dst, val: val, tick: now})
		return
	}
	m.fabric.inflight = append(m.fabric.inflight, ringSend{due: now + m.latency, dst: dst, val: val})
	m.eng.Wake(m.fabric, now+m.latency)
}

func (m *ringMachine) deliver(dst, val int) {
	c := m.cells[dst]
	c.pending += val
	if m.peng != nil {
		m.eng.Wake(m.shardOf[dst], m.eng.Now())
	} else {
		m.eng.Wake(c, m.eng.Now())
	}
}

func (m *ringMachine) commit(now Cycle) {
	for _, sh := range m.shards {
		n := 0
		for n < len(sh.sends) && sh.sends[n].tick <= now {
			n++
		}
		for _, s := range sh.sends[:n] {
			m.fabric.inflight = append(m.fabric.inflight, ringSend{due: now + m.latency, dst: s.dst, val: s.val})
			m.eng.Wake(m.fabric, now+m.latency)
		}
		sh.sends = sh.sends[:copy(sh.sends, sh.sends[n:])]
	}
}

func (m *ringMachine) quiet() bool {
	if len(m.fabric.inflight) > 0 {
		return false
	}
	for _, c := range m.cells {
		if c.pending > 0 || c.chewLeft > 0 || (c.tokens > 0 && c.budget > 0) {
			return false
		}
	}
	return true
}

// newRing builds the toy on a sequential engine (shards == 0) or a
// ParallelEngine with the given shard count.
func newRing(n, shards int, latency Cycle, budget int) *ringMachine {
	m := &ringMachine{latency: latency}
	m.fabric = &ringFabric{m: m}
	for i := 0; i < n; i++ {
		m.cells = append(m.cells, &ringCell{m: m, id: i, budget: budget})
	}
	m.shardOf = make([]*ringShard, n)
	if shards <= 0 {
		eng := NewEngine()
		eng.Register(m.fabric)
		for _, c := range m.cells {
			eng.Register(c)
		}
		m.eng = eng
		return m
	}
	peng := NewParallelEngine()
	peng.Register(m.fabric)
	for _, sp := range PlanShards(n, shards) {
		sh := &ringShard{m: m, span: sp}
		m.shards = append(m.shards, sh)
		for i := sp.Lo; i < sp.Hi; i++ {
			m.shardOf[i] = sh
		}
		peng.RegisterShard(sh)
	}
	peng.OnCommit(m.commit)
	m.eng = peng
	m.peng = peng
	return m
}

type ringResult struct {
	elapsed Cycle
	ok      bool
	passed  []uint64
	tokens  []int
}

func runRing(t *testing.T, shards int) ringResult {
	t.Helper()
	const n, latency, budget = 13, 5, 40
	m := newRing(n, shards, latency, budget)
	// Seed tokens unevenly so shards see skewed load.
	m.cells[0].tokens = 3
	m.cells[7].tokens = 1
	elapsed, ok := m.eng.Run(m.quiet, 100_000)
	res := ringResult{elapsed: elapsed, ok: ok}
	for _, c := range m.cells {
		res.passed = append(res.passed, c.passed)
		res.tokens = append(res.tokens, c.tokens+c.pending)
	}
	return res
}

func TestParallelEngineMatchesSequential(t *testing.T) {
	want := runRing(t, 0)
	if !want.ok {
		t.Fatalf("sequential reference did not quiesce (elapsed %d)", want.elapsed)
	}
	for _, shards := range []int{1, 2, 3, 4, 8, 16} {
		got := runRing(t, shards)
		if got.elapsed != want.elapsed || got.ok != want.ok {
			t.Errorf("shards=%d: elapsed %d ok %v, want %d %v", shards, got.elapsed, got.ok, want.elapsed, want.ok)
		}
		// Simulated observables must match exactly; Step-invocation counts
		// are scheduler detail (exhaustive fallback ticks differ) and are
		// deliberately not compared — the same split the conformance
		// snapshots make.
		for i := range want.passed {
			if got.passed[i] != want.passed[i] || got.tokens[i] != want.tokens[i] {
				t.Errorf("shards=%d cell %d: passed/tokens %d/%d, want %d/%d",
					shards, i, got.passed[i], got.tokens[i],
					want.passed[i], want.tokens[i])
			}
		}
	}
}

func TestParallelEngineSkipsIdleCycles(t *testing.T) {
	m := newRing(13, 4, 5, 40)
	m.cells[0].tokens = 1
	if _, ok := m.eng.Run(m.quiet, 100_000); !ok {
		t.Fatal("did not quiesce")
	}
	c := m.peng.Counters()
	// One token circulating through latency-5 hops leaves ~4 idle cycles
	// per hop; the engine must skip them, not tick through them.
	if c.CyclesSkipped == 0 {
		t.Fatalf("parallel engine skipped no cycles: %+v", c)
	}
}

func TestParallelEngineWorkerSteps(t *testing.T) {
	m := newRing(12, 4, 2, 40)
	for i := range m.cells {
		m.cells[i].tokens = 1
	}
	if _, ok := m.eng.Run(m.quiet, 100_000); !ok {
		t.Fatal("did not quiesce")
	}
	ws := m.peng.WorkerSteps()
	if len(ws) != 4 {
		t.Fatalf("want 4 worker counters, got %v", ws)
	}
	for _, w := range ws {
		if w == 0 {
			t.Fatalf("a worker executed zero steps: %v", ws)
		}
	}
}

// inertAware is the minimal EventAware component for registration tests.
type inertAware struct{}

func (inertAware) Step(Cycle)            {}
func (inertAware) NextEvent(Cycle) Cycle { return Never }

func TestParallelEngineRegisterOrderEnforced(t *testing.T) {
	e := NewParallelEngine()
	e.RegisterShard(&inertAware{})
	defer func() {
		if recover() == nil {
			t.Fatal("serial Register after RegisterShard should panic")
		}
	}()
	e.Register(&inertAware{})
}

func TestParallelEngineRejectsNonEventAware(t *testing.T) {
	e := NewParallelEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("registering a non-EventAware component should panic")
		}
	}()
	e.Register(ComponentFunc(func(Cycle) {}))
}
