package sim

import "fmt"

// Span is a contiguous run [Lo, Hi) of sequentially-ordered units —
// component indices in a machine's canonical registration order.
type Span struct {
	Lo, Hi int
}

// Len reports the number of units in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// PlanShards partitions units sequentially-ordered units into at most
// shards contiguous, balanced spans. The spans cover [0, units) exactly
// once, in ascending order, and their sizes differ by at most one.
//
// Contiguity and ascending order are load-bearing, not cosmetic: the
// commit phase drains shard logs in shard order, and only a partition
// that preserves the sequential unit order makes that drain replay
// cross-shard effects in the exact order the sequential engine produced
// them. Requesting more shards than units yields units singleton spans;
// shards < 1 is treated as 1. units < 1 yields nil.
func PlanShards(units, shards int) []Span {
	if units < 1 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > units {
		shards = units
	}
	spans := make([]Span, 0, shards)
	base := units / shards
	extra := units % shards
	lo := 0
	for s := 0; s < shards; s++ {
		size := base
		if s < extra {
			size++
		}
		spans = append(spans, Span{Lo: lo, Hi: lo + size})
		lo += size
	}
	return spans
}

// PlanShardsLookahead is PlanShards with the conservative-parallelism
// precondition checked: the fabric's declared lookahead must be at least
// one cycle, or a cross-shard effect deferred to the commit phase could
// have been observed by another shard within the producing tick and the
// epoch protocol would no longer be bit-identical to sequential
// execution.
func PlanShardsLookahead(units, shards int, lookahead Cycle) ([]Span, error) {
	if lookahead < 1 {
		return nil, fmt.Errorf("sim: shard plan needs fabric lookahead >= 1 cycle, got %d — a zero-latency fabric delivers cross-shard effects within the producing tick, which the deferred-commit epoch protocol cannot reproduce", lookahead)
	}
	return PlanShards(units, shards), nil
}
