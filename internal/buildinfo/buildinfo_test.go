package buildinfo

import "testing"

// Test binaries carry build info but usually no VCS stamp; CodeVersion
// must degrade to a non-empty marker rather than an empty string (an
// empty stamp would silently merge cache namespaces).
func TestCodeVersionNonEmpty(t *testing.T) {
	if v := CodeVersion(); v == "" {
		t.Fatal("CodeVersion returned an empty string")
	}
}
