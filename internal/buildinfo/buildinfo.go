// Package buildinfo stamps produced artifacts — benchmark JSON documents,
// cache keys, served results — with the code revision that produced them.
// The stamp is what makes the content-addressed result cache honest: two
// binaries built from different revisions must never share cache entries,
// because a simulator change that moves a single cycle count would
// otherwise be served stale results forever.
package buildinfo

import "runtime/debug"

// CodeVersion identifies the producing binary from its embedded build
// info: the VCS revision (suffixed +dirty when the tree was modified) when
// the toolchain recorded one, else the main module version, else
// "unknown". Binaries built without VCS metadata (`go run` from a
// non-checkout, test binaries) all report "unknown" and therefore share
// cache entries only with each other.
func CodeVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if modified == "true" {
			return rev + "+dirty"
		}
		return rev
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "unknown"
}
