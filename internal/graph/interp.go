package graph

import (
	"fmt"

	"repro/internal/token"
)

// Interp is the sequential reference interpreter for dataflow programs. It
// executes graphs under idealized dataflow semantics: every enabled
// instruction fires in the wave after its operands arrive, every firing
// takes one time unit, and communication is free. It serves two purposes:
//
//   - a correctness oracle: the cycle-accurate machine and the emulator
//     must compute the same results;
//   - an ideal-parallelism profiler: the wave structure gives the critical
//     path (Depth) and per-wave enabled-instruction counts (Profile) of
//     the program, the upper bound any real machine is compared against.
//
// The interpreter executes a CompiledGraph plan: instruction dispatch is a
// dense kind switch, the context table is a flat array indexed by context
// number, and the waiting-matching store is a table of per-activation
// frames whose slots were assigned statically at compile time — no
// per-activity map operations and no per-record allocations on the hot
// path (frames and context records are recycled storage, the free-list
// discipline internal/core already uses).
type Interp struct {
	cg         *CompiledGraph
	compileErr error

	// context table: a dense array indexed by context number (contexts are
	// allocated monotonically, so index = id; entry 0 is the root context
	// and holds no record). Records are embedded — no per-record
	// allocation — and freeing is a liveness flip.
	nextCtx token.Context
	ctxs    []ctxRecord
	ctxLive int

	// waiting-matching store: per-activation frames of statically-assigned
	// match slots (see frameTable), replacing the per-activity hash map.
	frames frameTable
	// parked counts slots currently holding exactly one operand — the
	// unmatched-token population a clean termination requires to be zero.
	parked int

	// I-structure storage
	store *idealIStore

	// wave-structured worklists
	current []tok
	next    []tok

	// results returned on context 0
	results []token.Value

	// context reclamation accounting
	ctxFreed uint64
	ctxPeak  int

	// statistics
	fired    uint64
	tokens   uint64
	profile  []int
	maxSteps uint64
}

type tok struct {
	act   token.ActivityName
	port  uint8
	value token.Value
}

type partial struct {
	vals [2]token.Value
	have [2]bool
}

type ctxRecord struct {
	block       BlockID // code block this context executes
	parent      token.ActivityName
	parentBlock BlockID
	returnDests []CDest
	// reclamation state: the record's only consumers are one SendArg/L
	// lookup per callee entry and one Return lookup. Dataflow calls are
	// non-strict — a function may return before all its arguments arrive —
	// so the record is freed only when both conditions hold.
	argsSent int
	returned bool
	live     bool
}

// idealIStore is the interpreter's untimed I-structure storage: presence
// bits and deferred read lists with zero access cost.
type idealIStore struct {
	cells    []idealCell
	deferred int // currently outstanding deferred reads
	deferMax int
	deferObs uint64 // total reads that had to be deferred
}

type idealCell struct {
	present  bool
	value    token.Value
	waiters  []CDest
	waitActs []token.ActivityName
}

// NewInterp returns an interpreter for prog, which must be valid. The
// program is compiled to an execution plan; a compile failure surfaces
// from Run.
func NewInterp(prog *Program) *Interp {
	cg, err := Compile(prog)
	it := NewInterpPlan(cg)
	it.compileErr = err
	return it
}

// NewInterpPlan returns an interpreter executing an already-compiled plan,
// sharing it with other consumers (compile once, run many).
func NewInterpPlan(cg *CompiledGraph) *Interp {
	return &Interp{
		cg:       cg,
		nextCtx:  1,
		store:    &idealIStore{},
		maxSteps: 100_000_000,
	}
}

// SetMaxSteps bounds the number of instruction firings before Run reports
// non-termination.
func (it *Interp) SetMaxSteps(n uint64) { it.maxSteps = n }

// Run executes the program on the given entry-block arguments and returns
// the values delivered by OpReturn in context 0, in delivery order.
func (it *Interp) Run(args ...token.Value) ([]token.Value, error) {
	if it.compileErr != nil {
		return nil, it.compileErr
	}
	entry := it.cg.Block(0)
	if len(args) != len(entry.Entries) {
		return nil, fmt.Errorf("graph: program %q wants %d arguments, got %d",
			it.cg.Prog.Name, len(entry.Entries), len(args))
	}
	for j, v := range args {
		it.inject(token.ActivityName{Context: 0, CodeBlock: uint16(entry.ID), Statement: entry.Entries[j], Initiation: 1}, 0, v)
	}
	for len(it.current) > 0 || len(it.next) > 0 {
		if len(it.current) == 0 {
			it.current, it.next = it.next, it.current[:0]
			continue
		}
		it.profile = append(it.profile, 0)
		wave := it.current
		it.current = nil
		for _, t := range wave {
			if err := it.deliver(t); err != nil {
				return nil, err
			}
		}
		if it.fired > it.maxSteps {
			return nil, fmt.Errorf("graph: program %q exceeded %d firings", it.cg.Prog.Name, it.maxSteps)
		}
	}
	if it.parked != 0 {
		return nil, fmt.Errorf("graph: program %q finished with %d unmatched tokens in the waiting store", it.cg.Prog.Name, it.parked)
	}
	if it.store.deferred != 0 {
		return nil, fmt.Errorf("graph: program %q deadlocked: %d deferred reads were never satisfied", it.cg.Prog.Name, it.store.deferred)
	}
	return it.results, nil
}

// Fired returns the number of instruction firings.
func (it *Interp) Fired() uint64 { return it.fired }

// Tokens returns the number of tokens produced.
func (it *Interp) Tokens() uint64 { return it.tokens }

// Depth returns the critical path length in unit-time waves.
func (it *Interp) Depth() int { return len(it.profile) }

// Profile returns the number of instruction firings per wave: the ideal
// parallelism profile of the program.
func (it *Interp) Profile() []int { return it.profile }

// MaxParallelism returns the widest wave.
func (it *Interp) MaxParallelism() int {
	m := 0
	for _, w := range it.profile {
		if w > m {
			m = w
		}
	}
	return m
}

// DeferredReads returns how many reads arrived before their writes (total),
// and the peak number outstanding at once.
func (it *Interp) DeferredReads() (total uint64, peak int) {
	return it.store.deferObs, it.store.deferMax
}

// ctx returns the live record for context u, or nil.
func (it *Interp) ctx(u token.Context) *ctxRecord {
	if u < 1 || uint64(u) >= uint64(len(it.ctxs)) {
		return nil
	}
	rec := &it.ctxs[u]
	if !rec.live {
		return nil
	}
	return rec
}

// maybeFreeCtx reclaims a record once its return fired and all its callee
// entries received their arguments.
func (it *Interp) maybeFreeCtx(rec *ctxRecord) {
	if rec.returned && rec.argsSent >= len(it.cg.Block(rec.block).Entries) {
		rec.live = false
		it.ctxLive--
		it.ctxFreed++
	}
}

// Contexts reports context-manager accounting: how many invocation records
// were allocated in total, how many were reclaimed at their RETURN/L-1, and
// the peak number live at once — the finite resource a real manager must
// provide.
func (it *Interp) Contexts() (allocated uint64, freed uint64, peak int) {
	return uint64(it.nextCtx - 1), it.ctxFreed, it.ctxPeak
}

// Structure returns the element values of an I-structure after execution.
// Cells never written report token.Nil().
func (it *Interp) Structure(r token.Ref) []token.Value {
	out := make([]token.Value, 0, r.Len)
	for a := uint64(r.Base); a < uint64(r.Base)+uint64(r.Len) && a < uint64(len(it.store.cells)); a++ {
		c := it.store.cells[a]
		if c.present {
			out = append(out, c.value)
		} else {
			out = append(out, token.Nil())
		}
	}
	return out
}

// inject schedules a token for the next wave.
func (it *Interp) inject(act token.ActivityName, port uint8, v token.Value) {
	it.tokens++
	it.next = append(it.next, tok{act: act, port: port, value: v})
}

// deliver routes one token: either fires its instruction or parks it in
// its activation frame's statically-assigned match slot.
func (it *Interp) deliver(t tok) error {
	cb := &it.cg.Blocks[t.act.CodeBlock]
	in := &cb.Instrs[t.act.Statement]
	if in.NT <= 1 {
		var vals [2]token.Value
		vals[t.port] = t.value
		return it.fire(in, t.act, vals)
	}
	fr, p := it.frames.slot(t.act, cb, in.MatchSlot)
	if p.have[t.port] {
		return fmt.Errorf("graph: duplicate token at %s port %d", t.act, t.port)
	}
	if !p.have[0] && !p.have[1] {
		fr.occupied++
		it.parked++
	}
	p.vals[t.port] = t.value
	p.have[t.port] = true
	if p.have[0] && p.have[1] {
		vals := p.vals
		*p = partial{}
		fr.occupied--
		it.parked--
		if fr.occupied == 0 {
			it.frames.release(fr)
		}
		return it.fire(in, t.act, vals)
	}
	return nil
}

// operands assembles the full operand vector, merging literals.
func operands(in *CInstr, vals [2]token.Value) [2]token.Value {
	if in.HasLit {
		vals[in.LitPort] = in.Lit
	}
	return vals
}

func (it *Interp) fire(in *CInstr, act token.ActivityName, vals [2]token.Value) error {
	it.fired++
	if n := len(it.profile); n > 0 {
		it.profile[n-1]++
	}
	ops := operands(in, vals)
	emit := func(dests []CDest, v token.Value) {
		for _, d := range dests {
			it.inject(token.ActivityName{
				Context:    act.Context,
				CodeBlock:  act.CodeBlock,
				Statement:  d.Stmt,
				Initiation: act.Initiation,
			}, d.Port, v)
		}
	}

	switch in.Kind {
	case KindPure:
		v, err := Eval(in.Op, ops[0], ops[1])
		if err != nil {
			return fmt.Errorf("%v at %s %s", err, act, in.Op)
		}
		emit(in.Dests, v)
	case KindSwitch:
		c, err := ops[1].AsBool()
		if err != nil {
			return fmt.Errorf("switch control at %s: %v", act, err)
		}
		if c {
			emit(in.Dests, ops[0])
		} else {
			emit(in.DestsFalse, ops[0])
		}
	case KindGetContext:
		u := it.nextCtx
		it.nextCtx++
		for uint64(len(it.ctxs)) <= uint64(u) {
			it.ctxs = append(it.ctxs, ctxRecord{})
		}
		it.ctxs[u] = ctxRecord{
			block:       in.Target,
			parent:      act,
			parentBlock: BlockID(act.CodeBlock),
			returnDests: in.RetDests,
			live:        true,
		}
		it.ctxLive++
		if it.ctxLive > it.ctxPeak {
			it.ctxPeak = it.ctxLive
		}
		emit(in.Dests, token.Int(int64(u)))
	case KindSendArg:
		h, err := ops[0].AsInt()
		if err != nil {
			return fmt.Errorf("%s handle at %s: %v", in.Op, act, err)
		}
		rec := it.ctx(token.Context(h))
		if rec == nil {
			return fmt.Errorf("%s at %s: unknown context %d", in.Op, act, h)
		}
		callee := it.cg.Block(rec.block)
		if int(in.ArgIndex) >= len(callee.Entries) {
			return fmt.Errorf("%s at %s: arg %d exceeds %q entries", in.Op, act, in.ArgIndex, callee.Name)
		}
		rec.argsSent++
		it.maybeFreeCtx(rec)
		it.inject(token.ActivityName{
			Context:    token.Context(h),
			CodeBlock:  uint16(rec.block),
			Statement:  callee.Entries[in.ArgIndex],
			Initiation: 1,
		}, 0, ops[1])
	case KindD:
		for _, d := range in.Dests {
			it.inject(token.ActivityName{
				Context:    act.Context,
				CodeBlock:  act.CodeBlock,
				Statement:  d.Stmt,
				Initiation: act.Initiation + 1,
			}, d.Port, ops[0])
		}
	case KindDInv:
		for _, d := range in.Dests {
			it.inject(token.ActivityName{
				Context:    act.Context,
				CodeBlock:  act.CodeBlock,
				Statement:  d.Stmt,
				Initiation: 1,
			}, d.Port, ops[0])
		}
	case KindReturn:
		if act.Context == 0 {
			it.results = append(it.results, ops[0])
			return nil
		}
		rec := it.ctx(act.Context)
		if rec == nil {
			return fmt.Errorf("%s at %s: unknown context", in.Op, act)
		}
		rec.returned = true
		it.maybeFreeCtx(rec)
		for _, d := range rec.returnDests {
			it.inject(token.ActivityName{
				Context:    rec.parent.Context,
				CodeBlock:  uint16(rec.parentBlock),
				Statement:  d.Stmt,
				Initiation: rec.parent.Initiation,
			}, d.Port, ops[0])
		}
	case KindAllocate:
		n, err := ops[0].AsInt()
		if err != nil || n < 0 {
			return fmt.Errorf("allocate at %s: bad size %s", act, ops[0])
		}
		base := len(it.store.cells)
		it.store.cells = append(it.store.cells, make([]idealCell, n)...)
		emit(in.Dests, token.NewRef(token.Ref{Base: uint32(base), Len: uint32(n)}))
	case KindFetch:
		addr, err := ops[0].AsInt()
		if err != nil || addr < 0 || int(addr) >= len(it.store.cells) {
			return fmt.Errorf("fetch at %s: bad address %s", act, ops[0])
		}
		cell := &it.store.cells[addr]
		d := in.Dests[0]
		if cell.present {
			emit(in.Dests, cell.value)
			return nil
		}
		cell.waiters = append(cell.waiters, d)
		cell.waitActs = append(cell.waitActs, act)
		it.store.deferred++
		it.store.deferObs++
		if it.store.deferred > it.store.deferMax {
			it.store.deferMax = it.store.deferred
		}
	case KindStore:
		addr, err := ops[0].AsInt()
		if err != nil || addr < 0 || int(addr) >= len(it.store.cells) {
			return fmt.Errorf("store at %s: bad address %s", act, ops[0])
		}
		cell := &it.store.cells[addr]
		if cell.present {
			return fmt.Errorf("store at %s: address %d already written (single-assignment violation)", act, addr)
		}
		cell.present = true
		cell.value = ops[1]
		for i, w := range cell.waiters {
			wact := cell.waitActs[i]
			it.inject(token.ActivityName{
				Context:    wact.Context,
				CodeBlock:  wact.CodeBlock,
				Statement:  w.Stmt,
				Initiation: wact.Initiation,
			}, w.Port, ops[1])
		}
		it.store.deferred -= len(cell.waiters)
		cell.waiters, cell.waitActs = nil, nil
	case KindSink, KindNop:
		// absorbed
	default:
		return fmt.Errorf("graph: interpreter cannot execute %s", in.Op)
	}
	return nil
}
