package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/token"
)

// buildArith builds (a+b)*(a-b) as a two-argument entry block.
func buildArith(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("arith")
	bb := b.NewBlock("main", 2)
	ea, eb := bb.Entry(0), bb.Entry(1)
	add := bb.Op(OpAdd, "a+b")
	sub := bb.Op(OpSub, "a-b")
	mul := bb.Op(OpMul, "(a+b)*(a-b)")
	ret := bb.Op(OpReturn, "result")
	bb.Connect(ea, add, 0)
	bb.Connect(eb, add, 1)
	bb.Connect(ea, sub, 0)
	bb.Connect(eb, sub, 1)
	bb.Connect(add, mul, 0)
	bb.Connect(sub, mul, 1)
	bb.Connect(mul, ret, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p
}

func runOne(t *testing.T, p *Program, args ...token.Value) token.Value {
	t.Helper()
	res, err := NewInterp(p).Run(args...)
	if err != nil {
		t.Fatalf("Run(%v): %v", args, err)
	}
	if len(res) != 1 {
		t.Fatalf("Run(%v) returned %d results: %v", args, len(res), res)
	}
	return res[0]
}

func TestArithmeticGraph(t *testing.T) {
	p := buildArith(t)
	got := runOne(t, p, token.Int(7), token.Int(3))
	if got.I != 40 {
		t.Fatalf("(7+3)*(7-3) = %s, want 40", got)
	}
}

func TestArithmeticGraphProperty(t *testing.T) {
	p := buildArith(t)
	if err := quick.Check(func(a, b int16) bool {
		got := runOne(t, p, token.Int(int64(a)), token.Int(int64(b)))
		return got.I == (int64(a)+int64(b))*(int64(a)-int64(b))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLiteralOperand(t *testing.T) {
	b := NewBuilder("lit")
	bb := b.NewBlock("main", 1)
	mul := bb.OpLit(OpMul, token.Int(10), 1, "x*10")
	ret := bb.Op(OpReturn, "")
	bb.Connect(bb.Entry(0), mul, 0)
	bb.Connect(mul, ret, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := runOne(t, p, token.Int(6)); got.I != 60 {
		t.Fatalf("6*10 = %s", got)
	}
	// nt must be 1: literal operands do not arrive as tokens.
	if p.Entry().Instr(mul).NT != 1 {
		t.Fatalf("literal instruction nt = %d, want 1", p.Entry().Instr(mul).NT)
	}
}

func TestSwitchRouting(t *testing.T) {
	// |x| via switch: if x >= 0 then x else -x
	b := NewBuilder("abs")
	bb := b.NewBlock("main", 1)
	e := bb.Entry(0)
	ge := bb.OpLit(OpGE, token.Int(0), 1, "x>=0")
	sw := bb.Op(OpSwitch, "route x")
	neg := bb.Op(OpNeg, "-x")
	ret := bb.Op(OpReturn, "")
	bb.Connect(e, ge, 0)
	bb.Connect(e, sw, 0)
	bb.Connect(ge, sw, 1)
	bb.Connect(sw, ret, 0)      // true: x itself
	bb.ConnectFalse(sw, neg, 0) // false: negate first
	bb.Connect(neg, ret, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := runOne(t, p, token.Int(-5)); got.I != 5 {
		t.Fatalf("|-5| = %s", got)
	}
	if got := runOne(t, p, token.Int(9)); got.I != 9 {
		t.Fatalf("|9| = %s", got)
	}
}

// buildSquareCall builds main(x) = square(x) + 1 with square a separate
// code block, exercising GetContext/SendArg/Return.
func buildSquareCall(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("call")
	main := b.NewBlock("main", 1)
	sq := b.NewBlock("square", 1)

	sqx := sq.Entry(0)
	mul := sq.Op(OpMul, "x*x")
	sqret := sq.Op(OpReturn, "")
	sq.Connect(sqx, mul, 0)
	sq.Connect(sqx, mul, 1)
	sq.Connect(mul, sqret, 0)

	e := main.Entry(0)
	getc := main.Emit(Instruction{Op: OpGetContext, Target: sq.ID(), Comment: "call square"})
	send := main.Emit(Instruction{Op: OpSendArg, Target: sq.ID(), ArgIndex: 0})
	add1 := main.OpLit(OpAdd, token.Int(1), 1, "+1")
	ret := main.Op(OpReturn, "")
	main.Connect(e, getc, 0) // trigger
	main.Connect(e, send, 1) // argument value
	main.Connect(getc, send, 0)
	main.ConnectReturn(getc, add1, 0)
	main.Connect(add1, ret, 0)

	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p
}

func TestProcedureCall(t *testing.T) {
	p := buildSquareCall(t)
	if got := runOne(t, p, token.Int(6)); got.I != 37 {
		t.Fatalf("square(6)+1 = %s, want 37", got)
	}
}

// buildSumLoop builds sum(n) = 1+2+...+n as a loop code block using the
// paper's L, D, D⁻¹, L⁻¹ operators (the hand-built analogue of Figure 2-2).
func buildSumLoop(t testing.TB) *Program {
	b := NewBuilder("sumloop")
	main := b.NewBlock("main", 1)
	loop := b.NewBlock("loop", 3) // circulating: i, s, n

	// Loop body: while i <= n { s += i; i += 1 }
	ei, es, en := loop.Entry(0), loop.Entry(1), loop.Entry(2)
	le := loop.Op(OpLE, "i<=n")
	swi := loop.Op(OpSwitch, "i")
	sws := loop.Op(OpSwitch, "s")
	swn := loop.Op(OpSwitch, "n")
	inci := loop.OpLit(OpAdd, token.Int(1), 1, "i+1")
	adds := loop.Op(OpAdd, "s+i")
	di := loop.Op(OpD, "D i")
	ds := loop.Op(OpD, "D s")
	dn := loop.Op(OpD, "D n")
	dinv := loop.Op(OpDInv, "D-1 s")
	lret := loop.Op(OpLInv, "L-1")

	loop.Connect(ei, le, 0)
	loop.Connect(en, le, 1)
	loop.Connect(ei, swi, 0)
	loop.Connect(es, sws, 0)
	loop.Connect(en, swn, 0)
	loop.Connect(le, swi, 1)
	loop.Connect(le, sws, 1)
	loop.Connect(le, swn, 1)
	// true: compute next values and send them around via D
	loop.Connect(swi, inci, 0)
	loop.Connect(swi, adds, 1)
	loop.Connect(sws, adds, 0)
	loop.Connect(inci, di, 0)
	loop.Connect(adds, ds, 0)
	loop.Connect(swn, dn, 0)
	loop.Connect(di, ei, 0)
	loop.Connect(ds, es, 0)
	loop.Connect(dn, en, 0)
	// false: s exits; i and n are absorbed (empty false lists)
	loop.ConnectFalse(sws, dinv, 0)
	loop.Connect(dinv, lret, 0)

	// Caller: allocate loop context, send i=1, s=0, n.
	e := main.Entry(0)
	getc := main.Emit(Instruction{Op: OpGetContext, Target: loop.ID(), Comment: "enter loop"})
	li := main.Emit(Instruction{Op: OpL, Target: loop.ID(), ArgIndex: 0, HasLiteral: true, Literal: token.Int(1), LiteralPort: 1, Comment: "L i=1"})
	ls := main.Emit(Instruction{Op: OpL, Target: loop.ID(), ArgIndex: 1, HasLiteral: true, Literal: token.Int(0), LiteralPort: 1, Comment: "L s=0"})
	ln := main.Emit(Instruction{Op: OpL, Target: loop.ID(), ArgIndex: 2, Comment: "L n"})
	ret := main.Op(OpReturn, "")
	main.Connect(e, getc, 0)
	main.Connect(e, ln, 1)
	main.Connect(getc, li, 0)
	main.Connect(getc, ls, 0)
	main.Connect(getc, ln, 0)
	main.ConnectReturn(getc, ret, 0)

	p, err := b.Finish()
	if err != nil {
		if t, ok := t.(*testing.T); ok {
			t.Fatalf("Finish: %v", err)
		}
		panic(err)
	}
	return p
}

func TestLoopLDLInv(t *testing.T) {
	p := buildSumLoop(t)
	for _, c := range []struct{ n, want int64 }{
		{0, 0}, {1, 1}, {2, 3}, {10, 55}, {100, 5050},
	} {
		if got := runOne(t, p, token.Int(c.n)); got.I != c.want {
			t.Fatalf("sum(%d) = %s, want %d", c.n, got, c.want)
		}
	}
}

func TestLoopIterationsUseDistinctInitiations(t *testing.T) {
	// The loop must not leave unmatched tokens behind: every iteration's
	// tokens matched under distinct initiation numbers.
	p := buildSumLoop(t)
	it := NewInterp(p)
	res, err := it.Run(token.Int(50))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].I != 1275 {
		t.Fatalf("sum(50) = %s", res[0])
	}
	if it.Fired() < 50*5 {
		t.Fatalf("suspiciously few firings for 50 iterations: %d", it.Fired())
	}
}

func buildIStructureProgram(t *testing.T, fetchFirst bool) *Program {
	t.Helper()
	b := NewBuilder("istore")
	bb := b.NewBlock("main", 1)
	e := bb.Entry(0) // n: structure size (and trigger)
	alloc := bb.Op(OpAllocate, "array(n)")
	fan := bb.Fan(alloc)
	addr := bb.OpLit(OpIAddr, token.Int(0), 1, "&a[0]")
	fetch := bb.Op(OpFetch, "a[0]")
	// The stored value 42 is synthesized from the trigger (n*0 + 42) so it
	// becomes available no earlier than the fetch: the read reaches the
	// cell first and must be deferred.
	zero := bb.OpLit(OpMul, token.Int(0), 1, "n*0")
	c42 := bb.OpLit(OpAdd, token.Int(42), 1, "+42")
	id := bb.Op(OpIdentity, "delay")
	store := bb.Op(OpStore, "a[0] <- 42")
	ret := bb.Op(OpReturn, "")

	bb.Connect(e, alloc, 0)
	bb.Connect(fan, addr, 0)
	if fetchFirst {
		bb.Connect(addr, fetch, 0)
		bb.Connect(addr, store, 0)
	} else {
		bb.Connect(addr, store, 0)
		bb.Connect(addr, fetch, 0)
	}
	bb.Connect(e, zero, 0)
	bb.Connect(zero, c42, 0)
	bb.Connect(c42, id, 0)
	bb.Connect(id, store, 1)
	bb.Connect(fetch, ret, 0)

	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p
}

func TestIStructureDeferredRead(t *testing.T) {
	p := buildIStructureProgram(t, true)
	it := NewInterp(p)
	res, err := it.Run(token.Int(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].I != 42 {
		t.Fatalf("deferred fetch returned %v", res)
	}
	total, peak := it.DeferredReads()
	if total != 1 || peak != 1 {
		t.Fatalf("deferred reads total=%d peak=%d, want 1/1", total, peak)
	}
}

func TestIStructureDoubleWriteFails(t *testing.T) {
	b := NewBuilder("dw")
	bb := b.NewBlock("main", 1)
	e := bb.Entry(0)
	alloc := bb.Op(OpAllocate, "")
	fan := bb.Fan(alloc)
	addr := bb.OpLit(OpIAddr, token.Int(0), 1, "")
	st1 := bb.OpLit(OpStore, token.Int(1), 1, "")
	st2 := bb.OpLit(OpStore, token.Int(2), 1, "")
	retn := bb.Op(OpReturn, "")
	bb.Connect(e, alloc, 0)
	bb.Connect(fan, addr, 0)
	bb.Connect(addr, st1, 0)
	bb.Connect(addr, st2, 0)
	bb.Connect(fan, retn, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewInterp(p).Run(token.Int(1))
	if err == nil || !strings.Contains(err.Error(), "single-assignment") {
		t.Fatalf("double write must fail with single-assignment error, got %v", err)
	}
}

func TestIStructureDeadlockDetected(t *testing.T) {
	// A fetch with no matching store must be reported as a deadlock.
	b := NewBuilder("dead")
	bb := b.NewBlock("main", 1)
	e := bb.Entry(0)
	alloc := bb.Op(OpAllocate, "")
	addr := bb.OpLit(OpIAddr, token.Int(0), 1, "")
	fetch := bb.Op(OpFetch, "")
	ret := bb.Op(OpReturn, "")
	bb.Connect(e, alloc, 0)
	bb.Connect(alloc, addr, 0)
	bb.Connect(addr, fetch, 0)
	bb.Connect(fetch, ret, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewInterp(p).Run(token.Int(1))
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestInterpProfileSimple(t *testing.T) {
	// (a+b)*(a-b): wave 1 fires the two entries... entries are identities;
	// depth must be: entries, add/sub, mul, return = 4 waves.
	p := buildArith(t)
	it := NewInterp(p)
	if _, err := it.Run(token.Int(1), token.Int(2)); err != nil {
		t.Fatal(err)
	}
	if it.Depth() != 4 {
		t.Fatalf("depth = %d (profile %v), want 4", it.Depth(), it.Profile())
	}
	if it.MaxParallelism() != 2 {
		t.Fatalf("max parallelism = %d (profile %v), want 2", it.MaxParallelism(), it.Profile())
	}
}

func TestValidateCatchesBadDest(t *testing.T) {
	b := NewBuilder("bad")
	bb := b.NewBlock("main", 1)
	id := bb.Op(OpIdentity, "")
	bb.Connect(bb.Entry(0), id, 0)
	bb.Instr(id).Dests = append(bb.Instr(id).Dests, Dest{Stmt: 99, Port: 0})
	if _, err := b.Finish(); err == nil {
		t.Fatal("out-of-range destination must fail validation")
	}
}

func TestValidateCatchesLiteralPortTarget(t *testing.T) {
	b := NewBuilder("bad2")
	bb := b.NewBlock("main", 1)
	mul := bb.OpLit(OpMul, token.Int(2), 1, "")
	ret := bb.Op(OpReturn, "")
	bb.Connect(bb.Entry(0), mul, 0)
	bb.Connect(mul, ret, 0)
	// illegal: route a token at the literal port
	bb.Instr(bb.Entry(0)).Dests = append(bb.Instr(bb.Entry(0)).Dests, Dest{Stmt: mul, Port: 1})
	if _, err := b.Finish(); err == nil {
		t.Fatal("destination at a literal port must fail validation")
	}
}

func TestValidateCatchesMultiDestFetch(t *testing.T) {
	b := NewBuilder("bad3")
	bb := b.NewBlock("main", 1)
	alloc := bb.Op(OpAllocate, "")
	addr := bb.OpLit(OpIAddr, token.Int(0), 1, "")
	fetch := bb.Op(OpFetch, "")
	r1 := bb.Op(OpReturn, "")
	r2 := bb.Op(OpSink, "")
	bb.Connect(bb.Entry(0), alloc, 0)
	bb.Connect(alloc, addr, 0)
	bb.Connect(addr, fetch, 0)
	bb.Connect(fetch, r1, 0)
	bb.Connect(fetch, r2, 0)
	if _, err := b.Finish(); err == nil {
		t.Fatal("fetch with two destinations must fail validation")
	}
}

func TestValidateCatchesMissingDest(t *testing.T) {
	b := NewBuilder("bad4")
	bb := b.NewBlock("main", 1)
	add := bb.OpLit(OpAdd, token.Int(1), 1, "")
	bb.Connect(bb.Entry(0), add, 0)
	if _, err := b.Finish(); err == nil {
		t.Fatal("dangling result must fail validation")
	}
}

func TestDumpContainsPaperOperators(t *testing.T) {
	p := buildSumLoop(t)
	d := p.Dump()
	for _, s := range []string{"L ", "D ", "D-1", "L-1", "GETC", "SWITCH"} {
		if !strings.Contains(d, s) {
			t.Fatalf("dump missing %q:\n%s", s, d)
		}
	}
}

func TestProgramStats(t *testing.T) {
	p := buildSumLoop(t)
	if p.CountOp(OpD) != 3 || p.CountOp(OpL) != 3 || p.CountOp(OpLInv) != 1 {
		t.Fatalf("unexpected op mix: %v", p.Stats())
	}
}

func TestEvalProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	// commutativity over ints
	if err := quick.Check(func(a, b int32) bool {
		for _, op := range []Opcode{OpAdd, OpMul, OpMin, OpMax, OpEQ, OpNE} {
			x, err1 := Eval(op, token.Int(int64(a)), token.Int(int64(b)))
			y, err2 := Eval(op, token.Int(int64(b)), token.Int(int64(a)))
			if err1 != nil || err2 != nil || !x.Equal(y) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
	// comparisons are mutually consistent
	if err := quick.Check(func(a, b int32) bool {
		lt, _ := Eval(OpLT, token.Int(int64(a)), token.Int(int64(b)))
		ge, _ := Eval(OpGE, token.Int(int64(a)), token.Int(int64(b)))
		return lt.B != ge.B
	}, cfg); err != nil {
		t.Fatal(err)
	}
	// identity passes anything through
	if err := quick.Check(func(a int64) bool {
		v, err := Eval(OpIdentity, token.Int(a), token.Nil())
		return err == nil && v.I == a
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := Eval(OpDiv, token.Int(1), token.Int(0)); err == nil {
		t.Fatal("integer division by zero must error")
	}
	if _, err := Eval(OpDiv, token.Float(1), token.Float(0)); err == nil {
		t.Fatal("float division by zero must error")
	}
	if _, err := Eval(OpSqrt, token.Float(-1), token.Nil()); err == nil {
		t.Fatal("sqrt of negative must error")
	}
	if _, err := Eval(OpAdd, token.Bool(true), token.Int(1)); err == nil {
		t.Fatal("bool arithmetic must error")
	}
	if _, err := Eval(OpSwitch, token.Int(1), token.Bool(true)); err == nil {
		t.Fatal("Eval of control opcode must error")
	}
	if _, err := Eval(OpIAddr, token.NewRef(token.Ref{Base: 0, Len: 3}), token.Int(3)); err == nil {
		t.Fatal("out-of-bounds index must error")
	}
}

func TestEvalNumericTower(t *testing.T) {
	v, err := Eval(OpAdd, token.Int(1), token.Float(2.5))
	if err != nil || v.Kind != token.KindFloat || v.F != 3.5 {
		t.Fatalf("1 + 2.5 = %s, %v", v, err)
	}
	v, err = Eval(OpDiv, token.Int(7), token.Int(2))
	if err != nil || v.Kind != token.KindInt || v.I != 3 {
		t.Fatalf("7 / 2 = %s, %v (integer division should truncate)", v, err)
	}
	v, err = Eval(OpFloor, token.Float(2.9), token.Nil())
	if err != nil || v.Kind != token.KindInt || v.I != 2 {
		t.Fatalf("floor(2.9) = %s, %v", v, err)
	}
}
