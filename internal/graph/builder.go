package graph

import (
	"fmt"

	"repro/internal/token"
)

// Builder constructs a Program incrementally. It is the code-generation
// back end for the MiniID compiler and the workload generators.
type Builder struct {
	prog *Program
}

// NewBuilder returns a builder for a program with the given name. The
// caller must create block 0 (the entry block) first.
func NewBuilder(name string) *Builder {
	return &Builder{prog: &Program{Name: name}}
}

// NewBlock appends a code block and returns its builder. numArgs entry
// statements (OpIdentity) are created immediately so that argument/loop
// variable j enters at Entries[j].
func (b *Builder) NewBlock(name string, numArgs int) *BlockBuilder {
	blk := &CodeBlock{ID: BlockID(len(b.prog.Blocks)), Name: name}
	b.prog.Blocks = append(b.prog.Blocks, blk)
	bb := &BlockBuilder{prog: b.prog, blk: blk}
	for j := 0; j < numArgs; j++ {
		s := bb.Emit(Instruction{Op: OpIdentity, Comment: fmt.Sprintf("entry %d", j)})
		blk.Entries = append(blk.Entries, s)
	}
	return bb
}

// Finish validates and returns the program.
func (b *Builder) Finish() (*Program, error) {
	for _, blk := range b.prog.Blocks {
		for s := range blk.Instrs {
			in := &blk.Instrs[s]
			if in.Op != OpNop {
				in.NT = in.NumTokenOperands()
			}
		}
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustFinish is Finish for construction paths where a validation failure is
// a bug in the generator, not an input error.
func (b *Builder) MustFinish() *Program {
	p, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return p
}

// BlockBuilder appends instructions to one code block.
type BlockBuilder struct {
	prog *Program
	blk  *CodeBlock
}

// ID returns the block's id.
func (bb *BlockBuilder) ID() BlockID { return bb.blk.ID }

// Entry returns the statement index receiving argument j.
func (bb *BlockBuilder) Entry(j int) uint16 { return bb.blk.Entries[j] }

// AddEntry registers an already-emitted statement as the next entry point,
// used by the compiler when circulating loop variables are discovered
// incrementally. It returns the new entry's argument index.
func (bb *BlockBuilder) AddEntry(stmt uint16) int {
	bb.blk.Entries = append(bb.blk.Entries, stmt)
	return len(bb.blk.Entries) - 1
}

// NumEntries returns the number of entry points registered so far.
func (bb *BlockBuilder) NumEntries() int { return len(bb.blk.Entries) }

// NumInstrs returns the number of instructions emitted so far.
func (bb *BlockBuilder) NumInstrs() int { return len(bb.blk.Instrs) }

// Emit appends an instruction and returns its statement number. The NT
// field is computed automatically at Finish.
func (bb *BlockBuilder) Emit(in Instruction) uint16 {
	s := uint16(len(bb.blk.Instrs))
	bb.blk.Instrs = append(bb.blk.Instrs, in)
	return s
}

// Op emits a plain instruction with the given opcode and comment.
func (bb *BlockBuilder) Op(op Opcode, comment string) uint16 {
	return bb.Emit(Instruction{Op: op, Comment: comment})
}

// OpLit emits an instruction with a literal operand on the given port.
func (bb *BlockBuilder) OpLit(op Opcode, lit token.Value, port uint8, comment string) uint16 {
	return bb.Emit(Instruction{Op: op, HasLiteral: true, Literal: lit, LiteralPort: port, Comment: comment})
}

// Instr returns the (mutable) instruction at statement s.
func (bb *BlockBuilder) Instr(s uint16) *Instruction { return &bb.blk.Instrs[s] }

// Connect routes the output of statement from to port `port` of statement
// `to`.
func (bb *BlockBuilder) Connect(from, to uint16, port uint8) {
	in := bb.Instr(from)
	in.Dests = append(in.Dests, Dest{Stmt: to, Port: port})
}

// ConnectFalse routes the false-branch output of a switch at `from` to port
// `port` of statement `to`.
func (bb *BlockBuilder) ConnectFalse(from, to uint16, port uint8) {
	in := bb.Instr(from)
	in.DestsFalse = append(in.DestsFalse, Dest{Stmt: to, Port: port})
}

// ConnectReturn adds a caller-side return destination to an OpGetContext.
func (bb *BlockBuilder) ConnectReturn(getc, to uint16, port uint8) {
	in := bb.Instr(getc)
	in.ReturnDests = append(in.ReturnDests, Dest{Stmt: to, Port: port})
}

// Fan ensures statement s has a single consumer chain suitable for opcodes
// restricted to one destination (OpFetch, OpAllocate): it emits an
// OpIdentity fed by s and returns the identity's statement, through which
// arbitrarily many consumers may then be wired.
func (bb *BlockBuilder) Fan(s uint16) uint16 {
	id := bb.Op(OpIdentity, "fan")
	bb.Connect(s, id, 0)
	return id
}
