// Package graph defines the dataflow graph intermediate representation
// shared by the MiniID compiler, the cycle-accurate tagged-token machine
// (internal/core), and the hypercube emulator (internal/emulator), plus a
// sequential reference interpreter used as the correctness oracle for all
// of them.
//
// Programs are sets of code blocks (Section 2.2.2: "each procedure and each
// loop has a unique code block name"). Vertices are instructions, edges are
// destination lists. Loop entry/exit and procedure linkage use the paper's
// context-manipulating operators: L and L⁻¹ (context allocation and
// restoration), D and D⁻¹ (initiation-number arithmetic).
package graph

import "fmt"

// Opcode identifies the operation performed by an instruction.
type Opcode uint8

// Pure value opcodes (evaluated by Eval).
const (
	OpNop Opcode = iota
	OpIdentity
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpAbs
	OpMin
	OpMax
	OpSqrt
	OpFloor
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	OpAnd
	OpOr
	OpNot
	// OpIAddr computes the global I-structure address of element index
	// (port 1) of reference (port 0), with bounds checking.
	OpIAddr
	// OpLen returns the element count of a reference.
	OpLen
	// OpConst returns its port-1 operand (in practice a literal) when
	// triggered by any token on port 0: the compiler's constant generator.
	OpConst

	// Control and structural opcodes (interpreted by the engines).

	// OpSwitch routes the data operand (port 0) to Dests when the control
	// operand (port 1) is true and to DestsFalse when false.
	OpSwitch
	// OpGetContext allocates a fresh context for invoking Target (a
	// procedure or loop code block), recording the caller's activity and
	// ReturnDests with the context manager. Its operand is any convenient
	// trigger value; its output is a context handle.
	OpGetContext
	// OpSendArg sends the value operand (port 1) into the callee context
	// named by the handle operand (port 0): the token is retagged to
	// Target's entry statement for ArgIndex with initiation 1. This is the
	// procedure-call use of the paper's context-manipulation machinery.
	OpSendArg
	// OpL is the loop-entry operator of Figure 2-2. Operationally it is
	// identical to OpSendArg (retag into the loop's code block, i=1); it
	// has its own opcode so that compiled graphs read like the paper.
	OpL
	// OpD increments the initiation number: its output tokens carry i+1.
	// It implements the loop back-edge.
	OpD
	// OpDInv (D⁻¹) resets the initiation number to 1, normalizing tags of
	// values leaving a loop.
	OpDInv
	// OpReturn sends its operand to the destinations recorded for the
	// current context and restores the caller's tag. Returning on context
	// 0 delivers a program result.
	OpReturn
	// OpLInv (L⁻¹) is the loop-exit operator; operationally OpReturn.
	OpLInv
	// OpAllocate requests an I-structure of the given element count from
	// I-structure storage; the response token carries a Ref.
	OpAllocate
	// OpFetch issues an I-structure read (a SELECT become a FETCH, Section
	// 2.2.4) for the global address in its operand. The response is sent
	// by the I-structure controller directly to this instruction's single
	// destination, possibly much later and out of order.
	OpFetch
	// OpStore issues an I-structure write (an APPEND become a STORE) of
	// value (port 1) to global address (port 0). It produces no output
	// token.
	OpStore
	// OpSink absorbs its operand. Used for values that must be consumed
	// for bookkeeping but have no consumer.
	OpSink

	opcodeCount
)

// NumOpcodes is the number of defined opcodes; valid opcodes are
// 0 <= op < NumOpcodes. Useful for dense per-opcode tables.
const NumOpcodes = int(opcodeCount)

var opcodeNames = [...]string{
	OpNop:        "NOP",
	OpIdentity:   "ID",
	OpAdd:        "ADD",
	OpSub:        "SUB",
	OpMul:        "MUL",
	OpDiv:        "DIV",
	OpMod:        "MOD",
	OpNeg:        "NEG",
	OpAbs:        "ABS",
	OpMin:        "MIN",
	OpMax:        "MAX",
	OpSqrt:       "SQRT",
	OpFloor:      "FLOOR",
	OpLT:         "LT",
	OpLE:         "LE",
	OpGT:         "GT",
	OpGE:         "GE",
	OpEQ:         "EQ",
	OpNE:         "NE",
	OpAnd:        "AND",
	OpOr:         "OR",
	OpNot:        "NOT",
	OpIAddr:      "IADDR",
	OpLen:        "LEN",
	OpConst:      "CONST",
	OpSwitch:     "SWITCH",
	OpGetContext: "GETC",
	OpSendArg:    "SENDARG",
	OpL:          "L",
	OpD:          "D",
	OpDInv:       "D-1",
	OpReturn:     "RETURN",
	OpLInv:       "L-1",
	OpAllocate:   "ALLOC",
	OpFetch:      "FETCH",
	OpStore:      "STORE",
	OpSink:       "SINK",
}

func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("OP(%d)", uint8(op))
}

// Arity returns the number of operands the opcode consumes (counting
// literal operands, which do not arrive as tokens).
func (op Opcode) Arity() int {
	switch op {
	case OpNop:
		return 0
	case OpIdentity, OpNeg, OpAbs, OpSqrt, OpFloor, OpNot, OpLen,
		OpGetContext, OpD, OpDInv, OpReturn, OpLInv, OpAllocate, OpFetch, OpSink:
		return 1
	default:
		return 2
	}
}

// IsPure reports whether the opcode is a plain value computation, fully
// described by Eval, with ordinary destination semantics.
func (op Opcode) IsPure() bool {
	return op >= OpIdentity && op <= OpConst
}

// IsControl reports whether the engines give the opcode special treatment
// (tag manipulation, I-structure traffic, routing).
func (op Opcode) IsControl() bool { return op > OpConst && op < opcodeCount }
