package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/token"
)

// Binary object format for compiled dataflow programs, so the compiler and
// the machines can be separate processes (the paper's workflow: the ID
// compiler produces graphs, the simulator and the emulation facility both
// interpret them).
//
// Layout (all integers little-endian):
//
//	magic   "TTDA"          4 bytes
//	version uint16          currently 1
//	name    string          (uvarint length + bytes)
//	nblocks uint16
//	per block:
//	  name     string
//	  nentries uint16, entries []uint16
//	  ninstrs  uint16
//	  per instruction: op, flags, literal?, dest lists, target, argindex
//
// Comments are preserved (they carry the source-level names shown by
// dumps). The format is versioned and self-validating: Unmarshal runs the
// structural validator before returning.

const (
	objMagic   = "TTDA"
	objVersion = 1
)

// instruction flag bits
const (
	flagHasLiteral = 1 << 0
	flagHasFalse   = 1 << 1
	flagHasReturn  = 1 << 2
	flagHasComment = 1 << 3
)

// MarshalBinary encodes the program in the TTDA object format.
func (p *Program) MarshalBinary() ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(objMagic)
	writeU16(&b, objVersion)
	writeString(&b, p.Name)
	if len(p.Blocks) > math.MaxUint16 {
		return nil, fmt.Errorf("graph: too many blocks to encode")
	}
	writeU16(&b, uint16(len(p.Blocks)))
	for _, blk := range p.Blocks {
		writeString(&b, blk.Name)
		writeU16(&b, uint16(len(blk.Entries)))
		for _, e := range blk.Entries {
			writeU16(&b, e)
		}
		if len(blk.Instrs) > math.MaxUint16 {
			return nil, fmt.Errorf("graph: block %q too large to encode", blk.Name)
		}
		writeU16(&b, uint16(len(blk.Instrs)))
		for s := range blk.Instrs {
			if err := writeInstr(&b, &blk.Instrs[s]); err != nil {
				return nil, err
			}
		}
	}
	return b.Bytes(), nil
}

func writeInstr(b *bytes.Buffer, in *Instruction) error {
	b.WriteByte(byte(in.Op))
	flags := byte(0)
	if in.HasLiteral {
		flags |= flagHasLiteral
	}
	if len(in.DestsFalse) > 0 {
		flags |= flagHasFalse
	}
	if len(in.ReturnDests) > 0 {
		flags |= flagHasReturn
	}
	if in.Comment != "" {
		flags |= flagHasComment
	}
	b.WriteByte(flags)
	if in.HasLiteral {
		b.WriteByte(in.LiteralPort)
		if err := writeValue(b, in.Literal); err != nil {
			return err
		}
	}
	writeDests(b, in.Dests)
	if len(in.DestsFalse) > 0 {
		writeDests(b, in.DestsFalse)
	}
	if len(in.ReturnDests) > 0 {
		writeDests(b, in.ReturnDests)
	}
	writeU16(b, uint16(in.Target))
	b.WriteByte(in.ArgIndex)
	if in.Comment != "" {
		writeString(b, in.Comment)
	}
	return nil
}

func writeDests(b *bytes.Buffer, dests []Dest) {
	writeU16(b, uint16(len(dests)))
	for _, d := range dests {
		writeU16(b, d.Stmt)
		b.WriteByte(d.Port)
	}
}

func writeValue(b *bytes.Buffer, v token.Value) error {
	b.WriteByte(byte(v.Kind))
	switch v.Kind {
	case token.KindNil:
	case token.KindInt:
		writeU64(b, uint64(v.I))
	case token.KindFloat:
		writeU64(b, math.Float64bits(v.F))
	case token.KindBool:
		if v.B {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
	case token.KindRef:
		writeU32(b, v.R.Base)
		writeU32(b, v.R.Len)
	default:
		return fmt.Errorf("graph: cannot encode value kind %v", v.Kind)
	}
	return nil
}

func writeU16(b *bytes.Buffer, v uint16) {
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], v)
	b.Write(buf[:])
}

func writeU32(b *bytes.Buffer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.Write(buf[:])
}

func writeU64(b *bytes.Buffer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.Write(buf[:])
}

func writeString(b *bytes.Buffer, s string) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(s)))
	b.Write(buf[:n])
	b.WriteString(s)
}

// objReader decodes with positional error reporting.
type objReader struct {
	data []byte
	off  int
}

func (r *objReader) fail(what string) error {
	return fmt.Errorf("graph: truncated object at offset %d (%s)", r.off, what)
}

func (r *objReader) bytes(n int, what string) ([]byte, error) {
	if r.off+n > len(r.data) {
		return nil, r.fail(what)
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *objReader) u8(what string) (byte, error) {
	b, err := r.bytes(1, what)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *objReader) u16(what string) (uint16, error) {
	b, err := r.bytes(2, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *objReader) u32(what string) (uint32, error) {
	b, err := r.bytes(4, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *objReader) u64(what string) (uint64, error) {
	b, err := r.bytes(8, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *objReader) str(what string) (string, error) {
	n, sz := binary.Uvarint(r.data[r.off:])
	if sz <= 0 || n > uint64(len(r.data)) {
		return "", r.fail(what)
	}
	r.off += sz
	b, err := r.bytes(int(n), what)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *objReader) dests(what string) ([]Dest, error) {
	n, err := r.u16(what)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]Dest, n)
	for i := range out {
		s, err := r.u16(what)
		if err != nil {
			return nil, err
		}
		p, err := r.u8(what)
		if err != nil {
			return nil, err
		}
		out[i] = Dest{Stmt: s, Port: p}
	}
	return out, nil
}

func (r *objReader) value() (token.Value, error) {
	k, err := r.u8("value kind")
	if err != nil {
		return token.Nil(), err
	}
	switch token.Kind(k) {
	case token.KindNil:
		return token.Nil(), nil
	case token.KindInt:
		v, err := r.u64("int value")
		return token.Int(int64(v)), err
	case token.KindFloat:
		v, err := r.u64("float value")
		return token.Float(math.Float64frombits(v)), err
	case token.KindBool:
		v, err := r.u8("bool value")
		return token.Bool(v != 0), err
	case token.KindRef:
		base, err := r.u32("ref base")
		if err != nil {
			return token.Nil(), err
		}
		length, err := r.u32("ref len")
		return token.NewRef(token.Ref{Base: base, Len: length}), err
	default:
		return token.Nil(), fmt.Errorf("graph: unknown value kind %d at offset %d", k, r.off)
	}
}

// UnmarshalProgram decodes and validates a TTDA object.
func UnmarshalProgram(data []byte) (*Program, error) {
	r := &objReader{data: data}
	magic, err := r.bytes(4, "magic")
	if err != nil {
		return nil, err
	}
	if string(magic) != objMagic {
		return nil, fmt.Errorf("graph: not a TTDA object (bad magic %q)", magic)
	}
	ver, err := r.u16("version")
	if err != nil {
		return nil, err
	}
	if ver != objVersion {
		return nil, fmt.Errorf("graph: unsupported object version %d (want %d)", ver, objVersion)
	}
	p := &Program{}
	if p.Name, err = r.str("program name"); err != nil {
		return nil, err
	}
	nblocks, err := r.u16("block count")
	if err != nil {
		return nil, err
	}
	for bi := 0; bi < int(nblocks); bi++ {
		blk := &CodeBlock{ID: BlockID(bi)}
		if blk.Name, err = r.str("block name"); err != nil {
			return nil, err
		}
		nent, err := r.u16("entry count")
		if err != nil {
			return nil, err
		}
		for i := 0; i < int(nent); i++ {
			e, err := r.u16("entry")
			if err != nil {
				return nil, err
			}
			blk.Entries = append(blk.Entries, e)
		}
		ninstr, err := r.u16("instruction count")
		if err != nil {
			return nil, err
		}
		blk.Instrs = make([]Instruction, ninstr)
		for s := 0; s < int(ninstr); s++ {
			if err := r.instr(&blk.Instrs[s]); err != nil {
				return nil, err
			}
		}
		p.Blocks = append(p.Blocks, blk)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("graph: %d trailing bytes in object", len(data)-r.off)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("graph: object fails validation: %w", err)
	}
	return p, nil
}

func (r *objReader) instr(in *Instruction) error {
	op, err := r.u8("opcode")
	if err != nil {
		return err
	}
	in.Op = Opcode(op)
	flags, err := r.u8("flags")
	if err != nil {
		return err
	}
	if flags&flagHasLiteral != 0 {
		in.HasLiteral = true
		if in.LiteralPort, err = r.u8("literal port"); err != nil {
			return err
		}
		if in.Literal, err = r.value(); err != nil {
			return err
		}
	}
	if in.Dests, err = r.dests("dests"); err != nil {
		return err
	}
	if flags&flagHasFalse != 0 {
		if in.DestsFalse, err = r.dests("false dests"); err != nil {
			return err
		}
	}
	if flags&flagHasReturn != 0 {
		if in.ReturnDests, err = r.dests("return dests"); err != nil {
			return err
		}
	}
	t, err := r.u16("target")
	if err != nil {
		return err
	}
	in.Target = BlockID(t)
	if in.ArgIndex, err = r.u8("arg index"); err != nil {
		return err
	}
	if flags&flagHasComment != 0 {
		if in.Comment, err = r.str("comment"); err != nil {
			return err
		}
	}
	if in.Op != OpNop {
		in.NT = in.NumTokenOperands()
	}
	return nil
}
