package graph

import (
	"bytes"
	"testing"

	"repro/internal/token"
)

func roundTrip(t *testing.T, p *Program) *Program {
	t.Helper()
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	q, err := UnmarshalProgram(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return q
}

func TestEncodeRoundTripPreservesDump(t *testing.T) {
	for _, mk := range []func(*testing.T) *Program{buildArith, buildSquareCall} {
		p := mk(t)
		q := roundTrip(t, p)
		if p.Dump() != q.Dump() {
			t.Fatalf("round trip changed the program:\n--- original\n%s\n--- decoded\n%s", p.Dump(), q.Dump())
		}
	}
}

func TestEncodeRoundTripLoop(t *testing.T) {
	p := buildSumLoop(t)
	q := roundTrip(t, p)
	if p.Dump() != q.Dump() {
		t.Fatal("loop program changed across encode/decode")
	}
	res, err := NewInterp(q).Run(token.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].I != 55 {
		t.Fatalf("decoded program computed %s", res[0])
	}
}

func TestEncodeDeterministic(t *testing.T) {
	p := buildSumLoop(t)
	a, _ := p.MarshalBinary()
	b, _ := p.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("encoding must be deterministic")
	}
}

func TestEncodeLiteralKinds(t *testing.T) {
	b := NewBuilder("lits")
	bb := b.NewBlock("main", 1)
	f := bb.OpLit(OpAdd, token.Float(2.5), 1, "float lit")
	ret := bb.Op(OpReturn, "")
	bb.Connect(bb.Entry(0), f, 0)
	bb.Connect(f, ret, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	q := roundTrip(t, p)
	in := q.Entry().Instr(f)
	if !in.HasLiteral || in.Literal.Kind != token.KindFloat || in.Literal.F != 2.5 {
		t.Fatalf("literal lost: %+v", in)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("TTD"),
		[]byte("TTDA\xff\xff"), // bad version
	}
	for _, c := range cases {
		if _, err := UnmarshalProgram(c); err == nil {
			t.Fatalf("UnmarshalProgram(%q) succeeded", c)
		}
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	p := buildSumLoop(t)
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(data); cut += 7 {
		if _, err := UnmarshalProgram(data[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(data))
		}
	}
}

func TestUnmarshalRejectsTrailingBytes(t *testing.T) {
	p := buildArith(t)
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalProgram(append(data, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestUnmarshalValidatesSemantics(t *testing.T) {
	// corrupt a destination statement to point out of range; the decoder
	// must reject via validation rather than return a booby-trapped graph
	p := buildArith(t)
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for i := range data {
		if i < 6 {
			continue // magic/version
		}
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x7F
		if _, err := UnmarshalProgram(mut); err != nil {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("no mutation was ever rejected — decoder not validating")
	}
}
