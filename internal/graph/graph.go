package graph

import (
	"fmt"

	"repro/internal/token"
)

// BlockID names a code block within a program. Block 0 is always the
// program entry block.
type BlockID uint16

// Dest addresses one operand port of one instruction in the same code
// block as the producer. Cross-block transfers happen only through the
// context-manipulating opcodes.
type Dest struct {
	Stmt uint16
	Port uint8
}

func (d Dest) String() string { return fmt.Sprintf("s%d.%d", d.Stmt, d.Port) }

// Instruction is one vertex of a dataflow graph.
type Instruction struct {
	Op Opcode

	// NT is the number of operands that arrive as tokens (the paper's nt
	// field). It equals Op.Arity() minus one if a literal is present.
	NT uint8

	// Literal, if HasLiteral, is a compile-time operand occupying
	// LiteralPort; the instruction then fires on NT tokens filling the
	// remaining ports.
	HasLiteral  bool
	Literal     token.Value
	LiteralPort uint8

	// Dests receives the result (the true branch for OpSwitch).
	Dests []Dest
	// DestsFalse receives OpSwitch's data operand when control is false.
	DestsFalse []Dest

	// Target is the callee code block for OpGetContext; entry statements
	// of the Target are used by OpSendArg/OpL via ArgIndex.
	Target BlockID
	// ArgIndex selects which Target entry an OpSendArg/OpL feeds.
	ArgIndex uint8
	// ReturnDests, on OpGetContext, are the caller-side destinations that
	// will receive the value passed to OpReturn/OpLInv in the allocated
	// context.
	ReturnDests []Dest

	// Comment is an optional human label shown in dumps (e.g. the source
	// variable the instruction computes).
	Comment string
}

// NumTokenOperands computes the nt field implied by the opcode and literal.
func (in *Instruction) NumTokenOperands() uint8 {
	n := in.Op.Arity()
	if in.HasLiteral {
		n--
	}
	if n < 0 {
		n = 0
	}
	return uint8(n)
}

// OperandPorts returns which ports arrive as tokens.
func (in *Instruction) OperandPorts() []uint8 {
	arity := in.Op.Arity()
	ports := make([]uint8, 0, arity)
	for p := 0; p < arity; p++ {
		if in.HasLiteral && uint8(p) == in.LiteralPort {
			continue
		}
		ports = append(ports, uint8(p))
	}
	return ports
}

// CodeBlock is a procedure or loop body: a numbered list of instructions
// plus the entry statements that receive arguments or circulating loop
// variables.
type CodeBlock struct {
	ID   BlockID
	Name string
	// Entries[j] is the statement that receives argument/loop-variable j.
	// Entry instructions are ordinary instructions (usually OpIdentity)
	// whose port 0 receives the incoming token.
	Entries []uint16
	Instrs  []Instruction
}

// Instr returns the instruction at statement s.
func (b *CodeBlock) Instr(s uint16) *Instruction { return &b.Instrs[s] }

// Program is a complete compiled dataflow program. Block 0 is the entry
// block; injecting its arguments (via entry statements) under context 0
// starts execution, and OpReturn under context 0 delivers results.
type Program struct {
	Name   string
	Blocks []*CodeBlock
}

// Block returns the code block with the given id.
func (p *Program) Block(id BlockID) *CodeBlock { return p.Blocks[id] }

// Entry returns the entry (block 0) code block.
func (p *Program) Entry() *CodeBlock { return p.Blocks[0] }

// NumInstructions returns the static instruction count across all blocks.
func (p *Program) NumInstructions() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Validate checks structural well-formedness: destination statements and
// ports in range, nt consistency, switch/control shape, call linkage. A nil
// return guarantees the engines cannot hit out-of-range faults on this
// program.
func (p *Program) Validate() error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("graph: program %q has no code blocks", p.Name)
	}
	for id, b := range p.Blocks {
		if b == nil {
			return fmt.Errorf("graph: block %d is nil", id)
		}
		if b.ID != BlockID(id) {
			return fmt.Errorf("graph: block %q has id %d at index %d", b.Name, b.ID, id)
		}
		for _, e := range b.Entries {
			if int(e) >= len(b.Instrs) {
				return fmt.Errorf("graph: block %q entry s%d out of range", b.Name, e)
			}
		}
		for s := range b.Instrs {
			if err := p.validateInstr(b, uint16(s)); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Program) validateInstr(b *CodeBlock, s uint16) error {
	in := b.Instr(s)
	where := func() string { return fmt.Sprintf("block %q s%d (%s)", b.Name, s, in.Op) }

	if in.Op == OpNop {
		return nil
	}
	if int(in.Op) >= int(opcodeCount) {
		return fmt.Errorf("graph: %s: unknown opcode", where())
	}
	if want := in.NumTokenOperands(); in.NT != want {
		return fmt.Errorf("graph: %s: nt=%d, want %d", where(), in.NT, want)
	}
	if in.NT == 0 {
		return fmt.Errorf("graph: %s: instruction can never fire (nt=0)", where())
	}
	if in.HasLiteral && int(in.LiteralPort) >= in.Op.Arity() {
		return fmt.Errorf("graph: %s: literal port %d out of range", where(), in.LiteralPort)
	}

	checkDests := func(label string, dests []Dest) error {
		for _, d := range dests {
			if int(d.Stmt) >= len(b.Instrs) {
				return fmt.Errorf("graph: %s: %s dest %s out of range", where(), label, d)
			}
			t := b.Instr(d.Stmt)
			if int(d.Port) >= t.Op.Arity() {
				return fmt.Errorf("graph: %s: %s dest %s targets nonexistent port of %s", where(), label, d, t.Op)
			}
			if t.HasLiteral && d.Port == t.LiteralPort {
				return fmt.Errorf("graph: %s: %s dest %s targets literal port of %s", where(), label, d, t.Op)
			}
		}
		return nil
	}
	if err := checkDests("", in.Dests); err != nil {
		return err
	}
	if err := checkDests("false", in.DestsFalse); err != nil {
		return err
	}

	switch in.Op {
	case OpSwitch:
		if in.HasLiteral && in.LiteralPort == token.PortRight {
			return fmt.Errorf("graph: %s: switch with constant control", where())
		}
	case OpGetContext:
		if int(in.Target) >= len(p.Blocks) {
			return fmt.Errorf("graph: %s: target block %d out of range", where(), in.Target)
		}
		if len(in.ReturnDests) == 0 {
			return fmt.Errorf("graph: %s: no return destinations", where())
		}
		for _, d := range in.ReturnDests {
			if int(d.Stmt) >= len(b.Instrs) {
				return fmt.Errorf("graph: %s: return dest %s out of range", where(), d)
			}
		}
		if len(in.Dests) == 0 {
			return fmt.Errorf("graph: %s: context handle has no consumers", where())
		}
	case OpSendArg, OpL:
		// The handle arrives on port 0 at run time; Target/ArgIndex are
		// resolved through the handle's context record, so the static
		// Target here is advisory. Validate ArgIndex against it if set.
		if int(in.Target) < len(p.Blocks) {
			tb := p.Blocks[in.Target]
			if int(in.ArgIndex) >= len(tb.Entries) {
				return fmt.Errorf("graph: %s: arg index %d exceeds %q entries", where(), in.ArgIndex, tb.Name)
			}
		}
	case OpFetch, OpAllocate:
		if len(in.Dests) != 1 {
			return fmt.Errorf("graph: %s: must have exactly one destination, has %d", where(), len(in.Dests))
		}
	case OpStore, OpSink, OpReturn, OpLInv:
		if len(in.Dests) != 0 || len(in.DestsFalse) != 0 {
			return fmt.Errorf("graph: %s: must have no destinations", where())
		}
	}
	if in.Op != OpSwitch && len(in.DestsFalse) != 0 {
		return fmt.Errorf("graph: %s: false destinations on non-switch", where())
	}
	switch in.Op {
	case OpStore, OpSink, OpReturn, OpLInv, OpSwitch, OpSendArg, OpL:
		// These either retag into another block or legitimately absorb.
	default:
		if len(in.Dests) == 0 {
			return fmt.Errorf("graph: %s: result has no destination", where())
		}
	}
	return nil
}
