package graph

import (
	"fmt"
	"math"

	"repro/internal/token"
)

// Eval computes a pure opcode on its operands. Arithmetic follows MiniID's
// numeric tower: if either operand is a float the result is a float,
// otherwise integer arithmetic is used (division truncates toward zero).
// Eval is shared by the reference interpreter, the cycle-accurate machine's
// ALU, and the emulator, so the three substrates cannot disagree on
// arithmetic.
func Eval(op Opcode, a, b token.Value) (token.Value, error) {
	switch op {
	case OpIdentity:
		return a, nil
	case OpConst:
		return b, nil
	case OpNeg, OpAbs, OpSqrt, OpFloor:
		return evalUnary(op, a)
	case OpNot:
		v, err := a.AsBool()
		if err != nil {
			return token.Nil(), err
		}
		return token.Bool(!v), nil
	case OpAnd, OpOr:
		x, err := a.AsBool()
		if err != nil {
			return token.Nil(), err
		}
		y, err := b.AsBool()
		if err != nil {
			return token.Nil(), err
		}
		if op == OpAnd {
			return token.Bool(x && y), nil
		}
		return token.Bool(x || y), nil
	case OpEQ:
		return token.Bool(a.Equal(b)), nil
	case OpNE:
		return token.Bool(!a.Equal(b)), nil
	case OpLT, OpLE, OpGT, OpGE:
		x, err := a.AsFloat()
		if err != nil {
			return token.Nil(), err
		}
		y, err := b.AsFloat()
		if err != nil {
			return token.Nil(), err
		}
		switch op {
		case OpLT:
			return token.Bool(x < y), nil
		case OpLE:
			return token.Bool(x <= y), nil
		case OpGT:
			return token.Bool(x > y), nil
		default:
			return token.Bool(x >= y), nil
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpMin, OpMax:
		return evalArith(op, a, b)
	case OpIAddr:
		ref, err := a.AsRef()
		if err != nil {
			return token.Nil(), err
		}
		idx, err := b.AsInt()
		if err != nil {
			return token.Nil(), err
		}
		if idx < 0 || uint64(idx) >= uint64(ref.Len) {
			return token.Nil(), fmt.Errorf("graph: index %d out of bounds for structure of %d elements", idx, ref.Len)
		}
		return token.Int(int64(ref.Base) + idx), nil
	case OpLen:
		ref, err := a.AsRef()
		if err != nil {
			return token.Nil(), err
		}
		return token.Int(int64(ref.Len)), nil
	default:
		return token.Nil(), fmt.Errorf("graph: Eval of non-pure opcode %s", op)
	}
}

func evalUnary(op Opcode, a token.Value) (token.Value, error) {
	if a.Kind == token.KindInt {
		switch op {
		case OpNeg:
			return token.Int(-a.I), nil
		case OpAbs:
			if a.I < 0 {
				return token.Int(-a.I), nil
			}
			return a, nil
		case OpFloor:
			return a, nil
		}
	}
	x, err := a.AsFloat()
	if err != nil {
		return token.Nil(), err
	}
	switch op {
	case OpNeg:
		return token.Float(-x), nil
	case OpAbs:
		return token.Float(math.Abs(x)), nil
	case OpSqrt:
		if x < 0 {
			return token.Nil(), fmt.Errorf("graph: sqrt of negative %g", x)
		}
		return token.Float(math.Sqrt(x)), nil
	case OpFloor:
		return token.Int(int64(math.Floor(x))), nil
	}
	return token.Nil(), fmt.Errorf("graph: bad unary opcode %s", op)
}

func evalArith(op Opcode, a, b token.Value) (token.Value, error) {
	if a.Kind == token.KindInt && b.Kind == token.KindInt {
		x, y := a.I, b.I
		switch op {
		case OpAdd:
			return token.Int(x + y), nil
		case OpSub:
			return token.Int(x - y), nil
		case OpMul:
			return token.Int(x * y), nil
		case OpDiv:
			if y == 0 {
				return token.Nil(), fmt.Errorf("graph: integer division by zero")
			}
			return token.Int(x / y), nil
		case OpMod:
			if y == 0 {
				return token.Nil(), fmt.Errorf("graph: modulo by zero")
			}
			return token.Int(x % y), nil
		case OpMin:
			if x < y {
				return token.Int(x), nil
			}
			return token.Int(y), nil
		case OpMax:
			if x > y {
				return token.Int(x), nil
			}
			return token.Int(y), nil
		}
	}
	x, err := a.AsFloat()
	if err != nil {
		return token.Nil(), err
	}
	y, err := b.AsFloat()
	if err != nil {
		return token.Nil(), err
	}
	switch op {
	case OpAdd:
		return token.Float(x + y), nil
	case OpSub:
		return token.Float(x - y), nil
	case OpMul:
		return token.Float(x * y), nil
	case OpDiv:
		if y == 0 {
			return token.Nil(), fmt.Errorf("graph: division by zero")
		}
		return token.Float(x / y), nil
	case OpMod:
		if y == 0 {
			return token.Nil(), fmt.Errorf("graph: modulo by zero")
		}
		return token.Float(math.Mod(x, y)), nil
	case OpMin:
		return token.Float(math.Min(x, y)), nil
	case OpMax:
		return token.Float(math.Max(x, y)), nil
	}
	return token.Nil(), fmt.Errorf("graph: bad arithmetic opcode %s", op)
}
