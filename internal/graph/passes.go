package graph

import (
	"fmt"

	"repro/internal/token"
)

// Optional compile passes, layered on the identity elision of optimize.go.
// Both rewrite the instruction stream — firing counts and machine cycle
// counts change — so neither runs in the default pipeline (the golden
// tests pin default-pipeline timing bit-for-bit). They are reached through
// Compile's WithConstantFolding / WithDeadArcElimination options, which
// apply them to a private clone.

// FoldStats reports what FoldConstants did.
type FoldStats struct {
	// LiteralsAbsorbed counts CONST outputs absorbed into a consumer's
	// literal operand (the consumer drops from two token operands to one).
	LiteralsAbsorbed int
	// Folded counts pure instructions whose value became fully known and
	// were rewritten into CONST generators.
	Folded int
	// Sunk counts CONST generators left with no consumers and demoted to
	// SINK (their trigger token still needs absorbing).
	Sunk int
}

// FoldConstants propagates statically-known values through the graph:
//
//   - a CONST whose output is the sole arc into a port of a two-operand
//     pure consumer is absorbed as that consumer's literal operand;
//   - a pure instruction whose remaining token port is fed solely by a
//     CONST — so its full operand vector is known — is evaluated at
//     compile time and becomes a CONST generator itself, triggered by the
//     same arc (firing still waits on the producer's token, preserving
//     deadlock behaviour);
//   - a CONST left with no consumers is demoted to SINK so its trigger
//     token is still absorbed.
//
// Entry statements are never folded into (they receive externally
// addressed tokens). Folding that exposes a latent fault — e.g. a constant
// division by zero — is rejected with an error rather than baking the
// fault into the program. Cyclic constant wiring (a CONST triggering
// itself, directly or through other CONSTs) is left unfolded: every
// rewrite strictly reduces either the arc count or the count of foldable
// instructions, so the pass terminates without touching the cycle.
func FoldConstants(p *Program) (FoldStats, error) {
	var stats FoldStats
	for {
		changed := false
		for _, blk := range p.Blocks {
			c, err := foldBlock(blk, &stats)
			if err != nil {
				return stats, err
			}
			changed = changed || c
		}
		if !changed {
			break
		}
	}
	return stats, nil
}

// constProducer returns the CONST instruction that is the sole arc into
// port p of statement s, or nil when the port has any other producer (or
// more than one arc).
func constProducer(blk *CodeBlock, s uint16, p uint8) *Instruction {
	var producer *Instruction
	arcs := 0
	for i := range blk.Instrs {
		in := &blk.Instrs[i]
		for _, list := range [][]Dest{in.Dests, in.DestsFalse, in.ReturnDests} {
			for _, d := range list {
				if d.Stmt == s && d.Port == p {
					arcs++
					producer = in
				}
			}
		}
	}
	if arcs != 1 || producer.Op != OpConst || !producer.HasLiteral || producer.LiteralPort != 1 {
		return nil
	}
	return producer
}

// removeArc deletes the first arc to (s, p) from in.Dests.
func removeArc(in *Instruction, s uint16, p uint8) {
	for i, d := range in.Dests {
		if d.Stmt == s && d.Port == p {
			in.Dests = append(in.Dests[:i], in.Dests[i+1:]...)
			return
		}
	}
}

func foldBlock(blk *CodeBlock, stats *FoldStats) (bool, error) {
	entry := map[uint16]bool{}
	for _, e := range blk.Entries {
		entry[e] = true
	}
	changed := false
	for s := range blk.Instrs {
		in := &blk.Instrs[s]
		if !in.Op.IsPure() || in.Op == OpConst || entry[uint16(s)] {
			continue
		}
		switch {
		case in.NT == 2 && !in.HasLiteral:
			// Absorb one CONST input as a literal operand.
			for _, p := range []uint8{0, 1} {
				c := constProducer(blk, uint16(s), p)
				if c == nil {
					continue
				}
				in.HasLiteral = true
				in.Literal = c.Literal
				in.LiteralPort = p
				in.NT = 1
				removeArc(c, uint16(s), p)
				stats.LiteralsAbsorbed++
				changed = true
				break
			}
		case in.NT == 1:
			// Fully-constant instruction: the one token port fed solely by
			// a CONST makes the whole operand vector known.
			var port uint8
			if in.HasLiteral && in.LiteralPort == 0 {
				port = 1
			}
			c := constProducer(blk, uint16(s), port)
			if c == nil || c == in {
				continue
			}
			var vals [2]token.Value
			vals[port] = c.Literal
			if in.HasLiteral {
				vals[in.LiteralPort] = in.Literal
			}
			v, err := Eval(in.Op, vals[0], vals[1])
			if err != nil {
				return false, fmt.Errorf("graph: constant folding at block %q s%d (%s): %v", blk.Name, s, in.Op, err)
			}
			in.Op = OpConst
			in.HasLiteral = true
			in.Literal = v
			in.LiteralPort = 1
			in.NT = 1
			if port != 0 {
				// The producer's arc becomes the CONST trigger (port 0).
				retargetArc(c, uint16(s), port, 0)
			}
			stats.Folded++
			changed = true
		}
	}
	// Demote consumer-less CONSTs to SINK: the trigger token must still be
	// absorbed, but there is no longer a value to generate.
	for s := range blk.Instrs {
		in := &blk.Instrs[s]
		if in.Op == OpConst && len(in.Dests) == 0 {
			in.Op = OpSink
			in.HasLiteral = false
			in.Literal = token.Value{}
			in.LiteralPort = 0
			in.NT = 1
			stats.Sunk++
			changed = true
		}
	}
	return changed, nil
}

// retargetArc moves the first arc to (s, from) in in.Dests to port to.
func retargetArc(in *Instruction, s uint16, from, to uint8) {
	for i, d := range in.Dests {
		if d.Stmt == s && d.Port == from {
			in.Dests[i].Port = to
			return
		}
	}
}

// DeadArcStats reports what EliminateDeadArcs did.
type DeadArcStats struct {
	// StatementsRemoved counts live instructions rewritten to NOP.
	StatementsRemoved int
	// ArcsRemoved counts destination entries dropped with them.
	ArcsRemoved int
}

// EliminateDeadArcs removes statements (and their outgoing arcs) that no
// execution can reach: the transitive closure from the entry block's entry
// statements, following destination arcs, GET-CONTEXT return arcs, and
// call linkage (a reachable GET-CONTEXT makes its target block's entries
// reachable). Unreachable statements become NOPs; arcs into them can only
// originate from other unreachable statements, so dropping the outgoing
// lists of the unreachable set removes every dead arc — including arcs a
// dead statement aimed at a live entry statement.
func EliminateDeadArcs(p *Program) DeadArcStats {
	reach := make([][]bool, len(p.Blocks))
	for i, b := range p.Blocks {
		reach[i] = make([]bool, len(b.Instrs))
	}
	type site struct {
		blk  BlockID
		stmt uint16
	}
	var work []site
	mark := func(b BlockID, s uint16) {
		if !reach[b][s] {
			reach[b][s] = true
			work = append(work, site{b, s})
		}
	}
	for _, e := range p.Entry().Entries {
		mark(0, e)
	}
	for len(work) > 0 {
		w := work[len(work)-1]
		work = work[:len(work)-1]
		in := p.Blocks[w.blk].Instr(w.stmt)
		for _, d := range in.Dests {
			mark(w.blk, d.Stmt)
		}
		for _, d := range in.DestsFalse {
			mark(w.blk, d.Stmt)
		}
		if in.Op == OpGetContext {
			for _, d := range in.ReturnDests {
				mark(w.blk, d.Stmt)
			}
			for _, e := range p.Blocks[in.Target].Entries {
				mark(in.Target, e)
			}
		}
	}
	var stats DeadArcStats
	for bi, blk := range p.Blocks {
		for s := range blk.Instrs {
			if reach[bi][s] || blk.Instrs[s].Op == OpNop {
				continue
			}
			in := &blk.Instrs[s]
			stats.StatementsRemoved++
			stats.ArcsRemoved += len(in.Dests) + len(in.DestsFalse) + len(in.ReturnDests)
			*in = Instruction{Op: OpNop}
		}
	}
	return stats
}
