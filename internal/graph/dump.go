package graph

import (
	"fmt"
	"strings"
)

// Dump renders the program as readable text, one instruction per line with
// its destination lists — the textual analogue of the paper's Figure 2-2.
func (p *Program) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %q: %d code blocks, %d instructions\n",
		p.Name, len(p.Blocks), p.NumInstructions())
	for _, blk := range p.Blocks {
		fmt.Fprintf(&b, "\nblock %d %q", blk.ID, blk.Name)
		if len(blk.Entries) > 0 {
			fmt.Fprintf(&b, "  entries=%v", blk.Entries)
		}
		b.WriteByte('\n')
		for s := range blk.Instrs {
			in := &blk.Instrs[s]
			fmt.Fprintf(&b, "  s%-3d %-8s", s, in.Op)
			if in.HasLiteral {
				fmt.Fprintf(&b, " lit@%d=%s", in.LiteralPort, in.Literal)
			}
			if len(in.Dests) > 0 {
				fmt.Fprintf(&b, " -> %s", destsString(in.Dests))
			}
			if len(in.DestsFalse) > 0 {
				fmt.Fprintf(&b, " | false-> %s", destsString(in.DestsFalse))
			}
			if in.Op == OpGetContext {
				fmt.Fprintf(&b, " target=b%d ret->%s", in.Target, destsString(in.ReturnDests))
			}
			if in.Op == OpSendArg || in.Op == OpL {
				fmt.Fprintf(&b, " arg=%d", in.ArgIndex)
			}
			if in.Comment != "" {
				fmt.Fprintf(&b, "   ; %s", in.Comment)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func destsString(dests []Dest) string {
	parts := make([]string, len(dests))
	for i, d := range dests {
		parts[i] = d.String()
	}
	return strings.Join(parts, ",")
}

// OpCount is one entry of a program's static opcode composition.
type OpCount struct {
	Op Opcode
	N  int
}

// Stats summarizes the static composition of a program by opcode. Entries
// are sorted by opcode value and zero counts are omitted, so the result —
// unlike the map this used to return — prints identically on every run and
// can be pinned by golden output.
func (p *Program) Stats() []OpCount {
	var counts [NumOpcodes]int
	for _, blk := range p.Blocks {
		for s := range blk.Instrs {
			counts[blk.Instrs[s].Op]++
		}
	}
	out := make([]OpCount, 0, len(counts))
	for op, n := range counts {
		if n > 0 {
			out = append(out, OpCount{Op: Opcode(op), N: n})
		}
	}
	return out
}

// CountOp reports how many instructions of the program use op.
func (p *Program) CountOp(op Opcode) int {
	n := 0
	for _, blk := range p.Blocks {
		for s := range blk.Instrs {
			if blk.Instrs[s].Op == op {
				n++
			}
		}
	}
	return n
}
