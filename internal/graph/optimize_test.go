package graph

import (
	"testing"

	"repro/internal/token"
)

// buildWithIdentityChain builds entry -> ID -> ID -> ADD(lit 1) -> RETURN.
func buildWithIdentityChain(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("chain")
	bb := b.NewBlock("main", 1)
	id1 := bb.Op(OpIdentity, "a")
	id2 := bb.Op(OpIdentity, "b")
	add := bb.OpLit(OpAdd, token.Int(1), 1, "")
	ret := bb.Op(OpReturn, "")
	bb.Connect(bb.Entry(0), id1, 0)
	bb.Connect(id1, id2, 0)
	bb.Connect(id2, add, 0)
	bb.Connect(add, ret, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOptimizeElidesIdentityChains(t *testing.T) {
	p := buildWithIdentityChain(t)
	st := Optimize(p)
	if st.IdentitiesElided != 2 {
		t.Fatalf("elided %d identities, want 2", st.IdentitiesElided)
	}
	if st.After != st.Before-2 {
		t.Fatalf("before=%d after=%d", st.Before, st.After)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := NewInterp(p).Run(token.Int(6))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].I != 7 {
		t.Fatalf("optimized program computed %s", res[0])
	}
	// Entry identity must survive.
	if p.Entry().Instr(p.Entry().Entries[0]).Op != OpIdentity {
		t.Fatal("entry identity was elided")
	}
}

func TestOptimizePreservesFetchSingleDest(t *testing.T) {
	// fetch -> identity -> {two consumers}: the identity must stay because
	// FETCH can hold only one destination.
	b := NewBuilder("fetchfan")
	bb := b.NewBlock("main", 1)
	alloc := bb.Op(OpAllocate, "")
	aid := bb.Op(OpIdentity, "ref")
	addr := bb.OpLit(OpIAddr, token.Int(0), 1, "")
	st := bb.OpLit(OpStore, token.Int(5), 1, "")
	fetch := bb.Op(OpFetch, "")
	fid := bb.Op(OpIdentity, "fan")
	dbl := bb.Op(OpAdd, "x+x")
	ret := bb.Op(OpReturn, "")
	bb.Connect(bb.Entry(0), alloc, 0)
	bb.Connect(alloc, aid, 0)
	bb.Connect(aid, addr, 0)
	bb.Connect(addr, st, 0)
	bb.Connect(addr, fetch, 0)
	bb.Connect(fetch, fid, 0)
	bb.Connect(fid, dbl, 0)
	bb.Connect(fid, dbl, 1)
	bb.Connect(dbl, ret, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	Optimize(p)
	if err := p.Validate(); err != nil {
		t.Fatalf("optimizer broke fetch constraint: %v", err)
	}
	res, err := NewInterp(p).Run(token.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].I != 10 {
		t.Fatalf("got %s, want 10", res[0])
	}
	// The two-consumer fan must still exist; the single-consumer alloc
	// identity must be gone.
	if p.Entry().Instr(fid).Op != OpIdentity {
		t.Fatal("multi-consumer fetch fan must be preserved")
	}
	if p.Entry().Instr(aid).Op != OpNop {
		t.Fatal("single-consumer allocate identity should be elided")
	}
}

func TestOptimizeMergeIdentity(t *testing.T) {
	// Two producers (if-branches) feeding one identity: eliding it makes
	// each branch send directly; only one fires per activation, so the
	// answer is unchanged.
	b := NewBuilder("merge")
	bb := b.NewBlock("main", 1)
	ge := bb.OpLit(OpGE, token.Int(0), 1, "")
	sw := bb.Op(OpSwitch, "")
	neg := bb.Op(OpNeg, "")
	merge := bb.Op(OpIdentity, "if-merge")
	ret := bb.Op(OpReturn, "")
	bb.Connect(bb.Entry(0), ge, 0)
	bb.Connect(bb.Entry(0), sw, 0)
	bb.Connect(ge, sw, 1)
	bb.Connect(sw, merge, 0)
	bb.ConnectFalse(sw, neg, 0)
	bb.Connect(neg, merge, 0)
	bb.Connect(merge, ret, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	st := Optimize(p)
	if st.IdentitiesElided == 0 {
		t.Fatal("merge identity should be elidable")
	}
	for _, v := range []int64{-7, 7} {
		res, err := NewInterp(p).Run(token.Int(v))
		if err != nil {
			t.Fatal(err)
		}
		if res[0].I != 7 {
			t.Fatalf("|%d| = %s", v, res[0])
		}
	}
}

func TestOptimizeIsIdempotent(t *testing.T) {
	p := buildWithIdentityChain(t)
	Optimize(p)
	st2 := Optimize(p)
	if st2.IdentitiesElided != 0 {
		t.Fatalf("second pass elided %d", st2.IdentitiesElided)
	}
}

func TestOptimizeReducesFirings(t *testing.T) {
	p1 := buildWithIdentityChain(t)
	it1 := NewInterp(p1)
	if _, err := it1.Run(token.Int(1)); err != nil {
		t.Fatal(err)
	}
	p2 := buildWithIdentityChain(t)
	Optimize(p2)
	it2 := NewInterp(p2)
	if _, err := it2.Run(token.Int(1)); err != nil {
		t.Fatal(err)
	}
	if it2.Fired() >= it1.Fired() {
		t.Fatalf("optimization should reduce firings: %d vs %d", it2.Fired(), it1.Fired())
	}
}
