package graph

import (
	"sort"
	"testing"

	"repro/internal/token"
)

// TestStatsDeterministicAndSorted pins that Stats renders identically on
// every call — it used to return a map whose iteration order leaked into
// idc -stats output — and that it agrees with CountOp.
func TestStatsDeterministicAndSorted(t *testing.T) {
	b := NewBuilder("stats")
	bb := b.NewBlock("main", 2)
	add := bb.Op(OpAdd, "")
	mul := bb.OpLit(OpMul, token.Int(3), 1, "")
	ret := bb.Op(OpReturn, "")
	bb.Connect(bb.Entry(0), add, 0)
	bb.Connect(bb.Entry(1), add, 1)
	bb.Connect(add, mul, 0)
	bb.Connect(mul, ret, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	first := p.Stats()
	if !sort.SliceIsSorted(first, func(i, j int) bool { return first[i].Op < first[j].Op }) {
		t.Fatalf("Stats not sorted by opcode: %v", first)
	}
	total := 0
	for _, oc := range first {
		if oc.N <= 0 {
			t.Fatalf("Stats kept a zero count: %v", first)
		}
		if got := p.CountOp(oc.Op); got != oc.N {
			t.Fatalf("CountOp(%s) = %d, Stats says %d", oc.Op, got, oc.N)
		}
		total += oc.N
	}
	if total != p.NumInstructions() {
		t.Fatalf("Stats total %d != %d instructions", total, p.NumInstructions())
	}
	for i := 0; i < 50; i++ {
		again := p.Stats()
		if len(again) != len(first) {
			t.Fatalf("Stats changed shape between calls")
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("Stats order changed between calls: %v vs %v", again, first)
			}
		}
	}
}
