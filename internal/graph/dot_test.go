package graph

import (
	"strings"
	"testing"
)

func TestDotOutputWellFormed(t *testing.T) {
	p := buildSumLoop(t)
	d := p.Dot()
	if !strings.HasPrefix(d, "digraph ttda {") || !strings.HasSuffix(d, "}\n") {
		t.Fatalf("not a digraph:\n%s", d)
	}
	for _, want := range []string{"subgraph cluster_b0", "subgraph cluster_b1", "SWITCH", "style=dashed", "style=bold", "ret"} {
		if !strings.Contains(d, want) {
			t.Fatalf("dot missing %q", want)
		}
	}
	// every edge endpoint must be a declared node
	decl := map[string]bool{}
	for _, line := range strings.Split(d, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "b") && strings.Contains(line, "[label=") && !strings.Contains(line, "->") {
			decl[line[:strings.Index(line, " ")]] = true
		}
	}
	for _, line := range strings.Split(d, "\n") {
		line = strings.TrimSpace(line)
		if i := strings.Index(line, " -> "); i > 0 {
			from := line[:i]
			rest := line[i+4:]
			to := rest
			if j := strings.IndexAny(rest, " ["); j > 0 {
				to = rest[:j]
			}
			if !decl[from] || !decl[to] {
				t.Fatalf("edge references undeclared node: %q", line)
			}
		}
	}
}

func TestDotSkipsNops(t *testing.T) {
	p := buildWithIdentityChain(t)
	Optimize(p)
	d := p.Dot()
	if strings.Contains(d, "NOP") {
		t.Fatalf("NOP slots must not be drawn:\n%s", d)
	}
}
