package graph

import "repro/internal/token"

// frameTable is the interpreter's waiting-matching store: activation
// frames keyed by (context, initiation, code block), each a contiguous
// run of match slots in a shared arena, one slot per two-operand statement
// as assigned statically by Compile. It replaces the old per-activity
// map[token.ActivityName]*partial: one open-addressed probe finds the
// whole activation, the statement's slot index is a compile-time constant,
// and frames and records recycle through free lists, so steady-state
// matching allocates nothing.
//
// Deletion uses backward-shift compaction (no tombstones) and the hash is
// a fixed seedless mix — the same discipline as internal/core's
// matchTable, for the same reason: table behaviour must be a pure function
// of its contents so runs stay reproducible.
type frameTable struct {
	keys []frameKey
	// idx[b] is the slab index of the frame in bucket b, or frameEmpty.
	idx  []int32
	mask uint32
	n    int

	slab     []frame
	freeSlab []int32

	// arena holds every frame's slots; freeFrames[blk] recycles frame
	// offsets per block (frames of one block share a size).
	arena      []partial
	freeFrames [][]int32
}

// frameKey identifies one activation: every statement of a code block
// firing under one context and initiation shares a frame.
type frameKey struct {
	ctx  token.Context
	init uint32
	blk  uint16
}

// frame is one resident activation frame.
type frame struct {
	key frameKey
	// off is the frame's base offset in the arena; statement slots live at
	// off + CInstr.MatchSlot.
	off int32
	// occupied counts slots holding exactly one operand; the frame is
	// released when it drops back to zero.
	occupied int32
}

const frameEmpty = int32(-1)

const frameTableMinBuckets = 16

func (ft *frameTable) init(buckets int) {
	ft.keys = make([]frameKey, buckets)
	ft.idx = make([]int32, buckets)
	for i := range ft.idx {
		ft.idx[i] = frameEmpty
	}
	ft.mask = uint32(buckets - 1)
	ft.n = 0
}

// hashFrame mixes the activation key with a splitmix64-style finalizer.
// Fixed constants, no per-run seed: identical runs produce identical
// tables.
func hashFrame(k frameKey) uint64 {
	h := uint64(k.ctx)<<16 | uint64(k.blk)
	h ^= uint64(k.init) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// slot returns the frame for act's activation (creating it if absent) and
// the partial record in the statement's statically-assigned slot.
func (ft *frameTable) slot(act token.ActivityName, cb *CBlock, matchSlot int32) (*frame, *partial) {
	k := frameKey{ctx: act.Context, init: act.Initiation, blk: act.CodeBlock}
	if ft.idx == nil {
		ft.init(frameTableMinBuckets)
	}
	b := uint32(hashFrame(k)) & ft.mask
	for {
		s := ft.idx[b]
		if s == frameEmpty {
			break
		}
		if ft.keys[b] == k {
			fr := &ft.slab[s]
			return fr, &ft.arena[fr.off+matchSlot]
		}
		b = (b + 1) & ft.mask
	}
	// Absent: allocate a frame, growing the bucket array first if needed
	// (growth invalidates the probe position).
	if uint32(ft.n) >= (ft.mask+1)/4*3 {
		ft.grow()
	}
	off := ft.allocFrame(cb)
	var s int32
	if n := len(ft.freeSlab); n > 0 {
		s = ft.freeSlab[n-1]
		ft.freeSlab = ft.freeSlab[:n-1]
	} else {
		s = int32(len(ft.slab))
		ft.slab = append(ft.slab, frame{})
	}
	ft.slab[s] = frame{key: k, off: off}
	ft.place(k, s)
	ft.n++
	fr := &ft.slab[s]
	return fr, &ft.arena[off+matchSlot]
}

// allocFrame reserves a zeroed run of cb.Slots slots, recycling a freed
// frame of the same block when one exists.
func (ft *frameTable) allocFrame(cb *CBlock) int32 {
	for int(cb.ID) >= len(ft.freeFrames) {
		ft.freeFrames = append(ft.freeFrames, nil)
	}
	free := ft.freeFrames[cb.ID]
	if n := len(free); n > 0 {
		off := free[n-1]
		ft.freeFrames[cb.ID] = free[:n-1]
		for i := off; i < off+int32(cb.Slots); i++ {
			ft.arena[i] = partial{}
		}
		return off
	}
	off := int32(len(ft.arena))
	for i := 0; i < cb.Slots; i++ {
		ft.arena = append(ft.arena, partial{})
	}
	return off
}

// place finds k's probe slot and stores the binding (no growth, no count).
func (ft *frameTable) place(k frameKey, s int32) {
	b := uint32(hashFrame(k)) & ft.mask
	for ft.idx[b] != frameEmpty {
		b = (b + 1) & ft.mask
	}
	ft.keys[b] = k
	ft.idx[b] = s
}

// release returns an empty frame to the free lists and removes its table
// entry with backward-shift compaction.
func (ft *frameTable) release(fr *frame) {
	k := fr.key
	ft.freeFrames[k.blk] = append(ft.freeFrames[k.blk], fr.off)
	b := uint32(hashFrame(k)) & ft.mask
	for ft.keys[b] != k || ft.idx[b] == frameEmpty {
		b = (b + 1) & ft.mask
	}
	ft.freeSlab = append(ft.freeSlab, ft.idx[b])
	ft.n--
	hole := b
	for {
		b = (b + 1) & ft.mask
		s := ft.idx[b]
		if s == frameEmpty {
			break
		}
		home := uint32(hashFrame(ft.keys[b])) & ft.mask
		if (b-home)&ft.mask >= (b-hole)&ft.mask {
			ft.keys[hole] = ft.keys[b]
			ft.idx[hole] = s
			hole = b
		}
	}
	ft.idx[hole] = frameEmpty
}

// grow doubles the bucket array and rehashes every binding. Slab and arena
// indices are unaffected.
func (ft *frameTable) grow() {
	oldKeys, oldIdx := ft.keys, ft.idx
	ft.init(int(2 * (ft.mask + 1)))
	n := 0
	for b, s := range oldIdx {
		if s != frameEmpty {
			ft.place(oldKeys[b], s)
			n++
		}
	}
	ft.n = n
}
