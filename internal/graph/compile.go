package graph

import (
	"fmt"

	"repro/internal/token"
)

// This file implements the ahead-of-time compilation stage: Compile lowers
// a validated Program into a CompiledGraph, an immutable execution plan the
// reference interpreter and the cycle-accurate machine execute instead of
// re-deriving per-token facts from the IR. The plan precomputes everything
// the hot paths used to look up on every token:
//
//   - a dense dispatch kind per instruction (one switch over ExecKind
//     replaces the IsPure test plus the opcode switch);
//   - flattened destination arrays whose entries carry the destination's
//     nt field, so emitting a token no longer fetches the destination
//     instruction;
//   - predecessor arrays per statement (who feeds whom), used by the
//     optional rewrite passes and exposed for analysis;
//   - a static match-slot index per two-operand statement, so a
//     waiting-matching store can be an activation-frame slot array instead
//     of a per-activity hash map (the dense-table idea of
//     internal/core/matchtable.go pushed to compile time).
//
// Plans are pure accelerations: executing a plan is observably identical —
// results, firing counts, cycle counts, statistics — to interpreting the
// program it was compiled from. The optional passes (constant folding,
// dead-arc elimination) DO change the instruction stream and therefore
// timing; they are opt-in and are applied to a private clone, never to the
// caller's Program.

// ExecKind is the dense dispatch class of an instruction. Every opcode
// maps to exactly one kind; engines switch on the kind instead of testing
// IsPure and re-switching on the opcode.
type ExecKind uint8

// Dispatch kinds.
const (
	KindNop        ExecKind = iota
	KindPure                // Eval-able value computation (OpIdentity..OpConst)
	KindSwitch              // OpSwitch
	KindGetContext          // OpGetContext (d=2 manager request)
	KindSendArg             // OpSendArg, OpL (retag into callee)
	KindD                   // OpD (initiation+1)
	KindDInv                // OpDInv (initiation:=1)
	KindReturn              // OpReturn, OpLInv (retag to caller)
	KindAllocate            // OpAllocate (d=2 manager request)
	KindFetch               // OpFetch (d=1 I-structure read)
	KindStore               // OpStore (d=1 I-structure write)
	KindSink                // OpSink (absorb)
)

// kindOf maps opcodes to dispatch kinds.
func kindOf(op Opcode) ExecKind {
	switch {
	case op == OpNop:
		return KindNop
	case op.IsPure():
		return KindPure
	}
	switch op {
	case OpSwitch:
		return KindSwitch
	case OpGetContext:
		return KindGetContext
	case OpSendArg, OpL:
		return KindSendArg
	case OpD:
		return KindD
	case OpDInv:
		return KindDInv
	case OpReturn, OpLInv:
		return KindReturn
	case OpAllocate:
		return KindAllocate
	case OpFetch:
		return KindFetch
	case OpStore:
		return KindStore
	default:
		return KindSink
	}
}

// CDest is one flattened destination arc. It carries the destination
// statement's nt field so token construction needs no instruction fetch.
type CDest struct {
	Stmt uint16
	Port uint8
	// NT is the destination instruction's token-operand count.
	NT uint8
}

// CInstr is one compiled instruction: the Instruction fields the engines
// read on the hot path, laid out for dispatch, plus the static match slot.
type CInstr struct {
	Kind ExecKind
	Op   Opcode
	NT   uint8

	HasLit  bool
	LitPort uint8
	Lit     token.Value

	ArgIndex uint8
	Target   BlockID

	// MatchSlot is this statement's slot in its block's activation frame
	// (dense, assigned in statement order over two-operand statements), or
	// -1 for instructions that fire on a single token.
	MatchSlot int32

	// Dests, DestsFalse and RetDests are subslices of the plan's shared
	// destination arena.
	Dests, DestsFalse, RetDests []CDest
}

// CBlock is one compiled code block.
type CBlock struct {
	ID      BlockID
	Name    string
	Entries []uint16
	// EntryNT[j] is the nt field of entry statement j, so cross-block
	// sends (arguments, SEND-ARG) build tokens without an instruction
	// fetch.
	EntryNT []uint8
	Instrs  []CInstr
	// Slots is the activation-frame size: the number of two-operand
	// statements in the block.
	Slots int
	// Base is the global statement id of Instrs[0]; statement s of this
	// block has global id Base+s. Global ids index the plan-wide
	// predecessor arrays.
	Base int
}

// CompiledGraph is an immutable execution plan. It references (and, when
// rewrite passes ran, owns) the Program it was compiled from; neither may
// be mutated after Compile returns.
type CompiledGraph struct {
	// Prog is the program this plan executes: the caller's program, or the
	// private rewritten clone when compile passes were requested.
	Prog   *Program
	Blocks []CBlock

	// NumStmts is the size of the global statement id space.
	NumStmts int

	// Preds lists, for each global statement id, the global ids of the
	// statements whose destination lists feed it (callers' return arcs
	// count for the GetContext statement's block). Entries are in
	// producer-scan order and may repeat (one entry per arc).
	Preds [][]int32

	destArena []CDest
	predArena []int32
}

// Block returns the compiled block with the given id.
func (cg *CompiledGraph) Block(id BlockID) *CBlock { return &cg.Blocks[id] }

// CompileOption selects an optional rewrite pass.
type CompileOption func(*compileOptions)

type compileOptions struct {
	fold     bool
	deadArcs bool
}

// WithConstantFolding enables the constant-folding pass: literal operands
// flowing out of CONST generators are absorbed into their consumers, and
// fully-constant pure instructions become CONST generators themselves.
// Folding changes the instruction stream (and therefore firing and cycle
// counts); it is applied to a private clone of the program.
func WithConstantFolding() CompileOption { return func(o *compileOptions) { o.fold = true } }

// WithDeadArcElimination enables the dead-arc pass: statements unreachable
// from any block entry or call linkage are rewritten to NOP and the arcs
// into them dropped. Applied to a private clone of the program.
func WithDeadArcElimination() CompileOption { return func(o *compileOptions) { o.deadArcs = true } }

// Compile lowers a validated program into an execution plan. With no
// options the plan executes the program exactly as given; options select
// rewrite passes that run on a private clone (the caller's program is
// never mutated). Compile fails on invalid programs and on passes that
// expose a latent fault (e.g. folding a constant division by zero).
func Compile(p *Program, opts ...CompileOption) (*CompiledGraph, error) {
	var o compileOptions
	for _, opt := range opts {
		opt(&o)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if o.fold || o.deadArcs {
		p = p.Clone()
		if o.fold {
			if _, err := FoldConstants(p); err != nil {
				return nil, err
			}
		}
		if o.deadArcs {
			EliminateDeadArcs(p)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("graph: compile passes produced an invalid program: %v", err)
		}
	}

	cg := &CompiledGraph{Prog: p, Blocks: make([]CBlock, len(p.Blocks))}

	// Pass 1: global statement ids, frame slots, destination arena sizing.
	nDests := 0
	for bi, blk := range p.Blocks {
		cb := &cg.Blocks[bi]
		cb.ID = blk.ID
		cb.Name = blk.Name
		cb.Entries = blk.Entries
		cb.Base = cg.NumStmts
		cg.NumStmts += len(blk.Instrs)
		cb.EntryNT = make([]uint8, len(blk.Entries))
		for j, e := range blk.Entries {
			cb.EntryNT[j] = blk.Instrs[e].NT
		}
		for s := range blk.Instrs {
			in := &blk.Instrs[s]
			nDests += len(in.Dests) + len(in.DestsFalse) + len(in.ReturnDests)
			if in.Op != OpNop && in.NT >= 2 {
				cb.Slots++
			}
		}
	}
	cg.destArena = make([]CDest, 0, nDests)

	// Pass 2: lower instructions.
	for bi, blk := range p.Blocks {
		cb := &cg.Blocks[bi]
		cb.Instrs = make([]CInstr, len(blk.Instrs))
		slot := int32(0)
		for s := range blk.Instrs {
			in := &blk.Instrs[s]
			ci := &cb.Instrs[s]
			*ci = CInstr{
				Kind:      kindOf(in.Op),
				Op:        in.Op,
				NT:        in.NT,
				HasLit:    in.HasLiteral,
				LitPort:   in.LiteralPort,
				Lit:       in.Literal,
				ArgIndex:  in.ArgIndex,
				Target:    in.Target,
				MatchSlot: -1,
			}
			if in.Op != OpNop && in.NT >= 2 {
				ci.MatchSlot = slot
				slot++
			}
			ci.Dests = cg.lowerDests(blk, in.Dests)
			ci.DestsFalse = cg.lowerDests(blk, in.DestsFalse)
			ci.RetDests = cg.lowerDests(blk, in.ReturnDests)
		}
	}

	cg.buildPreds()
	return cg, nil
}

// lowerDests appends dests to the arena with their targets' nt fields.
func (cg *CompiledGraph) lowerDests(blk *CodeBlock, dests []Dest) []CDest {
	if len(dests) == 0 {
		return nil
	}
	base := len(cg.destArena)
	for _, d := range dests {
		cg.destArena = append(cg.destArena, CDest{
			Stmt: d.Stmt,
			Port: d.Port,
			NT:   blk.Instrs[d.Stmt].NT,
		})
	}
	return cg.destArena[base:len(cg.destArena):len(cg.destArena)]
}

// buildPreds computes the per-statement predecessor arrays over global
// statement ids with a two-pass count/fill over one shared arena.
func (cg *CompiledGraph) buildPreds() {
	counts := make([]int32, cg.NumStmts)
	visit := func(f func(from, to int32)) {
		for bi := range cg.Blocks {
			cb := &cg.Blocks[bi]
			for s := range cb.Instrs {
				from := int32(cb.Base + s)
				ci := &cb.Instrs[s]
				for _, d := range ci.Dests {
					f(from, int32(cb.Base)+int32(d.Stmt))
				}
				for _, d := range ci.DestsFalse {
					f(from, int32(cb.Base)+int32(d.Stmt))
				}
				// Return arcs land in the GetContext's own block.
				for _, d := range ci.RetDests {
					f(from, int32(cb.Base)+int32(d.Stmt))
				}
				// Call linkage: a GetContext makes the target block's
				// entries receivable.
				if ci.Kind == KindGetContext {
					tb := &cg.Blocks[ci.Target]
					for _, e := range tb.Entries {
						f(from, int32(tb.Base)+int32(e))
					}
				}
			}
		}
	}
	visit(func(_, to int32) { counts[to]++ })
	total := int32(0)
	starts := make([]int32, cg.NumStmts)
	for i, c := range counts {
		starts[i] = total
		total += c
	}
	cg.predArena = make([]int32, total)
	fill := make([]int32, cg.NumStmts)
	copy(fill, starts)
	visit(func(from, to int32) {
		cg.predArena[fill[to]] = from
		fill[to]++
	})
	cg.Preds = make([][]int32, cg.NumStmts)
	for i := range cg.Preds {
		end := total
		if i+1 < cg.NumStmts {
			end = starts[i+1]
		}
		cg.Preds[i] = cg.predArena[starts[i]:end:end]
	}
}

// Clone deep-copies a program: blocks, instructions, and destination
// lists. Rewrite passes operate on clones so callers' programs stay
// untouched.
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name, Blocks: make([]*CodeBlock, len(p.Blocks))}
	for i, b := range p.Blocks {
		nb := &CodeBlock{
			ID:      b.ID,
			Name:    b.Name,
			Entries: append([]uint16(nil), b.Entries...),
			Instrs:  append([]Instruction(nil), b.Instrs...),
		}
		for s := range nb.Instrs {
			in := &nb.Instrs[s]
			in.Dests = append([]Dest(nil), in.Dests...)
			in.DestsFalse = append([]Dest(nil), in.DestsFalse...)
			in.ReturnDests = append([]Dest(nil), in.ReturnDests...)
		}
		q.Blocks[i] = nb
	}
	return q
}
