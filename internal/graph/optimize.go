package graph

// Optimize performs machine-independent cleanup on a compiled program,
// currently identity elision: OpIdentity instructions that exist only as
// wiring artifacts (fan-out guards behind FETCH/ALLOCATE, if-merge points,
// compiler-inserted pass-throughs) are bypassed by rewiring their
// producers straight to their consumers. Entry statements are never
// touched (they receive externally addressed tokens), and a FETCH or
// ALLOCATE producer absorbs an identity only when the single-destination
// constraint still holds afterwards.
//
// Elision is semantics-preserving: an identity forwards exactly the tokens
// its producers send, so producers sending directly yields the same token
// stream one hop (and one ALU firing) earlier. The elided slot becomes an
// OpNop so statement numbering is unchanged.
//
// It returns statistics and leaves the program valid.
func Optimize(p *Program) OptStats {
	var stats OptStats
	stats.Before = p.NumInstructions() - p.countNops()
	for {
		changed := false
		for _, blk := range p.Blocks {
			if p.elideIdentities(blk, &stats) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	stats.After = p.NumInstructions() - p.countNops()
	return stats
}

// OptStats reports what Optimize did.
type OptStats struct {
	// Before and After count live (non-NOP) instructions.
	Before, After int
	// IdentitiesElided counts removed pass-throughs.
	IdentitiesElided int
}

func (p *Program) countNops() int {
	n := 0
	for _, blk := range p.Blocks {
		for s := range blk.Instrs {
			if blk.Instrs[s].Op == OpNop {
				n++
			}
		}
	}
	return n
}

// destRef locates one destination entry within some instruction's list.
type destRef struct {
	instr *Instruction
	list  int // 0 = Dests, 1 = DestsFalse, 2 = ReturnDests
	idx   int
}

func (d destRef) get() []Dest {
	switch d.list {
	case 0:
		return d.instr.Dests
	case 1:
		return d.instr.DestsFalse
	default:
		return d.instr.ReturnDests
	}
}

func (d destRef) set(v []Dest) {
	switch d.list {
	case 0:
		d.instr.Dests = v
	case 1:
		d.instr.DestsFalse = v
	default:
		d.instr.ReturnDests = v
	}
}

// elideIdentities performs one pass over a block; reports whether anything
// changed.
func (p *Program) elideIdentities(blk *CodeBlock, stats *OptStats) bool {
	entry := map[uint16]bool{}
	for _, e := range blk.Entries {
		entry[e] = true
	}
	// producer index: for each statement, the dest-list slots feeding it
	producers := map[uint16][]destRef{}
	for s := range blk.Instrs {
		in := &blk.Instrs[s]
		for li, list := range [][]Dest{in.Dests, in.DestsFalse, in.ReturnDests} {
			for di, d := range list {
				producers[d.Stmt] = append(producers[d.Stmt], destRef{instr: in, list: li, idx: di})
			}
		}
	}

	changed := false
	for s := range blk.Instrs {
		id := &blk.Instrs[s]
		if id.Op != OpIdentity || id.HasLiteral || entry[uint16(s)] {
			continue
		}
		refs := producers[uint16(s)]
		if len(refs) == 0 {
			continue // unreachable identity; leave it (validation keeps it sunk)
		}
		// feasibility: single-destination producers can absorb only a
		// single-destination identity
		feasible := true
		for _, ref := range refs {
			op := ref.instr.Op
			if (op == OpFetch || op == OpAllocate) && len(id.Dests) != 1 {
				feasible = false
				break
			}
		}
		if !feasible || len(id.Dests) == 0 {
			continue
		}
		// self-reference guard (cannot occur in compiled code, but cheap)
		self := false
		for _, d := range id.Dests {
			if d.Stmt == uint16(s) {
				self = true
			}
		}
		if self {
			continue
		}
		// rewire every producer slot to the identity's destinations
		for _, ref := range refs {
			list := ref.get()
			// the slot index may have shifted if an earlier elision
			// spliced this same list; locate the entry pointing at s
			pos := -1
			for i, d := range list {
				if d.Stmt == uint16(s) && d.Port == 0 {
					pos = i
					break
				}
			}
			if pos < 0 {
				continue
			}
			newList := make([]Dest, 0, len(list)-1+len(id.Dests))
			newList = append(newList, list[:pos]...)
			newList = append(newList, id.Dests...)
			newList = append(newList, list[pos+1:]...)
			ref.set(newList)
		}
		id.Op = OpNop
		id.Dests = nil
		id.NT = 0
		id.Comment = ""
		stats.IdentitiesElided++
		changed = true
		if changed {
			// producer index is stale after a splice; restart the block
			return true
		}
	}
	return false
}
