package graph

import (
	"fmt"
	"strings"
)

// Dot renders the program as a Graphviz digraph, one cluster per code
// block — Figure 2-2 as an actual picture. Solid edges are data arcs,
// dashed edges the false branches of switches, dotted edges the
// caller-side return paths recorded by GETC. Cross-block linkage (L,
// SENDARG, RETURN) is drawn to the target block's entry nodes in bold.
func (p *Program) Dot() string {
	var b strings.Builder
	b.WriteString("digraph ttda {\n")
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\", fontsize=10];\n")
	nodeID := func(blk BlockID, s uint16) string { return fmt.Sprintf("b%d_s%d", blk, s) }
	for _, blk := range p.Blocks {
		fmt.Fprintf(&b, "  subgraph cluster_b%d {\n    label=\"block %d: %s\";\n", blk.ID, blk.ID, blk.Name)
		entries := map[uint16]bool{}
		for _, e := range blk.Entries {
			entries[e] = true
		}
		for s := range blk.Instrs {
			in := &blk.Instrs[s]
			if in.Op == OpNop {
				continue
			}
			label := fmt.Sprintf("s%d %s", s, in.Op)
			if in.HasLiteral {
				label += fmt.Sprintf("\\nlit=%s", in.Literal)
			}
			if in.Comment != "" {
				label += fmt.Sprintf("\\n%s", escapeDot(in.Comment))
			}
			attrs := ""
			switch {
			case entries[uint16(s)]:
				attrs = ", style=filled, fillcolor=lightblue"
			case in.Op == OpSwitch:
				attrs = ", shape=diamond"
			case in.Op == OpGetContext || in.Op == OpSendArg || in.Op == OpL ||
				in.Op == OpReturn || in.Op == OpLInv || in.Op == OpD || in.Op == OpDInv:
				attrs = ", style=filled, fillcolor=lightyellow"
			case in.Op == OpFetch || in.Op == OpStore || in.Op == OpAllocate:
				attrs = ", style=filled, fillcolor=lightgrey"
			}
			fmt.Fprintf(&b, "    %s [label=\"%s\"%s];\n", nodeID(blk.ID, uint16(s)), label, attrs)
		}
		b.WriteString("  }\n")
	}
	for _, blk := range p.Blocks {
		for s := range blk.Instrs {
			in := &blk.Instrs[s]
			if in.Op == OpNop {
				continue
			}
			from := nodeID(blk.ID, uint16(s))
			for _, d := range in.Dests {
				fmt.Fprintf(&b, "  %s -> %s [label=\"%d\"];\n", from, nodeID(blk.ID, d.Stmt), d.Port)
			}
			for _, d := range in.DestsFalse {
				fmt.Fprintf(&b, "  %s -> %s [style=dashed, label=\"F\"];\n", from, nodeID(blk.ID, d.Stmt))
			}
			for _, d := range in.ReturnDests {
				fmt.Fprintf(&b, "  %s -> %s [style=dotted, label=\"ret\"];\n", from, nodeID(blk.ID, d.Stmt))
			}
			if (in.Op == OpSendArg || in.Op == OpL) && int(in.Target) < len(p.Blocks) {
				tb := p.Blocks[in.Target]
				if int(in.ArgIndex) < len(tb.Entries) {
					fmt.Fprintf(&b, "  %s -> %s [style=bold, color=blue, label=\"arg%d\"];\n",
						from, nodeID(in.Target, tb.Entries[in.ArgIndex]), in.ArgIndex)
				}
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
