package graph

import (
	"strings"
	"testing"

	"repro/internal/token"
)

// buildConstDiv builds main(x) = 6/0 computed from two CONST generators,
// both triggered by the entry token. The division by zero is latent: it
// faults at run time, and constant folding must refuse to bake it in.
func buildConstDiv(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("constdiv")
	bb := b.NewBlock("main", 1)
	e := bb.Entry(0)
	c6 := bb.OpLit(OpConst, token.Int(6), 1, "6")
	c0 := bb.OpLit(OpConst, token.Int(0), 1, "0")
	div := bb.Op(OpDiv, "6/0")
	ret := bb.Op(OpReturn, "")
	bb.Connect(e, c6, 0)
	bb.Connect(e, c0, 0)
	bb.Connect(c6, div, 0)
	bb.Connect(c0, div, 1)
	bb.Connect(div, ret, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p
}

// TestFoldRejectsConstantDivisionByZero: folding a fully-constant division
// by zero must come back as a clean Compile error, never a panic and never
// a plan with the fault baked in. Without the folding pass the same
// program compiles fine (and faults at run time, as written).
func TestFoldRejectsConstantDivisionByZero(t *testing.T) {
	p := buildConstDiv(t)
	if _, err := Compile(p, WithConstantFolding()); err == nil {
		t.Fatal("Compile(WithConstantFolding) accepted a constant division by zero")
	} else if !strings.Contains(err.Error(), "zero") {
		t.Fatalf("error does not name the fault: %v", err)
	}
	cg, err := Compile(p)
	if err != nil {
		t.Fatalf("Compile without folding rejected the program: %v", err)
	}
	if _, err := NewInterpPlan(cg).Run(token.Int(1)); err == nil {
		t.Fatal("running the unfolded program did not fault on 6/0")
	}
}

// TestFoldAbsorbsLiteralsAndPreservesResult: folding (x*10)+(6-2) must
// leave the answer bit-identical while reducing firings, and must leave
// the caller's Program untouched (passes run on a private clone).
func TestFoldAbsorbsLiteralsAndPreservesResult(t *testing.T) {
	b := NewBuilder("fold")
	bb := b.NewBlock("main", 1)
	e := bb.Entry(0)
	mul := bb.OpLit(OpMul, token.Int(10), 1, "x*10")
	c6 := bb.OpLit(OpConst, token.Int(6), 1, "6")
	sub := bb.OpLit(OpSub, token.Int(2), 1, "6-2")
	add := bb.Op(OpAdd, "")
	ret := bb.Op(OpReturn, "")
	bb.Connect(e, mul, 0)
	bb.Connect(e, c6, 0)
	bb.Connect(c6, sub, 0)
	bb.Connect(mul, add, 0)
	bb.Connect(sub, add, 1)
	bb.Connect(add, ret, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}

	plain, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	folded, err := Compile(p, WithConstantFolding())
	if err != nil {
		t.Fatal(err)
	}
	if folded.Prog == p {
		t.Fatal("folding mutated the caller's program instead of a clone")
	}

	ip, fp := NewInterpPlan(plain), NewInterpPlan(folded)
	rp, err1 := ip.Run(token.Int(7))
	rf, err2 := fp.Run(token.Int(7))
	if err1 != nil || err2 != nil {
		t.Fatalf("run errors: %v / %v", err1, err2)
	}
	if len(rp) != 1 || len(rf) != 1 || !rp[0].Equal(rf[0]) || rp[0].I != 74 {
		t.Fatalf("results diverged: plain %v, folded %v (want 74)", rp, rf)
	}
	// Folding never removes firings (demoted CONSTs still absorb their
	// trigger) but it removes arcs, so fewer tokens move.
	if fp.Tokens() >= ip.Tokens() {
		t.Fatalf("folding did not reduce token traffic: %d -> %d", ip.Tokens(), fp.Tokens())
	}
	clone := p.Clone()
	fs, err := FoldConstants(clone)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Folded == 0 || fs.LiteralsAbsorbed == 0 || fs.Sunk == 0 {
		t.Fatalf("fold stats missed a rewrite class: %+v", fs)
	}
	// The caller's program still names two token operands on the add.
	if p.Entry().Instr(add).HasLiteral {
		t.Fatal("caller's program gained a literal: passes leaked out of the clone")
	}
}

// TestFoldLeavesConstCycleUnfolded: CONST generators that trigger each
// other form a constant cycle no execution order can fold away. The pass
// must terminate, leave the cycle intact (or let dead-arc elimination
// remove it when unreachable), and the result must still validate.
func TestFoldLeavesConstCycleUnfolded(t *testing.T) {
	b := NewBuilder("cycle")
	bb := b.NewBlock("main", 1)
	e := bb.Entry(0)
	ret := bb.Op(OpReturn, "")
	bb.Connect(e, ret, 0)
	// Unreachable two-node CONST cycle, each triggering the other.
	ca := bb.OpLit(OpConst, token.Int(1), 1, "cycle a")
	cb := bb.OpLit(OpConst, token.Int(2), 1, "cycle b")
	bb.Connect(ca, cb, 0)
	bb.Connect(cb, ca, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}

	folded, err := Compile(p, WithConstantFolding())
	if err != nil {
		t.Fatalf("folding a constant cycle failed: %v", err)
	}
	res, err := NewInterpPlan(folded).Run(token.Int(42))
	if err != nil || len(res) != 1 || res[0].I != 42 {
		t.Fatalf("folded cycle program misbehaved: %v, %v", res, err)
	}

	// With dead-arc elimination stacked on top, the unreachable cycle is
	// excised entirely.
	both, err := Compile(p, WithConstantFolding(), WithDeadArcElimination())
	if err != nil {
		t.Fatal(err)
	}
	mb := both.Prog.Entry()
	if mb.Instr(ca).Op != OpNop || mb.Instr(cb).Op != OpNop {
		t.Fatalf("dead-arc pass left the unreachable cycle: %s / %s", mb.Instr(ca).Op, mb.Instr(cb).Op)
	}
}

// TestDeadArcDropsArcsFromDeadIntoLiveEntry: the subtle dead-arc case is a
// dead statement aiming an arc at a LIVE entry statement. Dropping only
// dead statements' incoming arcs would miss it; the pass must drop dead
// statements' outgoing lists too, or the entry would receive a phantom
// operand count.
func TestDeadArcDropsArcsFromDeadIntoLiveEntry(t *testing.T) {
	b := NewBuilder("deadentry")
	bb := b.NewBlock("main", 1)
	e := bb.Entry(0)
	neg := bb.OpLit(OpSub, token.Int(0), 0, "0-x")
	ret := bb.Op(OpReturn, "")
	bb.Connect(e, neg, 1)
	bb.Connect(neg, ret, 0)
	// Dead statement with an arc into the live entry statement.
	dead := bb.OpLit(OpConst, token.Int(9), 1, "dead")
	bb.Instr(dead).Dests = append(bb.Instr(dead).Dests, Dest{Stmt: e, Port: 0})
	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}

	stats := EliminateDeadArcs(p)
	if stats.StatementsRemoved != 1 {
		t.Fatalf("StatementsRemoved = %d, want 1", stats.StatementsRemoved)
	}
	if stats.ArcsRemoved != 1 {
		t.Fatalf("ArcsRemoved = %d, want 1 (the dead arc into the live entry)", stats.ArcsRemoved)
	}
	if p.Entry().Instr(dead).Op != OpNop {
		t.Fatalf("dead statement not NOPed: %s", p.Entry().Instr(dead).Op)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid after dead-arc elimination: %v", err)
	}
	res, err := NewInterp(p).Run(token.Int(5))
	if err != nil || len(res) != 1 || res[0].I != -5 {
		t.Fatalf("cleaned program misbehaved: %v, %v", res, err)
	}
}

// TestCompiledPlanShapes pins the plan invariants every engine relies on:
// dense kinds, destination NT fields matching the target instructions,
// match slots exactly covering two-operand statements, and predecessor
// arrays consistent with the arc structure.
func TestCompiledPlanShapes(t *testing.T) {
	p := buildConstDiv(t)
	cg, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	cb := cg.Block(0)
	slots := map[int32]bool{}
	for s := range cb.Instrs {
		ci := &cb.Instrs[s]
		in := p.Entry().Instr(uint16(s))
		if ci.Op != in.Op || ci.NT != in.NT {
			t.Fatalf("stmt %d: plan (%s, nt=%d) != program (%s, nt=%d)", s, ci.Op, ci.NT, in.Op, in.NT)
		}
		for _, d := range ci.Dests {
			if want := p.Entry().Instr(d.Stmt).NT; d.NT != want {
				t.Fatalf("stmt %d dest %d: NT %d, want %d", s, d.Stmt, d.NT, want)
			}
		}
		if in.Op != OpNop && in.NT >= 2 {
			if ci.MatchSlot < 0 || slots[ci.MatchSlot] {
				t.Fatalf("stmt %d: bad or duplicate match slot %d", s, ci.MatchSlot)
			}
			slots[ci.MatchSlot] = true
		} else if ci.MatchSlot != -1 {
			t.Fatalf("single-operand stmt %d has match slot %d", s, ci.MatchSlot)
		}
	}
	if len(slots) != cb.Slots {
		t.Fatalf("Slots = %d, assigned %d", cb.Slots, len(slots))
	}
	// Every arc must appear as a predecessor entry.
	arcs := 0
	for s := range cb.Instrs {
		arcs += len(cb.Instrs[s].Dests) + len(cb.Instrs[s].DestsFalse)
	}
	preds := 0
	for _, ps := range cg.Preds {
		preds += len(ps)
	}
	if preds != arcs {
		t.Fatalf("predecessor entries %d != arcs %d", preds, arcs)
	}
}
