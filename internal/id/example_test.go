package id_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/token"
)

// Compile a MiniID program and execute it on the reference interpreter.
func ExampleRun() {
	src := `
def square(x) = x * x;
def main(n) =
  (initial s <- 0
   for i from 1 to n do
     new s <- s + square(i)
   return s);
`
	res, it, err := id.Run(src, token.Int(5))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("sum of squares 1..5 = %s\n", res[0])
	fmt.Printf("parallelism found: %t\n", it.MaxParallelism() > 1)
	// Output:
	// sum of squares 1..5 = 55
	// parallelism found: true
}

// Compile produces a tagged-token dataflow graph whose loops use the
// paper's L, D, D⁻¹ and L⁻¹ operators.
func ExampleCompile() {
	prog, err := id.Compile(`
def main(n) =
  (initial s <- 0
   for i from 1 to n do
     new s <- s + i
   return s);
`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("blocks: %d\n", len(prog.Blocks))
	// three circulating variables: the index i, the accumulator s, and
	// the loop bound n (an imported loop constant)
	fmt.Printf("L: %d  D: %d  D-1: %d  L-1: %d\n",
		prog.CountOp(graph.OpL), prog.CountOp(graph.OpD),
		prog.CountOp(graph.OpDInv), prog.CountOp(graph.OpLInv))
	// Output:
	// blocks: 2
	// L: 3  D: 3  D-1: 1  L-1: 1
}
