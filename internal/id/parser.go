package id

// parser is a recursive-descent parser for MiniID.
//
// Grammar (see the package comment for examples):
//
//	file     := def*
//	def      := "def" IDENT "(" [IDENT ("," IDENT)*] ")" "=" expr ";"
//	expr     := orExpr
//	orExpr   := andExpr ("or" andExpr)*
//	andExpr  := notExpr ("and" notExpr)*
//	notExpr  := "not" notExpr | cmp
//	cmp      := add [("<"|"<="|">"|">="|"=="|"!=") add]
//	add      := mul (("+"|"-") mul)*
//	mul      := unary (("*"|"/"|"%") unary)*
//	unary    := "-" unary | postfix
//	postfix  := primary ("[" expr "]")*
//	primary  := NUMBER | "true" | "false" | IDENT | IDENT "(" args ")"
//	          | "array" "(" expr ")" | "(" expr ")" | loop | if | let
//	loop     := "(" "initial" binds "for" IDENT "from" expr "to" expr
//	            ["by" expr] "do" stmts "return" expr ")"
//	binds    := IDENT "<-" expr (";" IDENT "<-" expr)*
//	stmts    := stmt (";" stmt)*
//	stmt     := "new" IDENT "<-" expr | postfix "[" expr "]" "<-" expr
//	if       := "if" expr "then" expr "else" expr
//	let      := "{" (letbind ";")* expr "}"
//	letbind  := IDENT "=" expr | IDENT "[" expr "]" "<-" expr
type parser struct {
	toks []lexToken
	pos  int
}

// Parse parses a MiniID compilation unit.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.at(tokEOF) {
		d, err := p.parseDef()
		if err != nil {
			return nil, err
		}
		f.Defs = append(f.Defs, d)
	}
	if len(f.Defs) == 0 {
		return nil, errf(Pos{1, 1}, "empty program: at least one def required")
	}
	return f, nil
}

func (p *parser) cur() lexToken       { return p.toks[p.pos] }
func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) peekIs(text string) bool { return p.cur().is(text) }

// peekAheadIs looks n tokens ahead.
func (p *parser) peekAheadIs(n int, text string) bool {
	if p.pos+n >= len(p.toks) {
		return false
	}
	return p.toks[p.pos+n].is(text)
}

func (p *parser) take() lexToken {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(text string) (lexToken, error) {
	if !p.peekIs(text) {
		return lexToken{}, errf(p.cur().at, "expected %q, found %s", text, p.cur().describe())
	}
	return p.take(), nil
}

func (p *parser) expectIdent() (lexToken, error) {
	if !p.cur().isIdent() {
		return lexToken{}, errf(p.cur().at, "expected identifier, found %s", p.cur().describe())
	}
	return p.take(), nil
}

func (p *parser) parseDef() (*Def, error) {
	kw, err := p.expect("def")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.peekIs(")") {
		if len(params) > 0 {
			if _, err := p.expect(","); err != nil {
				return nil, err
			}
		}
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params = append(params, id.text)
	}
	p.take() // ")"
	if _, err := p.expect("="); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return &Def{At: kw.at, Name: name.text, Params: params, Body: body}, nil
}

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peekIs("or") {
		op := p.take()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{At: op.at, Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peekIs("and") {
		op := p.take()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{At: op.at, Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.peekIs("not") {
		op := p.take()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{At: op.at, Op: "not", X: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "==", "!=", "<", ">"} {
		if p.peekIs(op) {
			t := p.take()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &Binary{At: t.at, Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.peekIs("+") || p.peekIs("-") {
		t := p.take()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{At: t.at, Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peekIs("*") || p.peekIs("/") || p.peekIs("%") {
		t := p.take()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{At: t.at, Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peekIs("-") {
		t := p.take()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{At: t.at, Op: "-", X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peekIs("[") {
		t := p.take()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		e = &Index{At: t.at, Seq: e, Idx: idx}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.take()
		return &NumberLit{At: t.at, IsFloat: t.isFloat, Int: t.intVal, Float: t.fltVal}, nil
	case t.is("true"), t.is("false"):
		p.take()
		return &BoolLit{At: t.at, Value: t.text == "true"}, nil
	case t.is("array"):
		p.take()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		size, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return &ArrayAlloc{At: t.at, Size: size}, nil
	case t.is("if"):
		return p.parseIf()
	case t.is("{"):
		return p.parseLet()
	case t.is("("):
		if p.peekAheadIs(1, "initial") || p.peekAheadIs(1, "for") || p.peekAheadIs(1, "while") {
			return p.parseLoop()
		}
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.isIdent():
		p.take()
		if p.peekIs("(") {
			p.take()
			var args []Expr
			for !p.peekIs(")") {
				if len(args) > 0 {
					if _, err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			p.take() // ")"
			return &Call{At: t.at, Name: t.text, Args: args}, nil
		}
		return &VarRef{At: t.at, Name: t.text}, nil
	}
	return nil, errf(t.at, "expected expression, found %s", t.describe())
}

func (p *parser) parseIf() (Expr, error) {
	t := p.take() // "if"
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("then"); err != nil {
		return nil, err
	}
	thn, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &If{At: t.at, Cond: cond, Then: thn, Else: els}, nil
}

func (p *parser) parseLet() (Expr, error) {
	open := p.take() // "{"
	var bindings []*LetBinding
	for {
		// A binding looks like IDENT "=" or IDENT "["; otherwise the block
		// body starts here.
		if p.cur().isIdent() && (p.peekAheadIs(1, "=") || p.peekAheadIs(1, "[")) {
			save := p.pos
			b, err := p.parseLetBinding()
			if err == nil {
				bindings = append(bindings, b)
				if _, err := p.expect(";"); err != nil {
					return nil, err
				}
				continue
			}
			// It was not a binding after all (e.g. the body is a[i] as an
			// expression); back up and parse the body.
			p.pos = save
		}
		break
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("}"); err != nil {
		return nil, err
	}
	return &Let{At: open.at, Bindings: bindings, Body: body}, nil
}

func (p *parser) parseLetBinding() (*LetBinding, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.peekIs("=") {
		p.take()
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &LetBinding{At: name.at, Name: name.text, Value: v}, nil
	}
	// element store: IDENT "[" expr "]" "<-" expr
	if _, err := p.expect("["); err != nil {
		return nil, err
	}
	idx, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("]"); err != nil {
		return nil, err
	}
	if _, err := p.expect("<-"); err != nil {
		return nil, err
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &LetBinding{At: name.at, IsStore: true,
		Seq: &VarRef{At: name.at, Name: name.text}, Idx: idx, Value: v}, nil
}

func (p *parser) parseLoop() (Expr, error) {
	open := p.take() // "("
	var initial []*LetBinding
	if p.peekIs("initial") {
		p.take()
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("<-"); err != nil {
				return nil, err
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			initial = append(initial, &LetBinding{At: name.at, Name: name.text, Value: v})
			if p.peekIs(";") {
				p.take()
				continue
			}
			break
		}
	}
	loop := &Loop{At: open.at, Initial: initial}
	if p.peekIs("while") {
		p.take()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		loop.Cond = cond
	} else {
		if _, err := p.expect("for"); err != nil {
			return nil, err
		}
		idx, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		loop.Index = idx.text
		if _, err := p.expect("from"); err != nil {
			return nil, err
		}
		loop.From, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("to"); err != nil {
			return nil, err
		}
		loop.To, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peekIs("by") {
			p.take()
			loop.By, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect("do"); err != nil {
		return nil, err
	}
	var body []*LoopStmt
	for {
		st, err := p.parseLoopStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, st)
		if p.peekIs(";") {
			p.take()
			continue
		}
		break
	}
	if _, err := p.expect("return"); err != nil {
		return nil, err
	}
	ret, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	loop.Body = body
	loop.Return = ret
	return loop, nil
}

func (p *parser) parseLoopStmt() (*LoopStmt, error) {
	if p.peekIs("new") {
		t := p.take()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("<-"); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &LoopStmt{At: t.at, Name: name.text, Value: v}, nil
	}
	// element store: IDENT "[" expr "]" "<-" expr
	name, err := p.expectIdent()
	if err != nil {
		return nil, errf(p.cur().at, "expected loop statement (new x <- e, or a[i] <- e), found %s", p.cur().describe())
	}
	if _, err := p.expect("["); err != nil {
		return nil, err
	}
	idx, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("]"); err != nil {
		return nil, err
	}
	if _, err := p.expect("<-"); err != nil {
		return nil, err
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &LoopStmt{At: name.at, IsStore: true,
		Seq: &VarRef{At: name.at, Name: name.text}, Idx: idx, Value: v}, nil
}
