package id

// Section 2.2.4 names two data-structure operations: SELECT (a FETCH) and
// APPEND, which "generates a new data structure which differs from the
// input structure in one selected position" — and footnote 4 notes that an
// APPEND can cause a new copy of the structure to be created. MiniID
// exposes APPEND as the builtin-looking function
//
//	append(a, i, v)
//
// compiled from the prelude below: allocate a fresh I-structure, start a
// copy loop, and return the new reference immediately. The copy loop's
// reads defer element-by-element on the source's presence bits and its
// writes fill the new structure's presence bits, so consumers of the new
// structure synchronize with the copy exactly as with any producer — the
// reference is usable before the copy completes. The element at position i
// comes from v; the conditional's gating ensures the superseded source
// element is not even fetched.
//
// A user definition of append shadows the prelude.
const preludeAppend = `
def append(a, i, v) =
  { b = array(len(a));
    fill = (initial z <- 0
            for j from 0 to len(a) - 1 do
              b[j] <- if j == i then v else a[j];
              new z <- z
            return 0);
    b };
`

// usesCall reports whether any expression in the file calls the named
// function.
func usesCall(f *File, name string) bool {
	found := false
	for _, d := range f.Defs {
		walkExpr(d.Body, func(e Expr) {
			if c, ok := e.(*Call); ok && c.Name == name {
				found = true
			}
		})
	}
	return found
}

// defines reports whether the file defines the named function.
func defines(f *File, name string) bool {
	for _, d := range f.Defs {
		if d.Name == name {
			return true
		}
	}
	return false
}

// injectPrelude appends prelude definitions for referenced-but-undefined
// library functions.
func injectPrelude(f *File) error {
	if usesCall(f, "append") && !defines(f, "append") {
		pf, err := Parse(preludeAppend)
		if err != nil {
			return err
		}
		f.Defs = append(f.Defs, pf.Defs...)
	}
	return nil
}

// walkExpr visits e and every sub-expression.
func walkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch n := e.(type) {
	case *Unary:
		walkExpr(n.X, visit)
	case *Binary:
		walkExpr(n.L, visit)
		walkExpr(n.R, visit)
	case *Call:
		for _, a := range n.Args {
			walkExpr(a, visit)
		}
	case *If:
		walkExpr(n.Cond, visit)
		walkExpr(n.Then, visit)
		walkExpr(n.Else, visit)
	case *Index:
		walkExpr(n.Seq, visit)
		walkExpr(n.Idx, visit)
	case *ArrayAlloc:
		walkExpr(n.Size, visit)
	case *Let:
		for _, b := range n.Bindings {
			walkExpr(b.Seq, visit)
			walkExpr(b.Idx, visit)
			walkExpr(b.Value, visit)
		}
		walkExpr(n.Body, visit)
	case *Loop:
		for _, b := range n.Initial {
			walkExpr(b.Value, visit)
		}
		walkExpr(n.From, visit)
		walkExpr(n.To, visit)
		walkExpr(n.By, visit)
		walkExpr(n.Cond, visit)
		for _, st := range n.Body {
			walkExpr(st.Seq, visit)
			walkExpr(st.Idx, visit)
			walkExpr(st.Value, visit)
		}
		walkExpr(n.Return, visit)
	}
}
