package id

import (
	"strings"
	"testing"

	"repro/internal/token"
	"repro/internal/workload"
)

func checkSrc(t *testing.T, src string) []*Error {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(f)
}

func assertClean(t *testing.T, src string) {
	t.Helper()
	if errs := checkSrc(t, src); len(errs) != 0 {
		t.Fatalf("expected clean check, got: %v", errs)
	}
}

func assertError(t *testing.T, src, want string) {
	t.Helper()
	errs := checkSrc(t, src)
	for _, e := range errs {
		if strings.Contains(e.Error(), want) {
			return
		}
	}
	t.Fatalf("no error containing %q in %v", want, errs)
}

func TestCheckCleanPrograms(t *testing.T) {
	for name, src := range map[string]string{
		"trapezoid": workload.TrapezoidID,
		"fib":       workload.FibID,
		"matmul":    workload.MatMulID,
		"pc":        workload.ProducerConsumerID,
		"wavefront": workload.WavefrontID,
		"mergesort": workload.MergeSortID,
		"collatz":   workload.CollatzID,
		"sum":       workload.SumLoopID,
	} {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if errs := Check(f); len(errs) != 0 {
			t.Errorf("%s: false positives: %v", name, errs)
		}
	}
}

func TestCheckBooleanCondition(t *testing.T) {
	assertError(t, "def main(x) = if x + 1 then 2 else 3;", "conditional test")
}

func TestCheckArithmeticOnBool(t *testing.T) {
	assertError(t, "def main(x) = (x > 0) + 1;", "operand of +")
}

func TestCheckNotOnNumber(t *testing.T) {
	assertError(t, "def main(x) = not (x + 1);", "operand of not")
}

func TestCheckIndexNonArray(t *testing.T) {
	// x[0] constrains x to array; the later x + ... then conflicts. Either
	// located message is acceptable evidence.
	errs := checkSrc(t, "def main(x) = x[0] + x;")
	if len(errs) == 0 {
		t.Fatal("indexing a number must be reported")
	}
	if !strings.Contains(errs[0].Error(), "array") {
		t.Fatalf("error should mention array: %v", errs)
	}
	assertError(t, "def main(x) = (x + 1)[0];", "indexed expression")
}

func TestCheckIncompatibleArms(t *testing.T) {
	assertError(t, "def main(x) = if x > 0 then 1 else x > 2;", "conditional arms")
}

func TestCheckArraySizeBool(t *testing.T) {
	assertError(t, "def main(x) = len(array(x == 0));", "array size")
}

func TestCheckLenOnNumber(t *testing.T) {
	assertError(t, "def main(x) = len(x + 1);", "argument of len")
}

func TestCheckCallSiteMismatch(t *testing.T) {
	assertError(t, `
def f(x) = x + 1;
def main(a) = if f(a > 0) > 0 then 1 else 2;
`, "argument 1 of f")
}

func TestCheckPolymorphicReuseReported(t *testing.T) {
	// One code block, one signature: using f on a bool and a number at
	// different sites must be reported.
	assertError(t, `
def f(x) = x;
def main(a) = if f(a > 0) then f(a) else 0;
`, "argument 1 of f")
}

func TestCheckWhileCondition(t *testing.T) {
	assertError(t, `
def main(n) =
  (initial x <- n
   while x - 1 do
     new x <- x - 1
   return x);
`, "while condition")
}

func TestCheckNewBindingTypeDrift(t *testing.T) {
	assertError(t, `
def main(n) =
  (initial s <- 0
   for i from 1 to n do
     new s <- i > 2
   return s);
`, "new s")
}

func TestCheckLoopBoundsBool(t *testing.T) {
	assertError(t, `
def main(n) =
  (initial s <- 0
   for i from 1 to n > 4 do
     new s <- s + 1
   return s);
`, "loop upper bound")
}

func TestCheckNumericMixingIsFine(t *testing.T) {
	assertClean(t, "def main(x) = x + 1.5 * 2;")
	assertClean(t, "def main(x) = if x == 2.0 then floor(x) else 0;")
}

func TestCheckAppendPreludeClean(t *testing.T) {
	assertClean(t, `
def main(n) =
  { a = array(n);
    f = (initial z <- 0 for i from 0 to n - 1 do a[i] <- i; new z <- z return 0);
    b = append(a, 1, 5);
    b[0] + f };
`)
}

func TestCheckErrorsAreOrdered(t *testing.T) {
	errs := checkSrc(t, `
def main(x) =
  { a = not (x + 1);
    b = if x then 1 else 2;
    x };
`)
	if len(errs) < 2 {
		t.Fatalf("want at least 2 errors, got %v", errs)
	}
	for i := 1; i < len(errs); i++ {
		if errs[i].At.Line < errs[i-1].At.Line {
			t.Fatalf("errors out of order: %v", errs)
		}
	}
}

func TestCheckedProgramsStillRunDynamically(t *testing.T) {
	// Check is advisory: a program it flags can still compile and fault at
	// run time with the same complaint.
	src := "def main(x) = if x + 0 then 1 else 2;"
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if errs := Check(f); len(errs) == 0 {
		t.Fatal("checker should flag non-boolean condition")
	}
	if _, _, err := Run(src, token.Int(1)); err == nil {
		t.Fatal("dynamic run should also fault")
	}
}
