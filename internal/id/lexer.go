package id

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPunct // operators and delimiters
)

type lexToken struct {
	kind tokenKind
	text string
	at   Pos
	// number payload
	isFloat bool
	intVal  int64
	fltVal  float64
}

var keywords = map[string]bool{
	"def": true, "initial": true, "for": true, "from": true, "to": true,
	"by": true, "do": true, "new": true, "return": true, "if": true, "while": true,
	"then": true, "else": true, "true": true, "false": true,
	"and": true, "or": true, "not": true, "array": true,
}

// lexer turns MiniID source into tokens. '#' starts a comment to end of
// line. Multi-character operators: <- <= >= == != .
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpace() {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		if c == '#' {
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			lx.advance()
			continue
		}
		break
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (lx *lexer) next() (lexToken, error) {
	lx.skipSpace()
	at := lx.pos()
	if lx.off >= len(lx.src) {
		return lexToken{kind: tokEOF, at: at}, nil
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentCont(lx.peekByte()) {
			lx.advance()
		}
		return lexToken{kind: tokIdent, text: lx.src[start:lx.off], at: at}, nil
	case unicode.IsDigit(rune(c)):
		return lx.lexNumber(at)
	}
	// punctuation / operators
	two := ""
	if lx.off+1 < len(lx.src) {
		two = lx.src[lx.off : lx.off+2]
	}
	switch two {
	case "<-", "<=", ">=", "==", "!=":
		lx.advance()
		lx.advance()
		return lexToken{kind: tokPunct, text: two, at: at}, nil
	}
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '(', ')', '{', '}', '[', ']', ';', ',', '=':
		lx.advance()
		return lexToken{kind: tokPunct, text: string(c), at: at}, nil
	}
	return lexToken{}, errf(at, "unexpected character %q", string(c))
}

func (lx *lexer) lexNumber(at Pos) (lexToken, error) {
	start := lx.off
	seenDot, seenExp := false, false
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		if unicode.IsDigit(rune(c)) {
			lx.advance()
			continue
		}
		if c == '.' && !seenDot && !seenExp {
			// distinguish 1.5 from a hypothetical 1.foo
			if lx.off+1 < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.off+1])) {
				seenDot = true
				lx.advance()
				continue
			}
			break
		}
		if (c == 'e' || c == 'E') && !seenExp {
			j := lx.off + 1
			if j < len(lx.src) && (lx.src[j] == '+' || lx.src[j] == '-') {
				j++
			}
			if j < len(lx.src) && unicode.IsDigit(rune(lx.src[j])) {
				seenExp = true
				lx.advance()
				if lx.peekByte() == '+' || lx.peekByte() == '-' {
					lx.advance()
				}
				continue
			}
			break
		}
		break
	}
	text := lx.src[start:lx.off]
	if seenDot || seenExp {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return lexToken{}, errf(at, "bad number %q", text)
		}
		return lexToken{kind: tokNumber, text: text, at: at, isFloat: true, fltVal: f}, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return lexToken{}, errf(at, "bad integer %q", text)
	}
	return lexToken{kind: tokNumber, text: text, at: at, intVal: i}, nil
}

// lexAll tokenizes the whole source, appending a final EOF token.
func lexAll(src string) ([]lexToken, error) {
	lx := newLexer(src)
	var out []lexToken
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (t lexToken) describe() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokIdent:
		if keywords[t.text] {
			return fmt.Sprintf("keyword %q", t.text)
		}
		return fmt.Sprintf("identifier %q", t.text)
	case tokNumber:
		return fmt.Sprintf("number %s", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// is reports whether the token is the given keyword or punctuation.
func (t lexToken) is(text string) bool {
	if t.kind == tokEOF {
		return false
	}
	if keywords[text] {
		return t.kind == tokIdent && t.text == text
	}
	return t.kind == tokPunct && t.text == text
}

// isIdent reports whether the token is a non-keyword identifier.
func (t lexToken) isIdent() bool {
	return t.kind == tokIdent && !keywords[t.text]
}
