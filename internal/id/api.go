package id

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/token"
)

// MainArity returns the number of arguments the compiled program's entry
// block expects at run time. A zero-parameter main still expects one hidden
// trigger token.
func MainArity(p *graph.Program) int { return len(p.Entry().Entries) }

// EntryArgs adapts user-level arguments to the entry block's runtime
// arguments, supplying the hidden trigger for zero-parameter mains.
func EntryArgs(p *graph.Program, args []token.Value) ([]token.Value, error) {
	want := MainArity(p)
	if len(args) == want {
		return args, nil
	}
	if len(args) == 0 && want == 1 {
		return []token.Value{token.Int(1)}, nil // hidden trigger
	}
	return nil, fmt.Errorf("minid: main takes %d arguments, got %d", want, len(args))
}

// Run compiles src and executes it on the reference interpreter. It returns
// the program results and the interpreter (for statistics and I-structure
// inspection).
func Run(src string, args ...token.Value) ([]token.Value, *graph.Interp, error) {
	prog, err := Compile(src)
	if err != nil {
		return nil, nil, err
	}
	runArgs, err := EntryArgs(prog, args)
	if err != nil {
		return nil, nil, err
	}
	it := graph.NewInterp(prog)
	res, err := it.Run(runArgs...)
	if err != nil {
		return nil, it, err
	}
	return res, it, nil
}
