package id

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/token"
)

// FuzzCompiledEquivalence is the differential fuzz target for the
// ahead-of-time compilation stage: any MiniID program that compiles must
// behave bit-identically on the cycle-accurate machine whether the machine
// interprets the graph IR or executes the compiled plan — same results,
// same error disposition, same cycle count, same statistics. A third run
// with the optional rewrite passes (constant folding, dead-arc
// elimination) must preserve the answer, though not the timing.
func FuzzCompiledEquivalence(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s, int64(3))
	}
	f.Add("def main(n) = (initial s <- 0 for i from 1 to n do new s <- s + i * i return s);", int64(6))
	f.Add("def f(x) = if x < 2 then 1 else x * f(x - 1);\ndef main(n) = f(n);", int64(5))
	f.Add("def main(n) = { a = array(n + 1); a[0] <- 2 + 3 * 4; a[0] + (7 - 7) };", int64(2))
	f.Fuzz(func(t *testing.T, src string, n int64) {
		n &= 7 // keep runs tiny: the machine is cycle-accurate
		prog, err := Compile(src)
		if err != nil {
			return
		}
		var ints []token.Value
		for range prog.Entry().Entries {
			ints = append(ints, token.Int(n))
		}
		args, err := EntryArgs(prog, ints)
		if err != nil {
			return
		}

		type run struct {
			ok   bool
			vals string
			sum  core.Summary
		}
		// The cycle budget is deliberately small: fuzz programs are tiny,
		// and a generated infinite recursion must exhaust it inside the
		// fuzzer's per-input deadline. Both dispatch modes share the budget,
		// so a timeout is itself compared for equivalence.
		exec := func(m *core.Machine) run {
			res, err := m.Run(200_000, args...)
			if err != nil {
				return run{}
			}
			return run{ok: true, vals: stringify(res), sum: m.Summarize()}
		}

		interp := exec(core.NewMachine(core.Config{PEs: 3, NetLatency: 3}, prog))
		compiled := exec(core.NewMachine(core.Config{PEs: 3, NetLatency: 3, Compiled: true}, prog))
		if interp != compiled {
			t.Fatalf("compiled dispatch diverged from interpreted:\n  interpreted %+v\n  compiled    %+v\nprogram:\n%s", interp, compiled, src)
		}

		// Rewrite passes change timing but never the answer (they refuse to
		// compile programs whose folded constants fault).
		plan, err := graph.Compile(prog, graph.WithConstantFolding(), graph.WithDeadArcElimination())
		if err != nil {
			return
		}
		optimized := exec(core.NewMachineWithPlan(core.Config{PEs: 3, NetLatency: 3}, plan))
		if interp.ok && (!optimized.ok || optimized.vals != interp.vals) {
			t.Fatalf("rewrite passes changed the answer: %+v -> %+v\nprogram:\n%s", interp, optimized, src)
		}
	})
}

func stringify(vals []token.Value) string {
	s := ""
	for _, v := range vals {
		s += v.String() + ";"
	}
	return s
}
