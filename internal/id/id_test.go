package id

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/token"
)

func runMain(t *testing.T, src string, args ...token.Value) token.Value {
	t.Helper()
	res, _, err := Run(src, args...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results: %v", len(res), res)
	}
	return res[0]
}

func TestConstantMain(t *testing.T) {
	if got := runMain(t, "def main() = 42;"); got.I != 42 {
		t.Fatalf("main() = %s", got)
	}
}

func TestArithmetic(t *testing.T) {
	src := "def main(a, b) = (a + b) * (a - b);"
	if got := runMain(t, src, token.Int(7), token.Int(3)); got.I != 40 {
		t.Fatalf("got %s", got)
	}
}

func TestPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"def main() = 2 + 3 * 4;", 14},
		{"def main() = (2 + 3) * 4;", 20},
		{"def main() = 10 - 4 - 3;", 3},
		{"def main() = 20 / 2 / 5;", 2},
		{"def main() = 17 % 5;", 2},
		{"def main() = -3 * -4;", 12},
		{"def main() = 2 * 3 + 4 * 5;", 26},
	}
	for _, c := range cases {
		if got := runMain(t, c.src); got.I != c.want {
			t.Errorf("%s = %s, want %d", c.src, got, c.want)
		}
	}
}

func TestComparisonAndLogic(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"def main() = 3 < 4;", true},
		{"def main() = 3 >= 4;", false},
		{"def main() = 3 == 3 and 4 != 5;", true},
		{"def main() = false or not false;", true},
		{"def main() = not (1 < 2);", false},
	}
	for _, c := range cases {
		if got := runMain(t, c.src); got.B != c.want {
			t.Errorf("%s = %s, want %t", c.src, got, c.want)
		}
	}
}

func TestBuiltins(t *testing.T) {
	if got := runMain(t, "def main(x) = sqrt(x);", token.Float(9)); got.F != 3 {
		t.Fatalf("sqrt(9) = %s", got)
	}
	if got := runMain(t, "def main(x) = abs(x);", token.Int(-5)); got.I != 5 {
		t.Fatalf("abs(-5) = %s", got)
	}
	if got := runMain(t, "def main(a, b) = min(a, b) + max(a, b);", token.Int(3), token.Int(8)); got.I != 11 {
		t.Fatalf("min+max = %s", got)
	}
	if got := runMain(t, "def main(x) = floor(x);", token.Float(2.9)); got.I != 2 {
		t.Fatalf("floor(2.9) = %s", got)
	}
}

func TestLetBlock(t *testing.T) {
	src := `def main(a) = { x = a * 2; y = x + 1; x * y };`
	if got := runMain(t, src, token.Int(3)); got.I != 42 {
		t.Fatalf("got %s, want 42", got)
	}
}

func TestLetShadowing(t *testing.T) {
	src := `def main(a) = { a = a + 1; a = a * 2; a };`
	if got := runMain(t, src, token.Int(3)); got.I != 8 {
		t.Fatalf("got %s, want 8", got)
	}
}

func TestUnusedBindingIsSunk(t *testing.T) {
	src := `def main(a) = { unused = a * 100; a + 1 };`
	if got := runMain(t, src, token.Int(3)); got.I != 4 {
		t.Fatalf("got %s, want 4", got)
	}
}

func TestConditional(t *testing.T) {
	src := `def main(x) = if x < 0 then -x else x;`
	if got := runMain(t, src, token.Int(-9)); got.I != 9 {
		t.Fatalf("|-9| = %s", got)
	}
	if got := runMain(t, src, token.Int(4)); got.I != 4 {
		t.Fatalf("|4| = %s", got)
	}
}

func TestConditionalConstantArms(t *testing.T) {
	src := `def main(x) = if x > 0 then 1 else -1;`
	if got := runMain(t, src, token.Int(5)); got.I != 1 {
		t.Fatalf("sign(5) = %s", got)
	}
	if got := runMain(t, src, token.Int(-5)); got.I != -1 {
		t.Fatalf("sign(-5) = %s", got)
	}
}

func TestConditionalStaticallyFolded(t *testing.T) {
	src := `def main(x) = if true then x else x / 0;`
	if got := runMain(t, src, token.Int(3)); got.I != 3 {
		t.Fatalf("got %s", got)
	}
}

func TestNestedConditional(t *testing.T) {
	src := `def main(x) = if x < 10 then (if x < 5 then 1 else 2) else 3;`
	for _, c := range []struct{ x, want int64 }{{3, 1}, {7, 2}, {12, 3}} {
		if got := runMain(t, src, token.Int(c.x)); got.I != c.want {
			t.Fatalf("main(%d) = %s, want %d", c.x, got, c.want)
		}
	}
}

func TestFunctionCall(t *testing.T) {
	src := `
def square(x) = x * x;
def main(a) = square(a) + square(a + 1);
`
	if got := runMain(t, src, token.Int(3)); got.I != 25 {
		t.Fatalf("got %s, want 25", got)
	}
}

func TestZeroArgFunction(t *testing.T) {
	src := `
def seven() = 7;
def main(a) = a + seven();
`
	if got := runMain(t, src, token.Int(3)); got.I != 10 {
		t.Fatalf("got %s", got)
	}
}

func TestRecursion(t *testing.T) {
	src := `
def fact(n) = if n <= 1 then 1 else n * fact(n - 1);
def main(n) = fact(n);
`
	if got := runMain(t, src, token.Int(10)); got.I != 3628800 {
		t.Fatalf("fact(10) = %s", got)
	}
}

func TestFibonacciRecursive(t *testing.T) {
	src := `
def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);
def main(n) = fib(n);
`
	if got := runMain(t, src, token.Int(15)); got.I != 610 {
		t.Fatalf("fib(15) = %s", got)
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `
def isEven(n) = if n == 0 then true else isOdd(n - 1);
def isOdd(n) = if n == 0 then false else isEven(n - 1);
def main(n) = isEven(n);
`
	if got := runMain(t, src, token.Int(10)); !got.B {
		t.Fatalf("isEven(10) = %s", got)
	}
	if got := runMain(t, src, token.Int(7)); got.B {
		t.Fatalf("isEven(7) = %s", got)
	}
}

func TestSimpleLoop(t *testing.T) {
	src := `
def main(n) =
  (initial s <- 0
   for i from 1 to n do
     new s <- s + i
   return s);
`
	for _, c := range []struct{ n, want int64 }{{0, 0}, {1, 1}, {10, 55}, {100, 5050}} {
		if got := runMain(t, src, token.Int(c.n)); got.I != c.want {
			t.Fatalf("sum(%d) = %s, want %d", c.n, got, c.want)
		}
	}
}

func TestLoopWithStep(t *testing.T) {
	src := `
def main(n) =
  (initial s <- 0
   for i from 0 to n by 2 do
     new s <- s + i
   return s);
`
	if got := runMain(t, src, token.Int(10)); got.I != 30 { // 0+2+4+6+8+10
		t.Fatalf("got %s, want 30", got)
	}
}

func TestLoopNegativeStep(t *testing.T) {
	src := `
def main(n) =
  (initial s <- 0
   for i from n to 1 by -1 do
     new s <- s + i
   return s);
`
	if got := runMain(t, src, token.Int(5)); got.I != 15 {
		t.Fatalf("got %s, want 15", got)
	}
}

func TestLoopReturnsIndexExpression(t *testing.T) {
	src := `
def main(n) =
  (initial s <- 1
   for i from 1 to n do
     new s <- s * 2
   return s + i
  );
`
	// after n iterations s = 2^n, and on exit i = n+1
	if got := runMain(t, src, token.Int(4)); got.I != 16+5 {
		t.Fatalf("got %s, want 21", got)
	}
}

func TestNestedLoops(t *testing.T) {
	src := `
def main(n) =
  (initial total <- 0
   for i from 1 to n do
     new total <- total + (initial s <- 0
                           for j from 1 to i do
                             new s <- s + j
                           return s)
   return total);
`
	// sum of triangular numbers T1..T5 = 1+3+6+10+15 = 35
	if got := runMain(t, src, token.Int(5)); got.I != 35 {
		t.Fatalf("got %s, want 35", got)
	}
}

func TestLoopCallingFunction(t *testing.T) {
	src := `
def square(x) = x * x;
def main(n) =
  (initial s <- 0
   for i from 1 to n do
     new s <- s + square(i)
   return s);
`
	if got := runMain(t, src, token.Int(5)); got.I != 55 {
		t.Fatalf("sum of squares = %s, want 55", got)
	}
}

func TestLoopWithConditionalBody(t *testing.T) {
	src := `
def main(n) =
  (initial s <- 0
   for i from 1 to n do
     new s <- if i % 2 == 0 then s + i else s
   return s);
`
	if got := runMain(t, src, token.Int(10)); got.I != 30 { // 2+4+6+8+10
		t.Fatalf("got %s, want 30", got)
	}
}

// TestTrapezoid compiles and runs the paper's Figure 2-2 program verbatim
// (modulo surface syntax), integrating f over [a,b] with n intervals.
func TestTrapezoid(t *testing.T) {
	src := `
def f(x) = x * x;
def main(a, b, n) =
  { h = (b - a) / n;
    (initial s <- (f(a) + f(b)) / 2;
             x <- a + h
     for i from 1 to n - 1 do
       new x <- x + h;
       new s <- s + f(x)
     return s) * h };
`
	got := runMain(t, src, token.Float(0), token.Float(1), token.Float(100))
	want := 1.0 / 3.0 // integral of x^2 on [0,1]
	if math.Abs(got.F-want) > 1e-4 {
		t.Fatalf("trapezoid = %v, want ~%v", got.F, want)
	}
	// trapezoid rule error for x^2 is h^2/6... check the exact composite value
	exact := 0.0
	h := 0.01
	ff := func(x float64) float64 { return x * x }
	exact = (ff(0) + ff(1)) / 2
	for i := 1; i <= 99; i++ {
		exact += ff(float64(i) * h)
	}
	exact *= h
	if math.Abs(got.F-exact) > 1e-12 {
		t.Fatalf("trapezoid = %.15f, exact composite = %.15f", got.F, exact)
	}
}

// TestTrapezoidStatementOrderIrrelevant checks the ID single-assignment
// semantics: within an iteration, plain x means the current value even when
// textually after `new x`.
func TestTrapezoidStatementOrderIrrelevant(t *testing.T) {
	a := `
def f(x) = 2 * x;
def main(a, b, n) =
  { h = (b - a) / n;
    (initial s <- (f(a) + f(b)) / 2; x <- a + h
     for i from 1 to n - 1 do
       new x <- x + h;
       new s <- s + f(x)
     return s) * h };
`
	b := `
def f(x) = 2 * x;
def main(a, b, n) =
  { h = (b - a) / n;
    (initial s <- (f(a) + f(b)) / 2; x <- a + h
     for i from 1 to n - 1 do
       new s <- s + f(x);
       new x <- x + h
     return s) * h };
`
	va := runMain(t, a, token.Float(0), token.Float(2), token.Float(10))
	vb := runMain(t, b, token.Float(0), token.Float(2), token.Float(10))
	if va.F != vb.F {
		t.Fatalf("statement order changed the answer: %v vs %v", va.F, vb.F)
	}
	if math.Abs(va.F-4) > 1e-12 { // integral of 2x over [0,2] = 4
		t.Fatalf("got %v, want 4", va.F)
	}
}

func TestArrayStoreAndSelect(t *testing.T) {
	src := `
def main(n) =
  { a = array(n);
    fill = (initial unused <- 0
            for i from 0 to n - 1 do
              a[i] <- i * i;
              new unused <- unused
            return 0);
    a[3] + fill };
`
	if got := runMain(t, src, token.Int(5)); got.I != 9 {
		t.Fatalf("a[3] = %s, want 9", got)
	}
}

func TestArrayProducerConsumer(t *testing.T) {
	// The consumer loop reads elements the producer loop writes; I-structure
	// semantics synchronize them with no barrier in between.
	src := `
def main(n) =
  { a = array(n);
    p = (initial z <- 0
         for i from 0 to n - 1 do
           a[i] <- i + 100;
           new z <- z
         return 0);
    (initial s <- p
     for i from 0 to n - 1 do
       new s <- s + a[i]
     return s) };
`
	// note: s starts at p (=0) only to keep the producer's result consumed
	if got := runMain(t, src, token.Int(4)); got.I != 406 {
		t.Fatalf("sum = %s, want 406", got)
	}
}

func TestArrayLen(t *testing.T) {
	src := `def main(n) = len(array(n * 2));`
	if got := runMain(t, src, token.Int(3)); got.I != 6 {
		t.Fatalf("len = %s", got)
	}
}

func TestLoopParallelismUnfolds(t *testing.T) {
	// Loop iterations that only depend on the index (element stores) can
	// overlap: the interpreter's ideal profile must show parallelism
	// greater than 1.
	src := `
def main(n) =
  { a = array(n);
    fill = (initial z <- 0
            for i from 0 to n - 1 do
              a[i] <- i * i * i + i;
              new z <- z
            return 0);
    a[0] + fill };
`
	_, it, err := Run(src, token.Int(50))
	if err != nil {
		t.Fatal(err)
	}
	if it.MaxParallelism() < 4 {
		t.Fatalf("expected unfolded loop parallelism, profile max = %d", it.MaxParallelism())
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"def main() = x;", "undefined variable"},
		{"def main() = f(1);", "undefined function"},
		{"def f(x) = x; def f(y) = y; def main() = 1;", "duplicate definition"},
		{"def f(x) = x; def main() = f(1, 2);", "takes 1 arguments"},
		{"def f(x) = x; def main() = f;", "used as a value"},
		{"def main(x, x) = x;", "duplicate parameter"},
		{"def notmain(x) = x;", "no main"},
		{"def main() = (initial s <- 0 for i from 1 to 3 do new t <- s return s);", "not a circulating loop variable"},
		{"def main() = (initial s <- 0; s <- 1 for i from 1 to 3 do new s <- s return s);", "duplicate initial binding"},
		{"def main() = (initial i <- 0 for i from 1 to 3 do new i <- i return i);", "shadows loop index"},
		{"def main() = sqrt(1, 2);", "takes 1 argument"},
		{"def main() = if 1 then 2 else 3;", "not boolean"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("%s: expected error containing %q, got none", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"def main() = ;",
		"def main() = 1",
		"def = 1;",
		"def main( = 1;",
		"def main() = (initial s <- 0 for i from 1 to 3 do return s);",
		"def main() = { x = 1; };",
		"def main() = 1 $ 2;",
		"def main() = if 1 then 2;",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lexAll("1 2.5 1e3 1.5e-2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].isFloat || toks[0].intVal != 1 {
		t.Fatalf("tok 0: %+v", toks[0])
	}
	if !toks[1].isFloat || toks[1].fltVal != 2.5 {
		t.Fatalf("tok 1: %+v", toks[1])
	}
	if !toks[2].isFloat || toks[2].fltVal != 1000 {
		t.Fatalf("tok 2: %+v", toks[2])
	}
	if !toks[3].isFloat || toks[3].fltVal != 0.015 {
		t.Fatalf("tok 3: %+v", toks[3])
	}
	// a number followed by a bare dot is a lex error
	if _, err := lexAll("7."); err == nil {
		t.Fatal("trailing dot must be rejected")
	}
}

func TestComments(t *testing.T) {
	src := `
# leading comment
def main(a) = a + 1; # trailing
`
	if got := runMain(t, src, token.Int(1)); got.I != 2 {
		t.Fatalf("got %s", got)
	}
}

func TestCompiledGraphShape(t *testing.T) {
	prog, err := Compile(`
def main(n) =
  (initial s <- 0
   for i from 1 to n do new s <- s + i return s);
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.CountOp(graph.OpL) < 2 || prog.CountOp(graph.OpD) < 2 ||
		prog.CountOp(graph.OpLInv) != 1 || prog.CountOp(graph.OpDInv) != 1 {
		t.Fatalf("loop operators missing from compiled graph: %v", prog.Stats())
	}
	if prog.CountOp(graph.OpGetContext) != 1 || prog.CountOp(graph.OpSwitch) < 2 {
		t.Fatalf("unexpected graph shape: %v", prog.Stats())
	}
	if len(prog.Blocks) != 2 {
		t.Fatalf("loop must compile to its own code block, got %d blocks", len(prog.Blocks))
	}
}

func TestCompilePlanMatchesInterpreter(t *testing.T) {
	src := `
def main(n) =
  (initial s <- 0
   for i from 1 to n do new s <- s + i * 3 return s + 2);
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompilePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := graph.NewInterp(prog).Run(token.Int(9))
	if err != nil {
		t.Fatal(err)
	}
	got, err := graph.NewInterpPlan(plan).Run(token.Int(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(want[0]) {
		t.Fatalf("CompilePlan run = %v, interpreter = %v", got, want)
	}
}

func TestLoopPropertySumMatchesClosedForm(t *testing.T) {
	src := `
def main(n) =
  (initial s <- 0
   for i from 1 to n do new s <- s + i return s);
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(raw uint8) bool {
		n := int64(raw % 60)
		it := graph.NewInterp(prog)
		res, err := it.Run(token.Int(n))
		if err != nil {
			return false
		}
		return res[0].I == n*(n+1)/2
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicCompilation(t *testing.T) {
	src := `
def f(x) = x + 1;
def main(n) = (initial s <- 0 for i from 1 to n do new s <- s + f(i) return s);
`
	a, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dump() != b.Dump() {
		t.Fatal("compilation must be deterministic")
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
def main(n) =
  (initial x <- n; c <- 0
   while x != 1 do
     new x <- if x % 2 == 0 then x / 2 else 3 * x + 1;
     new c <- c + 1
   return c);
`
	if got := runMain(t, src, token.Int(27)); got.I != 111 {
		t.Fatalf("collatz(27) = %s, want 111", got)
	}
	if got := runMain(t, src, token.Int(1)); got.I != 0 {
		t.Fatalf("collatz(1) = %s, want 0", got)
	}
}

func TestWhileLoopGCD(t *testing.T) {
	src := `
def main(a, b) =
  (initial x <- a; y <- b
   while y != 0 do
     new x <- y;
     new y <- x % y
   return x);
`
	for _, c := range []struct{ a, b, want int64 }{
		{48, 18, 6}, {17, 5, 1}, {100, 100, 100}, {7, 0, 7},
	} {
		if got := runMain(t, src, token.Int(c.a), token.Int(c.b)); got.I != c.want {
			t.Fatalf("gcd(%d,%d) = %s, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestWhileLoopZeroIterations(t *testing.T) {
	src := `
def main(n) =
  (initial x <- n
   while x > 100 do
     new x <- x - 1
   return x);
`
	if got := runMain(t, src, token.Int(5)); got.I != 5 {
		t.Fatalf("got %s, want 5 (zero iterations)", got)
	}
}

func TestWhileLoopNeedsBinding(t *testing.T) {
	_, err := Compile(`def main(n) = (while n > 0 do new n <- n - 1 return n);`)
	if err == nil || !strings.Contains(err.Error(), "initial binding") {
		t.Fatalf("want initial-binding error, got %v", err)
	}
}

func TestWhileNestedInFor(t *testing.T) {
	// total Collatz steps over several starting points
	src := `
def steps(n) =
  (initial x <- n; c <- 0
   while x != 1 do
     new x <- if x % 2 == 0 then x / 2 else 3 * x + 1;
     new c <- c + 1
   return c);
def main(n) =
  (initial total <- 0
   for i from 1 to n do
     new total <- total + steps(i)
   return total);
`
	// steps: 1->0 2->1 3->7 4->2 5->5 => 15
	if got := runMain(t, src, token.Int(5)); got.I != 15 {
		t.Fatalf("got %s, want 15", got)
	}
}

func TestAppendBasic(t *testing.T) {
	src := `
def main(n) =
  { a = array(n);
    f = (initial z <- 0
         for i from 0 to n - 1 do
           a[i] <- i * 10;
           new z <- z
         return 0);
    b = append(a, 2, 999);
    a[2] + b[2] + b[0] + f };
`
	// a[2]=20 unchanged, b[2]=999, b[0]=0 copied
	if got := runMain(t, src, token.Int(5)); got.I != 20+999+0 {
		t.Fatalf("append = %s, want 1019", got)
	}
}

func TestAppendIsPersistent(t *testing.T) {
	// Both versions coexist: the functional-array property of footnote 4.
	src := `
def sumOf(a, n) =
  (initial s <- 0
   for i from 0 to n - 1 do
     new s <- s + a[i]
   return s);
def main(n) =
  { a = array(n);
    f = (initial z <- 0
         for i from 0 to n - 1 do
           a[i] <- 1;
           new z <- z
         return 0);
    b = append(a, 0, 100);
    c = append(b, 1, 200);
    sumOf(a, n) * 1000000 + sumOf(b, n) * 1000 + sumOf(c, n) + f };
`
	// n=4: a sums 4; b = 100+1+1+1 = 103; c = 100+200+1+1 = 302
	if got := runMain(t, src, token.Int(4)); got.I != 4*1000000+103*1000+302 {
		t.Fatalf("persistence broken: %s", got)
	}
}

func TestAppendChainAcrossLoop(t *testing.T) {
	// Fold append through a loop: a counting-sort-ish histogram.
	src := `
def main(n) =
  { a0 = array(3);
    seed = (initial z <- 0
            for i from 0 to 2 do
              a0[i] <- 0;
              new z <- z
            return 0);
    h = (initial a <- a0
         for i from 1 to n do
           new a <- append(a, i % 3, a[i % 3] + 1)
         return a);
    h[0] * 100 + h[1] * 10 + h[2] + seed };
`
	// n=7: residues 1,2,0,1,2,0,1 -> counts 2,3,2
	if got := runMain(t, src, token.Int(7)); got.I != 2*100+3*10+2 {
		t.Fatalf("histogram = %s, want 232", got)
	}
}

func TestAppendUserDefinitionWins(t *testing.T) {
	src := `
def append(a, i, v) = i + v;
def main(n) = append(n, 1, 2);
`
	if got := runMain(t, src, token.Int(9)); got.I != 3 {
		t.Fatalf("user append must shadow the prelude: %s", got)
	}
}

func TestAppendOnMachines(t *testing.T) {
	src := `
def main(n) =
  { a = array(n);
    f = (initial z <- 0
         for i from 0 to n - 1 do
           a[i] <- i;
           new z <- z
         return 0);
    b = append(a, 1, 50);
    (initial s <- f
     for i from 0 to n - 1 do
       new s <- s + b[i]
     return s) };
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	args := []token.Value{token.Int(6)}
	want := runInterpO(prog, args)
	if !want.ok {
		t.Fatal("reference failed")
	}
	if got := runMachineO(prog, args); got != want {
		t.Fatalf("machine %+v, want %+v", got, want)
	}
	if got := runEmulatorO(prog, args); got != want {
		t.Fatalf("emulator %+v, want %+v", got, want)
	}
}
