package id

import (
	"testing"

	"repro/internal/workload"
)

// fuzzSeeds is the corpus both targets start from: the prelude's APPEND
// definition, the paper's Figure 2-2 trapezoid program (E5's workload),
// and a handful of adversarial fragments.
var fuzzSeeds = []string{
	preludeAppend,
	workload.TrapezoidID,
	workload.CollatzID,
	workload.ProducerConsumerID,
	"def main(n) = n;",
	"def f(x) = if x < 2 then x else f(x - 1);\ndef main(n) = f(n);",
	"def main(n) = (initial s <- 0 for i from 1 to n do new s <- s + i return s);",
	"def main(n) = { a = array(n); a[0] <- 1; a[0] };",
	"def main(", // truncated
	"def main(n) = (initial s <- 0 for i from", // truncated mid-loop
	"def def def",
	"def main(n) = x;",       // unbound variable
	"def main(n) = f(n);",    // unbound function
	"def main(n) = n + + n;", // malformed operator chain
	"def main(n) = \"str\" + n;",
	"def main(n) = 9999999999999999999999999;", // overflowing literal
	"def main(n) = n; def main(n) = n;",        // duplicate definition
	"def main(n, n) = n;",                      // duplicate parameter
	"def main(n) = (initial s <- 0 for i from 1 to n do new q <- s return s);",
	"\x00\xff\xfe",
	"def main(n) = if n then 1 else 2;", // non-bool condition
}

// FuzzParse asserts the lexer and parser never panic: any input either
// parses or returns an error.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return
		}
		if file == nil {
			t.Fatal("Parse returned nil file and nil error")
		}
	})
}

// FuzzCompile pushes every parseable input through the whole pipeline —
// prelude injection, type checking, graph compilation, optimization,
// validation — asserting malformed programs come back as errors, never
// panics.
func FuzzCompile(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src)
		if err != nil {
			return
		}
		if prog == nil {
			t.Fatal("Compile returned nil program and nil error")
		}
		// A program that compiled must also validate: Compile's contract
		// is that its output is executable.
		if verr := prog.Validate(); verr != nil {
			t.Fatalf("compiled program fails validation: %v\nsource:\n%s", verr, src)
		}
	})
}
