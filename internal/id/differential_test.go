package id

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/emulator"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/token"
)

// progGen generates random — but terminating and well-defined — MiniID
// programs for differential testing: the reference interpreter, the
// cycle-accurate machine, and the concurrent emulator must agree on every
// one of them.
type progGen struct {
	rng   *sim.RNG
	buf   strings.Builder
	depth int
}

// genExpr emits an integer-valued expression over the variables in scope.
func (g *progGen) genExpr(scope []string, depth int) string {
	if depth <= 0 || g.rng.Bool(0.25) {
		// leaf
		if len(scope) > 0 && g.rng.Bool(0.6) {
			return scope[g.rng.Intn(len(scope))]
		}
		if g.rng.Bool(0.15) {
			// float literal: all engines share graph.Eval, so float
			// arithmetic is bit-identical across substrates
			return fmt.Sprintf("%d.5", g.rng.Intn(8))
		}
		return fmt.Sprintf("%d", g.rng.Intn(16)-5)
	}
	if g.rng.Bool(0.1) {
		// division by a non-zero constant is always defined
		return fmt.Sprintf("(%s / %d)", g.genExpr(scope, depth-1), g.rng.Intn(5)+2)
	}
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.genExpr(scope, depth-1), g.genExpr(scope, depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.genExpr(scope, depth-1), g.genExpr(scope, depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.genExpr(scope, depth-1), g.genExpr(scope, depth-1))
	case 3:
		// modulo by a positive constant: always defined
		return fmt.Sprintf("(%s %% %d)", g.genExpr(scope, depth-1), g.rng.Intn(6)+2)
	case 4:
		return fmt.Sprintf("min(%s, %s)", g.genExpr(scope, depth-1), g.genExpr(scope, depth-1))
	case 5:
		return fmt.Sprintf("max(%s, %s)", g.genExpr(scope, depth-1), g.genExpr(scope, depth-1))
	case 6:
		cmp := []string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)]
		return fmt.Sprintf("(if %s %s %s then %s else %s)",
			g.genExpr(scope, depth-1), cmp, g.genExpr(scope, depth-1),
			g.genExpr(scope, depth-1), g.genExpr(scope, depth-1))
	default:
		return g.genLoop(scope, depth-1)
	}
}

// genLoop emits a counted loop with a small constant trip count or a
// while loop driven by a bounded counter.
func (g *progGen) genLoop(scope []string, depth int) string {
	acc := fmt.Sprintf("s%d", g.rng.Intn(1000))
	idx := fmt.Sprintf("i%d", g.rng.Intn(1000))
	inner := append(append([]string{}, scope...), acc, idx)
	if g.rng.Bool(0.3) {
		// bounded while loop: the counter strictly decreases
		return fmt.Sprintf(
			"(initial %s <- %s; %s <- %d while %s > 0 do new %s <- %s; new %s <- %s - 1 return %s)",
			acc, g.genExpr(scope, depth), idx, g.rng.Intn(6)+1,
			idx,
			acc, g.genExpr(inner, depth),
			idx, idx,
			acc)
	}
	lo := g.rng.Intn(4)
	hi := lo + g.rng.Intn(6)
	return fmt.Sprintf(
		"(initial %s <- %s for %s from %d to %d do new %s <- %s return %s)",
		acc, g.genExpr(scope, depth), idx, lo, hi,
		acc, g.genExpr(inner, depth),
		acc)
}

// genArrayProgram emits a program that fills an array with generated
// element expressions and folds it — random but single-assignment-safe.
func (g *progGen) genArrayProgram() string {
	n := g.rng.Intn(12) + 4
	elem := g.genExpr([]string{"i"}, 2)
	fold := g.genExpr([]string{"s", "a_i"}, 2)
	// a_i stands for a[i]; splice the fetch in
	fold = strings.ReplaceAll(fold, "a_i", "a[i]")
	return fmt.Sprintf(`
def main(u) =
  { a = array(%d);
    p = (initial z <- 0
         for i from 0 to %d do
           a[i] <- %s;
           new z <- z
         return 0);
    s = (initial s <- u
         for i from 0 to %d do
           new s <- %s
         return s);
    s + p * 0 };
`, n, n-1, elem, n-1, fold)
}

func (g *progGen) genProgram() string {
	if g.rng.Bool(0.3) {
		return g.genArrayProgram()
	}
	var b strings.Builder
	helpers := g.rng.Intn(3)
	names := []string{}
	for h := 0; h < helpers; h++ {
		name := fmt.Sprintf("h%d", h)
		fmt.Fprintf(&b, "def %s(x) = %s;\n", name, g.genExpr([]string{"x"}, 2))
		names = append(names, name)
	}
	body := g.genExpr([]string{"u", "v"}, 3)
	// sprinkle helper calls over some leaves
	for _, name := range names {
		if g.rng.Bool(0.7) {
			body = fmt.Sprintf("(%s + %s(u))", body, name)
		}
	}
	fmt.Fprintf(&b, "def main(u, v) = %s;\n", body)
	return b.String()
}

// outcome captures success-with-values or failure for comparison.
type outcome struct {
	ok   bool
	vals string
}

func runInterpO(prog *graph.Program, args []token.Value) outcome {
	it := graph.NewInterp(prog)
	it.SetMaxSteps(5_000_000)
	res, err := it.Run(args...)
	if err != nil {
		return outcome{}
	}
	return outcome{ok: true, vals: fmt.Sprint(res)}
}

func runMachineO(prog *graph.Program, args []token.Value) outcome {
	m := core.NewMachine(core.Config{PEs: 3, NetLatency: 3}, prog)
	res, err := m.Run(50_000_000, args...)
	if err != nil {
		return outcome{}
	}
	return outcome{ok: true, vals: fmt.Sprint(res)}
}

func runEmulatorO(prog *graph.Program, args []token.Value) outcome {
	f := emulator.New(emulator.Config{Dim: 2}, prog)
	res, err := f.Run(args...)
	if err != nil {
		return outcome{}
	}
	return outcome{ok: true, vals: fmt.Sprint(res)}
}

// TestDifferentialRandomPrograms generates random programs and requires
// the three execution substrates to agree exactly — the strongest
// correctness statement in the repository.
func TestDifferentialRandomPrograms(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 15
	}
	for seed := uint64(1); seed <= uint64(iterations); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := &progGen{rng: sim.NewRNG(seed * 7919)}
			src := g.genProgram()
			prog, err := Compile(src)
			if err != nil {
				t.Fatalf("generated program failed to compile: %v\n%s", err, src)
			}
			var args []token.Value
			nargs := len(prog.Entry().Entries)
			for i := 0; i < nargs; i++ {
				args = append(args, token.Int(int64(g.rng.Intn(10))))
			}
			ref := runInterpO(prog, args)
			mach := runMachineO(prog, args)
			emu := runEmulatorO(prog, args)
			if ref != mach {
				t.Fatalf("interpreter %+v != machine %+v\nprogram:\n%s", ref, mach, src)
			}
			if ref != emu {
				t.Fatalf("interpreter %+v != emulator %+v\nprogram:\n%s", ref, emu, src)
			}
			if !ref.ok {
				t.Logf("seed %d: all substrates agree the program faults (acceptable)", seed)
			}
		})
	}
}

// TestDifferentialWorkloads runs every named workload through all three
// substrates at several machine sizes.
func TestDifferentialWorkloads(t *testing.T) {
	cases := []struct {
		name string
		src  string
		args []token.Value
	}{
		{"gcd-while", `
def main(a, b) =
  (initial x <- a; y <- b
   while y != 0 do
     new x <- y;
     new y <- x % y
   return x);
`, []token.Value{token.Int(1071), token.Int(462)}},
		{"mergesort", workloadMergeSort, []token.Value{token.Int(10)}},
		{"ackermann-ish", `
def ack(m, n) =
  if m == 0 then n + 1
  else if n == 0 then ack(m - 1, 1)
  else ack(m - 1, ack(m, n - 1));
def main(m, n) = ack(m, n);
`, []token.Value{token.Int(2), token.Int(3)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := Compile(c.src)
			if err != nil {
				t.Fatal(err)
			}
			ref := runInterpO(prog, c.args)
			if !ref.ok {
				t.Fatalf("reference run failed")
			}
			if mach := runMachineO(prog, c.args); mach != ref {
				t.Fatalf("machine %+v != interpreter %+v", mach, ref)
			}
			if emu := runEmulatorO(prog, c.args); emu != ref {
				t.Fatalf("emulator %+v != interpreter %+v", emu, ref)
			}
		})
	}
}

// workloadMergeSort mirrors workload.MergeSortID (duplicated here to avoid
// an import cycle between id's tests and workload, which imports id's
// sibling packages).
const workloadMergeSort = `
def copyRange(a, off, m) =
  { b = array(m);
    f = (initial z <- 0
         for q from 0 to m - 1 do
           b[q] <- a[off + q];
           new z <- z
         return 0);
    b };
def pickX(x, y, i, j, nx, ny) =
  if j >= ny then true
  else if i >= nx then false
  else x[i] <= y[j];
def merge(x, nx, y, ny) =
  { out = array(nx + ny);
    f = (initial i <- 0; j <- 0
         while i + j < nx + ny do
           out[i + j] <- if pickX(x, y, i, j, nx, ny) then x[i] else y[j];
           new i <- if pickX(x, y, i, j, nx, ny) then i + 1 else i;
           new j <- if pickX(x, y, i, j, nx, ny) then j else j + 1
         return 0);
    out };
def msort(a, n) =
  if n <= 1 then a
  else { h = n / 2;
         merge(msort(copyRange(a, 0, h), h), h,
               msort(copyRange(a, h, n - h), n - h), n - h) };
def main(n) =
  { a = array(n);
    f = (initial z <- 0
         for q from 0 to n - 1 do
           a[q] <- q * 37 % 101;
           new z <- z
         return 0);
    s = msort(a, n);
    (initial c <- f
     for q from 0 to n - 1 do
       new c <- c + s[q] * (q + 1)
     return c) };
`
