package id

import (
	"testing"

	"repro/internal/direct"
	"repro/internal/graph"
	"repro/internal/token"
)

// FuzzDirectEquivalence is the differential fuzz target for the
// direct-execution oracle backend: any MiniID program that compiles must
// agree with the reference interpreter on success/failure disposition,
// every result bit, and the firing count (the firing multiset of a
// dataflow graph is schedule-invariant, so the direct backend's
// depth-first schedule and the interpreter's breadth-first waves fire
// exactly the same activity instances).
func FuzzDirectEquivalence(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s, int64(3))
	}
	f.Add("def main(n) = (initial s <- 0 for i from 1 to n do new s <- s + i * i return s);", int64(6))
	f.Add("def f(x) = if x < 2 then 1 else x * f(x - 1);\ndef main(n) = f(n);", int64(5))
	f.Add("def main(n) = { a = array(n + 1); a[0] <- 2 + 3 * 4; a[0] + (7 - 7) };", int64(2))
	f.Add("def main(n) = 1 / (n - n);", int64(3))
	f.Fuzz(func(t *testing.T, src string, n int64) {
		n &= 7 // keep generated loops and recursions tiny
		prog, err := Compile(src)
		if err != nil {
			return
		}
		var ints []token.Value
		for range prog.Entry().Entries {
			ints = append(ints, token.Int(n))
		}
		args, err := EntryArgs(prog, ints)
		if err != nil {
			return
		}

		// Both executors share the firing budget, so a generated infinite
		// recursion times out on both and the dispositions still agree.
		const budget = 200_000
		it := graph.NewInterp(prog)
		it.SetMaxSteps(budget)
		want, ierr := it.Run(args...)

		x := direct.New(prog)
		x.SetMaxSteps(budget)
		got, derr := x.Run(args...)

		if (ierr == nil) != (derr == nil) {
			t.Fatalf("error dispositions diverged: interp %v, direct %v\nprogram:\n%s", ierr, derr, src)
		}
		if ierr != nil {
			return
		}
		if stringify(got) != stringify(want) {
			t.Fatalf("results diverged: direct %s, interp %s\nprogram:\n%s", stringify(got), stringify(want), src)
		}
		if x.Fired() != it.Fired() {
			t.Fatalf("firing counts diverged: direct %d, interp %d\nprogram:\n%s", x.Fired(), it.Fired(), src)
		}
	})
}
