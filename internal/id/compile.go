package id

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/token"
)

// Compile parses and compiles MiniID source into a validated, optimized
// dataflow program. The program's entry block is the function named main.
func Compile(src string) (*graph.Program, error) {
	prog, err := CompileRaw(src)
	if err != nil {
		return nil, err
	}
	graph.Optimize(prog)
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("minid: optimizer broke the program: %w", err)
	}
	return prog, nil
}

// CompilePlan compiles MiniID source all the way to an executable plan:
// parse, graph construction, the graph optimizer, then graph.Compile with
// constant folding and dead-arc elimination. The returned plan drives
// graph.NewInterpPlan and core.NewMachineWithPlan without any further
// per-construction analysis.
func CompilePlan(src string) (*graph.CompiledGraph, error) {
	prog, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return graph.Compile(prog, graph.WithConstantFolding(), graph.WithDeadArcElimination())
}

// CompileRaw compiles without the optimizer — the graphs read exactly as
// generated, and the optimizer's effect can be measured against them.
func CompileRaw(src string) (*graph.Program, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileFile(f)
}

// CompileFile compiles a parsed file.
func CompileFile(f *File) (*graph.Program, error) {
	if err := injectPrelude(f); err != nil {
		return nil, err
	}
	c := &compiler{
		b:     graph.NewBuilder("minid"),
		funcs: map[string]*funcInfo{},
	}
	return c.compile(f)
}

// funcInfo records one top-level definition's code block.
type funcInfo struct {
	def     *Def
	bb      *graph.BlockBuilder
	nargs   int  // entry count, including an implicit trigger for 0-param defs
	trigger bool // true when the first entry is an implicit trigger
}

type compiler struct {
	b      *graph.Builder
	funcs  map[string]*funcInfo
	blocks []*graph.BlockBuilder // every block, including loop blocks
}

// newBlock creates a code block and tracks it for the final sink pass.
func (c *compiler) newBlock(name string, numArgs int) *graph.BlockBuilder {
	bb := c.b.NewBlock(name, numArgs)
	c.blocks = append(c.blocks, bb)
	return bb
}

func (c *compiler) compile(f *File) (*graph.Program, error) {
	// Pass 1: declare all blocks so calls (including recursive and mutual)
	// can resolve. main becomes block 0, the program entry.
	order := make([]*Def, 0, len(f.Defs))
	var main *Def
	for _, d := range f.Defs {
		if _, dup := c.funcs[d.Name]; dup {
			return nil, errf(d.At, "duplicate definition of %q", d.Name)
		}
		c.funcs[d.Name] = nil // reserve name
		if d.Name == "main" {
			main = d
		} else {
			order = append(order, d)
		}
	}
	if main == nil {
		return nil, errf(Pos{1, 1}, "no main function defined")
	}
	order = append([]*Def{main}, order...)
	for _, d := range order {
		nargs := len(d.Params)
		trigger := false
		if nargs == 0 {
			nargs, trigger = 1, true
		}
		c.funcs[d.Name] = &funcInfo{
			def:     d,
			bb:      c.newBlock(d.Name, nargs),
			nargs:   nargs,
			trigger: trigger,
		}
	}
	// Pass 2: compile bodies.
	for _, d := range order {
		if err := c.compileDef(c.funcs[d.Name]); err != nil {
			return nil, err
		}
	}
	c.addSinks()
	return c.b.Finish()
}

func (c *compiler) compileDef(fi *funcInfo) error {
	bb := fi.bb
	env := &funcEnv{c: c, bb: bb, fi: fi, names: map[string]value{}}
	if !fi.trigger {
		for j, p := range fi.def.Params {
			if _, dup := env.names[p]; dup {
				return errf(fi.def.At, "duplicate parameter %q", p)
			}
			env.names[p] = srcValue(src{stmt: bb.Entry(j)})
		}
	}
	v, err := c.compileExpr(env, fi.def.Body)
	if err != nil {
		return err
	}
	ret := bb.Op(graph.OpReturn, "return "+fi.def.Name)
	c.wire(env, v, ret, 0)
	return nil
}

// addSinks gives every dangling result a consumer so validation passes:
// unused parameters, unused let bindings, and loop/call results whose value
// is discarded all flow into an explicit SINK.
func (c *compiler) addSinks() {
	for _, bb := range c.blocks {
		var sink uint16
		haveSink := false
		getSink := func() uint16 {
			if !haveSink {
				sink = bb.Op(graph.OpSink, "discard")
				haveSink = true
			}
			return sink
		}
		n := bb.NumInstrs()
		for s := 0; s < n; s++ {
			in := bb.Instr(uint16(s))
			switch in.Op {
			case graph.OpNop, graph.OpStore, graph.OpSink, graph.OpReturn,
				graph.OpLInv, graph.OpSendArg, graph.OpL, graph.OpSwitch:
				continue
			case graph.OpGetContext:
				if len(in.ReturnDests) == 0 {
					bb.ConnectReturn(uint16(s), getSink(), 0)
				}
				if len(in.Dests) == 0 {
					bb.Connect(uint16(s), getSink(), 0)
				}
			default:
				if len(in.Dests) == 0 {
					bb.Connect(uint16(s), getSink(), 0)
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Values and sources

type srcKind uint8

const (
	srcNormal  srcKind = iota
	srcFalse           // the false branch of a switch
	srcCallRet         // the return destinations of an OpGetContext
)

// src names a producer output within one code block.
type src struct {
	stmt uint16
	kind srcKind
}

// value is the result of compiling an expression: either a compile-time
// constant or a graph source.
type value struct {
	isConst bool
	c       token.Value
	s       src
}

func constValue(v token.Value) value { return value{isConst: true, c: v} }
func srcValue(s src) value           { return value{s: s} }

// ---------------------------------------------------------------------------
// Environments

// env resolves variable references during compilation. Every environment is
// attached to one code block; lookups never cross a block boundary except
// through loopEnv's import machinery.
type env interface {
	// lookup resolves a name to a value.
	lookup(name string, at Pos) (value, error)
	// trigger returns a source that produces exactly one token per
	// activation of the current region, used to gate constants.
	trigger() src
	// blockBuilder returns the block instructions are emitted into.
	blockBuilder() *graph.BlockBuilder
	// comp returns the compiler.
	comp() *compiler
}

// funcEnv is the top-level environment of a function body.
type funcEnv struct {
	c     *compiler
	bb    *graph.BlockBuilder
	fi    *funcInfo
	names map[string]value
}

func (e *funcEnv) lookup(name string, at Pos) (value, error) {
	if v, ok := e.names[name]; ok {
		return v, nil
	}
	if _, isFunc := e.c.funcs[name]; isFunc {
		return value{}, errf(at, "function %q used as a value", name)
	}
	return value{}, errf(at, "undefined variable %q", name)
}

func (e *funcEnv) trigger() src                      { return src{stmt: e.bb.Entry(0)} }
func (e *funcEnv) blockBuilder() *graph.BlockBuilder { return e.bb }
func (e *funcEnv) comp() *compiler                   { return e.c }

// letEnv adds sequential bindings within the same block.
type letEnv struct {
	parent env
	names  map[string]value
}

func (e *letEnv) lookup(name string, at Pos) (value, error) {
	if v, ok := e.names[name]; ok {
		return v, nil
	}
	return e.parent.lookup(name, at)
}

func (e *letEnv) trigger() src                      { return e.parent.trigger() }
func (e *letEnv) blockBuilder() *graph.BlockBuilder { return e.parent.blockBuilder() }
func (e *letEnv) comp() *compiler                   { return e.parent.comp() }

// ifGate shares the per-variable gating switches between the two branch
// environments of one conditional.
type ifGate struct {
	parent env
	cond   src // materialized condition
	gates  map[string]uint16
	trig   uint16
	hasT   bool
}

// gateVar returns the switch routing the named parent value by the
// condition, creating it on first use.
func (g *ifGate) gateVar(name string, parentSrc src) uint16 {
	if s, ok := g.gates[name]; ok {
		return s
	}
	bb := g.parent.blockBuilder()
	sw := bb.Op(graph.OpSwitch, "gate "+name)
	g.parent.comp().wireSrc(bb, parentSrc, sw, 0)
	g.parent.comp().wireSrc(bb, g.cond, sw, 1)
	g.gates[name] = sw
	return sw
}

// gateTrigger returns a switch gating the parent trigger.
func (g *ifGate) gateTrigger() uint16 {
	if !g.hasT {
		bb := g.parent.blockBuilder()
		sw := bb.Op(graph.OpSwitch, "gate trigger")
		g.parent.comp().wireSrc(bb, g.parent.trigger(), sw, 0)
		g.parent.comp().wireSrc(bb, g.cond, sw, 1)
		g.trig = sw
		g.hasT = true
	}
	return g.trig
}

// ifEnv is one branch of a conditional: variable references are routed
// through gating switches so only the taken branch receives tokens.
type ifEnv struct {
	gate   *ifGate
	branch bool // true for the then-arm
}

func (e *ifEnv) lookup(name string, at Pos) (value, error) {
	v, err := e.gate.parent.lookup(name, at)
	if err != nil {
		return value{}, err
	}
	if v.isConst {
		return v, nil // constants are gated at materialization time
	}
	sw := e.gate.gateVar(name, v.s)
	if e.branch {
		return srcValue(src{stmt: sw}), nil
	}
	return srcValue(src{stmt: sw, kind: srcFalse}), nil
}

func (e *ifEnv) trigger() src {
	sw := e.gate.gateTrigger()
	if e.branch {
		return src{stmt: sw}
	}
	return src{stmt: sw, kind: srcFalse}
}

func (e *ifEnv) blockBuilder() *graph.BlockBuilder { return e.gate.parent.blockBuilder() }
func (e *ifEnv) comp() *compiler                   { return e.gate.parent.comp() }

// ---------------------------------------------------------------------------
// Loop compilation

// loopVar is one circulating variable of a loop: entry identity, switch,
// and D instruction in the loop block.
type loopVar struct {
	entry  uint16
	sw     uint16
	d      uint16
	newSrc *value // value for the next iteration; nil means unchanged
}

type loopPhase uint8

const (
	phaseRaw   loopPhase = iota // predicate: raw entry values
	phaseTrue                   // body: switch true outputs
	phaseFalse                  // return expression: switch false outputs
)

// loopCompiler builds one loop code block plus its caller-side linkage.
type loopCompiler struct {
	c         *compiler
	callerEnv env
	callerBB  *graph.BlockBuilder
	loopBB    *graph.BlockBuilder
	getc      uint16
	vars      map[string]*loopVar
	order     []string
	predSrc   *src
}

// addVar creates the circulating machinery for one variable whose initial
// value is init (a caller-block value), returning its loopVar.
func (lc *loopCompiler) addVar(name string, init value) *loopVar {
	argIndex := uint8(len(lc.order))
	// Loop block side: entry, switch, D back to the entry.
	entry := lc.loopBB.Emit(graph.Instruction{Op: graph.OpIdentity, Comment: "circ " + name})
	lc.loopBB.AddEntry(entry)
	sw := lc.loopBB.Op(graph.OpSwitch, "switch "+name)
	d := lc.loopBB.Op(graph.OpD, "D "+name)
	lc.loopBB.Connect(entry, sw, 0)
	lc.loopBB.Connect(d, entry, 0)
	if lc.predSrc != nil {
		lc.c.wireSrc(lc.loopBB, *lc.predSrc, sw, 1)
	}
	// Caller side: L feeds the initial value into the loop context.
	l := lc.callerBB.Emit(graph.Instruction{
		Op: graph.OpL, Target: lc.loopBB.ID(), ArgIndex: argIndex,
		Comment: "L " + name,
	})
	lc.callerBB.Connect(lc.getc, l, 0)
	lc.c.wire(lc.callerEnv, init, l, 1)
	v := &loopVar{entry: entry, sw: sw, d: d}
	lc.vars[name] = v
	lc.order = append(lc.order, name)
	return v
}

// setPredicate wires the compiled predicate to every existing switch and
// remembers it for variables imported later.
func (lc *loopCompiler) setPredicate(p src) {
	lc.predSrc = &p
	for _, name := range lc.order {
		lc.c.wireSrc(lc.loopBB, p, lc.vars[name].sw, 1)
	}
}

// importName makes an enclosing-scope variable available inside the loop by
// circulating it as a loop constant. Compile-time constants pass through
// unchanged.
func (lc *loopCompiler) importName(name string, at Pos) (*loopVar, value, error) {
	if v, ok := lc.vars[name]; ok {
		return v, value{}, nil
	}
	outer, err := lc.callerEnv.lookup(name, at)
	if err != nil {
		return nil, value{}, err
	}
	if outer.isConst {
		return nil, outer, nil
	}
	return lc.addVar(name, outer), value{}, nil
}

// loopEnv resolves names inside the loop block for one phase.
type loopEnv struct {
	lc    *loopCompiler
	phase loopPhase
}

func (e *loopEnv) varSrc(v *loopVar) src {
	switch e.phase {
	case phaseRaw:
		return src{stmt: v.entry}
	case phaseTrue:
		return src{stmt: v.sw}
	default:
		return src{stmt: v.sw, kind: srcFalse}
	}
}

func (e *loopEnv) lookup(name string, at Pos) (value, error) {
	if v, ok := e.lc.vars[name]; ok {
		return srcValue(e.varSrc(v)), nil
	}
	v, cv, err := e.lc.importName(name, at)
	if err != nil {
		return value{}, err
	}
	if v == nil {
		return cv, nil // compile-time constant
	}
	return srcValue(e.varSrc(v)), nil
}

// trigger anchors constants to the loop's first circulating variable (the
// index for counted loops), which produces exactly one token per phase per
// iteration.
func (e *loopEnv) trigger() src {
	return e.varSrc(e.lc.vars[e.lc.order[0]])
}

func (e *loopEnv) blockBuilder() *graph.BlockBuilder { return e.lc.loopBB }
func (e *loopEnv) comp() *compiler                   { return e.lc.c }

// ---------------------------------------------------------------------------
// Wiring helpers

// wireSrc connects a source to a consumer port within block bb.
func (c *compiler) wireSrc(bb *graph.BlockBuilder, s src, to uint16, port uint8) {
	switch s.kind {
	case srcNormal:
		bb.Connect(s.stmt, to, port)
	case srcFalse:
		bb.ConnectFalse(s.stmt, to, port)
	case srcCallRet:
		bb.ConnectReturn(s.stmt, to, port)
	}
}

// wire connects a value (materializing constants) to a consumer port.
func (c *compiler) wire(e env, v value, to uint16, port uint8) {
	s := c.materialize(e, v)
	c.wireSrc(e.blockBuilder(), s, to, port)
}

// materialize turns a value into a source, emitting a CONST generator for
// compile-time constants, gated by the environment's trigger.
func (c *compiler) materialize(e env, v value) src {
	if !v.isConst {
		return v.s
	}
	bb := e.blockBuilder()
	k := bb.OpLit(graph.OpConst, v.c, 1, "const "+v.c.String())
	c.wireSrc(bb, e.trigger(), k, 0)
	return src{stmt: k}
}

// ---------------------------------------------------------------------------
// Expression compilation

var builtinUnary = map[string]graph.Opcode{
	"sqrt":  graph.OpSqrt,
	"abs":   graph.OpAbs,
	"floor": graph.OpFloor,
	"len":   graph.OpLen,
}

var builtinBinary = map[string]graph.Opcode{
	"min": graph.OpMin,
	"max": graph.OpMax,
}

var binaryOps = map[string]graph.Opcode{
	"+": graph.OpAdd, "-": graph.OpSub, "*": graph.OpMul, "/": graph.OpDiv,
	"%": graph.OpMod, "<": graph.OpLT, "<=": graph.OpLE, ">": graph.OpGT,
	">=": graph.OpGE, "==": graph.OpEQ, "!=": graph.OpNE,
	"and": graph.OpAnd, "or": graph.OpOr,
}

func (c *compiler) compileExpr(e env, x Expr) (value, error) {
	switch n := x.(type) {
	case *NumberLit:
		if n.IsFloat {
			return constValue(token.Float(n.Float)), nil
		}
		return constValue(token.Int(n.Int)), nil
	case *BoolLit:
		return constValue(token.Bool(n.Value)), nil
	case *VarRef:
		return e.lookup(n.Name, n.At)
	case *Unary:
		return c.compileUnary(e, n)
	case *Binary:
		return c.compileBinary(e, n)
	case *Call:
		return c.compileCall(e, n)
	case *If:
		return c.compileIf(e, n)
	case *Index:
		return c.compileIndex(e, n)
	case *ArrayAlloc:
		return c.compileAlloc(e, n)
	case *Let:
		return c.compileLet(e, n)
	case *Loop:
		return c.compileLoop(e, n)
	default:
		return value{}, errf(x.Pos(), "internal: unknown expression %T", x)
	}
}

func (c *compiler) compileUnary(e env, n *Unary) (value, error) {
	v, err := c.compileExpr(e, n.X)
	if err != nil {
		return value{}, err
	}
	op := graph.OpNeg
	if n.Op == "not" {
		op = graph.OpNot
	}
	if v.isConst {
		folded, err := graph.Eval(op, v.c, token.Nil())
		if err != nil {
			return value{}, errf(n.At, "%v", err)
		}
		return constValue(folded), nil
	}
	bb := e.blockBuilder()
	s := bb.Op(op, n.Op)
	c.wireSrc(bb, v.s, s, 0)
	return srcValue(src{stmt: s}), nil
}

func (c *compiler) compileBinary(e env, n *Binary) (value, error) {
	op, ok := binaryOps[n.Op]
	if !ok {
		return value{}, errf(n.At, "internal: unknown operator %q", n.Op)
	}
	l, err := c.compileExpr(e, n.L)
	if err != nil {
		return value{}, err
	}
	r, err := c.compileExpr(e, n.R)
	if err != nil {
		return value{}, err
	}
	return c.emitBinary(e, n.At, op, l, r, n.Op)
}

// emitBinary folds constants and uses the literal operand slot when one
// side is constant.
func (c *compiler) emitBinary(e env, at Pos, op graph.Opcode, l, r value, comment string) (value, error) {
	if l.isConst && r.isConst {
		folded, err := graph.Eval(op, l.c, r.c)
		if err != nil {
			return value{}, errf(at, "%v", err)
		}
		return constValue(folded), nil
	}
	bb := e.blockBuilder()
	switch {
	case r.isConst:
		s := bb.OpLit(op, r.c, 1, comment)
		c.wireSrc(bb, l.s, s, 0)
		return srcValue(src{stmt: s}), nil
	case l.isConst:
		s := bb.OpLit(op, l.c, 0, comment)
		c.wireSrc(bb, r.s, s, 1)
		return srcValue(src{stmt: s}), nil
	default:
		s := bb.Op(op, comment)
		c.wireSrc(bb, l.s, s, 0)
		c.wireSrc(bb, r.s, s, 1)
		return srcValue(src{stmt: s}), nil
	}
}

func (c *compiler) compileCall(e env, n *Call) (value, error) {
	if op, ok := builtinUnary[n.Name]; ok {
		if len(n.Args) != 1 {
			return value{}, errf(n.At, "%s takes 1 argument, got %d", n.Name, len(n.Args))
		}
		v, err := c.compileExpr(e, n.Args[0])
		if err != nil {
			return value{}, err
		}
		if v.isConst {
			folded, err := graph.Eval(op, v.c, token.Nil())
			if err != nil {
				return value{}, errf(n.At, "%v", err)
			}
			return constValue(folded), nil
		}
		bb := e.blockBuilder()
		s := bb.Op(op, n.Name)
		c.wireSrc(bb, v.s, s, 0)
		return srcValue(src{stmt: s}), nil
	}
	if op, ok := builtinBinary[n.Name]; ok {
		if len(n.Args) != 2 {
			return value{}, errf(n.At, "%s takes 2 arguments, got %d", n.Name, len(n.Args))
		}
		l, err := c.compileExpr(e, n.Args[0])
		if err != nil {
			return value{}, err
		}
		r, err := c.compileExpr(e, n.Args[1])
		if err != nil {
			return value{}, err
		}
		return c.emitBinary(e, n.At, op, l, r, n.Name)
	}
	fi, ok := c.funcs[n.Name]
	if !ok || fi == nil {
		return value{}, errf(n.At, "undefined function %q", n.Name)
	}
	wantArgs := len(fi.def.Params)
	if len(n.Args) != wantArgs {
		return value{}, errf(n.At, "%s takes %d arguments, got %d", n.Name, wantArgs, len(n.Args))
	}
	bb := e.blockBuilder()
	getc := bb.Emit(graph.Instruction{
		Op: graph.OpGetContext, Target: fi.bb.ID(), Comment: "call " + n.Name,
	})
	c.wireSrc(bb, e.trigger(), getc, 0)
	args := n.Args
	if fi.trigger {
		// zero-parameter function: send the trigger as the hidden argument
		send := bb.Emit(graph.Instruction{Op: graph.OpSendArg, Target: fi.bb.ID(), ArgIndex: 0})
		bb.Connect(getc, send, 0)
		c.wireSrc(bb, e.trigger(), send, 1)
	}
	for j, a := range args {
		av, err := c.compileExpr(e, a)
		if err != nil {
			return value{}, err
		}
		send := bb.Emit(graph.Instruction{
			Op: graph.OpSendArg, Target: fi.bb.ID(), ArgIndex: uint8(j),
			Comment: fmt.Sprintf("arg %d of %s", j, n.Name),
		})
		bb.Connect(getc, send, 0)
		c.wire(e, av, send, 1)
	}
	return srcValue(src{stmt: getc, kind: srcCallRet}), nil
}

func (c *compiler) compileIf(e env, n *If) (value, error) {
	cond, err := c.compileExpr(e, n.Cond)
	if err != nil {
		return value{}, err
	}
	if cond.isConst {
		// static condition: compile only the taken arm
		b, err := cond.c.AsBool()
		if err != nil {
			return value{}, errf(n.At, "condition is not boolean: %v", err)
		}
		if b {
			return c.compileExpr(e, n.Then)
		}
		return c.compileExpr(e, n.Else)
	}
	gate := &ifGate{parent: e, cond: cond.s, gates: map[string]uint16{}}
	thenEnv := &ifEnv{gate: gate, branch: true}
	elseEnv := &ifEnv{gate: gate, branch: false}
	tv, err := c.compileExpr(thenEnv, n.Then)
	if err != nil {
		return value{}, err
	}
	ev, err := c.compileExpr(elseEnv, n.Else)
	if err != nil {
		return value{}, err
	}
	bb := e.blockBuilder()
	merge := bb.Op(graph.OpIdentity, "if-merge")
	c.wire(thenEnv, tv, merge, 0)
	c.wire(elseEnv, ev, merge, 0)
	return srcValue(src{stmt: merge}), nil
}

func (c *compiler) compileIndex(e env, n *Index) (value, error) {
	seq, err := c.compileExpr(e, n.Seq)
	if err != nil {
		return value{}, err
	}
	idx, err := c.compileExpr(e, n.Idx)
	if err != nil {
		return value{}, err
	}
	addr, err := c.emitBinary(e, n.At, graph.OpIAddr, seq, idx, "addr")
	if err != nil {
		return value{}, err
	}
	bb := e.blockBuilder()
	fetch := bb.Op(graph.OpFetch, "fetch")
	c.wire(e, addr, fetch, 0)
	// FETCH responses are addressed to a single destination; interpose an
	// identity so the selected value can fan out.
	id := bb.Op(graph.OpIdentity, "fetched")
	bb.Connect(fetch, id, 0)
	return srcValue(src{stmt: id}), nil
}

func (c *compiler) compileAlloc(e env, n *ArrayAlloc) (value, error) {
	size, err := c.compileExpr(e, n.Size)
	if err != nil {
		return value{}, err
	}
	bb := e.blockBuilder()
	alloc := bb.Op(graph.OpAllocate, "array")
	c.wire(e, size, alloc, 0)
	id := bb.Op(graph.OpIdentity, "ref")
	bb.Connect(alloc, id, 0)
	return srcValue(src{stmt: id}), nil
}

// compileStore emits IADDR + STORE for an element assignment.
func (c *compiler) compileStore(e env, at Pos, seqE, idxE, valE Expr) error {
	seq, err := c.compileExpr(e, seqE)
	if err != nil {
		return err
	}
	idx, err := c.compileExpr(e, idxE)
	if err != nil {
		return err
	}
	addr, err := c.emitBinary(e, at, graph.OpIAddr, seq, idx, "addr")
	if err != nil {
		return err
	}
	val, err := c.compileExpr(e, valE)
	if err != nil {
		return err
	}
	bb := e.blockBuilder()
	store := bb.Op(graph.OpStore, "store")
	c.wire(e, addr, store, 0)
	c.wire(e, val, store, 1)
	return nil
}

func (c *compiler) compileLet(e env, n *Let) (value, error) {
	cur := env(e)
	for _, b := range n.Bindings {
		if b.IsStore {
			if err := c.compileStore(cur, b.At, b.Seq, b.Idx, b.Value); err != nil {
				return value{}, err
			}
			continue
		}
		v, err := c.compileExpr(cur, b.Value)
		if err != nil {
			return value{}, err
		}
		cur = &letEnv{parent: cur, names: map[string]value{b.Name: v}}
	}
	return c.compileExpr(cur, n.Body)
}

func (c *compiler) compileLoop(e env, n *Loop) (value, error) {
	bb := e.blockBuilder()
	loopBB := c.newBlock(fmt.Sprintf("loop@%s", n.At), 0)
	lc := &loopCompiler{
		c:         c,
		callerEnv: e,
		callerBB:  bb,
		loopBB:    loopBB,
		vars:      map[string]*loopVar{},
	}
	isWhile := n.Index == ""
	if isWhile && len(n.Initial) == 0 {
		return value{}, errf(n.At, "while loop needs at least one initial binding")
	}
	lc.getc = bb.Emit(graph.Instruction{
		Op: graph.OpGetContext, Target: loopBB.ID(), Comment: "enter loop",
	})
	c.wireSrc(bb, e.trigger(), lc.getc, 0)

	// Evaluate initial bindings and bounds in the caller, with bindings
	// visible to later bindings and to the bounds.
	initEnv := env(e)
	var err error
	if !isWhile {
		from, err := c.compileExpr(initEnv, n.From)
		if err != nil {
			return value{}, err
		}
		lc.addVar(n.Index, from)
	}
	for _, b := range n.Initial {
		if b.IsStore {
			return value{}, errf(b.At, "element store not allowed in initial section")
		}
		if b.Name == n.Index {
			return value{}, errf(b.At, "initial binding shadows loop index %q", b.Name)
		}
		v, err := c.compileExpr(initEnv, b.Value)
		if err != nil {
			return value{}, err
		}
		if _, dup := lc.vars[b.Name]; dup {
			return value{}, errf(b.At, "duplicate initial binding %q", b.Name)
		}
		lc.addVar(b.Name, v)
		initEnv = &letEnv{parent: initEnv, names: map[string]value{b.Name: v}}
	}

	// Counted-loop machinery: step, direction, and bound.
	step := value{isConst: true, c: token.Int(1)}
	var stepVar *loopVar
	cmpOp := graph.OpLE
	if !isWhile {
		if n.By != nil {
			step, err = c.compileExpr(initEnv, n.By)
			if err != nil {
				return value{}, err
			}
		}
		if step.isConst {
			if f, err := step.c.AsFloat(); err == nil && f < 0 {
				cmpOp = graph.OpGE
			}
		}
		if !step.isConst {
			stepVar = lc.addVar("#step", step)
		}
	}

	// Predicate, evaluated on raw entry values each iteration: i <= bound
	// for counted loops, the condition expression for while loops.
	rawEnv := &loopEnv{lc: lc, phase: phaseRaw}
	var pred value
	if isWhile {
		pred, err = c.compileExpr(rawEnv, n.Cond)
		if err != nil {
			return value{}, err
		}
	} else {
		to, err := c.compileExpr(initEnv, n.To)
		if err != nil {
			return value{}, err
		}
		var toVal value
		if to.isConst {
			toVal = to
		} else {
			toVar := lc.addVar("#to", to)
			toVal = srcValue(src{stmt: toVar.entry})
		}
		iRaw := srcValue(src{stmt: lc.vars[n.Index].entry})
		pred, err = c.emitBinary(rawEnv, n.At, cmpOp, iRaw, toVal, "loop predicate")
		if err != nil {
			return value{}, err
		}
	}
	predSrc := c.materialize(rawEnv, pred)
	lc.setPredicate(predSrc)

	// Body: compute next-iteration values under switch-true.
	bodyEnv := &loopEnv{lc: lc, phase: phaseTrue}
	for _, st := range n.Body {
		if st.IsStore {
			if err := c.compileStore(bodyEnv, st.At, st.Seq, st.Idx, st.Value); err != nil {
				return value{}, err
			}
			continue
		}
		v, ok := lc.vars[st.Name]
		if !ok {
			return value{}, errf(st.At, "new %s: %q is not a circulating loop variable (bind it in the initial section)", st.Name, st.Name)
		}
		if v.newSrc != nil {
			return value{}, errf(st.At, "duplicate new binding for %q", st.Name)
		}
		nv, err := c.compileExpr(bodyEnv, st.Value)
		if err != nil {
			return value{}, err
		}
		nv2 := nv
		v.newSrc = &nv2
	}
	// The index advances by the step (counted loops only).
	if !isWhile {
		iTrue := srcValue(src{stmt: lc.vars[n.Index].sw})
		var stepVal value
		if stepVar != nil {
			stepVal = srcValue(src{stmt: stepVar.sw})
		} else {
			stepVal = step
		}
		nextI, err := c.emitBinary(bodyEnv, n.At, graph.OpAdd, iTrue, stepVal, "advance index")
		if err != nil {
			return value{}, err
		}
		lc.vars[n.Index].newSrc = &nextI
	}

	// Wire every D input: the new value where one exists, the unchanged
	// switch-true output otherwise.
	for _, name := range lc.order {
		v := lc.vars[name]
		if v.newSrc != nil {
			c.wire(bodyEnv, *v.newSrc, v.d, 0)
		} else {
			lc.loopBB.Connect(v.sw, v.d, 0)
		}
	}

	// Return: compiled under switch-false, normalized by D⁻¹, exits via
	// L⁻¹ to the caller-side return destinations recorded by GETC.
	retEnv := &loopEnv{lc: lc, phase: phaseFalse}
	rv, err := c.compileExpr(retEnv, n.Return)
	if err != nil {
		return value{}, err
	}
	dinv := lc.loopBB.Op(graph.OpDInv, "D-1")
	linv := lc.loopBB.Op(graph.OpLInv, "L-1")
	c.wire(retEnv, rv, dinv, 0)
	lc.loopBB.Connect(dinv, linv, 0)

	return srcValue(src{stmt: lc.getc, kind: srcCallRet}), nil
}
