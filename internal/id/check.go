package id

import (
	"fmt"
	"sort"
)

// Check performs static type analysis on a parsed file and returns the
// type errors it can prove without running the program: boolean/numeric
// confusion, indexing non-arrays, incompatible conditional arms, and
// call-site/definition disagreements.
//
// The system is a monomorphic unification checker over the small lattice
//
//	Unknown ⊑ {Num, Bool, Array};  Int ⊑ Num;  Float ⊑ Num
//
// matching MiniID's dynamic semantics: ints and floats mix freely (the
// numeric tower), booleans and references never coerce. Each function gets
// one signature shared by every call site, so polymorphic reuse of a
// helper at incompatible types is reported rather than specialized —
// faithful to the single compiled code block each def becomes.
//
// Check is advisory: the engines enforce the same rules dynamically, and
// Compile does not require a clean Check. cmd/idc -check surfaces it.
func Check(f *File) []*Error {
	c := &checker{
		funcs: map[string]*signature{},
	}
	if err := injectPrelude(f); err != nil {
		return []*Error{err.(*Error)}
	}
	// one shared signature per definition
	for _, d := range f.Defs {
		if _, dup := c.funcs[d.Name]; dup {
			continue // compile reports duplicates; avoid double noise
		}
		sig := &signature{result: c.fresh()}
		for range d.Params {
			sig.params = append(sig.params, c.fresh())
		}
		c.funcs[d.Name] = sig
	}
	for _, d := range f.Defs {
		sig := c.funcs[d.Name]
		env := map[string]*tnode{}
		for i, p := range d.Params {
			env[p] = sig.params[i]
		}
		got := c.expr(d.Body, env)
		c.unify(d.Body.Pos(), got, sig.result, "function result")
	}
	sort.Slice(c.errs, func(i, j int) bool {
		a, b := c.errs[i].At, c.errs[j].At
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return c.errs
}

// kind is a resolved type constructor.
type kind uint8

const (
	kUnknown kind = iota
	kNum          // int or float, not yet determined
	kInt
	kFloat
	kBool
	kArray
)

func (k kind) String() string {
	switch k {
	case kUnknown:
		return "unknown"
	case kNum:
		return "number"
	case kInt:
		return "int"
	case kFloat:
		return "float"
	case kBool:
		return "bool"
	case kArray:
		return "array"
	default:
		return "?"
	}
}

// numeric reports whether the kind is in the Num sub-lattice.
func (k kind) numeric() bool { return k == kNum || k == kInt || k == kFloat }

// tnode is a union-find type variable.
type tnode struct {
	parent *tnode
	k      kind
}

type signature struct {
	params []*tnode
	result *tnode
}

type checker struct {
	funcs map[string]*signature
	errs  []*Error
}

func (c *checker) fresh() *tnode { return &tnode{k: kUnknown} }

func (c *checker) of(k kind) *tnode { return &tnode{k: k} }

func find(t *tnode) *tnode {
	for t.parent != nil {
		if t.parent.parent != nil {
			t.parent = t.parent.parent
		}
		t = t.parent
	}
	return t
}

// merge computes the meet of two resolved kinds; ok=false means they are
// incompatible.
func merge(a, b kind) (kind, bool) {
	if a == b {
		return a, true
	}
	if a == kUnknown {
		return b, true
	}
	if b == kUnknown {
		return a, true
	}
	if a.numeric() && b.numeric() {
		// Int/Float under Num: mixing keeps the tower's float contagion at
		// run time; statically the meet of int and float is "number"
		if a == kNum {
			return b, true
		}
		if b == kNum {
			return a, true
		}
		return kNum, true
	}
	return kUnknown, false
}

func (c *checker) errf2(at Pos, format string, args ...interface{}) {
	c.errs = append(c.errs, errf(at, format, args...))
}

// unify constrains two type nodes to agree, reporting a located error when
// they cannot.
func (c *checker) unify(at Pos, a, b *tnode, context string) {
	ra, rb := find(a), find(b)
	if ra == rb {
		return
	}
	k, ok := merge(ra.k, rb.k)
	if !ok {
		c.errf2(at, "type error in %s: %s vs %s", context, ra.k, rb.k)
		return
	}
	ra.parent = rb
	rb.k = k
}

// require constrains a node to a kind.
func (c *checker) require(at Pos, t *tnode, k kind, context string) {
	c.unify(at, t, c.of(k), context)
}

// expr infers the type of e in env.
func (c *checker) expr(e Expr, env map[string]*tnode) *tnode {
	switch n := e.(type) {
	case *NumberLit:
		if n.IsFloat {
			return c.of(kFloat)
		}
		return c.of(kInt)
	case *BoolLit:
		return c.of(kBool)
	case *VarRef:
		if t, ok := env[n.Name]; ok {
			return t
		}
		// compile reports undefined variables; stay quiet here
		return c.fresh()
	case *Unary:
		t := c.expr(n.X, env)
		if n.Op == "not" {
			c.require(n.At, t, kBool, "operand of not")
			return c.of(kBool)
		}
		c.require(n.At, t, kNum, "operand of unary minus")
		return t
	case *Binary:
		return c.binary(n, env)
	case *Call:
		return c.call(n, env)
	case *If:
		cond := c.expr(n.Cond, env)
		c.require(n.Cond.Pos(), cond, kBool, "conditional test")
		a := c.expr(n.Then, env)
		b := c.expr(n.Else, env)
		c.unify(n.At, a, b, "conditional arms")
		return a
	case *Index:
		seq := c.expr(n.Seq, env)
		c.require(n.Seq.Pos(), seq, kArray, "indexed expression")
		idx := c.expr(n.Idx, env)
		c.require(n.Idx.Pos(), idx, kNum, "index")
		return c.fresh() // element types are dynamic
	case *ArrayAlloc:
		size := c.expr(n.Size, env)
		c.require(n.Size.Pos(), size, kNum, "array size")
		return c.of(kArray)
	case *Let:
		scope := env
		for _, b := range n.Bindings {
			if b.IsStore {
				c.store(b.Seq, b.Idx, b.Value, scope)
				continue
			}
			t := c.expr(b.Value, scope)
			scope = extend(scope, b.Name, t)
		}
		return c.expr(n.Body, scope)
	case *Loop:
		return c.loop(n, env)
	default:
		return c.fresh()
	}
}

func extend(env map[string]*tnode, name string, t *tnode) map[string]*tnode {
	out := make(map[string]*tnode, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	out[name] = t
	return out
}

func (c *checker) store(seq, idx, val Expr, env map[string]*tnode) {
	s := c.expr(seq, env)
	c.require(seq.Pos(), s, kArray, "element store target")
	i := c.expr(idx, env)
	c.require(idx.Pos(), i, kNum, "element store index")
	c.expr(val, env)
}

func (c *checker) binary(n *Binary, env map[string]*tnode) *tnode {
	l := c.expr(n.L, env)
	r := c.expr(n.R, env)
	switch n.Op {
	case "and", "or":
		c.require(n.At, l, kBool, "operand of "+n.Op)
		c.require(n.At, r, kBool, "operand of "+n.Op)
		return c.of(kBool)
	case "<", "<=", ">", ">=":
		c.require(n.At, l, kNum, "operand of "+n.Op)
		c.require(n.At, r, kNum, "operand of "+n.Op)
		return c.of(kBool)
	case "==", "!=":
		c.unify(n.At, l, r, "operands of "+n.Op)
		return c.of(kBool)
	default: // arithmetic
		c.require(n.At, l, kNum, "operand of "+n.Op)
		c.require(n.At, r, kNum, "operand of "+n.Op)
		// result: float contagion is dynamic; statically join to Num
		// unless both sides resolved identically
		lk, rk := find(l).k, find(r).k
		if lk == rk && (lk == kInt || lk == kFloat) {
			return c.of(lk)
		}
		return c.of(kNum)
	}
}

var builtinChecks = map[string]struct {
	arity  int
	arg    kind
	result kind
}{
	"sqrt":  {1, kNum, kFloat},
	"abs":   {1, kNum, kNum},
	"floor": {1, kNum, kInt},
	"len":   {1, kArray, kInt},
	"min":   {2, kNum, kNum},
	"max":   {2, kNum, kNum},
}

func (c *checker) call(n *Call, env map[string]*tnode) *tnode {
	if bc, ok := builtinChecks[n.Name]; ok {
		if _, shadowed := c.funcs[n.Name]; !shadowed {
			if len(n.Args) == bc.arity {
				for _, a := range n.Args {
					t := c.expr(a, env)
					c.require(a.Pos(), t, bc.arg, "argument of "+n.Name)
				}
			}
			return c.of(bc.result)
		}
	}
	sig, ok := c.funcs[n.Name]
	if !ok || len(sig.params) != len(n.Args) {
		// compile reports unknown functions and arity; avoid double noise
		for _, a := range n.Args {
			c.expr(a, env)
		}
		return c.fresh()
	}
	for i, a := range n.Args {
		t := c.expr(a, env)
		c.unify(a.Pos(), t, sig.params[i], fmt.Sprintf("argument %d of %s", i+1, n.Name))
	}
	return sig.result
}

func (c *checker) loop(n *Loop, env map[string]*tnode) *tnode {
	scope := env
	var circ []string
	if n.Index != "" {
		it := c.of(kNum)
		from := c.expr(n.From, scope)
		c.require(n.From.Pos(), from, kNum, "loop lower bound")
		to := c.expr(n.To, scope)
		c.require(n.To.Pos(), to, kNum, "loop upper bound")
		if n.By != nil {
			by := c.expr(n.By, scope)
			c.require(n.By.Pos(), by, kNum, "loop step")
		}
		scope = extend(scope, n.Index, it)
		circ = append(circ, n.Index)
	}
	for _, b := range n.Initial {
		t := c.expr(b.Value, scope)
		scope = extend(scope, b.Name, t)
		circ = append(circ, b.Name)
	}
	if n.Cond != nil {
		t := c.expr(n.Cond, scope)
		c.require(n.Cond.Pos(), t, kBool, "while condition")
	}
	for _, st := range n.Body {
		if st.IsStore {
			c.store(st.Seq, st.Idx, st.Value, scope)
			continue
		}
		t := c.expr(st.Value, scope)
		if cur, ok := scope[st.Name]; ok {
			c.unify(st.At, t, cur, fmt.Sprintf("new %s", st.Name))
		}
	}
	_ = circ
	return c.expr(n.Return, scope)
}
