// Package id implements MiniID, a compiler for the subset of the Irvine
// Dataflow (ID) language used by the paper, targeting the tagged-token
// dataflow graph IR of internal/graph.
//
// The surface syntax covers the paper's Figure 2-2 example verbatim:
//
//	def trapezoid(a, b, n, h) =
//	  (initial s <- (f(a) + f(b))/2;
//	           x <- a + h
//	   for i from 1 to n-1 do
//	     new x <- x + h;
//	     new s <- s + f(x)
//	   return s) * h;
//
// plus top-level function definitions (recursion allowed), conditional
// expressions, let blocks, and I-structure arrays with element selection
// (compiled to FETCH) and element assignment (compiled to STORE), per
// Section 2.2.4.
package id

import "fmt"

// Pos is a source position for error reporting.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Node is any AST node.
type Node interface {
	Pos() Pos
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Def is a top-level function definition.
type Def struct {
	At     Pos
	Name   string
	Params []string
	Body   Expr
}

// Pos returns the definition's source position.
func (d *Def) Pos() Pos { return d.At }

// File is a parsed compilation unit.
type File struct {
	Defs []*Def
}

// NumberLit is an integer or floating literal.
type NumberLit struct {
	At      Pos
	IsFloat bool
	Int     int64
	Float   float64
}

// BoolLit is true or false.
type BoolLit struct {
	At    Pos
	Value bool
}

// VarRef references a variable in scope.
type VarRef struct {
	At   Pos
	Name string
}

// Unary is -e or not e.
type Unary struct {
	At Pos
	Op string // "-", "not"
	X  Expr
}

// Binary is a binary operator application.
type Binary struct {
	At   Pos
	Op   string // + - * / % < <= > >= == != and or
	L, R Expr
}

// Call applies a named top-level function or builtin.
type Call struct {
	At   Pos
	Name string
	Args []Expr
}

// If is a conditional expression; both arms are required.
type If struct {
	At         Pos
	Cond       Expr
	Then, Else Expr
}

// Index is e1[e2], an I-structure SELECT (compiled to FETCH).
type Index struct {
	At  Pos
	Seq Expr
	Idx Expr
}

// ArrayAlloc is array(n): allocate an I-structure of n elements.
type ArrayAlloc struct {
	At   Pos
	Size Expr
}

// LetBinding is one binding or element-store statement in a let block.
type LetBinding struct {
	At   Pos
	Name string // for x = e
	// Element store a[i] <- e when IsStore
	IsStore  bool
	Seq, Idx Expr // for stores
	Value    Expr
}

// Let is { b1; b2; ...; result }.
type Let struct {
	At       Pos
	Bindings []*LetBinding
	Body     Expr
}

// LoopStmt is one loop-body statement: new x <- e, or a[i] <- e.
type LoopStmt struct {
	At      Pos
	Name    string // for new x <- e
	IsStore bool
	Seq     Expr // for stores
	Idx     Expr
	Value   Expr
}

// Loop is the ID loop expression, in its counted form
//
//	(initial v1 <- e1; ... for i from lo to hi [by step] do stmts return e)
//
// or its predicate form (Index empty, Cond set)
//
//	(initial v1 <- e1; ... while cond do stmts return e)
type Loop struct {
	At       Pos
	Initial  []*LetBinding // name <- expr bindings (never stores)
	Index    string        // empty for while loops
	From, To Expr
	By       Expr // nil means 1
	Cond     Expr // while-loop predicate
	Body     []*LoopStmt
	Return   Expr
}

func (n *NumberLit) Pos() Pos  { return n.At }
func (n *BoolLit) Pos() Pos    { return n.At }
func (n *VarRef) Pos() Pos     { return n.At }
func (n *Unary) Pos() Pos      { return n.At }
func (n *Binary) Pos() Pos     { return n.At }
func (n *Call) Pos() Pos       { return n.At }
func (n *If) Pos() Pos         { return n.At }
func (n *Index) Pos() Pos      { return n.At }
func (n *ArrayAlloc) Pos() Pos { return n.At }
func (n *Let) Pos() Pos        { return n.At }
func (n *Loop) Pos() Pos       { return n.At }

func (*NumberLit) exprNode()  {}
func (*BoolLit) exprNode()    {}
func (*VarRef) exprNode()     {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Call) exprNode()       {}
func (*If) exprNode()         {}
func (*Index) exprNode()      {}
func (*ArrayAlloc) exprNode() {}
func (*Let) exprNode()        {}
func (*Loop) exprNode()       {}

// Error is a compile-time diagnostic with a source position.
type Error struct {
	At  Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("minid:%s: %s", e.At, e.Msg) }

func errf(at Pos, format string, args ...interface{}) *Error {
	return &Error{At: at, Msg: fmt.Sprintf(format, args...)}
}
