// Package simtest provides the shared golden-file harness used by the
// per-machine regression tests. Each baseline machine captures a snapshot
// of its deterministic observables (simulated cycle counts, retired
// instructions, utilization, traffic counters) into a testdata/golden.json
// file; the kernel refactors that ported every machine onto sim.Engine are
// required to keep those numbers bit-identical, exactly as
// internal/core/golden_test.go pins the TTDA.
package simtest

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Update is the shared -update flag: rerun the golden tests with
//
//	go test ./internal/machines/... -update
//
// to regenerate every golden file from the current simulator. Regeneration
// is a deliberate act — a diff in a golden file is a change to simulated
// machine behaviour and must be justified in review.
var Update = flag.Bool("update", false, "rewrite testdata golden files from the current simulator")

// Check compares got against the golden file at path (creating it under
// -update). The snapshot type T must round-trip through JSON exactly:
// uint64 counters, int64 gauges, strings, and floats produced
// deterministically.
func Check[T any](t *testing.T, path string, got T) {
	t.Helper()
	if *Update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var want T
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	// Round-trip got through JSON so in-memory-only precision (float64
	// intermediates) compares on equal footing with the decoded file.
	gotBuf, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	var gotRT T
	if err := json.Unmarshal(gotBuf, &gotRT); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, gotRT) {
		t.Errorf("diverged from golden %s:\n  golden:  %s\n  current: %s", path, mustJSON(want), mustJSON(gotRT))
	}
}

func mustJSON(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		return "marshal error: " + err.Error()
	}
	return string(b)
}
