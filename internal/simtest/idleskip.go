package simtest

import "repro/internal/sim"

// IdleSkipper wraps an event-aware component and suppresses Step calls on
// cycles the component's own NextEvent answer declares idle. It is the
// test harness for the second half of the NextEvent honesty contract:
//
//	if NextEvent(now) > now, then Step(now) must be a no-op.
//
// Registering the wrapper in a component's place under exhaustive
// per-cycle stepping and comparing every observable against an unwrapped
// run proves the contract directly — if any suppressed Step would have
// done work, cycle counts or statistics diverge. Skipped counts how many
// Steps were suppressed, so tests can assert the property was actually
// exercised rather than vacuously true.
//
// The wrapper also implements sim.Waker and attaches itself to Wakeable
// components, because the contract is two-sided: mutation entry points
// (Request, Send) settle lazily-accounted statistics through their waker
// before changing state, and a harness without a waker would sample
// jumped-over cycles at the post-mutation level. Wrap a component only
// after any pre-run requests are queued, exactly as an engine attaches
// before its run, not before setup.
type IdleSkipper struct {
	Inner   sim.EventAware
	Skipped uint64
	now     sim.Cycle
}

// NewIdleSkipper wraps inner, attaching itself as the waker when inner is
// Wakeable.
func NewIdleSkipper(inner sim.EventAware) *IdleSkipper {
	s := &IdleSkipper{Inner: inner}
	if w, ok := inner.(sim.Wakeable); ok {
		w.Attach(s)
	}
	return s
}

// Step forwards to the inner component only on cycles its NextEvent answer
// admits it can act.
func (s *IdleSkipper) Step(now sim.Cycle) {
	s.now = now
	if s.Inner.NextEvent(now) > now {
		s.Skipped++
		return
	}
	s.Inner.Step(now)
}

// NextEvent forwards the inner answer.
func (s *IdleSkipper) NextEvent(now sim.Cycle) sim.Cycle {
	return s.Inner.NextEvent(now)
}

// Settle settles the inner component's lazily-accounted statistics. Tests
// driving a plain Scheduler (which never settles) call this after the run,
// mirroring what sim.Engine.Run does on exit.
func (s *IdleSkipper) Settle(through sim.Cycle) {
	if st, ok := s.Inner.(sim.Settler); ok {
		st.Settle(through)
	}
}

// Now reports the wrapper's clock: the cycle of its last Step. During a
// tick this matches sim.Engine.Now for callers registered after the
// wrapped component (the common Request direction).
func (s *IdleSkipper) Now() sim.Cycle { return s.now }

// SlotNow reports the cycle the component last held its step slot, exactly
// as the engine's staleness rule defines it: s.now is the wrapper's last
// Step cycle, whether or not the inner Step was suppressed.
func (s *IdleSkipper) SlotNow(c sim.Component) sim.Cycle { return s.now }

// Wake settles the inner component through its step-slot boundary — the
// engine's pre-mutation settlement rule. The wake time itself is
// irrelevant here: exhaustive stepping polls NextEvent every cycle anyway.
// If the wrapper already ran this cycle, its slot for this cycle is spent
// and jumped-over samples settle through now+1; if it has not yet run,
// s.now is the previous cycle and settlement stops one cycle earlier,
// leaving the current cycle to the upcoming Step.
func (s *IdleSkipper) Wake(c sim.Component, at sim.Cycle) { s.Settle(s.now + 1) }

var (
	_ sim.EventAware = (*IdleSkipper)(nil)
	_ sim.Waker      = (*IdleSkipper)(nil)
)
