package simtest

import (
	"testing"

	"repro/internal/sim"
)

// pulse is an honest EventAware component: it does work every `period`
// cycles, reports exactly those cycles from NextEvent, and is a no-op in
// between — the contract IdleSkipper exists to exercise.
type pulse struct {
	period sim.Cycle
	work   uint64
	steps  uint64
}

func (p *pulse) Step(now sim.Cycle) {
	p.steps++
	if now%p.period == 0 {
		p.work++
	}
}

func (p *pulse) NextEvent(now sim.Cycle) sim.Cycle {
	if now%p.period == 0 {
		return now
	}
	return now + (p.period - now%p.period)
}

// liar claims to be idle until the far future but mutates state on every
// Step — the NextEvent-honesty violation IdleSkipper is built to expose.
type liar struct {
	work uint64
}

func (l *liar) Step(now sim.Cycle) { l.work++ }

func (l *liar) NextEvent(now sim.Cycle) sim.Cycle { return now + 1000 }

// settler records Settle calls (sim.Settler) and its attached waker
// (sim.Wakeable).
type settler struct {
	pulse
	settledThrough sim.Cycle
	waker          sim.Waker
}

func (s *settler) Settle(through sim.Cycle) { s.settledThrough = through }
func (s *settler) Attach(w sim.Waker)       { s.waker = w }

// drive steps c exhaustively for cycles [0, n).
func drive(c sim.Component, n sim.Cycle) {
	for now := sim.Cycle(0); now < n; now++ {
		c.Step(now)
	}
}

func TestIdleSkipperSuppressesDeclaredIdleSteps(t *testing.T) {
	inner := &pulse{period: 5}
	sk := NewIdleSkipper(inner)
	drive(sk, 100)

	// The inner component acts on cycles 0, 5, ..., 95: 20 of 100.
	if inner.steps != 20 {
		t.Fatalf("inner stepped %d times, want 20", inner.steps)
	}
	if inner.work != 20 {
		t.Fatalf("inner did %d units of work, want 20", inner.work)
	}
	if sk.Skipped != 80 {
		t.Fatalf("Skipped = %d, want 80", sk.Skipped)
	}
}

func TestIdleSkipperMatchesUnwrappedRunForHonestComponent(t *testing.T) {
	plain := &pulse{period: 7}
	drive(plain, 200)

	wrapped := &pulse{period: 7}
	sk := NewIdleSkipper(wrapped)
	drive(sk, 200)

	// Every observable of an honest component is preserved; only the
	// wasted no-op Steps disappear.
	if wrapped.work != plain.work {
		t.Fatalf("wrapped work %d != plain work %d", wrapped.work, plain.work)
	}
	if sk.Skipped == 0 {
		t.Fatal("vacuous run: nothing was skipped")
	}
	if wrapped.steps+sk.Skipped != plain.steps {
		t.Fatalf("steps(%d) + skipped(%d) != exhaustive steps(%d)",
			wrapped.steps, sk.Skipped, plain.steps)
	}
}

// TestIdleSkipperExposesDishonestComponent is the failure mode: feed the
// wrapper a component whose NextEvent lies about idleness. The wrapper
// believes the declaration, suppresses the Steps, and the component's
// observables diverge from an unwrapped run — exactly the divergence
// that makes the honesty property tests fail instead of silently
// passing over a broken NextEvent.
func TestIdleSkipperExposesDishonestComponent(t *testing.T) {
	plain := &liar{}
	drive(plain, 100)
	if plain.work != 100 {
		t.Fatalf("unwrapped liar did %d units of work, want 100", plain.work)
	}

	wrapped := &liar{}
	sk := NewIdleSkipper(wrapped)
	drive(sk, 100)

	// NextEvent(now) = now+1000 on every cycle, so the wrapper suppresses
	// every Step and all the liar's work is lost.
	if wrapped.work != 0 {
		t.Fatalf("wrapper executed %d Steps of a component that declared itself idle", wrapped.work)
	}
	if sk.Skipped != 100 {
		t.Fatalf("Skipped = %d, want 100", sk.Skipped)
	}
	if wrapped.work == plain.work {
		t.Fatal("dishonesty was not observable: wrapped and unwrapped runs agree")
	}
}

func TestIdleSkipperForwardsNextEvent(t *testing.T) {
	sk := NewIdleSkipper(&pulse{period: 4})
	if got := sk.NextEvent(3); got != 4 {
		t.Fatalf("NextEvent(3) = %d, want 4", got)
	}
	if got := sk.NextEvent(8); got != 8 {
		t.Fatalf("NextEvent(8) = %d, want 8", got)
	}
}

func TestIdleSkipperAttachesAsWakerAndSettles(t *testing.T) {
	inner := &settler{pulse: pulse{period: 3}}
	sk := NewIdleSkipper(inner)
	if inner.waker != sim.Waker(sk) {
		t.Fatal("NewIdleSkipper did not attach itself to a Wakeable inner")
	}

	drive(sk, 10) // wrapper clock now 9
	if got := sk.Now(); got != 9 {
		t.Fatalf("Now() = %d, want 9", got)
	}
	if got := sk.SlotNow(inner); got != 9 {
		t.Fatalf("SlotNow() = %d, want 9", got)
	}

	// Wake settles the inner component through the step-slot boundary
	// (now+1), the engine's pre-mutation settlement rule.
	sk.Wake(inner, 42)
	if inner.settledThrough != 10 {
		t.Fatalf("Wake settled through %d, want 10", inner.settledThrough)
	}

	// Explicit Settle forwards verbatim (the post-run settlement a plain
	// Scheduler never performs).
	sk.Settle(123)
	if inner.settledThrough != 123 {
		t.Fatalf("Settle(123) settled through %d", inner.settledThrough)
	}
}
