// Package direct is the direct-execution oracle backend: it runs a
// compiled dataflow plan (graph.CompiledGraph) at native Go speed with no
// cycle model at all — no engine, no tokens, no waiting-matching store, no
// network. It exists because the plan's *results* are machine-independent
// (the paper's own premise: the dataflow graph fixes the answers, the
// machine only fixes the timing), so answer-checking and result-only
// serving should not pay cycle-accurate prices. DESIGN.md §10 showed the
// cycle-accurate simulator is capped near ~1 Mcycles/s by matching and
// token movement; this backend removes both.
//
// The lowering (DESIGN.md §14):
//
//   - a token <u,c,s,i,port,value> becomes a delivery record on an
//     explicit LIFO work stack; popping a delivery either fires its
//     instruction immediately (single-operand statements) or writes the
//     value into a dense per-activation frame slot assigned at compile
//     time (two-operand statements), firing when the slot fills;
//   - a context becomes a heap record holding its code block, caller
//     linkage, and activation frames; loop iterations index frames by
//     initiation number;
//   - I-structures become plain slices with presence bits; a fetch that
//     arrives before its store parks on the cell's waiter list and is
//     re-pushed by the store (pure topological scheduling would deadlock
//     here, which is why the schedule is the depth-first unwinding of the
//     dynamic dependence DAG rather than a static statement order);
//   - arithmetic is the shared graph.Eval, so the direct backend cannot
//     disagree with the interpreter, the TTDA's ALU, or the emulator on
//     a single bit of any result.
//
// What the backend deliberately cannot observe: cycles, per-PE statistics,
// wave profiles, parallelism, checkpoints. It answers exactly one
// question — what does this program compute — and answers it fast.
package direct

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/token"
)

// delivery is one in-flight operand: the activity name split into the
// context record index, initiation, and statement, plus the operand port
// and value. The explicit stack of these is the backend's activation
// stack: deep recursion and million-iteration loops consume heap, not the
// Go stack.
type delivery struct {
	ctx  uint32
	init uint32
	stmt uint16
	port uint8
	val  token.Value
}

// pair is one dense match slot: the two operand values of a two-operand
// statement, with presence bits.
type pair struct {
	vals [2]token.Value
	have [2]bool
}

// frame is the dense value frame of one activation (one (context,
// initiation) pair): a slot per two-operand statement, assigned by the
// plan's static MatchSlot numbering.
type frame struct {
	slots    []pair
	occupied int // slots currently holding exactly one operand
}

// ctxState is one invocation record. Records are never deallocated while
// the run lives (context numbers are allocated monotonically and stale
// handles must keep failing loudly, matching the interpreter), but loop
// iteration frames are recycled as soon as they empty.
type ctxState struct {
	cb          *graph.CBlock
	parentCtx   uint32
	parentBlock uint16
	parentInit  uint32
	returnDests []graph.CDest
	argsSent    int
	returned    bool
	live        bool

	// lp is the block's loop-acceleration plan (nil when the block is not
	// an accelerable loop). Entry arguments of an accelerable activation
	// are buffered in argBuf instead of delivered, and the whole loop runs
	// natively once the last one arrives.
	lp     *loopPlan
	argBuf []token.Value
	argSet []bool
	argGot int

	// frame1 serves initiation 1 — every non-loop activation and the
	// first loop iteration — without a map access. iterFrame caches the
	// single live iteration of the common sequential loop; iters carries
	// the overflow, and spare recycles the drained slot array so steady
	// loops allocate nothing per iteration.
	frame1    frame
	iterInit  uint32
	iterFrame *frame
	spare     []pair
	iters     map[uint32]*frame
}

// cell is one I-structure element: a presence bit, the value, and the
// deferred reads parked on it.
type cell struct {
	present bool
	value   token.Value
	waiters []waiter
}

// waiter is a deferred fetch: where to deliver the value once it exists.
type waiter struct {
	ctx  uint32
	init uint32
	stmt uint16
	port uint8
}

// Exec executes one plan once. Like the reference interpreter it is
// single-use: build (cheaply) per run, share the plan across runs.
type Exec struct {
	cg         *graph.CompiledGraph
	compileErr error

	ctxs  []ctxState
	stack []delivery

	// queue is the FIFO lane for iteration-advancing (D) deliveries. A
	// pure LIFO schedule lets the loop-control chain race arbitrarily far
	// ahead — the i chain of "for i from 1 to n" needs nothing from the
	// body, so depth-first execution would materialize all n iteration
	// frames before completing one (dataflow unleashed, exactly the
	// paper's point, but here it costs O(n) live frames). Deferring D
	// outputs to a FIFO lane drains each iteration before its successor
	// starts, bounding live frames by the program's real cross-iteration
	// dependence depth.
	queue []delivery
	qhead int

	cells    []cell
	deferred int

	parked   int
	results  []token.Value
	fired    uint64
	maxSteps uint64

	// lps caches the per-block loop-acceleration plans (nil = the block is
	// not an accelerable loop and runs on the delivery engine).
	lps    []*loopPlan
	lpDone []bool
}

// New compiles prog and returns a direct executor for it. A compile
// failure surfaces from Run.
func New(prog *graph.Program) *Exec {
	cg, err := graph.Compile(prog)
	x := NewFromPlan(cg)
	x.compileErr = err
	return x
}

// NewFromPlan returns a direct executor over an already-compiled plan,
// sharing it with other consumers (compile once, run many).
func NewFromPlan(cg *graph.CompiledGraph) *Exec {
	return &Exec{cg: cg, maxSteps: 100_000_000}
}

// SetMaxSteps bounds the number of instruction firings before Run reports
// non-termination.
func (x *Exec) SetMaxSteps(n uint64) { x.maxSteps = n }

// Fired returns the number of instruction firings — the only statistic
// the backend keeps, because it falls out of the main loop for free.
func (x *Exec) Fired() uint64 { return x.fired }

// Run executes the plan on the given entry-block arguments and returns
// the values delivered by OpReturn in context 0, in delivery order.
func (x *Exec) Run(args ...token.Value) ([]token.Value, error) {
	if x.compileErr != nil {
		return nil, x.compileErr
	}
	if x.cg == nil {
		return nil, fmt.Errorf("direct: nil plan")
	}
	entry := x.cg.Block(0)
	if len(args) != len(entry.Entries) {
		return nil, fmt.Errorf("direct: program %q wants %d arguments, got %d",
			x.cg.Prog.Name, len(entry.Entries), len(args))
	}
	// Context 0 is the root invocation of block 0.
	x.ctxs = append(x.ctxs, ctxState{cb: entry, live: true})
	// Push in reverse so argument 0 pops first (cosmetic: the answer is
	// order-independent, the firing count is not path-dependent either).
	for j := len(args) - 1; j >= 0; j-- {
		x.push(0, 1, entry.Entries[j], 0, args[j])
	}
	for {
		for len(x.stack) > 0 || x.qhead < len(x.queue) {
			var d delivery
			if n := len(x.stack); n > 0 {
				d = x.stack[n-1]
				x.stack = x.stack[:n-1]
			} else {
				d = x.queue[x.qhead]
				x.qhead++
				if x.qhead == len(x.queue) {
					x.queue, x.qhead = x.queue[:0], 0
				}
			}
			if err := x.deliver(d); err != nil {
				return nil, err
			}
			if x.fired > x.maxSteps {
				return nil, fmt.Errorf("direct: program %q exceeded %d firings", x.cg.Prog.Name, x.maxSteps)
			}
		}
		// A malformed caller that never sent an accelerated loop its full
		// argument set leaves a partial buffer; flush it into the engine so
		// the run ends exactly like the unaccelerated one (typically with
		// the unmatched-operand diagnostic).
		if !x.flushStranded() {
			break
		}
	}
	if x.parked != 0 {
		return nil, fmt.Errorf("direct: program %q finished with %d unmatched operands in activation frames", x.cg.Prog.Name, x.parked)
	}
	if x.deferred != 0 {
		return nil, fmt.Errorf("direct: program %q deadlocked: %d deferred reads were never satisfied", x.cg.Prog.Name, x.deferred)
	}
	return x.results, nil
}

// Structure returns the element values of an I-structure after execution.
// Cells never written report token.Nil().
func (x *Exec) Structure(r token.Ref) []token.Value {
	out := make([]token.Value, 0, r.Len)
	for a := uint64(r.Base); a < uint64(r.Base)+uint64(r.Len) && a < uint64(len(x.cells)); a++ {
		if c := x.cells[a]; c.present {
			out = append(out, c.value)
		} else {
			out = append(out, token.Nil())
		}
	}
	return out
}

func (x *Exec) push(ctx, init uint32, stmt uint16, port uint8, v token.Value) {
	x.stack = append(x.stack, delivery{ctx: ctx, init: init, stmt: stmt, port: port, val: v})
}

// slot returns the match slot for a two-operand statement of activation
// (cs, init), allocating the activation's frame on first touch. The
// single-iteration cache plus the spare slot array make the sequential
// steady state (one live iteration at a time, the common case under the
// FIFO D lane) allocation- and map-free.
func (cs *ctxState) slot(init uint32, ms int32) (*frame, *pair) {
	fr := &cs.frame1
	if init != 1 {
		if cs.iterFrame != nil && cs.iterInit == init {
			fr = cs.iterFrame
		} else if f, ok := cs.iters[init]; ok {
			fr = f
		} else {
			slots := cs.spare
			if slots == nil {
				slots = make([]pair, cs.cb.Slots)
			}
			cs.spare = nil
			f = &frame{slots: slots}
			if cs.iterFrame == nil {
				cs.iterFrame, cs.iterInit = f, init
			} else {
				if cs.iters == nil {
					cs.iters = make(map[uint32]*frame)
				}
				cs.iters[init] = f
			}
			fr = f
		}
	} else if fr.slots == nil {
		fr.slots = make([]pair, cs.cb.Slots)
	}
	return fr, &fr.slots[ms]
}

// deliver routes one delivery: fire immediately for single-operand
// statements, otherwise park in the activation frame and fire on the
// completing operand.
func (x *Exec) deliver(d delivery) error {
	cs := &x.ctxs[d.ctx]
	in := &cs.cb.Instrs[d.stmt]
	if in.NT <= 1 {
		var vals [2]token.Value
		vals[d.port] = d.val
		return x.fire(in, cs, d, vals)
	}
	fr, p := cs.slot(d.init, in.MatchSlot)
	if p.have[d.port] {
		return fmt.Errorf("direct: duplicate operand at (u=%d,c=%d,s=%d,i=%d) port %d",
			d.ctx, cs.cb.ID, d.stmt, d.init, d.port)
	}
	if !p.have[0] && !p.have[1] {
		fr.occupied++
		x.parked++
	}
	p.vals[d.port] = d.val
	p.have[d.port] = true
	if p.have[0] && p.have[1] {
		vals := p.vals
		*p = pair{}
		fr.occupied--
		x.parked--
		// A drained loop-iteration frame is garbage the moment it empties
		// (re-touching the same initiation re-creates it, exactly as the
		// interpreter's frame table re-admits a released key). Its slot
		// array — fully zeroed by the completing matches — is recycled for
		// the next iteration.
		if fr.occupied == 0 && d.init != 1 {
			if fr == cs.iterFrame {
				cs.iterFrame = nil
				cs.spare = fr.slots
			} else {
				delete(cs.iters, d.init)
			}
		}
		return x.fire(in, cs, d, vals)
	}
	return nil
}

func (x *Exec) fire(in *graph.CInstr, cs *ctxState, d delivery, vals [2]token.Value) error {
	x.fired++
	if in.HasLit {
		vals[in.LitPort] = in.Lit
	}

	switch in.Kind {
	case graph.KindPure:
		v, err := graph.Eval(in.Op, vals[0], vals[1])
		if err != nil {
			return fmt.Errorf("direct: %v at (u=%d,c=%d,s=%d,i=%d) %s", err, d.ctx, cs.cb.ID, d.stmt, d.init, in.Op)
		}
		for _, dst := range in.Dests {
			x.push(d.ctx, d.init, dst.Stmt, dst.Port, v)
		}
	case graph.KindSwitch:
		c, err := vals[1].AsBool()
		if err != nil {
			return fmt.Errorf("direct: switch control at (u=%d,c=%d,s=%d,i=%d): %v", d.ctx, cs.cb.ID, d.stmt, d.init, err)
		}
		dests := in.DestsFalse
		if c {
			dests = in.Dests
		}
		for _, dst := range dests {
			x.push(d.ctx, d.init, dst.Stmt, dst.Port, vals[0])
		}
	case graph.KindGetContext:
		u := uint32(len(x.ctxs))
		x.ctxs = append(x.ctxs, ctxState{
			cb:          x.cg.Block(in.Target),
			parentCtx:   d.ctx,
			parentBlock: uint16(cs.cb.ID),
			parentInit:  d.init,
			returnDests: in.RetDests,
			live:        true,
			lp:          x.loopPlanFor(in.Target),
		})
		cs = &x.ctxs[d.ctx] // the append may have moved the backing array
		for _, dst := range in.Dests {
			x.push(d.ctx, d.init, dst.Stmt, dst.Port, token.Int(int64(u)))
		}
	case graph.KindSendArg:
		h, err := vals[0].AsInt()
		if err != nil {
			return fmt.Errorf("direct: %s handle: %v", in.Op, err)
		}
		callee := x.ctx(h)
		if callee == nil {
			return fmt.Errorf("direct: %s at (u=%d,c=%d,s=%d,i=%d): unknown context %d", in.Op, d.ctx, cs.cb.ID, d.stmt, d.init, h)
		}
		if int(in.ArgIndex) >= len(callee.cb.Entries) {
			return fmt.Errorf("direct: %s: arg %d exceeds %q entries", in.Op, in.ArgIndex, callee.cb.Name)
		}
		callee.argsSent++
		x.maybeFree(callee)
		if callee.lp != nil {
			// Accelerated loop: buffer the argument; the last one starts
			// the native run. A duplicated argument falls back to the
			// engine path (which fires the extra head like the
			// unaccelerated schedule would).
			if callee.argBuf == nil {
				callee.argBuf = make([]token.Value, len(callee.cb.Entries))
				callee.argSet = make([]bool, len(callee.cb.Entries))
			}
			if !callee.argSet[in.ArgIndex] {
				callee.argSet[in.ArgIndex] = true
				callee.argBuf[in.ArgIndex] = vals[1]
				callee.argGot++
				if callee.argGot == len(callee.cb.Entries) {
					lp, buf := callee.lp, callee.argBuf
					callee.lp, callee.argBuf, callee.argSet = nil, nil, nil
					x.runLoop(uint32(h), lp, buf)
				}
				return nil
			}
		}
		x.push(uint32(h), 1, callee.cb.Entries[in.ArgIndex], 0, vals[1])
	case graph.KindD:
		for _, dst := range in.Dests {
			x.queue = append(x.queue, delivery{ctx: d.ctx, init: d.init + 1, stmt: dst.Stmt, port: dst.Port, val: vals[0]})
		}
	case graph.KindDInv:
		for _, dst := range in.Dests {
			x.push(d.ctx, 1, dst.Stmt, dst.Port, vals[0])
		}
	case graph.KindReturn:
		if d.ctx == 0 {
			x.results = append(x.results, vals[0])
			return nil
		}
		if !cs.live {
			return fmt.Errorf("direct: %s at (u=%d,c=%d,s=%d,i=%d): unknown context", in.Op, d.ctx, cs.cb.ID, d.stmt, d.init)
		}
		cs.returned = true
		x.maybeFree(cs)
		for _, dst := range cs.returnDests {
			x.push(cs.parentCtx, cs.parentInit, dst.Stmt, dst.Port, vals[0])
		}
	case graph.KindAllocate:
		n, err := vals[0].AsInt()
		if err != nil || n < 0 {
			return fmt.Errorf("direct: allocate: bad size %s", vals[0])
		}
		base := len(x.cells)
		x.cells = append(x.cells, make([]cell, n)...)
		ref := token.NewRef(token.Ref{Base: uint32(base), Len: uint32(n)})
		for _, dst := range in.Dests {
			x.push(d.ctx, d.init, dst.Stmt, dst.Port, ref)
		}
	case graph.KindFetch:
		addr, err := vals[0].AsInt()
		if err != nil || addr < 0 || int(addr) >= len(x.cells) {
			return fmt.Errorf("direct: fetch: bad address %s", vals[0])
		}
		c := &x.cells[addr]
		dst := in.Dests[0]
		if c.present {
			for _, dd := range in.Dests {
				x.push(d.ctx, d.init, dd.Stmt, dd.Port, c.value)
			}
			return nil
		}
		c.waiters = append(c.waiters, waiter{ctx: d.ctx, init: d.init, stmt: dst.Stmt, port: dst.Port})
		x.deferred++
	case graph.KindStore:
		addr, err := vals[0].AsInt()
		if err != nil || addr < 0 || int(addr) >= len(x.cells) {
			return fmt.Errorf("direct: store: bad address %s", vals[0])
		}
		c := &x.cells[addr]
		if c.present {
			return fmt.Errorf("direct: store: address %d already written (single-assignment violation)", addr)
		}
		c.present = true
		c.value = vals[1]
		for _, w := range c.waiters {
			x.push(w.ctx, w.init, w.stmt, w.port, vals[1])
		}
		x.deferred -= len(c.waiters)
		c.waiters = nil
	case graph.KindSink, graph.KindNop:
		// absorbed
	default:
		return fmt.Errorf("direct: cannot execute %s", in.Op)
	}
	return nil
}

// ctx returns the live record for context handle h, or nil.
func (x *Exec) ctx(h int64) *ctxState {
	if h < 1 || h >= int64(len(x.ctxs)) {
		return nil
	}
	cs := &x.ctxs[h]
	if !cs.live {
		return nil
	}
	return cs
}

// flushStranded releases partially-buffered loop arguments into the
// delivery engine. It only ever finds work when a caller sent an
// accelerable loop fewer arguments than its entry list — a shape the
// MiniID compiler never emits — and exists so that even then the run
// terminates with exactly the unaccelerated run's disposition.
func (x *Exec) flushStranded() bool {
	flushed := false
	for i := range x.ctxs {
		cs := &x.ctxs[i]
		if cs.lp == nil || cs.argGot == 0 {
			continue
		}
		buf, set := cs.argBuf, cs.argSet
		cs.lp, cs.argBuf, cs.argSet = nil, nil, nil
		for j := len(set) - 1; j >= 0; j-- {
			if set[j] {
				x.push(uint32(i), 1, cs.cb.Entries[j], 0, buf[j])
			}
		}
		flushed = true
	}
	return flushed
}

// maybeFree retires a record once its return fired and every callee entry
// received its argument — the non-strict-call liveness rule the
// interpreter's context manager uses. Only the handle dies; frames stay
// until their operands drain (stragglers inside the callee may still be
// on the stack).
func (x *Exec) maybeFree(cs *ctxState) {
	if cs.returned && cs.argsSent >= len(cs.cb.Entries) {
		cs.live = false
	}
}

// Run compiles prog once and executes it directly — the convenience used
// by answer-checking call sites.
func Run(prog *graph.Program, args ...token.Value) ([]token.Value, error) {
	return New(prog).Run(args...)
}
