package direct

import (
	"repro/internal/graph"
	"repro/internal/token"
)

// Loop acceleration: the MiniID compiler lowers every loop into a code
// block with one circulation triple per loop variable — an identity head
// (the block entry), a SWITCH steered by the shared predicate, and a D
// that carries the next value into initiation i+1 — plus a predicate DAG
// read from the heads and a body DAG read from the switches' true arms.
// That shape is static, so instead of routing three bookkeeping firings
// per variable per iteration through the delivery engine, the lowerer
// recognizes it once and runs the whole loop as real Go control flow: a
// native for-loop over the predicate and body DAGs in topological order,
// with the circulation machinery reduced to firing-count arithmetic
// (heads, switches and Ds move values the native loop already holds in
// registers). The firing count per steady iteration is exactly the
// delivery engine's, because every classified instruction fires exactly
// once per iteration in both schedules.
//
// The accelerator never handles an exit, a fault, or a firing-budget
// overrun itself: the moment an iteration is not a provably-steady
// pred-true iteration, the current circulation values are handed to the
// delivery engine as ordinary entry deliveries at the current initiation,
// and the engine refires that iteration — taking the false arms through
// D-1/L-1, or surfacing the eval fault with the standard activity-name
// message. Blocks whose shape the recognizer cannot prove (conditionals
// in the body, I-structure traffic, nested calls) simply get no plan and
// run entirely on the delivery engine; rejection is always safe, only
// speed varies.

// loopSrc names where a DAG operand comes from at runtime: a circulating
// loop variable or a previously-computed op slot.
type loopSrc struct {
	isVar bool
	idx   int
}

// loopOp is one pure instruction of the predicate or body DAG, with its
// operands resolved to variables, slots, or literals at lowering time.
type loopOp struct {
	stmt uint16
	op   graph.Opcode
	lit  [2]bool
	litv [2]token.Value
	src  [2]loopSrc
	dst  int
}

// loopPlan is the lowered form of one accelerable loop block.
type loopPlan struct {
	nVars   int
	nSlots  int
	predOps []loopOp
	predSrc loopSrc // the value steering every SWITCH
	bodyOps []loopOp
	next    []loopSrc // per variable: its value in the next iteration
	perIter uint64    // firings per steady (predicate-true) iteration
	ip      *intPlan  // int64 register specialization, when typable
}

// roles during recognition.
const (
	roleCand   = iota // unclassified pure instruction (predicate or body)
	roleHead          // circulation head (block entry)
	roleSwitch        // circulation switch
	roleD             // circulation D
	roleExit          // exit-only machinery (D-1, L-1, sinks)
)

// arc is one producer of a (stmt, port) input during recognition.
type arc struct {
	from     uint16
	falseArm bool
	trueArm  bool
}

// lowerLoop recognizes the compiler's loop-block shape and returns its
// plan, or nil when any instruction resists classification.
func lowerLoop(cb *graph.CBlock) *loopPlan {
	m := len(cb.Entries)
	n := len(cb.Instrs)
	if m == 0 || cb.ID == 0 || n == 0 {
		return nil
	}

	headVar := make(map[uint16]int, m)
	for k, s := range cb.Entries {
		if int(s) >= n {
			return nil
		}
		in := &cb.Instrs[s]
		if in.Kind != graph.KindPure || in.NT != 1 || in.HasLit {
			return nil
		}
		if _, dup := headVar[s]; dup {
			return nil
		}
		headVar[s] = k
	}

	roles := make([]uint8, n)
	dOf := make([]int, m)
	for k := range dOf {
		dOf[k] = -1
	}
	sawD := false
	for s := range cb.Instrs {
		in := &cb.Instrs[s]
		if _, isHead := headVar[uint16(s)]; isHead {
			roles[s] = roleHead
			continue
		}
		switch in.Kind {
		case graph.KindD:
			if in.NT != 1 || in.HasLit || len(in.DestsFalse) != 0 || len(in.Dests) != 1 {
				return nil
			}
			d := in.Dests[0]
			k, ok := headVar[d.Stmt]
			if !ok || d.Port != 0 || dOf[k] != -1 {
				return nil
			}
			dOf[k] = s
			roles[s] = roleD
			sawD = true
		case graph.KindSwitch:
			if in.NT != 2 || in.HasLit {
				return nil
			}
			roles[s] = roleSwitch
		case graph.KindPure:
			roles[s] = roleCand
		case graph.KindDInv, graph.KindReturn, graph.KindSink, graph.KindNop:
			roles[s] = roleExit
		default:
			return nil
		}
	}
	if !sawD {
		return nil // no iteration machinery: a function block, not a loop
	}
	for k := range dOf {
		if dOf[k] == -1 {
			return nil
		}
	}

	// Producer map: prods[stmt][port] lists the arcs feeding that input.
	prods := make([][2][]arc, n)
	addArcs := func(from uint16, dests []graph.CDest, falseArm, trueArm bool) bool {
		for _, d := range dests {
			if int(d.Stmt) >= n || d.Port > 1 {
				return false
			}
			prods[d.Stmt][d.Port] = append(prods[d.Stmt][d.Port], arc{from: from, falseArm: falseArm, trueArm: trueArm})
		}
		return true
	}
	for s := range cb.Instrs {
		in := &cb.Instrs[s]
		isSwitch := roles[s] == roleSwitch
		if !addArcs(uint16(s), in.Dests, false, isSwitch) {
			return nil
		}
		if !addArcs(uint16(s), in.DestsFalse, true, false) {
			return nil
		}
		if len(in.RetDests) != 0 {
			return nil
		}
	}

	// Switches: port 0 carries exactly one head's value, port 1 the shared
	// predicate. Every variable needs exactly one switch.
	swOf := make([]int, m)
	for k := range swOf {
		swOf[k] = -1
	}
	predRoot := -1
	for s := range cb.Instrs {
		if roles[s] != roleSwitch {
			continue
		}
		p0 := prods[s][0]
		if len(p0) != 1 || p0[0].falseArm || p0[0].trueArm {
			return nil
		}
		k, ok := headVar[p0[0].from]
		if !ok || swOf[k] != -1 {
			return nil
		}
		swOf[k] = s
		p1 := prods[s][1]
		if len(p1) == 0 {
			return nil
		}
		for _, a := range p1 {
			if a.falseArm || a.trueArm {
				return nil
			}
			if predRoot == -1 {
				predRoot = int(a.from)
			} else if predRoot != int(a.from) {
				return nil
			}
		}
	}
	for k := range swOf {
		if swOf[k] == -1 {
			return nil
		}
	}
	if predRoot == -1 {
		return nil
	}

	// Predicate DAG: the transitive pure producers of predRoot, reading
	// only heads, literals, and each other.
	inPred := make([]bool, n)
	var predSrc loopSrc
	if k, isHead := headVar[uint16(predRoot)]; isHead {
		predSrc = loopSrc{isVar: true, idx: k}
	} else {
		if roles[predRoot] != roleCand {
			return nil
		}
		stack := []int{predRoot}
		inPred[predRoot] = true
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			in := &cb.Instrs[s]
			for p := 0; p < 2; p++ {
				if in.HasLit && int(in.LitPort) == p {
					if len(prods[s][p]) != 0 {
						return nil
					}
					continue
				}
				arcs := prods[s][p]
				if len(arcs) == 0 {
					continue
				}
				if len(arcs) != 1 || arcs[0].falseArm || arcs[0].trueArm {
					return nil
				}
				from := int(arcs[0].from)
				switch roles[from] {
				case roleHead:
					// variable read: fine
				case roleCand:
					if !inPred[from] {
						inPred[from] = true
						stack = append(stack, from)
					}
				default:
					return nil
				}
			}
		}
	}

	// Every predicate op's outputs must stay inside the predicate DAG or
	// feed switch control; every head's outputs must feed its switch's
	// data port or the predicate DAG.
	for s := range cb.Instrs {
		in := &cb.Instrs[s]
		switch {
		case inPred[s]:
			for _, d := range in.Dests {
				if inPred[d.Stmt] {
					continue
				}
				if roles[d.Stmt] == roleSwitch && d.Port == 1 {
					continue
				}
				return nil
			}
		case roles[s] == roleHead:
			k := headVar[uint16(s)]
			for _, d := range in.Dests {
				if int(d.Stmt) == swOf[k] && d.Port == 0 {
					continue
				}
				if inPred[d.Stmt] {
					continue
				}
				// A head can itself be the predicate (e.g. a boolean loop
				// variable), in which case it steers every switch directly.
				if predSrc.isVar && predSrc.idx == k && roles[d.Stmt] == roleSwitch && d.Port == 1 {
					continue
				}
				return nil
			}
		}
	}

	// Body DAG: the remaining pure candidates. They read switch true arms
	// (the circulating values), literals, and each other, and feed each
	// other and the Ds.
	isD := make([]bool, n)
	for _, s := range dOf {
		isD[s] = true
	}
	inBody := make([]bool, n)
	for s := range cb.Instrs {
		if roles[s] == roleCand && !inPred[s] {
			inBody[s] = true
		}
	}

	// resolveArc classifies a single input arc for a body op or a D.
	varOfSwitch := make(map[int]int, m)
	for k, s := range swOf {
		varOfSwitch[s] = k
	}
	resolve := func(a arc) (loopSrc, bool) {
		from := int(a.from)
		if a.trueArm {
			k, ok := varOfSwitch[from]
			if !ok || a.falseArm {
				return loopSrc{}, false
			}
			return loopSrc{isVar: true, idx: k}, true
		}
		if a.falseArm {
			return loopSrc{}, false
		}
		if inBody[from] {
			return loopSrc{idx: from}, true // slot index patched after topo sort
		}
		return loopSrc{}, false
	}

	type rawOp struct {
		stmt uint16
		src  [2]loopSrc
		lit  [2]bool
		litv [2]token.Value
		deps []int // producing stmts inside the same DAG
	}
	buildOp := func(s int, inSet []bool, allowTrueArm bool) (rawOp, bool) {
		in := &cb.Instrs[s]
		op := rawOp{stmt: uint16(s)}
		arcsSeen := 0
		for p := 0; p < 2; p++ {
			if in.HasLit && int(in.LitPort) == p {
				if len(prods[s][p]) != 0 {
					return op, false
				}
				op.lit[p] = true
				op.litv[p] = in.Lit
				continue
			}
			arcs := prods[s][p]
			if len(arcs) == 0 {
				op.lit[p] = true
				op.litv[p] = token.Nil()
				continue
			}
			if len(arcs) != 1 {
				return op, false
			}
			a := arcs[0]
			arcsSeen++
			from := int(a.from)
			switch {
			case a.trueArm && allowTrueArm:
				k, ok := varOfSwitch[from]
				if !ok {
					return op, false
				}
				op.src[p] = loopSrc{isVar: true, idx: k}
			case !a.trueArm && !a.falseArm && roles[from] == roleHead && !allowTrueArm:
				op.src[p] = loopSrc{isVar: true, idx: headVar[uint16(from)]}
			case !a.trueArm && !a.falseArm && inSet[from]:
				op.src[p] = loopSrc{idx: from}
				op.deps = append(op.deps, from)
			default:
				return op, false
			}
		}
		if arcsSeen != int(in.NT) {
			return op, false
		}
		return op, true
	}

	// Body op outputs must stay in the body DAG or feed a D's data port.
	for s := range cb.Instrs {
		if !inBody[s] {
			continue
		}
		in := &cb.Instrs[s]
		for _, d := range in.Dests {
			if inBody[d.Stmt] {
				continue
			}
			if isD[d.Stmt] && d.Port == 0 {
				continue
			}
			return nil
		}
	}

	// Exit machinery must be fed only by switch false arms and each other,
	// and must feed only itself: it is untouched until the engine refires
	// the final iteration.
	for s := range cb.Instrs {
		if roles[s] != roleExit {
			continue
		}
		for p := 0; p < 2; p++ {
			for _, a := range prods[s][p] {
				if a.falseArm || roles[a.from] == roleExit {
					continue
				}
				return nil
			}
		}
		in := &cb.Instrs[s]
		if in.Kind == graph.KindReturn {
			continue // returns route through the context's return dests
		}
		for _, d := range in.Dests {
			if roles[d.Stmt] != roleExit {
				return nil
			}
		}
	}

	// Topologically order each DAG and assign slots.
	topo := func(set []bool, allowTrueArm bool) ([]loopOp, map[int]int, bool) {
		var raw []rawOp
		for s := range cb.Instrs {
			if !set[s] {
				continue
			}
			op, ok := buildOp(s, set, allowTrueArm)
			if !ok {
				return nil, nil, false
			}
			raw = append(raw, op)
		}
		placed := make(map[int]int, len(raw))
		var ops []loopOp
		for len(ops) < len(raw) {
			progress := false
			for i := range raw {
				r := &raw[i]
				if _, done := placed[int(r.stmt)]; done {
					continue
				}
				ready := true
				for _, d := range r.deps {
					if _, done := placed[d]; !done {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				placed[int(r.stmt)] = len(ops)
				ops = append(ops, loopOp{stmt: r.stmt, op: cb.Instrs[r.stmt].Op, lit: r.lit, litv: r.litv, src: r.src})
				progress = true
			}
			if !progress {
				return nil, nil, false // cyclic: not a DAG
			}
		}
		return ops, placed, true
	}

	predOps, predPlaced, ok := topo(inPred, false)
	if !ok {
		return nil
	}
	bodyOps, bodyPlaced, ok := topo(inBody, true)
	if !ok {
		return nil
	}
	// Patch slot indices: predicate slots come first, body slots after.
	// Each DAG only reads its own slots (checked in buildOp), so patching
	// is per-DAG.
	patch := func(ops []loopOp, base int, placed map[int]int) bool {
		for i := range ops {
			ops[i].dst = base + i
			for p := 0; p < 2; p++ {
				if ops[i].lit[p] || ops[i].src[p].isVar {
					continue
				}
				j, ok := placed[ops[i].src[p].idx]
				if !ok {
					return false
				}
				ops[i].src[p].idx = base + j
			}
		}
		return true
	}
	if !patch(predOps, 0, predPlaced) {
		return nil
	}
	if !patch(bodyOps, len(predOps), bodyPlaced) {
		return nil
	}
	if !predSrc.isVar {
		j, ok := predPlaced[predRoot]
		if !ok {
			return nil
		}
		predSrc.idx = j
	}

	next := make([]loopSrc, m)
	for k, ds := range dOf {
		arcs := prods[ds][0]
		if len(arcs) != 1 {
			return nil
		}
		src, ok := resolve(arcs[0])
		if !ok {
			return nil
		}
		if !src.isVar {
			j, ok := bodyPlaced[src.idx]
			if !ok {
				return nil
			}
			src.idx = len(predOps) + j
		}
		next[k] = src
	}

	lp := &loopPlan{
		nVars:   m,
		nSlots:  len(predOps) + len(bodyOps),
		predOps: predOps,
		predSrc: predSrc,
		bodyOps: bodyOps,
		next:    next,
		perIter: uint64(3*m + len(predOps) + len(bodyOps)),
	}
	lp.ip = lowerInt(lp)
	return lp
}

// loopPlanFor lazily lowers (and caches) the loop plan for a block.
func (x *Exec) loopPlanFor(id graph.BlockID) *loopPlan {
	if x.lps == nil {
		x.lps = make([]*loopPlan, len(x.cg.Blocks))
		x.lpDone = make([]bool, len(x.cg.Blocks))
	}
	if !x.lpDone[id] {
		x.lpDone[id] = true
		x.lps[id] = lowerLoop(x.cg.Block(id))
	}
	return x.lps[id]
}

// evalLoopOp computes one DAG op. The integer fast path mirrors
// graph.Eval bit for bit (comparisons go through float64 exactly like
// Eval's AsFloat tower); everything else — floats, faults, div-by-zero —
// falls through to the shared Eval so the backend cannot diverge.
func evalLoopOp(op *loopOp, vars, slots []token.Value) (token.Value, error) {
	var a, b token.Value
	if op.lit[0] {
		a = op.litv[0]
	} else if op.src[0].isVar {
		a = vars[op.src[0].idx]
	} else {
		a = slots[op.src[0].idx]
	}
	if op.lit[1] {
		b = op.litv[1]
	} else if op.src[1].isVar {
		b = vars[op.src[1].idx]
	} else {
		b = slots[op.src[1].idx]
	}
	if a.Kind == token.KindInt && b.Kind == token.KindInt {
		x, y := a.I, b.I
		switch op.op {
		case graph.OpAdd:
			return token.Int(x + y), nil
		case graph.OpSub:
			return token.Int(x - y), nil
		case graph.OpMul:
			return token.Int(x * y), nil
		case graph.OpLT:
			return token.Bool(float64(x) < float64(y)), nil
		case graph.OpLE:
			return token.Bool(float64(x) <= float64(y)), nil
		case graph.OpGT:
			return token.Bool(float64(x) > float64(y)), nil
		case graph.OpGE:
			return token.Bool(float64(x) >= float64(y)), nil
		case graph.OpEQ:
			return token.Bool(float64(x) == float64(y)), nil
		case graph.OpNE:
			return token.Bool(float64(x) != float64(y)), nil
		}
	} else if op.op == graph.OpIdentity {
		return a, nil
	}
	return graph.Eval(op.op, a, b)
}

// runLoop executes a fully-argued loop activation natively. It only runs
// provably-steady iterations; the first iteration that exits, faults, or
// busts the firing budget is handed back to the delivery engine as plain
// entry deliveries at the current initiation, and the engine refires it
// with its ordinary semantics (and its ordinary error messages).
func (x *Exec) runLoop(u uint32, lp *loopPlan, vars []token.Value) {
	iter := uint32(1)
	if lp.ip != nil && x.runLoopInt(lp, vars, &iter) {
		cs := &x.ctxs[u]
		for k := lp.nVars - 1; k >= 0; k-- {
			x.push(u, iter, cs.cb.Entries[k], 0, vars[k])
		}
		return
	}
	slots := make([]token.Value, lp.nSlots)
	next := make([]token.Value, lp.nVars)
	for x.fired <= x.maxSteps {
		steady := true
		for i := range lp.predOps {
			op := &lp.predOps[i]
			v, err := evalLoopOp(op, vars, slots)
			if err != nil {
				steady = false
				break
			}
			slots[op.dst] = v
		}
		if steady {
			var pv token.Value
			if lp.predSrc.isVar {
				pv = vars[lp.predSrc.idx]
			} else {
				pv = slots[lp.predSrc.idx]
			}
			cond, err := pv.AsBool()
			if err != nil || !cond {
				steady = false
			}
		}
		if steady {
			for i := range lp.bodyOps {
				op := &lp.bodyOps[i]
				v, err := evalLoopOp(op, vars, slots)
				if err != nil {
					steady = false
					break
				}
				slots[op.dst] = v
			}
		}
		if !steady {
			break
		}
		for k, src := range lp.next {
			if src.isVar {
				next[k] = vars[src.idx]
			} else {
				next[k] = slots[src.idx]
			}
		}
		copy(vars, next)
		x.fired += lp.perIter
		iter++
	}
	cs := &x.ctxs[u]
	for k := lp.nVars - 1; k >= 0; k-- {
		x.push(u, iter, cs.cb.Entries[k], 0, vars[k])
	}
}
