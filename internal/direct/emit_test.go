package direct

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/token"
	"repro/internal/workload"
)

// runEmitted emits prog as standalone Go source, writes it to a temp
// module-free directory, and executes it with `go run`, returning stdout
// lines, stderr, and the exit error (nil on success).
func runEmitted(t *testing.T, prog *graph.Program, args ...string) ([]string, string, error) {
	t.Helper()
	src, err := EmitGo(prog)
	if err != nil {
		t.Fatalf("EmitGo: %v", err)
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "main.go")
	if err := os.WriteFile(file, src, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", file)
	cmd.Args = append(cmd.Args, args...)
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	runErr := cmd.Run()
	var lines []string
	if s := strings.TrimRight(out.String(), "\n"); s != "" {
		lines = strings.Split(s, "\n")
	}
	return lines, errb.String(), runErr
}

// TestEmitGoMatchesInterpreter runs emitted standalone programs and demands
// their stdout equals the interpreter's results line for line.
func TestEmitGoMatchesInterpreter(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go-run of emitted source")
	}
	cases := []struct {
		name string
		src  string
		args []token.Value
		cli  []string
	}{
		{"sumloop", workload.SumLoopID, []token.Value{token.Int(1000)}, []string{"1000"}},
		{"fib", workload.FibID, []token.Value{token.Int(12)}, []string{"12"}},
		{"trapezoid", workload.TrapezoidID,
			[]token.Value{token.Float(0), token.Float(1), token.Float(100)},
			[]string{"0.0", "1.0", "100.0"}},
		{"matmul", workload.MatMulID, []token.Value{token.Int(3)}, []string{"3"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := id.Compile(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			runArgs, err := id.EntryArgs(prog, tc.args)
			if err != nil {
				t.Fatal(err)
			}
			want, err := graph.NewInterp(prog).Run(runArgs...)
			if err != nil {
				t.Fatal(err)
			}
			got, stderr, runErr := runEmitted(t, prog, tc.cli...)
			if runErr != nil {
				t.Fatalf("emitted program failed: %v\nstderr: %s", runErr, stderr)
			}
			if len(got) != len(want) {
				t.Fatalf("emitted printed %d results, interp returned %d\nstdout: %q", len(got), len(want), got)
			}
			for i := range want {
				if got[i] != want[i].String() {
					t.Fatalf("result %d: emitted %q, interp %q", i, got[i], want[i])
				}
			}
		})
	}
}

// TestEmitGoHiddenTrigger pins the zero-parameter-main convention: the
// emitted program supplies the hidden trigger itself when run bare.
func TestEmitGoHiddenTrigger(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go-run of emitted source")
	}
	prog, err := id.Compile(`def main() = 6 * 7;`)
	if err != nil {
		t.Fatal(err)
	}
	got, stderr, runErr := runEmitted(t, prog)
	if runErr != nil {
		t.Fatalf("emitted program failed: %v\nstderr: %s", runErr, stderr)
	}
	if len(got) != 1 || got[0] != "42" {
		t.Fatalf("stdout = %q, want [42]", got)
	}
}

// TestEmitGoFault pins fault behavior: a program the interpreter rejects at
// run time must exit nonzero from the emitted binary with the same fault
// named on stderr.
func TestEmitGoFault(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go-run of emitted source")
	}
	prog, err := id.Compile(`def main(n) = 1 / (n - n);`)
	if err != nil {
		t.Fatal(err)
	}
	got, stderr, runErr := runEmitted(t, prog, "3")
	if runErr == nil {
		t.Fatalf("emitted program accepted a division by zero; stdout %q", got)
	}
	if !strings.Contains(stderr, "division by zero") {
		t.Fatalf("stderr %q lacks the fault name", stderr)
	}
}
