package direct

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/token"
	"repro/internal/workload"
)

// workloadCases drives every committed workload program through the
// backend; the interpreter is the reference, the pure-Go checksums pin
// both against hand arithmetic.
var workloadCases = []struct {
	name string
	src  string
	args []token.Value
	want func() (int64, bool) // pure-Go expectation, when one exists
}{
	{"sumloop", workload.SumLoopID, []token.Value{token.Int(1000)},
		func() (int64, bool) { return 500500, true }},
	{"fib", workload.FibID, []token.Value{token.Int(12)},
		func() (int64, bool) { return 144, true }},
	{"trapezoid", workload.TrapezoidID, []token.Value{token.Float(0), token.Float(1), token.Float(100)}, nil},
	{"producer-consumer", workload.ProducerConsumerID, []token.Value{token.Int(12)},
		func() (int64, bool) { return 144, true }},
	{"matmul", workload.MatMulID, []token.Value{token.Int(4)},
		func() (int64, bool) { return workload.MatMulChecksum(4), true }},
	{"collatz", workload.CollatzID, []token.Value{token.Int(27)},
		func() (int64, bool) { return 111, true }},
	{"wavefront", workload.WavefrontID, []token.Value{token.Int(8)},
		func() (int64, bool) { return workload.WavefrontExpected(8), true }},
	{"mergesort", workload.MergeSortID, []token.Value{token.Int(16)},
		func() (int64, bool) { return workload.MergeSortChecksum(16), true }},
}

// TestDirectMatchesInterpreterOnWorkloads demands bit-identical results
// AND identical firing counts on every workload program: the direct
// backend fires exactly the instruction activations the reference
// interpreter fires, just scheduled depth-first instead of in waves.
func TestDirectMatchesInterpreterOnWorkloads(t *testing.T) {
	for _, tc := range workloadCases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := id.Compile(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			args, err := id.EntryArgs(prog, tc.args)
			if err != nil {
				t.Fatal(err)
			}
			it := graph.NewInterp(prog)
			want, err := it.Run(args...)
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			x := New(prog)
			got, err := x.Run(args...)
			if err != nil {
				t.Fatalf("direct: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("direct returned %d results, interp %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("result %d: direct %s, interp %s", i, got[i], want[i])
				}
			}
			if x.Fired() != it.Fired() {
				t.Fatalf("direct fired %d instructions, interp fired %d", x.Fired(), it.Fired())
			}
			if tc.want != nil {
				if exp, ok := tc.want(); ok {
					v, err := got[0].AsInt()
					if err != nil {
						t.Fatal(err)
					}
					if v != exp {
						t.Fatalf("direct answer %d, pure-Go %d", v, exp)
					}
				}
			}
		})
	}
}

// TestDirectSharedPlan pins the compile-once-run-many contract: many
// executors over one plan, interleaved with an interpreter on the same
// plan, all agree.
func TestDirectSharedPlan(t *testing.T) {
	prog, err := id.Compile(workload.SumLoopID)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := graph.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(0); n <= 40; n++ {
		want, err := graph.NewInterpPlan(plan).Run(token.Int(n))
		if err != nil {
			t.Fatalf("n=%d interp: %v", n, err)
		}
		got, err := NewFromPlan(plan).Run(token.Int(n))
		if err != nil {
			t.Fatalf("n=%d direct: %v", n, err)
		}
		if len(got) != 1 || got[0] != want[0] {
			t.Fatalf("n=%d: direct %v, interp %v", n, got, want)
		}
	}
}

// TestDirectStructure pins I-structure inspection: after a fill loop the
// backend exposes the same element values as the interpreter.
func TestDirectStructure(t *testing.T) {
	src := `
def main(n) =
  { a = array(n);
    p = (initial z <- 0
         for i from 0 to n - 1 do
           a[i] <- (i + 1) * (i + 1);
           new z <- z
         return 0);
    a[n - 1] + p };
`
	prog, err := id.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	x := New(prog)
	res, err := x.Run(token.Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res[0].AsInt(); v != 25 {
		t.Fatalf("result = %v, want 25", res[0])
	}
	got := x.Structure(token.Ref{Base: 0, Len: 5})
	for i, v := range got {
		want := int64(i+1) * int64(i+1)
		if n, err := v.AsInt(); err != nil || n != want {
			t.Fatalf("cell %d = %s, want %d", i, v, want)
		}
	}
}

// faultCases are programs whose runs must fail, and fail the same way the
// interpreter fails (error dispositions agree even though the backends
// schedule differently).
var faultCases = []struct {
	name string
	src  string
	arg  int64
	frag string // substring of the direct backend's error
}{
	{"single-assignment", `def main(n) = { a = array(2); a[0] <- 1; a[0] <- 2; a[0] };`, 1, "single-assignment"},
	{"deadlocked-fetch", `def main(n) = { a = array(2); a[0] <- 1; a[1] };`, 1, "deadlocked"},
	{"division-by-zero", `def main(n) = 1 / (n - n);`, 3, "division by zero"},
}

func TestDirectFaults(t *testing.T) {
	for _, tc := range faultCases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := id.Compile(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			_, ierr := graph.NewInterp(prog).Run(token.Int(tc.arg))
			if ierr == nil {
				t.Fatal("interpreter accepted the faulting program; the case is stale")
			}
			_, derr := Run(prog, token.Int(tc.arg))
			if derr == nil {
				t.Fatalf("direct backend accepted a program the interpreter rejects (%v)", ierr)
			}
			if !strings.Contains(derr.Error(), tc.frag) {
				t.Fatalf("direct error %q lacks %q", derr, tc.frag)
			}
		})
	}
}

// TestDirectNonTermination pins the firing bound: infinite recursion must
// exhaust SetMaxSteps, not the Go stack — the explicit activation stack's
// job.
func TestDirectNonTermination(t *testing.T) {
	prog, err := id.Compile(`def f(x) = f(x + 1);` + "\n" + `def main(n) = f(n);`)
	if err != nil {
		t.Fatal(err)
	}
	x := New(prog)
	x.SetMaxSteps(100_000)
	_, err = x.Run(token.Int(1))
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v, want a firing-bound error", err)
	}
}

// TestDirectDeepLoop runs a million-iteration loop — far beyond what a
// recursion-based lowering could survive — and checks the closed form.
func TestDirectDeepLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prog, err := id.Compile(workload.SumLoopID)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1_000_000
	x := New(prog)
	x.SetMaxSteps(100_000_000)
	res, err := x.Run(token.Int(n))
	if err != nil {
		t.Fatal(err)
	}
	v, err := res[0].AsInt()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n) * (n + 1) / 2; v != want {
		t.Fatalf("sum(1..%d) = %d, want %d", n, v, want)
	}
}

// TestDirectArityError pins the argument-count check.
func TestDirectArityError(t *testing.T) {
	prog, err := id.Compile(workload.FibID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, token.Int(1), token.Int(2)); err == nil {
		t.Fatal("direct backend accepted the wrong argument count")
	}
}
