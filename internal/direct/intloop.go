package direct

import (
	"repro/internal/graph"
	"repro/internal/token"
)

// Integer specialization of the loop accelerator. Most MiniID loops
// circulate nothing but integers (induction variables, accumulators,
// I-structure indices), and for those the token.Value-typed DAG walk in
// runLoop still pays ~25 ns per op in value copies and kind dispatch.
// lowerInt type-checks the already-recognized loop plan under a simple
// static discipline — circulating variables are int64, each DAG slot is
// int64 or bool depending on the opcode that writes it — and, when every
// op checks out, re-emits both DAGs as a flat program over one dense
// int64 register file (bools stored as 0/1). The steady-state iteration
// then runs as a handful of register-indexed switch dispatches with no
// allocation and no interface-style dispatch at all.
//
// The specialization must be bit-identical to graph.Eval on the int
// tower, so each iop mirrors one verified Eval case: add/sub/mul wrap
// natively, div/mod truncate with a zero-divisor fault, the ordered
// comparisons (and int equality, per token.Value.Equal) compare through
// float64 exactly like Eval's AsFloat tower, and bool equality compares
// the bools themselves. Anything outside that table — float literals,
// sqrt, mixed-type equality, a bool circulating variable — rejects the
// specialization and leaves the general token.Value loop in charge.
// Division or modulo by zero cannot be typed away, so those iops bail
// out of the native loop mid-iteration; the standard injection protocol
// then has the delivery engine refire the iteration and surface the
// fault with its ordinary message. (Bailing may happen even when the
// engine's own schedule would have exited first — the predicate DAG and
// body DAG are evaluated together here — but injection is semantics-free
// either way: the engine re-decides the iteration from scratch.)

// iopKind is the specialized opcode set. Every kind states the static
// types it was checked against: i = int64, b = bool-as-0/1.
type iopKind uint8

const (
	iAdd iopKind = iota // i,i -> i, wrapping
	iSub                // i,i -> i, wrapping
	iMul                // i,i -> i, wrapping
	iDiv                // i,i -> i, truncating; b==0 bails to the engine
	iMod                // i,i -> i; b==0 bails to the engine
	iMin                // i,i -> i
	iMax                // i,i -> i
	iLT                 // i,i -> b, compared as float64 like Eval
	iLE                 // i,i -> b, compared as float64
	iGT                 // i,i -> b, compared as float64
	iGE                 // i,i -> b, compared as float64
	iEQf                // i,i -> b, compared as float64 like Value.Equal
	iNEf                // i,i -> b, compared as float64
	iEQb                // b,b -> b
	iNEb                // b,b -> b
	iAnd                // b,b -> b
	iOr                 // b,b -> b
	iNot                // b -> b
	iNeg                // i -> i
	iAbs                // i -> i
	iMov                // any -> same type (identity, const, floor-of-int)
)

// intOp reads registers a and b and writes register d.
type intOp struct {
	op      iopKind
	a, b, d uint16
}

// intPlan is the flat int64-register program for one loop block.
// Register layout: [0,nVars) circulating variables, then one register
// per DAG slot, then the literal pool.
type intPlan struct {
	regs0   []int64  // template: literals preloaded, vars/slots zero
	ops     []intOp  // predicate DAG then body DAG, topological order
	predReg uint16   // register steering the switches; bool-typed
	next    []uint16 // per variable: register holding its next value
}

// register static types during lowering.
const (
	tInt = iota
	tBool
)

// lowerInt type-checks lp and emits its int64 program, or returns nil
// when any operand or opcode falls outside the integer discipline.
func lowerInt(lp *loopPlan) *intPlan {
	m := lp.nVars
	nRegs := m + lp.nSlots
	typ := make([]uint8, nRegs, nRegs+8)
	regs0 := make([]int64, nRegs, nRegs+8)

	// lit interns a literal value as a constant register.
	lit := func(v token.Value) (uint16, uint8, bool) {
		var c int64
		var t uint8
		switch v.Kind {
		case token.KindInt:
			c, t = v.I, tInt
		case token.KindBool:
			t = tBool
			if v.B {
				c = 1
			}
		default:
			return 0, 0, false // float/nil literals: general loop only
		}
		r := uint16(len(regs0))
		regs0 = append(regs0, c)
		typ = append(typ, t)
		return r, t, true
	}
	// operand resolves port p of op to a register and its static type.
	operand := func(op *loopOp, p int) (uint16, uint8, bool) {
		if op.lit[p] {
			return lit(op.litv[p])
		}
		if op.src[p].isVar {
			return uint16(op.src[p].idx), tInt, true
		}
		r := uint16(m + op.src[p].idx)
		return r, typ[r], true
	}

	var ops []intOp
	emit := func(src []loopOp) bool {
		for i := range src {
			op := &src[i]
			d := uint16(m + op.dst)
			// Unary opcodes read port 0; OpConst reads port 1; the rest
			// are binary. Resolve only the ports the opcode consumes, so
			// an unread Nil port cannot spuriously reject the plan.
			switch op.op {
			case graph.OpIdentity, graph.OpConst:
				p := 0
				if op.op == graph.OpConst {
					p = 1
				}
				a, t, ok := operand(op, p)
				if !ok {
					return false
				}
				ops = append(ops, intOp{op: iMov, a: a, d: d})
				typ[d] = t
			case graph.OpNeg, graph.OpAbs, graph.OpFloor:
				a, t, ok := operand(op, 0)
				if !ok || t != tInt {
					return false
				}
				k := iMov // floor of an int is the int, per evalUnary
				switch op.op {
				case graph.OpNeg:
					k = iNeg
				case graph.OpAbs:
					k = iAbs
				}
				ops = append(ops, intOp{op: k, a: a, d: d})
				typ[d] = tInt
			case graph.OpNot:
				a, t, ok := operand(op, 0)
				if !ok || t != tBool {
					return false
				}
				ops = append(ops, intOp{op: iNot, a: a, d: d})
				typ[d] = tBool
			case graph.OpAnd, graph.OpOr:
				a, ta, ok := operand(op, 0)
				b, tb, ok2 := operand(op, 1)
				if !ok || !ok2 || ta != tBool || tb != tBool {
					return false
				}
				k := iAnd
				if op.op == graph.OpOr {
					k = iOr
				}
				ops = append(ops, intOp{op: k, a: a, b: b, d: d})
				typ[d] = tBool
			case graph.OpEQ, graph.OpNE:
				a, ta, ok := operand(op, 0)
				b, tb, ok2 := operand(op, 1)
				if !ok || !ok2 || ta != tb {
					return false // mixed-type Equal: general loop only
				}
				k := iEQf
				if ta == tBool {
					k = iEQb
				}
				if op.op == graph.OpNE {
					k++ // iNEf / iNEb follow their EQ kinds
				}
				ops = append(ops, intOp{op: k, a: a, b: b, d: d})
				typ[d] = tBool
			case graph.OpLT, graph.OpLE, graph.OpGT, graph.OpGE,
				graph.OpAdd, graph.OpSub, graph.OpMul, graph.OpDiv,
				graph.OpMod, graph.OpMin, graph.OpMax:
				a, ta, ok := operand(op, 0)
				b, tb, ok2 := operand(op, 1)
				if !ok || !ok2 || ta != tInt || tb != tInt {
					return false
				}
				var k iopKind
				t := uint8(tInt)
				switch op.op {
				case graph.OpLT:
					k, t = iLT, tBool
				case graph.OpLE:
					k, t = iLE, tBool
				case graph.OpGT:
					k, t = iGT, tBool
				case graph.OpGE:
					k, t = iGE, tBool
				case graph.OpAdd:
					k = iAdd
				case graph.OpSub:
					k = iSub
				case graph.OpMul:
					k = iMul
				case graph.OpDiv:
					k = iDiv
				case graph.OpMod:
					k = iMod
				case graph.OpMin:
					k = iMin
				default:
					k = iMax
				}
				ops = append(ops, intOp{op: k, a: a, b: b, d: d})
				typ[d] = t
			default:
				return false // sqrt and anything unexpected
			}
		}
		return true
	}
	if !emit(lp.predOps) || !emit(lp.bodyOps) {
		return nil
	}

	// The predicate feeds AsBool, so it must be statically bool. A
	// circulating variable is int by discipline, so a variable predicate
	// rejects the specialization (the general loop handles it).
	if lp.predSrc.isVar {
		return nil
	}
	predReg := uint16(m + lp.predSrc.idx)
	if typ[predReg] != tBool {
		return nil
	}

	// Next-iteration sources must be int-typed, or the variables would
	// stop being int64 after one iteration.
	next := make([]uint16, m)
	for k, src := range lp.next {
		if src.isVar {
			next[k] = uint16(src.idx)
			continue
		}
		r := uint16(m + src.idx)
		if typ[r] != tInt {
			return nil
		}
		next[k] = r
	}

	return &intPlan{regs0: regs0, ops: ops, predReg: predReg, next: next}
}

// runLoopInt executes steady iterations over the int64 register file.
// It returns false — having touched nothing — when an entry value is
// not an integer, in which case the caller falls back to the general
// token.Value loop. Otherwise it runs until the first non-steady
// iteration (predicate false, div/mod by zero, or firing budget) and
// hands the current circulation values back through the caller's vars
// slice for the standard engine injection.
func (x *Exec) runLoopInt(lp *loopPlan, vars []token.Value, iterp *uint32) bool {
	ip := lp.ip
	for _, v := range vars {
		if v.Kind != token.KindInt {
			return false
		}
	}
	regs := make([]int64, len(ip.regs0))
	copy(regs, ip.regs0)
	m := lp.nVars
	for k := 0; k < m; k++ {
		regs[k] = vars[k].I
	}
	var nextBuf [8]int64
	next := nextBuf[:0]
	if m <= len(nextBuf) {
		next = nextBuf[:m]
	} else {
		next = make([]int64, m)
	}

	iter := uint32(1)
steady:
	for x.fired <= x.maxSteps {
		for i := range ip.ops {
			op := &ip.ops[i]
			a, b := regs[op.a], regs[op.b]
			var v int64
			switch op.op {
			case iAdd:
				v = a + b
			case iSub:
				v = a - b
			case iMul:
				v = a * b
			case iDiv:
				if b == 0 {
					break steady
				}
				v = a / b
			case iMod:
				if b == 0 {
					break steady
				}
				v = a % b
			case iMin:
				v = a
				if b < a {
					v = b
				}
			case iMax:
				v = a
				if b > a {
					v = b
				}
			case iLT:
				if float64(a) < float64(b) {
					v = 1
				}
			case iLE:
				if float64(a) <= float64(b) {
					v = 1
				}
			case iGT:
				if float64(a) > float64(b) {
					v = 1
				}
			case iGE:
				if float64(a) >= float64(b) {
					v = 1
				}
			case iEQf:
				if float64(a) == float64(b) {
					v = 1
				}
			case iNEf:
				if float64(a) != float64(b) {
					v = 1
				}
			case iEQb:
				if a == b {
					v = 1
				}
			case iNEb:
				if a != b {
					v = 1
				}
			case iAnd:
				v = a & b
			case iOr:
				v = a | b
			case iNot:
				v = 1 ^ a
			case iNeg:
				v = -a
			case iAbs:
				v = a
				if a < 0 {
					v = -a
				}
			default: // iMov
				v = a
			}
			regs[op.d] = v
		}
		if regs[ip.predReg] == 0 {
			break
		}
		for k, r := range ip.next {
			next[k] = regs[r]
		}
		for k := 0; k < m; k++ {
			regs[k] = next[k]
		}
		x.fired += lp.perIter
		iter++
	}
	for k := 0; k < m; k++ {
		vars[k] = token.Int(regs[k])
	}
	*iterp = iter
	return true
}
