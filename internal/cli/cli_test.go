package cli

import (
	"testing"

	"repro/internal/token"
)

func TestParseArgs(t *testing.T) {
	got, err := ParseArgs("1 -3 2.5 true false 1e2")
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Value{
		token.Int(1), token.Int(-3), token.Float(2.5),
		token.Bool(true), token.Bool(false), token.Float(100),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d values", len(got))
	}
	for i := range want {
		if !got[i].Equal(want[i]) || got[i].Kind != want[i].Kind {
			t.Fatalf("arg %d: %v (kind %v), want %v (kind %v)", i, got[i], got[i].Kind, want[i], want[i].Kind)
		}
	}
}

func TestParseArgsEmpty(t *testing.T) {
	got, err := ParseArgs("   ")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v, %v", got, err)
	}
}

func TestParseArgsBad(t *testing.T) {
	for _, s := range []string{"abc", "1 2 x", "--"} {
		if _, err := ParseArgs(s); err == nil {
			t.Errorf("ParseArgs(%q) should fail", s)
		}
	}
}
