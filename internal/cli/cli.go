// Package cli holds the small helpers shared by the command-line tools:
// parsing user-supplied program arguments into token values.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/token"
)

// ParseArgs converts a space-separated argument string ("0 1.5 true") into
// token values: integers, floats, and booleans.
func ParseArgs(s string) ([]token.Value, error) {
	fields := strings.Fields(s)
	out := make([]token.Value, 0, len(fields))
	for _, f := range fields {
		v, err := ParseArg(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseArg converts one literal.
func ParseArg(f string) (token.Value, error) {
	switch f {
	case "true":
		return token.Bool(true), nil
	case "false":
		return token.Bool(false), nil
	}
	if i, err := strconv.ParseInt(f, 10, 64); err == nil {
		return token.Int(i), nil
	}
	if fl, err := strconv.ParseFloat(f, 64); err == nil {
		return token.Float(fl), nil
	}
	return token.Nil(), fmt.Errorf("cli: bad argument %q (want an integer, float, or boolean)", f)
}
