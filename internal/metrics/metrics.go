// Package metrics provides the measurement plumbing shared by the
// simulators: counters, gauges with high-water marks, histograms, busy/idle
// utilization tracking, and plain-text table rendering for the experiment
// harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Gauge tracks an instantaneous level plus its high-water mark and a
// time-weighted running sum for averaging.
type Gauge struct {
	level   int64
	max     int64
	sum     uint64 // sum of level over samples
	samples uint64
}

// Set assigns the current level.
func (g *Gauge) Set(v int64) {
	g.level = v
	if v > g.max {
		g.max = v
	}
}

// Add adjusts the current level by d.
func (g *Gauge) Add(d int64) { g.Set(g.level + d) }

// Sample accumulates the current level into the running average. Call once
// per cycle for a time-weighted mean.
func (g *Gauge) Sample() {
	if g.level > 0 {
		g.sum += uint64(g.level)
	}
	g.samples++
}

// SampleN accumulates the current level n times at once — the gap-settled
// equivalent of calling Sample once per cycle over n cycles during which
// the level provably did not change. Mean and Max stay bit-identical to
// per-cycle sampling.
func (g *Gauge) SampleN(n uint64) {
	if g.level > 0 {
		g.sum += uint64(g.level) * n
	}
	g.samples += n
}

// Level returns the current level.
func (g *Gauge) Level() int64 { return g.level }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max }

// Mean returns the average sampled level, or 0 with no samples.
func (g *Gauge) Mean() float64 {
	if g.samples == 0 {
		return 0
	}
	return float64(g.sum) / float64(g.samples)
}

// TimedGauge is the event-driven replacement for sampling a Gauge every
// cycle: the owner calls Update only when the level changes, and the gauge
// reconstructs exactly the statistics per-cycle sampling would have seen.
// The convention matches end-of-cycle sampling: the level recorded for
// cycle c is the level after the last Update at or before c, so a level
// set and overwritten within the same cycle is never observed — precisely
// the behaviour of sampling once per cycle after all updates. Mean and Max
// are therefore bit-identical to the sampled Gauge they replace, at O(1)
// per level change instead of O(1) per simulated cycle.
type TimedGauge struct {
	level  int64
	max    int64
	sum    uint64 // Σ end-of-cycle levels over [0, last)
	last   uint64 // cycle through which sum/max are settled
	cycles uint64 // denominator, fixed by Finish
}

// settle credits cycles [g.last, now) with the current level.
func (g *TimedGauge) settle(now uint64) {
	if now <= g.last {
		return
	}
	// The level persisted across at least one cycle boundary, so per-cycle
	// sampling would have observed it.
	if g.level > g.max {
		g.max = g.level
	}
	if g.level > 0 {
		g.sum += uint64(g.level) * (now - g.last)
	}
	g.last = now
}

// Update sets the level as of cycle now.
func (g *TimedGauge) Update(now uint64, level int64) {
	g.settle(now)
	g.level = level
}

// Add adjusts the level by d as of cycle now.
func (g *TimedGauge) Add(now uint64, d int64) { g.Update(now, g.level+d) }

// Finish settles through end-of-run cycle now (exclusive) and fixes the
// averaging denominator at now cycles. Idempotent for a constant now.
func (g *TimedGauge) Finish(now uint64) {
	g.settle(now)
	g.cycles = now
}

// Level returns the current level.
func (g *TimedGauge) Level() int64 { return g.level }

// Max returns the highest level observed at any cycle end (through the
// last settle point).
func (g *TimedGauge) Max() int64 { return g.max }

// Mean returns the per-cycle average level over the Finished run, or 0
// before Finish.
func (g *TimedGauge) Mean() float64 {
	if g.cycles == 0 {
		return 0
	}
	return float64(g.sum) / float64(g.cycles)
}

// Utilization tracks busy vs idle cycles for a resource such as an ALU.
type Utilization struct {
	busy  uint64
	total uint64
}

// Tick records one cycle; busy says whether the resource did useful work.
func (u *Utilization) Tick(busy bool) {
	u.total++
	if busy {
		u.busy++
	}
}

// AddBusy records n busy cycles at once — the event-driven alternative to
// calling Tick(true) n times. Pair with SetTotal at end of run.
func (u *Utilization) AddBusy(n uint64) { u.busy += n }

// AddTicks records total cycles of which busy were busy, the bulk
// equivalent of total Tick calls over a gap whose busy/idle split is known
// in closed form. Fraction stays bit-identical to per-cycle ticking.
func (u *Utilization) AddTicks(busy, total uint64) {
	u.busy += busy
	u.total += total
}

// SetTotal fixes the observation window at total cycles, for owners that
// account busy time at event granularity (AddBusy) rather than per cycle.
func (u *Utilization) SetTotal(total uint64) { u.total = total }

// Busy returns the busy-cycle count.
func (u *Utilization) Busy() uint64 { return u.busy }

// Total returns the observed cycle count.
func (u *Utilization) Total() uint64 { return u.total }

// Fraction returns busy/total in [0,1], or 0 when nothing was observed.
func (u *Utilization) Fraction() float64 {
	if u.total == 0 {
		return 0
	}
	return float64(u.busy) / float64(u.total)
}

// Histogram accumulates integer observations into power-of-two-ish linear
// buckets chosen at construction.
type Histogram struct {
	bounds []uint64 // upper bounds, ascending; last bucket is unbounded
	counts []uint64
	sum    uint64
	n      uint64
	max    uint64
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds. An observation v lands in the first bucket with v <= bound, or in
// the overflow bucket.
func NewHistogram(bounds ...uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v uint64) {
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the mean observation, or 0 with none.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max }

// Buckets returns (upper-bound, count) pairs; the final pair has bound
// math.MaxUint64 for the overflow bucket.
func (h *Histogram) Buckets() []struct {
	Bound uint64
	Count uint64
} {
	out := make([]struct {
		Bound uint64
		Count uint64
	}, 0, len(h.counts))
	for i, c := range h.counts {
		b := uint64(math.MaxUint64)
		if i < len(h.bounds) {
			b = h.bounds[i]
		}
		out = append(out, struct {
			Bound uint64
			Count uint64
		}{b, c})
	}
	return out
}

// Series is a named sequence of (x, y) points, the unit of experiment
// output: one Series per curve in a figure, one row per sweep point.
type Series struct {
	Name   string
	Points []Point
}

// Point is one measurement in a parameter sweep.
type Point struct {
	X float64
	Y float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Table renders aligned columns of experiment results as plain text, the
// textual analogue of the paper's figures.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without a point,
// otherwise three significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// SeriesTable renders several series sharing x values as one table. Series
// are matched on exact x; missing cells render blank.
func SeriesTable(title, xlabel string, series ...Series) *Table {
	xsSet := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	headers := append([]string{xlabel}, make([]string, len(series))...)
	for i, s := range series {
		headers[i+1] = s.Name
	}
	t := NewTable(title, headers...)
	for _, x := range xs {
		row := make([]interface{}, len(series)+1)
		row[0] = FormatFloat(x)
		for i, s := range series {
			row[i+1] = ""
			for _, p := range s.Points {
				if p.X == x {
					row[i+1] = FormatFloat(p.Y)
					break
				}
			}
		}
		t.AddRow(row...)
	}
	return t
}
