package metrics

import "testing"

// TestTimedGaugeMatchesSampledGauge drives a sampled Gauge (one Set+Sample
// at the end of every cycle, the simulator's old per-cycle accounting) and
// a TimedGauge (one Update per level change) through the same pseudo-random
// level trajectory, including several changes within one cycle, and demands
// bit-identical Max and Mean. This equivalence is what lets the machine
// kernel skip idle cycles without perturbing occupancy statistics.
func TestTimedGaugeMatchesSampledGauge(t *testing.T) {
	const cycles = 10_000
	var sampled Gauge
	var timed TimedGauge
	level := int64(0)
	state := uint64(0x1234567)
	rnd := func(n uint64) uint64 { // xorshift, deterministic
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state % n
	}
	for c := uint64(0); c < cycles; c++ {
		// 0-3 level changes within this cycle; only the last one should be
		// visible to end-of-cycle sampling.
		for i := uint64(0); i < rnd(4); i++ {
			level += int64(rnd(7)) - 3
			if level < 0 {
				level = 0
			}
			timed.Update(c, level)
		}
		sampled.Set(level)
		sampled.Sample()
	}
	timed.Finish(cycles)
	if timed.Max() != sampled.Max() {
		t.Errorf("Max: timed %d, sampled %d", timed.Max(), sampled.Max())
	}
	if timed.Mean() != sampled.Mean() {
		t.Errorf("Mean: timed %v, sampled %v", timed.Mean(), sampled.Mean())
	}
	if timed.Level() != sampled.Level() {
		t.Errorf("Level: timed %d, sampled %d", timed.Level(), sampled.Level())
	}
}

func TestTimedGaugeIntraCycleSpikeInvisible(t *testing.T) {
	// A level that rises and falls within one cycle is never observed by
	// end-of-cycle sampling, so it must not move the high-water mark.
	var g TimedGauge
	g.Update(5, 10)
	g.Update(5, 0)
	g.Finish(20)
	if g.Max() != 0 {
		t.Fatalf("intra-cycle spike leaked into Max: %d", g.Max())
	}
	if g.Mean() != 0 {
		t.Fatalf("intra-cycle spike leaked into Mean: %v", g.Mean())
	}
}

func TestTimedGaugeFinishIdempotent(t *testing.T) {
	var g TimedGauge
	g.Update(0, 2)
	g.Finish(10)
	m, mx := g.Mean(), g.Max()
	g.Finish(10)
	if g.Mean() != m || g.Max() != mx {
		t.Fatalf("second Finish changed stats: mean %v->%v max %d->%d", m, g.Mean(), mx, g.Max())
	}
	if g.Mean() != 2.0 {
		t.Fatalf("Mean = %v, want 2.0", g.Mean())
	}
}

func TestTimedGaugeAdd(t *testing.T) {
	var g TimedGauge
	g.Add(0, 3)
	g.Add(4, -1)
	g.Finish(8)
	// Cycles 0-3 at level 3, cycles 4-7 at level 2.
	if g.Max() != 3 {
		t.Fatalf("Max = %d, want 3", g.Max())
	}
	if want := (3.0*4 + 2.0*4) / 8; g.Mean() != want {
		t.Fatalf("Mean = %v, want %v", g.Mean(), want)
	}
}

func TestUtilizationEventAccounting(t *testing.T) {
	// AddBusy+SetTotal must agree with per-cycle Tick for the same
	// busy/idle trajectory.
	var ticked, event Utilization
	busySpans := []struct{ at, dur uint64 }{{2, 3}, {10, 1}, {14, 6}}
	total := uint64(25)
	i := 0
	for c := uint64(0); c < total; c++ {
		busy := false
		for _, s := range busySpans {
			if c >= s.at && c < s.at+s.dur {
				busy = true
			}
		}
		ticked.Tick(busy)
		if i < len(busySpans) && busySpans[i].at == c {
			event.AddBusy(busySpans[i].dur)
			i++
		}
	}
	event.SetTotal(total)
	if event.Busy() != ticked.Busy() || event.Total() != ticked.Total() {
		t.Fatalf("event (%d/%d) != ticked (%d/%d)", event.Busy(), event.Total(), ticked.Busy(), ticked.Total())
	}
	if event.Fraction() != ticked.Fraction() {
		t.Fatalf("Fraction: event %v, ticked %v", event.Fraction(), ticked.Fraction())
	}
}
