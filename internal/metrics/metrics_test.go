package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value() = %d, want 5", c.Value())
	}
}

func TestGaugeHighWaterAndMean(t *testing.T) {
	var g Gauge
	g.Set(3)
	g.Sample()
	g.Add(4) // 7
	g.Sample()
	g.Add(-5) // 2
	g.Sample()
	if g.Level() != 2 || g.Max() != 7 {
		t.Fatalf("level=%d max=%d, want 2/7", g.Level(), g.Max())
	}
	if want := (3.0 + 7 + 2) / 3; g.Mean() != want {
		t.Fatalf("Mean() = %g, want %g", g.Mean(), want)
	}
}

func TestGaugeEmptyMean(t *testing.T) {
	var g Gauge
	if g.Mean() != 0 {
		t.Fatal("empty gauge mean must be 0")
	}
}

func TestUtilization(t *testing.T) {
	var u Utilization
	for i := 0; i < 10; i++ {
		u.Tick(i < 3)
	}
	if u.Fraction() != 0.3 || u.Busy() != 3 || u.Total() != 10 {
		t.Fatalf("fraction=%g busy=%d total=%d", u.Fraction(), u.Busy(), u.Total())
	}
	var empty Utilization
	if empty.Fraction() != 0 {
		t.Fatal("empty utilization must be 0")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []uint64{0, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	b := h.Buckets()
	wantCounts := []uint64{2, 2, 1, 1}
	for i, w := range wantCounts {
		if b[i].Count != w {
			t.Fatalf("bucket %d count = %d, want %d (buckets %v)", i, b[i].Count, w, b)
		}
	}
	if b[3].Bound != math.MaxUint64 {
		t.Fatal("overflow bucket must be unbounded")
	}
	if h.Count() != 6 || h.Max() != 1000 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	if want := float64(0+1+5+10+50+1000) / 6; h.Mean() != want {
		t.Fatalf("Mean() = %g, want %g", h.Mean(), want)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds must panic")
		}
	}()
	NewHistogram(10, 10)
}

func TestHistogramMeanProperty(t *testing.T) {
	if err := quick.Check(func(vals []uint16) bool {
		h := NewHistogram(10, 100, 1000)
		var sum uint64
		for _, v := range vals {
			h.Observe(uint64(v))
			sum += uint64(v)
		}
		if len(vals) == 0 {
			return h.Mean() == 0
		}
		return math.Abs(h.Mean()-float64(sum)/float64(len(vals))) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "x", "long-header")
	tb.AddRow(1, 2.5)
	tb.AddRow("wide-cell-content", 3)
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "long-header") {
		t.Fatalf("missing title/header:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if !strings.Contains(s, "2.500") {
		t.Fatalf("float formatting missing:\n%s", s)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		-12:    "-12",
		2.5:    "2.500",
		123.45: "123.5",
		0.001:  "0.001",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSeriesTableAlignsOnX(t *testing.T) {
	var a, b Series
	a.Name, b.Name = "A", "B"
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(2, 200)
	b.Add(3, 300)
	tb := SeriesTable("t", "x", a, b)
	if len(tb.Rows) != 3 {
		t.Fatalf("want 3 x-rows, got %d", len(tb.Rows))
	}
	// x=1 has no B value
	if tb.Rows[0][2] != "" {
		t.Fatalf("missing cell should be blank, got %q", tb.Rows[0][2])
	}
	if tb.Rows[1][1] != "20" || tb.Rows[1][2] != "200" {
		t.Fatalf("x=2 row wrong: %v", tb.Rows[1])
	}
}
