package metrics

import "repro/internal/sim"

// Checkpoint serialization for the measurement types. Histogram bounds are
// construction-time configuration and are validated, not restored: a
// checkpoint loads into a freshly built histogram with identical buckets.

// Save appends the counter's state.
func (c *Counter) Save(e *sim.Enc) { e.U64(c.n) }

// Load restores the counter's state.
func (c *Counter) Load(d *sim.Dec) { c.n = d.U64() }

// Save appends the gauge's state.
func (g *Gauge) Save(e *sim.Enc) {
	e.I64(g.level)
	e.I64(g.max)
	e.U64(g.sum)
	e.U64(g.samples)
}

// Load restores the gauge's state.
func (g *Gauge) Load(d *sim.Dec) {
	g.level = d.I64()
	g.max = d.I64()
	g.sum = d.U64()
	g.samples = d.U64()
}

// Save appends the timed gauge's state.
func (g *TimedGauge) Save(e *sim.Enc) {
	e.I64(g.level)
	e.I64(g.max)
	e.U64(g.sum)
	e.U64(g.last)
	e.U64(g.cycles)
}

// Load restores the timed gauge's state.
func (g *TimedGauge) Load(d *sim.Dec) {
	g.level = d.I64()
	g.max = d.I64()
	g.sum = d.U64()
	g.last = d.U64()
	g.cycles = d.U64()
}

// Save appends the utilization's state.
func (u *Utilization) Save(e *sim.Enc) {
	e.U64(u.busy)
	e.U64(u.total)
}

// Load restores the utilization's state.
func (u *Utilization) Load(d *sim.Dec) {
	u.busy = d.U64()
	u.total = d.U64()
}

// Save appends the histogram's dynamic state (bounds are configuration).
func (h *Histogram) Save(e *sim.Enc) {
	e.U64(h.sum)
	e.U64(h.n)
	e.U64(h.max)
	e.Len(len(h.counts))
	for _, c := range h.counts {
		e.U64(c)
	}
}

// Load restores the histogram's dynamic state into a histogram built with
// the identical bounds.
func (h *Histogram) Load(d *sim.Dec) {
	h.sum = d.U64()
	h.n = d.U64()
	h.max = d.U64()
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return
	}
	if n != len(h.counts) {
		d.Failf("histogram has %d buckets, machine has %d", n, len(h.counts))
		return
	}
	for i := 0; i < n; i++ {
		h.counts[i] = d.U64()
	}
}
