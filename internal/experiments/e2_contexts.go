package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vn"
	"repro/internal/workload"
)

// E2ContextCounts quantifies Section 1.1's context-switching argument:
// replicating processor state hides latency, but the number of contexts
// needed grows with the latency — so a scalable machine needs an unbounded
// number of them, which fixed hardware cannot provide.
func E2ContextCounts(opt Options) Result {
	r := Result{
		ID:     "E2",
		Title:  "Hardware contexts needed to hide a given memory latency",
		Anchor: "Section 1.1, Issue 1 (microcode-level context switching)",
		Claim:  "as memory elements are added, network depth grows, and the number of low-level contexts must grow to match",
	}
	ks := pick(opt, []int{1, 2, 4, 8, 16, 32, 64}, []int{1, 4, 16})
	lats := pick(opt, []int{10, 50, 200}, []int{10, 100})
	iters := 60
	if opt.Quick {
		iters = 30
	}

	util := func(latency sim.Cycle, k int) (float64, error) {
		prog, err := vn.Assemble(workload.MemLoopASM)
		if err != nil {
			return 0, err
		}
		mem := vn.NewLatencyMemory(latency)
		c := vn.NewCore(prog, mem, k)
		for i := 0; i < k; i++ {
			c.Context(i).SetReg(1, vn.Word(1000+1000*i))
			c.Context(i).SetReg(4, vn.Word(iters))
		}
		eng := sim.NewEngine()
		eng.Register(mem)
		eng.Register(c)
		if _, ok := eng.Run(c.Halted, 20_000_000); !ok {
			return 0, fmt.Errorf("E2: run did not halt")
		}
		return c.Stats().Utilization(), nil
	}

	// Flatten the latency x context grid into independent sweep points,
	// then scan the results in grid order so the "first k reaching 60%"
	// answer is schedule-independent.
	type point struct{ l, k int }
	var grid []point
	for _, l := range lats {
		for _, k := range ks {
			grid = append(grid, point{l, k})
		}
	}
	utils, err := runPoints(opt, grid, func(_ PointEnv, p point) (float64, error) {
		return util(sim.Cycle(p.l), p.k)
	})
	if err != nil {
		r.Err = err
		return r
	}
	series := make([]metrics.Series, len(lats))
	needed := map[int]int{} // latency -> min k reaching 60% utilization
	for li, l := range lats {
		series[li].Name = fmt.Sprintf("util @L=%d", l)
		for ki, k := range ks {
			u := utils[li*len(ks)+ki]
			series[li].Add(float64(k), u)
			if u >= 0.6 {
				if _, ok := needed[l]; !ok {
					needed[l] = k
				}
			}
		}
	}
	r.Tables = append(r.Tables, metrics.SeriesTable(
		"E2: utilization vs hardware context count k, per memory latency",
		"contexts", series...))

	need := metrics.NewTable("E2: contexts needed for 60% utilization", "latency", "contexts")
	for _, l := range lats {
		k, ok := needed[l]
		cell := "not reached"
		if ok {
			cell = fmt.Sprintf("%d", k)
		}
		need.AddRow(l, cell)
	}
	r.Tables = append(r.Tables, need)
	r.Finding = "the context count needed for fixed utilization grows roughly linearly with latency: no fixed k suffices for a scalable machine"
	return r
}
