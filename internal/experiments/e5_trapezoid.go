package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/token"
	"repro/internal/workload"
)

// E5Trapezoid reproduces Figure 2-2: the paper's trapezoidal-rule ID loop
// is compiled by our MiniID front end into a tagged-token graph using L,
// D, D⁻¹ and L⁻¹, verified against the closed form, and run across
// machine sizes to show iterations unfolding over PEs.
func E5Trapezoid(opt Options) Result {
	r := Result{
		ID:     "E5",
		Title:  "Figure 2-2: the trapezoid loop, compiled and executed",
		Anchor: "Section 2.2.1, Figure 2-2",
		Claim:  "the ID loop compiles to a reentrant graph whose iterations unfold dynamically via tag manipulation",
	}
	prog, err := id.Compile(workload.TrapezoidID)
	if err != nil {
		r.Err = err
		return r
	}

	// Static shape: the compiled graph must contain the paper's operators.
	shape := metrics.NewTable("E5: compiled graph composition (the textual Figure 2-2)",
		"metric", "value")
	shape.AddRow("code blocks", len(prog.Blocks))
	shape.AddRow("instructions", prog.NumInstructions())
	shape.AddRow("L operators", prog.CountOp(graph.OpL))
	shape.AddRow("D operators", prog.CountOp(graph.OpD))
	shape.AddRow("D-1 operators", prog.CountOp(graph.OpDInv))
	shape.AddRow("L-1 operators", prog.CountOp(graph.OpLInv))
	shape.AddRow("SWITCH operators", prog.CountOp(graph.OpSwitch))
	shape.AddRow("GETC (contexts)", prog.CountOp(graph.OpGetContext))
	r.Tables = append(r.Tables, shape)

	nIntervals := 200.0
	if opt.Quick {
		nIntervals = 60
	}
	args := []token.Value{token.Float(0), token.Float(1), token.Float(nIntervals)}
	want := 1.0 / 3.0

	pes := pick(opt, []int{1, 2, 4, 8, 16}, []int{1, 4})
	var cyc, util metrics.Series
	cyc.Name = "speedup"
	util.Name = "ALU util"
	var base uint64
	var measured float64
	for _, p := range pes {
		m := core.NewMachine(core.Config{PEs: p, Shards: opt.Shards, Compiled: opt.Compiled}, prog)
		res, err := m.Run(200_000_000, args...)
		if err != nil {
			r.Err = err
			return r
		}
		measured = res[0].F
		if math.Abs(measured-want) > 1e-3 {
			r.Err = fmt.Errorf("E5: integral = %v, want ~%v", measured, want)
			return r
		}
		s := m.Summarize()
		if base == 0 {
			base = s.Cycles
		}
		cyc.Add(float64(p), float64(base)/float64(s.Cycles))
		util.Add(float64(p), s.ALUUtilization)
	}
	r.Tables = append(r.Tables, metrics.SeriesTable(
		fmt.Sprintf("E5: trapezoid(0,1,n=%g) on the TTDA; integral measured %.6f (exact 1/3 - O(h^2))", nIntervals, measured),
		"PEs", cyc, util))

	// A second compiled-loop workload whose iterations are independent
	// enough to unfold across the machine: the wavefront DP table, whose
	// anti-diagonals run in parallel through I-structure synchronization.
	wf, err := id.Compile(workload.WavefrontID)
	if err != nil {
		r.Err = err
		return r
	}
	wfN := int64(12)
	if opt.Quick {
		wfN = 8
	}
	var wfSpeed metrics.Series
	wfSpeed.Name = "wavefront speedup"
	var wfBase uint64
	for _, p := range pes {
		m := core.NewMachine(core.Config{PEs: p, Shards: opt.Shards, Compiled: opt.Compiled}, wf)
		res, err := m.Run(500_000_000, token.Int(wfN))
		if err != nil {
			r.Err = err
			return r
		}
		if res[0].I != workload.WavefrontExpected(int(wfN)) {
			r.Err = fmt.Errorf("E5: wavefront computed %s", res[0])
			return r
		}
		s := m.Summarize()
		if wfBase == 0 {
			wfBase = s.Cycles
		}
		wfSpeed.Add(float64(p), float64(wfBase)/float64(s.Cycles))
	}
	r.Tables = append(r.Tables, metrics.SeriesTable(
		fmt.Sprintf("E5: wavefront(%d) — loops with real parallelism unfold across PEs", wfN),
		"PEs", wfSpeed))

	r.Finding = fmt.Sprintf(
		"the compiled loops compute correctly on every machine size; the serial trapezoid accumulation caps its speedup at %.2fx while the wavefront's unfolding iterations reach %.2fx at %d PEs",
		cyc.Points[len(cyc.Points)-1].Y, wfSpeed.Points[len(wfSpeed.Points)-1].Y, pes[len(pes)-1])
	return r
}
