package experiments

import (
	"fmt"

	"repro/internal/machines/cmstar"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vn"
	"repro/internal/workload"
)

// E8Cmstar reproduces the Section 1.2.2 discussion: Cm*'s blocking
// non-local references cap the number of processors that can usefully
// cooperate, even on highly parallel programs like chaotic relaxation
// (Deminet's measurements).
func E8Cmstar(opt Options) Result {
	r := Result{
		ID:     "E8",
		Title:  "Cm*: blocking remote references cap speedup",
		Anchor: "Section 1.2.2",
		Claim:  "greater interprocessor distance means longer reference times and decreased utilization; processor idle time bounds cooperating processors",
	}

	// Part 1: reference latency vs cluster distance.
	lat := metrics.NewTable("E8: reference stream run time vs cluster distance (one core active)",
		"distance", "cycles", "utilization")
	const clusterWords = 4096
	dists := pick(opt, []int{0, 1, 2, 3}, []int{0, 2})
	type distRow struct {
		cycles sim.Cycle
		util   float64
	}
	distRows, err := runPoints(opt, dists, func(_ PointEnv, dist int) (distRow, error) {
		prog, err := vn.Assemble(workload.MemLoopASM)
		if err != nil {
			return distRow{}, err
		}
		m := cmstar.New(cmstar.Config{Clusters: 4, CoresPerCluster: 1, ClusterWords: clusterWords, Shards: opt.Shards}, prog)
		for a := uint32(0); a < 4*clusterWords; a++ {
			m.Poke(a, 1)
		}
		for i := 1; i < m.NumCores(); i++ {
			m.CoreAt(i).Context(0).SetPC(len(prog.Instrs) - 1)
		}
		h := m.Core(0, 0).Context(0)
		h.SetReg(1, vn.Word(dist*clusterWords))
		h.SetReg(4, 50)
		cycles, err := m.Run(10_000_000)
		if err != nil {
			return distRow{}, err
		}
		return distRow{cycles, m.Core(0, 0).Stats().Utilization()}, nil
	})
	if err != nil {
		r.Err = err
		return r
	}
	for i, dist := range dists {
		lat.AddRow(dist, uint64(distRows[i].cycles), distRows[i].util)
	}
	r.Tables = append(r.Tables, lat)

	// Part 2: chaotic relaxation speedup across machine configurations.
	totalCells := 192
	sweeps := int64(4)
	if opt.Quick {
		totalCells = 96
	}
	// Two data layouts: "blocked" gives each core's chunk a home in its own
	// cluster (the locality Cm* hoped for); "interleaved" scatters cells
	// round-robin across clusters (the locality-free case in which, as the
	// paper notes, "the hope manifested itself in the communication
	// strategy" and then failed: most references become remote and
	// blocking processors idle).
	timeFor := func(clusters, coresPer int, interleaved bool) (sim.Cycle, float64, float64, error) {
		relax, err := vn.Assemble(workload.RelaxASM)
		if err != nil {
			return 0, 0, 0, err
		}
		m := cmstar.New(cmstar.Config{Clusters: clusters, CoresPerCluster: coresPer, ClusterWords: clusterWords, Shards: opt.Shards}, relax)
		p := clusters * coresPer
		chunk := totalCells / p
		perCluster := chunk * coresPer
		addrOf := func(i int) uint32 {
			if interleaved {
				return uint32((i%clusters)*clusterWords + 1 + i/clusters)
			}
			return uint32((i/perCluster)*clusterWords + 1 + i%perCluster)
		}
		for i := -1; i <= totalCells; i++ {
			switch {
			case i < 0:
				m.Poke(0, 0)
			case i >= totalCells:
				m.Poke(addrOf(totalCells-1)+1, vn.Word(i))
			default:
				m.Poke(addrOf(i), vn.Word(i))
			}
		}
		// The kernel sweeps a contiguous address range, so under the
		// interleaved layout each core sweeps an in-cluster slice whose
		// neighbour reads land in other clusters only implicitly via the
		// blocked kernel; to keep the kernel identical we give each core a
		// contiguous address range in *some* cluster and let the layout
		// decide how many of its reads are remote.
		for q := 0; q < p; q++ {
			h := m.CoreAt(q).Context(0)
			h.SetReg(1, vn.Word(addrOf(q*chunk)))
			h.SetReg(2, vn.Word(chunk))
			h.SetReg(6, sweeps)
		}
		cycles, err := m.Run(500_000_000)
		total := float64(m.Stats().LocalRefs.Value() + m.Stats().RemoteRefs.Value())
		remoteFrac := 0.0
		if total > 0 {
			remoteFrac = float64(m.Stats().RemoteRefs.Value()) / total
		}
		return cycles, m.MeanUtilization(), remoteFrac, err
	}

	type cfg struct {
		clusters, cores int
	}
	cfgs := []cfg{{1, 1}, {1, 2}, {1, 4}, {2, 2}, {2, 4}, {4, 2}, {4, 4}, {8, 4}}
	if opt.Quick {
		cfgs = []cfg{{1, 1}, {1, 4}, {4, 2}, {8, 4}}
	}
	tb := metrics.NewTable("E8: chaotic relaxation speedup on Cm*: blocked (local) vs interleaved (remote) data",
		"clusters x cores", "procs", "speedup local", "speedup remote", "remote ref frac", "util remote")
	type cfgRow struct {
		cb, ci       sim.Cycle
		utilI, fracI float64
	}
	cfgRows, err := runPoints(opt, cfgs, func(_ PointEnv, c cfg) (cfgRow, error) {
		cb, _, _, err := timeFor(c.clusters, c.cores, false)
		if err != nil {
			return cfgRow{}, err
		}
		ci, utilI, fracI, err := timeFor(c.clusters, c.cores, true)
		return cfgRow{cb, ci, utilI, fracI}, err
	})
	if err != nil {
		r.Err = err
		return r
	}
	// Speedup baselines come from the first configuration, resolved after
	// the parallel sweep so the table is schedule-independent.
	var t1b, t1i sim.Cycle
	var lastB, lastI float64
	for i, c := range cfgs {
		row := cfgRows[i]
		if t1b == 0 {
			t1b, t1i = row.cb, row.ci
		}
		lastB = float64(t1b) / float64(row.cb)
		lastI = float64(t1i) / float64(row.ci)
		tb.AddRow(fmt.Sprintf("%dx%d", c.clusters, c.cores), c.clusters*c.cores,
			lastB, lastI, row.fracI, row.utilI)
	}
	r.Tables = append(r.Tables, tb)
	r.Finding = fmt.Sprintf(
		"with cluster-local data the machine scales (%.1fx at 32), but without locality remote blocking references cap speedup at %.1fx — Deminet's ceiling, the paper's Issue 1 in the flesh",
		lastB, lastI)
	return r
}
