package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/istructure"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/token"
)

// element is the E4 production expression: deliberately non-trivial so
// overlapping production with consumption is worth something.
const e4Element = "i * i * i % 97 + i * 3 + 1"

// e4Expected computes the checksum the MiniID programs must produce.
func e4Expected(n int64) int64 {
	var s int64
	for i := int64(0); i < n; i++ {
		s += i*i*i%97 + i*3 + 1
	}
	return s
}

// gating selects the synchronization discipline between the producer and
// consumer loops of the E4 program.
type gating int

const (
	// gateBarrier gates every consumer on the completion of every
	// producer: the paper's "simpleminded transfer of control" — the
	// entire array written before the consumer begins.
	gateBarrier gating = iota
	// gateChunk gates each consumer on its own chunk's producer — the
	// paper's per-row/per-column compromise.
	gateChunk
	// gateElement uses no control gating at all: reads synchronize
	// against writes element-by-element through I-structure presence
	// bits.
	gateElement
)

// e4Src builds the E4 program: k producer loops each filling one chunk of
// the array (the production structure is identical across disciplines),
// and k consumer loops whose start is gated per the discipline. When
// scrambled, producer j writes positions congruent to j mod k in a
// strided order instead of a contiguous chunk — the paper's "case where
// the elements are not produced in a regular (i.e., row order or column
// order) way", which defeats chunk-aligned gating.
func e4Src(k int, g gating, scrambled bool) string {
	var b strings.Builder
	b.WriteString("def main(n) =\n  { a = array(n);\n    c = n / " + fmt.Sprint(k) + ";\n")
	for j := 0; j < k; j++ {
		if scrambled {
			// Producer j writes the residue class j (mod k) and carries a
			// per-producer delay loop, so production both interleaves
			// positions and skews in time — maximally irregular.
			fmt.Fprintf(&b, `    p%d = (initial z <- 0
           for q from 0 to c - 1 do
             a[q * %d + %d] <- { i = q * %d + %d;
                                 d = (initial w <- 0
                                      for t from 1 to %d do
                                        new w <- w + 1
                                      return w);
                                 %s + d * 0 };
             new z <- z
           return 0);
`, j, k, j, k, j, j*6, e4Element)
		} else {
			fmt.Fprintf(&b, `    p%d = (initial z <- 0
           for i from %d * c to %d * c - 1 do
             a[i] <- %s;
             new z <- z
           return 0);
`, j, j, j+1, e4Element)
		}
	}
	switch g {
	case gateBarrier:
		b.WriteString("    all = p0")
		for j := 1; j < k; j++ {
			fmt.Fprintf(&b, " + p%d", j)
		}
		b.WriteString(";\n")
		for j := 0; j < k; j++ {
			fmt.Fprintf(&b, "    b%d = if all == 0 then a else a;\n", j)
		}
	case gateChunk:
		for j := 0; j < k; j++ {
			fmt.Fprintf(&b, "    b%d = if p%d == 0 then a else a;\n", j, j)
		}
	case gateElement:
		for j := 0; j < k; j++ {
			fmt.Fprintf(&b, "    b%d = a;\n", j)
		}
	}
	for j := 0; j < k; j++ {
		fmt.Fprintf(&b, `    s%d = (initial s <- 0
           for i from %d * c to %d * c - 1 do
             new s <- s + b%d[i]
           return s);
`, j, j, j+1, j)
	}
	b.WriteString("    s0")
	for j := 1; j < k; j++ {
		fmt.Fprintf(&b, " + s%d", j)
	}
	if g == gateElement {
		// consume the producer results without delaying anything
		b.WriteString(" + 0 * (p0")
		for j := 1; j < k; j++ {
			fmt.Fprintf(&b, " + p%d", j)
		}
		b.WriteString(")")
	}
	b.WriteString(" };\n")
	return b.String()
}

// E4ReadBeforeWrite reproduces Issue 2 and Figure 2-1: producer/consumer
// sharing of a data structure under four disciplines — whole-structure
// barrier, per-chunk barriers, I-structure per-element deferral, and
// HEP-style full/empty busy-waiting.
func E4ReadBeforeWrite(opt Options) Result {
	r := Result{
		ID:     "E4",
		Title:  "Read-before-write synchronization disciplines",
		Anchor: "Issue 2 (Section 1.1), Section 2.1, Figure 2-1",
		Claim:  "I-structures synchronize producers and consumers per element with no loss of parallelism; barriers forfeit overlap; busy-waiting wastes operations",
	}
	n := int64(128)
	if opt.Quick {
		n = 48
	}
	want := e4Expected(n)

	runTTDA := func(src string) (cycles uint64, deferred uint64, err error) {
		prog, err := id.Compile(src)
		if err != nil {
			return 0, 0, err
		}
		m := core.NewMachine(core.Config{PEs: 8, Shards: opt.Shards, Compiled: opt.Compiled}, prog)
		res, err := m.Run(100_000_000, token.Int(n))
		if err != nil {
			return 0, 0, err
		}
		if res[0].I != want {
			return 0, 0, fmt.Errorf("E4: checksum %s, want %d", res[0], want)
		}
		s := m.Summarize()
		return s.Cycles, s.DeferredReads, nil
	}

	tb := metrics.NewTable("E4: producer/consumer of a "+fmt.Sprint(n)+"-element structure on an 8-PE TTDA (4 producer chunks in every case)",
		"discipline", "cycles", "deferred reads", "vs barrier")
	type row struct {
		name string
		src  string
	}
	rows := []row{
		{"whole-array barrier", e4Src(4, gateBarrier, false)},
		{"per-chunk barriers", e4Src(4, gateChunk, false)},
		{"I-structure per-element", e4Src(4, gateElement, false)},
	}
	var barrierCycles uint64
	var overlapCycles, overlapDeferred uint64
	for _, rw := range rows {
		cycles, deferred, err := runTTDA(rw.src)
		if err != nil {
			r.Err = fmt.Errorf("%s: %w", rw.name, err)
			return r
		}
		if rw.name == "whole-array barrier" {
			barrierCycles = cycles
		}
		if rw.name == "I-structure per-element" {
			overlapCycles, overlapDeferred = cycles, deferred
		}
		tb.AddRow(rw.name, cycles, deferred, fmt.Sprintf("%.2fx", float64(barrierCycles)/float64(cycles)))
	}
	r.Tables = append(r.Tables, tb)

	// The paper's harder case: "consider the case where the elements are
	// not produced in a regular (i.e., row order or column order) way."
	// Producers now write strided residue classes at skewed speeds, so no
	// chunk gate corresponds to production order. The "deferred reads"
	// column is the decisive one: every deferred read under a gating
	// discipline is a read its synchronization FAILED to cover — answered
	// correctly here only because I-structure presence bits backstop it.
	// On a von Neumann machine without presence bits, each one is a wrong
	// answer. Only per-element synchronization is honest about needing no
	// gate at all.
	tb3 := metrics.NewTable("E4: irregular (strided, time-skewed) production — control-transfer gates stop working",
		"discipline", "cycles", "deferred reads", "what the deferrals mean")
	type row3 struct {
		name, src, meaning string
	}
	for _, rw := range []row3{
		{"whole-array barrier", e4Src(4, gateBarrier, true), "gate leaked: in-flight stores outrun it"},
		{"per-chunk barriers (misaligned)", e4Src(4, gateChunk, true), "gate leaked: wrong answers on a vN machine"},
		{"I-structure per-element", e4Src(4, gateElement, true), "the mechanism working as designed"},
	} {
		cycles, deferred, err := runTTDA(rw.src)
		if err != nil {
			r.Err = fmt.Errorf("%s: %w", rw.name, err)
			return r
		}
		tb3.AddRow(rw.name, cycles, deferred, rw.meaning)
	}
	r.Tables = append(r.Tables, tb3)

	// Deferral vs busy-waiting at the storage controller: a producer that
	// writes one element every `gap` cycles against a consumer that asked
	// for everything up front.
	gap := 8
	nn := int(n)
	isOps, hepOps := deferVsPoll(nn, gap)
	tb2 := metrics.NewTable(
		fmt.Sprintf("E4: controller operations, producer gap %d cycles, %d elements", gap, nn),
		"memory type", "controller ops", "wasted ops")
	tb2.AddRow("I-structure (deferred list)", isOps, 0)
	tb2.AddRow("HEP full/empty (busy-wait)", hepOps, hepOps-isOps)
	r.Tables = append(r.Tables, tb2)

	r.Finding = fmt.Sprintf(
		"per-element I-structure sync runs %.2fx faster than the whole-array barrier (%d deferred reads did the synchronization); busy-waiting costs %.1fx the controller operations of deferral",
		float64(barrierCycles)/float64(overlapCycles), overlapDeferred, float64(hepOps)/float64(isOps))
	return r
}

// deferVsPoll drives an I-structure module and a HEP module with the same
// eager-consumer / slow-producer schedule and reports total controller
// operations each performed.
func deferVsPoll(n, gap int) (isOps, hepOps uint64) {
	// I-structure: n reads arrive first and defer; writes trickle in.
	im := istructure.New(istructure.Config{Size: uint32(n), Respond: func(istructure.Response) {}})
	for i := 0; i < n; i++ {
		im.Enqueue(istructure.Request{Op: istructure.OpRead, Addr: uint32(i), ReplyTo: i})
	}
	limit := sim.Cycle(n*gap + 10*n)
	// The producer trickle is a plain (non-event-aware) component, so the
	// engine steps every cycle exhaustively — the schedule is open-loop.
	producer := func(enqueue func(istructure.Request)) sim.ComponentFunc {
		return func(now sim.Cycle) {
			c := int(now)
			if c%gap == 0 && c/gap < n {
				enqueue(istructure.Request{Op: istructure.OpWrite, Addr: uint32(c / gap), Value: 1})
			}
		}
	}
	never := func() bool { return false }
	ieng := sim.NewEngine()
	ieng.Register(producer(func(r istructure.Request) { im.Enqueue(r) }))
	ieng.Register(im)
	ieng.Run(never, limit)
	isOps = im.Stats().Reads.Value() + im.Stats().Writes.Value()

	// HEP: each NACKed read is reissued immediately — busy waiting.
	var hm *istructure.HEPModule
	hm = istructure.NewHEP(0, uint32(n), 1, func(resp istructure.HEPResponse) {
		if !resp.OK {
			hm.Enqueue(istructure.Request{Op: istructure.OpRead, Addr: resp.Addr, ReplyTo: resp.ReplyTo})
		}
	})
	for i := 0; i < n; i++ {
		hm.Enqueue(istructure.Request{Op: istructure.OpRead, Addr: uint32(i), ReplyTo: i})
	}
	heng := sim.NewEngine()
	heng.Register(producer(func(r istructure.Request) { hm.Enqueue(r) }))
	heng.Register(hm)
	heng.Run(never, limit)
	hepOps = hm.Stats().Reads.Value() + hm.Stats().Writes.Value()
	return isOps, hepOps
}
