package experiments

import (
	"repro/internal/sweep"
)

// PointEnv is the per-point context a sweep worker receives: the point's
// position in the sweep and a private RNG seeded deterministically from
// that position, so a parallel sweep draws exactly the same random numbers
// no matter how points are interleaved across workers.
type PointEnv = sweep.Env

// runPoints evaluates fn over every sweep point on the shared sweep
// runner (internal/sweep), bounded by opt.SweepWorkers workers
// (GOMAXPROCS when unset). Sweep points in this repository are
// independent whole-machine simulations, so the experiment's *output*
// stays deterministic at any worker count: results are assembled into a
// slice indexed by point, derived quantities (baselines, ratios, "first
// point to reach X" scans) are computed after the barrier in input order,
// and on error the one from the lowest-indexed failing point is returned.
func runPoints[P, R any](opt Options, points []P, fn func(env PointEnv, p P) (R, error)) ([]R, error) {
	return sweep.Run(points, fn, sweep.Options{Workers: opt.SweepWorkers})
}
