package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// PointEnv is the per-point context a sweep worker receives: the point's
// position in the sweep and a private RNG seeded deterministically from
// that position, so a parallel sweep draws exactly the same random numbers
// no matter how points are interleaved across workers.
type PointEnv struct {
	// Index is the point's position in the input slice.
	Index int
	// RNG is seeded from Index alone; stochastic points stay reproducible
	// under any worker schedule.
	RNG *sim.RNG
}

// runPoints evaluates fn over every sweep point, fanning the points across
// up to GOMAXPROCS worker goroutines. Sweep points in this repository are
// independent whole-machine simulations (each builds its own machine from
// its own compiled program), which makes them embarrassingly parallel; the
// experiment's *output* stays deterministic because results are assembled
// into a slice indexed by point, and any derived quantities (baselines,
// ratios, "first point to reach X" scans) are computed after the barrier
// in input order. On error, the one from the lowest-indexed failing point
// is returned — again independent of scheduling.
func runPoints[P, R any](points []P, fn func(env PointEnv, p P) (R, error)) ([]R, error) {
	results := make([]R, len(points))
	errs := make([]error, len(points))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(points) {
		workers = len(points)
	}
	if workers < 1 {
		workers = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(points) {
					return
				}
				env := PointEnv{Index: i, RNG: sim.NewRNG(pointSeed(i))}
				results[i], errs[i] = fn(env, points[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// pointSeed derives a well-mixed RNG seed from a sweep-point index
// (splitmix64 finalizer).
func pointSeed(i int) uint64 {
	z := uint64(i) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
