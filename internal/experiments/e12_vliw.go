package experiments

import (
	"fmt"

	"repro/internal/machines/vliw"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// E12VLIW reproduces the Section 1.2.4 critique of horizontally
// microprogrammed machines (ELI-512, Polycyclic, AP-120B): compile-time
// scheduling works when memory behaves as planned, and the lockstep
// machine collapses when it does not — there is no mechanism to switch to
// other work.
func E12VLIW(opt Options) Result {
	r := Result{
		ID:     "E12",
		Title:  "VLIW: static schedules vs dynamic memory latency",
		Anchor: "Section 1.2.4",
		Claim:  "moving conflict resolution to compile time works only when run-time latencies match the plan; the technique does not scale to dynamic environments",
	}
	nBundles := 2000
	if opt.Quick {
		nBundles = 500
	}
	sched := vliw.SyntheticSchedule(nBundles, 4, 2, 4)

	missRates := []float64{0, 0.01, 0.05, 0.10, 0.25, 0.50, 1.0}
	if opt.Quick {
		missRates = []float64{0, 0.1, 0.5}
	}
	var ops20, ops100, stallFrac metrics.Series
	ops20.Name = "ops/cycle L=20"
	ops100.Name = "ops/cycle L=100"
	stallFrac.Name = "stall frac L=100"
	for _, mr := range missRates {
		a := vliw.Run(sched, vliw.Config{HitLatency: 3, MissLatency: 20, MissRate: mr, Seed: 11})
		b := vliw.Run(sched, vliw.Config{HitLatency: 3, MissLatency: 100, MissRate: mr, Seed: 11})
		ops20.Add(mr*100, a.OpsPerCycle())
		ops100.Add(mr*100, b.OpsPerCycle())
		stallFrac.Add(mr*100, float64(b.StallCycles)/float64(b.Cycles))
	}
	r.Tables = append(r.Tables, metrics.SeriesTable(
		"E12: effective issue rate vs miss rate (4-op bundles, slack 4)",
		"miss %", ops20, ops100, stallFrac))

	// Slack sweep: what the compiler must find statically to survive a
	// given latency.
	slack := metrics.NewTable("E12: slack needed to absorb a deterministic latency (no misses)",
		"latency", "slack 2", "slack 8", "slack 16")
	for _, lat := range []sim.Cycle{2, 8, 16, 32} {
		row := []interface{}{uint64(lat)}
		for _, s := range []int{2, 8, 16} {
			sc := vliw.SyntheticSchedule(nBundles, 4, 1, s)
			res := vliw.Run(sc, vliw.Config{HitLatency: lat, MissLatency: lat, MissRate: 0, Seed: 1})
			row = append(row, fmt.Sprintf("%.2f", res.OpsPerCycle()))
		}
		slack.AddRow(row...)
	}
	r.Tables = append(r.Tables, slack)

	last := len(missRates) - 1
	r.Finding = fmt.Sprintf(
		"issue rate falls from %.1f to %.2f ops/cycle as misses rise to %.0f%% at latency 100; tolerance is limited to exactly the slack the compiler found statically",
		ops100.Points[0].Y, ops100.Points[last].Y, missRates[last]*100)
	return r
}
