package experiments

import (
	"fmt"

	"repro/internal/machines/cmmp"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/vn"
	"repro/internal/workload"
)

// E7Cmmp reproduces the Section 1.2.1 discussion: the crossbar's cost
// grows at least quadratically while a lock-protected shared counter shows
// the "rather high" cost of semaphore synchronization relative to an ALU
// operation, and no speedup from added processors.
func E7Cmmp(opt Options) Result {
	r := Result{
		ID:     "E7",
		Title:  "C.mmp: crossbar economics and semaphore cost",
		Anchor: "Section 1.2.1",
		Claim:  "the crossbar circumvents latency but its cost grows at least quadratically; semaphore cost >> ALU op and locks serialize",
	}
	ps := pick(opt, []int{2, 4, 8, 16, 32, 64}, []int{2, 8, 32})

	cost := metrics.NewTable("E7: crossbar crosspoint cost vs machine size (banks = processors)",
		"processors", "ports", "crosspoints", "crosspoints/processor")
	for _, p := range ps {
		ports := 2 * p
		cost.AddRow(p, ports, network.CrossbarCost(ports), network.CrossbarCost(ports)/p)
	}
	r.Tables = append(r.Tables, cost)

	iters := int64(20)
	if opt.Quick {
		iters = 8
	}
	runCounter := func(p int) (cyclesPerIncrement float64, err error) {
		prog, err := vn.Assemble(workload.CounterLockASM)
		if err != nil {
			return 0, err
		}
		m := cmmp.New(cmmp.Config{Processors: p, Banks: p, Shards: opt.Shards}, prog, 1)
		for q := 0; q < p; q++ {
			m.Core(q).Context(0).SetReg(5, iters)
		}
		cycles, err := m.Run(50_000_000)
		if err != nil {
			return 0, err
		}
		if got := m.Peek(1); got != iters*int64(p) {
			return 0, fmt.Errorf("E7: counter = %d, want %d", got, iters*int64(p))
		}
		return float64(cycles) / float64(iters*int64(p)), nil
	}
	runALU := func(p int) (cyclesPerIteration float64, err error) {
		prog, err := vn.Assemble(`
outer:  beq  r5, r0, done
        addi r4, r4, 1
        addi r5, r5, -1
        j    outer
done:   halt
`)
		if err != nil {
			return 0, err
		}
		m := cmmp.New(cmmp.Config{Processors: p, Banks: p, Shards: opt.Shards}, prog, 1)
		for q := 0; q < p; q++ {
			m.Core(q).Context(0).SetReg(5, iters)
		}
		cycles, err := m.Run(50_000_000)
		if err != nil {
			return 0, err
		}
		return float64(cycles) / float64(iters), nil
	}

	var lock, alu, ratio metrics.Series
	lock.Name = "cycles/locked increment"
	alu.Name = "cycles/ALU iteration"
	ratio.Name = "semaphore overhead x"
	type row struct{ lc, ac float64 }
	rows, err := runPoints(opt, ps, func(_ PointEnv, p int) (row, error) {
		lc, err := runCounter(p)
		if err != nil {
			return row{}, err
		}
		ac, err := runALU(p)
		return row{lc, ac}, err
	})
	if err != nil {
		r.Err = err
		return r
	}
	for i, p := range ps {
		lc, ac := rows[i].lc, rows[i].ac
		lock.Add(float64(p), lc)
		alu.Add(float64(p), ac)
		ratio.Add(float64(p), lc*float64(p)/ac) // wall time per increment vs local iteration
	}
	r.Tables = append(r.Tables, metrics.SeriesTable(
		"E7: shared counter under a TAS semaphore vs pure ALU loop",
		"processors", lock, alu, ratio))
	last := len(ps) - 1
	r.Finding = fmt.Sprintf(
		"crosspoints grow as n^2 (4096 at 32+32 ports); a locked increment costs %.0f cycles at %d processors — %.0fx a local ALU iteration — and throughput does not rise with processors",
		lock.Points[last].Y, ps[last], ratio.Points[last].Y)
	return r
}
