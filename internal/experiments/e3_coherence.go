package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// E3CacheCoherence measures the Censier-Feautrier coherence cost the
// paper identifies as the reason demand caches "do not completely solve"
// the latency problem in multiprocessors: writes to shared lines must
// invalidate every other copy, serializing through the coherence point,
// and the overhead grows with the number of sharers.
func E3CacheCoherence(opt Options) Result {
	r := Result{
		ID:     "E3",
		Title:  "Cache coherence overhead vs number of sharing processors",
		Anchor: "Section 1.1, Issue 1 (caches; Censier & Feautrier)",
		Claim:  "invalidation machinery incurs overhead and serialization that grow as the machine is scaled",
	}
	ps := pick(opt, []int{1, 2, 4, 8, 16, 32}, []int{1, 4, 16})

	var shared, private, invPerWrite metrics.Series
	shared.Name = "cycles/access shared"
	private.Name = "cycles/access private"
	invPerWrite.Name = "invalidations/write"

	run := func(p int, sharedData bool) (cyclesPerAccess float64, invalidationsPerWrite float64, err error) {
		s := cache.NewSystem(cache.Config{}, p)
		rng := sim.NewRNG(42)
		const accessesPerCPU = 120
		writes := 0
		for i := 0; i < accessesPerCPU; i++ {
			for cpu := 0; cpu < p; cpu++ {
				var addr uint32
				if sharedData {
					addr = uint32(rng.Intn(8)) // 8 hot shared words
				} else {
					addr = uint32(1000 + cpu*256 + rng.Intn(8))
				}
				write := rng.Bool(0.25)
				if write {
					writes++
				}
				s.Request(cpu, cache.Access{Addr: addr, Write: write, Value: 1})
			}
		}
		eng := sim.NewEngine()
		eng.Register(s)
		cycles, ok := eng.Run(func() bool { return !s.Pending() }, 50_000_000)
		if !ok {
			return 0, 0, fmt.Errorf("E3: did not settle")
		}
		if err := s.CheckInvariant(); err != nil {
			return 0, 0, err
		}
		total := float64(accessesPerCPU * p)
		inv := float64(s.TotalInvalidations())
		if writes == 0 {
			writes = 1
		}
		return float64(cycles) / total, inv / float64(writes), nil
	}

	for _, p := range ps {
		cs, inv, err := run(p, true)
		if err != nil {
			r.Err = err
			return r
		}
		cp, _, err := run(p, false)
		if err != nil {
			r.Err = err
			return r
		}
		x := float64(p)
		shared.Add(x, cs)
		private.Add(x, cp)
		invPerWrite.Add(x, inv)
	}
	r.Tables = append(r.Tables, metrics.SeriesTable(
		"E3: coherent-cache cost vs processors (snoopy bus, 25% writes)",
		"processors", shared, private, invPerWrite))

	// Directory protocol (Censier & Feautrier's own scheme): no broadcast
	// bus, but writes to shared lines still serialize through per-sharer
	// invalidation messages — the overhead moves, it does not vanish.
	var dirShared, dirPrivate, dirInv metrics.Series
	dirShared.Name = "dir cycles/access shared"
	dirPrivate.Name = "dir cycles/access private"
	dirInv.Name = "dir invalidations/write"
	runDir := func(p int, sharedData bool) (float64, float64, error) {
		s := cache.NewDirectorySystem(cache.Config{}, p, 3)
		rng := sim.NewRNG(42)
		const accessesPerCPU = 120
		writes := 0
		for i := 0; i < accessesPerCPU; i++ {
			for cpu := 0; cpu < p; cpu++ {
				var addr uint32
				if sharedData {
					addr = uint32(rng.Intn(8))
				} else {
					addr = uint32(1000 + cpu*256 + rng.Intn(8))
				}
				write := rng.Bool(0.25)
				if write {
					writes++
				}
				s.Request(cpu, cache.Access{Addr: addr, Write: write, Value: 1})
			}
		}
		eng := sim.NewEngine()
		eng.Register(s)
		cycles, ok := eng.Run(func() bool { return !s.Pending() }, 50_000_000)
		if !ok {
			return 0, 0, fmt.Errorf("E3: directory did not settle")
		}
		if err := s.CheckInvariant(); err != nil {
			return 0, 0, err
		}
		if writes == 0 {
			writes = 1
		}
		return float64(cycles) / float64(accessesPerCPU*p),
			float64(s.InvalidationMsgs.Value()) / float64(writes), nil
	}
	for _, p := range ps {
		cs, inv, err := runDir(p, true)
		if err != nil {
			r.Err = err
			return r
		}
		cp, _, err := runDir(p, false)
		if err != nil {
			r.Err = err
			return r
		}
		dirShared.Add(float64(p), cs)
		dirPrivate.Add(float64(p), cp)
		dirInv.Add(float64(p), inv)
	}
	r.Tables = append(r.Tables, metrics.SeriesTable(
		"E3: the same workloads under directory coherence (point-to-point invalidations)",
		"processors", dirShared, dirPrivate, dirInv))

	last := len(ps) - 1
	r.Finding = fmt.Sprintf(
		"snoopy: shared-data cost grows to %.1f cycles/access at %d processors (private ~%.1f); the directory protocol eliminates the broadcast bus but shared writes still pay per-sharer invalidations (%.1f cycles/access) — the overhead moves, it does not vanish",
		shared.Points[last].Y, ps[last], private.Points[last].Y, dirShared.Points[last].Y)
	return r
}
