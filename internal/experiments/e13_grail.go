package experiments

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/token"
	"repro/internal/workload"
)

// E13ParallelismGrail quantifies the paper's closing hope — "the
// thousand-fold parallelism 'grail' after which so many have sought" — by
// profiling programs under idealized dataflow execution: unit-time
// operations, free communication. The reference interpreter's wave
// structure gives each program's critical path and per-wave enabled
// instruction counts; max and average width are the parallelism a perfect
// machine could harvest. The claim being tested is that ordinary programs
// contain machine-scale parallelism, growing with problem size — the
// machine's job (and the paper's whole argument) is only to reach it.
func E13ParallelismGrail(opt Options) Result {
	r := Result{
		ID:     "E13",
		Title:  "The parallelism grail: ideal profiles of ordinary programs",
		Anchor: "Section 3 (the 'thousand-fold parallelism grail')",
		Claim:  "sufficiently parallel programs exist and their parallelism grows with problem size; the architecture's job is to expose it",
	}
	type job struct {
		name string
		src  string
		args func(n int64) []token.Value
		ns   []int64
	}
	jobs := []job{
		{"fib", workload.FibID, func(n int64) []token.Value { return []token.Value{token.Int(n)} },
			pickI64(opt, []int64{8, 12, 16, 20}, []int64{8, 12})},
		{"matmul", workload.MatMulID, func(n int64) []token.Value { return []token.Value{token.Int(n)} },
			pickI64(opt, []int64{2, 4, 8, 12}, []int64{2, 4})},
		{"wavefront", workload.WavefrontID, func(n int64) []token.Value { return []token.Value{token.Int(n)} },
			pickI64(opt, []int64{4, 8, 16, 32}, []int64{4, 8})},
		{"sum-loop (serial)", workload.SumLoopID, func(n int64) []token.Value { return []token.Value{token.Int(n)} },
			pickI64(opt, []int64{32, 128, 512}, []int64{32, 128})},
	}
	widest := map[string]int{}
	for _, j := range jobs {
		prog, err := id.Compile(j.src)
		if err != nil {
			r.Err = err
			return r
		}
		tb := metrics.NewTable(fmt.Sprintf("E13: ideal parallelism profile, %s", j.name),
			"size", "instructions", "critical path", "avg width", "max width")
		for _, n := range j.ns {
			it := graph.NewInterp(prog)
			it.SetMaxSteps(50_000_000)
			if _, err := it.Run(j.args(n)...); err != nil {
				r.Err = fmt.Errorf("%s(%d): %w", j.name, n, err)
				return r
			}
			avg := float64(it.Fired()) / float64(it.Depth())
			tb.AddRow(n, it.Fired(), it.Depth(), avg, it.MaxParallelism())
			widest[j.name] = it.MaxParallelism()
		}
		r.Tables = append(r.Tables, tb)
	}
	r.Finding = fmt.Sprintf(
		"fib, matmul, and wavefront widen with problem size (fib reaches width %d, matmul %d, wavefront %d at the largest sizes) while the serial sum-loop stays at %d: the grail is in the programs, and per-element synchronization is what reaches it",
		widest["fib"], widest["matmul"], widest["wavefront"], widest["sum-loop (serial)"])
	return r
}

func pickI64(opt Options, full, q []int64) []int64 {
	if opt.Quick {
		return q
	}
	return full
}
