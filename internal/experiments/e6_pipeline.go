package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/token"
	"repro/internal/workload"
)

// E6PipelineAnatomy reproduces Figures 2-3 and 2-4 quantitatively: the
// behaviour of the PE pipeline sections — waiting-matching store occupancy,
// ALU utilization, token class mix (d=0/1/2), and the local-bypass versus
// network split — on two workloads of different character.
func E6PipelineAnatomy(opt Options) Result {
	r := Result{
		ID:     "E6",
		Title:  "Anatomy of the tagged-token PE pipeline",
		Anchor: "Section 2.2.3, Figures 2-3 and 2-4",
		Claim:  "enabled instructions are detected by associative matching of tagged tokens; structure traffic (d=1) and manager traffic (d=2) ride the same packet fabric",
	}
	type job struct {
		name string
		src  string
		args []token.Value
	}
	nmm := int64(6)
	npc := int64(96)
	if opt.Quick {
		nmm, npc = 4, 32
	}
	jobs := []job{
		{"trapezoid", workload.TrapezoidID, []token.Value{token.Float(0), token.Float(1), token.Float(64)}},
		{"matmul", workload.MatMulID, []token.Value{token.Int(nmm)}},
		{"producer/consumer", workload.ProducerConsumerID, []token.Value{token.Int(npc)}},
	}
	tb := metrics.NewTable("E6: PE pipeline statistics on an 8-PE machine",
		"workload", "cycles", "ALU util", "match peak", "match mean",
		"d=0", "d=1", "d=2", "net sends", "local")
	for _, j := range jobs {
		prog, err := id.Compile(j.src)
		if err != nil {
			r.Err = err
			return r
		}
		m := core.NewMachine(core.Config{PEs: 8, Compiled: opt.Compiled}, prog)
		if _, err := m.Run(500_000_000, j.args...); err != nil {
			r.Err = fmt.Errorf("%s: %w", j.name, err)
			return r
		}
		s := m.Summarize()
		tb.AddRow(j.name, s.Cycles, s.ALUUtilization, s.MatchStoreMax, s.MatchStoreMean,
			s.TokensD0, s.TokensD1, s.TokensD2, s.NetSends, s.LocalBypass)
	}
	r.Tables = append(r.Tables, tb)

	// Per-PE balance on matmul: tags hash activities across the machine.
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		r.Err = err
		return r
	}
	m := core.NewMachine(core.Config{PEs: 8, Compiled: opt.Compiled}, prog)
	if _, err := m.Run(500_000_000, token.Int(nmm)); err != nil {
		r.Err = err
		return r
	}
	balance := metrics.NewTable("E6: per-PE load balance, matmul", "PE", "fired", "ALU util", "match peak")
	for i, ps := range m.PEStats() {
		balance.AddRow(i, ps.Fired.Value(), ps.ALU.Fraction(), ps.MatchStoreOccupancy.Max())
	}
	r.Tables = append(r.Tables, balance)
	r.Finding = "matching-store occupancy stays bounded and balanced across PEs; structure-heavy workloads shift the token mix toward d=1 exactly as the Section 2.2.4 FETCH/STORE protocol predicts"
	return r
}
