package experiments

import (
	"fmt"

	"repro/internal/conformance"
	"repro/internal/metrics"
)

// E14ConformanceSweep runs the cross-machine differential harness as an
// experiment: randomly generated programs are executed in both their
// dataflow and von Neumann forms across the whole machine fleet, and the
// eight oracle families (result equivalence, determinism, metamorphic
// invariants, engine honesty, parallel equivalence, compiled
// equivalence, checkpoint equivalence, direct-execution equivalence)
// are tallied. Unlike E1–E13, which each
// measure one of the paper's claims, E14 measures the reproduction
// itself: the claim is that every machine in this repository computes
// the same answers and obeys the paper's qualitative orderings on
// arbitrary programs, not just the committed goldens.
func E14ConformanceSweep(opt Options) Result {
	r := Result{
		ID:     "E14",
		Title:  "Conformance sweep: differential testing across the fleet",
		Anchor: "methodology (AriDeM validation; Ultracomputer retrospective)",
		Claim:  "the TTDA, the vn core, and all six Section-1.2 baselines agree on arbitrary generated programs, and the paper's qualitative invariants hold under randomized workloads",
	}
	n := 40
	if opt.Quick {
		n = 8
	}
	rep := conformance.Sweep(n)

	tb := metrics.NewTable("E14: oracle checks over generated programs",
		"oracle family", "checks", "violations")
	perViolations := map[conformance.Oracle]int{}
	for _, v := range rep.Violations {
		perViolations[v.Oracle]++
	}
	for _, o := range []conformance.Oracle{
		conformance.OracleResult,
		conformance.OracleDeterminism,
		conformance.OracleMetamorphic,
		conformance.OracleHonesty,
		conformance.OracleParallel,
		conformance.OracleCompiled,
		conformance.OracleCheckpoint,
		conformance.OracleDirect,
	} {
		tb.AddRow(string(o), rep.PerOracle[o], perViolations[o])
	}
	r.Tables = append(r.Tables, tb)

	if len(rep.Violations) > 0 {
		r.Err = fmt.Errorf("%d conformance violations; first: %s", len(rep.Violations), rep.Violations[0])
		return r
	}
	r.Finding = fmt.Sprintf(
		"%d generated programs ran through the TTDA, the vn core, and all six baselines: "+
			"%d oracle checks, zero violations — answers agree everywhere, runs are bit-deterministic, "+
			"latency never helps a von Neumann machine, TTDA time never beats S∞, combining never hurts, "+
			"the wake-queue engine matches exhaustive stepping, the sharded parallel kernel and "+
			"the compiled execution plan are both bit-identical to sequential interpretation, every run "+
			"split at a random cycle by a checkpoint/restore round trip matches the uninterrupted run, and the "+
			"direct-execution backend — no tokens, no engine, loops as native control flow — reproduces the "+
			"reference interpreter's results, firing counts, and faults on every case.",
		rep.Programs, rep.Checks)
	return r
}
