package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/vn"
	"repro/internal/workload"
)

// E1LatencyTolerance reproduces the Issue 1 argument (and the machine
// model of Figure 1-1): as memory latency grows with machine size, a von
// Neumann processor that blocks on each request idles; low-level context
// switching helps only in proportion to its (fixed) context count; the
// tagged-token machine keeps issuing overlapped requests and its run time
// barely moves.
func E1LatencyTolerance(opt Options) Result {
	r := Result{
		ID:     "E1",
		Title:  "Latency tolerance: blocking vN vs multithreaded vN vs TTDA",
		Anchor: "Issue 1 (Section 1.1), Figure 1-1",
		Claim:  "each processor must issue multiple overlapped memory requests or idle as latency grows; context switching needs ever more contexts",
	}
	lats := pick(opt, []int{1, 2, 5, 10, 20, 50, 100, 200}, []int{1, 10, 50})

	var blocking, mt4, mt16, ttdaUtil, ttdaSlow metrics.Series
	blocking.Name = "vN-blocking util"
	mt4.Name = "vN-4ctx util"
	mt16.Name = "vN-16ctx util"
	ttdaUtil.Name = "TTDA ALU util"
	ttdaSlow.Name = "TTDA slowdown"

	iters := 100
	if opt.Quick {
		iters = 40
	}

	vnUtil := func(latency sim.Cycle, k int) (float64, error) {
		// Assembled fresh per call: sweep points run concurrently and share
		// nothing.
		prog, err := vn.Assemble(workload.MemLoopASM)
		if err != nil {
			return 0, err
		}
		mem := vn.NewLatencyMemory(latency)
		c := vn.NewCore(prog, mem, k)
		for i := 0; i < k; i++ {
			c.Context(i).SetReg(1, vn.Word(1000+1000*i))
			c.Context(i).SetReg(4, vn.Word(iters))
		}
		eng := sim.NewEngine()
		eng.Register(mem)
		eng.Register(c)
		if _, ok := eng.Run(c.Halted, 10_000_000); !ok {
			return 0, fmt.Errorf("E1: vN run did not halt")
		}
		return c.Stats().Utilization(), nil
	}

	// The TTDA side runs fib(n): tree-shaped parallelism far wider than
	// the latency being hidden — the "sufficiently parallel program" the
	// paper's claim is conditioned on.
	n := int64(15)
	fibWant := int64(610)
	if opt.Quick {
		n, fibWant = 12, 144
	}
	ttda := func(latency sim.Cycle) (util float64, cycles uint64, err error) {
		prog, err := id.Compile(workload.FibID)
		if err != nil {
			return 0, 0, err
		}
		m := core.NewMachine(core.Config{PEs: 4, NetLatency: latency, Shards: opt.Shards, Compiled: opt.Compiled}, prog)
		res, err := m.Run(500_000_000, token.Int(n))
		if err != nil {
			return 0, 0, err
		}
		if res[0].I != fibWant {
			return 0, 0, fmt.Errorf("E1: TTDA computed %s, want %d", res[0], fibWant)
		}
		s := m.Summarize()
		return s.ALUUtilization, s.Cycles, nil
	}

	// One sweep point = four independent whole-machine runs; points fan
	// out across workers and reassemble in latency order.
	type row struct {
		u1, u4, u16, tu float64
		tc              uint64
	}
	rows, err := runPoints(opt, lats, func(_ PointEnv, l int) (row, error) {
		lat := sim.Cycle(l)
		var out row
		var err error
		if out.u1, err = vnUtil(lat, 1); err != nil {
			return out, err
		}
		if out.u4, err = vnUtil(lat, 4); err != nil {
			return out, err
		}
		if out.u16, err = vnUtil(lat, 16); err != nil {
			return out, err
		}
		out.tu, out.tc, err = ttda(lat)
		return out, err
	})
	if err != nil {
		r.Err = err
		return r
	}
	var base uint64
	for i, l := range lats {
		if base == 0 {
			base = rows[i].tc
		}
		x := float64(l)
		blocking.Add(x, rows[i].u1)
		mt4.Add(x, rows[i].u4)
		mt16.Add(x, rows[i].u16)
		ttdaUtil.Add(x, rows[i].tu)
		ttdaSlow.Add(x, float64(rows[i].tc)/float64(base))
	}
	r.Tables = append(r.Tables, metrics.SeriesTable(
		"E1: utilization and TTDA slowdown vs memory/network latency (vN cores stream memory; TTDA runs tree-parallel fib)",
		"latency", blocking, mt4, mt16, ttdaUtil, ttdaSlow))

	lastIdx := len(blocking.Points) - 1
	r.Finding = fmt.Sprintf(
		"blocking vN falls to %.2f at latency %d while the TTDA slows only %.2fx; fixed context counts land in between",
		blocking.Points[lastIdx].Y, lats[lastIdx], ttdaSlow.Points[lastIdx].Y)
	return r
}
