// Package experiments contains the reproduction harness: one experiment
// per figure or quantitative claim in the paper, as indexed in DESIGN.md.
// Each experiment builds its machines from the substrate packages, sweeps
// the parameter the paper's argument turns on, and renders the series as
// text tables. cmd/critique-bench prints them; bench_test.go wraps them as
// benchmarks; EXPERIMENTS.md records paper-claim versus measured shape.
package experiments

import (
	"fmt"

	"repro/internal/metrics"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks sweeps for use in tests and benchmarks.
	Quick bool
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Anchor string // where in the paper the claim lives
	Claim  string // the paper's claim, paraphrased
	Tables []*metrics.Table
	// Finding is the observed one-line shape, for EXPERIMENTS.md.
	Finding string
	// Err reports an experiment that failed to run.
	Err error
}

// String renders the full experiment report.
func (r Result) String() string {
	s := fmt.Sprintf("== %s: %s\n   anchor: %s\n   claim:  %s\n", r.ID, r.Title, r.Anchor, r.Claim)
	if r.Err != nil {
		return s + fmt.Sprintf("   ERROR: %v\n", r.Err)
	}
	for _, t := range r.Tables {
		s += "\n" + t.String()
	}
	s += "\nfinding: " + r.Finding + "\n"
	return s
}

// All runs every experiment in order.
func All(opt Options) []Result {
	return []Result{
		E1LatencyTolerance(opt),
		E2ContextCounts(opt),
		E3CacheCoherence(opt),
		E4ReadBeforeWrite(opt),
		E5Trapezoid(opt),
		E6PipelineAnatomy(opt),
		E7Cmmp(opt),
		E8Cmstar(opt),
		E9FetchAndAdd(opt),
		E10ConnectionMachine(opt),
		E11Emulator(opt),
		E12VLIW(opt),
		E13ParallelismGrail(opt),
	}
}

// pick returns q when quick, full otherwise.
func pick(opt Options, full, q []int) []int {
	if opt.Quick {
		return q
	}
	return full
}
