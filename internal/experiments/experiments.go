// Package experiments contains the reproduction harness: one experiment
// per figure or quantitative claim in the paper, as indexed in DESIGN.md.
// Each experiment builds its machines from the substrate packages, sweeps
// the parameter the paper's argument turns on, and renders the series as
// text tables. cmd/critique-bench prints them; bench_test.go wraps them as
// benchmarks; EXPERIMENTS.md records paper-claim versus measured shape.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks sweeps for use in tests and benchmarks.
	Quick bool
	// Shards > 1 runs the shardable machines (TTDA, C.mmp, Cm*,
	// Ultracomputer, HEP) on the conservative parallel kernel with that
	// many shards. Results are bit-identical to sequential runs, so every
	// experiment table and finding is unchanged; only wall time moves.
	Shards int
	// Compiled runs every TTDA simulation through the ahead-of-time
	// compiled execution plan instead of the graph interpreter. Like
	// Shards, this is a pure host-side speedup: cycle counts, statistics,
	// and findings are bit-identical (the conformance suite's
	// compiled-equivalence oracle enforces it).
	Compiled bool
	// SweepWorkers bounds the parallel sweep runner's worker pool for
	// each experiment's parameter sweep (internal/sweep); <= 0 means
	// GOMAXPROCS. Results are deterministic at any setting.
	SweepWorkers int
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Anchor string // where in the paper the claim lives
	Claim  string // the paper's claim, paraphrased
	Tables []*metrics.Table
	// Finding is the observed one-line shape, for EXPERIMENTS.md.
	Finding string
	// Err reports an experiment that failed to run.
	Err error
	// Wall is how long the experiment took to run, for BENCH tracking.
	Wall time.Duration
}

// String renders the full experiment report.
func (r Result) String() string {
	s := fmt.Sprintf("== %s: %s\n   anchor: %s\n   claim:  %s\n", r.ID, r.Title, r.Anchor, r.Claim)
	if r.Err != nil {
		return s + fmt.Sprintf("   ERROR: %v\n", r.Err)
	}
	for _, t := range r.Tables {
		s += "\n" + t.String()
	}
	s += "\nfinding: " + r.Finding + "\n"
	return s
}

// All runs every experiment in order.
func All(opt Options) []Result {
	return timed(opt,
		E1LatencyTolerance,
		E2ContextCounts,
		E3CacheCoherence,
		E4ReadBeforeWrite,
		E5Trapezoid,
		E6PipelineAnatomy,
		E7Cmmp,
		E8Cmstar,
		E9FetchAndAdd,
		E10ConnectionMachine,
		E11Emulator,
		E12VLIW,
		E13ParallelismGrail,
		E14ConformanceSweep,
	)
}

// timed runs each experiment and stamps its wall time on the Result.
func timed(opt Options, fns ...func(Options) Result) []Result {
	out := make([]Result, 0, len(fns))
	for _, fn := range fns {
		start := time.Now()
		r := fn(opt)
		r.Wall = time.Since(start)
		out = append(out, r)
	}
	return out
}

// pick returns q when quick, full otherwise.
func pick(opt Options, full, q []int) []int {
	if opt.Quick {
		return q
	}
	return full
}
