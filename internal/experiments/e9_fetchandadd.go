package experiments

import (
	"fmt"

	"repro/internal/machines/ultra"
	"repro/internal/metrics"
	"repro/internal/vn"
	"repro/internal/workload"
)

// E9FetchAndAdd reproduces the Section 1.2.3 discussion of the NYU
// Ultracomputer: switch-level combining removes the hot-spot serial
// bottleneck of FETCH-AND-ADD at the memory module, and the price is
// adder hardware and decombine state in every switch — "one memory
// reference may involve as many as log2 n additions".
func E9FetchAndAdd(opt Options) Result {
	r := Result{
		ID:     "E9",
		Title:  "Ultracomputer: FETCH-AND-ADD combining vs hot spots",
		Anchor: "Section 1.2.3",
		Claim:  "combining serializes correctly while relieving the memory module; the cost moves into the switches",
	}
	logs := pick(opt, []int{2, 3, 4, 5, 6}, []int{2, 4})

	var plainC, combC, hotPlain, hotComb, ops metrics.Series
	plainC.Name = "cycles plain"
	combC.Name = "cycles combining"
	hotPlain.Name = "hot-bank reqs plain"
	hotComb.Name = "hot-bank reqs comb"
	ops.Name = "switch additions"

	run := func(logP int, combining bool) (cycles uint64, hot uint64, combineOps uint64, err error) {
		prog, err := vn.Assemble(workload.HotspotASM)
		if err != nil {
			return 0, 0, 0, err
		}
		m := ultra.New(ultra.Config{LogProcessors: logP, Combining: combining, Shards: opt.Shards}, prog)
		n := m.NumProcessors()
		for p := 0; p < n; p++ {
			m.Core(p).Context(0).SetReg(4, vn.Word(1000+p))
		}
		c, err := m.Run(20_000_000)
		if err != nil {
			return 0, 0, 0, err
		}
		if got := m.Peek(0); got != vn.Word(n) {
			return 0, 0, 0, fmt.Errorf("E9: hot cell = %d, want %d", got, n)
		}
		seen := map[vn.Word]bool{}
		for p := 0; p < n; p++ {
			v := m.Peek(uint32(1000 + p))
			if v < 0 || v >= vn.Word(n) || seen[v] {
				return 0, 0, 0, fmt.Errorf("E9: tickets not a permutation")
			}
			seen[v] = true
		}
		return uint64(c), m.BankServed(0), m.Network().CombineOps.Value(), nil
	}

	for _, lg := range logs {
		pc, ph, _, err := run(lg, false)
		if err != nil {
			r.Err = err
			return r
		}
		cc, ch, co, err := run(lg, true)
		if err != nil {
			r.Err = err
			return r
		}
		x := float64(int(1) << lg)
		plainC.Add(x, float64(pc))
		combC.Add(x, float64(cc))
		hotPlain.Add(x, float64(ph))
		hotComb.Add(x, float64(ch))
		ops.Add(x, float64(co))
	}
	r.Tables = append(r.Tables, metrics.SeriesTable(
		"E9: n-way FETCH-AND-ADD burst at one cell (every value fetched exactly once)",
		"processors", plainC, combC, hotPlain, hotComb, ops))
	last := len(logs) - 1
	n := 1 << logs[last]
	r.Finding = fmt.Sprintf(
		"without combining the hot module serves all %d requests and the burst time grows linearly; with combining it serves %.0f and the time flattens — at the price of %.0f switch additions plus decombine state",
		n, hotComb.Points[last].Y, ops.Points[last].Y)
	return r
}
