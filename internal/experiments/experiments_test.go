package experiments

import (
	"fmt"
	"strings"
	"testing"
)

var quick = Options{Quick: true}

// requireOK fails the test when the experiment errored, and checks basic
// report structure.
func requireOK(t *testing.T, r Result) {
	t.Helper()
	if r.Err != nil {
		t.Fatalf("%s failed: %v", r.ID, r.Err)
	}
	if len(r.Tables) == 0 {
		t.Fatalf("%s produced no tables", r.ID)
	}
	if r.Finding == "" {
		t.Fatalf("%s produced no finding", r.ID)
	}
	s := r.String()
	for _, want := range []string{r.ID, "anchor:", "claim:", "finding:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("%s report missing %q:\n%s", r.ID, want, s)
		}
	}
}

// lastY returns the last point of the named column series in a SeriesTable
// by re-reading the table text — experiments expose shapes through tables,
// so the tests verify the shapes through the same surface.
func seriesColumn(t *testing.T, r Result, tableIdx int, col string) []float64 {
	t.Helper()
	tb := r.Tables[tableIdx]
	ci := -1
	for i, h := range tb.Headers {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("%s table %d has no column %q (headers %v)", r.ID, tableIdx, col, tb.Headers)
	}
	var out []float64
	for _, row := range tb.Rows {
		if row[ci] == "" {
			continue
		}
		var v float64
		if _, err := fmtSscan(row[ci], &v); err != nil {
			t.Fatalf("%s: cell %q not numeric", r.ID, row[ci])
		}
		out = append(out, v)
	}
	return out
}

func fmtSscan(s string, v *float64) (int, error) {
	s = strings.TrimSuffix(s, "x")
	return fmt.Sscan(s, v)
}

func TestE1Shape(t *testing.T) {
	r := E1LatencyTolerance(quick)
	requireOK(t, r)
	blocking := seriesColumn(t, r, 0, "vN-blocking util")
	slow := seriesColumn(t, r, 0, "TTDA slowdown")
	if blocking[len(blocking)-1] >= blocking[0] {
		t.Fatalf("blocking utilization must fall with latency: %v", blocking)
	}
	// The blocking core's run time scales as util[0]/util[last]; the TTDA
	// must degrade far less over the same latency range.
	blockingSlowdown := blocking[0] / blocking[len(blocking)-1]
	if got := slow[len(slow)-1]; got > blockingSlowdown/2 {
		t.Fatalf("TTDA slowdown %v should be well under blocking slowdown %v", got, blockingSlowdown)
	}
}

func TestE2Shape(t *testing.T) {
	r := E2ContextCounts(quick)
	requireOK(t, r)
}

func TestE3Shape(t *testing.T) {
	r := E3CacheCoherence(quick)
	requireOK(t, r)
	shared := seriesColumn(t, r, 0, "cycles/access shared")
	private := seriesColumn(t, r, 0, "cycles/access private")
	if shared[len(shared)-1] <= private[len(private)-1] {
		t.Fatalf("shared data must cost more than private at scale: %v vs %v", shared, private)
	}
}

func TestE4Shape(t *testing.T) {
	r := E4ReadBeforeWrite(quick)
	requireOK(t, r)
	// row order: barrier, chunked, per-element; cycles strictly improving
	cycles := seriesColumn(t, r, 0, "cycles")
	if !(cycles[2] < cycles[0]) {
		t.Fatalf("per-element sync must beat the barrier: %v", cycles)
	}
	deferred := seriesColumn(t, r, 0, "deferred reads")
	if deferred[2] == 0 {
		t.Fatal("per-element run should have deferred reads (the synchronization evidence)")
	}
}

func TestE5Shape(t *testing.T) {
	r := E5Trapezoid(quick)
	requireOK(t, r)
}

func TestE6Shape(t *testing.T) {
	r := E6PipelineAnatomy(quick)
	requireOK(t, r)
}

func TestE7Shape(t *testing.T) {
	r := E7Cmmp(quick)
	requireOK(t, r)
	ratio := seriesColumn(t, r, 1, "semaphore overhead x")
	if ratio[len(ratio)-1] < 3 {
		t.Fatalf("semaphore cost should far exceed an ALU op: %v", ratio)
	}
}

func TestE8Shape(t *testing.T) {
	r := E8Cmstar(quick)
	requireOK(t, r)
	util := seriesColumn(t, r, 0, "utilization")
	if util[len(util)-1] >= util[0] {
		t.Fatalf("utilization must fall with distance: %v", util)
	}
}

func TestE9Shape(t *testing.T) {
	r := E9FetchAndAdd(quick)
	requireOK(t, r)
	hotPlain := seriesColumn(t, r, 0, "hot-bank reqs plain")
	hotComb := seriesColumn(t, r, 0, "hot-bank reqs comb")
	if hotComb[len(hotComb)-1] >= hotPlain[len(hotPlain)-1] {
		t.Fatalf("combining must reduce hot-bank traffic: %v vs %v", hotComb, hotPlain)
	}
}

func TestE10Shape(t *testing.T) {
	r := E10ConnectionMachine(quick)
	requireOK(t, r)
	frac := seriesColumn(t, r, 0, "comm fraction")
	if frac[len(frac)-1] < 0.5 {
		t.Fatalf("communication should dominate: %v", frac)
	}
}

func TestE11Shape(t *testing.T) {
	r := E11Emulator(quick)
	requireOK(t, r)
}

func TestE12Shape(t *testing.T) {
	r := E12VLIW(quick)
	requireOK(t, r)
	ops := seriesColumn(t, r, 0, "ops/cycle L=100")
	if ops[len(ops)-1] >= ops[0] {
		t.Fatalf("issue rate must fall with miss rate: %v", ops)
	}
}

func TestAllRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("All() in quick mode still takes seconds")
	}
	results := All(quick)
	if len(results) != 14 {
		t.Fatalf("expected 14 experiments, got %d", len(results))
	}
	for _, r := range results {
		requireOK(t, r)
	}
}

func TestA1Shape(t *testing.T) {
	r := A1Optimizer(quick)
	requireOK(t, r)
	fired := seriesColumn(t, r, 0, "fired")
	if fired[1] >= fired[0] {
		t.Fatalf("optimizer must reduce dynamic firings: %v", fired)
	}
}

func TestA2Shape(t *testing.T) {
	r := A2MatchCapacity(quick)
	requireOK(t, r)
	cycles := seriesColumn(t, r, 0, "cycles")
	if cycles[len(cycles)-1] <= cycles[0] {
		t.Fatalf("small matching stores must cost cycles: %v", cycles)
	}
}

func TestA3Shape(t *testing.T) {
	r := A3PipelineBandwidth(quick)
	requireOK(t, r)
	cycles := seriesColumn(t, r, 0, "cycles")
	if cycles[len(cycles)-1] >= cycles[0] {
		t.Fatalf("wider pipeline sections must help: %v", cycles)
	}
}

func TestA4Shape(t *testing.T) {
	r := A4Topology(quick)
	requireOK(t, r)
}

func TestAblationsAll(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, r := range Ablations(quick) {
		requireOK(t, r)
	}
}

func TestE13Shape(t *testing.T) {
	r := E13ParallelismGrail(quick)
	requireOK(t, r)
	// wavefront max width must grow with size; serial sum-loop must not
	wf := seriesColumn(t, r, 2, "max width")
	if wf[len(wf)-1] <= wf[0] {
		t.Fatalf("wavefront parallelism must grow: %v", wf)
	}
	serial := seriesColumn(t, r, 3, "max width")
	if serial[len(serial)-1] > serial[0]*2 {
		t.Fatalf("serial loop width must stay flat: %v", serial)
	}
}

func TestE14Shape(t *testing.T) {
	r := E14ConformanceSweep(quick)
	requireOK(t, r)
	if len(r.Tables) != 1 {
		t.Fatalf("expected 1 table, got %d", len(r.Tables))
	}
	rows := r.Tables[0].Rows
	if len(rows) != 8 {
		t.Fatalf("expected one row per oracle family, got %d", len(rows))
	}
	for _, row := range rows {
		if row[1] == "0" {
			t.Fatalf("oracle family %v ran zero checks", row[0])
		}
		if row[2] != "0" {
			t.Fatalf("oracle family %v reported violations: %v", row[0], row[2])
		}
	}
}

func TestA5Shape(t *testing.T) {
	r := A5OpTiming(quick)
	requireOK(t, r)
	cycles := seriesColumn(t, r, 0, "cycles")
	if cycles[1] <= cycles[0] {
		t.Fatalf("weighted ALU must cost cycles: %v", cycles)
	}
}
