package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/workload"
)

// Ablations runs the A-series: sensitivity studies of the design choices
// in the TTDA model itself, complementing the paper-claim experiments.
func Ablations(opt Options) []Result {
	return timed(opt,
		A1Optimizer,
		A2MatchCapacity,
		A3PipelineBandwidth,
		A4Topology,
		A5OpTiming,
	)
}

// runMat compiles-and-runs matmul(n) on a machine and returns its summary.
func runMat(cfg core.Config, prog *graph.Program, n int64) (core.Summary, error) {
	m := core.NewMachine(cfg, prog)
	res, err := m.Run(1_000_000_000, token.Int(n))
	if err != nil {
		return core.Summary{}, err
	}
	if res[0].I != workload.MatMulChecksum(int(n)) {
		return core.Summary{}, fmt.Errorf("matmul checksum mismatch: %s", res[0])
	}
	return m.Summarize(), nil
}

// A1Optimizer measures identity elision: static instruction count, dynamic
// firings, and machine cycles with the optimizer on and off.
func A1Optimizer(opt Options) Result {
	r := Result{
		ID:     "A1",
		Title:  "Ablation: graph optimizer (identity elision)",
		Anchor: "DESIGN.md §4 (compiler back end)",
		Claim:  "compiler-inserted pass-through identities cost real ALU firings and cycles; eliding them is semantics-preserving",
	}
	n := int64(6)
	if opt.Quick {
		n = 4
	}
	tb := metrics.NewTable("A1: matmul with and without the optimizer (8 PEs)",
		"configuration", "static instrs", "fired", "cycles")
	raw, err := id.CompileRaw(workload.MatMulID)
	if err != nil {
		r.Err = err
		return r
	}
	sRaw, err := runMat(core.Config{PEs: 8, Compiled: opt.Compiled}, raw, n)
	if err != nil {
		r.Err = err
		return r
	}
	liveRaw := raw.NumInstructions()
	opts, err := id.Compile(workload.MatMulID)
	if err != nil {
		r.Err = err
		return r
	}
	sOpt, err := runMat(core.Config{PEs: 8, Compiled: opt.Compiled}, opts, n)
	if err != nil {
		r.Err = err
		return r
	}
	liveOpt := 0
	for _, blk := range opts.Blocks {
		for s := range blk.Instrs {
			if blk.Instrs[s].Op != graph.OpNop {
				liveOpt++
			}
		}
	}
	tb.AddRow("unoptimized", liveRaw, sRaw.Fired, sRaw.Cycles)
	tb.AddRow("identity elision", liveOpt, sOpt.Fired, sOpt.Cycles)
	r.Tables = append(r.Tables, tb)
	r.Finding = fmt.Sprintf("elision removes %d static instructions, %.0f%% of dynamic firings, and %.0f%% of cycles — for free",
		liveRaw-liveOpt,
		100*(1-float64(sOpt.Fired)/float64(sRaw.Fired)),
		100*(1-float64(sOpt.Cycles)/float64(sRaw.Cycles)))
	return r
}

// A2MatchCapacity measures the associative waiting-matching store size the
// paper frets about: how small can it be before overflow penalties bite?
func A2MatchCapacity(opt Options) Result {
	r := Result{
		ID:     "A2",
		Title:  "Ablation: waiting-matching store capacity",
		Anchor: "Section 2.2.3 (the associative memory)",
		Claim:  "the matching store is the TTDA's critical resource; undersizing it costs overflow-store penalties",
	}
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		r.Err = err
		return r
	}
	n := int64(6)
	if opt.Quick {
		n = 4
	}
	caps := pick(opt, []int{0, 128, 64, 32, 16, 8, 4}, []int{0, 16, 4})
	tb := metrics.NewTable("A2: matmul on 8 PEs vs per-PE matching-store capacity (0 = unbounded)",
		"capacity", "cycles", "overflow accesses", "slowdown")
	var base uint64
	var worst float64
	for _, c := range caps {
		m := core.NewMachine(core.Config{PEs: 8, MatchCapacity: c, Compiled: opt.Compiled}, prog)
		res, err := m.Run(1_000_000_000, token.Int(n))
		if err != nil {
			r.Err = err
			return r
		}
		if res[0].I != workload.MatMulChecksum(int(n)) {
			r.Err = fmt.Errorf("A2: wrong checksum at capacity %d", c)
			return r
		}
		s := m.Summarize()
		overflows := uint64(0)
		for _, ps := range m.PEStats() {
			overflows += ps.Overflows.Value()
		}
		if base == 0 {
			base = s.Cycles
		}
		worst = float64(s.Cycles) / float64(base)
		tb.AddRow(c, s.Cycles, overflows, worst)
	}
	r.Tables = append(r.Tables, tb)
	r.Finding = fmt.Sprintf("capacities past the workload's peak occupancy are free; a %d-entry store pays %.2fx in overflow penalties",
		caps[len(caps)-1], worst)
	return r
}

// A3PipelineBandwidth varies the matching and output section bandwidths of
// Figure 2-4's pipeline.
func A3PipelineBandwidth(opt Options) Result {
	r := Result{
		ID:     "A3",
		Title:  "Ablation: PE pipeline section bandwidths",
		Anchor: "Section 2.2.3, Figure 2-4",
		Claim:  "a single-ported matching store halves the enable rate of two-operand instructions; the output section must keep pace with fan-out",
	}
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		r.Err = err
		return r
	}
	n := int64(6)
	if opt.Quick {
		n = 4
	}
	tb := metrics.NewTable("A3: matmul cycles on 8 PEs vs section bandwidths",
		"match BW", "output BW", "cycles", "ALU util")
	type cfg struct{ mb, ob int }
	cfgs := []cfg{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {4, 4}}
	if opt.Quick {
		cfgs = []cfg{{1, 1}, {2, 2}}
	}
	for _, c := range cfgs {
		s, err := runMat(core.Config{PEs: 8, MatchBandwidth: c.mb, OutputBandwidth: c.ob, Compiled: opt.Compiled}, prog, n)
		if err != nil {
			r.Err = err
			return r
		}
		tb.AddRow(c.mb, c.ob, s.Cycles, s.ALUUtilization)
	}
	r.Tables = append(r.Tables, tb)
	r.Finding = "dual-ported matching and a two-token output section keep the ALU fed; either section at bandwidth 1 becomes the pipeline bottleneck"
	return r
}

// A4Topology runs the TTDA over different interconnects at equal PE count.
func A4Topology(opt Options) Result {
	r := Result{
		ID:     "A4",
		Title:  "Ablation: TTDA interconnect topology",
		Anchor: "Figure 2-3 (the network is a pluggable element)",
		Claim:  "the architecture tolerates the latency differences between topologies; run time tracks mean packet latency, not ALU speed",
	}
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		r.Err = err
		return r
	}
	n := int64(6)
	if opt.Quick {
		n = 4
	}
	const pes = 16
	tb := metrics.NewTable("A4: matmul on 16 PEs over different networks",
		"network", "cycles", "mean pkt latency", "delivered")
	type mk struct {
		name string
		net  func() network.Network
	}
	nets := []mk{
		{"ideal L=2", func() network.Network { return network.NewIdeal(pes, 2) }},
		{"ideal L=16", func() network.Network { return network.NewIdeal(pes, 16) }},
		{"mesh 4x4", func() network.Network { return network.NewMesh(4, 4, false, 16) }},
		{"torus 4x4", func() network.Network { return network.NewMesh(4, 4, true, 16) }},
		{"hypercube d=4", func() network.Network { return network.NewHypercube(4, 16) }},
	}
	var first uint64
	for _, mkn := range nets {
		net := mkn.net()
		m := core.NewMachine(core.Config{PEs: pes, Net: net, Compiled: opt.Compiled}, prog)
		res, err := m.Run(1_000_000_000, token.Int(n))
		if err != nil {
			r.Err = fmt.Errorf("%s: %w", mkn.name, err)
			return r
		}
		if res[0].I != workload.MatMulChecksum(int(n)) {
			r.Err = fmt.Errorf("%s: wrong checksum", mkn.name)
			return r
		}
		s := m.Summarize()
		if first == 0 {
			first = s.Cycles
		}
		tb.AddRow(mkn.name, s.Cycles, net.Stats().MeanLatency(), net.Stats().Delivered.Value())
	}
	r.Tables = append(r.Tables, tb)
	r.Finding = "every topology computes the same answer; cycle counts move with packet latency and congestion, demonstrating the network-element modularity of Figure 1-1"
	return r
}

// A5OpTiming varies the ALU service-time model: the default unit-time ALU
// against a weighted profile where multiplies, divides, and square roots
// take several cycles — checking how sensitive the headline numbers are to
// the abstraction.
func A5OpTiming(opt Options) Result {
	r := Result{
		ID:     "A5",
		Title:  "Ablation: per-opcode ALU service times",
		Anchor: "Section 2.2.3 (the ALU stage)",
		Claim:  "conclusions should not hinge on the unit-time ALU idealization",
	}
	n := int64(6)
	if opt.Quick {
		n = 4
	}
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		r.Err = err
		return r
	}
	weighted := func(op graph.Opcode) sim.Cycle {
		switch op {
		case graph.OpMul:
			return 3
		case graph.OpDiv, graph.OpMod:
			return 6
		case graph.OpSqrt:
			return 8
		default:
			return 1
		}
	}
	tb := metrics.NewTable("A5: matmul on 8 PEs under ALU timing models",
		"timing model", "cycles", "ALU util", "slowdown")
	var base uint64
	for _, m := range []struct {
		name string
		f    func(graph.Opcode) sim.Cycle
	}{
		{"unit time", nil},
		{"weighted (MUL=3, DIV=6)", weighted},
	} {
		s, err := runMat(core.Config{PEs: 8, OpTime: m.f, Compiled: opt.Compiled}, prog, n)
		if err != nil {
			r.Err = err
			return r
		}
		if base == 0 {
			base = s.Cycles
		}
		tb.AddRow(m.name, s.Cycles, s.ALUUtilization, float64(s.Cycles)/float64(base))
	}
	r.Tables = append(r.Tables, tb)
	// Scaling under weighted timing still works: overlap hides ALU
	// occupancy the same way it hides network latency.
	var speed metrics.Series
	speed.Name = "speedup (weighted ALU)"
	var one uint64
	for _, p := range pick(opt, []int{1, 2, 4, 8, 16}, []int{1, 8}) {
		s, err := runMat(core.Config{PEs: p, OpTime: weighted, Compiled: opt.Compiled}, prog, n)
		if err != nil {
			r.Err = err
			return r
		}
		if one == 0 {
			one = s.Cycles
		}
		speed.Add(float64(p), float64(one)/float64(s.Cycles))
	}
	r.Tables = append(r.Tables, metrics.SeriesTable("A5: matmul speedup with the weighted ALU", "PEs", speed))
	r.Finding = fmt.Sprintf(
		"the weighted ALU slows the 8-PE run only %.2fx: with ALU utilization near one half, much of the extra occupancy lands in cycles the ALU would have idled anyway, and machine scaling is unchanged (%.2fx at 16 PEs)",
		func() float64 {
			if len(tb.Rows) >= 2 {
				var v float64
				fmt.Sscan(strings.TrimSuffix(tb.Rows[1][3], "x"), &v)
				return v
			}
			return 0
		}(), speed.Points[len(speed.Points)-1].Y)
	return r
}
