package experiments

import (
	"fmt"

	"repro/internal/machines/connection"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// E10ConnectionMachine reproduces the Section 1.2.5 analysis: on the
// graph-exploration workloads the Connection Machine targets, routing
// dominates computation so thoroughly ("90%?, 99%?") that 1-bit ALU speed
// is irrelevant; and the hypercube's log-diameter beats the Illiac-style
// grid.
func E10ConnectionMachine(opt Options) Result {
	r := Result{
		ID:     "E10",
		Title:  "Connection Machine: communication dominates computation",
		Anchor: "Section 1.2.5",
		Claim:  "a processor spends almost all of its time communicating; conflicts push routing beyond the 14-step minimum",
	}
	logs := pick(opt, []int{6, 8, 10}, []int{6, 8})

	// Label propagation over a scattered random graph.
	runLabels := func(lg int, router connection.Router) (commFrac float64, rounds int, meanRoute float64, err error) {
		m := connection.New(connection.Config{LogPEs: lg, Router: router}, 4)
		n := m.NumPEs()
		rng := sim.NewRNG(77)
		edges := make([][]int, n)
		for i := 0; i < n; i++ {
			edges[i] = []int{(i + 1) % n, rng.Intn(n), rng.Intn(n)}
		}
		for pe := 0; pe < n; pe++ {
			m.Mem(pe)[0] = int64(pe)
			m.Mem(pe)[1] = int64(n)
		}
		for round := 0; round < 10000; round++ {
			var msgs []connection.Message
			for pe := 0; pe < n; pe++ {
				for _, to := range edges[pe] {
					msgs = append(msgs, connection.Message{From: pe, To: to, Value: m.Mem(pe)[0]})
				}
			}
			changed := false
			m.Route(msgs, func(to int, v int64) {
				if v < m.Mem(to)[1] {
					m.Mem(to)[1] = v
				}
			})
			m.Compute(func(pe int, mem []int64) {
				if mem[1] < mem[0] {
					mem[0] = mem[1]
					changed = true
				}
				mem[1] = int64(n)
			})
			if !changed {
				// connectivity check: a connected graph converges to label 0
				for pe := 0; pe < n; pe++ {
					if m.Mem(pe)[0] != 0 {
						return 0, 0, 0, fmt.Errorf("E10: pe %d label %d after convergence", pe, m.Mem(pe)[0])
					}
				}
				return m.CommFraction(), round + 1, m.RouteSteps.Mean(), nil
			}
		}
		return 0, 0, 0, fmt.Errorf("E10: labels did not converge")
	}

	tb := metrics.NewTable("E10: min-label propagation on a scattered random graph (hypercube router)",
		"PEs", "rounds", "comm fraction", "mean route cycles")
	var lastFrac float64
	for _, lg := range logs {
		frac, rounds, mean, err := runLabels(lg, connection.RouterHypercube)
		if err != nil {
			r.Err = err
			return r
		}
		lastFrac = frac
		tb.AddRow(1<<lg, rounds, frac, mean)
	}
	r.Tables = append(r.Tables, tb)

	// Grid vs hypercube on one scattered routing instruction.
	cmp := metrics.NewTable("E10: one all-PEs scattered routing instruction, grid vs hypercube",
		"router", "route cycles")
	for _, router := range []connection.Router{connection.RouterHypercube, connection.RouterGrid} {
		m := connection.New(connection.Config{LogPEs: 8, Router: router}, 2)
		n := m.NumPEs()
		rng := sim.NewRNG(5)
		var msgs []connection.Message
		for pe := 0; pe < n; pe++ {
			msgs = append(msgs, connection.Message{From: pe, To: rng.Intn(n), Value: 1})
		}
		steps := m.Route(msgs, func(int, int64) {})
		name := "hypercube"
		if router == connection.RouterGrid {
			name = "grid (torus)"
		}
		cmp.AddRow(name, uint64(steps))
	}
	r.Tables = append(r.Tables, cmp)
	r.Finding = fmt.Sprintf(
		"communication consumes %.0f%% of sequencer time at the largest size, vindicating the paper's 90%%+ guess; the hypercube's log-diameter routing beats the grid on scattered traffic",
		lastFrac*100)
	return r
}
