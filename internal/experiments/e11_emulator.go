package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/emulator"
	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/token"
	"repro/internal/workload"
)

// E11Emulator reproduces the Figure 3-1 development plan: the same
// compiled graphs run on the detailed simulator (timing-accurate, slow)
// and on the hypercube emulation facility (no internal timings, fast),
// which additionally demonstrates table-routed fault tolerance and static
// partitioning.
func E11Emulator(opt Options) Result {
	r := Result{
		ID:     "E11",
		Title:  "Figure 3-1: detailed simulation vs emulation facility",
		Anchor: "Section 3, Figure 3-1",
		Claim:  "the emulator trades internal timing fidelity for the speed to run large programs; the hypercube's redundancy gives fault tolerance and partitioning",
	}
	fibN := int64(16)
	if opt.Quick {
		fibN = 12
	}
	prog, err := id.Compile(workload.FibID)
	if err != nil {
		r.Err = err
		return r
	}

	// Detailed simulator.
	start := time.Now()
	m := core.NewMachine(core.Config{PEs: 32, Compiled: opt.Compiled}, prog)
	mres, err := m.Run(1_000_000_000, token.Int(fibN))
	if err != nil {
		r.Err = err
		return r
	}
	simWall := time.Since(start)
	simSummary := m.Summarize()

	// Emulation facility (32 nodes = the paper's lower bound).
	start = time.Now()
	f := emulator.New(emulator.Config{Dim: 5}, prog)
	fres, err := f.Run(token.Int(fibN))
	if err != nil {
		r.Err = err
		return r
	}
	emuWall := time.Since(start)
	if !mres[0].Equal(fres[0]) {
		r.Err = fmt.Errorf("E11: substrates disagree: %s vs %s", mres[0], fres[0])
		return r
	}

	tb := metrics.NewTable(fmt.Sprintf("E11: fib(%d) on both prongs of the development plan (32 PEs each)", fibN),
		"substrate", "result", "instructions", "simulated cycles", "wall time", "instr/wall-ms")
	tb.AddRow("detailed simulator", mres[0].String(), simSummary.Fired, simSummary.Cycles,
		simWall.Round(time.Microsecond).String(),
		float64(simSummary.Fired)/fmax(1e-3, float64(simWall.Milliseconds())))
	tb.AddRow("emulation facility", fres[0].String(), f.Fired.Load(), "n/a",
		emuWall.Round(time.Microsecond).String(),
		float64(f.Fired.Load())/fmax(1e-3, float64(emuWall.Milliseconds())))
	r.Tables = append(r.Tables, tb)

	// Fault tolerance: kill links, verify the answer and the reroute cost.
	intact := emulator.New(emulator.Config{Dim: 5}, prog)
	ires, err := intact.Run(token.Int(fibN))
	if err != nil {
		r.Err = err
		return r
	}
	wounded := emulator.New(emulator.Config{Dim: 5}, prog)
	wounded.KillLink(0, 0)
	wounded.KillLink(7, 2)
	wounded.KillLink(19, 4)
	wres, err := wounded.Run(token.Int(fibN))
	if err != nil {
		r.Err = fmt.Errorf("E11 faults: %w", err)
		return r
	}
	if !wres[0].Equal(ires[0]) {
		r.Err = fmt.Errorf("E11: faulted run changed the answer")
		return r
	}
	ft := metrics.NewTable("E11: link-fault tolerance via table re-routing (3 links dead)",
		"configuration", "result", "messages", "hops")
	ft.AddRow("intact cube", ires[0].String(), intact.Messages.Load(), intact.Hops.Load())
	ft.AddRow("3 dead links", wres[0].String(), wounded.Messages.Load(), wounded.Hops.Load())
	r.Tables = append(r.Tables, ft)

	// Partitioning: two independent sub-machines of one facility.
	sumProg, err := id.Compile(workload.SumLoopID)
	if err != nil {
		r.Err = err
		return r
	}
	part := make([]int, 32)
	for i := range part {
		part[i] = i >> 4
	}
	pf := emulator.New(emulator.Config{Dim: 5}, sumProg)
	pf.Partition(part)
	p0, err := pf.RunPartition(0, token.Int(100))
	if err != nil {
		r.Err = err
		return r
	}
	pf2 := emulator.New(emulator.Config{Dim: 5}, sumProg)
	pf2.Partition(part)
	p1, err := pf2.RunPartition(1, token.Int(200))
	if err != nil {
		r.Err = err
		return r
	}
	pt := metrics.NewTable("E11: static partitioning into two 16-node machines",
		"partition", "program", "result")
	pt.AddRow(0, "sum(100)", p0[0].String())
	pt.AddRow(1, "sum(200)", p1[0].String())
	r.Tables = append(r.Tables, pt)

	speed := float64(f.Fired.Load()) / fmax(1e-3, float64(emuWall.Microseconds())) /
		(float64(simSummary.Fired) / fmax(1e-3, float64(simWall.Microseconds())))
	r.Finding = fmt.Sprintf(
		"both prongs agree on every answer; the emulator interprets ~%.1fx more instructions per wall-second (no internal timings), and survives dead links with %d extra hops",
		speed, int64(wounded.Hops.Load())-int64(intact.Hops.Load()))
	return r
}

func fmax(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
