package hep

import (
	"reflect"
	"testing"

	"repro/internal/vn"
)

// TestShardedBitIdentical pins the parallel kernel to the sequential one on
// a multi-processor producer/consumer workload: even cores produce into a
// full/empty cell, odd cores consume from it, with the busy-wait retry
// traffic counted. Snapshots must match byte for byte at every shard count.
func TestShardedBitIdentical(t *testing.T) {
	const n = 40
	run := func(shards int) hepSnapshot {
		prog, err := vn.Assemble(pipeline)
		if err != nil {
			t.Fatal(err)
		}
		m := New(Config{Processors: 4, ContextsPerCore: 1, Shards: shards}, prog)
		for pair := 0; pair < 2; pair++ {
			cell := vn.Word(100 + 10*pair)
			producer := m.cores[2*pair].Context(0)
			producer.SetReg(1, cell)
			producer.SetReg(5, n)
			consumer := m.cores[2*pair+1].Context(0)
			consumer.SetPC(prog.Labels["cons"])
			consumer.SetReg(1, cell)
			consumer.SetReg(5, n)
			consumer.SetReg(8, vn.Word(200+pair))
		}
		cycles, err := m.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 && m.WorkerSteps() == nil {
			t.Fatalf("shards=%d: expected parallel engine worker counters", shards)
		}
		return snapshotHEP(m, uint64(cycles), 200)
	}
	want := run(1)
	if want.Sum != n*(n+1)/2 {
		t.Fatalf("sequential pair 0 summed %d, want %d", want.Sum, n*(n+1)/2)
	}
	for _, s := range []int{2, 3, 4} {
		if got := run(s); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d diverged from sequential:\n got %+v\nwant %+v", s, got, want)
		}
	}
}
