// Package hep models the Denelcor HEP (paper footnote 2; Smith 1978): a
// pipelined MIMD machine whose processors multiplex many hardware process
// contexts, synchronizing through full/empty bits on shared memory cells.
// An unsatisfiable access — consuming an empty cell, producing into a full
// one — is not deferred: the hardware retries it, burning memory bandwidth
// until it succeeds ("there is no such thing as a deferred read list").
//
// The model assembles k-context vn cores over a shared full/empty memory
// whose retry traffic is counted, making the contrast with I-structure
// deferral (internal/istructure) directly measurable.
package hep

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vn"
)

// Config sizes the machine.
type Config struct {
	Processors      int
	ContextsPerCore int
	// MemLatency is the response time after service; MemService the bank
	// occupancy per attempt (including failed, retried attempts).
	MemLatency, MemService sim.Cycle
}

func (c Config) withDefaults() Config {
	if c.Processors == 0 {
		c.Processors = 1
	}
	if c.ContextsPerCore == 0 {
		c.ContextsPerCore = 8
	}
	if c.MemLatency == 0 {
		c.MemLatency = 2
	}
	if c.MemService == 0 {
		c.MemService = 1
	}
	return c
}

// FullEmptyMemory is shared memory with a full/empty bit per word. CNS and
// PRD requests that find the wrong state go to the back of the queue and
// try again — hardware busy-waiting, visible in Retries.
type FullEmptyMemory struct {
	latency, service sim.Cycle
	words            map[uint32]vn.Word
	full             map[uint32]bool
	queue            []vn.MemRequest
	busyUntil        sim.Cycle
	due              map[sim.Cycle][]completed
	pending          int

	// Served counts service slots consumed (including failed attempts);
	// Retries counts the failed attempts themselves.
	Served  metrics.Counter
	Retries metrics.Counter
}

type completed struct {
	r vn.MemRequest
	v vn.Word
}

// NewFullEmptyMemory returns an empty memory (all cells empty).
func NewFullEmptyMemory(latency, service sim.Cycle) *FullEmptyMemory {
	return &FullEmptyMemory{
		latency: latency, service: service,
		words: map[uint32]vn.Word{}, full: map[uint32]bool{},
		due: map[sim.Cycle][]completed{},
	}
}

// Request queues a memory operation.
func (m *FullEmptyMemory) Request(r vn.MemRequest) {
	m.queue = append(m.queue, r)
	m.pending++
}

// Pending reports queued plus in-flight requests.
func (m *FullEmptyMemory) Pending() int { return m.pending }

// Poke stores a value and marks the cell full.
func (m *FullEmptyMemory) Poke(addr uint32, v vn.Word) {
	m.words[addr] = v
	m.full[addr] = true
}

// Peek reads a value regardless of state.
func (m *FullEmptyMemory) Peek(addr uint32) vn.Word { return m.words[addr] }

// Full reports a cell's state.
func (m *FullEmptyMemory) Full(addr uint32) bool { return m.full[addr] }

// Step services one attempt per service time and delivers due responses.
func (m *FullEmptyMemory) Step(now sim.Cycle) {
	for _, c := range m.due[now] {
		m.pending--
		if c.r.Done != nil {
			c.r.Done(c.v)
		}
	}
	delete(m.due, now)
	if now < m.busyUntil || len(m.queue) == 0 {
		return
	}
	r := m.queue[0]
	copy(m.queue, m.queue[1:])
	m.queue = m.queue[:len(m.queue)-1]
	m.busyUntil = now + m.service
	m.Served.Inc()

	var v vn.Word
	switch r.Op {
	case vn.MemConsume:
		if !m.full[r.Addr] {
			m.Retries.Inc()
			m.queue = append(m.queue, r) // busy-wait: go around again
			return
		}
		v = m.words[r.Addr]
		m.full[r.Addr] = false
	case vn.MemProduce:
		if m.full[r.Addr] {
			m.Retries.Inc()
			m.queue = append(m.queue, r)
			return
		}
		m.words[r.Addr] = r.Value
		m.full[r.Addr] = true
	case vn.MemRead:
		v = m.words[r.Addr]
	case vn.MemWrite:
		m.words[r.Addr] = r.Value
		m.full[r.Addr] = true
	case vn.MemFetchAdd:
		v = m.words[r.Addr]
		m.words[r.Addr] = v + r.Value
		m.full[r.Addr] = true
	case vn.MemTestSet:
		v = m.words[r.Addr]
		m.words[r.Addr] = 1
		m.full[r.Addr] = true
	}
	m.due[now+m.latency] = append(m.due[now+m.latency], completed{r: r, v: v})
}

// Machine is the assembled HEP model: every core shares one full/empty
// memory (the HEP's data memory was likewise shared through its switch).
type Machine struct {
	cfg   Config
	cores []*vn.Core
	mem   *FullEmptyMemory
	now   sim.Cycle
}

// New builds the machine, loading prog into every context of every core.
func New(cfg Config, prog *vn.Program) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{cfg: cfg, mem: NewFullEmptyMemory(cfg.MemLatency, cfg.MemService)}
	for p := 0; p < cfg.Processors; p++ {
		m.cores = append(m.cores, vn.NewCore(prog, m.mem, cfg.ContextsPerCore))
	}
	return m
}

// Core returns processor p.
func (m *Machine) Core(p int) *vn.Core { return m.cores[p] }

// Memory returns the shared full/empty memory.
func (m *Machine) Memory() *FullEmptyMemory { return m.mem }

// Halted reports whether every context of every core halted.
func (m *Machine) Halted() bool {
	for _, c := range m.cores {
		if !c.Halted() {
			return false
		}
	}
	return true
}

// Step advances one cycle.
func (m *Machine) Step(now sim.Cycle) {
	m.now = now
	m.mem.Step(now)
	for _, c := range m.cores {
		c.Step(now)
	}
}

// Run steps until everything halts and memory drains.
func (m *Machine) Run(limit sim.Cycle) (sim.Cycle, error) {
	start := m.now
	for m.now-start < limit {
		if m.Halted() && m.mem.Pending() == 0 {
			return m.now - start, nil
		}
		m.Step(m.now)
		m.now++
	}
	return m.now - start, fmt.Errorf("hep: did not halt within %d cycles", limit)
}
