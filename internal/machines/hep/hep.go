// Package hep models the Denelcor HEP (paper footnote 2; Smith 1978): a
// pipelined MIMD machine whose processors multiplex many hardware process
// contexts, synchronizing through full/empty bits on shared memory cells.
// An unsatisfiable access — consuming an empty cell, producing into a full
// one — is not deferred: the hardware retries it, burning memory bandwidth
// until it succeeds ("there is no such thing as a deferred read list").
//
// The model assembles k-context vn cores over a shared full/empty memory
// whose retry traffic is counted, making the contrast with I-structure
// deferral (internal/istructure) directly measurable.
package hep

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vn"
)

// Config sizes the machine.
type Config struct {
	Processors      int
	ContextsPerCore int
	// Shards > 1 runs the processors on the conservative parallel kernel
	// (sim.ParallelEngine), bit-identical to the sequential engine.
	Shards int
	// MemLatency is the response time after service; MemService the bank
	// occupancy per attempt (including failed, retried attempts).
	MemLatency, MemService sim.Cycle
}

func (c Config) withDefaults() Config {
	if c.Processors == 0 {
		c.Processors = 1
	}
	if c.ContextsPerCore == 0 {
		c.ContextsPerCore = 8
	}
	if c.MemLatency == 0 {
		c.MemLatency = 2
	}
	if c.MemService == 0 {
		c.MemService = 1
	}
	return c
}

// FullEmptyMemory is shared memory with a full/empty bit per word. CNS and
// PRD requests that find the wrong state go to the back of the queue and
// try again — hardware busy-waiting, visible in Retries.
type FullEmptyMemory struct {
	latency, service sim.Cycle
	words            map[uint32]vn.Word
	full             map[uint32]bool
	queue            sim.FIFO[vn.MemRequest]
	busyUntil        sim.Cycle
	due              sim.FIFO[dueCompleted]
	pending          int

	// Served counts service slots consumed (including failed attempts);
	// Retries counts the failed attempts themselves.
	Served  metrics.Counter
	Retries metrics.Counter

	waker sim.Waker
}

// Attach receives the engine's waker (sim.Wakeable).
func (m *FullEmptyMemory) Attach(w sim.Waker) { m.waker = w }

type completed struct {
	r vn.MemRequest
	v vn.Word
}

// dueCompleted is a serviced request awaiting response delivery; service
// times are nondecreasing, so a FIFO keeps completions sorted by due cycle.
type dueCompleted struct {
	at sim.Cycle
	c  completed
}

// NewFullEmptyMemory returns an empty memory (all cells empty).
func NewFullEmptyMemory(latency, service sim.Cycle) *FullEmptyMemory {
	return &FullEmptyMemory{
		latency: latency, service: service,
		words: map[uint32]vn.Word{}, full: map[uint32]bool{},
	}
}

// Request queues a memory operation.
func (m *FullEmptyMemory) Request(r vn.MemRequest) {
	m.queue.Push(r)
	m.pending++
	if m.waker != nil {
		if t := m.NextEvent(m.waker.Now()); t != sim.Never {
			m.waker.Wake(m, t)
		}
	}
}

// Pending reports queued plus in-flight requests.
func (m *FullEmptyMemory) Pending() int { return m.pending }

// Poke stores a value and marks the cell full.
func (m *FullEmptyMemory) Poke(addr uint32, v vn.Word) {
	m.words[addr] = v
	m.full[addr] = true
}

// Peek reads a value regardless of state.
func (m *FullEmptyMemory) Peek(addr uint32) vn.Word { return m.words[addr] }

// Full reports a cell's state.
func (m *FullEmptyMemory) Full(addr uint32) bool { return m.full[addr] }

// Step services one attempt per service time and delivers due responses.
func (m *FullEmptyMemory) Step(now sim.Cycle) {
	for m.due.Len() > 0 && m.due.Peek().at <= now {
		d := m.due.Pop()
		m.pending--
		if d.c.r.Done != nil {
			d.c.r.Done(d.c.v)
		}
	}
	if now < m.busyUntil || m.queue.Len() == 0 {
		return
	}
	r := m.queue.Pop()
	m.busyUntil = now + m.service
	m.Served.Inc()

	var v vn.Word
	switch r.Op {
	case vn.MemConsume:
		if !m.full[r.Addr] {
			m.Retries.Inc()
			m.queue.Push(r) // busy-wait: go around again
			return
		}
		v = m.words[r.Addr]
		m.full[r.Addr] = false
	case vn.MemProduce:
		if m.full[r.Addr] {
			m.Retries.Inc()
			m.queue.Push(r)
			return
		}
		m.words[r.Addr] = r.Value
		m.full[r.Addr] = true
	case vn.MemRead:
		v = m.words[r.Addr]
	case vn.MemWrite:
		m.words[r.Addr] = r.Value
		m.full[r.Addr] = true
	case vn.MemFetchAdd:
		v = m.words[r.Addr]
		m.words[r.Addr] = v + r.Value
		m.full[r.Addr] = true
	case vn.MemTestSet:
		v = m.words[r.Addr]
		m.words[r.Addr] = 1
		m.full[r.Addr] = true
	}
	m.due.Push(dueCompleted{at: now + m.latency, c: completed{r: r, v: v}})
}

// NextEvent reports the earliest cycle the memory can act: the next
// response delivery, or the end of the current service slot while attempts
// (including busy-wait retries) are queued.
func (m *FullEmptyMemory) NextEvent(now sim.Cycle) sim.Cycle {
	next := sim.Never
	if m.due.Len() > 0 {
		next = m.due.Peek().at
	}
	if m.queue.Len() > 0 && m.busyUntil < next {
		next = m.busyUntil
	}
	if next < now {
		next = now
	}
	return next
}

// Machine is the assembled HEP model: every core shares one full/empty
// memory (the HEP's data memory was likewise shared through its switch).
type Machine struct {
	cfg    Config
	cores  []*vn.Core
	mem    *FullEmptyMemory
	engine sim.Driver
}

// New builds the machine, loading prog into every context of every core.
func New(cfg Config, prog *vn.Program) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{cfg: cfg, mem: NewFullEmptyMemory(cfg.MemLatency, cfg.MemService)}
	for p := 0; p < cfg.Processors; p++ {
		c := vn.NewCore(prog, m.mem, cfg.ContextsPerCore)
		c.SetSaveID(p)
		m.cores = append(m.cores, c)
	}
	if cfg.Shards > 1 && cfg.Processors > 1 {
		par := sim.NewParallelEngine()
		m.engine = par
		par.Register(m.mem)
		vn.ShardCores(par, m.cores, cfg.Shards, vn.FabricLookahead(m.mem))
	} else {
		eng := sim.NewEngine()
		m.engine = eng
		eng.Register(m.mem)
		for _, c := range m.cores {
			eng.Register(c)
		}
	}
	return m
}

// Core returns processor p.
func (m *Machine) Core(p int) *vn.Core { return m.cores[p] }

// Memory returns the shared full/empty memory.
func (m *Machine) Memory() *FullEmptyMemory { return m.mem }

// Halted reports whether every context of every core halted.
func (m *Machine) Halted() bool {
	for _, c := range m.cores {
		if !c.Halted() {
			return false
		}
	}
	return true
}

// Run drives the shared engine until everything halts and memory drains.
func (m *Machine) Run(limit sim.Cycle) (sim.Cycle, error) {
	elapsed, ok := m.engine.Run(func() bool {
		return m.Halted() && m.mem.Pending() == 0
	}, limit)
	if !ok {
		return elapsed, fmt.Errorf("hep: did not halt within %d cycles", limit)
	}
	return elapsed, nil
}

// Engine exposes the simulation engine (scheduling counters).
func (m *Machine) Engine() sim.Driver { return m.engine }

// WorkerSteps reports per-worker shard-step counts (nil when sequential).
func (m *Machine) WorkerSteps() []uint64 {
	if par, ok := m.engine.(*sim.ParallelEngine); ok {
		return par.WorkerSteps()
	}
	return nil
}
