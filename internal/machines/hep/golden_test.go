package hep

import (
	"testing"

	"repro/internal/simtest"
	"repro/internal/vn"
)

type hepSnapshot struct {
	Cycles      uint64 `json:"cycles"`
	Sum         int64  `json:"sum"`
	Served      uint64 `json:"served"`
	Retries     uint64 `json:"retries"`
	CoreBusy    uint64 `json:"core_busy"`
	CoreIdle    uint64 `json:"core_idle"`
	CoreMemWait uint64 `json:"core_mem_wait"`
	CoreRetired uint64 `json:"core_retired"`
	Switches    uint64 `json:"switches"`
}

func snapshotHEP(m *Machine, cycles uint64, sumAddr uint32) hepSnapshot {
	s := hepSnapshot{
		Cycles:  cycles,
		Sum:     int64(m.Memory().Peek(sumAddr)),
		Served:  m.Memory().Served.Value(),
		Retries: m.Memory().Retries.Value(),
	}
	for _, c := range m.cores {
		st := c.Stats()
		s.CoreBusy += st.Busy.Value()
		s.CoreIdle += st.Idle.Value()
		s.CoreMemWait += st.MemWait.Value()
		s.CoreRetired += st.Retired.Value()
		s.Switches += st.Switches.Value()
	}
	return s
}

// TestGoldenPipeline pins the 1-deep full/empty producer/consumer pipeline:
// the busy-wait retry traffic the HEP burns bandwidth on is part of the
// snapshot.
func TestGoldenPipeline(t *testing.T) {
	m := build(t, 50)
	cycles, err := m.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	simtest.Check(t, "testdata/golden_pipeline.json", snapshotHEP(m, uint64(cycles), 200))
}

// TestGoldenManyContexts pins 4 producers + 4 consumers multiplexed on one
// core over a single shared cell — heavy context switching and retries.
func TestGoldenManyContexts(t *testing.T) {
	src := `
prod:   beq  r5, r0, phalt
        prd  r6, r1
        addi r5, r5, -1
        j    prod
phalt:  halt
cons:   beq  r5, r0, csave
        cns  r2, r1
        add  r3, r3, r2
        addi r5, r5, -1
        j    cons
csave:  st   r3, r8, 0
        halt
`
	prog, err := vn.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Processors: 1, ContextsPerCore: 8}, prog)
	const each = 20
	for i := 0; i < 4; i++ {
		p := m.Core(0).Context(i)
		p.SetReg(1, 100)
		p.SetReg(5, each)
		p.SetReg(6, vn.Word(i+1))
		c := m.Core(0).Context(4 + i)
		c.SetPC(prog.Labels["cons"])
		c.SetReg(1, 100)
		c.SetReg(5, each)
		c.SetReg(8, vn.Word(200+i))
	}
	cycles, err := m.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	simtest.Check(t, "testdata/golden_contexts.json", snapshotHEP(m, uint64(cycles), 200))
}
