package hep

import (
	"testing"

	"repro/internal/vn"
)

// pipeline: context 0 produces values 1..n into a full/empty cell, context
// 1 consumes them and stores the sum. r1 = cell address, r5 = count.
const pipeline = `
prod:   beq  r5, r0, phalt
        addi r6, r6, 1
        prd  r6, r1        ; blocks (busy-waits) while the cell is full
        addi r5, r5, -1
        j    prod
phalt:  halt

cons:   beq  r5, r0, csave
        cns  r2, r1        ; blocks (busy-waits) while the cell is empty
        add  r3, r3, r2
        addi r5, r5, -1
        j    cons
csave:  st   r3, r8, 0
        halt
`

func build(t *testing.T, n int64) *Machine {
	t.Helper()
	prog, err := vn.Assemble(pipeline)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Processors: 1, ContextsPerCore: 2}, prog)
	producer := m.Core(0).Context(0)
	producer.SetReg(1, 100)
	producer.SetReg(5, vn.Word(n))
	consumer := m.Core(0).Context(1)
	consumer.SetPC(prog.Labels["cons"])
	consumer.SetReg(1, 100)
	consumer.SetReg(5, vn.Word(n))
	consumer.SetReg(8, 200)
	return m
}

func TestFullEmptyPipeline(t *testing.T) {
	const n = 50
	m := build(t, n)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.Memory().Peek(200); got != n*(n+1)/2 {
		t.Fatalf("consumer summed %d, want %d", got, n*(n+1)/2)
	}
	if m.Memory().Full(100) {
		t.Fatal("cell should end empty: everything produced was consumed")
	}
}

func TestBusyWaitingBurnsBandwidth(t *testing.T) {
	// The paper's footnote: no deferred read list — unsatisfiable requests
	// busy-wait. Retries must show up, and they consume real service slots.
	const n = 50
	m := build(t, n)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	retries := m.Memory().Retries.Value()
	if retries == 0 {
		t.Fatal("a one-deep full/empty pipeline must retry")
	}
	served := m.Memory().Served.Value()
	// useful ops: n produces + n consumes + 1 final store
	useful := uint64(2*n + 1)
	if served != useful+retries {
		t.Fatalf("served (%d) must equal useful (%d) + retries (%d)", served, useful, retries)
	}
}

func TestSlowProducerInflatesRetries(t *testing.T) {
	// Delay the producer (extra ALU work per item): the consumer's
	// busy-waiting scales with the delay, unlike I-structure deferral
	// whose cost is one deferred entry regardless of the wait.
	src := `
prod:   beq  r5, r0, phalt
        addi r6, r6, 1
        add  r9, r9, r6    ; padding work
        add  r9, r9, r6
        add  r9, r9, r6
        add  r9, r9, r6
        add  r9, r9, r6
        add  r9, r9, r6
        add  r9, r9, r6
        add  r9, r9, r6
        prd  r6, r1
        addi r5, r5, -1
        j    prod
phalt:  halt
cons:   beq  r5, r0, chalt
        cns  r2, r1
        add  r3, r3, r2
        addi r5, r5, -1
        j    cons
chalt:  halt
`
	prog, err := vn.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	fast := build(t, 30)
	if _, err := fast.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	slow := New(Config{Processors: 1, ContextsPerCore: 2}, prog)
	slow.Core(0).Context(0).SetReg(1, 100)
	slow.Core(0).Context(0).SetReg(5, 30)
	slow.Core(0).Context(1).SetPC(prog.Labels["cons"])
	slow.Core(0).Context(1).SetReg(1, 100)
	slow.Core(0).Context(1).SetReg(5, 30)
	if _, err := slow.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if slow.Memory().Retries.Value() <= fast.Memory().Retries.Value() {
		t.Fatalf("slower producer should force more consumer retries: %d vs %d",
			slow.Memory().Retries.Value(), fast.Memory().Retries.Value())
	}
}

func TestManyContextsSharedCell(t *testing.T) {
	// 4 producers and 4 consumers on one cell: full/empty acts as a
	// 1-deep synchronized channel; totals must balance exactly.
	src := `
prod:   beq  r5, r0, phalt
        prd  r6, r1
        addi r5, r5, -1
        j    prod
phalt:  halt
cons:   beq  r5, r0, csave
        cns  r2, r1
        add  r3, r3, r2
        addi r5, r5, -1
        j    cons
csave:  st   r3, r8, 0
        halt
`
	prog, err := vn.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Processors: 1, ContextsPerCore: 8}, prog)
	const each = 20
	for i := 0; i < 4; i++ {
		p := m.Core(0).Context(i)
		p.SetReg(1, 100)
		p.SetReg(5, each)
		p.SetReg(6, vn.Word(i+1)) // each producer sends its id
		c := m.Core(0).Context(4 + i)
		c.SetPC(prog.Labels["cons"])
		c.SetReg(1, 100)
		c.SetReg(5, each)
		c.SetReg(8, vn.Word(200+i))
	}
	if _, err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	var got vn.Word
	for i := 0; i < 4; i++ {
		got += m.Memory().Peek(uint32(200 + i))
	}
	want := vn.Word(each * (1 + 2 + 3 + 4))
	if got != want {
		t.Fatalf("consumed sum %d, want %d", got, want)
	}
}

func TestMultithreadingHidesWaits(t *testing.T) {
	// With many independent producer/consumer pairs on one core, the
	// processor stays busier than with a single pair: the HEP's pipeline
	// argument, limited by the shared memory's service rate.
	utilFor := func(pairs int) float64 {
		prog, err := vn.Assemble(pipeline)
		if err != nil {
			t.Fatal(err)
		}
		m := New(Config{Processors: 1, ContextsPerCore: 2 * pairs, MemService: 1}, prog)
		for i := 0; i < pairs; i++ {
			cell := vn.Word(100 + i)
			p := m.Core(0).Context(2 * i)
			p.SetReg(1, cell)
			p.SetReg(5, 25)
			c := m.Core(0).Context(2*i + 1)
			c.SetPC(prog.Labels["cons"])
			c.SetReg(1, cell)
			c.SetReg(5, 25)
			c.SetReg(8, vn.Word(300+i))
		}
		if _, err := m.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Core(0).Stats().Utilization()
	}
	if u1, u4 := utilFor(1), utilFor(4); u4 <= u1 {
		t.Fatalf("more process pairs should raise utilization: 1 pair %v, 4 pairs %v", u1, u4)
	}
}

func TestRunHonorsLimit(t *testing.T) {
	// A consumer with no producer busy-waits forever; Run must report it.
	prog, err := vn.Assemble("cons: cns r2, r1\n j cons\n halt")
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Processors: 1, ContextsPerCore: 1}, prog)
	m.Core(0).Context(0).SetReg(1, 100)
	if _, err := m.Run(5000); err == nil {
		t.Fatal("endless busy-wait must hit the cycle limit")
	}
	if m.Memory().Retries.Value() == 0 {
		t.Fatal("the spin must be visible as retries")
	}
}
