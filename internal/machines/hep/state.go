package hep

import (
	"repro/internal/sim"
	"repro/internal/vn"
)

// Checkpoint serialization. The program and configuration are static
// structure: a checkpoint restores into a freshly built Machine over the
// identical Config and program. In-flight request callbacks rebind through
// vn.Resolver over the machine's cores.

// SaveTo appends the memory's dynamic state: both word and full/empty
// stores (in sorted address order), the attempt queue, and responses in
// flight.
func (m *FullEmptyMemory) SaveTo(e *sim.Enc) {
	e.Tag("hepmem", 1)
	sim.SaveU32Map(e, m.words, func(e *sim.Enc, w vn.Word) { e.I64(w) })
	sim.SaveU32Map(e, m.full, func(e *sim.Enc, b bool) { e.Bool(b) })
	e.Cycle(m.busyUntil)
	e.Int(m.pending)
	m.Served.Save(e)
	m.Retries.Save(e)
	sim.SaveFIFO(e, &m.queue, vn.SaveMemRequest)
	sim.SaveFIFO(e, &m.due, func(e *sim.Enc, dc dueCompleted) {
		e.Cycle(dc.at)
		vn.SaveMemRequest(e, dc.c.r)
		e.I64(dc.c.v)
	})
}

// LoadFrom restores the memory, rebinding callbacks through resolve.
func (m *FullEmptyMemory) LoadFrom(d *sim.Dec, resolve vn.DoneResolver) error {
	if err := d.Tag("hepmem", 1); err != nil {
		return err
	}
	sim.LoadU32Map(d, m.words, func(d *sim.Dec) vn.Word { return d.I64() })
	sim.LoadU32Map(d, m.full, func(d *sim.Dec) bool { return d.Bool() })
	m.busyUntil = d.Cycle()
	m.pending = d.Int()
	m.Served.Load(d)
	m.Retries.Load(d)
	if err := sim.LoadFIFO(d, &m.queue, d.Remaining(), func(d *sim.Dec) vn.MemRequest {
		return vn.LoadMemRequest(d, resolve)
	}); err != nil {
		return err
	}
	if err := sim.LoadFIFO(d, &m.due, d.Remaining(), func(d *sim.Dec) dueCompleted {
		dc := dueCompleted{at: d.Cycle()}
		dc.c.r = vn.LoadMemRequest(d, resolve)
		dc.c.v = d.I64()
		return dc
	}); err != nil {
		return err
	}
	if d.Err() == nil && m.pending != m.queue.Len()+m.due.Len() {
		d.Failf("hep memory pending %d != %d queued + %d due",
			m.pending, m.queue.Len(), m.due.Len())
	}
	return d.Err()
}

// SaveState appends the whole machine's dynamic state (sim.Stateful).
func (m *Machine) SaveState(e *sim.Enc) {
	e.Tag("hep", 1)
	m.engine.(sim.Stateful).SaveState(e)
	m.mem.SaveTo(e)
	e.Len(len(m.cores))
	for _, c := range m.cores {
		c.SaveState(e)
	}
}

// LoadState restores the machine (sim.Stateful).
func (m *Machine) LoadState(d *sim.Dec) error {
	if err := d.Tag("hep", 1); err != nil {
		return err
	}
	if err := m.engine.(sim.Stateful).LoadState(d); err != nil {
		return err
	}
	if err := m.mem.LoadFrom(d, vn.Resolver(m.cores)); err != nil {
		return err
	}
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(m.cores) {
		d.Failf("checkpoint has %d cores, machine has %d", n, len(m.cores))
		return d.Err()
	}
	for _, c := range m.cores {
		if err := c.LoadState(d); err != nil {
			return err
		}
	}
	return d.Err()
}

var _ sim.Stateful = (*Machine)(nil)
