// Package cmmp models C.mmp (Section 1.2.1): up to 16 minicomputer-class
// processors connected to shared memory banks through a crossbar switch.
// Processors run the blocking vn core (one outstanding memory reference);
// synchronization uses TAS spinlocks, the Hydra-style semaphore whose cost
// relative to an ALU operation the paper calls "rather high".
//
// The two measurable claims reproduced from the paper's discussion:
//
//   - the crossbar's cost grows at least quadratically with port count
//     (network.CrossbarCost), while its latency is flat until contention;
//   - semaphore acquire/release costs tens of ALU-operation equivalents,
//     and grows with contention.
package cmmp

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/vn"
)

// Config sizes the machine.
type Config struct {
	Processors int
	Banks      int
	// BankWords is the address space per bank; addresses interleave
	// word-by-word across banks.
	BankWords uint32
	// SwitchDelay is the crossbar transit time.
	SwitchDelay sim.Cycle
	// BankService is the per-request bank occupancy.
	BankService sim.Cycle
	// Shards > 1 runs the processors on the conservative parallel kernel
	// (sim.ParallelEngine), bit-identical to the sequential engine.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Processors == 0 {
		c.Processors = 16
	}
	if c.Banks == 0 {
		c.Banks = 16
	}
	if c.BankWords == 0 {
		c.BankWords = 1 << 16
	}
	if c.SwitchDelay == 0 {
		c.SwitchDelay = 2
	}
	if c.BankService == 0 {
		c.BankService = 2
	}
	return c
}

// Machine is the assembled C.mmp model.
type Machine struct {
	cfg   Config
	cores []*vn.Core
	xbar  *network.Crossbar
	banks []*vn.BankedMemory

	// retry holds refused crossbar sends for in-order reinjection.
	retry  *network.RetryQueue
	engine sim.Driver

	// Free lists recycle the two allocations on the memory hot path — one
	// packet and one payload per crossbar crossing — so steady-state
	// traffic allocates nothing. Both are exclusively owned: the crossbar
	// drops its reference before deliver runs, and deliver copies what it
	// needs out before recycling.
	pktFree []*network.Packet
	msgFree []*memMsg
}

// getMsg returns a zeroed payload, recycled when possible.
func (m *Machine) getMsg() *memMsg {
	if n := len(m.msgFree); n > 0 {
		msg := m.msgFree[n-1]
		m.msgFree = m.msgFree[:n-1]
		*msg = memMsg{}
		return msg
	}
	return &memMsg{}
}

// getPacket returns a packet carrying payload, recycled when possible.
func (m *Machine) getPacket(src, dst int, payload interface{}) *network.Packet {
	var pkt *network.Packet
	if n := len(m.pktFree); n > 0 {
		pkt = m.pktFree[n-1]
		m.pktFree = m.pktFree[:n-1]
		pkt.Reset()
	} else {
		pkt = &network.Packet{}
	}
	pkt.Src, pkt.Dst, pkt.Payload = src, dst, payload
	return pkt
}

// putPacket recycles a delivered packet and its payload.
func (m *Machine) putPacket(pkt *network.Packet, msg *memMsg) {
	m.pktFree = append(m.pktFree, pkt)
	m.msgFree = append(m.msgFree, msg)
}

// memMsg is a request or response crossing the crossbar. origRef names the
// issuing context alongside origDone so replies in flight survive a
// checkpoint.
type memMsg struct {
	req      vn.MemRequest
	isReply  bool
	value    vn.Word
	origDone func(vn.Word)
	origRef  vn.DoneRef
}

// port numbering: 0..P-1 processors, P..P+B-1 banks.
func (m *Machine) bankPort(b int) int { return m.cfg.Processors + b }

// New builds the machine and loads the same program into every core with k
// hardware contexts each (k=1 for the historical blocking configuration).
func New(cfg Config, prog *vn.Program, contextsPerCore int) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{cfg: cfg}
	ports := cfg.Processors + cfg.Banks
	m.xbar = network.NewCrossbar(ports, cfg.SwitchDelay, 64)
	m.retry = network.NewRetryQueue(m.xbar.Send)
	m.banks = make([]*vn.BankedMemory, cfg.Banks)
	for b := range m.banks {
		m.banks[b] = vn.NewBankedMemory(1, cfg.BankService)
	}
	m.xbar.SetDelivery(m.deliver)
	for p := 0; p < cfg.Processors; p++ {
		port := &cpuPort{m: m, cpu: p}
		c := vn.NewCore(prog, port, contextsPerCore)
		c.SetSaveID(p)
		m.cores = append(m.cores, c)
	}
	if cfg.Shards > 1 && cfg.Processors > 1 {
		par := sim.NewParallelEngine()
		m.engine = par
		par.Register(m.retry)
		par.Register(m.xbar)
		for _, b := range m.banks {
			par.Register(b)
		}
		vn.ShardCores(par, m.cores, cfg.Shards, vn.FabricLookahead(m.xbar))
	} else {
		eng := sim.NewEngine()
		m.engine = eng
		eng.Register(m.retry)
		eng.Register(m.xbar)
		for _, b := range m.banks {
			eng.Register(b)
		}
		for _, c := range m.cores {
			eng.Register(c)
		}
	}
	return m
}

// cpuPort adapts a core's memory interface to crossbar packets.
type cpuPort struct {
	m   *Machine
	cpu int
}

// Request routes the memory operation to its bank through the crossbar.
func (p *cpuPort) Request(r vn.MemRequest) {
	bank := int(r.Addr) % p.m.cfg.Banks
	msg := p.m.getMsg()
	msg.req = r
	p.m.send(p.m.getPacket(p.cpu, p.m.bankPort(bank), msg))
}

// send transmits with per-source retry on backpressure.
func (m *Machine) send(pkt *network.Packet) {
	m.retry.Send(pkt)
}

// deliver handles packets reaching their crossbar output.
func (m *Machine) deliver(pkt *network.Packet) {
	msg := pkt.Payload.(*memMsg)
	if msg.isReply {
		done, v := msg.origDone, msg.value
		m.putPacket(pkt, msg)
		done(v)
		return
	}
	// arrived at a bank: perform the access, then send the reply back
	bank := pkt.Dst - m.cfg.Processors
	cpu := pkt.Src
	req := msg.req
	m.putPacket(pkt, msg)
	orig, origRef := req.Done, req.Ref
	req.Addr = req.Addr / uint32(m.cfg.Banks)
	req.Done = m.bankReplyDone(bank, cpu, orig, origRef)
	req.Ref = wrapBankReply(bank, cpu, origRef)
	m.banks[bank].Request(req)
}

// bankReplyDone returns the bank-side completion: package the value as a
// reply message and send it back across the crossbar to the issuing
// processor. Both the live path (deliver) and checkpoint restore build
// the callback here, so restored machines behave identically.
func (m *Machine) bankReplyDone(bank, cpu int, orig func(vn.Word), origRef vn.DoneRef) func(vn.Word) {
	return func(v vn.Word) {
		rm := m.getMsg()
		rm.isReply, rm.value, rm.origDone, rm.origRef = true, v, orig, origRef
		m.send(m.getPacket(m.bankPort(bank), cpu, rm))
	}
}

// Halted reports whether every core halted.
func (m *Machine) Halted() bool {
	for _, c := range m.cores {
		if !c.Halted() {
			return false
		}
	}
	return true
}

// drainPending reports outstanding traffic.
func (m *Machine) drainPending() bool {
	if m.xbar.Pending() > 0 || m.retry.Len() > 0 {
		return true
	}
	for _, b := range m.banks {
		if b.Pending() > 0 {
			return true
		}
	}
	return false
}

// Run drives the shared engine until every core halts and the memory
// system drains.
func (m *Machine) Run(limit sim.Cycle) (sim.Cycle, error) {
	elapsed, ok := m.engine.Run(func() bool {
		return m.Halted() && !m.drainPending()
	}, limit)
	if !ok {
		return elapsed, fmt.Errorf("cmmp: did not halt within %d cycles", limit)
	}
	return elapsed, nil
}

// Core returns processor p.
func (m *Machine) Core(p int) *vn.Core { return m.cores[p] }

// Bank returns bank b (for Poke/Peek with bank-local addresses).
func (m *Machine) Bank(b int) *vn.BankedMemory { return m.banks[b] }

// Poke writes a global address directly.
func (m *Machine) Poke(addr uint32, v vn.Word) {
	m.banks[int(addr)%m.cfg.Banks].Poke(addr/uint32(m.cfg.Banks), v)
}

// Peek reads a global address directly.
func (m *Machine) Peek(addr uint32) vn.Word {
	return m.banks[int(addr)%m.cfg.Banks].Peek(addr / uint32(m.cfg.Banks))
}

// Crossbar exposes the switch for statistics.
func (m *Machine) Crossbar() *network.Crossbar { return m.xbar }

// Engine exposes the simulation engine (scheduling counters).
func (m *Machine) Engine() sim.Driver { return m.engine }

// WorkerSteps reports per-worker shard-step counts (nil when sequential).
func (m *Machine) WorkerSteps() []uint64 {
	if par, ok := m.engine.(*sim.ParallelEngine); ok {
		return par.WorkerSteps()
	}
	return nil
}

// MeanUtilization averages core utilization.
func (m *Machine) MeanUtilization() float64 {
	u := 0.0
	for _, c := range m.cores {
		u += c.Stats().Utilization()
	}
	return u / float64(len(m.cores))
}
