package cmmp

import (
	"testing"

	"repro/internal/simtest"
	"repro/internal/vn"
)

// cmmpSnapshot pins every deterministic observable of a run: simulated
// cycles, architectural results, core cycle budgets, bank queue statistics,
// and crossbar traffic. Any kernel change that shifts one of these numbers
// is a change to simulated machine behaviour, not a refactor.
type cmmpSnapshot struct {
	Cycles       uint64  `json:"cycles"`
	Counter      int64   `json:"counter"`
	CoreBusy     uint64  `json:"core_busy"`
	CoreIdle     uint64  `json:"core_idle"`
	CoreMemWait  uint64  `json:"core_mem_wait"`
	CoreRetired  uint64  `json:"core_retired"`
	CoreSwitches uint64  `json:"core_switches"`
	MeanUtil     float64 `json:"mean_utilization"`
	BankServed   uint64  `json:"bank_served"`
	BankQMeanPPM uint64  `json:"bank_queue_mean_ppm"`
	BankQMax     int64   `json:"bank_queue_max"`
	XbarDeliv    uint64  `json:"xbar_delivered"`
	XbarRefused  uint64  `json:"xbar_refused"`
}

func snapshotCMMP(t *testing.T, m *Machine, cfg Config, cycles uint64) cmmpSnapshot {
	t.Helper()
	s := cmmpSnapshot{Cycles: cycles, Counter: int64(m.Peek(1)), MeanUtil: m.MeanUtilization()}
	for p := 0; p < cfg.Processors; p++ {
		st := m.Core(p).Stats()
		s.CoreBusy += st.Busy.Value()
		s.CoreIdle += st.Idle.Value()
		s.CoreMemWait += st.MemWait.Value()
		s.CoreRetired += st.Retired.Value()
		s.CoreSwitches += st.Switches.Value()
	}
	for b := 0; b < cfg.Banks; b++ {
		bank := m.Bank(b)
		s.BankServed += bank.Served.Value()
		// mean is a float ratio; pin it as parts-per-million to keep the
		// comparison exact under JSON round-tripping
		s.BankQMeanPPM += uint64(bank.QueueLen.Mean() * 1e6)
		if mx := bank.QueueLen.Max(); mx > s.BankQMax {
			s.BankQMax = mx
		}
	}
	s.XbarDeliv = m.Crossbar().Stats().Delivered.Value()
	s.XbarRefused = m.Crossbar().Stats().Refused.Value()
	return s
}

// TestGoldenSharedCounter pins the lock-contended shared-counter workload:
// heavy crossbar traffic, bank queueing, and retry backpressure.
func TestGoldenSharedCounter(t *testing.T) {
	cfg := Config{Processors: 8, Banks: 4}
	m := build(t, counterProgram, cfg, 25)
	cycles, err := m.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	simtest.Check(t, "testdata/golden_counter.json", snapshotCMMP(t, m, cfg, uint64(cycles)))
}

// TestGoldenMultiContext pins the same workload with 4 hardware contexts
// per core, exercising context switching over the crossbar.
func TestGoldenMultiContext(t *testing.T) {
	cfg := Config{Processors: 4, Banks: 4}
	prog, err := vn.Assemble(counterProgram)
	if err != nil {
		t.Fatal(err)
	}
	m := New(cfg, prog, 4)
	for p := 0; p < cfg.Processors; p++ {
		for k := 0; k < 4; k++ {
			m.Core(p).Context(k).SetReg(5, 10)
		}
	}
	cycles, err := m.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	simtest.Check(t, "testdata/golden_contexts.json", snapshotCMMP(t, m, cfg, uint64(cycles)))
}
