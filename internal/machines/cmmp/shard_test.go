package cmmp

import (
	"reflect"
	"testing"
)

// TestShardedBitIdentical pins the parallel kernel to the sequential one:
// the lock-contended shared-counter workload must produce byte-for-byte
// identical snapshots (results, cycle counts, bank and crossbar statistics)
// at every shard count.
func TestShardedBitIdentical(t *testing.T) {
	run := func(shards int) cmmpSnapshot {
		cfg := Config{Processors: 8, Banks: 4, Shards: shards}
		m := build(t, counterProgram, cfg, 25)
		cycles, err := m.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 && m.WorkerSteps() == nil {
			t.Fatalf("shards=%d: expected parallel engine worker counters", shards)
		}
		if shards <= 1 && m.WorkerSteps() != nil {
			t.Fatal("sequential run reported worker counters")
		}
		return snapshotCMMP(t, m, cfg, uint64(cycles))
	}
	want := run(1)
	for _, s := range []int{2, 3, 4, 8} {
		if got := run(s); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d diverged from sequential:\n got %+v\nwant %+v", s, got, want)
		}
	}
}
