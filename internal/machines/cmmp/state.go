package cmmp

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vn"
)

// Checkpoint serialization. Requests queued inside banks have had their
// callback re-wrapped by deliver; the wrapper is named by a machine-level
// DoneRef kind that packs the bank, the processor, and the original
// core-context ref, so restore can rebuild the identical reply path.

// doneRefBankReply marks a callback wrapped by deliver: A packs
// bank<<16|cpu, B packs the original core-context ref's core<<32|context.
const doneRefBankReply = vn.DoneRefMachine

// wrapBankReply names the deliver-wrapped callback for a checkpoint. The
// original ref must be a plain core-context ref — in C.mmp every request
// originates at a core — or the wrapper would not fit a DoneRef.
func wrapBankReply(bank, cpu int, orig vn.DoneRef) vn.DoneRef {
	if orig.Kind != vn.DoneRefCoreCtx {
		panic(fmt.Sprintf("cmmp: cannot wrap done ref kind %d", orig.Kind))
	}
	return vn.DoneRef{
		Kind: doneRefBankReply,
		A:    uint32(bank)<<16 | uint32(cpu),
		B:    uint64(orig.A)<<32 | orig.B,
	}
}

// resolver maps checkpoint DoneRefs back to live callbacks: plain
// core-context refs resolve through vn.Resolver; bank-reply wrappers
// rebuild the deliver closure.
func (m *Machine) resolver() vn.DoneResolver {
	cores := vn.Resolver(m.cores)
	return func(ref vn.DoneRef) func(vn.Word) {
		if ref.Kind != doneRefBankReply {
			return cores(ref)
		}
		bank := int(ref.A >> 16)
		cpu := int(ref.A & 0xffff)
		if bank >= m.cfg.Banks || cpu >= m.cfg.Processors {
			return nil
		}
		orig := vn.DoneRef{Kind: vn.DoneRefCoreCtx, A: uint32(ref.B >> 32), B: ref.B & 0xffffffff}
		origDone := cores(orig)
		if origDone == nil {
			return nil
		}
		return m.bankReplyDone(bank, cpu, origDone, orig)
	}
}

// payloadCodec round-trips the *memMsg payloads crossing the crossbar.
type payloadCodec struct {
	m       *Machine
	resolve vn.DoneResolver
}

func (c payloadCodec) Save(e *sim.Enc, v interface{}) {
	msg := v.(*memMsg)
	e.Bool(msg.isReply)
	if msg.isReply {
		e.I64(msg.value)
		vn.SaveDoneRef(e, msg.origRef)
	} else {
		vn.SaveMemRequest(e, msg.req)
	}
}

func (c payloadCodec) Load(d *sim.Dec) interface{} {
	msg := &memMsg{}
	if d.Bool() {
		msg.isReply = true
		msg.value = d.I64()
		msg.origRef = vn.LoadDoneRef(d)
		msg.origDone = vn.MustResolve(d, c.resolve, msg.origRef)
	} else {
		msg.req = vn.LoadMemRequest(d, c.resolve)
	}
	return msg
}

// SaveState appends the whole machine's dynamic state (sim.Stateful).
func (m *Machine) SaveState(e *sim.Enc) {
	e.Tag("cmmp", 1)
	m.engine.(sim.Stateful).SaveState(e)
	pc := payloadCodec{m: m}
	m.retry.SaveTo(e, pc)
	m.xbar.SaveTo(e, pc)
	e.Len(len(m.banks))
	for _, b := range m.banks {
		b.SaveTo(e)
	}
	e.Len(len(m.cores))
	for _, c := range m.cores {
		c.SaveState(e)
	}
}

// LoadState restores the machine (sim.Stateful).
func (m *Machine) LoadState(d *sim.Dec) error {
	if err := d.Tag("cmmp", 1); err != nil {
		return err
	}
	if err := m.engine.(sim.Stateful).LoadState(d); err != nil {
		return err
	}
	resolve := m.resolver()
	pc := payloadCodec{m: m, resolve: resolve}
	if err := m.retry.LoadFrom(d, pc); err != nil {
		return err
	}
	if err := m.xbar.LoadFrom(d, pc); err != nil {
		return err
	}
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(m.banks) {
		d.Failf("checkpoint has %d banks, machine has %d", n, len(m.banks))
		return d.Err()
	}
	for _, b := range m.banks {
		if err := b.LoadFrom(d, resolve); err != nil {
			return err
		}
	}
	n = d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(m.cores) {
		d.Failf("checkpoint has %d cores, machine has %d", n, len(m.cores))
		return d.Err()
	}
	for _, c := range m.cores {
		if err := c.LoadState(d); err != nil {
			return err
		}
	}
	return d.Err()
}

var _ sim.Stateful = (*Machine)(nil)
