package cmmp

import (
	"testing"

	"repro/internal/vn"
)

// counterProgram increments a shared counter n times under a TAS spinlock.
// r10 = lock address, r11 = counter address, r5 = iterations (set per
// context before the run).
const counterProgram = `
        li   r10, 0       ; lock at global address 0
        li   r11, 1       ; counter at global address 1
outer:  beq  r5, r0, done
spin:   tas  r3, r10
        bne  r3, r0, spin
        ld   r4, r11, 0
        addi r4, r4, 1
        st   r4, r11, 0
        st   r0, r10, 0   ; release
        addi r5, r5, -1
        j    outer
done:   halt
`

// localProgram does the same number of pure ALU iterations with no shared
// memory at all — the cost baseline.
const localProgram = `
outer:  beq  r5, r0, done
        addi r4, r4, 1
        addi r5, r5, -1
        j    outer
done:   halt
`

func build(t *testing.T, src string, cfg Config, iters int64) *Machine {
	t.Helper()
	prog, err := vn.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(cfg, prog, 1)
	for p := 0; p < cfg.Processors; p++ {
		m.Core(p).Context(0).SetReg(5, iters)
	}
	return m
}

func TestSharedCounterExact(t *testing.T) {
	cfg := Config{Processors: 4, Banks: 4}
	m := build(t, counterProgram, cfg, 25)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(1); got != 100 {
		t.Fatalf("counter = %d, want 100 (lock broken)", got)
	}
	if got := m.Peek(0); got != 0 {
		t.Fatalf("lock left held: %d", got)
	}
}

func TestSemaphoreCostExceedsALUOp(t *testing.T) {
	// The paper: semaphore synchronization cost "relative to, say, an ALU
	// operation is rather high". Compare cycles/iteration.
	cfg := Config{Processors: 4, Banks: 4}
	sync := build(t, counterProgram, cfg, 50)
	syncCycles, err := sync.Run(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	local := build(t, localProgram, cfg, 50)
	localCycles, err := local.Run(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if syncCycles < 5*localCycles {
		t.Fatalf("semaphore loop (%d cycles) should cost >> ALU loop (%d cycles)", syncCycles, localCycles)
	}
}

func TestLockSerializationPreventsSpeedup(t *testing.T) {
	// Adding processors to a lock-protected counter buys no speedup: total
	// work grows with p but the critical section serializes everything.
	cyclesFor := func(p int) float64 {
		cfg := Config{Processors: p, Banks: 4}
		m := build(t, counterProgram, cfg, 20)
		cycles, err := m.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Peek(1); got != vn.Word(20*p) {
			t.Fatalf("p=%d: counter = %d, want %d", p, got, 20*p)
		}
		return float64(cycles)
	}
	c1, c8 := cyclesFor(1), cyclesFor(8)
	if c8 < 5*c1 {
		t.Fatalf("8 processors on one lock should take ~8x the time of 1 (serialized): 1p=%v 8p=%v", c1, c8)
	}
}

func TestIndependentWorkScalesOnCrossbar(t *testing.T) {
	// With disjoint data, the crossbar gives near-linear scaling — the
	// machine's latency problem is circumvented, not solved, as the paper
	// says: the switch is as fast as local memory.
	prog := `
        ; r1 = private base, r5 = iterations
loop:   beq  r5, r0, done
        ld   r2, r1, 0
        add  r3, r3, r2
        addi r1, r1, 1
        addi r5, r5, -1
        j    loop
done:   halt
`
	run := func(p int) (cycles float64, util float64) {
		cfg := Config{Processors: p, Banks: 16}
		m := build(t, prog, cfg, 100)
		for q := 0; q < p; q++ {
			m.Core(q).Context(0).SetReg(1, vn.Word(1000+1000*q))
		}
		c, err := m.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return float64(c), m.MeanUtilization()
	}
	c1, _ := run(1)
	c8, u8 := run(8)
	if c8 > c1*1.5 {
		t.Fatalf("independent work should not slow down much: 1p=%v 8p=%v", c1, c8)
	}
	if u8 < 0.3 {
		t.Fatalf("utilization collapsed on independent work: %v", u8)
	}
}

func TestPokePeekRoundTrip(t *testing.T) {
	m := build(t, localProgram, Config{Processors: 2, Banks: 4}, 1)
	for a := uint32(0); a < 64; a++ {
		m.Poke(a, vn.Word(a*3))
	}
	for a := uint32(0); a < 64; a++ {
		if m.Peek(a) != vn.Word(a*3) {
			t.Fatalf("addr %d: %d", a, m.Peek(a))
		}
	}
}
